// Gateway: the FBS-to-IP mapping of Section 7, end to end.
//
// Two hosts talk UDP-over-IPv4 through a forwarding router. Both end
// hosts run FBS inside their IP stacks at exactly the paper's hook
// points (after output processing / before fragmentation, and after
// reassembly / before dispatch). The router is a stock stack: per the
// paper, "a forwarding router also will not see anything 'strange' about
// FBS processed IP packets" — it forwards them untouched and unread.
//
// This example uses the internal IP substrate directly, since the IP
// mapping is part of the reproduction rather than the portable public
// API.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/ip"
	"fbs/internal/l4"
	"fbs/internal/principal"
)

func main() {
	// PKI: a CA and directory shared by the hosts.
	ca, err := cert.NewAuthority("gateway-example", 1024)
	if err != nil {
		log.Fatal(err)
	}
	dir := cert.NewStaticDirectory()
	ver := &cert.Verifier{CAKey: ca.PublicKey(), CA: "gateway-example"}

	hostA, _ := ip.ParseAddr("10.0.0.10")
	hostB, _ := ip.ParseAddr("10.1.0.20")
	routerA, _ := ip.ParseAddr("10.0.0.1")

	// Wire the three stacks: A <-> router <-> B.
	var stackA, stackB, router *ip.Stack
	linkA := ip.LinkFunc(func(f []byte) error { go router.Input(clone(f)); return nil })
	linkB := ip.LinkFunc(func(f []byte) error { go router.Input(clone(f)); return nil })
	linkR := ip.LinkFunc(func(f []byte) error {
		h, _, err := ip.Unmarshal(f)
		if err != nil {
			return err
		}
		if h.Dst == hostB {
			go stackB.Input(clone(f))
		} else {
			go stackA.Input(clone(f))
		}
		return nil
	})

	mkHost := func(addr ip.Addr, link ip.LinkSender) *ip.Stack {
		id, err := principal.NewIdentity(ip.Principal(addr), cryptolib.Oakley2)
		if err != nil {
			log.Fatal(err)
		}
		c, err := ca.Issue(id, time.Now().Add(-time.Hour), time.Now().Add(24*time.Hour))
		if err != nil {
			log.Fatal(err)
		}
		dir.Publish(c)
		hook, err := ip.NewFBSHook(core.Config{
			Identity:  id,
			Directory: dir,
			Verifier:  ver,
		}, ip.AlwaysSecret)
		if err != nil {
			log.Fatal(err)
		}
		s, err := ip.NewStack(ip.StackConfig{Addr: addr, Link: link, Hook: hook, MTU: 1500})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	stackA = mkHost(hostA, linkA)
	stackB = mkHost(hostB, linkB)
	router, err = ip.NewStack(ip.StackConfig{Addr: routerA, Link: linkR})
	if err != nil {
		log.Fatal(err)
	}
	router.Forwarding = true

	// B serves a trivial UDP echo on port 7.
	gotEcho := make(chan string, 1)
	stackB.Handle(ip.ProtoUDP, func(h *ip.Header, payload []byte) {
		uh, body, err := l4.UnmarshalUDP(payload, h.Src, h.Dst)
		if err != nil {
			log.Printf("B: bad UDP: %v", err)
			return
		}
		fmt.Printf("B received on port %d: %q — echoing\n", uh.DstPort, body)
		reply := l4.UDPHeader{SrcPort: uh.DstPort, DstPort: uh.SrcPort}
		seg, err := reply.Marshal(append([]byte("echo: "), body...), h.Dst, h.Src)
		if err != nil {
			log.Fatal(err)
		}
		stackB.Output(ip.ProtoUDP, h.Src, seg, false)
	})
	stackA.Handle(ip.ProtoUDP, func(h *ip.Header, payload []byte) {
		_, body, err := l4.UnmarshalUDP(payload, h.Src, h.Dst)
		if err != nil {
			return
		}
		gotEcho <- string(body)
	})

	// A sends a UDP datagram to B, including one large enough to
	// fragment: the FBS hook sits before fragmentation, so security is
	// applied once per datagram, not per fragment.
	uh := l4.UDPHeader{SrcPort: 5000, DstPort: 7}
	seg, err := uh.Marshal([]byte("hello through the router"), hostA, hostB)
	if err != nil {
		log.Fatal(err)
	}
	if err := stackA.Output(ip.ProtoUDP, hostB, seg, false); err != nil {
		log.Fatal(err)
	}
	select {
	case e := <-gotEcho:
		fmt.Printf("A received: %q\n", e)
	case <-time.After(5 * time.Second):
		log.Fatal("no echo")
	}

	big := make([]byte, 4000)
	binary.BigEndian.PutUint64(big, 0x1122334455667788)
	seg, err = (&l4.UDPHeader{SrcPort: 5000, DstPort: 7}).Marshal(big, hostA, hostB)
	if err != nil {
		log.Fatal(err)
	}
	if err := stackA.Output(ip.ProtoUDP, hostB, seg, false); err != nil {
		log.Fatal(err)
	}
	select {
	case e := <-gotEcho:
		fmt.Printf("A received fragmented echo: %d bytes\n", len(e))
	case <-time.After(5 * time.Second):
		log.Fatal("no fragmented echo")
	}

	fmt.Printf("\nrouter: forwarded %d packets without FBS processing (stats: %+v)\n",
		router.Stats().Forwarded, router.Stats())
	fmt.Printf("host A stack: %+v\n", stackA.Stats())
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
