// Securecopy: an rcp-like file transfer over an impaired datagram
// network, protected by FBS.
//
// The example demonstrates the properties that motivated the paper:
//
//   - datagram semantics survive: lost, duplicated, reordered and
//     corrupted datagrams never require renegotiating security — the
//     application-level retransmit protocol just resends, and every
//     retransmission is independently processable;
//   - corruption is caught by the flow MAC and surfaces as loss;
//   - the whole transfer is one flow with one key derivation.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	fbs "fbs"
)

const (
	chunkSize  = 1024
	fileSize   = 256 * 1024
	maxRetries = 200
)

func main() {
	domain, err := fbs.NewDomain("securecopy")
	if err != nil {
		log.Fatal(err)
	}
	// A nasty network: 10% loss, 5% duplication, 10% reordering, 5%
	// corruption.
	network := fbs.NewNetwork(fbs.Impairments{
		LossProb: 0.10, DupProb: 0.05, ReorderProb: 0.10, CorruptProb: 0.05, Seed: 42,
	})
	sender, err := domain.NewEndpoint("src-host", network)
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()
	receiver, err := domain.NewEndpoint("dst-host", network, func(c *fbs.Config) {
		c.EnableReplayCache = true // suppress duplicates below the app
	})
	if err != nil {
		log.Fatal(err)
	}
	defer receiver.Close()

	// The "file".
	file := make([]byte, fileSize)
	for i := range file {
		file[i] = byte(i * 2654435761)
	}
	fmt.Printf("copying %d KB over a network with 10%% loss, 5%% corruption...\n", fileSize/1024)

	// Receiver: reassemble chunks, ack each one.
	chunks := make([][]byte, (fileSize+chunkSize-1)/chunkSize)
	done := make(chan []byte)
	go func() {
		got := 0
		for got < len(chunks) {
			dg, err := receiver.Receive()
			if err != nil {
				if err == fbs.ErrClosed {
					return
				}
				continue // rejected datagram: corruption shows up here
			}
			seq := binary.BigEndian.Uint32(dg.Payload[:4])
			if int(seq) < len(chunks) && chunks[seq] == nil {
				chunks[seq] = append([]byte(nil), dg.Payload[4:]...)
				got++
			}
			// Ack (also FBS-protected, in the reverse flow).
			var ack [4]byte
			binary.BigEndian.PutUint32(ack[:], seq)
			receiver.SendTo("src-host", ack[:], false)
		}
		done <- bytes.Join(chunks, nil)
	}()

	// A dedicated reader turns the sender's incoming (FBS-verified) acks
	// into a channel.
	ackCh := make(chan uint32, 1024)
	go func() {
		for {
			dg, err := sender.Receive()
			if err == fbs.ErrClosed {
				return
			}
			if err == nil && len(dg.Payload) == 4 {
				ackCh <- binary.BigEndian.Uint32(dg.Payload)
			}
		}
	}()

	// Sender: stop-and-wait with retry keeps the example readable; the
	// flow key amortises identically under any window.
	start := time.Now()
	for seq := 0; seq*chunkSize < fileSize; seq++ {
		lo, hi := seq*chunkSize, (seq+1)*chunkSize
		if hi > fileSize {
			hi = fileSize
		}
		payload := make([]byte, 4+hi-lo)
		binary.BigEndian.PutUint32(payload[:4], uint32(seq))
		copy(payload[4:], file[lo:hi])
		acked := false
		for try := 0; try < maxRetries && !acked; try++ {
			if err := sender.SendTo("dst-host", payload, true); err != nil {
				log.Fatal(err)
			}
			network.Flush()
			timeout := time.After(20 * time.Millisecond)
		wait:
			for {
				select {
				case a := <-ackCh:
					if a == uint32(seq) {
						acked = true
						break wait
					}
				case <-timeout:
					break wait // retransmit
				}
			}
		}
		if !acked {
			log.Fatalf("chunk %d never acknowledged after %d tries", seq, maxRetries)
		}
	}

	result := <-done
	elapsed := time.Since(start)
	if sha256.Sum256(result) != sha256.Sum256(file) {
		log.Fatal("file corrupted in transit — FBS should have prevented this")
	}
	fmt.Printf("file intact after transfer (%v)\n", elapsed)

	sm := sender.Metrics()
	rm := receiver.Metrics()
	ns := network.Stats()
	fmt.Printf("\nnetwork: %d sent, %d lost, %d corrupted, %d duplicated\n",
		ns.Sent, ns.Lost, ns.Corrupted, ns.Duplicated)
	fmt.Printf("receiver: %d accepted, %d rejected by MAC (corruption), %d duplicates suppressed\n",
		rm.Received, rm.RejectedMAC, rm.RejectedReplay)
	fmt.Printf("sender: %d datagrams over %d flow(s); %d DH exponentiation(s) total\n",
		sm.Sent, sender.FAMStats().FlowsCreated, keyOps(sender))
}

func keyOps(e *fbs.Endpoint) uint64 {
	ks, _, _, _ := e.KeyStats()
	return ks.MasterKeyComputes
}
