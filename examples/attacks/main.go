// Attacks: an executable tour of the security analysis (Sections 2.2
// and 6) — each attack from the paper is mounted against FBS and, where
// instructive, against the host-pair keying baseline it improves on.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"fbs/internal/baseline"
	"fbs/internal/core"

	fbs "fbs"
)

func main() {
	domain, err := fbs.NewDomain("attacks", fbs.WithGroup(fbs.TestGroup),
		fbs.WithClock(core.NewSimClock(time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))))
	if err != nil {
		log.Fatal(err)
	}
	clock := domain.Clock.(*core.SimClock)
	network := fbs.NewNetwork(fbs.Impairments{})
	alice, err := domain.NewEndpoint("alice", network, func(c *fbs.Config) {
		c.Selector = bySurface
	})
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := domain.NewEndpoint("bob", network, func(c *fbs.Config) {
		c.Selector = bySurface
		c.EnableReplayCache = true
	})
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	fmt.Println("== 1. Tampering (Section 5.2: the MAC)")
	sealed, err := alice.Seal(fbs.Datagram{Source: "alice", Destination: "bob", Payload: []byte("Apay $100 to carol")}, true)
	if err != nil {
		log.Fatal(err)
	}
	tampered := sealed.Clone()
	tampered.Payload[len(tampered.Payload)-3] ^= 0x42
	if _, err := bob.Open(tampered); err != nil {
		fmt.Printf("   flipped one ciphertext bit -> %v\n", err)
	} else {
		log.Fatal("tampering went undetected!")
	}

	fmt.Println("== 2. Replay inside and outside the freshness window (Section 6.2)")
	if _, err := bob.Open(sealed); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Open(sealed); errors.Is(err, fbs.ErrReplay) {
		fmt.Println("   immediate replay -> caught by the (extension) replay cache")
	} else {
		log.Fatal("replay slipped through the cache")
	}
	clock.Advance(30 * time.Minute)
	if _, err := bob.Open(sealed); errors.Is(err, fbs.ErrStale) {
		fmt.Println("   replay after 30 min -> rejected by the timestamp window (the paper's stateless defence)")
	} else {
		log.Fatal("stale replay accepted")
	}
	clock.Advance(-30 * time.Minute)

	fmt.Println("== 3. Cut-and-paste across flows (Section 2.2)")
	s1, _ := alice.Seal(fbs.Datagram{Source: "alice", Destination: "bob", Payload: []byte("Ahello surface A")}, true)
	s2, _ := alice.Seal(fbs.Datagram{Source: "alice", Destination: "bob", Payload: []byte("Bhello surface B")}, true)
	franken := s2.Clone()
	franken.Payload = append(franken.Payload[:core.HeaderSize], s1.Payload[core.HeaderSize:]...)
	if _, err := bob.Open(franken); err != nil {
		fmt.Printf("   flow B header + flow A body -> %v\n", err)
		fmt.Println("   (each flow has its own key: grafting bodies across flows cannot verify)")
	} else {
		log.Fatal("cut-and-paste accepted!")
	}

	fmt.Println("== 4. The same splice against host-pair keying")
	ksA := core.NewKeyService(mustPrincipal(domain, "hp-alice"), domain.Directory(), domain.Verifier(), clock, core.KeyServiceConfig{})
	ksB := core.NewKeyService(mustPrincipal(domain, "hp-bob"), domain.Directory(), domain.Verifier(), clock, core.KeyServiceConfig{})
	hpA := baseline.NewHostPair(ksA, clock)
	hpB := baseline.NewHostPair(ksB, clock)
	h1, _ := hpA.Seal(fbs.Datagram{Source: "hp-alice", Destination: "hp-bob", Payload: []byte("conversation one")}, true)
	if _, err := hpB.Open(h1); err != nil {
		log.Fatal(err)
	}
	// Under host-pair keying ALL traffic shares one key, so a recorded
	// datagram replays into any other conversation context while fresh.
	if _, err := hpB.Open(h1); err == nil {
		fmt.Println("   host-pair keying: recorded datagram replayed into another conversation -> ACCEPTED")
		fmt.Println("   (one key per host pair = no flow separation; this is what FBS fixes)")
	} else {
		log.Fatal("unexpected rejection")
	}

	fmt.Println("== 5. Flow-key compromise containment (Section 6.1)")
	var master [16]byte // pretend-compromised flow key below is derived from it
	k1 := fbs.FlowKey(1000, master, "alice", "bob")
	k2 := fbs.FlowKey(1001, master, "alice", "bob")
	diff := 0
	for i := range k1 {
		x := k1[i] ^ k2[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	fmt.Printf("   adjacent flow keys differ in %d/128 bits: knowing one flow's key says nothing about the next\n", diff)
	fmt.Println("\nall attacks behaved as the paper's analysis predicts")
}

// bySurface: first payload byte selects the application conversation.
func bySurface(dg fbs.Datagram) fbs.FlowID {
	id := fbs.FlowID{Src: dg.Source, Dst: dg.Destination}
	if len(dg.Payload) > 0 {
		id.Aux = uint64(dg.Payload[0])
	}
	return id
}

func mustPrincipal(d *fbs.Domain, addr fbs.Address) *fbs.Identity {
	id, err := d.NewPrincipal(addr)
	if err != nil {
		log.Fatal(err)
	}
	return id
}
