// Whiteboard: application-layer flows with a custom security flow
// policy.
//
// The paper's opening argument is that flows exist at every layer: "at
// the application layer, datagrams belonging to the same application
// 'conversation' constitute a flow". This example is a shared-whiteboard
// session (the paper's own example of a UDP conversation) among three
// principals where each drawing surface is its own conversation. A
// custom Selector maps datagrams to flows by (peer, surface), so each
// surface gets its own sfl and flow key — compromising one surface's key
// exposes nothing about the others.
package main

import (
	"fmt"
	"log"
	"time"

	fbs "fbs"
)

// surface identifiers: each is an application conversation.
const (
	surfaceDiagram = iota + 1
	surfaceNotes
	surfaceChat
)

var surfaceNames = map[uint64]string{
	surfaceDiagram: "diagram",
	surfaceNotes:   "notes",
	surfaceChat:    "chat",
}

// surfaceSelector classifies by destination principal and surface id
// (first payload byte): the application-layer flow policy.
func surfaceSelector(dg fbs.Datagram) fbs.FlowID {
	id := fbs.FlowID{Src: dg.Source, Dst: dg.Destination}
	if len(dg.Payload) > 0 {
		id.Aux = uint64(dg.Payload[0])
	}
	return id
}

func main() {
	domain, err := fbs.NewDomain("whiteboard")
	if err != nil {
		log.Fatal(err)
	}
	network := fbs.NewNetwork(fbs.Impairments{})

	users := []fbs.Address{"ann", "ben", "cas"}
	eps := make(map[fbs.Address]*fbs.Endpoint)
	for _, u := range users {
		ep, err := domain.NewEndpoint(u, network, func(c *fbs.Config) {
			c.Selector = surfaceSelector
			c.Policy = fbs.ThresholdPolicy{Threshold: 5 * time.Minute}
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ep.Close()
		eps[u] = ep
	}

	// Ann draws on the diagram and types chat; Ben writes notes. Every
	// (sender, receiver, surface) triple becomes a distinct flow.
	type msg struct {
		from, to fbs.Address
		surface  byte
		text     string
	}
	script := []msg{
		{"ann", "ben", surfaceDiagram, "rect 10,10 80,40"},
		{"ann", "cas", surfaceDiagram, "rect 10,10 80,40"},
		{"ann", "ben", surfaceChat, "does that look right?"},
		{"ben", "ann", surfaceChat, "move it left a bit"},
		{"ann", "ben", surfaceDiagram, "move rect -5,0"},
		{"ann", "cas", surfaceDiagram, "move rect -5,0"},
		{"ben", "ann", surfaceNotes, "decision: box goes left"},
		{"ben", "cas", surfaceNotes, "decision: box goes left"},
	}
	for _, m := range script {
		payload := append([]byte{m.surface}, m.text...)
		if err := eps[m.from].SendTo(m.to, payload, true); err != nil {
			log.Fatal(err)
		}
		got, err := eps[m.to].ReceiveValid()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s [%s]: %q\n", m.from, m.to, surfaceNames[uint64(got.Payload[0])], got.Payload[1:])
	}

	// Each sender's FAM shows one flow per (destination, surface) pair
	// it used — the application conversations, not the host pairs.
	fmt.Println()
	for _, u := range users {
		s := eps[u].FAMStats()
		if s.Lookups == 0 {
			continue
		}
		fmt.Printf("%s: %d datagrams classified into %d application flows\n",
			u, s.Lookups, s.FlowsCreated)
	}
	fmt.Println("\n(ann->ben diagram, ann->ben chat, ann->cas diagram, ... — one key each;")
	fmt.Println(" a host-pair scheme would have protected all of them under a single key)")
}
