// Quickstart: two principals exchanging authenticated, encrypted
// datagrams with zero-message keying — no handshake, no security
// association setup, no hard state.
package main

import (
	"fmt"
	"log"

	fbs "fbs"
)

func main() {
	// A Domain is the certificate infrastructure FBS assumes: a CA and
	// a directory of public-value certificates.
	domain, err := fbs.NewDomain("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// An in-memory datagram network (loss-free here; see the
	// securecopy example for an impaired one).
	network := fbs.NewNetwork(fbs.Impairments{})

	// Endpoints mint an identity, enroll it, and attach to the network.
	alice, err := domain.NewEndpoint("alice", network)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := domain.NewEndpoint("bob", network)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	// Send three datagrams: note there is no connection setup of any
	// kind — the first datagram is immediately sendable. The `true`
	// argument requests confidentiality (DES-CBC under the flow key);
	// the MAC is always present.
	for i, msg := range []string{
		"first datagram: starts a flow and derives its key",
		"second datagram: same flow, cached key — no crypto setup",
		"third datagram: still zero protocol messages exchanged",
	} {
		if err := alice.SendTo("bob", []byte(msg), true); err != nil {
			log.Fatal(err)
		}
		dg, err := bob.ReceiveValid()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d: bob verified+decrypted from %s: %q\n", i+1, dg.Source, dg.Payload)
	}

	// The protocol's bookkeeping shows what happened: one flow, one
	// master key computation, one upcall — everything else came out of
	// the soft-state caches.
	fam := alice.FAMStats()
	tfkc := alice.TFKCStats()
	ks, _, _, upcalls := alice.KeyStats()
	fmt.Printf("\nalice: flows created: %d, TFKC hits/misses: %d/%d, DH exponentiations: %d, MKD upcalls: %d\n",
		fam.FlowsCreated, tfkc.Hits, tfkc.Misses, ks.MasterKeyComputes, upcalls)
	fmt.Printf("bob:   accepted: %d, rejected: %d\n",
		bob.Metrics().Received, bob.Metrics().RejectedMAC+bob.Metrics().RejectedStale)
}
