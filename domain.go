package fbs

import (
	"fmt"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// Domain bundles the public-value infrastructure the paper assumes
// exists around FBS (Section 5.2): a certificate authority, a directory
// of public-value certificates, and a verifier with the CA key pinned.
// One Domain stands in for "a distributed certification hierarchy or a
// secure DNS service".
type Domain struct {
	// Name is the CA name embedded in issued certificates.
	Name string
	// Group is the Diffie-Hellman group all principals share.
	Group cryptolib.DHGroup
	// CertLifetime is the validity of issued certificates; default 30
	// days.
	CertLifetime time.Duration
	// Clock drives certificate validity and endpoint timestamps.
	Clock Clock

	ca  *cert.Authority
	dir *cert.StaticDirectory
	ver *cert.Verifier
}

// DomainOption mutates a Domain under construction.
type DomainOption func(*Domain)

// WithGroup selects the Diffie-Hellman group (e.g. cryptolib.TestGroup
// in tests, where 1024-bit keying is needlessly slow).
func WithGroup(g cryptolib.DHGroup) DomainOption {
	return func(d *Domain) { d.Group = g }
}

// WithClock installs a simulation clock.
func WithClock(c Clock) DomainOption {
	return func(d *Domain) { d.Clock = c }
}

// NewDomain creates a security domain with a fresh 1024-bit CA key.
func NewDomain(name string, opts ...DomainOption) (*Domain, error) {
	d := &Domain{
		Name:         name,
		Group:        cryptolib.Oakley2,
		CertLifetime: 30 * 24 * time.Hour,
		Clock:        core.RealClock{},
	}
	for _, o := range opts {
		o(d)
	}
	ca, err := cert.NewAuthority(name, 1024)
	if err != nil {
		return nil, fmt.Errorf("fbs: creating domain CA: %w", err)
	}
	d.ca = ca
	d.dir = cert.NewStaticDirectory()
	d.ver = &cert.Verifier{CAKey: ca.PublicKey(), CA: name}
	return d, nil
}

// Directory returns the domain's certificate directory.
func (d *Domain) Directory() Directory { return d.dir }

// CAKey returns the domain CA's public verification key, for relying
// parties outside this process.
func (d *Domain) CAKey() cryptolib.RSAPublicKey { return d.ca.PublicKey() }

// Verifier returns a certificate verifier pinned to this domain's CA.
func (d *Domain) Verifier() *cert.Verifier { return d.ver }

// NewPrincipal mints an identity, issues its public-value certificate
// and publishes it in the directory.
func (d *Domain) NewPrincipal(addr Address) (*Identity, error) {
	id, err := principal.NewIdentity(addr, d.Group)
	if err != nil {
		return nil, err
	}
	if err := d.Enroll(id); err != nil {
		return nil, err
	}
	return id, nil
}

// Enroll issues and publishes a certificate for an existing identity —
// also the way to re-publish after Identity.Rekey.
func (d *Domain) Enroll(id *Identity) error {
	now := d.Clock.Now()
	c, err := d.ca.Issue(id, now.Add(-time.Minute), now.Add(d.CertLifetime))
	if err != nil {
		return fmt.Errorf("fbs: enrolling %q: %w", id.Addr, err)
	}
	d.dir.Publish(c)
	return nil
}

// NewEndpoint mints a principal, attaches it to the network and returns
// a ready endpoint with the domain's certificate machinery wired in.
// Extra configuration can be layered with opts.
func (d *Domain) NewEndpoint(addr Address, net *Network, opts ...func(*Config)) (*Endpoint, error) {
	id, err := d.NewPrincipal(addr)
	if err != nil {
		return nil, err
	}
	tr, err := net.Attach(addr, 0)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Identity:  id,
		Transport: tr,
		Directory: d.dir,
		Verifier:  d.ver,
		Clock:     d.Clock,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewEndpoint(cfg)
}

// NewShardedEndpoint enrolls addr once and builds n endpoint shards
// sharing that identity, each over its own transport from mkTransport
// (the SO_REUSEPORT model: one socket per core). Steer outgoing
// datagrams with ShardGroup.ShardOf and incoming ones with
// ShardOfIncoming so each flow's FAM and replay state stays on one
// shard.
func (d *Domain) NewShardedEndpoint(addr Address, n int, mkTransport func(shard int) (Transport, error), opts ...func(*Config)) (*ShardGroup, error) {
	id, err := d.NewPrincipal(addr)
	if err != nil {
		return nil, err
	}
	return core.NewShardGroup(n, func(shard int) (Config, error) {
		tr, err := mkTransport(shard)
		if err != nil {
			return Config{}, err
		}
		cfg := Config{
			Identity:  id,
			Transport: tr,
			Directory: d.dir,
			Verifier:  d.ver,
			Clock:     d.Clock,
		}
		for _, o := range opts {
			o(&cfg)
		}
		return cfg, nil
	})
}

// NewEndpointOn wires an endpoint for an already-enrolled identity over
// an arbitrary transport (e.g. transport.UDPTransport).
func (d *Domain) NewEndpointOn(id *Identity, tr Transport, opts ...func(*Config)) (*Endpoint, error) {
	cfg := Config{
		Identity:  id,
		Transport: tr,
		Directory: d.dir,
		Verifier:  d.ver,
		Clock:     d.Clock,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewEndpoint(cfg)
}
