module fbs

go 1.22
