// Package fbs is a Go implementation of the Flow-Based Security
// protocol (FBS) from Mittra and Woo, "A Flow-Based Approach to Datagram
// Security", SIGCOMM 1997.
//
// FBS secures datagram communications without sacrificing datagram
// semantics: no connection setup, no security-association negotiation,
// and no hard state at either end. Its two mechanisms are
//
//   - the flow association mechanism (FAM), which classifies outgoing
//     datagrams into flows under a pluggable security flow policy, and
//   - zero-message keying, which derives a per-flow key
//     K_f = H(sfl | K_{S,D} | S | D) from the implicit Diffie-Hellman
//     pair-based master key, so the receiver can compute the key from
//     the datagram alone.
//
// # Quick start
//
//	domain, _ := fbs.NewDomain("example") // a CA + directory
//	net := fbs.NewNetwork(fbs.Impairments{})
//
//	alice, _ := domain.NewEndpoint("alice", net)
//	bob, _ := domain.NewEndpoint("bob", net)
//
//	alice.SendTo("bob", []byte("hello, flows"), true /* encrypt */)
//	dg, _ := bob.ReceiveValid()
//
// Endpoints expose the full protocol surface — Seal/Open for embedding
// FBS under another protocol layer (see the IP mapping in
// fbs/internal/ip), policies, metrics, and the PVC/MKC/TFKC/RFKC cache
// hierarchy.
//
// The repository also contains the paper's complete experimental
// apparatus: see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduction of every table and figure.
package fbs

import (
	"fbs/internal/baseline"
	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Core protocol types, re-exported from the implementation package.
type (
	// Endpoint is one principal's FBS protocol instance.
	Endpoint = core.Endpoint
	// Config assembles an Endpoint; see NewEndpoint.
	Config = core.Config
	// Header is the security flow header carried by every datagram.
	Header = core.Header
	// SFL is a security flow label.
	SFL = core.SFL
	// FlowID is the attribute set a security flow policy distinguishes
	// flows by.
	FlowID = core.FlowID
	// Policy is a security flow policy: a mapper plus a sweeper.
	Policy = core.Policy
	// ThresholdPolicy is the paper's Section 7.1 idle-timeout policy.
	ThresholdPolicy = core.ThresholdPolicy
	// HostPairPolicy degrades FBS to host-pair granularity.
	HostPairPolicy = core.HostPairPolicy
	// Selector extracts flow attributes from outgoing datagrams.
	Selector = core.Selector
	// Metrics are the endpoint's counters.
	Metrics = core.Metrics
	// Clock abstracts time (see SimClock for simulations).
	Clock = core.Clock
	// SimClock is a manually advanced clock.
	SimClock = core.SimClock
	// Timestamp is the header's minutes-since-1996 time value.
	Timestamp = core.Timestamp
)

// Observability. The taxonomy and the sampling hook live in core so the
// protocol package stays dependency-free; the collectors (histograms,
// flight recorder, Prometheus exposition, admin HTTP plane) are in
// fbs/internal/obs.
type (
	// DropReason classifies why FBS processing refused a datagram.
	DropReason = core.DropReason
	// Observer receives sampled per-packet pipeline telemetry; see
	// Config.Observer.
	Observer = core.Observer
	// PacketSample is one sampled packet's record: flow, verdict, and
	// per-stage timings.
	PacketSample = core.PacketSample
	// Stage names one timed span of the seal/open pipeline.
	Stage = core.Stage
)

// Identity and naming.
type (
	// Address uniquely names a principal.
	Address = principal.Address
	// Identity is a principal with its Diffie-Hellman keying material.
	Identity = principal.Identity
	// Certificate binds an address to a public value under a CA
	// signature.
	Certificate = cert.Certificate
	// Directory serves certificates to the master key daemon.
	Directory = cert.Directory
)

// Transport.
type (
	// Datagram is a self-contained message between principals.
	Datagram = transport.Datagram
	// Transport is the underlying insecure datagram service.
	Transport = transport.Transport
	// Network is an in-memory datagram network with a fault model.
	Network = transport.Network
	// Impairments configures loss, duplication, reordering and
	// corruption.
	Impairments = transport.Impairments
)

// Batched data plane and sharding.
type (
	// BatchResult describes one datagram's outcome within a
	// SealBatch/OpenBatch call.
	BatchResult = core.BatchResult
	// BatchStats counts batch calls by log2 size class.
	BatchStats = core.BatchStats
	// ShardGroup partitions flows across per-core endpoint shards by
	// the flow hash (RSS-style steering).
	ShardGroup = core.ShardGroup
)

// NewShardGroup builds n endpoint shards, calling mk for each shard's
// Config. Shards share no locks, caches, or counters; steer outgoing
// datagrams with ShardOf/ShardOfPair and incoming ones with
// ShardOfIncoming so each flow's replay and FAM state stays on one
// shard.
func NewShardGroup(n int, mk func(shard int) (Config, error)) (*ShardGroup, error) {
	return core.NewShardGroup(n, mk)
}

// Sealer is the minimal protection interface shared by FBS and the
// baseline schemes (package fbs/internal/baseline).
type Sealer = baseline.Sealer

// DHGroup is a Diffie-Hellman group (prime modulus and generator).
type DHGroup = cryptolib.DHGroup

// Well-known groups.
var (
	// Oakley1 is the 768-bit MODP group.
	Oakley1 = cryptolib.Oakley1
	// Oakley2 is the 1024-bit MODP group (the default).
	Oakley2 = cryptolib.Oakley2
	// TestGroup is a 512-bit group for tests and examples only.
	TestGroup = cryptolib.TestGroup
)

// Receive-side rejection errors.
var (
	ErrStale     = core.ErrStale
	ErrBadMAC    = core.ErrBadMAC
	ErrReplay    = core.ErrReplay
	ErrMalformed = core.ErrMalformed
	ErrNotForUs  = core.ErrNotForUs
)

// ErrClosed is returned once a transport endpoint is closed.
var ErrClosed = transport.ErrClosed

// NewEndpoint builds an endpoint from an explicit Config. Most callers
// can use Domain.NewEndpoint instead, which wires the certificate
// machinery automatically.
func NewEndpoint(cfg Config) (*Endpoint, error) { return core.NewEndpoint(cfg) }

// NewNetwork creates an in-memory datagram network.
func NewNetwork(imp Impairments) *Network { return transport.NewNetwork(imp) }

// NewIdentity creates a principal identity in the default (Oakley group
// 2) Diffie-Hellman group.
func NewIdentity(addr Address) (*Identity, error) {
	return principal.NewIdentity(addr, cryptolib.Oakley2)
}

// FlowKey derives K_f = H(sfl | master | S | D); exposed for protocol
// analysis and interoperability tests.
func FlowKey(sfl SFL, master [16]byte, src, dst Address) [16]byte {
	return core.FlowKey(cryptolib.HashMD5, sfl, master, src, dst)
}

// FlowInfo is a point-in-time description of one live flow (see
// Endpoint.Flows).
type FlowInfo = core.FlowInfo
