// Command fbsudp runs FBS between real processes over UDP: a minimal
// secure-datagram chat/echo demonstrating the protocol outside the
// in-memory harness.
//
// Because zero-message keying needs both sides' public values, the
// sender process plays the Domain: it mints both identities, writes the
// receiver's identity material and the shared directory to a state file,
// and the receiver loads it. (A production deployment would use a real
// certificate service instead; see internal/cert.)
//
// Usage:
//
//	fbsudp -mode recv -listen 127.0.0.1:7001 -state /tmp/fbsudp.state
//	fbsudp -mode send -listen 127.0.0.1:7000 -peer 127.0.0.1:7001 \
//	       -state /tmp/fbsudp.state -msg "hello over real UDP"
//
// Start the receiver first with the same -state path.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"os"
	"time"

	"fbs/internal/cert"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"

	fbs "fbs"
)

type state struct {
	// Receiver's private value (hex) — the "provisioning" side channel.
	RecvPrivate string `json:"recv_private"`
	// Serialized certificates for both principals.
	Certs [][]byte `json:"certs"`
	// CA public key.
	CAN string `json:"ca_n"`
	CAE string `json:"ca_e"`
}

func main() {
	mode := flag.String("mode", "", "send or recv")
	listen := flag.String("listen", "127.0.0.1:0", "local UDP address")
	peer := flag.String("peer", "", "peer UDP address (send mode)")
	statePath := flag.String("state", "/tmp/fbsudp.state", "shared provisioning file")
	msg := flag.String("msg", "hello over real UDP", "message to send")
	count := flag.Int("count", 3, "datagrams to send/receive")
	flag.Parse()

	var err error
	switch *mode {
	case "send":
		err = send(*listen, *peer, *statePath, *msg, *count)
	case "recv":
		err = recv(*listen, *statePath, *count)
	default:
		err = fmt.Errorf("need -mode send or -mode recv")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbsudp:", err)
		os.Exit(1)
	}
}

func send(listen, peerAddr, statePath, msg string, count int) error {
	if peerAddr == "" {
		return fmt.Errorf("send mode needs -peer")
	}
	d, err := fbs.NewDomain("fbsudp")
	if err != nil {
		return err
	}
	sender, err := d.NewPrincipal("sender")
	if err != nil {
		return err
	}
	// Mint the receiver's identity with a known private value so the
	// receiver process can reconstruct it from the state file.
	recvPriv, err := d.Group.GeneratePrivate()
	if err != nil {
		return err
	}
	recvID, err := principal.NewIdentityWithPrivate("receiver", d.Group, recvPriv)
	if err != nil {
		return err
	}
	if err := d.Enroll(recvID); err != nil {
		return err
	}
	// Write provisioning state.
	senderCert, err := lookupWire(d, "sender")
	if err != nil {
		return err
	}
	recvCert, err := lookupWire(d, "receiver")
	if err != nil {
		return err
	}
	caKey := caPublic(d)
	st := state{
		RecvPrivate: hex.EncodeToString(recvPriv.Bytes()),
		Certs:       [][]byte{senderCert, recvCert},
		CAN:         caKey.N.Text(16),
		CAE:         caKey.E.Text(16),
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := os.WriteFile(statePath, blob, 0600); err != nil {
		return err
	}
	fmt.Printf("provisioning state written to %s — start the receiver, then press enter\n", statePath)
	fmt.Scanln()

	udp, err := transport.NewUDPTransport("sender", listen)
	if err != nil {
		return err
	}
	if err := udp.AddPeer("receiver", peerAddr); err != nil {
		return err
	}
	ep, err := d.NewEndpointOn(sender, udp)
	if err != nil {
		return err
	}
	defer ep.Close()
	for i := 0; i < count; i++ {
		payload := fmt.Sprintf("%s [%d]", msg, i)
		if err := ep.SendTo("receiver", []byte(payload), true); err != nil {
			return err
		}
		fmt.Printf("sent encrypted datagram %d: %q\n", i, payload)
		time.Sleep(100 * time.Millisecond)
	}
	m := ep.Metrics()
	fmt.Printf("done: %d datagrams, %d bytes\n", m.Sent, m.SentBytes)
	return nil
}

func recv(listen, statePath string, count int) error {
	blob, err := os.ReadFile(statePath)
	if err != nil {
		return fmt.Errorf("reading provisioning state (run the sender first): %w", err)
	}
	var st state
	if err := json.Unmarshal(blob, &st); err != nil {
		return err
	}
	ep, err := rebuildEndpoint(st, listen)
	if err != nil {
		return err
	}
	defer ep.Close()
	fmt.Printf("listening on %s\n", listen)
	for i := 0; i < count; i++ {
		dg, err := ep.ReceiveValid()
		if err != nil {
			return err
		}
		fmt.Printf("verified+decrypted from %s: %q\n", dg.Source, dg.Payload)
	}
	m := ep.Metrics()
	fmt.Printf("done: %d accepted, %d rejected (MAC), %d rejected (stale)\n",
		m.Received, m.RejectedMAC, m.RejectedStale)
	return nil
}

// lookupWire fetches a certificate from the domain directory in wire
// form.
func lookupWire(d *fbs.Domain, addr fbs.Address) ([]byte, error) {
	c, err := d.Directory().Lookup(addr)
	if err != nil {
		return nil, err
	}
	return c.Marshal(), nil
}

// caPublic extracts the domain CA verification key.
func caPublic(d *fbs.Domain) cryptolib.RSAPublicKey { return d.CAKey() }

// rebuildEndpoint reconstructs the receiver endpoint from provisioning
// state: certificates, CA key, and the receiver's private value.
func rebuildEndpoint(st state, listen string) (*fbs.Endpoint, error) {
	dir := cert.NewStaticDirectory()
	var recvCert *cert.Certificate
	for _, wire := range st.Certs {
		c, err := cert.Unmarshal(wire)
		if err != nil {
			return nil, err
		}
		dir.Publish(c)
		if c.Subject == "receiver" {
			recvCert = c
		}
	}
	if recvCert == nil {
		return nil, fmt.Errorf("state carries no receiver certificate")
	}
	privBytes, err := hex.DecodeString(st.RecvPrivate)
	if err != nil {
		return nil, err
	}
	n, ok := new(big.Int).SetString(st.CAN, 16)
	if !ok {
		return nil, fmt.Errorf("bad CA modulus")
	}
	e, ok := new(big.Int).SetString(st.CAE, 16)
	if !ok {
		return nil, fmt.Errorf("bad CA exponent")
	}
	id, err := principal.NewIdentityWithPrivate("receiver", recvCert.Group(), new(big.Int).SetBytes(privBytes))
	if err != nil {
		return nil, err
	}
	udp, err := transport.NewUDPTransport("receiver", listen)
	if err != nil {
		return nil, err
	}
	return fbs.NewEndpoint(fbs.Config{
		Identity:  id,
		Transport: udp,
		Directory: dir,
		Verifier:  &cert.Verifier{CAKey: cryptolib.RSAPublicKey{N: n, E: e}, CA: "fbsudp"},
	})
}
