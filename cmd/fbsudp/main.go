// Command fbsudp runs FBS between real processes over UDP: a minimal
// secure-datagram chat/echo demonstrating the protocol outside the
// in-memory harness.
//
// Because zero-message keying needs both sides' public values, the
// sender process plays the Domain: it mints both identities, writes the
// receiver's identity material and the shared directory to a state file,
// and the receiver loads it. (A production deployment would use a real
// certificate service instead; see internal/cert.)
//
// Usage:
//
//	fbsudp -mode recv -listen 127.0.0.1:7001 -state /tmp/fbsudp.state
//	fbsudp -mode send -listen 127.0.0.1:7000 -peer 127.0.0.1:7001 \
//	       -state /tmp/fbsudp.state -msg "hello over real UDP"
//
// Start the receiver first with the same -state path. With -batch N
// both sides drive the batched data plane instead: the sender seals and
// transmits N-datagram windows through SendBatch (sendmmsg/UDP GSO on
// Linux), the receiver drains them through ReceiveBatch (recvmmsg).
//
// With -prefilter on both sides the receiver pins the edge pre-filter
// at its sketch+challenge rung: first-contact datagrams are refused
// before any soft state or DH work and answered with a stateless HMAC
// cookie challenge. The sender absorbs the challenge, jars the cookie,
// and retransmits with the echo envelope attached. -prefilter-seed
// (receiver side) derives the rotating cookie secret deterministically
// so a restarted receiver keeps honouring cookies it minted before the
// crash.
package main

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/big"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/obs"
	"fbs/internal/principal"
	"fbs/internal/transport"

	fbs "fbs"
)

type state struct {
	// Receiver's private value (hex) — the "provisioning" side channel.
	RecvPrivate string `json:"recv_private"`
	// Serialized certificates for both principals.
	Certs [][]byte `json:"certs"`
	// CA public key.
	CAN string `json:"ca_n"`
	CAE string `json:"ca_e"`
	// Sender's bound UDP address, so the receiver can route return
	// traffic (challenge frames) before the sender is a known peer.
	SendAddr string `json:"send_addr,omitempty"`
}

func main() {
	mode := flag.String("mode", "", "send or recv")
	listen := flag.String("listen", "127.0.0.1:0", "local UDP address")
	peer := flag.String("peer", "", "peer UDP address (send mode)")
	statePath := flag.String("state", "/tmp/fbsudp.state", "shared provisioning file")
	msg := flag.String("msg", "hello over real UDP", "message to send")
	count := flag.Int("count", 3, "datagrams to send/receive")
	adminAddr := flag.String("admin", "", "serve the observability admin plane (/metrics, /flows, /recorder, pprof) on this address")
	statsJSON := flag.Bool("stats-json", false, "emit the completion stats summary as JSON on stdout")
	batch := flag.Int("batch", 0, "batch size for SendBatch/ReceiveBatch (0 = single-datagram calls)")
	prefilter := flag.Bool("prefilter", false, "recv: pin the edge pre-filter at sketch+challenge; send: absorb challenges and attach cookie echoes")
	prefilterSeed := flag.String("prefilter-seed", "", "recv: derive the rotating cookie secret from this seed (restarts keep honouring minted cookies)")
	flag.Parse()

	var err error
	switch *mode {
	case "send":
		err = send(*listen, *peer, *statePath, *msg, *count, *batch, *adminAddr, *statsJSON, *prefilter)
	case "recv":
		err = recv(*listen, *statePath, *count, *batch, *adminAddr, *statsJSON, *prefilter, *prefilterSeed)
	default:
		err = fmt.Errorf("need -mode send or -mode recv")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbsudp:", err)
		os.Exit(1)
	}
}

// instrument attaches the observability plumbing to one endpoint: a
// fully-sampled pipeline (fbsudp's packet rates are interactive, so
// every packet is cheap to record), the optional admin HTTP plane, and
// a SIGINT/SIGTERM handler that prints the stats summary before exit.
// The returned function prints the summary; call it once on normal
// completion.
func instrument(role string, ep *fbs.Endpoint, pipe *obs.Pipeline, adminAddr string, statsJSON bool) (func(), error) {
	if adminAddr != "" {
		admin := obs.NewAdmin(nil)
		obs.RegisterEndpoint(admin.Registry, role, ep)
		obs.RegisterPipeline(admin.Registry, role, pipe)
		admin.WatchEndpoint(role, ep)
		admin.WatchRecorder(pipe.Recorder())
		bound, _, err := admin.Serve(adminAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "fbsudp: admin plane at http://%s/\n", bound)
	}
	report := func() { printStats(role, ep, statsJSON) }
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		report()
		os.Exit(130)
	}()
	return report, nil
}

// statsReport is the -stats-json document.
type statsReport struct {
	Role        string               `json:"role"`
	Metrics     core.Metrics         `json:"metrics"`
	Drops       map[string]uint64    `json:"drops,omitempty"`
	FAM         core.FAMStats        `json:"fam"`
	ActiveFlows int                  `json:"active_flows"`
	Caches      []core.CacheInfo     `json:"caches"`
	KeyService  core.KeyServiceStats `json:"key_service"`
	MKDUpcalls  uint64               `json:"mkd_upcalls"`
	Prefilter   core.PrefilterStats  `json:"prefilter"`
}

func printStats(role string, ep *fbs.Endpoint, asJSON bool) {
	m := ep.Metrics()
	ks, _, _, upcalls := ep.KeyStats()
	rep := statsReport{
		Role:        role,
		Metrics:     m,
		Drops:       make(map[string]uint64),
		FAM:         ep.FAMStats(),
		ActiveFlows: ep.ActiveFlows(),
		Caches:      ep.Caches(),
		KeyService:  ks,
		MKDUpcalls:  upcalls,
		Prefilter:   ep.Stats().Prefilter,
	}
	for _, d := range core.DropReasons() {
		if n := m.Drops[d]; n > 0 {
			rep.Drops[d.String()] = n
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
		return
	}
	fmt.Printf("--- %s endpoint stats ---\n", role)
	fmt.Printf("sent:     %d datagrams (%d secret), %d bytes\n", m.Sent, m.SentSecret, m.SentBytes)
	fmt.Printf("received: %d datagrams, %d bytes\n", m.Received, m.ReceivedBytes)
	if len(rep.Drops) == 0 {
		fmt.Println("drops:    none")
	} else {
		fmt.Print("drops:   ")
		for _, d := range core.DropReasons() {
			if n := m.Drops[d]; n > 0 {
				fmt.Printf(" %s=%d", d, n)
			}
		}
		fmt.Println()
	}
	fmt.Printf("FAM:      lookups=%d hits=%d created=%d expired=%d active=%d\n",
		rep.FAM.Lookups, rep.FAM.Hits, rep.FAM.FlowsCreated, rep.FAM.Expirations, rep.ActiveFlows)
	for _, c := range rep.Caches {
		fmt.Printf("cache %-5s %d/%d used, hits=%d misses=%d installs=%d evictions=%d\n",
			c.Name, c.Used, c.Slots, c.Stats.Hits, c.Stats.Misses, c.Stats.Installs, c.Stats.Evictions)
	}
	fmt.Printf("keying:   master key requests=%d computes=%d cert fetches=%d verifies=%d failures=%d mkd upcalls=%d\n",
		ks.MasterKeyRequests, ks.MasterKeyComputes, ks.CertFetches, ks.CertVerifies, ks.Failures, upcalls)
	if pf := rep.Prefilter; pf.Challenged+pf.EchoAccepted+pf.CookiesLearned+pf.CookiesAttached+pf.SketchSheds > 0 {
		fmt.Printf("prefilter: level=%d challenged=%d echo ok=%d bad=%d sheds=%d cookies learned=%d attached=%d\n",
			pf.Level, pf.Challenged, pf.EchoAccepted, pf.EchoRejected, pf.SketchSheds, pf.CookiesLearned, pf.CookiesAttached)
	}
}

func send(listen, peerAddr, statePath, msg string, count, batch int, adminAddr string, statsJSON bool, prefilter bool) error {
	if peerAddr == "" {
		return fmt.Errorf("send mode needs -peer")
	}
	if prefilter && batch > 0 {
		return fmt.Errorf("-prefilter drives the single-datagram path; drop -batch")
	}
	d, err := fbs.NewDomain("fbsudp")
	if err != nil {
		return err
	}
	sender, err := d.NewPrincipal("sender")
	if err != nil {
		return err
	}
	// Mint the receiver's identity with a known private value so the
	// receiver process can reconstruct it from the state file.
	recvPriv, err := d.Group.GeneratePrivate()
	if err != nil {
		return err
	}
	recvID, err := principal.NewIdentityWithPrivate("receiver", d.Group, recvPriv)
	if err != nil {
		return err
	}
	if err := d.Enroll(recvID); err != nil {
		return err
	}
	// Write provisioning state.
	senderCert, err := lookupWire(d, "sender")
	if err != nil {
		return err
	}
	recvCert, err := lookupWire(d, "receiver")
	if err != nil {
		return err
	}
	// Bind the socket before writing state so the receiver learns where
	// to route return traffic (the pre-filter's challenge frames).
	udp, err := transport.NewUDPTransport("sender", listen)
	if err != nil {
		return err
	}
	if err := udp.AddPeer("receiver", peerAddr); err != nil {
		return err
	}
	caKey := caPublic(d)
	st := state{
		RecvPrivate: hex.EncodeToString(recvPriv.Bytes()),
		Certs:       [][]byte{senderCert, recvCert},
		CAN:         caKey.N.Text(16),
		CAE:         caKey.E.Text(16),
		SendAddr:    udp.LocalAddr().String(),
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := os.WriteFile(statePath, blob, 0600); err != nil {
		return err
	}
	fmt.Printf("provisioning state written to %s — start the receiver, then press enter\n", statePath)
	fmt.Scanln()
	pipe := obs.NewPipeline(obs.PipelineConfig{SampleEvery: 1})
	ep, err := d.NewEndpointOn(sender, udp, func(c *core.Config) {
		c.Observer = pipe
		c.Prefilter.Enable = prefilter
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	report, err := instrument("sender", ep, pipe, adminAddr, statsJSON)
	if err != nil {
		return err
	}
	if prefilter {
		// The receiver answers first contact with a challenge frame on
		// our socket; drain it through the endpoint so the cookie lands
		// in the jar and later sends carry the echo envelope.
		go func() {
			for {
				if _, err := ep.Receive(); errors.Is(err, transport.ErrClosed) {
					return
				}
			}
		}()
	}
	if batch > 0 {
		// Batched data plane: seal whole windows through SealBatch and
		// hand them to the transport's sendmmsg path in one call.
		for i := 0; i < count; i += batch {
			n := batch
			if count-i < n {
				n = count - i
			}
			dgs := make([]transport.Datagram, n)
			for k := range dgs {
				dgs[k] = transport.Datagram{
					Source:      "sender",
					Destination: "receiver",
					Payload:     []byte(fmt.Sprintf("%s [%d]", msg, i+k)),
				}
			}
			sent, err := ep.SendBatch(dgs, true)
			if err != nil {
				return err
			}
			fmt.Printf("sent encrypted batch of %d (datagrams %d-%d)\n", sent, i, i+sent-1)
			time.Sleep(100 * time.Millisecond)
		}
		report()
		return nil
	}
	var learned uint64
	for i := 0; i < count; i++ {
		payload := fmt.Sprintf("%s [%d]", msg, i)
		if err := ep.SendTo("receiver", []byte(payload), true); err != nil {
			return err
		}
		fmt.Printf("sent encrypted datagram %d: %q\n", i, payload)
		time.Sleep(100 * time.Millisecond)
		// A challenged datagram was shed at the receiver's edge; once
		// the drain goroutine absorbs the cookie, resend it so every
		// payload is delivered.
		if now := ep.Stats().Prefilter.CookiesLearned; now > learned {
			learned = now
			fmt.Printf("challenge absorbed — resending datagram %d with cookie echo\n", i)
			if err := ep.SendTo("receiver", []byte(payload), true); err != nil {
				return err
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	report()
	return nil
}

func recv(listen, statePath string, count, batch int, adminAddr string, statsJSON bool, prefilter bool, prefilterSeed string) error {
	blob, err := os.ReadFile(statePath)
	if err != nil {
		return fmt.Errorf("reading provisioning state (run the sender first): %w", err)
	}
	var st state
	if err := json.Unmarshal(blob, &st); err != nil {
		return err
	}
	var pf core.PrefilterConfig
	if prefilter {
		pf = core.PrefilterConfig{
			Enable:     true,
			ForceLevel: core.PrefilterChallenge,
			SecretSeed: []byte(prefilterSeed),
		}
	}
	pipe := obs.NewPipeline(obs.PipelineConfig{SampleEvery: 1})
	ep, err := rebuildEndpoint(st, listen, pipe, pf)
	if err != nil {
		return err
	}
	defer ep.Close()
	report, err := instrument("receiver", ep, pipe, adminAddr, statsJSON)
	if err != nil {
		return err
	}
	if prefilter {
		fmt.Println("edge pre-filter pinned at sketch+challenge: first contact must echo a cookie")
	}
	fmt.Printf("listening on %s\n", listen)
	if batch > 0 {
		// Batched data plane: one ReceiveBatch call drains up to a whole
		// recvmmsg window and opens it through OpenBatch.
		for got := 0; got < count; {
			accepted, arrived, err := ep.ReceiveBatch(batch)
			if err != nil {
				return err
			}
			for _, dg := range accepted {
				fmt.Printf("verified+decrypted from %s: %q\n", dg.Source, dg.Payload)
			}
			if dropped := arrived - len(accepted); dropped > 0 {
				fmt.Printf("batch dropped %d of %d arrived datagrams\n", dropped, arrived)
			}
			got += arrived
		}
		report()
		return nil
	}
	for i := 0; i < count; i++ {
		dg, err := ep.ReceiveValid()
		if err != nil {
			return err
		}
		fmt.Printf("verified+decrypted from %s: %q\n", dg.Source, dg.Payload)
	}
	report()
	return nil
}

// lookupWire fetches a certificate from the domain directory in wire
// form.
func lookupWire(d *fbs.Domain, addr fbs.Address) ([]byte, error) {
	c, err := d.Directory().Lookup(addr)
	if err != nil {
		return nil, err
	}
	return c.Marshal(), nil
}

// caPublic extracts the domain CA verification key.
func caPublic(d *fbs.Domain) cryptolib.RSAPublicKey { return d.CAKey() }

// rebuildEndpoint reconstructs the receiver endpoint from provisioning
// state: certificates, CA key, and the receiver's private value.
func rebuildEndpoint(st state, listen string, pipe *obs.Pipeline, pf core.PrefilterConfig) (*fbs.Endpoint, error) {
	dir := cert.NewStaticDirectory()
	var recvCert *cert.Certificate
	for _, wire := range st.Certs {
		c, err := cert.Unmarshal(wire)
		if err != nil {
			return nil, err
		}
		dir.Publish(c)
		if c.Subject == "receiver" {
			recvCert = c
		}
	}
	if recvCert == nil {
		return nil, fmt.Errorf("state carries no receiver certificate")
	}
	privBytes, err := hex.DecodeString(st.RecvPrivate)
	if err != nil {
		return nil, err
	}
	n, ok := new(big.Int).SetString(st.CAN, 16)
	if !ok {
		return nil, fmt.Errorf("bad CA modulus")
	}
	e, ok := new(big.Int).SetString(st.CAE, 16)
	if !ok {
		return nil, fmt.Errorf("bad CA exponent")
	}
	id, err := principal.NewIdentityWithPrivate("receiver", recvCert.Group(), new(big.Int).SetBytes(privBytes))
	if err != nil {
		return nil, err
	}
	udp, err := transport.NewUDPTransport("receiver", listen)
	if err != nil {
		return nil, err
	}
	if st.SendAddr != "" {
		if err := udp.AddPeer("sender", st.SendAddr); err != nil {
			return nil, err
		}
	}
	return fbs.NewEndpoint(fbs.Config{
		Identity:  id,
		Transport: udp,
		Directory: dir,
		Verifier:  &cert.Verifier{CAKey: cryptolib.RSAPublicKey{N: n, E: e}, CA: "fbsudp"},
		Observer:  pipe,
		Prefilter: pf,
	})
}
