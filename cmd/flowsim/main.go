// Command flowsim is the flow simulation program of Section 7.3: it
// feeds a packet trace through the security flow policy of Section 7.1
// and regenerates Figures 9 through 14.
//
// Usage:
//
//	flowsim -fig 9              # flow size CDFs (packets, bytes)
//	flowsim -fig 10             # flow duration CDF
//	flowsim -fig 11             # cache miss rate vs cache size
//	flowsim -fig 12             # active flows over time
//	flowsim -fig 13             # active flows for different THRESHOLDs
//	flowsim -fig 14             # repeated flows vs THRESHOLD
//	flowsim -fig all            # everything
//
// By default a deterministic campus trace is generated internally; use
// -trace FILE to analyse a capture produced by cmd/tracegen, and
// -threshold to change the flow idle timeout (default 600 s).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fbs/internal/flowsim"
	"fbs/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 9, 10, 11, 12, 13, 14 or all")
	kind := flag.String("kind", "campus", "built-in trace kind: campus, www or both")
	traceFile := flag.String("trace", "", "trace file from cmd/tracegen (overrides -kind)")
	threshold := flag.Int("threshold", 600, "flow THRESHOLD in seconds")
	seed := flag.Uint64("seed", 1997, "seed for the built-in trace")
	minutes := flag.Int("minutes", 60, "duration of the built-in trace")
	flag.Parse()

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		dur := time.Duration(*minutes) * time.Minute
		switch *kind {
		case "campus":
			tr = trace.Campus(trace.CampusConfig{Seed: *seed, Duration: dur, Desktops: 25})
		case "www":
			tr = trace.WWW(trace.WWWConfig{Seed: *seed, Duration: dur})
		case "both":
			tr = trace.Merge(
				trace.Campus(trace.CampusConfig{Seed: *seed, Duration: dur, Desktops: 25}),
				trace.WWW(trace.WWWConfig{Seed: *seed + 1, Duration: dur}),
			)
		default:
			fmt.Fprintf(os.Stderr, "flowsim: unknown kind %q\n", *kind)
			os.Exit(2)
		}
	}
	th := time.Duration(*threshold) * time.Second
	fmt.Printf("trace: %d packets, %.1f MB over %.0f s; THRESHOLD = %v\n\n",
		len(tr.Packets), float64(tr.Bytes())/1e6, tr.Duration().Seconds(), th)

	run := map[string]func(*trace.Trace, time.Duration){
		"9": fig9, "10": fig10, "11": fig11, "12": fig12, "13": fig13, "14": fig14,
	}
	if *fig == "all" {
		for _, k := range []string{"9", "10", "11", "12", "13", "14"} {
			run[k](tr, th)
		}
		return
	}
	fn, ok := run[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "flowsim: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fn(tr, th)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowsim:", err)
	os.Exit(1)
}

func fig9(tr *trace.Trace, th time.Duration) {
	flows := flowsim.Flows(tr, th)
	pk := flowsim.ComputeCDF(flowsim.SizesInPackets(flows), 64)
	by := flowsim.ComputeCDF(flowsim.SizesInBytes(flows), 64)
	fmt.Print(flowsim.RenderLines(
		fmt.Sprintf("Figure 9(a) — flow size in packets (%d flows)", len(flows)),
		"packets per flow", "CDF", 64, 16, true,
		flowsim.Series{Name: "CDF", X: xs(pk), Y: ys(pk)}))
	fmt.Print(flowsim.RenderLines(
		"Figure 9(b) — flow size in bytes",
		"bytes per flow", "CDF", 64, 16, true,
		flowsim.Series{Name: "CDF", X: xs(by), Y: ys(by)}))
	fmt.Printf("median %0.f pkts / %.0f B; p99 %.0f pkts / %.0f B; top 10%% of flows carry %.0f%% of bytes\n\n",
		flowsim.Quantile(flowsim.SizesInPackets(flows), 0.5),
		flowsim.Quantile(flowsim.SizesInBytes(flows), 0.5),
		flowsim.Quantile(flowsim.SizesInPackets(flows), 0.99),
		flowsim.Quantile(flowsim.SizesInBytes(flows), 0.99),
		flowsim.ByteShareOfTop(flows, 0.10)*100)
}

func fig10(tr *trace.Trace, th time.Duration) {
	flows := flowsim.Flows(tr, th)
	cdf := flowsim.ComputeCDF(flowsim.Durations(flows), 64)
	fmt.Print(flowsim.RenderLines(
		"Figure 10 — flow duration",
		"duration (s)", "CDF", 64, 16, true,
		flowsim.Series{Name: "CDF", X: xs(cdf), Y: ys(cdf)}))
	fmt.Printf("median %.1f s, p90 %.1f s, p99 %.1f s\n\n",
		flowsim.Quantile(flowsim.Durations(flows), 0.5),
		flowsim.Quantile(flowsim.Durations(flows), 0.9),
		flowsim.Quantile(flowsim.Durations(flows), 0.99))
}

func fig11(tr *trace.Trace, th time.Duration) {
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	for _, side := range []struct {
		side flowsim.CacheSide
		name string
	}{{flowsim.SendSide, "TFKC (send side)"}, {flowsim.ReceiveSide, "RFKC (receive side)"}} {
		res := flowsim.CacheSweep(tr, th, sizes, side.side, flowsim.HashCRC32)
		var x, y []float64
		rows := [][]string{}
		for _, r := range res {
			x = append(x, float64(r.Size))
			y = append(y, r.MissRate()*100)
			rows = append(rows, []string{
				fmt.Sprint(r.Size),
				fmt.Sprintf("%.3f%%", r.MissRate()*100),
				fmt.Sprint(r.Cold), fmt.Sprint(r.Conflict),
			})
		}
		fmt.Print(flowsim.RenderLines(
			fmt.Sprintf("Figure 11 — %s miss rate vs cache size", side.name),
			"cache size (entries)", "miss %", 64, 14, true,
			flowsim.Series{Name: "CRC-32 direct-mapped", X: x, Y: y}))
		fmt.Println(flowsim.RenderTable([]string{"size", "miss rate", "cold", "conflict"}, rows))
	}
}

func fig12(tr *trace.Trace, th time.Duration) {
	flows := flowsim.Flows(tr, th)
	series := flowsim.ActiveSeries(flows, th, time.Minute, tr.Duration())
	var x, y []float64
	for i, v := range series {
		x = append(x, float64(i))
		y = append(y, float64(v))
	}
	fmt.Print(flowsim.RenderLines(
		"Figure 12 — number of active flows over time",
		"time (minutes)", "active flows", 64, 14, false,
		flowsim.Series{Name: "active flows", X: x, Y: y}))
	fmt.Printf("peak %d, mean %.1f\n\n", flowsim.MaxActive(series), flowsim.MeanActive(series))
}

func fig13(tr *trace.Trace, _ time.Duration) {
	var series []flowsim.Series
	rows := [][]string{}
	for _, th := range []int{300, 600, 900, 1200} {
		d := time.Duration(th) * time.Second
		flows := flowsim.Flows(tr, d)
		s := flowsim.ActiveSeries(flows, d, time.Minute, tr.Duration())
		var x, y []float64
		for i, v := range s {
			x = append(x, float64(i))
			y = append(y, float64(v))
		}
		series = append(series, flowsim.Series{Name: fmt.Sprintf("THRESHOLD %ds", th), X: x, Y: y})
		rows = append(rows, []string{fmt.Sprint(th), fmt.Sprint(flowsim.MaxActive(s)), fmt.Sprintf("%.1f", flowsim.MeanActive(s))})
	}
	fmt.Print(flowsim.RenderLines(
		"Figure 13 — active flows for different THRESHOLDs",
		"time (minutes)", "active flows", 64, 16, false, series...))
	fmt.Println(flowsim.RenderTable([]string{"THRESHOLD (s)", "peak active", "mean active"}, rows))
}

func fig14(tr *trace.Trace, _ time.Duration) {
	var x, y []float64
	rows := [][]string{}
	for _, th := range []int{60, 120, 300, 600, 900, 1200} {
		flows := flowsim.Flows(tr, time.Duration(th)*time.Second)
		rep := flowsim.RepeatedFlows(flows)
		x = append(x, float64(th))
		y = append(y, float64(rep))
		rows = append(rows, []string{fmt.Sprint(th), fmt.Sprint(len(flows)), fmt.Sprint(rep)})
	}
	fmt.Print(flowsim.RenderLines(
		"Figure 14 — repeated flows vs THRESHOLD",
		"THRESHOLD (s)", "repeated flows", 64, 14, false,
		flowsim.Series{Name: "repeated flows", X: x, Y: y}))
	fmt.Println(flowsim.RenderTable([]string{"THRESHOLD (s)", "flows", "repeated"}, rows))
}

func xs(c []flowsim.CDFPoint) []float64 {
	out := make([]float64, len(c))
	for i, p := range c {
		out[i] = p.X
	}
	return out
}

func ys(c []flowsim.CDFPoint) []float64 {
	out := make([]float64, len(c))
	for i, p := range c {
		out[i] = p.F
	}
	return out
}
