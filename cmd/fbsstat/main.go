// Command fbsstat is the CLI companion to the FBS admin plane: it
// queries a running process's introspection endpoints (started with
// -admin on fbsudp or fbsbench, or wired via internal/obs.Admin) and
// renders them with the same formatters the plane itself uses.
//
// Usage:
//
//	fbsstat -addr 127.0.0.1:6060 metrics    # raw Prometheus exposition
//	fbsstat -addr 127.0.0.1:6060 flows      # netstat-style live flows
//	fbsstat -addr 127.0.0.1:6060 recorder   # flight-recorder ring
//	fbsstat -addr 127.0.0.1:6060 trace      # per-datagram trace waterfalls
//	fbsstat trace -f traces.json            # render a dumped trace artifact
//	fbsbench -json | fbsstat bench-validate # sanity-check bench output
//	fbsstat bench-compare -append < fbsbench.json  # gate vs BENCH_trajectory.json
//
// bench-validate reads an fbsbench -json document on stdin and exits
// non-zero unless it is a non-empty result set with plausible values;
// `make bench-smoke` uses it to keep the bench harness honest in CI.
// When the document carries a "suites" section (fbsbench -suites) it
// additionally checks the suite matrix is complete and that AES-128-GCM
// clears 5x the DES-CBC/keyed-MD5 baseline throughput. When it carries
// a "batch" section (fbsbench -batch) it holds every AEAD suite's
// single-shard batch=32 cell to the amortisation floor over batch=1;
// -floor-scale relaxes the floor for fresh nightly regeneration.
// The input is a stream: JSON arrays are bench result sets, JSON
// objects are serialised flood reports (fbschaos -flood -json), whose
// reconciliation and committed pre-parse shed floor are re-asserted
// offline; `make flood` pipes the matrix through this gate.
//
// bench-compare reads the same document and gates it against the
// committed perf trajectory (BENCH_trajectory.json): a row that lost
// more than 20% throughput, or whose seal p99 more than doubled, versus
// its last committed measurement fails the run. With -append a passing
// run is recorded as the next baseline; `make ci` runs it after every
// fbsbench invocation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"fbs/internal/obs"
	obstrace "fbs/internal/obs/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6060", "admin plane address (host:port)")
	limit := flag.Int("n", 0, "recorder/trace: show only the most recent N entries")
	file := flag.String("f", "", "trace: render this JSON artifact instead of querying the admin plane (\"-\" for stdin)")
	trajectory := flag.String("trajectory", "BENCH_trajectory.json", "bench-compare: committed perf-trajectory file")
	appendRun := flag.Bool("append", false, "bench-compare: append a passing run to the trajectory file")
	floorScale := flag.Float64("floor-scale", 1.0, "bench-validate: scale the batch amortisation floors (nightly fresh runs use 0.7)")
	flag.Parse()

	cmd := flag.Arg(0)
	// Accept flags after the subcommand too (`fbsstat recorder -n 4`);
	// flag.Parse stops at the first non-flag argument.
	if flag.NArg() > 1 {
		_ = flag.CommandLine.Parse(flag.Args()[1:])
	}
	var err error
	switch cmd {
	case "metrics":
		err = metrics(*addr)
	case "flows":
		err = flows(*addr)
	case "recorder":
		err = recorder(*addr, *limit)
	case "trace":
		err = traces(*addr, *file, *limit)
	case "bench-validate":
		err = benchValidate(os.Stdin, *floorScale)
	case "bench-compare":
		err = benchCompare(os.Stdin, *trajectory, *appendRun)
	default:
		err = fmt.Errorf("need a subcommand: metrics, flows, recorder, trace, bench-validate, or bench-compare")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbsstat:", err)
		os.Exit(1)
	}
}

func get(addr, path string) ([]byte, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func metrics(addr string) error {
	body, err := get(addr, "/metrics")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}

func flows(addr string) error {
	body, err := get(addr, "/flows?json=1")
	if err != nil {
		return err
	}
	var rep obs.FlowsReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("decoding /flows: %w", err)
	}
	obs.WriteFlowsText(os.Stdout, rep)
	return nil
}

func recorder(addr string, limit int) error {
	path := "/recorder?json=1"
	if limit > 0 {
		path = fmt.Sprintf("%s&n=%d", path, limit)
	}
	body, err := get(addr, path)
	if err != nil {
		return err
	}
	var rep obs.RecorderReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("decoding /recorder: %w", err)
	}
	obs.WriteRecorderText(os.Stdout, rep)
	return nil
}

// traces renders per-datagram trace waterfalls, either live from the
// admin plane's /traces endpoint or from a dumped JSON artifact (the
// chaos harness and CI write those on failure).
func traces(addr, file string, limit int) error {
	var body []byte
	var err error
	switch {
	case file == "-":
		body, err = io.ReadAll(os.Stdin)
	case file != "":
		body, err = os.ReadFile(file)
	default:
		path := "/traces?json=1"
		if limit > 0 {
			path = fmt.Sprintf("%s&n=%d", path, limit)
		}
		body, err = get(addr, path)
	}
	if err != nil {
		return err
	}
	var rep obstrace.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("decoding traces: %w", err)
	}
	if file != "" && limit > 0 && len(rep.Traces) > limit {
		rep.Traces = rep.Traces[len(rep.Traces)-limit:]
	}
	obs.WriteTracesText(os.Stdout, rep)
	return nil
}

// benchLatency mirrors fbsbench's latency summary.
type benchLatency struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

// benchRow mirrors fbsbench's JSON row; only the fields bench-validate
// and bench-compare check are declared.
type benchRow struct {
	Section     string        `json:"section"`
	Workload    string        `json:"workload,omitempty"`
	Config      string        `json:"config"`
	Kbps        float64       `json:"kbps"`
	SealLatency *benchLatency `json:"seal_latency,omitempty"`
	OpenLatency *benchLatency `json:"open_latency,omitempty"`
}

// benchValidate stream-decodes a sequence of JSON documents from r:
// each top-level array is an fbsbench result set (validated as before),
// each top-level object a serialised flood report (fbschaos -flood
// -json emits one per scenario run), whose committed pre-parse shed
// floor is re-asserted from the report alone. Mixing the two in one
// pipe is how CI gates a bench run and the flood matrix together.
func benchValidate(r io.Reader, floorScale float64) error {
	dec := json.NewDecoder(r)
	var benchDocs, floodDocs int
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("decoding JSON document: %w", err)
		}
		doc := bytes.TrimSpace(raw)
		switch {
		case len(doc) > 0 && doc[0] == '[':
			var rows []benchRow
			if err := json.Unmarshal(doc, &rows); err != nil {
				return fmt.Errorf("decoding bench JSON: %w", err)
			}
			if err := validateBenchRows(rows, floorScale); err != nil {
				return err
			}
			benchDocs++
		case len(doc) > 0 && doc[0] == '{':
			var rep floodReportDoc
			if err := json.Unmarshal(doc, &rep); err != nil {
				return fmt.Errorf("decoding flood report JSON: %w", err)
			}
			if err := validateFloodReport(rep); err != nil {
				return err
			}
			floodDocs++
		default:
			return fmt.Errorf("unrecognised JSON document (neither bench rows nor a flood report)")
		}
	}
	if benchDocs == 0 && floodDocs == 0 {
		return fmt.Errorf("bench JSON is an empty result set")
	}
	if floodDocs > 0 {
		fmt.Printf("flood reports ok: %d validated\n", floodDocs)
	}
	return nil
}

// floodReportDoc declares only the fields bench-validate re-asserts
// from a serialised netsim.FloodReport (or CrashReport — the scenario/
// violations/complete triple is shared).
type floodReportDoc struct {
	Scenario          string
	Complete          bool
	PreParseShedRatio float64
	PreParseShedFloor float64
	Violations        []string
}

// validateFloodReport re-checks a flood report's claims offline: the
// run reconciled, completed, and — when the scenario committed to a
// pre-parse shed floor — the serialised ratio still clears it. The
// ratio check is deliberately re-derived here rather than trusting the
// harness's own Violations list, so a report whose floor assertion was
// edited out (or a harness regression that stopped checking it) still
// fails the pipeline.
func validateFloodReport(rep floodReportDoc) error {
	if rep.Scenario == "" {
		return fmt.Errorf("object document carries no scenario name; not a flood report")
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("flood %s: %d reconciliation violation(s): %s", rep.Scenario, len(rep.Violations), rep.Violations[0])
	}
	if !rep.Complete {
		return fmt.Errorf("flood %s: transfer incomplete", rep.Scenario)
	}
	if rep.PreParseShedFloor > 0 && rep.PreParseShedRatio < rep.PreParseShedFloor {
		return fmt.Errorf("flood %s: pre-parse shed ratio %.3f below committed floor %.2f",
			rep.Scenario, rep.PreParseShedRatio, rep.PreParseShedFloor)
	}
	if rep.PreParseShedFloor > 0 {
		fmt.Printf("  flood %-24s preparse ratio %.3f >= floor %.2f ok\n", rep.Scenario, rep.PreParseShedRatio, rep.PreParseShedFloor)
	} else {
		fmt.Printf("  flood %-24s reconciled, complete\n", rep.Scenario)
	}
	return nil
}

// validateBenchRows is the historic bench-validate body: one fbsbench
// result set's structural and plausibility checks.
func validateBenchRows(rows []benchRow, floorScale float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("bench JSON is an empty result set")
	}
	sections := make(map[string]int)
	for i, row := range rows {
		if row.Section == "" || row.Config == "" {
			return fmt.Errorf("row %d: missing section or config: %+v", i, row)
		}
		if row.Kbps <= 0 {
			return fmt.Errorf("row %d (%s/%s): non-positive throughput %v kb/s", i, row.Section, row.Config, row.Kbps)
		}
		for _, lat := range []struct {
			path string
			l    *benchLatency
		}{{"seal", row.SealLatency}, {"open", row.OpenLatency}} {
			if lat.l == nil {
				continue
			}
			if err := validateLatency(lat.l); err != nil {
				return fmt.Errorf("row %d (%s/%s) %s latency: %w", i, row.Section, row.Config, lat.path, err)
			}
		}
		sections[row.Section]++
	}
	// A document must carry at least one recognised section: the figure-8
	// simulation (the default run), the per-suite matrix (-suites), or
	// the batched data-plane matrix (-batch).
	if sections["figure8"] == 0 && sections["suites"] == 0 && sections["batch"] == 0 {
		return fmt.Errorf("bench JSON has no figure8, suites, or batch rows (sections: %v)", sections)
	}
	if sections["suites"] > 0 {
		if err := validateSuites(rows); err != nil {
			return err
		}
	}
	if sections["batch"] > 0 {
		if err := validateBatch(rows, floorScale); err != nil {
			return err
		}
	}
	fmt.Printf("bench JSON ok: %d rows", len(rows))
	for _, s := range []string{"figure8", "native", "stack", "suites", "batch"} {
		if n := sections[s]; n > 0 {
			fmt.Printf(" %s=%d", s, n)
		}
	}
	fmt.Println()
	return nil
}

// validateLatency sanity-checks one latency summary: it must carry
// samples, its quantiles must be ordered (0 < p50 <= p95 <= p99), and
// its mean must land inside the histogram's representable range — a
// mean past the top finite bucket bound means the summary was computed
// from garbage, not from observations.
func validateLatency(l *benchLatency) error {
	if l.Count == 0 {
		return fmt.Errorf("summary with zero samples")
	}
	if l.P50Ns <= 0 || l.P95Ns < l.P50Ns || l.P99Ns < l.P95Ns {
		return fmt.Errorf("implausible quantiles p50=%dns p95=%dns p99=%dns", l.P50Ns, l.P95Ns, l.P99Ns)
	}
	if max := int64(obs.BucketBound(obs.NumHistBuckets - 1)); l.MeanNs <= 0 || l.MeanNs > max {
		return fmt.Errorf("mean %dns outside histogram range (0, %dns]", l.MeanNs, max)
	}
	return nil
}

// validateSuites enforces the suite matrix's acceptance claims: the
// legacy baseline and both AEAD suites must be present, and the
// single-pass AES-128-GCM sealed box must beat the paper's two-pass
// DES-CBC/keyed-MD5 configuration by at least 5x.
func validateSuites(rows []benchRow) error {
	kbps := make(map[string]float64)
	for _, row := range rows {
		if row.Section == "suites" {
			kbps[row.Config] = row.Kbps
		}
	}
	for _, cfg := range []string{"DES-CBC/keyed-MD5", "AES-128-GCM", "ChaCha20-Poly1305"} {
		if kbps[cfg] == 0 {
			return fmt.Errorf("suites section is missing config %q (have: %v)", cfg, kbps)
		}
	}
	des, gcm := kbps["DES-CBC/keyed-MD5"], kbps["AES-128-GCM"]
	if gcm < 5*des {
		return fmt.Errorf("AES-128-GCM throughput %.0f kb/s is below 5x DES-CBC/keyed-MD5 (%.0f kb/s)", gcm, des)
	}
	return nil
}

// batchAmortFloor is the batched data plane's acceptance claim: on the
// AEAD suites, batch=32 must deliver at least this multiple of batch=1
// throughput on the same runner. The floor is enforced on the s=1 rows
// — the single-shard cells isolate the per-datagram fixed costs (send
// syscall, receiver wakeup) that batching amortises; shard counts past
// the core count only time-slice and say nothing about amortisation.
// The committed BENCH_batch.json is gated at the full floor; nightly
// fresh regeneration passes -floor-scale 0.7 because a single run on a
// shared one-core runner carries real scheduling variance (AES-128-GCM
// measures 4.1-4.5x here, ChaCha20-Poly1305 2.6-3.2x — the latter is
// compute-bound in pure-Go ChaCha20, which caps how much of its
// per-datagram cost batching can touch).
const batchAmortFloor = 3.0

// validateBatch enforces the batch section's amortisation floor. Rows
// are named <suite>/b=<N>/s=<M>; every (suite, shard) group must carry
// both a b=1 and a b=32 cell, and at s=1 the b=32 throughput must clear
// batchAmortFloor x the b=1 throughput (scaled by -floor-scale).
func validateBatch(rows []benchRow, floorScale float64) error {
	if floorScale <= 0 {
		return fmt.Errorf("-floor-scale must be positive, got %v", floorScale)
	}
	// kbps[suite/s=M][N] = throughput of the b=N cell.
	kbps := make(map[string]map[int]float64)
	for _, row := range rows {
		if row.Section != "batch" {
			continue
		}
		var suite string
		var bsz, shards int
		parts := strings.Split(row.Config, "/")
		if len(parts) != 3 {
			return fmt.Errorf("batch config %q is not <suite>/b=<N>/s=<M>", row.Config)
		}
		suite = parts[0]
		if _, err := fmt.Sscanf(parts[1]+" "+parts[2], "b=%d s=%d", &bsz, &shards); err != nil {
			return fmt.Errorf("batch config %q is not <suite>/b=<N>/s=<M>: %v", row.Config, err)
		}
		group := fmt.Sprintf("%s/s=%d", suite, shards)
		if kbps[group] == nil {
			kbps[group] = make(map[int]float64)
		}
		kbps[group][bsz] = row.Kbps
	}
	floor := batchAmortFloor * floorScale
	checked := 0
	for group, cells := range kbps {
		b1, b32 := cells[1], cells[32]
		if b1 == 0 || b32 == 0 {
			return fmt.Errorf("batch group %s is missing its b=1 or b=32 cell (have %v)", group, cells)
		}
		if !strings.HasSuffix(group, "/s=1") {
			continue
		}
		checked++
		if b32 < floor*b1 {
			return fmt.Errorf("batch %s: b=32 throughput %.0f kb/s is below %.2fx b=1 (%.0f kb/s, ratio %.2f)",
				group, b32, floor, b1, b32/b1)
		}
	}
	if checked == 0 {
		return fmt.Errorf("batch section has no s=1 groups to hold to the amortisation floor")
	}
	return nil
}
