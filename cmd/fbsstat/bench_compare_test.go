package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runJSON(t *testing.T, kbps float64, p99 int64) string {
	t.Helper()
	rows := []benchRow{{
		Section: "native", Config: "FBS DES+MD5", Kbps: kbps,
		SealLatency: &benchLatency{Count: 100, MeanNs: p99 / 2, P50Ns: p99 / 2, P95Ns: p99, P99Ns: p99},
	}}
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestBenchCompareGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")

	// First run: no baseline, must pass and (with append) seed the file.
	if err := benchCompare(strings.NewReader(runJSON(t, 10000, 50000)), path, true); err != nil {
		t.Fatalf("first run: %v", err)
	}
	var entries []trajectoryEntry
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(entries[0].Rows) != 1 || entries[0].When == "" {
		t.Fatalf("trajectory after first append: %+v", entries)
	}

	// A run inside the envelope passes and appends.
	if err := benchCompare(strings.NewReader(runJSON(t, 8500, 90000)), path, true); err != nil {
		t.Fatalf("in-envelope run: %v", err)
	}

	// >20% throughput drop vs the latest committed run trips the gate,
	// and a failing run must NOT become the new baseline.
	err = benchCompare(strings.NewReader(runJSON(t, 6000, 90000)), path, true)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("throughput regression not gated: %v", err)
	}
	// p99 more than doubling trips it too.
	err = benchCompare(strings.NewReader(runJSON(t, 8500, 200000)), path, true)
	if err == nil {
		t.Fatal("p99 regression not gated")
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	entries = nil
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("failing runs were appended: %d entries", len(entries))
	}

	// A different fbsbench mode (suites section) has no baseline yet, so
	// it passes even though the latest entry is a native run.
	suites, err := json.Marshal([]benchRow{{Section: "suites", Config: "AES-128-GCM", Kbps: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := benchCompare(strings.NewReader(string(suites)), path, false); err != nil {
		t.Fatalf("new-key run: %v", err)
	}
}

func TestBenchCompareMissingTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	if err := benchCompare(strings.NewReader(runJSON(t, 1000, 1000)), path, false); err != nil {
		t.Fatalf("missing trajectory without -append should pass: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("trajectory file created without -append")
	}
}

// batchDoc builds a batch-section document with the given s=1 b=1 and
// b=32 throughputs (plus complete b=8/b=128 cells and an s=2 group, so
// the shape checks pass).
func batchDoc(t *testing.T, b1, b32 float64) string {
	t.Helper()
	var rows []benchRow
	for _, sh := range []int{1, 2} {
		for _, cell := range []struct {
			bsz  int
			kbps float64
		}{{1, b1}, {8, (b1 + b32) / 2}, {32, b32}, {128, b32}} {
			rows = append(rows, benchRow{
				Section: "batch",
				Config:  fmt.Sprintf("AES-128-GCM/b=%d/s=%d", cell.bsz, sh),
				Kbps:    cell.kbps,
			})
		}
	}
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestValidateBatchFloor(t *testing.T) {
	// 4x amortisation clears the 3x floor.
	if err := benchValidate(strings.NewReader(batchDoc(t, 100000, 400000)), 1.0); err != nil {
		t.Fatalf("4x batch run rejected: %v", err)
	}
	// 2.5x trips the full floor...
	err := benchValidate(strings.NewReader(batchDoc(t, 100000, 250000)), 1.0)
	if err == nil || !strings.Contains(err.Error(), "below") {
		t.Fatalf("2.5x batch run not gated: %v", err)
	}
	// ...but passes the nightly-scaled floor (0.7 * 3 = 2.1x).
	if err := benchValidate(strings.NewReader(batchDoc(t, 100000, 250000)), 0.7); err != nil {
		t.Fatalf("2.5x batch run rejected at -floor-scale 0.7: %v", err)
	}
	// A group missing its b=32 cell is a malformed matrix.
	rows := []benchRow{{Section: "batch", Config: "AES-128-GCM/b=1/s=1", Kbps: 100}}
	data, _ := json.Marshal(rows)
	if err := benchValidate(strings.NewReader(string(data)), 1.0); err == nil {
		t.Fatal("incomplete batch matrix accepted")
	}
	// A malformed config name is rejected outright.
	rows[0].Config = "AES-128-GCM/batch32"
	data, _ = json.Marshal(rows)
	if err := benchValidate(strings.NewReader(string(data)), 1.0); err == nil {
		t.Fatal("malformed batch config accepted")
	}
}

// floodDoc serialises a minimal flood report the way fbschaos -json
// does (one object per line).
func floodDoc(t *testing.T, scenario string, ratio, floor float64, complete bool, violations []string) string {
	t.Helper()
	data, err := json.Marshal(floodReportDoc{
		Scenario:          scenario,
		Complete:          complete,
		PreParseShedRatio: ratio,
		PreParseShedFloor: floor,
		Violations:        violations,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestValidateFloodReports(t *testing.T) {
	// A clean report above its committed floor passes.
	if err := benchValidate(strings.NewReader(floodDoc(t, "prefilter-sketch", 0.97, 0.9, true, nil)), 1.0); err != nil {
		t.Fatalf("clean flood report rejected: %v", err)
	}
	// A ratio below the committed floor fails even when the harness's
	// own Violations list is empty — the gate re-derives the check.
	err := benchValidate(strings.NewReader(floodDoc(t, "prefilter-sketch", 0.5, 0.9, true, nil)), 1.0)
	if err == nil || !strings.Contains(err.Error(), "below committed floor") {
		t.Fatalf("under-floor report not gated: %v", err)
	}
	// Violations and incompleteness fail.
	if err := benchValidate(strings.NewReader(floodDoc(t, "spoof-10x", 0, 0, true, []string{"conservation broke"})), 1.0); err == nil {
		t.Fatal("report with violations accepted")
	}
	if err := benchValidate(strings.NewReader(floodDoc(t, "spoof-10x", 0, 0, false, nil)), 1.0); err == nil {
		t.Fatal("incomplete report accepted")
	}
	// A mixed stream — bench rows then flood reports, as `make flood`
	// and CI pipe them — validates both document kinds.
	mixed := batchDoc(t, 100000, 400000) + "\n" +
		floodDoc(t, "prefilter-challenge", 1.0, 0.9, true, nil) + "\n" +
		floodDoc(t, "churn-budget", 0, 0, true, nil) + "\n"
	if err := benchValidate(strings.NewReader(mixed), 1.0); err != nil {
		t.Fatalf("mixed stream rejected: %v", err)
	}
	// An object with no scenario name is not a flood report.
	if err := benchValidate(strings.NewReader(`{"Foo": 1}`), 1.0); err == nil {
		t.Fatal("anonymous object accepted as a flood report")
	}
	// An empty stream is still an error.
	if err := benchValidate(strings.NewReader(""), 1.0); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestValidateLatency(t *testing.T) {
	good := &benchLatency{Count: 10, MeanNs: 900, P50Ns: 800, P95Ns: 1000, P99Ns: 1200}
	if err := validateLatency(good); err != nil {
		t.Fatalf("good latency rejected: %v", err)
	}
	for name, l := range map[string]*benchLatency{
		"zero-count":   {Count: 0, MeanNs: 900, P50Ns: 800, P95Ns: 1000, P99Ns: 1200},
		"unordered":    {Count: 10, MeanNs: 900, P50Ns: 800, P95Ns: 700, P99Ns: 1200},
		"p99-below":    {Count: 10, MeanNs: 900, P50Ns: 800, P95Ns: 1000, P99Ns: 900},
		"zero-mean":    {Count: 10, MeanNs: 0, P50Ns: 800, P95Ns: 1000, P99Ns: 1200},
		"mean-oforder": {Count: 10, MeanNs: 1 << 50, P50Ns: 800, P95Ns: 1000, P99Ns: 1200},
	} {
		if err := validateLatency(l); err == nil {
			t.Errorf("%s latency accepted", name)
		}
	}
}
