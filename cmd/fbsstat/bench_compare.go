package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// The perf-trajectory gate: a fresh fbsbench run may not lose more than
// kbpsDropLimit of a row's committed throughput, and its seal p99 may
// not more than double. The thresholds are deliberately loose — the
// 1-second wall-clock phases are noisy — so a trip means a real
// regression, not scheduler jitter.
const (
	kbpsDropLimit = 0.20
	p99GrowLimit  = 2.0
	// trajectoryKeep bounds the committed history; the gate only ever
	// reads the most recent run per row, older entries are context for
	// humans plotting the trajectory.
	trajectoryKeep = 50
)

// trajectoryEntry is one committed fbsbench run in BENCH_trajectory.json.
type trajectoryEntry struct {
	// When is the run's wall-clock timestamp (RFC 3339, UTC).
	When string `json:"when"`
	// Rows is the fbsbench -json document verbatim.
	Rows []benchRow `json:"rows"`
}

// rowKey identifies a measurement across runs: figure-8 rows repeat a
// config per workload, so the workload is part of the identity.
func rowKey(r benchRow) string {
	if r.Workload != "" {
		return r.Section + "/" + r.Workload + "/" + r.Config
	}
	return r.Section + "/" + r.Config
}

// lastRun finds the most recent committed measurement of key, scanning
// entries newest-first. Runs of different fbsbench modes interleave in
// the trajectory (native, suites), so the latest entry need not carry
// every key.
func lastRun(entries []trajectoryEntry, key string) (benchRow, string, bool) {
	for i := len(entries) - 1; i >= 0; i-- {
		for _, r := range entries[i].Rows {
			if rowKey(r) == key {
				return r, entries[i].When, true
			}
		}
	}
	return benchRow{}, "", false
}

// benchCompare reads a fresh fbsbench -json document from r and gates
// it against the committed trajectory at path: any row whose throughput
// dropped more than kbpsDropLimit, or whose seal p99 more than
// p99GrowLimit-ed, versus its last committed measurement fails the run.
// With appendRun set, a passing run is appended to the trajectory file
// (creating it if absent) so it becomes the next baseline.
func benchCompare(r io.Reader, path string, appendRun bool) error {
	var rows []benchRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return fmt.Errorf("decoding bench JSON: %w", err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("bench JSON is an empty result set")
	}
	var entries []trajectoryEntry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("decoding %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	var failures []string
	compared := 0
	for _, cur := range rows {
		key := rowKey(cur)
		prev, when, ok := lastRun(entries, key)
		if !ok {
			fmt.Printf("  %-40s %10.0f kb/s (no baseline)\n", key, cur.Kbps)
			continue
		}
		compared++
		status := "ok"
		if prev.Kbps > 0 && cur.Kbps < (1-kbpsDropLimit)*prev.Kbps {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: throughput %.0f kb/s is down %.0f%% from %.0f kb/s (%s)",
				key, cur.Kbps, 100*(1-cur.Kbps/prev.Kbps), prev.Kbps, when))
		}
		if cur.SealLatency != nil && prev.SealLatency != nil && prev.SealLatency.P99Ns > 0 &&
			float64(cur.SealLatency.P99Ns) > p99GrowLimit*float64(prev.SealLatency.P99Ns) {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: seal p99 %v is more than %.0fx the committed %v (%s)",
				key, time.Duration(cur.SealLatency.P99Ns), p99GrowLimit,
				time.Duration(prev.SealLatency.P99Ns), when))
		}
		fmt.Printf("  %-40s %10.0f kb/s vs %.0f kb/s @ %s %s\n", key, cur.Kbps, prev.Kbps, when, status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bench-compare:", f)
		}
		return fmt.Errorf("%d of %d rows regressed past the trajectory gate", len(failures), compared)
	}

	if appendRun {
		entries = append(entries, trajectoryEntry{
			When: time.Now().UTC().Format(time.RFC3339), Rows: rows,
		})
		if len(entries) > trajectoryKeep {
			entries = entries[len(entries)-trajectoryKeep:]
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("trajectory: %d rows appended to %s (%d runs kept)\n", len(rows), path, len(entries))
	}
	fmt.Printf("bench-compare ok: %d rows gated against trajectory, %d new\n", compared, len(rows)-compared)
	return nil
}
