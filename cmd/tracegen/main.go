// Command tracegen generates the synthetic packet traces that stand in
// for the paper's tcpdump captures (Section 7.3): a campus workgroup LAN
// mix and a ~10,000-hits/day WWW server. Traces are emitted in a
// tcpdump-like text format consumed by cmd/flowsim.
//
// Usage:
//
//	tracegen -kind campus [-seed N] [-minutes M] [-desktops D] > campus.trace
//	tracegen -kind www    [-seed N] [-minutes M] [-hits H]     > www.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fbs/internal/trace"
)

func main() {
	kind := flag.String("kind", "campus", "trace kind: campus or www")
	seed := flag.Uint64("seed", 1997, "generator seed")
	minutes := flag.Int("minutes", 60, "capture duration in minutes")
	desktops := flag.Int("desktops", 25, "campus: number of desktops")
	hits := flag.Float64("hits", 10000, "www: hits per day")
	flag.Parse()

	dur := time.Duration(*minutes) * time.Minute
	var tr *trace.Trace
	switch *kind {
	case "campus":
		tr = trace.Campus(trace.CampusConfig{Seed: *seed, Duration: dur, Desktops: *desktops})
	case "www":
		tr = trace.WWW(trace.WWWConfig{Seed: *seed, Duration: dur, HitsPerDay: *hits})
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q (want campus or www)\n", *kind)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d packets, %.1f MB, %.0f s\n",
		len(tr.Packets), float64(tr.Bytes())/1e6, tr.Duration().Seconds())
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
