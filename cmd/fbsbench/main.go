// Command fbsbench regenerates Figure 8: ttcp and rcp throughput for
// GENERIC (stock IP), FBS NOP (nullified crypto) and FBS DES+MD5 on the
// calibrated Pentium-133 / 10 Mb Ethernet model, while running the real
// protocol code of every configuration on every simulated packet.
//
// With -native it also measures raw Seal/Open throughput of the real
// implementation on the local machine, and with -stack it pushes a
// ttcp-style transfer through the real IPv4 + TCP-lite stack with FBS
// at the Section 7.2 hook points.
//
// With -suites it instead measures the native Seal/Open throughput of
// every data-carrying suite in the registry (DES, 3DES and the AEAD
// suites), emitting a standalone "suites" section; make ci freezes that
// output into BENCH_suites.json and validates it with fbsstat.
//
// With -batch it measures the batched UDP data plane on the local
// loopback: SendBatch/ReceiveBatch over real kernel sockets
// (sendmmsg/recvmmsg where the platform has them) across a batch-size ×
// shard-count matrix, emitting a standalone "batch" section; make
// bench-batch freezes that output into BENCH_batch.json and fbsstat
// holds batch=32 to its amortisation claim over batch=1.
//
// Usage:
//
//	fbsbench [-bytes N] [-native] [-stack] [-json]
//	fbsbench -suites [-json]
//	fbsbench -batch [-shards N] [-json]
//
// With -json the human-readable tables are suppressed and one JSON
// document with every measured throughput (in kb/s) is written to
// stdout, for consumption by scripts and regression harnesses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fbs/internal/baseline"
	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/flowsim"
	"fbs/internal/ip"
	"fbs/internal/l4"
	"fbs/internal/netsim"
	"fbs/internal/obs"
	"fbs/internal/principal"
	"fbs/internal/transport"

	fbs "fbs"
)

// latencyStats summarises one latency histogram for the -json output.
// Values are nanoseconds; percentiles are log2-bucket upper bounds
// (over-estimates by at most 2×, the bucketing precision).
type latencyStats struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

func summarize(s obs.HistSnapshot) *latencyStats {
	if s.Count == 0 {
		return nil
	}
	return &latencyStats{
		Count:  s.Count,
		MeanNs: int64(s.Mean()),
		P50Ns:  int64(s.Quantile(0.50)),
		P95Ns:  int64(s.Quantile(0.95)),
		P99Ns:  int64(s.Quantile(0.99)),
	}
}

// benchResult is one measured throughput, the unit of the -json output.
type benchResult struct {
	// Section is "figure8", "native", "stack" or "suites".
	Section string `json:"section"`
	// Workload is the figure-8 workload ("ttcp", "rcp"); empty
	// elsewhere.
	Workload string `json:"workload,omitempty"`
	// Config names the protocol configuration measured.
	Config string `json:"config"`
	// Kbps is application-payload throughput in kilobits per second.
	Kbps float64 `json:"kbps"`
	// SealLatency/OpenLatency are per-call latency tails where the
	// section runs real protocol code. In the figure8 section the same
	// per-config summary (aggregated over both workloads) is attached
	// to each of that config's rows.
	SealLatency *latencyStats `json:"seal_latency,omitempty"`
	OpenLatency *latencyStats `json:"open_latency,omitempty"`
}

func main() {
	total := flag.Int("bytes", 4<<20, "bytes per simulated transfer")
	native := flag.Bool("native", false, "also measure native Seal/Open throughput")
	stack := flag.Bool("stack", false, "also run a ttcp transfer through the real IPv4+TCP-lite stack with FBS")
	suites := flag.Bool("suites", false, "measure every registered suite's native Seal/Open throughput instead of the figure-8 simulation")
	batch := flag.Bool("batch", false, "measure the batched UDP loopback pipeline across a batch-size x shard matrix")
	shards := flag.Int("shards", 2, "highest shard count in the -batch matrix (powers of two from 1)")
	jsonOut := flag.Bool("json", false, "emit one JSON document of kb/s results instead of tables")
	adminAddr := flag.String("admin", "", "serve the observability admin plane (/metrics, /flows, /recorder, pprof) on this address and wait after the run")
	flag.Parse()

	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(nil)
		bound, _, err := admin.Serve(*adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fbsbench: admin plane at http://%s/\n", bound)
	}

	var results []benchResult
	if *batch {
		res, err := batchRun(*jsonOut, *shards, admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsbench:", err)
			os.Exit(1)
		}
		results = append(results, res...)
	} else if *suites {
		res, err := suitesRun(*jsonOut, admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsbench:", err)
			os.Exit(1)
		}
		results = append(results, res...)
	} else {
		res, err := run(*total, *native, *jsonOut, admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsbench:", err)
			os.Exit(1)
		}
		results = append(results, res...)
		if *stack {
			res, err := stackRun(*total, *jsonOut, admin)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fbsbench:", err)
				os.Exit(1)
			}
			results = append(results, res...)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "fbsbench:", err)
			os.Exit(1)
		}
	}
	if admin != nil {
		fmt.Fprintln(os.Stderr, "fbsbench: run complete; admin plane still serving (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

// endpointPair builds two FBS endpoints in one domain for inline
// protocol execution inside the simulator.
func endpointPair(combined bool, mutate ...func(*core.Config)) (*core.Endpoint, *core.Endpoint, error) {
	d, err := fbs.NewDomain("fbsbench", fbs.WithGroup(cryptolib.TestGroup))
	if err != nil {
		return nil, nil, err
	}
	net := fbs.NewNetwork(fbs.Impairments{})
	mk := func(addr fbs.Address) (*core.Endpoint, error) {
		return d.NewEndpoint(addr, net, func(c *core.Config) {
			c.CombinedFSTTFKC = combined
			c.SinglePass = true
			for _, m := range mutate {
				m(c)
			}
		})
	}
	a, err := mk("sim-a")
	if err != nil {
		return nil, nil, err
	}
	b, err := mk("sim-b")
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// fbsSealer adapts an endpoint pair to the baseline.Sealer interface
// used by the simulator.
type fbsSealer struct {
	name   string
	ep     *core.Endpoint
	secret bool
}

func (f fbsSealer) Name() string { return f.name }
func (f fbsSealer) Seal(dg transport.Datagram, _ bool) (transport.Datagram, error) {
	return f.ep.Seal(dg, f.secret)
}
func (f fbsSealer) Open(dg transport.Datagram) (transport.Datagram, error) {
	return f.ep.Open(dg)
}

func run(total int, native, quiet bool, admin *obs.Admin) ([]benchResult, error) {
	a, b, err := endpointPair(true)
	if err != nil {
		return nil, err
	}
	defer a.Close()
	defer b.Close()
	// A true NOP pair: MAC and encryption nullified, everything else
	// (FAM, keying, caches, header) running for real.
	nopA, nopB, err := endpointPair(true, func(c *core.Config) { c.MAC = cryptolib.MACNull })
	if err != nil {
		return nil, err
	}
	defer nopA.Close()
	defer nopB.Close()
	if admin != nil {
		obs.RegisterEndpoint(admin.Registry, "figure8-fbs-a", a)
		obs.RegisterEndpoint(admin.Registry, "figure8-fbs-b", b)
		obs.RegisterEndpoint(admin.Registry, "figure8-nop-a", nopA)
		obs.RegisterEndpoint(admin.Registry, "figure8-nop-b", nopB)
		admin.WatchEndpoint("figure8-fbs-a", a)
		admin.WatchEndpoint("figure8-nop-a", nopA)
	}

	configs := []string{"GENERIC", "FBS NOP", "FBS DES+MD5"}
	sealHists := make(map[string]*obs.Histogram, len(configs))
	openHists := make(map[string]*obs.Histogram, len(configs))
	for _, c := range configs {
		sealHists[c] = &obs.Histogram{}
		openHists[c] = &obs.Histogram{}
	}
	rows, err := netsim.Figure8(netsim.Figure8Config{
		TotalBytes: total,
		Sealers: map[string][2]baseline.Sealer{
			// Every configuration runs real code per simulated packet.
			"GENERIC": {baseline.Generic{}, baseline.Generic{}},
			"FBS NOP": {
				fbsSealer{name: "FBS NOP", ep: nopA},
				fbsSealer{name: "FBS NOP", ep: nopB},
			},
			"FBS DES+MD5": {
				fbsSealer{name: "FBS", ep: a, secret: true},
				fbsSealer{name: "FBS", ep: b},
			},
		},
		SealHists: sealHists,
		OpenHists: openHists,
	})
	if err != nil {
		return nil, err
	}
	var results []benchResult
	for _, r := range rows {
		results = append(results, benchResult{
			Section: "figure8", Workload: r.Workload, Config: r.Config, Kbps: r.Kbps,
			SealLatency: summarize(sealHists[r.Config].Snapshot()),
			OpenLatency: summarize(openHists[r.Config].Snapshot()),
		})
	}
	if !quiet {
		fmt.Printf("Figure 8 — throughput on simulated P133s / dedicated 10 Mb Ethernet (%d MB transfers)\n", total>>20)
		fmt.Printf("paper reference: ttcp GENERIC ~7700 kb/s, ttcp FBS DES+MD5 ~3400 kb/s\n\n")
		hdr := []string{"workload", "configuration", "throughput (kb/s)"}
		var tbl [][]string
		for _, r := range rows {
			tbl = append(tbl, []string{r.Workload, r.Config, fmt.Sprintf("%.0f", r.Kbps)})
		}
		fmt.Println(flowsim.RenderTable(hdr, tbl))
		fmt.Printf("real protocol work performed inside the simulation: %d datagrams sealed, %d opened\n\n",
			a.FAMStats().Lookups, b.Metrics().Received)
		fmt.Println("Per-call latency of the real protocol code inside the simulation (log2-bucket percentiles):")
		lhdr := []string{"configuration", "path", "count", "mean", "p50", "p95", "p99"}
		var ltbl [][]string
		for _, c := range configs {
			for _, pth := range []struct {
				name string
				h    *obs.Histogram
			}{{"seal", sealHists[c]}, {"open", openHists[c]}} {
				s := summarize(pth.h.Snapshot())
				if s == nil {
					continue
				}
				ltbl = append(ltbl, []string{c, pth.name, fmt.Sprint(s.Count),
					time.Duration(s.MeanNs).String(), time.Duration(s.P50Ns).String(),
					time.Duration(s.P95Ns).String(), time.Duration(s.P99Ns).String()})
			}
		}
		fmt.Println(flowsim.RenderTable(lhdr, ltbl))
	}

	if native {
		res, err := nativeRun(quiet, admin)
		if err != nil {
			return nil, err
		}
		results = append(results, res...)
	}
	return results, nil
}

// nativeRun measures raw Seal+Open throughput of the real protocol on
// this machine, on the allocation-free append path. Each configuration
// gets its own endpoint pair with an observability pipeline attached:
// throughput is measured with sampling disabled (the production
// steady state), then sampling is flipped to every-packet for a short
// latency phase that feeds the p50/p95/p99 columns.
func nativeRun(quiet bool, admin *obs.Admin) ([]benchResult, error) {
	if !quiet {
		fmt.Println("Native Seal+Open throughput on this machine (1460-byte datagrams, encrypted):")
	}
	var results []benchResult
	for _, m := range []struct {
		name   string
		secret bool
	}{
		{"FBS DES+MD5", true},
		{"FBS NOP (MAC only)", false},
	} {
		res, err := measureAppend("native", m.name, m.secret, quiet, admin)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// suitesRun measures every data-carrying suite in the registry on the
// same append path, encrypted, one endpoint pair per suite. The
// resulting "suites" section is what make ci freezes into
// BENCH_suites.json and hands to fbsstat bench-validate, which holds
// the AEAD suites to their single-pass throughput claim against the
// paper's DES-CBC/keyed-MD5 configuration.
func suitesRun(quiet bool, admin *obs.Admin) ([]benchResult, error) {
	if !quiet {
		fmt.Println("Per-suite Seal+Open throughput on this machine (1460-byte datagrams, encrypted):")
	}
	var results []benchResult
	for _, s := range core.Suites() {
		if s.ID() == core.CipherNone {
			continue // cleartext-only: no data-carrying configuration to measure
		}
		id := s.ID()
		name := s.Name()
		if !s.AEAD() {
			// Legacy suites are measured in the paper's configuration.
			name += "-CBC/keyed-MD5"
		}
		res, err := measureAppend("suites", name, true, quiet, admin, func(c *core.Config) {
			c.Cipher = id
			c.Mode = cryptolib.CBC
		})
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// batchRun measures the batched UDP data plane over the real loopback:
// for every AEAD suite, a matrix of batch sizes × shard counts, each
// cell a lockstep SendBatch/ReceiveBatch pipeline on kernel sockets.
// Payloads are small (256 bytes) so the per-datagram syscall is the
// dominant fixed cost — exactly what the mmsg path amortises; the
// committed BENCH_batch.json holds batch=32 to a 3× floor over
// batch=1 in this section.
func batchRun(quiet bool, maxShards int, admin *obs.Admin) ([]benchResult, error) {
	if !quiet {
		fmt.Println("Batched UDP loopback throughput (256-byte datagrams, encrypted):")
	}
	if maxShards < 1 {
		maxShards = 1
	}
	var results []benchResult
	for _, s := range core.Suites() {
		if !s.AEAD() {
			continue
		}
		for sh := 1; sh <= maxShards; sh *= 2 {
			for _, bsz := range []int{1, 8, 32, 128} {
				name := fmt.Sprintf("%s/b=%d/s=%d", s.Name(), bsz, sh)
				kbps, err := measureBatchUDP(s.ID(), bsz, sh, name, admin)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
				results = append(results, benchResult{Section: "batch", Config: name, Kbps: kbps})
				if !quiet {
					fmt.Printf("  %-28s %10.0f kb/s\n", name, kbps)
				}
			}
		}
	}
	return results, nil
}

// measureBatchUDP runs one matrix cell: a sharded sender and a sharded
// receiver, one UDP socket pair per shard (the SO_REUSEPORT model).
// Each shard models a real deployment's split: a dedicated receive-loop
// goroutine blocks in Receive/ReceiveBatch and reports what it drained
// through a credit channel, while the sender transmits one
// batch-of-bsz window and waits for the credits to return before the
// next — so at b=1 every datagram pays the send syscall plus a full
// receiver wakeup, and at b=32 one syscall pair and one wakeup are
// split 32 ways. That is precisely the amortisation the batched data
// plane claims, measured against the scalar plane it replaces.
// Credit-window lockstep also bounds in-flight bytes far below the
// socket buffers, so loopback delivery is lossless and credited payload
// is the throughput. Each cell runs three windows and reports the best:
// the first window doubles as warmup (flow setup, cipher instance and
// intern tables), and on a small shared machine the max is the
// least-interfered estimate of what the configuration can do.
func measureBatchUDP(cipher core.CipherID, bsz, shards int, label string, admin *obs.Admin) (float64, error) {
	d, err := fbs.NewDomain("fbsbench-batch", fbs.WithGroup(cryptolib.TestGroup))
	if err != nil {
		return 0, err
	}
	txU := make([]*transport.UDPTransport, shards)
	rxU := make([]*transport.UDPTransport, shards)
	for i := 0; i < shards; i++ {
		if txU[i], err = transport.NewUDPTransport("batch-tx", "127.0.0.1:0"); err != nil {
			return 0, err
		}
		if rxU[i], err = transport.NewUDPTransport("batch-rx", "127.0.0.1:0"); err != nil {
			return 0, err
		}
		if err := txU[i].AddPeer("batch-rx", rxU[i].LocalAddr().String()); err != nil {
			return 0, err
		}
		if err := rxU[i].AddPeer("batch-tx", txU[i].LocalAddr().String()); err != nil {
			return 0, err
		}
	}
	opt := func(c *core.Config) {
		c.Cipher = cipher
		c.SinglePass = true
	}
	txGrp, err := d.NewShardedEndpoint("batch-tx", shards, func(i int) (fbs.Transport, error) { return txU[i], nil }, opt)
	if err != nil {
		return 0, err
	}
	defer txGrp.Close()
	rxGrp, err := d.NewShardedEndpoint("batch-rx", shards, func(i int) (fbs.Transport, error) { return rxU[i], nil }, opt)
	if err != nil {
		return 0, err
	}
	defer rxGrp.Close()
	if admin != nil {
		obs.RegisterShardGroup(admin.Registry, "batch-tx-"+label, txGrp)
		obs.RegisterShardGroup(admin.Registry, "batch-rx-"+label, rxGrp)
	}
	// Failsafe: a lost datagram would stall a lockstep shard forever;
	// closing the sockets turns a stall into an error.
	watchdog := time.AfterFunc(30*time.Second, func() {
		txGrp.Close()
		rxGrp.Close()
	})
	defer watchdog.Stop()

	const payloadLen = 256
	const window = 300 * time.Millisecond
	const windows = 3
	var (
		mu       sync.Mutex
		runErr   error
		stopping atomic.Bool
	)
	broken := make(chan struct{})
	var brokeOnce sync.Once
	fail := func(shard int, err error) {
		mu.Lock()
		if runErr == nil {
			runErr = fmt.Errorf("shard %d: %w", shard, err)
		}
		mu.Unlock()
		brokeOnce.Do(func() { close(broken) })
	}

	// Receive loops live for the whole cell; they are unblocked at the
	// end by closing the sockets, which they treat as a clean exit once
	// stopping is set.
	credits := make([]chan int, shards)
	var rxWg sync.WaitGroup
	for i := 0; i < shards; i++ {
		credits[i] = make(chan int, 1024)
		rxWg.Add(1)
		go func(i int) {
			defer rxWg.Done()
			rx := rxGrp.Shard(i)
			for {
				var arrived int
				var err error
				if bsz == 1 {
					// The scalar receive loop the batched one replaces:
					// one syscall and one poller wakeup per datagram.
					_, err = rx.Receive()
					arrived = 1
				} else {
					var accepted []transport.Datagram
					accepted, arrived, err = rx.ReceiveBatch(bsz)
					if err == nil && len(accepted) != arrived {
						err = fmt.Errorf("receiver rejected %d of %d datagrams", arrived-len(accepted), arrived)
					}
				}
				if err != nil {
					if !stopping.Load() {
						fail(i, err)
					}
					return
				}
				credits[i] <- arrived
			}
		}(i)
	}

	dgsBy := make([][]transport.Datagram, shards)
	payload := make([]byte, payloadLen)
	for i := range dgsBy {
		dgsBy[i] = make([]transport.Datagram, bsz)
		for k := range dgsBy[i] {
			dgsBy[i][k] = transport.Datagram{Source: "batch-tx", Destination: "batch-rx", Payload: payload}
		}
	}

	var best float64
	for w := 0; w < windows; w++ {
		var (
			wg       sync.WaitGroup
			winBytes int64
		)
		start := time.Now()
		deadline := start.Add(window)
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tx := txGrp.Shard(i)
				dgs := dgsBy[i]
				for time.Now().Before(deadline) {
					if bsz == 1 {
						if err := tx.Send(dgs[0], true); err != nil {
							fail(i, err)
							return
						}
					} else if n, err := tx.SendBatch(dgs, true); err != nil || n != bsz {
						fail(i, fmt.Errorf("SendBatch sent %d of %d: %w", n, bsz, err))
						return
					}
					for need := bsz; need > 0; {
						select {
						case n := <-credits[i]:
							need -= n
						case <-broken:
							return
						}
					}
					atomic.AddInt64(&winBytes, int64(bsz)*payloadLen)
				}
			}(i)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		mu.Lock()
		failed := runErr != nil
		mu.Unlock()
		if failed {
			break
		}
		if kbps := float64(winBytes) * 8 / el / 1000; kbps > best {
			best = kbps
		}
	}

	stopping.Store(true)
	txGrp.Close()
	rxGrp.Close()
	for i := 0; i < shards; i++ {
		txU[i].Close()
		rxU[i].Close()
	}
	rxWg.Wait()
	if runErr != nil {
		return 0, runErr
	}
	return best, nil
}

// measureAppend benchmarks one endpoint configuration on the
// allocation-free append path: a one-second throughput phase with
// sampling disabled (the production steady state), then a short
// every-packet phase whose StageTotal histograms feed the latency
// percentiles.
func measureAppend(section, name string, secret, quiet bool, admin *obs.Admin, mutate ...func(*core.Config)) (benchResult, error) {
	payload := make([]byte, 1460)
	dg := transport.Datagram{Source: "sim-a", Destination: "sim-b", Payload: payload}
	pipe := obs.NewPipeline(obs.PipelineConfig{SampleEvery: 0})
	mutate = append(mutate, func(c *core.Config) { c.Observer = pipe })
	a, b, err := endpointPair(true, mutate...)
	if err != nil {
		return benchResult{}, err
	}
	defer a.Close()
	defer b.Close()
	if admin != nil {
		label := section + "-" + name
		obs.RegisterEndpoint(admin.Registry, label, a)
		obs.RegisterPipeline(admin.Registry, label, pipe)
		admin.WatchEndpoint(label, a)
		admin.WatchRecorder(pipe.Recorder())
	}
	sealBuf := make([]byte, 0, core.HeaderSize+len(payload)+cryptolib.BlockSize)
	openBuf := make([]byte, 0, core.HeaderSize+len(payload)+cryptolib.BlockSize)
	sealOpen := func() error {
		sealed, err := a.SealAppend(sealBuf[:0], dg, secret)
		if err != nil {
			return err
		}
		sealBuf = sealed
		opened, err := b.OpenAppend(openBuf[:0], transport.Datagram{
			Source: "sim-a", Destination: "sim-b", Payload: sealed,
		})
		if err != nil {
			return err
		}
		openBuf = opened
		return nil
	}
	if err := sealOpen(); err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	start := time.Now()
	var bytes int64
	for time.Since(start) < time.Second {
		if err := sealOpen(); err != nil {
			return benchResult{}, fmt.Errorf("%s: %w", name, err)
		}
		bytes += int64(len(payload))
	}
	el := time.Since(start).Seconds()
	kbps := float64(bytes) * 8 / el / 1000
	// Latency phase: sample every packet briefly; percentiles come
	// from the whole-call StageTotal histograms.
	pipe.SetSampleEvery(1)
	latStart := time.Now()
	for time.Since(latStart) < 200*time.Millisecond {
		if err := sealOpen(); err != nil {
			return benchResult{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	pipe.SetSampleEvery(0)
	sealLat := summarize(pipe.StageSnapshot(true, core.StageTotal))
	openLat := summarize(pipe.StageSnapshot(false, core.StageTotal))
	res := benchResult{
		Section: section, Config: name, Kbps: kbps,
		SealLatency: sealLat, OpenLatency: openLat,
	}
	if !quiet {
		fmt.Printf("  %-24s %10.0f kb/s", name, kbps)
		if sealLat != nil && openLat != nil {
			fmt.Printf("   seal p50/p99 %v/%v, open p50/p99 %v/%v",
				time.Duration(sealLat.P50Ns), time.Duration(sealLat.P99Ns),
				time.Duration(openLat.P50Ns), time.Duration(openLat.P99Ns))
		}
		fmt.Println()
	}
	return res, nil
}

// stackRun pushes a ttcp-style transfer through the real IPv4 stack with
// the FBS hook installed, end to end, at native speed.
func stackRun(total int, quiet bool, admin *obs.Admin) ([]benchResult, error) {
	if !quiet {
		fmt.Printf("\nFull-stack native run: %d MB through real IPv4 + TCP-lite + FBS (DES+MD5)\n", total>>20)
	}
	ca, err := cert.NewAuthority("fbsbench-stack", 512)
	if err != nil {
		return nil, err
	}
	dir := cert.NewStaticDirectory()
	ver := &cert.Verifier{CAKey: ca.PublicKey(), CA: "fbsbench-stack"}
	type wireT struct {
		mu    sync.Mutex
		peers map[ip.Addr]*ip.Stack
	}
	w := &wireT{peers: make(map[ip.Addr]*ip.Stack)}
	sender := func(self ip.Addr) ip.LinkSender {
		return ip.LinkFunc(func(frame []byte) error {
			w.mu.Lock()
			var dst *ip.Stack
			if h, _, err := ip.Unmarshal(frame); err == nil {
				dst = w.peers[h.Dst]
			}
			w.mu.Unlock()
			if dst != nil {
				go dst.Input(append([]byte(nil), frame...))
			}
			return nil
		})
	}
	mk := func(addr ip.Addr) (*ip.Stack, error) {
		id, err := principal.NewIdentity(ip.Principal(addr), cryptolib.TestGroup)
		if err != nil {
			return nil, err
		}
		c, err := ca.Issue(id, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
		if err != nil {
			return nil, err
		}
		dir.Publish(c)
		hook, err := ip.NewFBSHook(core.Config{
			Identity: id, Directory: dir, Verifier: ver, SinglePass: true,
		}, ip.AlwaysSecret)
		if err != nil {
			return nil, err
		}
		s, err := ip.NewStack(ip.StackConfig{Addr: addr, Link: sender(addr), Hook: hook})
		if err != nil {
			return nil, err
		}
		w.mu.Lock()
		w.peers[addr] = s
		w.mu.Unlock()
		return s, nil
	}
	addrA, addrB := ip.Addr{10, 8, 0, 1}, ip.Addr{10, 8, 0, 2}
	sa, err := mk(addrA)
	if err != nil {
		return nil, err
	}
	sb, err := mk(addrB)
	if err != nil {
		return nil, err
	}
	if admin != nil {
		obs.RegisterStack(admin.Registry, "stack-a", sa)
		obs.RegisterStack(admin.Registry, "stack-b", sb)
	}
	overhead := core.SealOverhead
	ssa, err := l4.NewStreamStack(sa, l4.StreamConfig{SecurityHeaderLen: overhead})
	if err != nil {
		return nil, err
	}
	ssb, err := l4.NewStreamStack(sb, l4.StreamConfig{SecurityHeaderLen: overhead})
	if err != nil {
		return nil, err
	}
	ln, err := ssb.Listen(5001)
	if err != nil {
		return nil, err
	}
	got := make(chan int64, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- -1
			return
		}
		n, _ := io.Copy(io.Discard, conn)
		got <- n
	}()
	start := time.Now()
	conn, err := ssa.Dial(addrB, 5001)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(make([]byte, total)); err != nil {
		return nil, err
	}
	if err := conn.CloseWrite(); err != nil {
		return nil, err
	}
	n := <-got
	elapsed := time.Since(start)
	if int(n) != total {
		return nil, fmt.Errorf("received %d of %d bytes", n, total)
	}
	kbps := float64(total) * 8 / elapsed.Seconds() / 1000
	if !quiet {
		fmt.Printf("  %d bytes in %v = %.0f kb/s (every packet MACed and DES-encrypted end to end)\n",
			total, elapsed.Round(time.Millisecond), kbps)
	}
	return []benchResult{{Section: "stack", Config: "FBS DES+MD5", Kbps: kbps}}, nil
}
