// Command fbschaos runs the fault-injection soak matrix: each scenario
// pushes a transfer through an impaired LinkModel while an adversary
// injects forged, replayed, truncated, and bit-flipped datagrams, then
// reconciles the books — every packet offered to the receiver must be
// accounted for as accepted or dropped under exactly one DropReason.
//
// Usage:
//
//	fbschaos [-seed N] [-run regexp] [-iterations N] [-json] [-list]
//	         [-flood [-prefilter]] [-crash] [-diff [-ops N]] [-trace]
//
// With -trace the chaos matrix runs with every-datagram tracing
// (internal/obs/trace); a scenario that fails reconciliation dumps its
// assembled trace report to $FBS_TRACE_ARTIFACT_DIR for offline
// rendering with `fbsstat trace -f <file>`.
//
// By default the link-fault chaos matrix runs. -flood switches to the
// overload matrix (flow-churn and spoofed-source keying floods against
// a budgeted, admission-controlled receiver; -prefilter adds the edge
// pre-filter scenarios — sketch shedding, cookie challenge, adaptive
// ladder); -crash to the
// crash-restart recovery matrix; -diff to the differential matrix
// (seeded op streams cross-validated between the optimised endpoint
// and the internal/refmodel reference, -ops operations per stream,
// divergence artifacts written to $FBS_DIFF_ARTIFACT_DIR when set).
// The flags compose: -flood -crash runs both.
//
// Exit status is nonzero if any scenario fails to reconcile or to
// complete its transfer. With -iterations N each scenario is run N
// times with derived seeds, for soak testing; -json emits one JSON
// report per run to stdout instead of the human summaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"fbs/internal/core"
	"fbs/internal/netsim"
)

// matrix returns the standing chaos scenarios, seeded from base. It
// mirrors the netsim chaos test matrix so CI and the soak harness
// exercise the same fault space.
func matrix(base uint64) []netsim.ChaosScenario {
	everyKind := map[netsim.InjectKind]int{}
	for k := 0; k < netsim.NumInjectKinds; k++ {
		everyKind[netsim.InjectKind(k)] = 4
	}
	scenarios := []netsim.ChaosScenario{
		{
			Name:         "adversary-clean-link",
			Seed:         base,
			Datagrams:    64,
			PayloadBytes: 96,
			Secret:       true,
			Inject:       everyKind,
			ExactBuckets: true,
		},
		{
			Name: "duplicate-storm",
			Seed: base + 1,
			Link: []netsim.Stage{
				netsim.Duplicate(0.5),
				netsim.DelayJitter(time.Millisecond, 3*time.Millisecond),
			},
			Datagrams:    96,
			PayloadBytes: 64,
			Secret:       true,
			ExactBuckets: true,
		},
		{
			Name: "lossy-burst-full-storm",
			Seed: base + 2,
			Link: []netsim.Stage{
				netsim.GilbertElliott(0.05, 0.4, 0.02, 0.6),
				netsim.Duplicate(0.1),
				netsim.CorruptBits(0.05),
				netsim.DelayJitter(500*time.Microsecond, 2*time.Millisecond),
				netsim.Reorder(0.2, time.Millisecond),
			},
			Datagrams:    128,
			PayloadBytes: 128,
			Secret:       true,
			Inject: map[netsim.InjectKind]int{
				netsim.InjectReplay:   6,
				netsim.InjectForgeMAC: 6,
				netsim.InjectTruncate: 6,
			},
		},
		{
			Name: "keying-outage",
			Seed: base + 3,
			Link: []netsim.Stage{
				netsim.DelayJitter(200*time.Microsecond, time.Millisecond),
			},
			Datagrams:       30,
			PayloadBytes:    48,
			Secret:          true,
			KeyOutage:       true,
			OutageDatagrams: 12,
			Retry: core.RetryPolicy{
				MaxAttempts: 3,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
				JitterFrac:  0.5,
			},
			NegativeTTL: 250 * time.Millisecond,
		},
	}
	// The full-storm scenario again, through the batched receive path:
	// ReceiveBatch → OpenBatch must reconcile the same ledger the
	// per-datagram path does under loss, duplication, corruption,
	// reordering and adversary injection.
	scenarios = append(scenarios, netsim.ChaosScenario{
		Name: "lossy-burst-full-storm-batched",
		Seed: base + 2,
		Link: []netsim.Stage{
			netsim.GilbertElliott(0.05, 0.4, 0.02, 0.6),
			netsim.Duplicate(0.1),
			netsim.CorruptBits(0.05),
			netsim.DelayJitter(500*time.Microsecond, 2*time.Millisecond),
			netsim.Reorder(0.2, time.Millisecond),
		},
		Datagrams:    128,
		PayloadBytes: 128,
		Secret:       true,
		Batch:        true,
		Inject: map[netsim.InjectKind]int{
			netsim.InjectReplay:   6,
			netsim.InjectForgeMAC: 6,
			netsim.InjectTruncate: 6,
		},
	})
	// One adversary run per data-carrying suite in the registry, so the
	// exact-bucket reconciliation (including the suite-aware downgrade
	// and swap injections) holds under every framing, not just DES.
	for _, s := range core.Suites() {
		if s.ID() == core.CipherNone {
			continue
		}
		scenarios = append(scenarios, netsim.ChaosScenario{
			Name:         "adversary-suite-" + s.Name(),
			Seed:         base + 16 + uint64(s.ID()),
			Datagrams:    40,
			PayloadBytes: 192,
			Secret:       true,
			Suite:        s.ID(),
			Inject:       everyKind,
			ExactBuckets: true,
		})
	}
	return scenarios
}

// floodMatrix returns the standing overload scenarios, seeded from
// base. It mirrors the netsim flood test matrix. With prefilter set the
// edge pre-filter scenarios ride along: the sketch pinned against a
// shared-prefix storm (with the >=90% pre-parse shed floor), the
// challenge rung proving zero spoof-attributable keying, and the
// adaptive ladder escalating from its resting level.
func floodMatrix(base uint64, prefilter bool) []netsim.FloodScenario {
	scenarios := []netsim.FloodScenario{
		{
			Name:             "spoof-10x",
			Seed:             base,
			Datagrams:        60,
			PayloadBytes:     64,
			Secret:           true,
			ChurnDatagrams:   120,
			SpoofDatagrams:   600,
			SpoofSources:     24,
			SenderHardBudget: 16 * core.CostFAMEntry,
			Admission: core.AdmissionConfig{
				UpcallRate:  20,
				UpcallBurst: 5,
				PrefixQuota: 2,
				PrefixLen:   14,
				QuotaWindow: 30 * time.Second,
			},
			GoodputFloor: 0.7,
		},
		{
			Name:           "churn-budget",
			Seed:           base + 1,
			Datagrams:      40,
			PayloadBytes:   64,
			ChurnDatagrams: 200,
			HardBudget:     4096,
			GoodputFloor:   0.05,
		},
	}
	if prefilter {
		scenarios = append(scenarios,
			netsim.FloodScenario{
				Name:           "prefilter-sketch",
				Seed:           base + 2,
				Datagrams:      50,
				PayloadBytes:   64,
				Secret:         true,
				SpoofDatagrams: 2000,
				SpoofSources:   24,
				Admission: core.AdmissionConfig{
					UpcallRate:  20,
					UpcallBurst: 5,
					PrefixQuota: 2,
					PrefixLen:   14,
					QuotaWindow: 30 * time.Second,
				},
				Prefilter:         core.PrefilterConfig{Enable: true, ForceLevel: core.PrefilterSketch},
				PreParseShedFloor: 0.9,
				GoodputFloor:      0.7,
			},
			netsim.FloodScenario{
				Name:           "prefilter-challenge",
				Seed:           base + 3,
				Datagrams:      60,
				PayloadBytes:   64,
				Secret:         true,
				ChurnDatagrams: 120,
				SpoofDatagrams: 600,
				SpoofSources:   24,
				Admission: core.AdmissionConfig{
					UpcallRate:  20,
					UpcallBurst: 5,
				},
				Prefilter: core.PrefilterConfig{
					Enable:     true,
					ForceLevel: core.PrefilterChallenge,
					SecretSeed: []byte("fbschaos-prefilter-seed"),
				},
				PreParseShedFloor:   0.9,
				ExpectNoSpoofKeying: true,
				GoodputFloor:        0.7,
			},
			netsim.FloodScenario{
				Name:           "prefilter-adaptive",
				Seed:           base + 4,
				Datagrams:      50,
				PayloadBytes:   64,
				SpoofDatagrams: 2000,
				SpoofSources:   24,
				Admission: core.AdmissionConfig{
					UpcallRate:  20,
					UpcallBurst: 5,
				},
				Prefilter:        core.PrefilterConfig{Enable: true},
				ExpectEscalation: true,
				GoodputFloor:     0.7,
			},
		)
	}
	return scenarios
}

// diffMatrix returns the standing differential cross-validation runs:
// seeded op streams executed against both the optimised endpoint and
// the naive reference model, with and without the replay cache.
func diffMatrix(base uint64, ops int) []struct {
	Name string
	Sc   netsim.DiffScenario
} {
	runs := []struct {
		Name string
		Sc   netsim.DiffScenario
	}{
		{"diff-replay", netsim.DiffScenario{Seed: base, Ops: ops, ReplayCache: true}},
		{"diff-noreplay", netsim.DiffScenario{Seed: base + 1, Ops: ops, ReplayCache: false}},
	}
	// Shorter per-suite streams: the long runs above soak the default
	// (DES) configuration; these cross-validate every other registered
	// framing against its independent reference implementation.
	sops := ops / 4
	if sops < 1000 {
		sops = 1000
	}
	for _, s := range core.Suites() {
		if s.ID() == core.CipherNone || s.ID() == core.CipherDES {
			continue
		}
		runs = append(runs, struct {
			Name string
			Sc   netsim.DiffScenario
		}{
			"diff-suite-" + s.Name(),
			netsim.DiffScenario{Seed: base + 16 + uint64(s.ID()), Ops: sops, ReplayCache: true, Suite: s.ID()},
		})
	}
	return runs
}

// crashMatrix returns the standing crash-restart scenarios.
func crashMatrix(base uint64) []netsim.CrashScenario {
	return []netsim.CrashScenario{
		{
			Name:         "crash-mid-transfer",
			Seed:         base,
			Datagrams:    80,
			CrashAfter:   40,
			PayloadBytes: 64,
			Secret:       true,
			HardBudget:   1 << 20,
			Admission:    core.AdmissionConfig{UpcallRate: 20, UpcallBurst: 4},
		},
	}
}

// reconfigMatrix returns the standing reconfiguration-under-load
// scenarios.
func reconfigMatrix(base uint64) []netsim.ReconfigScenario {
	return []netsim.ReconfigScenario{
		{
			Name:         "reconfig-under-load",
			Seed:         base,
			Senders:      4,
			Datagrams:    60,
			PayloadBytes: 64,
			Secret:       true,
			Shards:       2,
			Swaps:        3,
		},
	}
}

// dumpTraces writes a failing scenario's assembled per-datagram traces
// and its flight-recorder window to $FBS_TRACE_ARTIFACT_DIR (when set,
// and when the scenario ran with -trace), so CI uploads the
// datagram-level story of the failure alongside the reconciliation
// books. Render the traces with `fbsstat trace -f <file>`.
func dumpTraces(name string, rep *netsim.ChaosReport) {
	dir := os.Getenv("FBS_TRACE_ARTIFACT_DIR")
	if dir == "" || rep == nil || rep.TraceReport == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	write := func(suffix string, doc any) {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return
		}
		path := filepath.Join(dir, name+suffix)
		if os.WriteFile(path, data, 0o644) == nil {
			fmt.Fprintf(os.Stderr, "fbschaos: %s: artifact written to %s\n", name, path)
		}
	}
	write("-traces.json", rep.TraceReport)
	if len(rep.RecorderDump) > 0 {
		write("-recorder.json", rep.RecorderDump)
	}
}

func main() {
	seed := flag.Uint64("seed", 0xC4A05, "base seed for the scenario matrix")
	run := flag.String("run", "", "only run scenarios whose name matches this regexp")
	iters := flag.Int("iterations", 1, "repeat each scenario this many times with derived seeds")
	asJSON := flag.Bool("json", false, "emit one JSON report per run instead of text summaries")
	list := flag.Bool("list", false, "list scenario names and exit")
	flood := flag.Bool("flood", false, "run the overload (flood) matrix instead of the chaos matrix")
	crash := flag.Bool("crash", false, "run the crash-restart matrix instead of the chaos matrix")
	diff := flag.Bool("diff", false, "run the differential matrix (optimised endpoint vs reference model) instead of the chaos matrix")
	reconfig := flag.Bool("reconfig", false, "run the gateway reconfiguration-under-load matrix instead of the chaos matrix")
	prefilter := flag.Bool("prefilter", false, "with -flood, include the edge pre-filter scenarios (sketch, challenge, adaptive ladder)")
	diffOps := flag.Int("ops", 20000, "op-stream length per differential scenario (with -diff)")
	trace := flag.Bool("trace", false, "run chaos scenarios with every-datagram tracing; failing scenarios dump their trace report to $FBS_TRACE_ARTIFACT_DIR")
	flag.Parse()

	var filter *regexp.Regexp
	if *run != "" {
		var err error
		if filter, err = regexp.Compile(*run); err != nil {
			fmt.Fprintf(os.Stderr, "fbschaos: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
	}

	// A runnable erases the scenario type: every matrix entry reduces to
	// a name and an execution that reports its summary, violations, and
	// completion.
	type runnable struct {
		name string
		run  func() (report any, summary string, violations []string, complete bool, err error)
	}
	collect := func(base uint64) []runnable {
		var rs []runnable
		if *flood || *crash || *diff || *reconfig {
			if *reconfig {
				for _, sc := range reconfigMatrix(base) {
					sc := sc
					rs = append(rs, runnable{sc.Name, func() (any, string, []string, bool, error) {
						rep, err := netsim.RunReconfig(sc)
						if err != nil {
							return nil, "", nil, false, err
						}
						return rep, rep.Summary(), rep.Violations, rep.Complete, nil
					}})
				}
			}
			if *diff {
				for _, d := range diffMatrix(base, *diffOps) {
					d := d
					rs = append(rs, runnable{d.Name, func() (any, string, []string, bool, error) {
						rep, err := netsim.RunDiff(d.Sc)
						if err != nil {
							return nil, "", nil, false, err
						}
						var violations []string
						if rep.Divergence != "" {
							violations = append(violations, rep.Divergence)
							if dir := os.Getenv("FBS_DIFF_ARTIFACT_DIR"); dir != "" {
								if err := os.MkdirAll(dir, 0o755); err == nil {
									path := filepath.Join(dir, d.Name+".txt")
									if os.WriteFile(path, []byte(rep.Artifact()), 0o644) == nil {
										fmt.Fprintf(os.Stderr, "fbschaos: %s: divergence artifact written to %s\n", d.Name, path)
									}
								}
							}
						}
						return rep, rep.Summary(), violations, true, nil
					}})
				}
			}
			if *flood {
				for _, sc := range floodMatrix(base, *prefilter) {
					sc := sc
					rs = append(rs, runnable{sc.Name, func() (any, string, []string, bool, error) {
						rep, err := netsim.RunFlood(sc)
						if err != nil {
							return nil, "", nil, false, err
						}
						return rep, rep.Summary(), rep.Violations, rep.Complete, nil
					}})
				}
			}
			if *crash {
				for _, sc := range crashMatrix(base) {
					sc := sc
					rs = append(rs, runnable{sc.Name, func() (any, string, []string, bool, error) {
						rep, err := netsim.RunCrashRestart(sc)
						if err != nil {
							return nil, "", nil, false, err
						}
						return rep, rep.Summary(), rep.Violations, rep.Complete, nil
					}})
				}
			}
			return rs
		}
		for _, sc := range matrix(base) {
			sc := sc
			sc.Trace = *trace
			rs = append(rs, runnable{sc.Name, func() (any, string, []string, bool, error) {
				rep, err := netsim.RunChaos(sc)
				if err != nil {
					return nil, "", nil, false, err
				}
				if len(rep.Violations) > 0 || !rep.Complete {
					dumpTraces(sc.Name, rep)
				}
				return rep, rep.Summary(), rep.Violations, rep.Complete, nil
			}})
		}
		return rs
	}

	failed := 0
	enc := json.NewEncoder(os.Stdout)
	for iter := 0; iter < *iters; iter++ {
		// Each iteration shifts the whole matrix to a fresh seed block
		// so soak runs explore new fault schedules deterministically.
		for _, r := range collect(*seed + uint64(iter)*0x1000) {
			if filter != nil && !filter.MatchString(r.name) {
				continue
			}
			if *list {
				fmt.Println(r.name)
				continue
			}
			rep, summary, violations, complete, err := r.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "fbschaos: %s: %v\n", r.name, err)
				failed++
				continue
			}
			if *asJSON {
				if err := enc.Encode(rep); err != nil {
					fmt.Fprintf(os.Stderr, "fbschaos: %v\n", err)
					os.Exit(2)
				}
			} else {
				fmt.Println(summary)
			}
			if len(violations) > 0 || !complete {
				failed++
			}
		}
		if *list {
			break
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fbschaos: %d scenario run(s) failed reconciliation\n", failed)
		os.Exit(1)
	}
}
