// Command fbschaos runs the fault-injection soak matrix: each scenario
// pushes a transfer through an impaired LinkModel while an adversary
// injects forged, replayed, truncated, and bit-flipped datagrams, then
// reconciles the books — every packet offered to the receiver must be
// accounted for as accepted or dropped under exactly one DropReason.
//
// Usage:
//
//	fbschaos [-seed N] [-run regexp] [-iterations N] [-json] [-list]
//
// Exit status is nonzero if any scenario fails to reconcile or to
// complete its transfer. With -iterations N each scenario is run N
// times with derived seeds, for soak testing; -json emits one JSON
// report per run to stdout instead of the human summaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"fbs/internal/core"
	"fbs/internal/netsim"
)

// matrix returns the standing chaos scenarios, seeded from base. It
// mirrors the netsim chaos test matrix so CI and the soak harness
// exercise the same fault space.
func matrix(base uint64) []netsim.ChaosScenario {
	everyKind := map[netsim.InjectKind]int{}
	for k := 0; k < netsim.NumInjectKinds; k++ {
		everyKind[netsim.InjectKind(k)] = 4
	}
	return []netsim.ChaosScenario{
		{
			Name:         "adversary-clean-link",
			Seed:         base,
			Datagrams:    64,
			PayloadBytes: 96,
			Secret:       true,
			Inject:       everyKind,
			ExactBuckets: true,
		},
		{
			Name: "duplicate-storm",
			Seed: base + 1,
			Link: []netsim.Stage{
				netsim.Duplicate(0.5),
				netsim.DelayJitter(time.Millisecond, 3*time.Millisecond),
			},
			Datagrams:    96,
			PayloadBytes: 64,
			Secret:       true,
			ExactBuckets: true,
		},
		{
			Name: "lossy-burst-full-storm",
			Seed: base + 2,
			Link: []netsim.Stage{
				netsim.GilbertElliott(0.05, 0.4, 0.02, 0.6),
				netsim.Duplicate(0.1),
				netsim.CorruptBits(0.05),
				netsim.DelayJitter(500*time.Microsecond, 2*time.Millisecond),
				netsim.Reorder(0.2, time.Millisecond),
			},
			Datagrams:    128,
			PayloadBytes: 128,
			Secret:       true,
			Inject: map[netsim.InjectKind]int{
				netsim.InjectReplay:   6,
				netsim.InjectForgeMAC: 6,
				netsim.InjectTruncate: 6,
			},
		},
		{
			Name: "keying-outage",
			Seed: base + 3,
			Link: []netsim.Stage{
				netsim.DelayJitter(200*time.Microsecond, time.Millisecond),
			},
			Datagrams:       30,
			PayloadBytes:    48,
			Secret:          true,
			KeyOutage:       true,
			OutageDatagrams: 12,
			Retry: core.RetryPolicy{
				MaxAttempts: 3,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
				JitterFrac:  0.5,
			},
			NegativeTTL: 250 * time.Millisecond,
		},
	}
}

func main() {
	seed := flag.Uint64("seed", 0xC4A05, "base seed for the scenario matrix")
	run := flag.String("run", "", "only run scenarios whose name matches this regexp")
	iters := flag.Int("iterations", 1, "repeat each scenario this many times with derived seeds")
	asJSON := flag.Bool("json", false, "emit one JSON report per run instead of text summaries")
	list := flag.Bool("list", false, "list scenario names and exit")
	flag.Parse()

	var filter *regexp.Regexp
	if *run != "" {
		var err error
		if filter, err = regexp.Compile(*run); err != nil {
			fmt.Fprintf(os.Stderr, "fbschaos: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
	}

	failed := 0
	enc := json.NewEncoder(os.Stdout)
	for iter := 0; iter < *iters; iter++ {
		// Each iteration shifts the whole matrix to a fresh seed block
		// so soak runs explore new fault schedules deterministically.
		for _, sc := range matrix(*seed + uint64(iter)*0x1000) {
			if filter != nil && !filter.MatchString(sc.Name) {
				continue
			}
			if *list {
				fmt.Println(sc.Name)
				continue
			}
			rep, err := netsim.RunChaos(sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fbschaos: %s: %v\n", sc.Name, err)
				failed++
				continue
			}
			if *asJSON {
				if err := enc.Encode(rep); err != nil {
					fmt.Fprintf(os.Stderr, "fbschaos: %v\n", err)
					os.Exit(2)
				}
			} else {
				fmt.Println(rep.Summary())
			}
			if len(rep.Violations) > 0 || !rep.Complete {
				failed++
			}
		}
		if *list {
			break
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fbschaos: %d scenario run(s) failed reconciliation\n", failed)
		os.Exit(1)
	}
}
