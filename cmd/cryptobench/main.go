// Command cryptobench measures the cryptolib primitive rates on the
// local machine, regenerating the Section 7.2 CryptoLib performance
// table (the paper reports 549 kB/s for DES-CBC and 7060 kB/s for MD5 on
// a Pentium 133 with 512 kB L2).
//
// Usage:
//
//	cryptobench [-bytes N] [-secs S]
package main

import (
	"crypto/aes"
	"crypto/cipher"
	"flag"
	"fmt"
	"os"
	"time"

	"fbs/internal/cryptolib"
)

func main() {
	bufBytes := flag.Int("bytes", 8192, "buffer size per operation")
	secs := flag.Float64("secs", 1.0, "measurement time per primitive")
	flag.Parse()

	buf := make([]byte, *bufBytes)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	dur := time.Duration(*secs * float64(time.Second))

	measure := func(name string, step func()) {
		// Warm up, then measure.
		step()
		start := time.Now()
		var n int64
		for time.Since(start) < dur {
			step()
			n += int64(len(buf))
		}
		elapsed := time.Since(start).Seconds()
		fmt.Printf("%-22s %10.0f kB/s\n", name, float64(n)/elapsed/1000)
	}

	des, err := cryptolib.NewDES([]byte("8bytekey"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tdes, err := cryptolib.NewTripleDES([]byte("0123456789abcdef"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	iv := make([]byte, 8)
	key := []byte("a 16-byte mackey")

	fmt.Printf("cryptolib primitive rates (%d-byte buffers; paper's P133: DES-CBC 549 kB/s, MD5 7060 kB/s)\n\n", *bufBytes)
	measure("DES-CBC encrypt", func() { cryptolib.EncryptMode(des, cryptolib.CBC, iv, buf, buf) })
	measure("DES-ECB encrypt", func() { cryptolib.EncryptMode(des, cryptolib.ECB, iv, buf, buf) })
	measure("3DES-CBC encrypt", func() { cryptolib.EncryptMode(tdes, cryptolib.CBC, iv, buf, buf) })
	measure("MD5", func() { cryptolib.MD5Sum(buf) })
	measure("SHA-1", func() { cryptolib.SHA1Sum(buf) })
	measure("keyed-MD5 MAC", func() { cryptolib.MACPrefixMD5.Compute(key, buf) })
	measure("HMAC-MD5", func() { cryptolib.MACHMACMD5.Compute(key, buf) })
	measure("CRC-32", func() { cryptolib.CRC32(buf) })

	// The AEAD suites' sealed boxes: encrypt+authenticate in one pass,
	// the modern counterpart to the DES-CBC + keyed-MD5 two-pass rows
	// above (and the primitives behind fbsbench -suites).
	block, err := aes.NewCipher([]byte("a 16-byte aeskey"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	chacha, err := cryptolib.NewChaCha20Poly1305([]byte("a 32-byte chacha20poly1305 key!!"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nonce := make([]byte, 12)
	aad := make([]byte, 12)
	sealed := make([]byte, 0, len(buf)+16)
	measure("AES-128-GCM seal", func() { sealed = gcm.Seal(sealed[:0], nonce, buf, aad) })
	measure("ChaCha20-Poly1305 seal", func() { sealed = chacha.Seal(sealed[:0], nonce, buf, aad) })

	// Confounder/key sources: the paper's LCG-vs-CSPRNG argument.
	lcg := cryptolib.NewLCGSeeded(1)
	measure("LCG confounders", func() {
		for i := 0; i < len(buf); i += 4 {
			lcg.Uint32()
		}
	})
	bbs, err := cryptolib.NewBBS(512)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	small := buf
	if len(small) > 256 {
		small = small[:256] // BBS is slow by design; keep runs short
	}
	start := time.Now()
	bbs.Read(small)
	el := time.Since(start).Seconds()
	fmt.Printf("%-22s %10.1f kB/s  (quadratic residue generator: the paper's per-datagram-key bottleneck)\n",
		"BBS key material", float64(len(small))/el/1000)
}
