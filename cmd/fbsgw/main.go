// Command fbsgw is the deployable FBS gateway daemon: a long-running
// multi-tenant datagram-security gateway over real UDP sockets, driven
// by a declarative JSON config (see examples/fbsgw/gateway.json) and
// reconfigurable with zero downtime three ways:
//
//   - SIGHUP re-reads the config file and atomically swaps to it;
//   - the admin API mirrors Caddy's: GET /config returns the live
//     config, POST /config swaps a full replacement, PATCH /config
//     applies a targeted mutation (accept-set, state budget, admission
//     quota, or a flush_peer key rotation);
//   - embedders call gateway.Gateway.Swap directly.
//
// A swap never drops an in-flight flow: the new config epoch is fully
// built and warmed from the old epoch's keying caches before one
// atomic pointer store redirects traffic, and the old epoch finishes
// what it already admitted before retiring. SIGTERM/SIGINT drain the
// gateway gracefully — intake stops, in-flight datagrams finish, and
// the final cumulative stats (which reconcile exactly: received ==
// accepted + drops + no_tenant + absorbed) print as JSON.
//
// Because zero-message keying needs both sides' public values, the
// daemon plays the Domain the way fbsudp's sender does: it mints
// tenant identities, pre-provisions the client identities named with
// -clients, and writes certificates, the CA key, client private
// values, and the bound listener addresses to the -state file, which
// clients load to build their endpoints. (Production would use a real
// certificate service; see internal/cert.)
//
// Usage:
//
//	fbsgw -config gateway.json -state /tmp/fbsgw.state -clients alice,bob
//	fbsgw -config gateway.json -check   # validate and exit
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/gateway"
	"fbs/internal/obs"
	"fbs/internal/principal"
	"fbs/internal/transport"

	fbs "fbs"
)

func main() {
	configPath := flag.String("config", "", "gateway config file (JSON)")
	statePath := flag.String("state", "", "provisioning state file to write (certs, CA key, client keys, bound addresses)")
	clients := flag.String("clients", "", "comma-separated client principal names to pre-provision into -state")
	check := flag.Bool("check", false, "validate the config and exit")
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "fbsgw: -config is required")
		os.Exit(2)
	}
	if *check {
		cfg, err := loadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsgw:", err)
			os.Exit(1)
		}
		fmt.Printf("config ok: %d tenant(s)\n", len(cfg.Tenants))
		return
	}
	d := newDaemon(cliOptions{
		configPath: *configPath,
		statePath:  *statePath,
		clients:    *clients,
	}, os.Stdout, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fbsgw: "+format+"\n", args...)
	})
	if err := d.run(); err != nil {
		fmt.Fprintln(os.Stderr, "fbsgw:", err)
		os.Exit(1)
	}
}

func loadConfig(path string) (*gateway.Config, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return gateway.Parse(blob)
}

type cliOptions struct {
	configPath string
	statePath  string
	clients    string
}

// provisionState is the side-channel clients load to join the
// gateway's security domain: certificates for every principal, the CA
// verification key, the clients' private values, and where each
// tenant's listener actually bound (so port-0 configs work).
type provisionState struct {
	CAN           string            `json:"ca_n"`
	CAE           string            `json:"ca_e"`
	Certs         [][]byte          `json:"certs"`
	ClientPrivate map[string]string `json:"client_private"`
	TenantUDP     map[string]string `json:"tenant_udp"`
	AdminAddr     string            `json:"admin_addr,omitempty"`
}

type daemon struct {
	opts cliOptions
	out  io.Writer
	logf func(format string, args ...any)

	dom *fbs.Domain
	gw  *gateway.Gateway

	mu          sync.Mutex
	ids         map[principal.Address]*principal.Identity
	clientPrivs map[principal.Address]*big.Int
	bound       map[principal.Address]string // tenant → bound UDP addr

	adminAddr string
	adminStop func() error
	sig       chan os.Signal
}

func newDaemon(opts cliOptions, out io.Writer, logf func(string, ...any)) *daemon {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &daemon{
		opts:        opts,
		out:         out,
		logf:        logf,
		ids:         make(map[principal.Address]*principal.Identity),
		clientPrivs: make(map[principal.Address]*big.Int),
		bound:       make(map[principal.Address]string),
		sig:         make(chan os.Signal, 2),
	}
}

// identity memoises tenant identities so a config swap keeps each
// tenant's keys — which is what lets the warm handoff carry master
// keys across and spare established peers any re-keying.
func (d *daemon) identity(tc gateway.TenantConfig) (*principal.Identity, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	addr := principal.Address(tc.Address)
	if id, ok := d.ids[addr]; ok {
		return id, nil
	}
	id, err := d.dom.NewPrincipal(addr)
	if err != nil {
		return nil, err
	}
	d.ids[addr] = id
	return id, nil
}

// listen binds a learning UDP socket for a tenant. Learning gives the
// reply route: a gateway cannot enumerate its clients in advance, so
// it answers to each client's observed UDP source.
func (d *daemon) listen(tc gateway.TenantConfig) (transport.Transport, error) {
	spec := tc.Listen
	if spec == "" {
		spec = "127.0.0.1:0"
	}
	udp, err := transport.NewUDPTransport(principal.Address(tc.Address), spec)
	if err != nil {
		return nil, err
	}
	udp.SetLearnPeers(true)
	d.mu.Lock()
	d.bound[principal.Address(tc.Address)] = udp.LocalAddr().String()
	d.mu.Unlock()
	return udp, nil
}

func (d *daemon) run() error {
	cfg, err := loadConfig(d.opts.configPath)
	if err != nil {
		return err
	}
	// Install the handlers before anything observable happens, so a
	// supervisor's early SIGTERM still drains instead of killing.
	signal.Notify(d.sig, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(d.sig)

	d.dom, err = fbs.NewDomain("fbsgw")
	if err != nil {
		return err
	}
	d.gw, err = gateway.New(gateway.Options{
		Identity:  d.identity,
		Listen:    d.listen,
		Directory: d.dom.Directory(),
		Verifier:  d.dom.Verifier(),
		Logf:      d.logf,
	})
	if err != nil {
		return err
	}
	if err := d.gw.Start(cfg); err != nil {
		return err
	}

	if cfg.AdminAddr != "" {
		admin := obs.NewAdmin(nil)
		d.gw.RegisterMetrics(admin.Registry)
		admin.Handle("/config", d.gw.ConfigHandler())
		bound, stop, err := admin.Serve(cfg.AdminAddr)
		if err != nil {
			d.gw.Shutdown(time.Second) //nolint:errcheck // already failing
			return fmt.Errorf("admin plane: %w", err)
		}
		d.adminAddr, d.adminStop = bound.String(), stop
		d.logf("admin plane at http://%s/ (config at /config)", bound)
	}

	if err := d.provisionClients(); err != nil {
		return err
	}
	if err := d.writeState(cfg); err != nil {
		return err
	}
	d.logf("serving %d tenant(s) at epoch %d", len(cfg.Tenants), d.gw.Epoch())

	for s := range d.sig {
		switch s {
		case syscall.SIGHUP:
			next, err := loadConfig(d.opts.configPath)
			if err != nil {
				d.logf("reload: %v (keeping epoch %d)", err, d.gw.Epoch())
				continue
			}
			rep, err := d.gw.Swap(next)
			if err != nil {
				d.logf("reload: %v (keeping epoch %d)", err, d.gw.Epoch())
				continue
			}
			cfg = next
			if err := d.writeState(cfg); err != nil {
				d.logf("reload: rewriting state: %v", err)
			}
			d.logf("reloaded to epoch %d (%d certs, %d master keys handed off)",
				rep.Epoch, rep.Certs, rep.MasterKeys)
		case syscall.SIGINT, syscall.SIGTERM:
			timeout := 5 * time.Second
			if cfg.DrainTimeout > 0 {
				timeout = time.Duration(cfg.DrainTimeout)
			}
			st, err := d.gw.Shutdown(timeout)
			if err != nil {
				d.logf("drain: %v", err)
			}
			if d.adminStop != nil {
				if err := d.adminStop(); err != nil {
					d.logf("admin stop: %v", err)
				}
			}
			enc := json.NewEncoder(d.out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(st); err != nil {
				return err
			}
			return nil
		}
	}
	return nil
}

// provisionClients mints an identity per -clients name and enrolls it,
// so the state file carries everything a client process needs.
func (d *daemon) provisionClients() error {
	if d.opts.clients == "" {
		return nil
	}
	for _, name := range strings.Split(d.opts.clients, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		addr := principal.Address(name)
		d.mu.Lock()
		_, have := d.clientPrivs[addr]
		d.mu.Unlock()
		if have {
			continue
		}
		priv, err := d.dom.Group.GeneratePrivate()
		if err != nil {
			return err
		}
		id, err := principal.NewIdentityWithPrivate(addr, d.dom.Group, priv)
		if err != nil {
			return err
		}
		if err := d.dom.Enroll(id); err != nil {
			return err
		}
		d.mu.Lock()
		d.clientPrivs[addr] = priv
		d.mu.Unlock()
	}
	return nil
}

// writeState serialises the provisioning side channel. Called after
// every successful swap so newly added tenants appear too.
func (d *daemon) writeState(cfg *gateway.Config) error {
	if d.opts.statePath == "" {
		return nil
	}
	caKey := d.dom.CAKey()
	st := provisionState{
		CAN:           caKey.N.Text(16),
		CAE:           caKey.E.Text(16),
		ClientPrivate: make(map[string]string),
		TenantUDP:     make(map[string]string),
		AdminAddr:     d.adminAddr,
	}
	d.mu.Lock()
	subjects := make([]principal.Address, 0, len(d.ids)+len(d.clientPrivs))
	for addr := range d.ids {
		subjects = append(subjects, addr)
	}
	for addr, priv := range d.clientPrivs {
		subjects = append(subjects, addr)
		st.ClientPrivate[string(addr)] = hex.EncodeToString(priv.Bytes())
	}
	for _, tc := range cfg.Tenants {
		if bound, ok := d.bound[principal.Address(tc.Address)]; ok {
			st.TenantUDP[tc.Address] = bound
		}
	}
	d.mu.Unlock()
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	for _, addr := range subjects {
		c, err := d.dom.Directory().Lookup(addr)
		if err != nil {
			return fmt.Errorf("state: certificate for %q: %w", addr, err)
		}
		st.Certs = append(st.Certs, c.Marshal())
	}
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(d.opts.statePath, blob, 0600)
}

// loadState reads a provisioning state file.
func loadState(path string) (*provisionState, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := new(provisionState)
	if err := json.Unmarshal(blob, st); err != nil {
		return nil, err
	}
	return st, nil
}

// newClientEndpoint rebuilds a pre-provisioned client from state: its
// identity from the stored private value, a static directory from the
// stored certificates, the CA key, and a UDP socket with a peer route
// to every tenant listener.
func newClientEndpoint(st *provisionState, name string) (*fbs.Endpoint, error) {
	privHex, ok := st.ClientPrivate[name]
	if !ok {
		return nil, fmt.Errorf("state has no client %q", name)
	}
	privBytes, err := hex.DecodeString(privHex)
	if err != nil {
		return nil, err
	}
	dir := cert.NewStaticDirectory()
	var own *cert.Certificate
	for _, wire := range st.Certs {
		c, err := cert.Unmarshal(wire)
		if err != nil {
			return nil, err
		}
		dir.Publish(c)
		if c.Subject == principal.Address(name) {
			own = c
		}
	}
	if own == nil {
		return nil, fmt.Errorf("state carries no certificate for %q", name)
	}
	id, err := principal.NewIdentityWithPrivate(principal.Address(name), own.Group(), new(big.Int).SetBytes(privBytes))
	if err != nil {
		return nil, err
	}
	n, ok := new(big.Int).SetString(st.CAN, 16)
	if !ok {
		return nil, fmt.Errorf("bad CA modulus")
	}
	e, ok := new(big.Int).SetString(st.CAE, 16)
	if !ok {
		return nil, fmt.Errorf("bad CA exponent")
	}
	udp, err := transport.NewUDPTransport(principal.Address(name), "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	for tenant, addr := range st.TenantUDP {
		if err := udp.AddPeer(principal.Address(tenant), addr); err != nil {
			udp.Close()
			return nil, err
		}
	}
	return fbs.NewEndpoint(fbs.Config{
		Identity:  id,
		Transport: udp,
		Directory: dir,
		Verifier:  &cert.Verifier{CAKey: cryptolib.RSAPublicKey{N: n, E: e}, CA: "fbsgw"},
		// Seal with the gateway tenants' default suite so a config
		// that narrows accept_suites to the AEAD set keeps accepting
		// this client.
		Cipher: core.CipherAES128GCM,
	})
}
