package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"fbs/internal/gateway"
	"fbs/internal/transport"
)

func TestExampleConfigValidates(t *testing.T) {
	cfg, err := loadConfig(filepath.Join("..", "..", "examples", "fbsgw", "gateway.json"))
	if err != nil {
		t.Fatalf("example config: %v", err)
	}
	if len(cfg.Tenants) != 2 {
		t.Fatalf("example config has %d tenants, want 2", len(cfg.Tenants))
	}
}

// syncBuffer guards the daemon's stdout across goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFBSGWLiveUDPSmoke is the end-to-end gateway smoke test over real
// loopback sockets: boot the daemon from a config file, stream client
// round trips, hot-swap the config twice mid-transfer (admin API POST,
// then SIGHUP reload), and SIGTERM-drain. Every datagram must come
// back, and the final stats must reconcile with zero unaccounted
// drops.
func TestFBSGWLiveUDPSmoke(t *testing.T) {
	if probe, err := transport.NewUDPTransport("probe", "127.0.0.1:0"); err != nil {
		t.Skipf("UDP unavailable: %v", err)
	} else {
		probe.Close()
	}

	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "gateway.json")
	statePath := filepath.Join(dir, "fbsgw.state")
	writeCfg := func(flowMaxPackets uint64) {
		t.Helper()
		cfg := &gateway.Config{
			AdminAddr:    "127.0.0.1:0",
			DrainTimeout: gateway.Duration(2 * time.Second),
			Tenants: []gateway.TenantConfig{{
				Name:           "edge",
				Address:        "gw-edge",
				Listen:         "127.0.0.1:0",
				Shards:         2,
				ReplayCache:    true,
				FlowMaxPackets: flowMaxPackets,
			}},
		}
		blob, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cfgPath, blob, 0600); err != nil {
			t.Fatal(err)
		}
	}
	writeCfg(0)

	var out syncBuffer
	d := newDaemon(cliOptions{
		configPath: cfgPath,
		statePath:  statePath,
		clients:    "smoke-client",
	}, &out, t.Logf)
	runErr := make(chan error, 1)
	go func() { runErr <- d.run() }()

	// The state file appears once the daemon is serving.
	var st *provisionState
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		if st, err = loadState(statePath); err == nil && st.AdminAddr != "" && len(st.TenantUDP) == 1 {
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("daemon exited during boot: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not provision within 10s (last err: %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	adminURL := "http://" + st.AdminAddr + "/config"

	client, err := newClientEndpoint(st, "smoke-client")
	if err != nil {
		t.Fatalf("client from state: %v", err)
	}
	defer client.Close()

	sent := 0
	roundTrips := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			msg := fmt.Sprintf("smoke-%04d", sent)
			if err := client.SendTo("gw-edge", []byte(msg), true); err != nil {
				t.Fatalf("send %d: %v", sent, err)
			}
			dg, err := client.Receive()
			if err != nil {
				t.Fatalf("echo %d: %v", sent, err)
			}
			if string(dg.Payload) != msg {
				t.Fatalf("echo %d = %q, want %q", sent, dg.Payload, msg)
			}
			sent++
		}
	}
	getEpoch := func() uint64 {
		t.Helper()
		resp, err := http.Get(adminURL)
		if err != nil {
			t.Fatalf("GET /config: %v", err)
		}
		defer resp.Body.Close()
		var got struct {
			Epoch  uint64         `json:"epoch"`
			Config gateway.Config `json:"config"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatalf("GET /config body: %v", err)
		}
		return got.Epoch
	}

	roundTrips(20)
	if e := getEpoch(); e != 1 {
		t.Fatalf("epoch = %d, want 1", e)
	}

	// Hot swap via the admin API while a transfer is in flight.
	swapDone := make(chan error, 1)
	go func() {
		cfg, err := loadConfig(cfgPath)
		if err != nil {
			swapDone <- err
			return
		}
		cfg.Tenants[0].AcceptSuites = []string{"AES-128-GCM", "ChaCha20-Poly1305"}
		blob, _ := json.Marshal(cfg)
		resp, err := http.Post(adminURL, "application/json", bytes.NewReader(blob))
		if err != nil {
			swapDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body) //nolint:errcheck
			swapDone <- fmt.Errorf("POST /config: %d %s", resp.StatusCode, buf.String())
			return
		}
		swapDone <- nil
	}()
	roundTrips(30) // the transfer the swap lands in the middle of
	if err := <-swapDone; err != nil {
		t.Fatal(err)
	}
	if e := getEpoch(); e != 2 {
		t.Fatalf("epoch after admin swap = %d, want 2", e)
	}

	// Hot reload via SIGHUP with an edited config file.
	writeCfg(100000)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for getEpoch() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload did not reach epoch 3 (at %d)", getEpoch())
		}
		time.Sleep(10 * time.Millisecond)
	}
	roundTrips(20)

	// Metrics are live on the same admin plane.
	resp, err := http.Get("http://" + st.AdminAddr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if !bytes.Contains(metrics.Bytes(), []byte("fbs_gateway_received_total")) {
		t.Fatalf("/metrics missing fbs_gateway_received_total:\n%.2000s", metrics.String())
	}

	// Graceful drain on SIGTERM: the daemon exits cleanly and prints
	// final stats that reconcile exactly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of SIGTERM")
	}

	var stats gateway.Stats
	if err := json.Unmarshal([]byte(out.String()), &stats); err != nil {
		t.Fatalf("final stats: %v\n%s", err, out.String())
	}
	total := uint64(sent)
	if stats.Received != total || stats.Accepted != total || stats.Echoed != total {
		t.Fatalf("final stats: received %d accepted %d echoed %d, want %d each",
			stats.Received, stats.Accepted, stats.Echoed, total)
	}
	if stats.Swaps != 3 || stats.Epoch != 3 {
		t.Fatalf("final stats: swaps %d epoch %d, want 3 and 3", stats.Swaps, stats.Epoch)
	}
	if stats.EchoFailures != 0 || stats.RetryStarved != 0 || stats.NoTenant != 0 {
		t.Fatalf("final stats: echoFailures %d retryStarved %d noTenant %d, want 0",
			stats.EchoFailures, stats.RetryStarved, stats.NoTenant)
	}
	var drops uint64
	for _, v := range stats.Drops {
		drops += v
	}
	if stats.Received != stats.Accepted+drops+stats.NoTenant+stats.Absorbed+stats.RetryStarved {
		t.Fatalf("final stats do not reconcile: %+v", stats)
	}
}
