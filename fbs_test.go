package fbs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

var (
	domOnce sync.Once
	dom     *Domain
	domErr  error
)

// testDomain builds one shared test domain (CA key generation is the
// slow part) on the fast TestGroup.
func testDomain(t testing.TB) *Domain {
	t.Helper()
	domOnce.Do(func() {
		dom, domErr = NewDomain("public-api-test", WithGroup(TestGroup))
	})
	if domErr != nil {
		t.Fatal(domErr)
	}
	return dom
}

func TestPublicAPIQuickstart(t *testing.T) {
	d := testDomain(t)
	net := NewNetwork(Impairments{})
	alice, err := d.NewEndpoint("alice", net)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := d.NewEndpoint("bob", net)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	want := []byte("hello, flows")
	if err := alice.SendTo("bob", want, true); err != nil {
		t.Fatal(err)
	}
	dg, err := bob.ReceiveValid()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dg.Payload, want) || dg.Source != "alice" {
		t.Fatalf("got %+v", dg)
	}
}

func TestPublicAPIOverLossyNetwork(t *testing.T) {
	d := testDomain(t)
	net := NewNetwork(Impairments{LossProb: 0.2, DupProb: 0.1, ReorderProb: 0.2, CorruptProb: 0.1, Seed: 99})
	a, err := d.NewEndpoint("lossy-a", net)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := d.NewEndpoint("lossy-b", net, func(c *Config) { c.EnableReplayCache = true })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.SendTo("lossy-b", []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	// Drain everything that survived; every accepted datagram must be
	// intact and unique (replay cache suppresses duplicates).
	received := make(map[byte]int)
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			dg, err := b.Receive()
			if errors.Is(err, ErrClosed) {
				return
			}
			if err == nil {
				received[dg.Payload[0]]++
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	b.Close()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("receiver did not drain")
	}
	if len(received) == 0 {
		t.Fatal("nothing survived the lossy network")
	}
	for v, c := range received {
		if c != 1 {
			t.Fatalf("datagram %d accepted %d times despite replay cache", v, c)
		}
	}
	m := b.Metrics()
	if m.RejectedMAC == 0 {
		t.Error("corruption impairment never triggered a MAC rejection")
	}
	t.Logf("received %d/%d; metrics %+v", len(received), n, m)
}

func TestDomainRekeyFlow(t *testing.T) {
	d := testDomain(t)
	net := NewNetwork(Impairments{})
	a, err := d.NewEndpoint("rk-a", net)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bID, err := d.NewPrincipal("rk-b")
	if err != nil {
		t.Fatal(err)
	}
	trB, err := net.Attach("rk-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.NewEndpointOn(bID, trB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.SendTo("rk-b", []byte("before rekey"), true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReceiveValid(); err != nil {
		t.Fatal(err)
	}
	// b rekeys, re-enrolls, and drops its derived soft state (all of it
	// is recomputable, so this is always safe).
	if err := bID.Rekey(); err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(bID); err != nil {
		t.Fatal(err)
	}
	b.FlushKeys()
	// a still seals under cached (pre-rekey) flow keys; b now derives
	// keys from its new private value and must reject.
	if err := a.SendTo("rk-b", []byte("stale key"), true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Receive(); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("stale-keyed datagram: err = %v, want ErrBadMAC", err)
	}
	// Once a also flushes, the pair re-converges on the new master key
	// with zero protocol messages — the zero-message keying property.
	a.FlushKeys()
	if err := a.SendTo("rk-b", []byte("after rekey"), true); err != nil {
		t.Fatal(err)
	}
	dg, err := b.ReceiveValid()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dg.Payload, []byte("after rekey")) {
		t.Fatal("post-rekey payload mismatch")
	}
}

func TestFlowKeyExported(t *testing.T) {
	var master [16]byte
	copy(master[:], "sixteen byte key")
	k1 := FlowKey(1, master, "s", "d")
	k2 := FlowKey(2, master, "s", "d")
	if k1 == k2 {
		t.Fatal("flow keys collide across sfls")
	}
}

func TestNewIdentityDefaultGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-bit keygen in -short mode")
	}
	id, err := NewIdentity("full-size")
	if err != nil {
		t.Fatal(err)
	}
	if id.Group.Bits() != 1024 {
		t.Fatalf("default group is %d bits", id.Group.Bits())
	}
}

func TestDomainEndpointOptions(t *testing.T) {
	d := testDomain(t)
	net := NewNetwork(Impairments{})
	ep, err := d.NewEndpoint("opts", net, func(c *Config) {
		c.Policy = ThresholdPolicy{Threshold: time.Minute}
		c.CombinedFSTTFKC = true
		c.SinglePass = true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if ep.Addr() != "opts" {
		t.Fatal("wrong address")
	}
}
