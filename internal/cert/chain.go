package cert

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// Certification hierarchy support: the paper assumes public values are
// authenticated "via a distributed certification hierarchy (e.g., X.509
// certificates)" (Section 5.2). A root authority certifies subordinate
// authorities, which issue the leaf public-value certificates; relying
// parties pin only the root and verify chains.

// CACertificate binds a subordinate authority's name to its RSA
// verification key, under the parent authority's signature.
type CACertificate struct {
	Version   uint8
	Name      string
	KeyN      *big.Int
	KeyE      *big.Int
	NotBefore time.Time
	NotAfter  time.Time
	Issuer    string
	Signature []byte
}

func (c *CACertificate) tbs() []byte {
	var out []byte
	out = append(out, c.Version)
	out = appendBytes(out, []byte(c.Name))
	out = appendBytes(out, c.KeyN.Bytes())
	out = appendBytes(out, c.KeyE.Bytes())
	out = binary.BigEndian.AppendUint64(out, uint64(c.NotBefore.Unix()))
	out = binary.BigEndian.AppendUint64(out, uint64(c.NotAfter.Unix()))
	out = appendBytes(out, []byte(c.Issuer))
	return out
}

// Key returns the certified verification key.
func (c *CACertificate) Key() cryptolib.RSAPublicKey {
	return cryptolib.RSAPublicKey{N: c.KeyN, E: c.KeyE}
}

// Marshal produces the wire encoding.
func (c *CACertificate) Marshal() []byte { return appendBytes(c.tbs(), c.Signature) }

// UnmarshalCA parses a CA certificate.
func UnmarshalCA(b []byte) (*CACertificate, error) {
	c := new(CACertificate)
	if len(b) < 1 {
		return nil, fmt.Errorf("cert: empty CA certificate")
	}
	c.Version = b[0]
	if c.Version != certVersion {
		return nil, fmt.Errorf("cert: unsupported CA certificate version %d", c.Version)
	}
	rest := b[1:]
	var field []byte
	var err error
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.Name = string(field)
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.KeyN = new(big.Int).SetBytes(field)
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.KeyE = new(big.Int).SetBytes(field)
	if len(rest) < 16 {
		return nil, fmt.Errorf("cert: truncated CA validity")
	}
	c.NotBefore = time.Unix(int64(binary.BigEndian.Uint64(rest[:8])), 0).UTC()
	c.NotAfter = time.Unix(int64(binary.BigEndian.Uint64(rest[8:16])), 0).UTC()
	rest = rest[16:]
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.Issuer = string(field)
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.Signature = field
	if len(rest) != 0 {
		return nil, fmt.Errorf("cert: %d trailing bytes in CA certificate", len(rest))
	}
	return c, nil
}

// CertifySubordinate signs a CA certificate for a subordinate authority.
func (a *Authority) CertifySubordinate(sub *Authority, notBefore, notAfter time.Time) (*CACertificate, error) {
	if !notAfter.After(notBefore) {
		return nil, fmt.Errorf("cert: empty validity interval")
	}
	pub := sub.PublicKey()
	c := &CACertificate{
		Version:   certVersion,
		Name:      sub.Name,
		KeyN:      pub.N,
		KeyE:      pub.E,
		NotBefore: notBefore.UTC().Truncate(time.Second),
		NotAfter:  notAfter.UTC().Truncate(time.Second),
		Issuer:    a.Name,
	}
	sig, err := a.key.Sign(c.tbs())
	if err != nil {
		return nil, fmt.Errorf("cert: signing subordinate: %w", err)
	}
	c.Signature = sig
	return c, nil
}

// ChainVerifier validates leaf certificates through a hierarchy of
// subordinate authorities down from a single pinned root key. It
// implements the same interface role as Verifier, so an FBS endpoint can
// plug either in.
type ChainVerifier struct {
	// RootName and RootKey pin the hierarchy's trust anchor.
	RootName string
	RootKey  cryptolib.RSAPublicKey
	// Intermediates holds the CA certificates linking leaf issuers to
	// the root, in any order.
	Intermediates []*CACertificate
	// MaxDepth bounds chain walks (default 8).
	MaxDepth int
}

// issuerKey resolves the verification key for an issuer name at time
// now, walking intermediates up to the root.
func (cv *ChainVerifier) issuerKey(issuer string, now time.Time, depth int) (cryptolib.RSAPublicKey, error) {
	if issuer == cv.RootName {
		return cv.RootKey, nil
	}
	max := cv.MaxDepth
	if max <= 0 {
		max = 8
	}
	if depth >= max {
		return cryptolib.RSAPublicKey{}, fmt.Errorf("cert: chain deeper than %d", max)
	}
	for _, ic := range cv.Intermediates {
		if ic.Name != issuer {
			continue
		}
		if now.Before(ic.NotBefore) || now.After(ic.NotAfter) {
			return cryptolib.RSAPublicKey{}, fmt.Errorf("cert: intermediate %q not valid at %v", issuer, now)
		}
		parentKey, err := cv.issuerKey(ic.Issuer, now, depth+1)
		if err != nil {
			return cryptolib.RSAPublicKey{}, err
		}
		if !parentKey.Verify(ic.tbs(), ic.Signature) {
			return cryptolib.RSAPublicKey{}, fmt.Errorf("cert: bad signature on intermediate %q", issuer)
		}
		return ic.Key(), nil
	}
	return cryptolib.RSAPublicKey{}, fmt.Errorf("cert: no path from issuer %q to root %q", issuer, cv.RootName)
}

// Verify checks a leaf certificate through the hierarchy. It matches
// the Verifier.Verify signature.
func (cv *ChainVerifier) Verify(c *Certificate, subject principal.Address, now time.Time) error {
	if c == nil {
		return fmt.Errorf("cert: nil certificate")
	}
	if c.Subject != subject {
		return fmt.Errorf("cert: subject %q, want %q", c.Subject, subject)
	}
	if now.Before(c.NotBefore) || now.After(c.NotAfter) {
		return fmt.Errorf("cert: not valid at %v", now)
	}
	key, err := cv.issuerKey(c.Issuer, now, 0)
	if err != nil {
		return err
	}
	if !key.Verify(c.tbs(), c.Signature) {
		return fmt.Errorf("cert: bad signature on certificate for %q", c.Subject)
	}
	return nil
}
