package cert

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

var (
	testCAOnce sync.Once
	testCA     *Authority
)

func testAuthority(t *testing.T) *Authority {
	t.Helper()
	testCAOnce.Do(func() {
		ca, err := NewAuthority("repro-root", 512)
		if err != nil {
			t.Fatal(err)
		}
		testCA = ca
	})
	return testCA
}

func testIdentity(t *testing.T, addr principal.Address) *principal.Identity {
	t.Helper()
	id, err := principal.NewIdentity(addr, cryptolib.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestIssueVerifyRoundTrip(t *testing.T) {
	ca := testAuthority(t)
	id := testIdentity(t, "10.1.2.3")
	now := time.Now()
	c, err := ca.Issue(id, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	v := &Verifier{CAKey: ca.PublicKey(), CA: "repro-root"}
	if err := v.Verify(c, "10.1.2.3", now); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	if c.Public.Cmp(id.Public) != 0 {
		t.Fatal("certificate carries wrong public value")
	}
	if c.Group().P.Cmp(id.Group.P) != 0 {
		t.Fatal("certificate carries wrong group")
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	ca := testAuthority(t)
	id := testIdentity(t, "host.example")
	now := time.Now()
	c, err := ca.Issue(id, now, now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	wire := c.Marshal()
	back, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject != c.Subject || back.Serial != c.Serial || back.Issuer != c.Issuer {
		t.Fatal("metadata did not round-trip")
	}
	if back.Public.Cmp(c.Public) != 0 {
		t.Fatal("public value did not round-trip")
	}
	if !back.NotBefore.Equal(c.NotBefore) || !back.NotAfter.Equal(c.NotAfter) {
		t.Fatalf("validity did not round-trip: %v/%v vs %v/%v",
			back.NotBefore, back.NotAfter, c.NotBefore, c.NotAfter)
	}
	v := &Verifier{CAKey: ca.PublicKey()}
	if err := v.Verify(back, c.Subject, now); err != nil {
		t.Fatalf("round-tripped certificate fails verification: %v", err)
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	ca := testAuthority(t)
	id := testIdentity(t, "x")
	c, _ := ca.Issue(id, time.Now(), time.Now().Add(time.Hour))
	wire := c.Marshal()
	for _, n := range []int{0, 1, 8, 9, 12, len(wire) / 2, len(wire) - 1} {
		if _, err := Unmarshal(wire[:n]); err == nil {
			t.Errorf("Unmarshal accepted %d-byte truncation", n)
		}
	}
	if _, err := Unmarshal(append(wire, 0)); err == nil {
		t.Error("Unmarshal accepted trailing garbage")
	}
}

func TestVerifyRejections(t *testing.T) {
	ca := testAuthority(t)
	id := testIdentity(t, "victim")
	now := time.Now()
	c, _ := ca.Issue(id, now.Add(-time.Hour), now.Add(time.Hour))
	v := &Verifier{CAKey: ca.PublicKey(), CA: "repro-root"}

	if err := v.Verify(nil, "victim", now); err == nil {
		t.Error("nil certificate accepted")
	}
	if err := v.Verify(c, "other", now); err == nil {
		t.Error("wrong subject accepted")
	}
	if err := v.Verify(c, "victim", now.Add(-2*time.Hour)); err == nil {
		t.Error("not-yet-valid certificate accepted")
	}
	if err := v.Verify(c, "victim", now.Add(2*time.Hour)); err == nil {
		t.Error("expired certificate accepted")
	}
	tampered := *c
	tampered.Serial++
	if err := v.Verify(&tampered, "victim", now); err == nil {
		t.Error("tampered certificate accepted")
	}
	otherCA, err := NewAuthority("repro-root", 512) // same name, different key
	if err != nil {
		t.Fatal(err)
	}
	forged, _ := otherCA.Issue(id, now.Add(-time.Hour), now.Add(time.Hour))
	if err := v.Verify(forged, "victim", now); err == nil {
		t.Error("certificate from impostor CA accepted")
	}
}

func TestIssueRejectsEmptyInterval(t *testing.T) {
	ca := testAuthority(t)
	id := testIdentity(t, "x2")
	now := time.Now()
	if _, err := ca.Issue(id, now, now); err == nil {
		t.Fatal("empty validity interval accepted")
	}
}

func TestSerialsIncrease(t *testing.T) {
	ca := testAuthority(t)
	id := testIdentity(t, "serial-test")
	now := time.Now()
	c1, _ := ca.Issue(id, now, now.Add(time.Hour))
	c2, _ := ca.Issue(id, now, now.Add(time.Hour))
	if c2.Serial <= c1.Serial {
		t.Fatalf("serials not increasing: %d then %d", c1.Serial, c2.Serial)
	}
}

func TestStaticDirectory(t *testing.T) {
	ca := testAuthority(t)
	d := NewStaticDirectory()
	if _, err := d.Lookup("ghost"); err == nil {
		t.Fatal("lookup of unpublished principal succeeded")
	}
	id := testIdentity(t, "10.0.0.9")
	c, _ := ca.Issue(id, time.Now(), time.Now().Add(time.Hour))
	d.Publish(c)
	got, err := d.Lookup("10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	if got.Subject != "10.0.0.9" {
		t.Fatal("wrong certificate returned")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDelayedDirectory(t *testing.T) {
	ca := testAuthority(t)
	d := NewStaticDirectory()
	id := testIdentity(t, "p")
	c, _ := ca.Issue(id, time.Now(), time.Now().Add(time.Hour))
	d.Publish(c)
	var fetches []principal.Address
	dd := &DelayedDirectory{Inner: d, OnFetch: func(a principal.Address) { fetches = append(fetches, a) }}
	if _, err := dd.Lookup("p"); err != nil {
		t.Fatal(err)
	}
	if len(fetches) != 1 || fetches[0] != "p" {
		t.Fatalf("fetch callback got %v", fetches)
	}
}

// Decoder fuzz: arbitrary bytes must never panic Unmarshal, and nothing
// random may parse into a verifiable certificate.
func TestCertUnmarshalNeverPanics(t *testing.T) {
	ca := testAuthority(t)
	v := &Verifier{CAKey: ca.PublicKey()}
	f := func(b []byte) bool {
		c, err := Unmarshal(b)
		if err != nil {
			return true
		}
		return v.Verify(c, c.Subject, time.Now()) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
