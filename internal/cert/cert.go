// Package cert is the public-value distribution substrate for FBS.
//
// The paper assumes "the confidentiality of the private values and the
// authenticity of the public values", with public values "made available
// and authenticated via a distributed certification hierarchy (e.g.,
// X.509 certificates) or a secure DNS service" (Section 5.2). This
// package provides that substrate: a certificate authority that signs
// public-value certificates, a compact binary certificate encoding, and
// directory services (static/pinned and network-served) from which the
// master key daemon fetches certificates on a PVC miss.
package cert

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// Certificate binds a principal's address to its Diffie-Hellman public
// value for a validity interval, under a CA signature.
type Certificate struct {
	Version   uint8
	Serial    uint64
	Subject   principal.Address
	GroupP    *big.Int
	GroupG    *big.Int
	Public    *big.Int
	NotBefore time.Time
	NotAfter  time.Time
	Issuer    string
	Signature []byte
}

const certVersion = 1

// tbs returns the to-be-signed encoding: every field except the
// signature.
func (c *Certificate) tbs() []byte {
	var out []byte
	out = append(out, c.Version)
	out = binary.BigEndian.AppendUint64(out, c.Serial)
	out = appendBytes(out, c.Subject.Bytes())
	out = appendBytes(out, c.GroupP.Bytes())
	out = appendBytes(out, c.GroupG.Bytes())
	out = appendBytes(out, c.Public.Bytes())
	out = binary.BigEndian.AppendUint64(out, uint64(c.NotBefore.Unix()))
	out = binary.BigEndian.AppendUint64(out, uint64(c.NotAfter.Unix()))
	out = appendBytes(out, []byte(c.Issuer))
	return out
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("cert: truncated length prefix")
	}
	n := binary.BigEndian.Uint32(b)
	if uint64(len(b)-4) < uint64(n) {
		return nil, nil, fmt.Errorf("cert: truncated field: need %d bytes, have %d", n, len(b)-4)
	}
	return b[4 : 4+n], b[4+n:], nil
}

// Marshal produces the wire encoding of the certificate.
func (c *Certificate) Marshal() []byte {
	return appendBytes(c.tbs(), c.Signature)
}

// Unmarshal parses a certificate from its wire encoding.
func Unmarshal(b []byte) (*Certificate, error) {
	c := new(Certificate)
	if len(b) < 1+8 {
		return nil, fmt.Errorf("cert: truncated certificate")
	}
	c.Version = b[0]
	if c.Version != certVersion {
		return nil, fmt.Errorf("cert: unsupported version %d", c.Version)
	}
	c.Serial = binary.BigEndian.Uint64(b[1:9])
	rest := b[9:]
	var field []byte
	var err error
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.Subject = principal.Address(field)
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.GroupP = new(big.Int).SetBytes(field)
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.GroupG = new(big.Int).SetBytes(field)
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.Public = new(big.Int).SetBytes(field)
	if len(rest) < 16 {
		return nil, fmt.Errorf("cert: truncated validity interval")
	}
	c.NotBefore = time.Unix(int64(binary.BigEndian.Uint64(rest[:8])), 0).UTC()
	c.NotAfter = time.Unix(int64(binary.BigEndian.Uint64(rest[8:16])), 0).UTC()
	rest = rest[16:]
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.Issuer = string(field)
	if field, rest, err = readBytes(rest); err != nil {
		return nil, err
	}
	c.Signature = field
	if len(rest) != 0 {
		return nil, fmt.Errorf("cert: %d trailing bytes", len(rest))
	}
	return c, nil
}

// Group reconstructs the Diffie-Hellman group named by the certificate.
func (c *Certificate) Group() cryptolib.DHGroup {
	return cryptolib.DHGroup{P: c.GroupP, G: c.GroupG}
}

// Authority is a certificate authority: the root of the reproduction's
// certification hierarchy.
type Authority struct {
	Name string

	key    *cryptolib.RSAPrivateKey
	serial uint64
}

// NewAuthority creates a CA with a fresh RSA signing key of the given
// modulus size.
func NewAuthority(name string, bits int) (*Authority, error) {
	key, err := cryptolib.GenerateRSA(bits)
	if err != nil {
		return nil, fmt.Errorf("cert: generating CA key: %w", err)
	}
	return &Authority{Name: name, key: key}, nil
}

// PublicKey returns the CA verification key that relying parties pin.
func (a *Authority) PublicKey() cryptolib.RSAPublicKey { return a.key.RSAPublicKey }

// Issue signs a public-value certificate for the identity, valid for the
// given interval.
func (a *Authority) Issue(id *principal.Identity, notBefore, notAfter time.Time) (*Certificate, error) {
	if !notAfter.After(notBefore) {
		return nil, fmt.Errorf("cert: empty validity interval")
	}
	a.serial++
	c := &Certificate{
		Version:   certVersion,
		Serial:    a.serial,
		Subject:   id.Addr,
		GroupP:    id.Group.P,
		GroupG:    id.Group.G,
		Public:    id.Public,
		NotBefore: notBefore.UTC().Truncate(time.Second),
		NotAfter:  notAfter.UTC().Truncate(time.Second),
		Issuer:    a.Name,
	}
	sig, err := a.key.Sign(c.tbs())
	if err != nil {
		return nil, fmt.Errorf("cert: signing: %w", err)
	}
	c.Signature = sig
	return c, nil
}

// CertVerifier validates a leaf certificate for a subject at a point in
// time. Verifier (single pinned CA) and ChainVerifier (hierarchy) both
// implement it; FBS endpoints accept either.
type CertVerifier interface {
	Verify(c *Certificate, subject principal.Address, now time.Time) error
}

// Verifier validates certificates against a pinned CA key. The paper
// notes certificates "can be verified each time [they are] used", which
// is why the PVC may cache them without being a secure store.
type Verifier struct {
	CAKey cryptolib.RSAPublicKey
	CA    string
}

// Verify checks the signature, issuer, subject and validity of c at time
// now.
func (v *Verifier) Verify(c *Certificate, subject principal.Address, now time.Time) error {
	if c == nil {
		return fmt.Errorf("cert: nil certificate")
	}
	if c.Subject != subject {
		return fmt.Errorf("cert: subject %q, want %q", c.Subject, subject)
	}
	if v.CA != "" && c.Issuer != v.CA {
		return fmt.Errorf("cert: issuer %q, want %q", c.Issuer, v.CA)
	}
	if now.Before(c.NotBefore) || now.After(c.NotAfter) {
		return fmt.Errorf("cert: not valid at %v (valid %v to %v)", now, c.NotBefore, c.NotAfter)
	}
	if !v.CAKey.Verify(c.tbs(), c.Signature) {
		return fmt.Errorf("cert: bad signature on certificate for %q", c.Subject)
	}
	return nil
}
