package cert

import (
	"testing"
	"time"

	"fbs/internal/cryptolib"
)

// chainFixture: root → regional → campus, with a leaf issued by campus.
func chainFixture(t *testing.T) (*Authority, *Authority, *Authority, *ChainVerifier, *Certificate) {
	t.Helper()
	root := testAuthority(t) // "repro-root"
	regional, err := NewAuthority("regional", 512)
	if err != nil {
		t.Fatal(err)
	}
	campus, err := NewAuthority("campus", 512)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	caRegional, err := root.CertifySubordinate(regional, now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	caCampus, err := regional.CertifySubordinate(campus, now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	leafID := testIdentity(t, "10.7.7.7")
	leaf, err := campus.Issue(leafID, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cv := &ChainVerifier{
		RootName:      root.Name,
		RootKey:       root.PublicKey(),
		Intermediates: []*CACertificate{caRegional, caCampus},
	}
	return root, regional, campus, cv, leaf
}

func TestChainVerifyTwoLevels(t *testing.T) {
	_, _, _, cv, leaf := chainFixture(t)
	if err := cv.Verify(leaf, "10.7.7.7", time.Now()); err != nil {
		t.Fatalf("valid chained certificate rejected: %v", err)
	}
}

func TestChainVerifyDirectFromRoot(t *testing.T) {
	root := testAuthority(t)
	id := testIdentity(t, "direct")
	now := time.Now()
	leaf, err := root.Issue(id, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cv := &ChainVerifier{RootName: root.Name, RootKey: root.PublicKey()}
	if err := cv.Verify(leaf, "direct", now); err != nil {
		t.Fatalf("root-issued leaf rejected: %v", err)
	}
}

func TestChainRejectsMissingIntermediate(t *testing.T) {
	_, _, _, cv, leaf := chainFixture(t)
	cv.Intermediates = cv.Intermediates[:1] // drop campus
	if err := cv.Verify(leaf, "10.7.7.7", time.Now()); err == nil {
		t.Fatal("verified without the issuing intermediate")
	}
}

func TestChainRejectsForgedIntermediate(t *testing.T) {
	_, _, campus, cv, leaf := chainFixture(t)
	// A rogue authority claims to certify "campus" with its own key.
	rogue, err := NewAuthority("rogue-parent", 512)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	forged, err := rogue.CertifySubordinate(campus, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cv.Intermediates = []*CACertificate{forged} // no path: issuer "rogue-parent" unknown
	if err := cv.Verify(leaf, "10.7.7.7", now); err == nil {
		t.Fatal("verified through a rogue intermediate")
	}
}

func TestChainRejectsExpiredIntermediate(t *testing.T) {
	root := testAuthority(t)
	sub, err := NewAuthority("short-lived", 512)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	caSub, err := root.CertifySubordinate(sub, now.Add(-2*time.Hour), now.Add(-time.Hour)) // already expired
	if err != nil {
		t.Fatal(err)
	}
	id := testIdentity(t, "under-expired")
	leaf, err := sub.Issue(id, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cv := &ChainVerifier{RootName: root.Name, RootKey: root.PublicKey(), Intermediates: []*CACertificate{caSub}}
	if err := cv.Verify(leaf, "under-expired", now); err == nil {
		t.Fatal("verified through an expired intermediate")
	}
}

func TestChainDepthBound(t *testing.T) {
	// A self-referential intermediate must not loop forever.
	root := testAuthority(t)
	loopy, err := NewAuthority("loopy", 512)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	selfSigned, err := loopy.CertifySubordinate(loopy, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	id := testIdentity(t, "loop-leaf")
	leaf, err := loopy.Issue(id, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cv := &ChainVerifier{RootName: root.Name, RootKey: root.PublicKey(), Intermediates: []*CACertificate{selfSigned}}
	done := make(chan error, 1)
	go func() { done <- cv.Verify(leaf, "loop-leaf", now) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("self-signed loop verified")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chain verification looped")
	}
}

func TestCACertificateMarshalRoundTrip(t *testing.T) {
	root := testAuthority(t)
	sub, err := NewAuthority("marshal-sub", 512)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	c, err := root.CertifySubordinate(sub, now, now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCA(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != c.Name || back.Issuer != c.Issuer {
		t.Fatal("metadata did not round-trip")
	}
	if back.KeyN.Cmp(c.KeyN) != 0 || back.KeyE.Cmp(c.KeyE) != 0 {
		t.Fatal("key did not round-trip")
	}
	rootKey := root.PublicKey()
	if !rootKey.Verify(back.tbs(), back.Signature) {
		t.Fatal("round-tripped CA certificate fails verification")
	}
	// Truncations rejected.
	wire := c.Marshal()
	for _, n := range []int{0, 1, 5, len(wire) / 2, len(wire) - 1} {
		if _, err := UnmarshalCA(wire[:n]); err == nil {
			t.Errorf("UnmarshalCA accepted %d-byte truncation", n)
		}
	}
}

// An endpoint-facing check: a ChainVerifier drops into an FBS key
// service wherever a Verifier would go.
func TestChainVerifierSatisfiesCertVerifier(t *testing.T) {
	var _ CertVerifier = (*ChainVerifier)(nil)
	var _ CertVerifier = (*Verifier)(nil)
	_ = cryptolib.RSAPublicKey{}
}
