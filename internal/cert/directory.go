package cert

import (
	"fmt"
	"sync"

	"fbs/internal/principal"
)

// Directory serves public-value certificates by principal address. A PVC
// miss in the FBS key cache hierarchy bottoms out in a Directory lookup —
// the "fetch from some certificate authority on the network" of Section
// 5.3. Implementations must be safe for concurrent use.
type Directory interface {
	// Lookup returns the certificate for the principal, or an error if
	// unknown. The returned certificate is NOT yet verified; callers
	// must verify it against their pinned CA key (the fetch path is
	// deliberately insecure to avoid the circularity the paper
	// describes).
	Lookup(addr principal.Address) (*Certificate, error)
}

// StaticDirectory is an in-memory Directory; it also models the paper's
// alternative of "pinning certain certificates in the cache upon
// initialization".
type StaticDirectory struct {
	mu    sync.RWMutex
	certs map[principal.Address]*Certificate
}

// NewStaticDirectory creates an empty directory.
func NewStaticDirectory() *StaticDirectory {
	return &StaticDirectory{certs: make(map[principal.Address]*Certificate)}
}

// Publish installs (or replaces) the certificate for its subject.
func (d *StaticDirectory) Publish(c *Certificate) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.certs[c.Subject] = c
}

// Lookup implements Directory.
func (d *StaticDirectory) Lookup(addr principal.Address) (*Certificate, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.certs[addr]
	if !ok {
		return nil, fmt.Errorf("cert: no certificate for %q", addr)
	}
	return c, nil
}

// Len returns the number of published certificates.
func (d *StaticDirectory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.certs)
}

// DelayedDirectory wraps a Directory and invokes a callback before each
// lookup; simulations use it to charge the round-trip cost the paper
// attributes to PVC misses ("extremely expensive... at the minimum a
// round trip communication delay").
type DelayedDirectory struct {
	Inner   Directory
	OnFetch func(addr principal.Address)
}

// Lookup implements Directory.
func (d *DelayedDirectory) Lookup(addr principal.Address) (*Certificate, error) {
	if d.OnFetch != nil {
		d.OnFetch(addr)
	}
	return d.Inner.Lookup(addr)
}
