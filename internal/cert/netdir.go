package cert

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

// This file implements the network half of Figure 5: on a PVC miss the
// master key daemon fetches the peer's public-value certificate "from
// some certificate authority on the network". The fetch deliberately
// travels OUTSIDE FBS — the secure flow bypass — because securing it
// would create a circularity (the fetch would need a key, which would
// need a fetch...), and it does not need securing because certificates
// are verified on receipt (Section 5.3).
//
// The protocol is a minimal request/response over the raw datagram
// transport:
//
//	request:  'C' 'Q' | reqID(8) | address (length-prefixed)
//	response: 'C' 'R' | reqID(8) | status(1) | certificate bytes
const (
	dirMagic0 = 'C'
	dirReqTag = 'Q'
	dirRspTag = 'R'

	dirStatusOK       = 0
	dirStatusNotFound = 1
)

// DirectoryServer answers certificate requests over a datagram
// transport. Run exactly one Serve loop per server transport.
type DirectoryServer struct {
	// Source answers the lookups (typically a StaticDirectory the CA
	// publishes into).
	Source Directory

	tr     transport.Transport
	served uint64
	mu     sync.Mutex
}

// NewDirectoryServer attaches a server to a transport endpoint.
func NewDirectoryServer(tr transport.Transport, source Directory) *DirectoryServer {
	return &DirectoryServer{Source: source, tr: tr}
}

// Served reports how many requests were answered.
func (s *DirectoryServer) Served() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Serve processes requests until the transport closes.
func (s *DirectoryServer) Serve() {
	for {
		dg, err := s.tr.Receive()
		if err != nil {
			return
		}
		reqID, addr, err := parseDirRequest(dg.Payload)
		if err != nil {
			continue // not a directory request; ignore
		}
		resp := []byte{dirMagic0, dirRspTag}
		resp = binary.BigEndian.AppendUint64(resp, reqID)
		if c, err := s.Source.Lookup(addr); err == nil {
			resp = append(resp, dirStatusOK)
			resp = append(resp, c.Marshal()...)
		} else {
			resp = append(resp, dirStatusNotFound)
		}
		s.tr.Send(transport.Datagram{Destination: dg.Source, Payload: resp})
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
	}
}

func parseDirRequest(b []byte) (uint64, principal.Address, error) {
	if len(b) < 2+8 || b[0] != dirMagic0 || b[1] != dirReqTag {
		return 0, "", fmt.Errorf("cert: not a directory request")
	}
	reqID := binary.BigEndian.Uint64(b[2:10])
	addr, _, err := principal.DecodeAddress(b[10:])
	if err != nil {
		return 0, "", err
	}
	return reqID, addr, nil
}

// NetworkDirectory is the client side: a Directory whose lookups travel
// over a datagram transport to a DirectoryServer. It is what a real
// deployment plugs into core.Config.Directory, together with a Bypass
// predicate matching the server's address so the requests skip FBS
// processing.
type NetworkDirectory struct {
	// Server is the directory server's principal address.
	Server principal.Address
	// Timeout bounds each fetch round trip; default one second.
	Timeout time.Duration
	// Retries is how many times a fetch is retried on timeout (the
	// transport is a datagram service: requests can be lost); default 3.
	Retries int

	tr transport.Transport

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Certificate
	started bool
}

// NewNetworkDirectory creates a client over its own transport endpoint.
// The transport must be dedicated to this client (the receive loop
// consumes everything arriving on it).
func NewNetworkDirectory(tr transport.Transport, server principal.Address) *NetworkDirectory {
	return &NetworkDirectory{
		Server:  server,
		Timeout: time.Second,
		Retries: 3,
		tr:      tr,
		pending: make(map[uint64]chan *Certificate),
	}
}

// receiveLoop dispatches responses to waiting lookups.
func (d *NetworkDirectory) receiveLoop() {
	for {
		dg, err := d.tr.Receive()
		if err != nil {
			return
		}
		b := dg.Payload
		if len(b) < 2+8+1 || b[0] != dirMagic0 || b[1] != dirRspTag {
			continue
		}
		reqID := binary.BigEndian.Uint64(b[2:10])
		var c *Certificate
		if b[10] == dirStatusOK {
			if parsed, err := Unmarshal(b[11:]); err == nil {
				c = parsed
			}
		}
		d.mu.Lock()
		ch, ok := d.pending[reqID]
		delete(d.pending, reqID)
		d.mu.Unlock()
		if ok {
			ch <- c
		}
	}
}

// Lookup implements Directory by asking the server over the network.
func (d *NetworkDirectory) Lookup(addr principal.Address) (*Certificate, error) {
	d.mu.Lock()
	if !d.started {
		d.started = true
		go d.receiveLoop()
	}
	d.mu.Unlock()
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	tries := d.Retries + 1
	if tries < 1 {
		tries = 1
	}
	for attempt := 0; attempt < tries; attempt++ {
		d.mu.Lock()
		d.nextID++
		reqID := d.nextID
		ch := make(chan *Certificate, 1)
		d.pending[reqID] = ch
		d.mu.Unlock()

		req := []byte{dirMagic0, dirReqTag}
		req = binary.BigEndian.AppendUint64(req, reqID)
		req = append(req, addr.Wire()...)
		if err := d.tr.Send(transport.Datagram{Destination: d.Server, Payload: req}); err != nil {
			return nil, fmt.Errorf("cert: sending directory request: %w", err)
		}
		select {
		case c := <-ch:
			if c == nil {
				return nil, fmt.Errorf("cert: directory has no certificate for %q", addr)
			}
			return c, nil
		case <-time.After(timeout):
			d.mu.Lock()
			delete(d.pending, reqID)
			d.mu.Unlock()
		}
	}
	return nil, fmt.Errorf("cert: directory fetch for %q timed out after %d attempts", addr, tries)
}
