package cert

import (
	"testing"
	"time"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

func netdirFixture(t *testing.T, imp transport.Impairments) (*NetworkDirectory, *DirectoryServer, *transport.Network) {
	t.Helper()
	ca := testAuthority(t)
	src := NewStaticDirectory()
	id := testIdentity(t, "10.9.9.9")
	c, err := ca.Issue(id, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	src.Publish(c)

	net := transport.NewNetwork(imp)
	serverTr, err := net.Attach("cert-server", 64)
	if err != nil {
		t.Fatal(err)
	}
	server := NewDirectoryServer(serverTr, src)
	go server.Serve()
	t.Cleanup(func() { serverTr.Close() })

	clientTr, err := net.Attach("client", 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clientTr.Close() })
	dir := NewNetworkDirectory(clientTr, "cert-server")
	dir.Timeout = 200 * time.Millisecond
	return dir, server, net
}

func TestNetworkDirectoryLookup(t *testing.T) {
	dir, server, _ := netdirFixture(t, transport.Impairments{})
	c, err := dir.Lookup("10.9.9.9")
	if err != nil {
		t.Fatal(err)
	}
	if c.Subject != "10.9.9.9" {
		t.Fatalf("got certificate for %q", c.Subject)
	}
	v := &Verifier{CAKey: testCA.PublicKey(), CA: testCA.Name}
	if err := v.Verify(c, "10.9.9.9", time.Now()); err != nil {
		t.Fatalf("fetched certificate does not verify: %v", err)
	}
	if server.Served() == 0 {
		t.Fatal("server served nothing")
	}
}

func TestNetworkDirectoryNotFound(t *testing.T) {
	dir, _, _ := netdirFixture(t, transport.Impairments{})
	if _, err := dir.Lookup("ghost"); err == nil {
		t.Fatal("lookup of unknown principal succeeded")
	}
}

// The fetch protocol rides a datagram service: requests and responses
// can be lost. The client's retry must ride it out.
func TestNetworkDirectoryRetriesThroughLoss(t *testing.T) {
	dir, _, _ := netdirFixture(t, transport.Impairments{LossProb: 0.4, Seed: 11})
	dir.Retries = 20
	c, err := dir.Lookup("10.9.9.9")
	if err != nil {
		t.Fatalf("lookup through 40%% loss failed: %v", err)
	}
	if c.Subject != "10.9.9.9" {
		t.Fatal("wrong certificate")
	}
}

func TestNetworkDirectoryTimeout(t *testing.T) {
	net := transport.NewNetwork(transport.Impairments{LossProb: 1})
	clientTr, _ := net.Attach("client", 4)
	defer clientTr.Close()
	dir := NewNetworkDirectory(clientTr, "nobody-home")
	dir.Timeout = 20 * time.Millisecond
	dir.Retries = 1
	start := time.Now()
	if _, err := dir.Lookup("x"); err == nil {
		t.Fatal("lookup with no server succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestDirectoryServerIgnoresGarbage(t *testing.T) {
	_, server, net := netdirFixture(t, transport.Impairments{})
	junk, _ := net.Attach("junk", 4)
	defer junk.Close()
	junk.Send(transport.Datagram{Destination: "cert-server", Payload: []byte("not a request")})
	junk.Send(transport.Datagram{Destination: "cert-server", Payload: nil})
	// A valid lookup still works afterwards.
	clientTr, _ := net.Attach("client2", 16)
	defer clientTr.Close()
	dir := NewNetworkDirectory(clientTr, "cert-server")
	dir.Timeout = 200 * time.Millisecond
	if _, err := dir.Lookup("10.9.9.9"); err != nil {
		t.Fatalf("server wedged by garbage: %v", err)
	}
	_ = server
}

func TestParseDirRequestValidation(t *testing.T) {
	if _, _, err := parseDirRequest(nil); err == nil {
		t.Error("nil request parsed")
	}
	if _, _, err := parseDirRequest([]byte{dirMagic0, dirRspTag, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 'a'}); err == nil {
		t.Error("response tag accepted as request")
	}
	good := []byte{dirMagic0, dirReqTag, 0, 0, 0, 0, 0, 0, 0, 7}
	good = append(good, principal.Address("peer").Wire()...)
	id, addr, err := parseDirRequest(good)
	if err != nil || id != 7 || addr != "peer" {
		t.Fatalf("good request misparsed: %v %v %v", id, addr, err)
	}
}
