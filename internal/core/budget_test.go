package core

import (
	"sync"
	"testing"
	"time"
)

func TestBudgetLevels(t *testing.T) {
	b := NewBudget(750, 1000)
	if b.Level() != BudgetNormal {
		t.Fatalf("fresh budget level = %v", b.Level())
	}
	b.Charge(700)
	if b.Level() != BudgetNormal {
		t.Fatalf("below high water, level = %v", b.Level())
	}
	b.Charge(100)
	if b.Level() != BudgetPressure {
		t.Fatalf("above high water, level = %v", b.Level())
	}
	if !b.UnderPressure() {
		t.Fatal("UnderPressure false above high water")
	}
	b.Charge(200) // used = 1000: no smallest entry fits
	if b.Level() != BudgetHard {
		t.Fatalf("at limit, level = %v", b.Level())
	}
	b.Release(600)
	if b.Level() != BudgetNormal {
		t.Fatalf("after release, level = %v", b.Level())
	}
	s := b.Stats()
	if s.Used != 400 || s.Peak != 1000 || s.PressureEvents == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBudgetTryCharge(t *testing.T) {
	b := NewBudget(0, 100)
	if !b.TryCharge(100) {
		t.Fatal("charge to exactly the limit refused")
	}
	if b.TryCharge(1) {
		t.Fatal("charge past the limit admitted")
	}
	if b.Stats().Denials != 1 {
		t.Fatalf("Denials = %d, want 1", b.Stats().Denials)
	}
	b.Release(50)
	if !b.TryCharge(50) {
		t.Fatal("charge refused after release made room")
	}
}

func TestBudgetNilSafe(t *testing.T) {
	var b *Budget
	b.Charge(10)
	if !b.TryCharge(1 << 40) {
		t.Fatal("nil budget refused a charge")
	}
	b.Release(10)
	if b.Used() != 0 || b.Level() != BudgetNormal || b.UnderPressure() {
		t.Fatal("nil budget not inert")
	}
	if s := b.Stats(); s != (BudgetStats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
	if NewBudget(10, 0) != nil {
		t.Fatal("non-positive hard limit did not disable the budget")
	}
}

func TestBudgetConcurrentChargeNeverExceedsHard(t *testing.T) {
	const hard = 10_000
	b := NewBudget(0, hard)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if b.TryCharge(7) {
					if u := b.Used(); u > hard {
						t.Errorf("used %d exceeds hard limit", u)
						return
					}
					b.Release(7)
				}
			}
		}()
	}
	wg.Wait()
	if p := b.Stats().Peak; p > hard {
		t.Fatalf("peak %d exceeds hard limit", p)
	}
}

func TestFAMBudgetShedsAndRecovers(t *testing.T) {
	// Budget sized for exactly two flow entries: the third distinct flow
	// into empty slots must be refused, and sweeping must give the bytes
	// back.
	b := NewBudget(0, 2*CostFAMEntry)
	f := testFAM(time.Minute, 1024)
	f.SetBudget(b)
	ids := []FlowID{{SrcPort: 1}, {SrcPort: 2}, {SrcPort: 3}}
	var denied int
	for _, id := range ids {
		if _, _, _, _, _, ok := f.classify(id, famEpoch, 1); !ok {
			denied++
		}
	}
	if denied != 1 {
		t.Fatalf("denied = %d, want 1", denied)
	}
	if b.Used() != 2*CostFAMEntry {
		t.Fatalf("used = %d, want %d", b.Used(), 2*CostFAMEntry)
	}
	// Idle past the threshold: the sweep reclaims both entries and their
	// budget, and the once-denied flow now classifies.
	if n := f.Sweep(famEpoch.Add(2 * time.Minute)); n != 2 {
		t.Fatalf("swept %d, want 2", n)
	}
	if b.Used() != 0 {
		t.Fatalf("used after sweep = %d, want 0", b.Used())
	}
	if _, _, _, _, _, ok := f.classify(ids[2], famEpoch.Add(2*time.Minute), 1); !ok {
		t.Fatal("classification still refused after sweep made room")
	}
}

func TestCacheBudgetSkipsInstallAtHardLimit(t *testing.T) {
	b := NewBudget(0, 2*CostFlowKeyEntry)
	c := NewDirectMapped[int, int](64, func(k int) uint32 { return uint32(k) })
	c.SetBudget(b, CostFlowKeyEntry)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(3, 30) // fresh slot, no room: skipped
	if _, ok := c.Get(3); ok {
		t.Fatal("install past the hard limit was not skipped")
	}
	// Overwriting an occupied slot is budget-neutral and must proceed.
	c.Put(1, 11)
	if v, ok := c.Get(1); !ok || v != 11 {
		t.Fatal("budget-neutral overwrite refused")
	}
	// Invalidation returns the entry's bytes.
	c.Invalidate(2)
	if b.Used() != CostFlowKeyEntry {
		t.Fatalf("used after invalidate = %d", b.Used())
	}
	c.Put(3, 30)
	if v, ok := c.Get(3); !ok || v != 30 {
		t.Fatal("install refused after invalidate made room")
	}
	c.Flush()
	if b.Used() != 0 {
		t.Fatalf("used after flush = %d", b.Used())
	}
}

// The replay cache's hard-limit behaviour (refuse-the-newcomer, budget
// release on sweep, per-peer occupancy) is covered in replay_test.go.
