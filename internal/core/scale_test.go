package core

import (
	"fmt"
	"testing"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Cache-pressure behaviour: one endpoint talking to many peers with
// deliberately tiny caches. Everything must still work — soft state
// means evictions cost recomputation, never correctness (Section 5.3).
func TestManyPeersTinyCaches(t *testing.T) {
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})
	const peers = 24

	mkCfg := func(name principal.Address, tr transport.Transport) Config {
		return Config{
			Identity:  w.principal(t, name),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
			// Tiny caches: 4 entries each against 24 peers.
			PVCSize:  4,
			MKCSize:  4,
			TFKCSize: 4,
			RFKCSize: 4,
		}
	}
	hubTr, err := net.Attach("hub", 4096)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewEndpoint(mkCfg("hub", hubTr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })

	eps := make([]*Endpoint, peers)
	for i := range eps {
		name := principal.Address(fmt.Sprintf("peer-%02d", i))
		tr, err := net.Attach(name, 256)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(mkCfg(name, tr))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
	}
	// Three rounds of hub → everyone → hub.
	for round := 0; round < 3; round++ {
		for i, ep := range eps {
			msg := []byte{byte(round), byte(i)}
			if err := hub.Send(transport.Datagram{Source: "hub", Destination: ep.Addr(), Payload: msg}, true); err != nil {
				t.Fatalf("round %d to %s: %v", round, ep.Addr(), err)
			}
			got, err := ep.ReceiveValid()
			if err != nil {
				t.Fatal(err)
			}
			if got.Payload[0] != byte(round) || got.Payload[1] != byte(i) {
				t.Fatalf("round %d: wrong payload at %s", round, ep.Addr())
			}
			if err := ep.SendTo("hub", msg, true); err != nil {
				t.Fatal(err)
			}
			if _, err := hub.ReceiveValid(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The hub's caches are hammered: evictions must have happened (the
	// working set exceeds every cache), and yet nothing failed above.
	_, pvc, mkc, _ := hub.KeyStats()
	if pvc.Evictions == 0 && mkc.Evictions == 0 {
		t.Error("no evictions despite 24 peers in 4-entry caches")
	}
	if tf := hub.TFKCStats(); tf.Evictions == 0 {
		t.Error("TFKC saw no evictions under pressure")
	}
	ks, _, _, _ := hub.KeyStats()
	// Recomputation happened (more exponentiations than peers proves
	// eviction-driven rework), but correctness never suffered.
	if ks.MasterKeyComputes <= peers {
		t.Logf("note: MasterKeyComputes=%d (caches larger than expected working set)", ks.MasterKeyComputes)
	}
}

// Setup-message economics (Section 2 vs Section 5): N short
// conversations to N distinct peers cost session-based schemes setup
// messages per conversation, and FBS none at all.
func TestSetupMessageCounts(t *testing.T) {
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})
	const conversations = 10

	tr, err := net.Attach("counter", 1024)
	if err != nil {
		t.Fatal(err)
	}
	fbsEp, err := NewEndpoint(Config{
		Identity:  w.principal(t, "counter"),
		Transport: tr,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fbsEp.Close() })
	for i := 0; i < conversations; i++ {
		peer := principal.Address(fmt.Sprintf("convo-%02d", i))
		w.principal(t, peer)
		// Seal three datagrams of a short conversation.
		for j := 0; j < 3; j++ {
			if _, err := fbsEp.Seal(transport.Datagram{Source: "counter", Destination: peer, Payload: []byte("hi")}, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	// FBS sent zero protocol messages: the transport carried only what
	// we counted above (nothing — Seal does not transmit), and the key
	// machinery never emitted a datagram.
	if got := net.Stats().Sent; got != 0 {
		t.Fatalf("FBS emitted %d protocol messages for %d conversations, want 0", got, conversations)
	}
	ks, _, _, _ := fbsEp.KeyStats()
	if ks.MasterKeyComputes != conversations {
		t.Fatalf("expected one exponentiation per new peer, got %d", ks.MasterKeyComputes)
	}
}
