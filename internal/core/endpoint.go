package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/cert"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Selector extracts the policy-relevant attributes of an outgoing
// datagram (the input to the mapper module). The IP mapping's selector
// parses the 5-tuple out of the payload; the default selector
// distinguishes flows by principal pair only.
type Selector func(dg transport.Datagram) FlowID

// DefaultSelector classifies by source and destination principal.
func DefaultSelector(dg transport.Datagram) FlowID {
	return FlowID{Src: dg.Source, Dst: dg.Destination}
}

// Config assembles an FBS endpoint. Zero values select the defaults
// noted on each field.
type Config struct {
	// Identity is this principal's address and Diffie-Hellman keying
	// material. Required.
	Identity *principal.Identity
	// Transport is the underlying insecure datagram service. Required.
	Transport transport.Transport
	// Directory serves peer certificates (the PVC-miss fetch path).
	// Required unless every peer certificate is pinned via Pin.
	Directory cert.Directory
	// Verifier validates certificates against the pinned trust anchor
	// (a single CA or a hierarchy). Required.
	Verifier cert.CertVerifier

	// Policy is the security flow policy (mapper + sweeper). Default:
	// ThresholdPolicy{10 * time.Minute}, the paper's favoured setting.
	Policy Policy
	// Selector extracts flow attributes from outgoing datagrams.
	// Default: DefaultSelector.
	Selector Selector
	// Clock drives timestamps; default RealClock.
	Clock Clock
	// MAC selects the MAC construction; default MACPrefixMD5 (keyed
	// MD5, as in the paper's implementation). AEAD suites override it on
	// the wire with MACAEAD (integrity is intrinsic to the sealed box).
	MAC cryptolib.MACID
	// Cipher and Mode select payload encryption; defaults CipherDES and
	// CBC. Cipher must name a registered Suite and, with Mode, fit the
	// header's 4-bit nibbles — NewEndpoint rejects out-of-range or
	// unregistered IDs with ErrAlgorithmRange.
	Cipher CipherID
	Mode   cryptolib.Mode
	// SuiteSelector, when non-nil, chooses the cipher suite per flow at
	// classification time: the returned suite is pinned into the flow
	// state entry when the flow is created and reused for every later
	// datagram of that flow (suite negotiation happens at keying time,
	// never per datagram). Returning an unregistered ID falls back to
	// Cipher. Nil pins Cipher for every flow.
	SuiteSelector func(FlowID) CipherID
	// FreshnessWindow is the replay window half-width; default 10
	// minutes (Section 6.2 suggests "on the order of minutes" for WANs).
	FreshnessWindow time.Duration
	// Confounder generates per-datagram confounders for legacy-suite
	// flows. When nil the endpoint maintains a pool of independently
	// seeded LCGs so that concurrent senders never serialise on one
	// generator. Supplying a source here (e.g. a seeded LCG for
	// reproducible tests, or SystemRandom for the expensive ablation)
	// forces all senders through that single source, serialised by a
	// mutex. AEAD-suite flows never consume from it: their confounder
	// field carries the flow's datagram counter, because an AEAD nonce
	// must be unique under the flow key, not merely statistically random.
	Confounder cryptolib.ConfounderSource

	// Cache geometry; zero picks reasonable defaults.
	FSTSize  int
	TFKCSize int
	RFKCSize int
	PVCSize  int
	MKCSize  int

	// KeyRetry bounds directory fetches on the keying path; the zero
	// value keeps the historic single-attempt behaviour. See
	// RetryPolicy.
	KeyRetry RetryPolicy
	// KeyNegativeTTL remembers failed peer lookups for this long so a
	// burst of datagrams to an unreachable peer fails fast instead of
	// queueing a full retry loop each (0 disables).
	KeyNegativeTTL time.Duration
	// KeyStaleWindow serves a certificate that expired less than this
	// long ago while refetching fails (stale-while-revalidate; 0
	// disables). See KeyServiceConfig.StaleWhileRevalidate.
	KeyStaleWindow time.Duration
	// UpcallTimeout bounds how long a seal/open blocks on a master key
	// daemon upcall; 0 waits forever. A timed-out datagram is dropped
	// with DropKeying while the daemon finishes in the background.
	UpcallTimeout time.Duration

	// AcceptMACs restricts which MAC constructions incoming datagrams
	// may use; empty accepts any construction this library implements.
	// The header's algorithm identification field is self-describing
	// (Section 5.2 prescribes the field "for generality"); a receiver
	// policy is what keeps self-description from becoming
	// attacker-choice. A non-empty set also gates the AEAD suites: their
	// integrity is intrinsic (MACAEAD), so a strict config admits them
	// only by listing MACAEAD here or by naming the suite in
	// AcceptCiphers — pinning legacy MACs never silently widens to the
	// AEAD tier.
	AcceptMACs []cryptolib.MACID
	// AcceptCiphers is the accept-set of suite IDs incoming datagrams
	// may use; empty accepts any registered suite. For AEAD suites the
	// set is enforced on every datagram (the suite owns integrity); for
	// legacy suites, as before, only encrypted bodies are constrained
	// (a cleartext body's cipher nibble is inert).
	AcceptCiphers []CipherID

	// EnableReplayCache turns on exact-duplicate suppression within the
	// freshness window (an extension beyond the paper; see ReplayCache).
	EnableReplayCache bool
	// CombinedFSTTFKC merges the flow state table and the transmission
	// flow key cache so classification and key lookup are one probe —
	// the Section 7.2 send-path optimisation.
	CombinedFSTTFKC bool
	// SinglePass fuses MAC computation and encryption into one pass
	// over the data (Section 5.3's data-touching optimisation).
	SinglePass bool
	// Bypass exempts traffic with matching peers from FBS processing —
	// the "secure flow bypass" that certificate fetches use to avoid
	// circularity (Section 5.3, Figure 5).
	Bypass func(peer principal.Address) bool

	// Observer receives sampled per-packet telemetry (stage timings,
	// verdicts) — see Observer and internal/obs. Nil disables sampling
	// entirely; a non-nil observer whose Sample() returns false costs
	// the hot path only that call.
	Observer Observer

	// Tracer receives per-datagram spans for sampled traces — see
	// Tracer and internal/obs/trace. Nil disables tracing; a non-nil
	// tracer whose StartTrace() returns 0 costs the hot path only that
	// call. Incoming datagrams whose metadata carries a trace ID are
	// always traced (continuing the sender's trace); otherwise the
	// receive path asks StartTrace for a local sample, which is what
	// catches injected or forged datagrams that no sender traced.
	Tracer Tracer

	// SFLSeed, when nonzero, fixes the starting point of the sfl counter
	// instead of randomising it. Production endpoints must leave this
	// zero (a random start is what keeps a subsystem reset from forcing
	// sfl reuse, Section 5.3); deterministic harnesses — the differential
	// reference-model comparison in particular — set it so two endpoints
	// allocate identical label sequences.
	SFLSeed uint64

	// StateBudget, when non-nil, bounds the endpoint's total soft state:
	// the flow state table, replay windows, and all four cache levels
	// (PVC/MKC/TFKC/RFKC) charge per-entry costs against it. Crossing
	// the high-water mark puts sweeps into pressure mode; at the hard
	// limit new state is refused or displaces old state, and datagrams
	// that would require fresh expensive state are shed with
	// DropStateBudget. Nil (the default) disables budgeting.
	StateBudget *Budget
	// Admission bounds receive-path keying work for unknown peers (see
	// AdmissionConfig). The zero value disables the gate.
	Admission AdmissionConfig
	// Prefilter configures the edge pre-filter: the per-prefix
	// counting sketch and the stateless cookie challenge that sit in
	// front of the header parse, engaged adaptively as a degradation
	// ladder (see PrefilterConfig). The zero value disables it.
	Prefilter PrefilterConfig
}

// Metrics is a snapshot of endpoint activity. All counters are
// cumulative. The Rejected* fields are views over the per-DropReason
// counter array (see Drops); they are kept as named fields so existing
// callers and the paper's experiment scripts read unchanged.
type Metrics struct {
	Sent          uint64
	SentSecret    uint64
	SentBytes     uint64
	Received      uint64
	ReceivedBytes uint64

	// Drops counts refused datagrams by reason, indexed by DropReason.
	// Drops[DropNone] is always zero.
	Drops [NumDropReasons]uint64

	RejectedStale     uint64
	RejectedMAC       uint64
	RejectedReplay    uint64
	RejectedMalformed uint64
	RejectedNotForUs  uint64
	RejectedAlgorithm uint64
	DecryptErrors     uint64
	// KeyingErrors counts datagrams (either direction) whose flow key
	// could not be derived.
	KeyingErrors uint64

	BypassedSent     uint64
	BypassedReceived uint64
}

// endpointCounters is the live form of Metrics: independent atomics, so
// per-packet accounting never serialises concurrent senders or receivers
// on a shared mutex. Metrics() snapshots it field by field; the snapshot
// is not a single atomic cut across counters, but each counter is exact.
type endpointCounters struct {
	sent          atomic.Uint64
	sentSecret    atomic.Uint64
	sentBytes     atomic.Uint64
	received      atomic.Uint64
	receivedBytes atomic.Uint64

	// drops is indexed by DropReason; the old per-field rejected
	// counters became slots of this array when the DropReason taxonomy
	// unified endpoint, stack, recorder and exposition naming.
	drops [NumDropReasons]atomic.Uint64

	// Per-suite activity, indexed by cipher nibble: successful seals and
	// accepted opens. Unregistered slots stay zero.
	sealsBySuite [maxAlgNibble + 1]atomic.Uint64
	opensBySuite [maxAlgNibble + 1]atomic.Uint64

	// Batch-call shape: how many SealBatch/OpenBatch calls arrived per
	// log2 size class, plus total datagrams carried. Single-datagram
	// calls never touch these — they count only explicit batch API use.
	sealBatchCalls     [NumBatchBuckets]atomic.Uint64
	openBatchCalls     [NumBatchBuckets]atomic.Uint64
	sealBatchDatagrams atomic.Uint64
	openBatchDatagrams atomic.Uint64

	bypassedSent     atomic.Uint64
	bypassedReceived atomic.Uint64
}

// drop counts one refused datagram.
func (c *endpointCounters) drop(d DropReason) { c.drops[d].Add(1) }

// confounderWell hands out per-datagram confounders without a shared
// lock. With no user-supplied source it keeps a pool of independently
// seeded LCGs — each in-flight seal borrows a whole generator, so
// concurrent senders draw from disjoint sequences (the paper only asks
// for statistical randomness, which independent seeding preserves). A
// user-supplied source (deterministic test LCG, SystemRandom ablation)
// is instead serialised by a mutex, keeping its sequence exactly as
// configured.
type confounderWell struct {
	pool *sync.Pool

	mu  sync.Mutex
	src cryptolib.ConfounderSource
}

func newConfounderWell(src cryptolib.ConfounderSource) *confounderWell {
	if src != nil {
		return &confounderWell{src: src}
	}
	return &confounderWell{
		pool: &sync.Pool{New: func() any { return cryptolib.NewLCG() }},
	}
}

func (w *confounderWell) next() uint32 {
	if w.pool != nil {
		g := w.pool.Get().(*cryptolib.LCG)
		v := g.Uint32()
		w.pool.Put(g)
		return v
	}
	w.mu.Lock()
	v := w.src.Uint32()
	w.mu.Unlock()
	return v
}

// drawRun fills conf with per-datagram confounders, borrowing the pooled
// generator (or taking the source lock) once for the whole run instead of
// once per datagram. The values drawn are the same sequence a loop of
// next() calls would produce.
func (w *confounderWell) drawRun(conf []uint32) {
	if w.pool != nil {
		g := w.pool.Get().(*cryptolib.LCG)
		for i := range conf {
			conf[i] = g.Uint32()
		}
		w.pool.Put(g)
		return
	}
	w.mu.Lock()
	for i := range conf {
		conf[i] = w.src.Uint32()
	}
	w.mu.Unlock()
}

// Endpoint is one principal's FBS protocol instance: the send and
// receive halves of Figure 3 plus the key cache hierarchy of Figure 5.
// It is safe for concurrent use: the caches and flow state table are
// lock-striped, metrics are atomics, and confounder generation is
// pooled, so parallel seals and opens share no serialising lock in the
// steady state.
type Endpoint struct {
	cfg  Config
	fam  *FAM
	ks   *KeyService
	mkd  *MKD
	tfkc *DirectMapped[flowCacheKey, [16]byte]
	rfkc *DirectMapped[flowCacheKey, [16]byte]
	rc   *ReplayCache
	conf *confounderWell

	// Overload plane: the keying admission gate (nil when disabled),
	// the flow-key derivation single-flight, the rate limiter for
	// pressure-relief sweeps, and the edge pre-filter (nil when
	// disabled).
	gate           *admissionGate
	flight         flowKeyFlight
	lastPressure   atomic.Int64 // unix nanos of the last pressure sweep
	pressureSweeps atomic.Uint64
	pf             *prefilter

	// Lifecycle plane: draining refuses new datagram work so inflight
	// can reach zero (Quiesce); closed makes Close idempotent.
	draining atomic.Bool
	closed   atomic.Bool
	inflight atomic.Int64

	metrics endpointCounters
}

// NewEndpoint validates the configuration and assembles an endpoint.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.Identity == nil {
		return nil, fmt.Errorf("core: Config.Identity is required")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("core: Config.Transport is required")
	}
	if cfg.Verifier == nil {
		return nil, fmt.Errorf("core: Config.Verifier is required")
	}
	if cfg.Directory == nil {
		cfg.Directory = cert.NewStaticDirectory()
	}
	if cfg.Policy == nil {
		cfg.Policy = ThresholdPolicy{Threshold: 10 * time.Minute}
	}
	if cfg.Selector == nil {
		cfg.Selector = DefaultSelector
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.Cipher == CipherNone {
		cfg.Cipher = CipherDES
	}
	// Satellite of the suite seam: IDs must fit the header's packed
	// nibbles and name a registered suite before they ever reach
	// algByte, which would otherwise truncate them silently.
	if cfg.Cipher > maxAlgNibble {
		return nil, fmt.Errorf("%w: cipher %d exceeds the 4-bit field", ErrAlgorithmRange, cfg.Cipher)
	}
	if cfg.Mode > maxAlgNibble {
		return nil, fmt.Errorf("%w: mode %d exceeds the 4-bit field", ErrAlgorithmRange, cfg.Mode)
	}
	suite := SuiteByID(cfg.Cipher)
	if suite == nil {
		return nil, fmt.Errorf("%w: cipher %d has no registered suite", ErrAlgorithmRange, cfg.Cipher)
	}
	if !suite.AEAD() && (cfg.MAC > cryptolib.MACNull || cfg.Mode > cryptolib.OFB) {
		return nil, fmt.Errorf("%w: MAC %d / mode %d not implemented for suite %s",
			ErrAlgorithmRange, cfg.MAC, cfg.Mode, suite.Name())
	}
	if cfg.FreshnessWindow <= 0 {
		cfg.FreshnessWindow = 10 * time.Minute
	}
	if cfg.TFKCSize <= 0 {
		cfg.TFKCSize = 256
	}
	if cfg.RFKCSize <= 0 {
		cfg.RFKCSize = 256
	}
	var fam *FAM
	if cfg.SFLSeed != 0 {
		fam = newFAMWithSeed(cfg.Policy, cfg.FSTSize, cfg.SFLSeed)
	} else {
		var err error
		if fam, err = NewFAM(cfg.Policy, cfg.FSTSize); err != nil {
			return nil, err
		}
	}
	// Suite negotiation happens at flow creation: the FAM pins the
	// selector's (validated) choice into the flow state entry.
	defaultSuite := cfg.Cipher
	sel := cfg.SuiteSelector
	fam.SetSuiteSelector(func(id FlowID) CipherID {
		if sel != nil {
			if c := sel(id); c <= maxAlgNibble && SuiteByID(c) != nil {
				return c
			}
		}
		return defaultSuite
	})
	ks := NewKeyService(cfg.Identity, cfg.Directory, cfg.Verifier, cfg.Clock,
		KeyServiceConfig{
			PVCSize:              cfg.PVCSize,
			MKCSize:              cfg.MKCSize,
			Retry:                cfg.KeyRetry,
			NegativeTTL:          cfg.KeyNegativeTTL,
			StaleWhileRevalidate: cfg.KeyStaleWindow,
		})
	mkd := NewMKD(ks)
	mkd.SetTimeout(cfg.UpcallTimeout)
	e := &Endpoint{
		cfg:  cfg,
		fam:  fam,
		ks:   ks,
		mkd:  mkd,
		tfkc: NewDirectMapped[flowCacheKey, [16]byte](cfg.TFKCSize, flowCacheKey.hash),
		rfkc: NewDirectMapped[flowCacheKey, [16]byte](cfg.RFKCSize, flowCacheKey.hash),
		conf: newConfounderWell(cfg.Confounder),
		gate: newAdmissionGate(cfg.Admission, cfg.Clock),
	}
	if cfg.EnableReplayCache {
		e.rc = NewReplayCache(cfg.FreshnessWindow)
	}
	if cfg.Prefilter.Enable {
		pf, err := newPrefilter(cfg.Prefilter)
		if err != nil {
			return nil, err
		}
		e.pf = pf
	}
	if b := cfg.StateBudget; b != nil {
		fam.SetBudget(b)
		ks.SetBudget(b)
		e.tfkc.SetBudget(b, CostFlowKeyEntry)
		e.rfkc.SetBudget(b, CostFlowKeyEntry)
		if e.rc != nil {
			e.rc.SetBudget(b)
		}
	}
	return e, nil
}

// Addr returns this endpoint's principal address.
func (e *Endpoint) Addr() principal.Address { return e.cfg.Identity.Addr }

// Pin installs a peer certificate into the public value cache.
func (e *Endpoint) Pin(c *cert.Certificate) { e.ks.Pin(c) }

// Close stops the master key daemon and closes the transport. It is
// idempotent: only the first call releases anything, and later calls
// return nil — so a ShardGroup torn down twice (a mid-construction
// failure followed by a deferred Close) closes each transport exactly
// once.
func (e *Endpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.mkd.Stop()
	return e.cfg.Transport.Close()
}

// beginOp admits one datagram-plane operation past the drain gate; it
// must be paired with endOp. Increment-before-check closes the race
// with BeginDrain: an op that observes draining surrenders its slot,
// so once BeginDrain's store is visible every admitted op is covered
// by Quiesce's wait on the in-flight count.
func (e *Endpoint) beginOp() error {
	e.inflight.Add(1)
	if e.draining.Load() {
		e.inflight.Add(-1)
		return ErrDraining
	}
	return nil
}

func (e *Endpoint) endOp() { e.inflight.Add(-1) }

// BeginDrain flips the endpoint into drain mode: subsequent seals and
// opens (single or batched) are refused with ErrDraining while
// operations already past the gate run to completion. Draining is
// one-way — a gateway swapping config epochs builds a fresh endpoint
// rather than reviving a drained one.
func (e *Endpoint) BeginDrain() { e.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (e *Endpoint) Draining() bool { return e.draining.Load() }

// Inflight reports the number of datagram operations currently past
// the drain gate (a monitoring aid for drain progress).
func (e *Endpoint) Inflight() int64 { return e.inflight.Load() }

// Quiesce begins draining and waits until every in-flight operation
// has finished. It returns nil once the endpoint is quiet, or an error
// naming the residual in-flight count if the wall-clock deadline
// passes first. Idempotent and safe to call concurrently.
func (e *Endpoint) Quiesce(timeout time.Duration) error {
	e.BeginDrain()
	deadline := time.Now().Add(timeout)
	for {
		n := e.inflight.Load()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: quiesce timed out with %d operations in flight", n)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// HandoffStats reports what HandoffSoftState carried across.
type HandoffStats struct {
	// Certs counts verified peer certificates offered to the
	// successor's PVC.
	Certs int
	// MasterKeys counts pair master keys offered to the successor's
	// MKC (zero when the identities differ).
	MasterKeys int
}

// SameIdentity reports whether dst keys for the same principal: same
// address and same DH public value in the same group. Equal public
// values imply equal pair master keys with every peer — the property
// that makes a master-key handoff sound.
func (e *Endpoint) SameIdentity(dst *Endpoint) bool {
	a, b := e.cfg.Identity, dst.cfg.Identity
	return a.Addr == b.Addr &&
		a.Public.Cmp(b.Public) == 0 &&
		a.Group.P.Cmp(b.Group.P) == 0 &&
		a.Group.G.Cmp(b.Group.G) == 0
}

// HandoffSoftState warms dst from this endpoint's keying caches so a
// config-epoch swap does not trigger a thundering herd of upcalls.
// Verified peer certificates always carry over — they are public,
// signature-checked material, valid under any local configuration.
// Pair master keys carry over only when dst keys for the same
// identity: a rotated private value changes every pair key, so
// rotation deliberately hands nothing over and the keys rebuild
// through the normal upcall path. Flow keys and flow state stay
// behind by design — they are one hash away from the master key, and
// the successor's suite or policy choices may differ. Installs into
// dst are gated by dst's own StateBudget; anything refused simply
// rebuilds on demand.
func (e *Endpoint) HandoffSoftState(dst *Endpoint) HandoffStats {
	var hs HandoffStats
	hs.Certs = e.ks.HandoffCerts(dst.ks)
	if e.SameIdentity(dst) {
		hs.MasterKeys = e.ks.HandoffMasterKeys(dst.ks)
	}
	return hs
}

// FlushPeer evicts everything cached about peer — verified
// certificate, pair master key, negative-lookup memory, and both
// directions' flow keys — so the next datagram to or from peer re-keys
// from scratch. This is the hot-rotation seam: rotating one peer's
// credentials flushes that peer alone, leaving every other flow's
// soft state untouched.
func (e *Endpoint) FlushPeer(peer principal.Address) {
	e.ks.FlushPeer(peer)
	match := func(k flowCacheKey, _ [16]byte) bool {
		return k.Src == peer || k.Dst == peer
	}
	e.tfkc.EvictIf(match)
	e.rfkc.EvictIf(match)
}

// Metrics returns a snapshot of the endpoint counters.
func (e *Endpoint) Metrics() Metrics {
	c := &e.metrics
	m := Metrics{
		Sent:          c.sent.Load(),
		SentSecret:    c.sentSecret.Load(),
		SentBytes:     c.sentBytes.Load(),
		Received:      c.received.Load(),
		ReceivedBytes: c.receivedBytes.Load(),

		BypassedSent:     c.bypassedSent.Load(),
		BypassedReceived: c.bypassedReceived.Load(),
	}
	for i := range m.Drops {
		m.Drops[i] = c.drops[i].Load()
	}
	m.RejectedStale = m.Drops[DropStale]
	m.RejectedMAC = m.Drops[DropBadMAC]
	m.RejectedReplay = m.Drops[DropReplay]
	m.RejectedMalformed = m.Drops[DropMalformed]
	m.RejectedNotForUs = m.Drops[DropNotForUs]
	m.RejectedAlgorithm = m.Drops[DropAlgorithm]
	m.DecryptErrors = m.Drops[DropDecrypt]
	m.KeyingErrors = m.Drops[DropKeying]
	return m
}

// DropCounts returns the per-reason drop counters, indexed by
// DropReason (the array behind Metrics' Rejected* fields).
func (e *Endpoint) DropCounts() [NumDropReasons]uint64 {
	var out [NumDropReasons]uint64
	for i := range out {
		out[i] = e.metrics.drops[i].Load()
	}
	return out
}

// SuiteCounts returns per-suite activity counters, indexed by cipher
// nibble: successful seals and accepted opens. Slots with no registered
// suite are always zero. The obs adapter exposes these as the
// suite-labeled fbs_endpoint_suite_{seals,opens}_total families.
func (e *Endpoint) SuiteCounts() (seals, opens [maxAlgNibble + 1]uint64) {
	for i := range seals {
		seals[i] = e.metrics.sealsBySuite[i].Load()
		opens[i] = e.metrics.opensBySuite[i].Load()
	}
	return seals, opens
}

// EndpointStats aggregates the endpoint's overload-plane state: budget
// occupancy, admission gate activity, replay-window occupancy, the
// flow-key derivation dedup count, and how many pressure-mode sweeps
// the data path has triggered.
type EndpointStats struct {
	Budget         BudgetStats
	Admission      AdmissionStats
	Replay         ReplayStats
	Prefilter      PrefilterStats
	FlowKeyDedups  uint64
	PressureSweeps uint64
}

// Stats snapshots the overload plane. All components are nil-safe, so
// an endpoint with no budget, gate, replay cache or pre-filter reports
// zeros.
func (e *Endpoint) Stats() EndpointStats {
	return EndpointStats{
		Budget:         e.cfg.StateBudget.Stats(),
		Admission:      e.gate.Stats(),
		Replay:         e.rc.Stats(),
		Prefilter:      e.pf.stats(e.cfg.Clock.Now()),
		FlowKeyDedups:  e.flight.Dedups(),
		PressureSweeps: e.pressureSweeps.Load(),
	}
}

// Budget returns the endpoint's state budget (nil when unbudgeted).
func (e *Endpoint) Budget() *Budget { return e.cfg.StateBudget }

// ReplayPerPeer returns per-peer replay-window occupancy — the
// first-class budget input that attributes state pressure to the peer
// creating it. Nil when the replay cache is disabled.
func (e *Endpoint) ReplayPerPeer() map[principal.Address]int { return e.rc.PerPeer() }

// PeerFlowKey derives the flow key this endpoint would use for sfl on
// datagrams it sends to peer. It is a diagnostic seam for differential
// testing: harnesses compare the key material an optimised endpoint
// derives against an independent reference derivation. It goes through
// the regular keying path (MKC, upcall), so it can fail with the same
// keying errors a seal would.
func (e *Endpoint) PeerFlowKey(sfl SFL, peer principal.Address) ([16]byte, error) {
	master, err := e.mkd.Upcall(peer)
	if err != nil {
		return [16]byte{}, err
	}
	return FlowKey(cryptolib.HashMD5, sfl, master, e.Addr(), peer), nil
}

// CacheInfo describes one key/certificate cache for monitoring: its
// name, occupancy, geometry and counters.
type CacheInfo struct {
	Name  string
	Used  int
	Slots int
	Stats CacheStats
}

// Caches reports occupancy and counters for the endpoint's four soft
// caches (TFKC, RFKC, PVC, MKC), netstat-style. Occupancy is counted
// under the stripe locks, so it is exact at the instant each stripe is
// visited.
func (e *Endpoint) Caches() []CacheInfo {
	return []CacheInfo{
		{Name: "tfkc", Used: e.tfkc.Occupancy(), Slots: e.tfkc.Size(), Stats: e.tfkc.Stats()},
		{Name: "rfkc", Used: e.rfkc.Occupancy(), Slots: e.rfkc.Size(), Stats: e.rfkc.Stats()},
		{Name: "pvc", Used: e.ks.pvc.Occupancy(), Slots: e.ks.pvc.Size(), Stats: e.ks.pvc.Stats()},
		{Name: "mkc", Used: e.ks.mkc.Occupancy(), Slots: e.ks.mkc.Size(), Stats: e.ks.mkc.Stats()},
	}
}

// FAMStats exposes flow association counters.
func (e *Endpoint) FAMStats() FAMStats { return e.fam.Stats() }

// TFKCStats and RFKCStats expose the flow key cache counters.
func (e *Endpoint) TFKCStats() CacheStats { return e.tfkc.Stats() }

// RFKCStats exposes the receive flow key cache counters.
func (e *Endpoint) RFKCStats() CacheStats { return e.rfkc.Stats() }

// KeyStats exposes keying (PVC/MKC/daemon) counters.
func (e *Endpoint) KeyStats() (ks KeyServiceStats, pvc, mkc CacheStats, upcalls uint64) {
	return e.ks.Stats(), e.ks.PVCStats(), e.ks.MKCStats(), e.mkd.Upcalls()
}

// MKDStats exposes the master key daemon's upcall and deadline-miss
// counters.
func (e *Endpoint) MKDStats() (upcalls, timeouts uint64) {
	return e.mkd.Upcalls(), e.mkd.Timeouts()
}

// Sweep runs the sweeper policy module over the flow state table. With
// the state budget above its high-water mark the sweep runs in pressure
// mode (the policy's tightened threshold) so idle flows are reclaimed
// sooner.
func (e *Endpoint) Sweep() int {
	now := e.cfg.Clock.Now()
	if e.cfg.StateBudget.UnderPressure() {
		return e.fam.SweepPressure(now)
	}
	return e.fam.Sweep(now)
}

// pressureSweepInterval rate-limits the inline pressure-relief sweeps
// that the data path triggers when the budget is hot, so a sustained
// flood costs at most one table scan per interval rather than one per
// refused datagram.
const pressureSweepInterval = 100 * time.Millisecond

// maybeRelievePressure runs one pressure-mode sweep if the budget is at
// or above high water and none has run within the last interval. The
// CAS elects a single sweeper; it must never be called while holding a
// stripe lock (the sweep takes them all, one at a time).
func (e *Endpoint) maybeRelievePressure(now time.Time) {
	b := e.cfg.StateBudget
	if b == nil || b.Level() == BudgetNormal {
		return
	}
	last := e.lastPressure.Load()
	n := now.UnixNano()
	if n-last < int64(pressureSweepInterval) {
		return
	}
	if !e.lastPressure.CompareAndSwap(last, n) {
		return
	}
	e.pressureSweeps.Add(1)
	e.fam.SweepPressure(now)
}

// FlushKeys drops every cached key and certificate (PVC, MKC, TFKC,
// RFKC). Because all of it is soft state, this is always safe: the next
// datagram in each direction simply pays recomputation. Call it after
// this principal rekeys, or after learning a peer did.
func (e *Endpoint) FlushKeys() {
	e.tfkc.Flush()
	e.rfkc.Flush()
	e.ks.pvc.Flush()
	e.ks.mkc.Flush()
}

// ActiveFlows reports the number of live entries in the flow state table.
func (e *Endpoint) ActiveFlows() int { return e.fam.ActiveFlows() }

// Flows returns a snapshot of the live flow state table, for monitoring.
func (e *Endpoint) Flows() []FlowInfo { return e.fam.Snapshot() }

// checkAlg resolves the self-describing header against the suite
// registry and the receiver's algorithm policy. The order is fixed:
// first structure (is there such an algorithm at all — unregistered
// cipher nibbles and MAC/mode bytes the named suite cannot carry fail
// with ErrAlgorithmUnknown), then policy (a known algorithm this
// endpoint refuses fails with ErrAlgorithmRejected). Both map to
// DropAlgorithm. The refmodel mirrors this decision table exactly.
func (e *Endpoint) checkAlg(h *Header) (Suite, error) {
	suite := SuiteByID(h.Cipher)
	if suite == nil {
		return nil, fmt.Errorf("%w: cipher %v", ErrAlgorithmUnknown, h.Cipher)
	}
	if !suite.ValidHeader(*h) {
		return nil, fmt.Errorf("%w: suite %s cannot carry MAC %v / mode %v",
			ErrAlgorithmUnknown, suite.Name(), h.MAC, h.Mode)
	}
	if suite.AEAD() {
		// Integrity is intrinsic — the MAC byte is structurally MACAEAD —
		// but that must not widen a strict legacy config's accept set: an
		// endpoint that pinned AcceptMACs before the AEAD suites existed
		// keeps exactly its pre-AEAD policy until it opts in. An AEAD
		// suite is admitted when policy is fully open, when AcceptMACs
		// names MACAEAD, or when AcceptCiphers names the suite explicitly.
		// The cipher accept-set binds secret and cleartext bodies alike
		// (the suite authenticates both).
		explicit := containsCipher(e.cfg.AcceptCiphers, h.Cipher)
		if len(e.cfg.AcceptCiphers) > 0 && !explicit {
			return nil, fmt.Errorf("%w: MAC %v, cipher %v", ErrAlgorithmRejected, h.MAC, h.Cipher)
		}
		if len(e.cfg.AcceptMACs) > 0 && !explicit && !containsMAC(e.cfg.AcceptMACs, cryptolib.MACAEAD) {
			return nil, fmt.Errorf("%w: MAC %v, cipher %v", ErrAlgorithmRejected, h.MAC, h.Cipher)
		}
		return suite, nil
	}
	if len(e.cfg.AcceptMACs) > 0 && !containsMAC(e.cfg.AcceptMACs, h.MAC) {
		return nil, fmt.Errorf("%w: MAC %v, cipher %v", ErrAlgorithmRejected, h.MAC, h.Cipher)
	}
	if h.Secret() && len(e.cfg.AcceptCiphers) > 0 && !containsCipher(e.cfg.AcceptCiphers, h.Cipher) {
		return nil, fmt.Errorf("%w: MAC %v, cipher %v", ErrAlgorithmRejected, h.MAC, h.Cipher)
	}
	return suite, nil
}

func containsMAC(set []cryptolib.MACID, m cryptolib.MACID) bool {
	for _, v := range set {
		if v == m {
			return true
		}
	}
	return false
}

func containsCipher(set []CipherID, c CipherID) bool {
	for _, v := range set {
		if v == c {
			return true
		}
	}
	return false
}

// StartSweeper runs the sweeper policy module periodically in the
// background (the standing sweeper of Figure 1) until the returned stop
// function is called. It uses wall-clock scheduling; simulations drive
// Sweep explicitly instead.
func (e *Endpoint) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Sweep()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// transmitFlowKey returns the flow key for an outgoing datagram,
// consulting the TFKC (Figure 6) or, in combined mode, the flow state
// table entry itself (Section 7.2). hit reports whether the key came
// from cache (vs. the MKD-miss derivation path) — the instrumentation
// splits the two, since a miss can cost a modular exponentiation. The
// note carries the miss path's keying annotations for tracing; a hit
// returns it empty.
func (e *Endpoint) transmitFlowKey(sfl SFL, slot int, src, dst principal.Address) (k [16]byte, hit bool, note KeyNote, err error) {
	if e.cfg.CombinedFSTTFKC {
		if k, ok := e.fam.getFlowKey(slot, sfl); ok {
			return k, true, note, nil
		}
	} else {
		if k, ok := e.tfkc.Get(flowCacheKey{SFL: sfl, Dst: dst, Src: src}); ok {
			return k, true, note, nil
		}
	}
	master, mnote, err := e.mkd.UpcallNoted(dst)
	note.merge(mnote)
	if err != nil {
		return [16]byte{}, false, note, err
	}
	k = FlowKey(cryptolib.HashMD5, sfl, master, src, dst)
	if e.cfg.CombinedFSTTFKC {
		e.fam.setFlowKey(slot, sfl, k)
	} else {
		e.tfkc.Put(flowCacheKey{SFL: sfl, Dst: dst, Src: src}, k)
	}
	return k, false, note, nil
}

// receiveFlowKey returns the flow key for an incoming datagram via the
// RFKC. hit reports whether the RFKC served it. The miss path is where
// receive-side overload control lives: concurrent misses for the same
// flow coalesce into one derivation, and unknown peers (no cached
// master key) must pass the admission gate and fit under the state
// budget before any directory or Diffie-Hellman work begins. Known
// peers bypass both — their keying costs one hash.
func (e *Endpoint) receiveFlowKey(sfl SFL, src, dst principal.Address) (k [16]byte, hit bool, note KeyNote, err error) {
	ck := flowCacheKey{SFL: sfl, Dst: dst, Src: src}
	if k, ok := e.rfkc.Get(ck); ok {
		return k, true, note, nil
	}
	k, note, joined, err := e.flight.do(ck, func() ([16]byte, KeyNote, error) {
		var n KeyNote
		if e.gate != nil || e.cfg.StateBudget != nil {
			if !e.ks.KnownPeer(src) {
				if e.gate != nil {
					if err := e.gate.Admit(src); err != nil {
						n.AdmitRefused = true
						return [16]byte{}, n, err
					}
					n.Admitted = true
				}
				if e.cfg.StateBudget.Level() == BudgetHard {
					n.BudgetRefused = true
					e.maybeRelievePressure(e.cfg.Clock.Now())
					return [16]byte{}, n, fmt.Errorf("%w: keying %q", ErrStateBudget, src)
				}
			}
		}
		e.gate.enter()
		master, mnote, err := e.mkd.UpcallNoted(src)
		e.gate.leave()
		n.merge(mnote)
		if err != nil {
			return [16]byte{}, n, err
		}
		k := FlowKey(cryptolib.HashMD5, sfl, master, src, dst)
		e.rfkc.Put(ck, k)
		return k, n, nil
	})
	if joined {
		// A follower shares the leader's result and note, plus the
		// coalescing mark itself.
		note.Coalesced = true
	}
	return k, false, note, err
}

// Seal performs FBS send processing (FBSSend, Figure 4): classify into a
// flow, derive the flow key, build the security flow header, MAC, and
// optionally encrypt. It returns the protected datagram ready for the
// underlying transport. Seal does not transmit; Send does.
func (e *Endpoint) Seal(dg transport.Datagram, secret bool) (transport.Datagram, error) {
	if dg.Source == "" {
		dg.Source = e.Addr()
	}
	// (S1) classify the datagram into a flow.
	return e.SealFlow(dg, e.cfg.Selector(dg), secret)
}

// SealAppend is the allocation-free form of Seal: it appends the sealed
// datagram (header then body) to dst and returns the extended slice.
// With sufficient capacity in dst the steady-state path performs no
// allocation. dst must not alias dg.Payload.
func (e *Endpoint) SealAppend(dst []byte, dg transport.Datagram, secret bool) ([]byte, error) {
	if dg.Source == "" {
		dg.Source = e.Addr()
	}
	return e.SealFlowAppend(dst, dg, e.cfg.Selector(dg), secret)
}

// SealFlow is Seal with the flow attributes supplied by the caller
// instead of the configured Selector. Protocol mappings that know more
// about the datagram than the opaque payload shows (e.g. the IP mapping,
// which has the protocol number from the IP header) use this entry
// point.
func (e *Endpoint) SealFlow(dg transport.Datagram, id FlowID, secret bool) (transport.Datagram, error) {
	if dg.Source == "" {
		dg.Source = e.Addr()
	}
	buf := make([]byte, 0, HeaderSize+len(dg.Payload)+cryptolib.BlockSize)
	out, tid, err := e.sealFlowGate(buf, dg, id, secret)
	if err != nil {
		return transport.Datagram{}, err
	}
	return transport.Datagram{Source: dg.Source, Destination: dg.Destination, Payload: out, Trace: tid}, nil
}

// SealFlowAppend is the allocation-free form of SealFlow. The sealed
// datagram — or, for a bypassed peer, the payload unchanged — is
// appended to dst. A sealed datagram needs at most
// HeaderSize+len(payload)+cryptolib.BlockSize bytes of capacity (the
// block is padding headroom when encrypting); give dst that much and the
// steady-state path allocates nothing. dst must not alias dg.Payload.
func (e *Endpoint) SealFlowAppend(dst []byte, dg transport.Datagram, id FlowID, secret bool) ([]byte, error) {
	out, _, err := e.sealFlowGate(dst, dg, id, secret)
	return out, err
}

// sealFlowGate applies the two observation gates — the Observer's
// sampling decision and the Tracer's trace-sampling decision — around
// sealFlowAppend, and reports the trace ID it allocated (0 when the
// datagram is untraced) so Datagram-returning callers can stamp it
// into the metadata. The un-sampled, un-traced path pays the two gate
// calls and nothing else.
func (e *Endpoint) sealFlowGate(dst []byte, dg transport.Datagram, id FlowID, secret bool) ([]byte, TraceID, error) {
	if err := e.beginOp(); err != nil {
		return nil, 0, err
	}
	defer e.endOp()
	if dg.Source == "" {
		dg.Source = e.Addr()
	}
	if e.cfg.Bypass != nil && e.cfg.Bypass(dg.Destination) {
		e.metrics.bypassedSent.Add(1)
		out := append(dst, dg.Payload...)
		return out, 0, nil
	}
	var tc *traceCtx
	if tr := e.cfg.Tracer; tr != nil {
		if tid := tr.StartTrace(); tid != 0 {
			tc = &traceCtx{tr: tr, id: tid}
		}
	}
	o := e.cfg.Observer
	sampled := o != nil && o.Sample()
	return e.sealGated(dst, dg, id, secret, sampled, tc)
}

// sealGated runs the seal with the observation-gate decisions already
// made (SealBatch evaluates the gates itself during run grouping, so a
// sampled or traced datagram inside a batch takes exactly this path).
// The un-sampled, un-traced case is the batch engine with a run of one:
// the single-datagram path IS batch-of-1, so golden vectors and the
// 0 allocs/op bound pin the shared machinery.
func (e *Endpoint) sealGated(dst []byte, dg transport.Datagram, id FlowID, secret bool, sampled bool, tc *traceCtx) ([]byte, TraceID, error) {
	if !sampled && !tc.active() {
		var one [1]transport.Datagram
		var res [1]BatchResult
		one[0] = dg
		out, _ := e.sealRun(dst, one[:], id, secret, res[:])
		if res[0].Err != nil {
			return nil, 0, res[0].Err
		}
		return out, 0, nil
	}
	o := e.cfg.Observer
	var s PacketSample
	var sp *PacketSample
	if sampled {
		sp = &s
		s.Seal = true
		s.Flow = id
		s.Bytes = len(dg.Payload)
		s.Secret = secret
		if tc.active() {
			s.Trace = tc.id
		}
	}
	start := time.Now()
	out, err := e.sealFlowAppend(dst, dg, id, secret, sp, tc)
	total := time.Since(start)
	drop := DropNone
	if err != nil {
		drop = DropReasonOf(err)
	}
	if sampled {
		s.Stages[StageTotal] = total
		s.Drop = drop
		o.Packet(s)
	}
	var tid TraceID
	if tc.active() {
		tid = tc.id
		flags := SpanFlags(0)
		if secret {
			flags |= FlagSecretBody
		}
		tc.span(Span{Kind: SpanSeal, Seal: true, Drop: drop, Flags: flags,
			SFL: s.SFL, Start: start, Dur: total, Attr: uint64(len(dg.Payload))})
	}
	return out, tid, err
}

// sealFlowAppend is the body of SealFlowAppend. When s is non-nil the
// packet is being sampled: stage timings and flow identity are recorded
// into it as the pipeline advances. When tc is active the packet is
// being traced and each stage emits a span.
func (e *Endpoint) sealFlowAppend(dst []byte, dg transport.Datagram, id FlowID, secret bool, s *PacketSample, tc *traceCtx) ([]byte, error) {
	now := e.cfg.Clock.Now()
	instr := s != nil || tc.active()
	var t time.Time
	if instr {
		t = time.Now()
	}
	// (S1) classify the datagram into a flow. At the budget hard limit a
	// datagram needing a fresh flow entry is shed; existing flows are
	// untouched. The flow entry carries the cipher suite pinned at flow
	// creation (keying time) — suite choice is per flow, never per
	// datagram — and hands back this datagram's sequence number within
	// the flow, the AEAD nonce counter.
	sfl, suiteID, seq, _, slot, ok := e.fam.classify(id, now, len(dg.Payload))
	if !ok {
		e.metrics.drop(DropStateBudget)
		e.maybeRelievePressure(now)
		if tc.active() {
			tc.span(Span{Kind: SpanClassify, Seal: true, Drop: DropStateBudget,
				Flags: FlagBudgetRefused, Start: t, Dur: time.Since(t)})
		}
		return nil, fmt.Errorf("%w: flow to %q", ErrStateBudget, dg.Destination)
	}
	suite := SuiteByID(suiteID)
	if suite == nil {
		// Unreachable with a validated config (the FAM selector wrapper
		// falls back to cfg.Cipher); kept as a typed failure, not a panic.
		return nil, fmt.Errorf("%w: pinned suite %d unregistered", ErrAlgorithmRange, suiteID)
	}
	if instr {
		d := time.Since(t)
		if s != nil {
			s.Stages[StageFAM] = d
			s.SFL = sfl
		}
		if tc.active() {
			tc.span(Span{Kind: SpanClassify, Seal: true, SFL: sfl, Start: t, Dur: d})
		}
		t = time.Now()
	}
	// (S2-3) obtain the flow key (cached per Figure 6).
	kf, keyHit, note, err := e.transmitFlowKey(sfl, slot, dg.Source, dg.Destination)
	if instr {
		d := time.Since(t)
		if s != nil {
			if keyHit {
				s.Stages[StageKeyHit] = d
			} else {
				s.Stages[StageKeyMiss] = d
			}
		}
		if tc.active() {
			sp := Span{Kind: SpanFlowKey, Seal: true, SFL: sfl, Start: t, Dur: d,
				Flags: note.flags(), Attr: uint64(note.Attempts)}
			if keyHit {
				sp.Flags |= FlagKeyHit
			}
			if err != nil {
				sp.Drop = DropKeying
			}
			tc.span(sp)
		}
	}
	if err != nil {
		e.metrics.drop(DropKeying)
		return nil, fmt.Errorf("%w: flow to %q: %w", ErrKeying, dg.Destination, err)
	}
	// (S4-5) confounder and timestamp. The wire algorithm bytes are the
	// suite's mapping of the configured MAC/mode (legacy suites pass
	// them through; AEAD suites force MACAEAD and a zero mode nibble).
	//
	// Legacy suites draw a statistically random confounder (the paper's
	// per-datagram freshness material and IV seed). AEAD suites must NOT:
	// their confounder field feeds the nonce, and an AEAD nonce has to be
	// unique under the flow key, not merely random — 32 random bits
	// birthday-collide around 2^16 datagrams, well inside a bulk flow's
	// minute. The flow's datagram counter is unique by construction:
	// under one K_f (one sfl) the nonce counter|timestamp|sfl can only
	// repeat if 2^32 datagrams are sealed within a single timestamp
	// minute. Rekeying (a new sfl, so a new K_f) restarts the counter
	// safely, and a restarted endpoint randomises its sfl seed, so a
	// crash never resumes an old (key, counter) pair.
	wireMAC, wireMode := suite.WireAlg(e.cfg.MAC, e.cfg.Mode)
	conf := uint32(seq)
	if !suite.AEAD() {
		conf = e.conf.next()
	}
	h := Header{
		Version:    HeaderVersion,
		MAC:        wireMAC,
		Cipher:     suite.ID(),
		Mode:       wireMode,
		SFL:        sfl,
		Confounder: conf,
		Timestamp:  TimestampOf(now),
	}
	if secret {
		h.Flags |= FlagSecret
	}
	// (S7, hoisted) encode the header with a zero MAC value; the MAC —
	// or AEAD tag — is patched in at macValueOffset once the body has
	// been traversed, so the body can be protected in place after the
	// header without a staging buffer.
	hdrOff := len(dst)
	dst = h.Encode(dst)
	// (S6, S8-9) the suite owns the body transform and MAC/tag patch.
	if tc.active() {
		t = time.Now()
	}
	out, err := suite.SealAppend(dst, hdrOff, h, kf, dg.Payload, e.cfg.SinglePass, s)
	if tc.active() {
		sp := Span{Kind: SpanCrypto, Seal: true, SFL: sfl, Start: t, Dur: time.Since(t),
			Attr: uint64(len(dg.Payload))}
		if secret {
			sp.Flags |= FlagSecretBody
		}
		if err != nil {
			sp.Drop = DropReasonOf(err)
		}
		tc.span(sp)
	}
	if err != nil {
		return nil, err
	}
	e.metrics.sealsBySuite[suite.ID()].Add(1)
	return out, nil
}

// Send seals and transmits a datagram (FBSSend step S10). A traced
// datagram (see Config.Tracer) carries its trace ID in the sealed
// Datagram's metadata, and the transport handoff is timed as its own
// span.
func (e *Endpoint) Send(dg transport.Datagram, secret bool) error {
	sealed, err := e.Seal(dg, secret)
	if err != nil {
		return err
	}
	if e.pf != nil {
		// Echo a pending cookie challenge from this destination: the
		// envelope wraps the already-sealed datagram, so the sealed wire
		// image itself is unchanged.
		sealed.Payload = e.prefilterWrap(sealed.Payload, sealed.Destination)
	}
	if tr := e.cfg.Tracer; tr != nil && sealed.Trace != 0 {
		t := time.Now()
		err = e.cfg.Transport.Send(sealed)
		sp := Span{Trace: sealed.Trace, Kind: SpanTransportSend, Seal: true,
			Start: t, Dur: time.Since(t), Attr: uint64(len(sealed.Payload))}
		if err != nil {
			sp.Drop = DropReasonOf(err)
		}
		tr.Span(sp)
	} else {
		err = e.cfg.Transport.Send(sealed)
	}
	if err != nil {
		return err
	}
	e.metrics.sent.Add(1)
	e.metrics.sentBytes.Add(uint64(len(dg.Payload)))
	if secret {
		e.metrics.sentSecret.Add(1)
	}
	return nil
}

// SendTo is a convenience wrapper around Send.
func (e *Endpoint) SendTo(dst principal.Address, payload []byte, secret bool) error {
	return e.Send(transport.Datagram{Source: e.Addr(), Destination: dst, Payload: payload}, secret)
}

// Open performs FBS receive processing (FBSReceive, Figure 4) on a
// protected datagram: parse the header, check freshness, recover the flow
// key, decrypt if needed, and verify the MAC. It returns the recovered
// plaintext datagram; for an unencrypted body the returned payload
// aliases dg.Payload.
func (e *Endpoint) Open(dg transport.Datagram) (transport.Datagram, error) {
	body, err := e.open(nil, dg, false)
	if err != nil {
		return transport.Datagram{}, err
	}
	return transport.Datagram{Source: dg.Source, Destination: dg.Destination, Payload: body}, nil
}

// OpenAppend is the allocation-free form of Open: the recovered
// plaintext body is appended to dst and the extended slice returned.
// With capacity for len(dg.Payload) more bytes in dst the steady-state
// path performs no allocation. dst must not alias dg.Payload.
func (e *Endpoint) OpenAppend(dst []byte, dg transport.Datagram) ([]byte, error) {
	return e.open(dst, dg, true)
}

// open is the shared receive path. With copyBody set the recovered body
// is appended to dst; otherwise dst is unused and the returned slice
// aliases dg.Payload when the body was not encrypted.
func (e *Endpoint) open(dst []byte, dg transport.Datagram, copyBody bool) ([]byte, error) {
	if err := e.beginOp(); err != nil {
		return nil, err
	}
	defer e.endOp()
	if e.cfg.Bypass != nil && e.cfg.Bypass(dg.Source) {
		e.metrics.bypassedReceived.Add(1)
		if copyBody {
			return append(dst, dg.Payload...), nil
		}
		return dg.Payload, nil
	}
	// Observation gates — see sealFlowGate. An incoming trace ID (set
	// by a tracing sender over a metadata-preserving transport) is
	// always continued so one trace spans both endpoints; otherwise the
	// tracer may start a local trace, which is how datagrams no sender
	// traced — adversary injections in particular — still get a
	// receive-side trace ending in their DropReason.
	var tc *traceCtx
	if tr := e.cfg.Tracer; tr != nil {
		if dg.Trace != 0 {
			tc = &traceCtx{tr: tr, id: dg.Trace}
		} else if tid := tr.StartTrace(); tid != 0 {
			tc = &traceCtx{tr: tr, id: tid}
		}
	}
	o := e.cfg.Observer
	sampled := o != nil && o.Sample()
	return e.openGated(dst, dg, copyBody, sampled, tc)
}

// openGated runs the receive pipeline with the observation-gate
// decisions already made (OpenBatch evaluates the gates during batch
// grouping). The un-sampled, un-traced append path is the batch engine
// with a run of one — the production single-datagram path IS batch-of-1.
// The alias-returning path (copyBody == false) keeps openInner: batch
// output is always appended, so a run of one cannot alias the input.
func (e *Endpoint) openGated(dst []byte, dg transport.Datagram, copyBody bool, sampled bool, tc *traceCtx) ([]byte, error) {
	if !sampled && !tc.active() {
		if copyBody {
			var one [1]transport.Datagram
			var res [1]BatchResult
			one[0] = dg
			out, _ := e.openRun(dst, one[:], res[:])
			if res[0].Err != nil {
				return nil, res[0].Err
			}
			return out, nil
		}
		return e.openInner(dst, dg, copyBody, nil, nil)
	}
	o := e.cfg.Observer
	var s PacketSample
	var sp *PacketSample
	if sampled {
		sp = &s
		s.Flow = FlowID{Src: dg.Source, Dst: dg.Destination}
		s.Bytes = len(dg.Payload)
		if tc.active() {
			s.Trace = tc.id
		}
	}
	start := time.Now()
	out, err := e.openInner(dst, dg, copyBody, sp, tc)
	total := time.Since(start)
	drop := DropNone
	if err != nil {
		drop = DropReasonOf(err)
	}
	if sampled {
		s.Stages[StageTotal] = total
		s.Drop = drop
		o.Packet(s)
	}
	if tc.active() {
		tc.span(Span{Kind: SpanOpen, Drop: drop, SFL: s.SFL, Start: start, Dur: total,
			Attr: uint64(len(dg.Payload))})
	}
	return out, err
}

// openInner is the body of open (FBSReceive proper). When s is non-nil
// the packet is being sampled and stage timings, flow identity and the
// secret flag are recorded into it. When tc is active the packet is
// being traced and each stage emits a span.
func (e *Endpoint) openInner(dst []byte, dg transport.Datagram, copyBody bool, s *PacketSample, tc *traceCtx) ([]byte, error) {
	instr := s != nil || tc.active()
	var t time.Time
	if instr {
		t = time.Now()
	}
	// parseFail emits the parse span for a datagram refused before
	// keying (addressing, header structure, algorithm policy,
	// freshness).
	parseFail := func(reason DropReason) {
		if tc.active() {
			tc.span(Span{Kind: SpanParse, Drop: reason, Start: t, Dur: time.Since(t)})
		}
	}
	if dg.Destination != e.Addr() {
		e.metrics.drop(DropNotForUs)
		parseFail(DropNotForUs)
		return nil, fmt.Errorf("%w: %q", ErrNotForUs, dg.Destination)
	}
	// (R1b) the edge pre-filter: control-frame absorption, echo-envelope
	// verification, sketch shedding and the cookie challenge — all
	// before any header parse or cache work. A verified echo rewrites
	// dg.Payload in place.
	if e.pf != nil {
		if err := e.prefilterInbound(&dg, tc); err != nil {
			return nil, err
		}
		e.pf.headerParses.Add(1)
	}
	// (R2) retrieve the security flow header.
	var h Header
	n, err := h.Decode(dg.Payload)
	if err != nil {
		e.metrics.drop(DropMalformed)
		parseFail(DropMalformed)
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	body := dg.Payload[n:]
	if s != nil {
		s.SFL = h.SFL
		s.Secret = h.Secret()
		s.Bytes = len(body)
	}
	// (R2b) resolve the algorithm identification against the suite
	// registry (structure) and the Accept* policy, before any keying or
	// crypto work.
	suite, err := e.checkAlg(&h)
	if err != nil {
		e.metrics.drop(DropAlgorithm)
		if tc.active() {
			tc.span(Span{Kind: SpanParse, Drop: DropAlgorithm, SFL: h.SFL, Start: t, Dur: time.Since(t)})
		}
		return nil, err
	}
	now := e.cfg.Clock.Now()
	// (R3-4) freshness.
	if !h.Timestamp.Fresh(now, e.cfg.FreshnessWindow) {
		e.metrics.drop(DropStale)
		if tc.active() {
			tc.span(Span{Kind: SpanParse, Drop: DropStale, SFL: h.SFL, Start: t, Dur: time.Since(t)})
		}
		return nil, fmt.Errorf("%w: timestamp %v at %v", ErrStale, h.Timestamp.Time(), now)
	}
	if instr {
		if tc.active() {
			sp := Span{Kind: SpanParse, SFL: h.SFL, Start: t, Dur: time.Since(t)}
			if h.Secret() {
				sp.Flags |= FlagSecretBody
			}
			tc.span(sp)
		}
		t = time.Now()
	}
	// (R5-6) recover the flow key.
	kf, keyHit, note, err := e.receiveFlowKey(h.SFL, dg.Source, dg.Destination)
	if instr {
		d := time.Since(t)
		if s != nil {
			if keyHit {
				s.Stages[StageKeyHit] = d
			} else {
				s.Stages[StageKeyMiss] = d
			}
		}
		if tc.active() {
			sp := Span{Kind: SpanFlowKey, SFL: h.SFL, Start: t, Dur: d,
				Flags: note.flags(), Attr: uint64(note.Attempts)}
			if keyHit {
				sp.Flags |= FlagKeyHit
			}
			if err != nil {
				sp.Drop = DropReasonOf(err)
				if sp.Drop == DropNone {
					sp.Drop = DropKeying
				}
			}
			tc.span(sp)
		}
	}
	if err != nil {
		// The overload sheds carry their own reason; everything else on
		// this path is a keying failure.
		reason := DropReasonOf(err)
		if reason == DropNone {
			reason = DropKeying
		}
		e.metrics.drop(reason)
		e.prefilterObserveDrop(dg.Source, reason)
		return nil, fmt.Errorf("%w: flow from %q: %w", ErrKeying, dg.Source, err)
	}
	// (R7-11) the suite owns decryption and authentication: legacy
	// suites decrypt-then-verify (the MAC covers the plaintext body,
	// hoisted per the package comment), AEAD suites open the sealed box
	// in one pass. Sentinel errors map straight onto drop reasons.
	if tc.active() {
		t = time.Now()
	}
	dst, body, err = suite.OpenAppend(dst, h, kf, body, s)
	if tc.active() {
		sp := Span{Kind: SpanCrypto, SFL: h.SFL, Start: t, Dur: time.Since(t),
			Attr: uint64(len(body))}
		if h.Secret() {
			sp.Flags |= FlagSecretBody
		}
		if err != nil {
			sp.Drop = DropReasonOf(err)
			if sp.Drop == DropNone {
				sp.Drop = DropDecrypt
			}
		}
		tc.span(sp)
	}
	if err != nil {
		reason := DropReasonOf(err)
		if reason == DropNone {
			reason = DropDecrypt
		}
		e.metrics.drop(reason)
		e.prefilterObserveDrop(dg.Source, reason)
		return nil, err
	}
	// Optional exact-duplicate suppression (extension). A datagram is
	// only accepted with its signature recorded: at the budget hard
	// limit the newcomer is refused, never admitted unrecorded and never
	// traded against a resident signature (see ReplayVerdict).
	if e.rc != nil {
		if tc.active() {
			t = time.Now()
		}
		verdict := e.rc.Check(dg.Source, &h, now)
		if tc.active() {
			sp := Span{Kind: SpanReplay, SFL: h.SFL, Start: t, Dur: time.Since(t)}
			switch verdict {
			case ReplayDuplicate:
				sp.Drop = DropReplay
			case ReplayRefused:
				sp.Drop = DropReplayBudget
				sp.Flags |= FlagBudgetRefused
			}
			tc.span(sp)
		}
		switch verdict {
		case ReplayDuplicate:
			e.metrics.drop(DropReplay)
			return nil, ErrReplay
		case ReplayRefused:
			e.metrics.drop(DropReplayBudget)
			e.maybeRelievePressure(now)
			return nil, fmt.Errorf("%w: from %q", ErrReplayBudget, dg.Source)
		}
	}
	e.metrics.received.Add(1)
	e.metrics.receivedBytes.Add(uint64(len(body)))
	e.metrics.opensBySuite[h.Cipher].Add(1)
	if copyBody && !h.Secret() {
		return append(dst, body...), nil
	}
	if h.Secret() && copyBody {
		return dst, nil
	}
	return body, nil
}

// Receive blocks for the next datagram from the transport and opens it.
// Rejected datagrams return an error; callers typically log and continue.
// A transport.ErrClosed error means the endpoint is shut down.
func (e *Endpoint) Receive() (transport.Datagram, error) {
	dg, err := e.cfg.Transport.Receive()
	if err != nil {
		return transport.Datagram{}, err
	}
	return e.Open(dg)
}

// ReceiveValid loops until a datagram passes all checks or the transport
// closes, counting rejections in Metrics.
func (e *Endpoint) ReceiveValid() (transport.Datagram, error) {
	for {
		dg, err := e.Receive()
		if err == nil {
			return dg, nil
		}
		if errors.Is(err, transport.ErrClosed) {
			return transport.Datagram{}, err
		}
	}
}
