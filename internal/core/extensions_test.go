package core

import (
	"errors"
	"testing"
	"time"

	"fbs/internal/cert"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// TestRekeyPolicyPacketLimit checks the Section 5.2 key wear-out story:
// a policy can rekey a flow by minting a new sfl after a packet budget.
func TestRekeyPolicyPacketLimit(t *testing.T) {
	f := newFAMWithSeed(ThresholdPolicy{Threshold: time.Hour, MaxPackets: 3}, 64, 9)
	id := FlowID{Src: "a", Dst: "b", SrcPort: 77}
	var sfls []SFL
	now := famEpoch
	for i := 0; i < 7; i++ {
		sfl, _ := f.Classify(id, now, 100)
		sfls = append(sfls, sfl)
		now = now.Add(time.Second)
	}
	// Packets 0,1,2 in flow one; 3,4,5 in flow two; 6 in flow three.
	if sfls[0] != sfls[2] || sfls[3] != sfls[5] {
		t.Fatalf("flows fragmented wrongly: %v", sfls)
	}
	if sfls[2] == sfls[3] || sfls[5] == sfls[6] {
		t.Fatalf("wear-out limit did not rekey: %v", sfls)
	}
}

func TestRekeyPolicyByteLimit(t *testing.T) {
	f := newFAMWithSeed(ThresholdPolicy{Threshold: time.Hour, MaxBytes: 1000}, 64, 9)
	id := FlowID{Src: "a", Dst: "b"}
	s1, _ := f.Classify(id, famEpoch, 600)
	s2, _ := f.Classify(id, famEpoch, 600) // 600 < 1000: still flow one
	s3, _ := f.Classify(id, famEpoch, 600) // 1200 >= 1000: rekey
	if s1 != s2 {
		t.Fatal("flow split before byte budget")
	}
	if s2 == s3 {
		t.Fatal("byte budget did not rekey")
	}
}

// TestRekeyEndToEnd: the wear-out rekey is invisible to the peer — the
// new flow keys itself with zero messages.
func TestRekeyEndToEnd(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) {
		c.Policy = ThresholdPolicy{Threshold: time.Hour, MaxPackets: 2}
	})
	var sfls []SFL
	for i := 0; i < 6; i++ {
		if err := a.SendTo("bob", []byte("wear"), true); err != nil {
			t.Fatal(err)
		}
		dg, err := b.cfg.Transport.Receive()
		if err != nil {
			t.Fatal(err)
		}
		var h Header
		if _, err := h.Decode(dg.Payload); err != nil {
			t.Fatal(err)
		}
		sfls = append(sfls, h.SFL)
		if _, err := b.Open(dg); err != nil {
			t.Fatalf("datagram %d rejected after rekey: %v", i, err)
		}
	}
	distinct := map[SFL]bool{}
	for _, s := range sfls {
		distinct[s] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("expected 3 flows over 6 datagrams with MaxPackets=2, got %d (%v)", len(distinct), sfls)
	}
}

func TestAlgorithmRestrictions(t *testing.T) {
	w := newWorld(t)
	a, _, net := endpointPair(t, w, nil) // sender: keyed-MD5, DES
	strictRaw, err := net.Attach("strict", 64)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NewEndpoint(Config{
		Identity:      w.principal(t, "strict"),
		Transport:     strictRaw,
		Directory:     w.dir,
		Verifier:      w.ver,
		Clock:         w.clock,
		AcceptMACs:    []cryptolib.MACID{cryptolib.MACHMACMD5},
		AcceptCiphers: []CipherID{Cipher3DES},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { strict.Close() })

	sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "strict", Payload: []byte("x")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Open(sealed); !errors.Is(err, ErrAlgorithmRejected) {
		t.Fatalf("err = %v, want ErrAlgorithmRejected", err)
	}
	if strict.Metrics().RejectedAlgorithm != 1 {
		t.Fatal("algorithm rejection not counted")
	}
	// A matching sender passes.
	okRaw, err := net.Attach("conformant", 64)
	if err != nil {
		t.Fatal(err)
	}
	conformant, err := NewEndpoint(Config{
		Identity:  w.principal(t, "conformant"),
		Transport: okRaw,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
		MAC:       cryptolib.MACHMACMD5,
		Cipher:    Cipher3DES,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conformant.Close() })
	sealed, err = conformant.Seal(transport.Datagram{Source: "conformant", Destination: "strict", Payload: []byte("y")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Open(sealed); err != nil {
		t.Fatalf("conformant datagram rejected: %v", err)
	}
	// Plaintext (MAC-only) datagrams ignore the cipher restriction.
	sealed, err = conformant.Seal(transport.Datagram{Source: "conformant", Destination: "strict", Payload: []byte("z")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Open(sealed); err != nil {
		t.Fatalf("MAC-only datagram rejected: %v", err)
	}
}

func TestStartSweeper(t *testing.T) {
	w := newWorld(t)
	a, _, _ := endpointPair(t, w, func(c *Config) {
		c.Policy = ThresholdPolicy{Threshold: time.Minute}
	})
	if err := a.SendTo("bob", []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	if a.ActiveFlows() != 1 {
		t.Fatal("no active flow recorded")
	}
	// Expire the flow in simulated time, then let the background
	// sweeper collect it.
	w.clock.Advance(2 * time.Minute)
	stop := a.StartSweeper(5 * time.Millisecond)
	defer stop()
	deadline := time.After(2 * time.Second)
	for a.ActiveFlows() != 0 {
		select {
		case <-deadline:
			t.Fatal("sweeper never expired the flow")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	stop()
	stop() // idempotent
	w.clock.Advance(-2 * time.Minute)
}

// TestEndpointWithNetworkDirectory wires the full Figure 5 fetch path:
// a PVC miss goes to a directory server over the same datagram network,
// through the secure flow bypass.
func TestEndpointWithNetworkDirectory(t *testing.T) {
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})

	// The directory server holds the published certificates.
	serverTr, err := net.Attach("cert-server", 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serverTr.Close() })
	go cert.NewDirectoryServer(serverTr, w.dir).Serve()

	mkEndpoint := func(name principal.Address) *Endpoint {
		// Each endpoint gets its own directory-client transport
		// attachment, distinct from its FBS transport.
		dirTr, err := net.Attach(name+"-dirclient", 64)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dirTr.Close() })
		netdir := cert.NewNetworkDirectory(dirTr, "cert-server")
		tr, err := net.Attach(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(Config{
			Identity:  w.principal(t, name),
			Transport: tr,
			Directory: netdir,
			Verifier:  w.ver,
			Clock:     w.clock,
			Bypass: func(peer principal.Address) bool {
				return peer == "cert-server"
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	a := mkEndpoint("nd-alice")
	b := mkEndpoint("nd-bob")
	if err := a.SendTo("nd-bob", []byte("keyed via the network directory"), true); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReceiveValid()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "keyed via the network directory" {
		t.Fatalf("payload %q", got.Payload)
	}
	// The fetch happened over the wire exactly once per side.
	ks, _, _, _ := a.KeyStats()
	if ks.CertFetches != 1 {
		t.Fatalf("sender cert fetches = %d, want 1", ks.CertFetches)
	}
}

// Footnote 7: the flow key caches index on S as well as (sfl, D) because
// principals may be multi-homed. Model a host with two addresses sharing
// one private value: flows from its two addresses must key differently
// and coexist in the receiver's RFKC.
func TestMultiHomedPrincipal(t *testing.T) {
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})
	// One private value, two enrolled addresses.
	base := w.principal(t, "mh-base")
	_ = base
	priv, err := cryptolib.TestGroup.GeneratePrivate()
	if err != nil {
		t.Fatal(err)
	}
	var eps [2]*Endpoint
	for i, addr := range []principal.Address{"mh-if0", "mh-if1"} {
		id, err := principal.NewIdentityWithPrivate(addr, cryptolib.TestGroup, priv)
		if err != nil {
			t.Fatal(err)
		}
		c, err := w.ca.Issue(id, w.clock.Now().Add(-time.Hour), w.clock.Now().Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		w.dir.Publish(c)
		tr, err := net.Attach(addr, 64)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(Config{
			Identity: id, Transport: tr, Directory: w.dir, Verifier: w.ver, Clock: w.clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
	}
	trB, err := net.Attach("mh-bob", 64)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewEndpoint(Config{
		Identity: w.principal(t, "mh-bob"), Transport: trB,
		Directory: w.dir, Verifier: w.ver, Clock: w.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bob.Close() })

	// Both interfaces speak to bob; both must verify independently.
	s0, err := eps[0].Seal(transport.Datagram{Source: "mh-if0", Destination: "mh-bob", Payload: []byte("via if0")}, true)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := eps[1].Seal(transport.Datagram{Source: "mh-if1", Destination: "mh-bob", Payload: []byte("via if1")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Open(s0); err != nil {
		t.Fatalf("if0 rejected: %v", err)
	}
	if _, err := bob.Open(s1); err != nil {
		t.Fatalf("if1 rejected: %v", err)
	}
	// Even with an identical sfl, the two interfaces' flow keys differ
	// (S is part of the derivation).
	var h0, h1 Header
	h0.Decode(s0.Payload)
	h1.Decode(s1.Payload)
	master, err := eps[0].ks.MasterKey("mh-bob")
	if err != nil {
		t.Fatal(err)
	}
	k0 := FlowKey(cryptolib.HashMD5, h0.SFL, master, "mh-if0", "mh-bob")
	k1 := FlowKey(cryptolib.HashMD5, h0.SFL, master, "mh-if1", "mh-bob")
	if k0 == k1 {
		t.Fatal("multi-homed interfaces share a flow key for the same sfl")
	}
	// And the RFKC holds both without conflict (different S → different
	// cache keys).
	if s := bob.RFKCStats(); s.Installs < 2 {
		t.Fatalf("RFKC installed %d keys, want 2", s.Installs)
	}
}

// The true "FBS NOP" configuration of Figure 8: MAC and encryption
// nullified, everything else (FAM, sfl, caches, header) running. It
// measures the protocol's non-cryptographic overhead and provides no
// security — the test pins both facts.
func TestNOPConfiguration(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) { c.MAC = cryptolib.MACNull })
	if err := a.SendTo("bob", []byte("nop datagram"), false); err != nil {
		t.Fatal(err)
	}
	got, err := b.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "nop datagram" {
		t.Fatalf("payload %q", got.Payload)
	}
	// All protocol machinery ran...
	if a.FAMStats().FlowsCreated != 1 {
		t.Fatal("NOP skipped flow association")
	}
	// ...but there is no protection: corruption passes.
	sealed, _ := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("tamper me")}, false)
	sealed.Payload[len(sealed.Payload)-1] ^= 0xFF
	if _, err := b.Open(sealed); err != nil {
		t.Fatalf("NOP mode rejected a datagram (it must accept everything): %v", err)
	}
}
