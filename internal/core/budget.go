package core

import "sync/atomic"

// The paper's security state is all soft (Section 4): losing any cache
// entry costs recomputation, never correctness. The converse threat —
// an adversary *creating* state faster than the sweeper reclaims it —
// is what this file bounds. Every soft-state table (FAM, replay
// windows, and the four cache levels PVC/MKC/TFKC/RFKC) reports its
// per-entry cost to one shared Budget; crossing the high-water mark
// puts the endpoint under pressure (sweeps run with a tightened
// threshold), and the hard limit is never exceeded: installs that would
// cross it are either refused (the state stays uncached — pure soft
// state makes that always safe) or satisfied by evicting an existing
// entry, and flow admission sheds datagrams that would need fresh state
// (DropStateBudget).

// Approximate per-entry footprints, in bytes, that the soft-state
// tables charge against the budget. They deliberately round up: the
// budget is a DoS bound, not an allocator.
const (
	// CostFAMEntry covers one flow state table slot (FSTEntry plus its
	// share of stripe overhead).
	CostFAMEntry = 160
	// CostReplayEntry covers one replay-window signature (map key,
	// timestamp, bucket overhead).
	CostReplayEntry = 96
	// CostFlowKeyEntry covers one TFKC/RFKC slot (cache key + 16-byte
	// flow key).
	CostFlowKeyEntry = 64
	// CostMasterKeyEntry covers one MKC slot.
	CostMasterKeyEntry = 64
	// CostCertEntry covers one PVC slot: a parsed certificate with its
	// public value.
	CostCertEntry = 512
)

// BudgetLevel orders the budget's occupancy bands.
type BudgetLevel uint8

const (
	// BudgetNormal: below the high-water mark; no intervention.
	BudgetNormal BudgetLevel = iota
	// BudgetPressure: above high water; sweeps run in pressure mode
	// (tightened THRESHOLD) until occupancy falls back.
	BudgetPressure
	// BudgetHard: at the hard limit; new state is admission-controlled
	// — installs evict or are refused, and datagrams requiring fresh
	// expensive state are shed with DropStateBudget.
	BudgetHard
)

// String names the level for logs and metrics.
func (l BudgetLevel) String() string {
	switch l {
	case BudgetNormal:
		return "normal"
	case BudgetPressure:
		return "pressure"
	case BudgetHard:
		return "hard"
	}
	return "unknown"
}

// BudgetStats is a snapshot of budget occupancy and activity.
type BudgetStats struct {
	// Used and Peak are current and high-water-mark charged bytes.
	Used, Peak int64
	// HighWater and HardLimit echo the configured marks.
	HighWater, HardLimit int64
	// PressureEvents counts upward crossings of the high-water mark.
	PressureEvents uint64
	// Denials counts TryCharge refusals — installs or admissions turned
	// away at the hard limit.
	Denials uint64
}

// Budget is the shared soft-state memory budget. All methods are safe
// for concurrent use and lock-free; the hot path pays one atomic add
// per state install/release and one atomic load per level check.
//
// A nil *Budget is valid everywhere and disables all accounting, so
// components take the pointer unconditionally.
type Budget struct {
	high, hard int64
	used       atomic.Int64
	peak       atomic.Int64
	pressure   atomic.Uint64
	denials    atomic.Uint64
}

// NewBudget builds a budget with the given marks, in bytes. hardLimit
// must be positive; highWater <= 0 defaults to 3/4 of the hard limit,
// and is clamped below it.
func NewBudget(highWater, hardLimit int64) *Budget {
	if hardLimit <= 0 {
		return nil
	}
	if highWater <= 0 || highWater > hardLimit {
		highWater = hardLimit * 3 / 4
	}
	return &Budget{high: highWater, hard: hardLimit}
}

// updatePeak folds a new occupancy into the peak watermark.
func (b *Budget) updatePeak(used int64) {
	for {
		p := b.peak.Load()
		if used <= p || b.peak.CompareAndSwap(p, used) {
			return
		}
	}
}

// Charge adds n bytes unconditionally (used by overwrite-in-place
// installs whose net growth was already admitted). It records
// high-water crossings.
func (b *Budget) Charge(n int64) {
	if b == nil || n == 0 {
		return
	}
	after := b.used.Add(n)
	b.updatePeak(after)
	if after >= b.high && after-n < b.high {
		b.pressure.Add(1)
	}
}

// TryCharge adds n bytes only if the hard limit holds, reporting
// whether it did. A nil budget always admits.
func (b *Budget) TryCharge(n int64) bool {
	if b == nil || n <= 0 {
		return true
	}
	for {
		used := b.used.Load()
		if used+n > b.hard {
			b.denials.Add(1)
			return false
		}
		if b.used.CompareAndSwap(used, used+n) {
			b.updatePeak(used + n)
			if used+n >= b.high && used < b.high {
				b.pressure.Add(1)
			}
			return true
		}
	}
}

// Release returns n bytes to the budget.
func (b *Budget) Release(n int64) {
	if b == nil || n == 0 {
		return
	}
	b.used.Add(-n)
}

// Used returns the currently charged bytes.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Level classifies current occupancy. The hard band starts one
// smallest-entry short of the limit: once no further CostFlowKeyEntry
// fits, admission control is in force.
func (b *Budget) Level() BudgetLevel {
	if b == nil {
		return BudgetNormal
	}
	used := b.used.Load()
	switch {
	case used+CostFlowKeyEntry > b.hard:
		return BudgetHard
	case used >= b.high:
		return BudgetPressure
	}
	return BudgetNormal
}

// UnderPressure reports whether occupancy is at or above high water.
func (b *Budget) UnderPressure() bool {
	return b != nil && b.used.Load() >= b.high
}

// Stats snapshots the budget counters. Safe on nil (all zero).
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	return BudgetStats{
		Used:           b.used.Load(),
		Peak:           b.peak.Load(),
		HighWater:      b.high,
		HardLimit:      b.hard,
		PressureEvents: b.pressure.Load(),
		Denials:        b.denials.Load(),
	}
}
