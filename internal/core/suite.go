package core

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"fbs/internal/cryptolib"
)

// The paper prescribes an algorithm identification field in the security
// flow header precisely so flows can negotiate ciphers per flow (Section
// 5.2, "for generality"); the 1997 implementation then hardwired the one
// choice it measured (DES-CBC + keyed MD5). Suite is the seam that makes
// the choice a parameter: everything the data plane needs from a cipher
// suite — wire overhead, IV/nonce discipline, the MAC construction, and
// the seal/open body transforms themselves — hangs off this interface,
// keyed by the header's cipher nibble through a fixed 16-slot registry.
//
// Two families implement it. The legacy suites (none, DES, 3DES) keep
// the paper's separate MAC-then-encrypt passes (including the Section
// 5.3 single-pass fusion) bit-for-bit, so the committed golden vectors
// still hold. The AEAD suites (AES-128-GCM, ChaCha20-Poly1305) collapse
// encrypt+MAC into one sealed-box pass: the 16-byte MAC value field
// carries the AEAD tag, the body is exact-length ciphertext (no
// padding), and the header prefix rides along as AAD so algorithm
// downgrade stays foreclosed exactly as macInput forecloses it for the
// legacy suites.
type Suite interface {
	// ID is the registry slot: the header's cipher nibble.
	ID() CipherID
	// Name is the conventional suite name (stable; used as a metric label
	// and in bench artifacts).
	Name() string
	// AEAD reports whether integrity is intrinsic (tag in the MAC value
	// field) rather than a separate MAC construction.
	AEAD() bool
	// Overhead is the worst-case bytes sealing adds to a payload.
	Overhead() int
	// WireAlg maps the endpoint's configured MAC/mode onto what this
	// suite actually puts in the header: legacy suites pass them through,
	// AEAD suites force (MACAEAD, 0).
	WireAlg(mac cryptolib.MACID, mode cryptolib.Mode) (cryptolib.MACID, cryptolib.Mode)
	// ValidHeader reports whether the MAC/mode bytes of a decoded header
	// are structurally possible for this suite. It is a structural check,
	// not receiver policy — policy lives in Config.AcceptMACs/AcceptCiphers.
	ValidHeader(h Header) bool
	// DeriveIV returns the per-datagram IV (legacy, 8 bytes) or nonce
	// (AEAD, 12 bytes) this suite derives from the header. Diagnostic
	// seam for golden/framing tests; the hot paths inline it.
	DeriveIV(h Header) []byte
	// SealAppend appends the protected body to dst and patches the MAC
	// value (or AEAD tag) into the already-encoded header at
	// dst[hdrOff+macValueOffset:]. h carries the wire algorithm fields
	// this suite's WireAlg chose. When s is non-nil the packet is
	// sampled: MAC/crypt stage timings are recorded.
	SealAppend(dst []byte, hdrOff int, h Header, kf [16]byte, payload []byte, singlePass bool, s *PacketSample) ([]byte, error)
	// OpenAppend recovers and authenticates the body. For a secret body
	// the plaintext is appended to dst; for a cleartext body the returned
	// body aliases the input. Errors are the endpoint's sentinel errors
	// (ErrDecrypt, ErrBadMAC) — the caller maps them to drop reasons.
	OpenAppend(dst []byte, h Header, kf [16]byte, body []byte, s *PacketSample) (newDst []byte, plain []byte, err error)
}

// maxAlgNibble bounds the IDs that fit the header's packed algorithm
// byte: cipher in the high nibble, mode in the low nibble.
const maxAlgNibble = 0x0f

// suiteRegistry holds one slot per cipher nibble value.
var suiteRegistry [maxAlgNibble + 1]Suite

// RegisterSuite installs a suite in the registry slot its ID names.
// Registration happens at init time; collisions and out-of-range IDs are
// programming errors.
func RegisterSuite(s Suite) {
	id := s.ID()
	if id > maxAlgNibble {
		panic(fmt.Sprintf("core: suite %q id %d exceeds the cipher nibble", s.Name(), id))
	}
	if suiteRegistry[id] != nil {
		panic(fmt.Sprintf("core: suite id %d registered twice (%q, %q)", id, suiteRegistry[id].Name(), s.Name()))
	}
	suiteRegistry[id] = s
}

// SuiteByID returns the registered suite for a cipher ID, or nil.
func SuiteByID(id CipherID) Suite {
	if id > maxAlgNibble {
		return nil
	}
	return suiteRegistry[id]
}

// Suites returns the registered suites in ID order.
func Suites() []Suite {
	out := make([]Suite, 0, 8)
	for _, s := range suiteRegistry {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

func init() {
	RegisterSuite(&legacySuite{id: CipherNone, name: "none"})
	RegisterSuite(&legacySuite{id: CipherDES, name: "DES"})
	RegisterSuite(&legacySuite{id: Cipher3DES, name: "3DES"})
	RegisterSuite(&aeadSuite{id: CipherAES128GCM, name: "AES-128-GCM", new: newGCM})
	RegisterSuite(&aeadSuite{id: CipherChaCha20Poly1305, name: "ChaCha20-Poly1305", new: newChaCha})
}

// --- legacy suites: the paper's MAC-then-encrypt construction ---

// legacySuite wraps the paper-faithful construction: a separate MAC
// (selected by the header's MAC byte) over confounder | timestamp |
// plaintext, then block encryption in the header's mode, PKCS#7 padded,
// IV from the duplicated confounder. CipherNone is the MAC-only member:
// it seals cleartext bodies but cannot encrypt.
type legacySuite struct {
	id   CipherID
	name string
}

func (l *legacySuite) ID() CipherID  { return l.id }
func (l *legacySuite) Name() string  { return l.name }
func (l *legacySuite) AEAD() bool    { return false }
func (l *legacySuite) Overhead() int { return HeaderSize + cryptolib.BlockSize }
func (l *legacySuite) WireAlg(mac cryptolib.MACID, mode cryptolib.Mode) (cryptolib.MACID, cryptolib.Mode) {
	return mac, mode
}

// ValidHeader: any implemented MAC construction with any implemented
// block mode. IDs beyond those never decrypt or verify — rejecting them
// up front turns "silently truncated nibble" into a typed DropAlgorithm.
func (l *legacySuite) ValidHeader(h Header) bool {
	return h.MAC <= cryptolib.MACNull && h.Mode <= cryptolib.OFB
}

func (l *legacySuite) DeriveIV(h Header) []byte {
	iv := h.iv()
	return iv[:]
}

func (l *legacySuite) SealAppend(dst []byte, hdrOff int, h Header, kf [16]byte, payload []byte, singlePass bool, s *PacketSample) ([]byte, error) {
	var t time.Time
	if !h.Secret() {
		// (S6) MAC over confounder | timestamp | plaintext body. MACNull
		// writes all zeros, which the encoded header already holds.
		dst = append(dst, payload...)
		if h.MAC != cryptolib.MACNull {
			// Copies declared inside the branch so the variadic MAC call
			// only forces a heap allocation when a MAC is computed; the
			// NOP configuration stays allocation-free.
			if s != nil {
				t = time.Now()
			}
			kfc, mic := kf, h.macInput()
			mac := h.MAC.Compute(kfc[:], mic[:], payload)
			copy(dst[hdrOff+macValueOffset:], mac[:MACLen])
			if s != nil {
				s.Stages[StageMAC] = time.Since(t)
			}
		}
		return dst, nil
	}
	kfs, mis := kf, h.macInput()
	c, err := h.Cipher.newCipher(kfs[:])
	if err != nil {
		return nil, err
	}
	bs := c.BlockSize()
	bodyOff := len(dst)
	dst = cryptolib.AppendPadded(dst, payload, bs)
	padded := dst[bodyOff:]
	iv := h.iv()
	if singlePass && h.Mode == cryptolib.CBC {
		// Section 5.3: roll MAC computation and encryption into one pass
		// over the data. CBC chaining fused with MAC absorption; other
		// modes fall back to two passes below. The fused pass is charged
		// to StageCrypt (StageMAC stays zero — there is no separate MAC
		// traversal to time).
		if s != nil {
			t = time.Now()
		}
		mac := h.MAC.NewStream(kfs[:])
		mac.Write(mis[:])
		prev := iv
		bodyLen := len(payload)
		for off := 0; off < len(padded); off += bs {
			block := padded[off : off+bs]
			// The MAC covers only the original body, not the padding.
			if off < bodyLen {
				end := off + bs
				if end > bodyLen {
					end = bodyLen
				}
				mac.Write(padded[off:end])
			}
			for j := 0; j < bs; j++ {
				block[j] ^= prev[j]
			}
			c.EncryptBlock(block, block)
			copy(prev[:], block)
		}
		if h.MAC != cryptolib.MACNull {
			copy(dst[hdrOff+macValueOffset:], mac.Sum()[:MACLen])
		}
		if s != nil {
			s.Stages[StageCrypt] = time.Since(t)
		}
		return dst, nil
	}
	// (S6) MAC, then (S8-9) encrypt in place.
	if h.MAC != cryptolib.MACNull {
		if s != nil {
			t = time.Now()
		}
		mac := h.MAC.Compute(kfs[:], mis[:], payload)
		copy(dst[hdrOff+macValueOffset:], mac[:MACLen])
		if s != nil {
			s.Stages[StageMAC] = time.Since(t)
		}
	}
	if s != nil {
		t = time.Now()
	}
	if _, err := cryptolib.EncryptMode(c, h.Mode, iv[:], padded, padded); err != nil {
		return nil, err
	}
	if s != nil {
		s.Stages[StageCrypt] = time.Since(t)
	}
	return dst, nil
}

func (l *legacySuite) OpenAppend(dst []byte, h Header, kf [16]byte, body []byte, s *PacketSample) ([]byte, []byte, error) {
	var t time.Time
	// (R10-11, hoisted — see package comment) decrypt before verifying,
	// since the MAC covers the plaintext body.
	if h.Secret() {
		if s != nil {
			t = time.Now()
		}
		kfs := kf
		c, err := h.Cipher.newCipher(kfs[:])
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
		}
		iv := h.iv()
		// Stage the ciphertext at the end of dst and decrypt in place
		// (DecryptMode permits aliasing), so the append path needs no
		// scratch buffer.
		off := len(dst)
		dst = append(dst, body...)
		plain := dst[off:]
		if _, err := cryptolib.DecryptMode(c, h.Mode, iv[:], plain, plain); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
		}
		unpadded, err := cryptolib.Unpad(plain, c.BlockSize())
		if err != nil {
			// Bad padding means corruption or wrong key; report it as
			// an authentication failure to avoid a padding oracle.
			return nil, nil, ErrBadMAC
		}
		dst = dst[:off+len(unpadded)]
		body = unpadded
		if s != nil {
			s.Stages[StageCrypt] = time.Since(t)
		}
	}
	// (R7-9) verify the MAC, using the construction the header's
	// algorithm identification names (gated upstream by checkAlg).
	// MACNull verifies trivially (Verify returns true unconditionally);
	// skipping the call keeps the variadic arguments from forcing heap
	// allocations on the NOP path.
	if h.MAC != cryptolib.MACNull {
		if s != nil {
			t = time.Now()
		}
		kfc, mic := kf, h.macInput()
		ok := h.MAC.Verify(kfc[:], h.MACValue[:], mic[:], body)
		if s != nil {
			s.Stages[StageMAC] = time.Since(t)
		}
		if !ok {
			return nil, nil, ErrBadMAC
		}
	}
	return dst, body, nil
}

// --- AEAD suites: one sealed-box pass ---

// sealedBox is the slice-append subset of crypto/cipher.AEAD the suites
// need; crypto/cipher's GCM satisfies it directly, as does cryptolib's
// from-scratch ChaCha20-Poly1305.
type sealedBox interface {
	Seal(dst, nonce, plaintext, additionalData []byte) []byte
	Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error)
}

func newGCM(kf [16]byte) (sealedBox, error) {
	blk, err := aes.NewCipher(kf[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(blk)
}

// chachaKeyLabel expands the 16-byte flow key to the 32 bytes ChaCha20
// requires: K_f followed by MD5(K_f | label). The refmodel reassembles
// the same expansion independently from the shared MD5 primitive.
//
// Effective strength note: the upper 16 bytes are a public function of
// the lower, so the 256-bit ChaCha20 key carries only the 128 bits of
// entropy in K_f — the suite's effective strength is capped at 128 bits
// by the flow key, exactly like AES-128-GCM. The expansion exists only
// to fill the cipher's key size, not to add strength, and an attacker
// who learns K_f learns the whole key regardless of the expansion
// function, so the MD5 here is a width adapter, not a security
// boundary.
var chachaKeyLabel = []byte("fbs chacha20poly1305 key expand v1")

func newChaCha(kf [16]byte) (sealedBox, error) {
	var key [32]byte
	copy(key[:16], kf[:])
	second := cryptolib.Digest(cryptolib.HashMD5, kf[:], chachaKeyLabel)
	copy(key[16:], second)
	return cryptolib.NewChaCha20Poly1305(key[:])
}

// aeadSuite carries an AEAD construction over the unchanged 36-byte
// header: the MAC byte is MACAEAD, the mode nibble is zero, the MAC
// value field holds the 16-byte tag, and the body is exact-length
// ciphertext (no padding — Overhead is just the header). The nonce is
// confounder(4) | timestamp(4) | low 32 bits of sfl(4), all big-endian.
//
// Nonce discipline: an AEAD nonce must be UNIQUE under the key, not
// merely statistically random — 32 random bits birthday-collide around
// 2^16 datagrams, and nonce reuse under GCM forfeits both
// confidentiality and the authentication key. So for AEAD flows the
// sender does not draw a random confounder: the confounder field
// carries the flow's monotonic datagram counter (maintained in the flow
// state entry, incremented under the stripe lock; see sealFlowAppend).
// Under one K_f (one sfl) the nonce can then only repeat if 2^32
// datagrams are sealed within a single timestamp minute; rekeying
// allocates a fresh sfl and thus a fresh K_f, and a restarted endpoint
// randomises its sfl seed, so no (key, counter) pair ever resumes. The
// receiver reassembles the nonce from the header alone and needs no
// counter state. The sfl low bits separate concurrent flows that could
// share counter and timestamp.
//
// The 12-byte macInput prefix rides as AAD, so flipping any algorithm
// byte breaks the tag exactly as it breaks the legacy MAC.
type aeadSuite struct {
	id   CipherID
	name string
	new  func(kf [16]byte) (sealedBox, error)

	// boxes caches constructed AEAD instances by flow key. Key schedule
	// setup (AES expansion + GCM table init, ChaCha key widening)
	// dominates small-datagram seal/open cost, and a flow keeps one K_f
	// for its whole life, so the cache turns a per-datagram cost into a
	// per-flow one. Both cached implementations are stateless after
	// construction (stdlib GCM documents concurrent use; cryptolib's
	// ChaCha20-Poly1305 holds only the key), so one instance serves all
	// goroutines. Holding an expanded key in memory exposes nothing the
	// flow-key caches don't already hold.
	mu    sync.RWMutex
	boxes map[[16]byte]sealedBox
}

// aeadBoxCacheMax bounds the per-suite instance cache. Eviction is a
// wholesale reset: at worst every live flow re-expands its key once per
// aeadBoxCacheMax distinct keys seen, which keeps the common case a
// single RLock probe with no bookkeeping.
const aeadBoxCacheMax = 4096

// box returns the cached AEAD instance for kf, constructing it on first
// use.
func (a *aeadSuite) box(kf [16]byte) (sealedBox, error) {
	a.mu.RLock()
	box, ok := a.boxes[kf]
	a.mu.RUnlock()
	if ok {
		return box, nil
	}
	box, err := a.new(kf)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.boxes == nil || len(a.boxes) >= aeadBoxCacheMax {
		a.boxes = make(map[[16]byte]sealedBox)
	}
	a.boxes[kf] = box
	a.mu.Unlock()
	return box, nil
}

func (a *aeadSuite) ID() CipherID  { return a.id }
func (a *aeadSuite) Name() string  { return a.name }
func (a *aeadSuite) AEAD() bool    { return true }
func (a *aeadSuite) Overhead() int { return HeaderSize }
func (a *aeadSuite) WireAlg(cryptolib.MACID, cryptolib.Mode) (cryptolib.MACID, cryptolib.Mode) {
	return cryptolib.MACAEAD, 0
}

func (a *aeadSuite) ValidHeader(h Header) bool {
	return h.MAC == cryptolib.MACAEAD && h.Mode == 0
}

// aeadNonce assembles the 96-bit nonce from the header.
func aeadNonce(h Header) [12]byte {
	var n [12]byte
	binary.BigEndian.PutUint32(n[0:], h.Confounder)
	binary.BigEndian.PutUint32(n[4:], uint32(h.Timestamp))
	binary.BigEndian.PutUint32(n[8:], uint32(h.SFL))
	return n
}

// aeadScratch carries the small per-datagram arrays whose slices cross
// the sealedBox interface boundary. The compiler must assume an
// interface callee retains its arguments, so as locals these would be
// moved to the heap on every seal and open; pooling replaces the
// per-datagram allocations with one Get/Put pair.
type aeadScratch struct {
	nonce [12]byte
	mi    [12]byte
	tag   [MACLen]byte
	aad   []byte
}

var aeadScratchPool = sync.Pool{New: func() any { return new(aeadScratch) }}

func (a *aeadSuite) DeriveIV(h Header) []byte {
	n := aeadNonce(h)
	return n[:]
}

func (a *aeadSuite) SealAppend(dst []byte, hdrOff int, h Header, kf [16]byte, payload []byte, singlePass bool, s *PacketSample) ([]byte, error) {
	box, err := a.box(kf)
	if err != nil {
		return nil, err
	}
	sc := aeadScratchPool.Get().(*aeadScratch)
	defer aeadScratchPool.Put(sc)
	sc.nonce = aeadNonce(h)
	sc.mi = h.macInput()
	nonce, mi := &sc.nonce, &sc.mi
	var t time.Time
	if !h.Secret() {
		// Cleartext body, intrinsic integrity: the tag seals an empty
		// plaintext with header | body as AAD, and lands in the MAC value
		// field like a legacy MAC would.
		dst = append(dst, payload...)
		if s != nil {
			t = time.Now()
		}
		sc.aad = append(sc.aad[:0], mi[:]...)
		sc.aad = append(sc.aad, payload...)
		box.Seal(sc.tag[:0], nonce[:], nil, sc.aad)
		copy(dst[hdrOff+macValueOffset:], sc.tag[:])
		if s != nil {
			s.Stages[StageMAC] = time.Since(t)
		}
		return dst, nil
	}
	// Sealed box in place: append the plaintext plus tag headroom, seal
	// over the appended region (the documented plaintext[:0] aliasing
	// form), then move the tag into the header and truncate the body back
	// to exact ciphertext length. One pass, no padding. Charged to
	// StageCrypt — like the single-pass legacy fusion, there is no
	// separate MAC traversal to time.
	if s != nil {
		t = time.Now()
	}
	bodyOff := len(dst)
	dst = append(dst, payload...)
	var tagRoom [MACLen]byte
	dst = append(dst, tagRoom[:]...)
	sealed := box.Seal(dst[bodyOff:bodyOff], nonce[:], dst[bodyOff:bodyOff+len(payload)], mi[:])
	copy(dst[hdrOff+macValueOffset:], sealed[len(payload):])
	dst = dst[:bodyOff+len(payload)]
	if s != nil {
		s.Stages[StageCrypt] = time.Since(t)
	}
	return dst, nil
}

func (a *aeadSuite) OpenAppend(dst []byte, h Header, kf [16]byte, body []byte, s *PacketSample) ([]byte, []byte, error) {
	box, err := a.box(kf)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	sc := aeadScratchPool.Get().(*aeadScratch)
	defer aeadScratchPool.Put(sc)
	sc.nonce = aeadNonce(h)
	sc.mi = h.macInput()
	nonce, mi := &sc.nonce, &sc.mi
	var t time.Time
	if !h.Secret() {
		if s != nil {
			t = time.Now()
		}
		sc.aad = append(sc.aad[:0], mi[:]...)
		sc.aad = append(sc.aad, body...)
		sc.tag = h.MACValue
		_, err := box.Open(nil, nonce[:], sc.tag[:], sc.aad)
		if s != nil {
			s.Stages[StageMAC] = time.Since(t)
		}
		if err != nil {
			return nil, nil, ErrBadMAC
		}
		return dst, body, nil
	}
	if s != nil {
		t = time.Now()
	}
	// Stage ciphertext | tag at the end of dst and open in place (the
	// documented ciphertext[:0] aliasing form); on success the appended
	// region is exactly the plaintext.
	off := len(dst)
	dst = append(dst, body...)
	dst = append(dst, h.MACValue[:]...)
	plain, err := box.Open(dst[off:off], nonce[:], dst[off:], mi[:])
	if s != nil {
		s.Stages[StageCrypt] = time.Since(t)
	}
	if err != nil {
		// An AEAD open failure is indistinguishably corruption or a wrong
		// key; like the legacy pad check, report it as an authentication
		// failure.
		return nil, nil, ErrBadMAC
	}
	dst = dst[:off+len(plain)]
	return dst, plain, nil
}
