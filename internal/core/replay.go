package core

import (
	"sync"
	"time"
)

// The paper's replay defence is the window-based timestamp check of
// Section 6.2: stateless, loose-synchronisation-only, and deliberately
// imperfect — an attacker replaying within the freshness window succeeds,
// and higher layers (TCP sequencing, application nonces) are expected to
// finish the job.
//
// ReplayCache is an optional extension beyond the paper: it remembers the
// (sfl, confounder, timestamp) triples accepted within the freshness
// window and rejects exact duplicates. The memory is still soft state —
// dropping it merely re-opens the paper's documented in-window replay
// exposure, it never breaks the protocol — so datagram semantics are
// preserved. The paper hints at exactly this trade-off when noting that
// "complete replay protection can only be achieved in high-layer
// protocols".

// replaySig identifies a datagram within the freshness window.
type replaySig struct {
	SFL        SFL
	Confounder uint32
	Timestamp  Timestamp
	MAC        [8]byte // first half of the MAC disambiguates confounder collisions
}

// ReplayCache suppresses exact duplicates inside the freshness window.
// It is safe for concurrent use.
type ReplayCache struct {
	mu     sync.Mutex
	window time.Duration
	seen   map[replaySig]time.Time
	// sweepEvery bounds how often the map is scanned for expiry.
	lastSweep time.Time
}

// NewReplayCache creates a cache whose entries expire after window (use
// the endpoint's freshness window).
func NewReplayCache(window time.Duration) *ReplayCache {
	return &ReplayCache{
		window: window,
		seen:   make(map[replaySig]time.Time),
	}
}

// Seen records the datagram and reports whether an identical one was
// already accepted within the window.
func (r *ReplayCache) Seen(h *Header, now time.Time) bool {
	var sig replaySig
	sig.SFL = h.SFL
	sig.Confounder = h.Confounder
	sig.Timestamp = h.Timestamp
	copy(sig.MAC[:], h.MACValue[:8])

	r.mu.Lock()
	defer r.mu.Unlock()
	if now.Sub(r.lastSweep) > r.window {
		for k, t := range r.seen {
			if now.Sub(t) > r.window {
				delete(r.seen, k)
			}
		}
		r.lastSweep = now
	}
	if t, ok := r.seen[sig]; ok && now.Sub(t) <= r.window {
		return true
	}
	r.seen[sig] = now
	return false
}

// Len returns the number of remembered datagrams (for tests and
// monitoring).
func (r *ReplayCache) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seen)
}
