package core

import (
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/principal"
)

// The paper's replay defence is the window-based timestamp check of
// Section 6.2: stateless, loose-synchronisation-only, and deliberately
// imperfect — an attacker replaying within the freshness window succeeds,
// and higher layers (TCP sequencing, application nonces) are expected to
// finish the job.
//
// ReplayCache is an optional extension beyond the paper: it remembers the
// (sfl, confounder, timestamp) triples accepted within the freshness
// window and rejects exact duplicates. The memory is still soft state —
// dropping it merely re-opens the paper's documented in-window replay
// exposure, it never breaks the protocol — so datagram semantics are
// preserved. The paper hints at exactly this trade-off when noting that
// "complete replay protection can only be achieved in high-layer
// protocols".
//
// Because every accepted datagram adds an entry that only the freshness
// window expires, the replay cache is the softest target for a
// state-holding attack: an authenticated peer churning flows grows it at
// line rate. The cache therefore participates in the shared Budget
// (CostReplayEntry per signature) and tracks per-source occupancy, so
// overload shows up attributed to the peer causing it.

// replaySig identifies a datagram within the freshness window.
type replaySig struct {
	SFL        SFL
	Confounder uint32
	Timestamp  Timestamp
	MAC        [8]byte // first half of the MAC disambiguates confounder collisions
}

// stripe picks the lock stripe for this signature. The confounder is
// already statistically random (it is generator output), so folding in
// the sfl low bits is enough to spread flows across stripes.
func (s replaySig) stripe(mask uint32) uint32 {
	return (s.Confounder ^ uint32(s.SFL)) & mask
}

// replayEntry is what the cache remembers per signature: when it was
// accepted and from whom, so expiry sweeping can keep the per-peer
// occupancy counts exact.
type replayEntry struct {
	at  time.Time
	src principal.Address
}

// replayStripe is one lock stripe: an independently locked shard of the
// signature map plus its share of the per-peer occupancy counts.
type replayStripe struct {
	mu       sync.Mutex
	seen     map[replaySig]replayEntry
	peers    map[principal.Address]int
	refusals uint64
	_        [40]byte
}

// remove deletes sig under the stripe lock, keeping peer counts exact.
func (st *replayStripe) remove(sig replaySig, e replayEntry) {
	delete(st.seen, sig)
	if n := st.peers[e.src] - 1; n > 0 {
		st.peers[e.src] = n
	} else {
		delete(st.peers, e.src)
	}
}

// ReplayStats snapshots replay-window occupancy for EndpointStats and
// /metrics.
type ReplayStats struct {
	// Entries is the number of signatures currently remembered.
	Entries int
	// Peers is the number of distinct sources holding entries.
	Peers int
	// Refusals counts datagrams turned away at the budget hard limit
	// because their signature could not be recorded (ReplayRefused).
	Refusals uint64
}

// ReplayVerdict is the outcome of a replay-window check.
type ReplayVerdict uint8

const (
	// ReplayFresh: first sighting within the window; the signature was
	// recorded and the datagram may be accepted.
	ReplayFresh ReplayVerdict = iota
	// ReplayDuplicate: an identical datagram was already accepted within
	// the window.
	ReplayDuplicate
	// ReplayRefused: the budget hard limit left no room to record the
	// signature, so the datagram must be refused. Accepting it
	// unrecorded — or evicting a resident signature to make room — would
	// re-open an in-window replay: the unrecorded (or evicted) datagram
	// could be replayed and accepted again. Refusal keeps the window
	// sound; the cost is availability, and soft state bounds that cost
	// to one freshness window (the sweep reclaims room as entries
	// expire).
	ReplayRefused
)

// ReplayCache suppresses exact duplicates inside the freshness window.
// It is safe for concurrent use: signatures are partitioned across
// power-of-two lock stripes so datagrams of different flows are checked
// in parallel. Expired entries are swept lazily, at most once per
// window, by whichever Check call notices the sweep is due.
type ReplayCache struct {
	window    time.Duration
	stripes   []replayStripe
	mask      uint32
	lastSweep atomic.Int64 // unix nanos of the last full sweep
	budget    *Budget
}

// NewReplayCache creates a cache whose entries expire after window (use
// the endpoint's freshness window).
func NewReplayCache(window time.Duration) *ReplayCache {
	n := defaultStripeCount(1 << 30) // uncapped by table size
	r := &ReplayCache{
		window:  window,
		stripes: make([]replayStripe, n),
		mask:    uint32(n - 1),
	}
	for i := range r.stripes {
		r.stripes[i].seen = make(map[replaySig]replayEntry)
		r.stripes[i].peers = make(map[principal.Address]int)
	}
	return r
}

// SetBudget charges CostReplayEntry per remembered signature against b.
// Call before the cache serves traffic.
func (r *ReplayCache) SetBudget(b *Budget) { r.budget = b }

// Check records the datagram from src and classifies it. A datagram is
// only ever accepted with its signature recorded: at the budget hard
// limit the newcomer is refused (ReplayRefused) rather than displacing a
// resident signature or passing unrecorded — either of those would let
// an attacker replay the displaced (or unrecorded) datagram within the
// window. A refreshed signature whose previous sighting has expired is
// budget-neutral.
func (r *ReplayCache) Check(src principal.Address, h *Header, now time.Time) ReplayVerdict {
	var sig replaySig
	sig.SFL = h.SFL
	sig.Confounder = h.Confounder
	sig.Timestamp = h.Timestamp
	copy(sig.MAC[:], h.MACValue[:8])

	r.maybeSweep(now)
	st := &r.stripes[sig.stripe(r.mask)]
	st.mu.Lock()
	defer st.mu.Unlock()
	return r.checkLocked(st, src, sig, now)
}

// checkLocked is Check's body with sig already computed and its stripe
// lock already held.
func (r *ReplayCache) checkLocked(st *replayStripe, src principal.Address, sig replaySig, now time.Time) ReplayVerdict {
	if e, ok := st.seen[sig]; ok {
		if now.Sub(e.at) <= r.window {
			return ReplayDuplicate
		}
		// Stale entry for the same signature: refresh in place
		// (budget-neutral).
		st.remove(sig, e)
		st.seen[sig] = replayEntry{at: now, src: src}
		st.peers[src]++
		return ReplayFresh
	}
	if !r.budget.TryCharge(CostReplayEntry) {
		st.refusals++
		return ReplayRefused
	}
	st.seen[sig] = replayEntry{at: now, src: src}
	st.peers[src]++
	return ReplayFresh
}

// CheckRun checks up to batchChunk datagram signatures in one pass: one
// sweep election for the run and one lock acquisition per stripe touched
// rather than one per datagram. Items that land on the same stripe are
// checked in run order, so an intra-run duplicate — two identical
// signatures always share a stripe — is classified exactly as a loop of
// Check calls would classify it; items on different stripes are
// independent, so their grouping order cannot change any verdict.
func (r *ReplayCache) CheckRun(srcs []principal.Address, hs []Header, now time.Time, verdicts []ReplayVerdict) {
	r.maybeSweep(now)
	n := len(hs)
	var sigs [batchChunk]replaySig
	var stripes [batchChunk]uint32
	var done [batchChunk]bool
	for i := 0; i < n; i++ {
		sigs[i].SFL = hs[i].SFL
		sigs[i].Confounder = hs[i].Confounder
		sigs[i].Timestamp = hs[i].Timestamp
		copy(sigs[i].MAC[:], hs[i].MACValue[:8])
		stripes[i] = sigs[i].stripe(r.mask)
	}
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		st := &r.stripes[stripes[i]]
		st.mu.Lock()
		for j := i; j < n; j++ {
			if !done[j] && stripes[j] == stripes[i] {
				verdicts[j] = r.checkLocked(st, srcs[j], sigs[j], now)
				done[j] = true
			}
		}
		st.mu.Unlock()
	}
}

// maybeSweep drops expired entries once the last full sweep is more than
// a window old. The CAS elects a single sweeper; everyone else proceeds
// to their stripe immediately, and the sweeper takes one stripe lock at
// a time so checks on other stripes continue in parallel.
func (r *ReplayCache) maybeSweep(now time.Time) {
	last := r.lastSweep.Load()
	n := now.UnixNano()
	if n-last <= int64(r.window) {
		return
	}
	if !r.lastSweep.CompareAndSwap(last, n) {
		return
	}
	swept := 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for k, e := range st.seen {
			if now.Sub(e.at) > r.window {
				st.remove(k, e)
				swept++
			}
		}
		st.mu.Unlock()
	}
	if swept > 0 {
		r.budget.Release(int64(swept) * CostReplayEntry)
	}
}

// Len returns the number of remembered datagrams (for tests and
// monitoring).
func (r *ReplayCache) Len() int {
	n := 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		n += len(st.seen)
		st.mu.Unlock()
	}
	return n
}

// Stats snapshots occupancy. Safe on nil (all zero).
func (r *ReplayCache) Stats() ReplayStats {
	if r == nil {
		return ReplayStats{}
	}
	var out ReplayStats
	distinct := make(map[principal.Address]struct{})
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		out.Entries += len(st.seen)
		out.Refusals += st.refusals
		for p := range st.peers {
			distinct[p] = struct{}{}
		}
		st.mu.Unlock()
	}
	out.Peers = len(distinct)
	return out
}

// PerPeer returns the current replay-window occupancy per source — the
// first-class budget input the overload plane watches to attribute
// state pressure to the peer creating it.
func (r *ReplayCache) PerPeer() map[principal.Address]int {
	if r == nil {
		return nil
	}
	out := make(map[principal.Address]int)
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for p, n := range st.peers {
			out[p] += n
		}
		st.mu.Unlock()
	}
	return out
}
