package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// The paper's replay defence is the window-based timestamp check of
// Section 6.2: stateless, loose-synchronisation-only, and deliberately
// imperfect — an attacker replaying within the freshness window succeeds,
// and higher layers (TCP sequencing, application nonces) are expected to
// finish the job.
//
// ReplayCache is an optional extension beyond the paper: it remembers the
// (sfl, confounder, timestamp) triples accepted within the freshness
// window and rejects exact duplicates. The memory is still soft state —
// dropping it merely re-opens the paper's documented in-window replay
// exposure, it never breaks the protocol — so datagram semantics are
// preserved. The paper hints at exactly this trade-off when noting that
// "complete replay protection can only be achieved in high-layer
// protocols".

// replaySig identifies a datagram within the freshness window.
type replaySig struct {
	SFL        SFL
	Confounder uint32
	Timestamp  Timestamp
	MAC        [8]byte // first half of the MAC disambiguates confounder collisions
}

// stripe picks the lock stripe for this signature. The confounder is
// already statistically random (it is generator output), so folding in
// the sfl low bits is enough to spread flows across stripes.
func (s replaySig) stripe(mask uint32) uint32 {
	return (s.Confounder ^ uint32(s.SFL)) & mask
}

// replayStripe is one lock stripe: an independently locked shard of the
// signature map.
type replayStripe struct {
	mu   sync.Mutex
	seen map[replaySig]time.Time
	_    [40]byte
}

// ReplayCache suppresses exact duplicates inside the freshness window.
// It is safe for concurrent use: signatures are partitioned across
// power-of-two lock stripes so datagrams of different flows are checked
// in parallel. Expired entries are swept lazily, at most once per
// window, by whichever Seen call notices the sweep is due.
type ReplayCache struct {
	window    time.Duration
	stripes   []replayStripe
	mask      uint32
	lastSweep atomic.Int64 // unix nanos of the last full sweep
}

// NewReplayCache creates a cache whose entries expire after window (use
// the endpoint's freshness window).
func NewReplayCache(window time.Duration) *ReplayCache {
	n := defaultStripeCount(1 << 30) // uncapped by table size
	r := &ReplayCache{
		window:  window,
		stripes: make([]replayStripe, n),
		mask:    uint32(n - 1),
	}
	for i := range r.stripes {
		r.stripes[i].seen = make(map[replaySig]time.Time)
	}
	return r
}

// Seen records the datagram and reports whether an identical one was
// already accepted within the window.
func (r *ReplayCache) Seen(h *Header, now time.Time) bool {
	var sig replaySig
	sig.SFL = h.SFL
	sig.Confounder = h.Confounder
	sig.Timestamp = h.Timestamp
	copy(sig.MAC[:], h.MACValue[:8])

	r.maybeSweep(now)
	st := &r.stripes[sig.stripe(r.mask)]
	st.mu.Lock()
	defer st.mu.Unlock()
	if t, ok := st.seen[sig]; ok && now.Sub(t) <= r.window {
		return true
	}
	st.seen[sig] = now
	return false
}

// maybeSweep drops expired entries once the last full sweep is more than
// a window old. The CAS elects a single sweeper; everyone else proceeds
// to their stripe immediately, and the sweeper takes one stripe lock at
// a time so checks on other stripes continue in parallel.
func (r *ReplayCache) maybeSweep(now time.Time) {
	last := r.lastSweep.Load()
	n := now.UnixNano()
	if n-last <= int64(r.window) {
		return
	}
	if !r.lastSweep.CompareAndSwap(last, n) {
		return
	}
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for k, t := range st.seen {
			if now.Sub(t) > r.window {
				delete(st.seen, k)
			}
		}
		st.mu.Unlock()
	}
}

// Len returns the number of remembered datagrams (for tests and
// monitoring).
func (r *ReplayCache) Len() int {
	n := 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		n += len(st.seen)
		st.mu.Unlock()
	}
	return n
}
