package core

import (
	"fmt"
	"sync"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Batched data plane. SealBatch and OpenBatch process N datagrams per
// call so the per-datagram fixed costs — FAM stripe acquisition, suite
// dispatch, flow-key resolution, confounder-generator borrow, replay
// stripe locks — are paid once per flow run (seal) or once per stripe
// (replay) instead of once per datagram. The single-datagram paths are
// the same engine invoked with a run of one (see sealGated/openGated),
// so the golden wire vectors, the 0 allocs/op bound and the refmodel
// differential harness pin batch-of-1 to the historic behaviour, and a
// batch of N is observationally a loop of N single calls: identical
// bytes, identical per-DropReason counters, identical FAM accounting.
//
// What a batch amortises — and what it deliberately does not change:
//
//   - FAM: one stripe lock per run of same-flow datagrams, with the
//     policy's Match re-checked per datagram under the held lock, so
//     wear-out rekeying (MaxPackets/MaxBytes) splits a run exactly
//     where a loop of classify calls would.
//   - Nonces: a run's sequence numbers are reserved consecutively in
//     that one acquisition — the per-flow AEAD nonce counter advances
//     by the run length at once.
//   - Keys: one TFKC/RFKC resolution per flow run; the receive side
//     memoises the previous datagram's (sfl, src) → K_f within a call.
//   - Replay: verdicts for a chunk are computed stripe-grouped — one
//     lock per stripe touched. Identical signatures share a stripe and
//     stay in run order, so intra-batch duplicates are classified
//     exactly as per-datagram checks would classify them.
//   - Observation: the sampling and tracing gates still roll once per
//     datagram, in order. A datagram whose gate fires is sealed/opened
//     individually through the instrumented path (its sample and spans
//     are per datagram, as ever); only the quiet majority rides a run.

// batchChunk bounds how many datagrams one run processes per stripe
// acquisition (and sizes the batch engine's stack-allocated scratch:
// per-datagram sizes, confounders, deferred replay signatures). Longer
// batches are processed in chunks of this size, which keeps the
// amortisation while bounding lock hold times and stack frames.
const batchChunk = 64

// NumBatchBuckets is the number of log2 size classes in the batch-call
// histograms: 1, 2-3, 4-7, 8-15, 16-31, 32-63, 64-127, 128+.
const NumBatchBuckets = 8

// batchBucket maps a batch size to its size class.
func batchBucket(n int) int {
	b := 0
	for n > 1 && b < NumBatchBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// batchBucketLabels spells the size classes for metric exposition.
var batchBucketLabels = [NumBatchBuckets]string{
	"1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
}

// BatchBucketLabel names size class i (see NumBatchBuckets).
func BatchBucketLabel(i int) string { return batchBucketLabels[i] }

// BatchStats reports batch API usage: how many SealBatch/OpenBatch
// calls arrived per size class and how many datagrams they carried.
// Single-datagram calls are not counted — the histograms describe
// explicit batch use, which is what the fbs_batch_* metric families
// expose.
type BatchStats struct {
	SealCalls     [NumBatchBuckets]uint64
	OpenCalls     [NumBatchBuckets]uint64
	SealDatagrams uint64
	OpenDatagrams uint64
}

// BatchStats snapshots the batch-call histograms.
func (e *Endpoint) BatchStats() BatchStats {
	var out BatchStats
	for i := 0; i < NumBatchBuckets; i++ {
		out.SealCalls[i] = e.metrics.sealBatchCalls[i].Load()
		out.OpenCalls[i] = e.metrics.openBatchCalls[i].Load()
	}
	out.SealDatagrams = e.metrics.sealBatchDatagrams.Load()
	out.OpenDatagrams = e.metrics.openBatchDatagrams.Load()
	return out
}

// BatchResult reports one datagram's outcome within a SealBatch or
// OpenBatch call.
type BatchResult struct {
	// Off and Len locate this datagram's output bytes — the sealed wire
	// datagram for SealBatch, the recovered plaintext body for OpenBatch
	// — within the buffer the call returns. A refused datagram has Len
	// == 0 and a non-nil Err; the buffer may retain bytes no result
	// references (a datagram rejected after decryption leaves its staged
	// plaintext as dead space, exactly as the single-datagram append
	// path does in its caller-discarded buffer).
	Off, Len int
	// Err is the sentinel error the single-datagram path would have
	// returned for this datagram, so DropReasonOf(Err) recovers the
	// exact DropReason. Nil on success.
	Err error
}

// SealBatch performs FBS send processing on a batch of datagrams,
// appending each sealed datagram to dst and recording per-datagram
// outcomes in res (which must have at least len(dgs) slots). Datagrams
// are processed in order; consecutive datagrams that classify into the
// same flow form a run and share one FAM stripe acquisition, one
// nonce-counter reservation and one flow-key resolution. It returns the
// extended buffer and how many datagrams sealed successfully. Every
// datagram is accounted exactly as Seal would account it: same drop
// reasons, same counters, same wire bytes.
func (e *Endpoint) SealBatch(dst []byte, dgs []transport.Datagram, secret bool, res []BatchResult) ([]byte, int) {
	if len(res) < len(dgs) {
		panic("core: SealBatch requires len(res) >= len(dgs)")
	}
	if len(dgs) == 0 {
		return dst, 0
	}
	if err := e.beginOp(); err != nil {
		for i := range dgs {
			res[i] = BatchResult{Err: err}
		}
		return dst, 0
	}
	defer e.endOp()
	e.metrics.sealBatchCalls[batchBucket(len(dgs))].Add(1)
	e.metrics.sealBatchDatagrams.Add(uint64(len(dgs)))
	sealed := 0
	// pend carries gate decisions already rolled for the datagram that
	// terminated the previous run, so every datagram's Sample() and
	// StartTrace() draws are consumed exactly once, in order.
	pendValid := false
	var pendSampled bool
	var pendTC *traceCtx
	i := 0
	for i < len(dgs) {
		if dgs[i].Source == "" {
			dgs[i].Source = e.Addr()
		}
		var sampled bool
		var tc *traceCtx
		if pendValid {
			sampled, tc, pendValid = pendSampled, pendTC, false
		} else {
			if e.cfg.Bypass != nil && e.cfg.Bypass(dgs[i].Destination) {
				e.metrics.bypassedSent.Add(1)
				off := len(dst)
				dst = append(dst, dgs[i].Payload...)
				res[i] = BatchResult{Off: off, Len: len(dst) - off}
				sealed++
				i++
				continue
			}
			sampled, tc = e.sealGates()
		}
		id := e.cfg.Selector(dgs[i])
		if sampled || tc.active() {
			off := len(dst)
			out, _, err := e.sealGated(dst, dgs[i], id, secret, sampled, tc)
			if err != nil {
				res[i] = BatchResult{Off: off, Err: err}
			} else {
				dst = out
				res[i] = BatchResult{Off: off, Len: len(out) - off}
				sealed++
			}
			i++
			continue
		}
		// Extend the run: consecutive, non-bypassed datagrams with the
		// same flow attributes whose gates stay quiet. The selector is
		// checked before the gates so a flow change never consumes the
		// next datagram's gate draws.
		j := i + 1
		for j < len(dgs) {
			if dgs[j].Source == "" {
				dgs[j].Source = e.Addr()
			}
			if e.cfg.Bypass != nil && e.cfg.Bypass(dgs[j].Destination) {
				break
			}
			if e.cfg.Selector(dgs[j]) != id {
				break
			}
			js, jtc := e.sealGates()
			if js || jtc.active() {
				pendValid, pendSampled, pendTC = true, js, jtc
				break
			}
			j++
		}
		var n int
		dst, n = e.sealRun(dst, dgs[i:j], id, secret, res[i:j])
		sealed += n
		i = j
	}
	return dst, sealed
}

// sealGates rolls the send-side observation gates for one datagram.
func (e *Endpoint) sealGates() (sampled bool, tc *traceCtx) {
	if tr := e.cfg.Tracer; tr != nil {
		if tid := tr.StartTrace(); tid != 0 {
			tc = &traceCtx{tr: tr, id: tid}
		}
	}
	o := e.cfg.Observer
	return o != nil && o.Sample(), tc
}

// sealRun seals a run of datagrams that share one flow: one batched
// classify per chunk (reserving the run's consecutive sequence numbers
// under a single stripe acquisition), one suite resolution, one
// flow-key resolution and one confounder-generator borrow, then a
// per-datagram header encode + body transform. Per-datagram results are
// recorded into res; the return values are the extended buffer and the
// number sealed. The run is uninstrumented by construction — the caller
// routes sampled and traced datagrams through sealGated instead.
func (e *Endpoint) sealRun(dst []byte, dgs []transport.Datagram, id FlowID, secret bool, res []BatchResult) ([]byte, int) {
	sealed := 0
	for len(dgs) > 0 {
		chunk := len(dgs)
		if chunk > batchChunk {
			chunk = batchChunk
		}
		var sizes [batchChunk]int
		for k := 0; k < chunk; k++ {
			sizes[k] = len(dgs[k].Payload)
		}
		now := e.cfg.Clock.Now()
		sfl, suiteID, firstSeq, n, slot, ok := e.fam.classifyBatch(id, now, sizes[:chunk])
		if !ok {
			// Budget refusal sheds exactly one datagram — the
			// per-datagram path re-checks the budget for each — then
			// retries the remainder as a fresh run.
			e.metrics.drop(DropStateBudget)
			e.maybeRelievePressure(now)
			res[0] = BatchResult{Off: len(dst), Err: fmt.Errorf("%w: flow to %q", ErrStateBudget, dgs[0].Destination)}
			dgs, res = dgs[1:], res[1:]
			continue
		}
		suite := SuiteByID(suiteID)
		if suite == nil {
			// Unreachable with a validated config (see sealFlowAppend);
			// kept as a typed per-datagram failure, not a panic.
			err := fmt.Errorf("%w: pinned suite %d unregistered", ErrAlgorithmRange, suiteID)
			for k := 0; k < n; k++ {
				res[k] = BatchResult{Off: len(dst), Err: err}
			}
			dgs, res = dgs[n:], res[n:]
			continue
		}
		kf, _, _, err := e.transmitFlowKey(sfl, slot, dgs[0].Source, dgs[0].Destination)
		if err != nil {
			// The run shares one key resolution; each datagram is still
			// dropped and counted individually, as a loop would drop it.
			for k := 0; k < n; k++ {
				e.metrics.drop(DropKeying)
				res[k] = BatchResult{Off: len(dst), Err: fmt.Errorf("%w: flow to %q: %w", ErrKeying, dgs[k].Destination, err)}
			}
			dgs, res = dgs[n:], res[n:]
			continue
		}
		wireMAC, wireMode := suite.WireAlg(e.cfg.MAC, e.cfg.Mode)
		aead := suite.AEAD()
		var confs [batchChunk]uint32
		if !aead {
			e.conf.drawRun(confs[:n])
		}
		ts := TimestampOf(now)
		for k := 0; k < n; k++ {
			conf := uint32(firstSeq + uint64(k))
			if !aead {
				conf = confs[k]
			}
			h := Header{
				Version:    HeaderVersion,
				MAC:        wireMAC,
				Cipher:     suite.ID(),
				Mode:       wireMode,
				SFL:        sfl,
				Confounder: conf,
				Timestamp:  ts,
			}
			if secret {
				h.Flags |= FlagSecret
			}
			hdrOff := len(dst)
			encoded := h.Encode(dst)
			out, err := suite.SealAppend(encoded, hdrOff, h, kf, dgs[k].Payload, e.cfg.SinglePass, nil)
			if err != nil {
				res[k] = BatchResult{Off: hdrOff, Err: err}
				continue
			}
			e.metrics.sealsBySuite[suite.ID()].Add(1)
			res[k] = BatchResult{Off: hdrOff, Len: len(out) - hdrOff}
			dst = out
			sealed++
		}
		dgs, res = dgs[n:], res[n:]
	}
	return dst, sealed
}

// OpenBatch performs FBS receive processing on a batch of datagrams,
// appending each recovered plaintext body to dst and recording
// per-datagram outcomes in res (at least len(dgs) slots). Consecutive
// datagrams of one flow share a key resolution, and replay-window
// verdicts are computed stripe-grouped per chunk. It returns the
// extended buffer and how many datagrams were accepted. Every datagram
// is accounted exactly as OpenAppend would account it: same drop
// reasons, same counters, same recovered bytes.
func (e *Endpoint) OpenBatch(dst []byte, dgs []transport.Datagram, res []BatchResult) ([]byte, int) {
	if len(res) < len(dgs) {
		panic("core: OpenBatch requires len(res) >= len(dgs)")
	}
	if len(dgs) == 0 {
		return dst, 0
	}
	if err := e.beginOp(); err != nil {
		for i := range dgs {
			res[i] = BatchResult{Err: err}
		}
		return dst, 0
	}
	defer e.endOp()
	e.metrics.openBatchCalls[batchBucket(len(dgs))].Add(1)
	e.metrics.openBatchDatagrams.Add(uint64(len(dgs)))
	opened := 0
	pendValid := false
	var pendSampled bool
	var pendTC *traceCtx
	i := 0
	for i < len(dgs) {
		var sampled bool
		var tc *traceCtx
		if pendValid {
			sampled, tc, pendValid = pendSampled, pendTC, false
		} else {
			if e.cfg.Bypass != nil && e.cfg.Bypass(dgs[i].Source) {
				e.metrics.bypassedReceived.Add(1)
				off := len(dst)
				dst = append(dst, dgs[i].Payload...)
				res[i] = BatchResult{Off: off, Len: len(dst) - off}
				opened++
				i++
				continue
			}
			sampled, tc = e.openGates(&dgs[i])
		}
		if sampled || tc.active() {
			off := len(dst)
			out, err := e.openGated(dst, dgs[i], true, sampled, tc)
			if err != nil {
				res[i] = BatchResult{Off: off, Err: err}
			} else {
				dst = out
				res[i] = BatchResult{Off: off, Len: len(out) - off}
				opened++
			}
			i++
			continue
		}
		// Extend the run with consecutive ungated, non-bypassed
		// datagrams. Unlike seal, open needs no per-flow grouping — the
		// key memo inside openRun amortises repeated flows on its own.
		j := i + 1
		for j < len(dgs) {
			if e.cfg.Bypass != nil && e.cfg.Bypass(dgs[j].Source) {
				break
			}
			js, jtc := e.openGates(&dgs[j])
			if js || jtc.active() {
				pendValid, pendSampled, pendTC = true, js, jtc
				break
			}
			j++
		}
		var n int
		dst, n = e.openRun(dst, dgs[i:j], res[i:j])
		opened += n
		i = j
	}
	return dst, opened
}

// openGates rolls the receive-side observation gates for one datagram.
// An incoming trace ID (a tracing sender over a metadata-preserving
// transport) is always continued, exactly as in open().
func (e *Endpoint) openGates(dg *transport.Datagram) (sampled bool, tc *traceCtx) {
	if tr := e.cfg.Tracer; tr != nil {
		if dg.Trace != 0 {
			tc = &traceCtx{tr: tr, id: dg.Trace}
		} else if tid := tr.StartTrace(); tid != 0 {
			tc = &traceCtx{tr: tr, id: tid}
		}
	}
	o := e.cfg.Observer
	return o != nil && o.Sample(), tc
}

// openRun is the uninstrumented batched receive pipeline. Each datagram
// walks the same stages as openInner — addressing, header decode,
// algorithm policy, freshness, flow key, suite open, replay — with two
// amortisations: the previous datagram's (sfl, src) → K_f resolution is
// reused while the run stays on one flow, and replay verdicts for the
// chunk's survivors are computed in one stripe-grouped pass. Plaintext
// of a datagram the replay window later rejects remains as dead bytes
// in dst (no result references it); results and counters are exact per
// datagram.
func (e *Endpoint) openRun(dst []byte, dgs []transport.Datagram, res []BatchResult) ([]byte, int) {
	opened := 0
	for len(dgs) > 0 {
		chunk := len(dgs)
		if chunk > batchChunk {
			chunk = batchChunk
		}
		now := e.cfg.Clock.Now()
		var memoValid bool
		var memoSFL SFL
		var memoSrc principal.Address
		var memoKey [16]byte
		// Deferred replay bookkeeping for the chunk's survivors.
		var rsrc [batchChunk]principal.Address
		var rhdr [batchChunk]Header
		var ridx [batchChunk]int
		var roff [batchChunk]int
		var rlen [batchChunk]int
		var rbody [batchChunk][]byte // cleartext alias; nil for secret bodies
		nr := 0
		for k := 0; k < chunk; k++ {
			dg := &dgs[k]
			if dg.Destination != e.Addr() {
				e.metrics.drop(DropNotForUs)
				res[k] = BatchResult{Err: fmt.Errorf("%w: %q", ErrNotForUs, dg.Destination)}
				continue
			}
			// The edge pre-filter runs before the header decode, exactly
			// as in openInner; this is where the batch path amortises —
			// a shed datagram costs two atomic loads and no parse.
			if e.pf != nil {
				if err := e.prefilterInbound(dg, nil); err != nil {
					res[k] = BatchResult{Err: err}
					continue
				}
				e.pf.headerParses.Add(1)
			}
			var h Header
			hn, err := h.Decode(dg.Payload)
			if err != nil {
				e.metrics.drop(DropMalformed)
				res[k] = BatchResult{Err: fmt.Errorf("%w: %v", ErrMalformed, err)}
				continue
			}
			body := dg.Payload[hn:]
			suite, err := e.checkAlg(&h)
			if err != nil {
				e.metrics.drop(DropAlgorithm)
				res[k] = BatchResult{Err: err}
				continue
			}
			if !h.Timestamp.Fresh(now, e.cfg.FreshnessWindow) {
				e.metrics.drop(DropStale)
				res[k] = BatchResult{Err: fmt.Errorf("%w: timestamp %v at %v", ErrStale, h.Timestamp.Time(), now)}
				continue
			}
			var kf [16]byte
			if memoValid && memoSFL == h.SFL && memoSrc == dg.Source {
				kf = memoKey
			} else {
				kf, _, _, err = e.receiveFlowKey(h.SFL, dg.Source, dg.Destination)
				if err != nil {
					reason := DropReasonOf(err)
					if reason == DropNone {
						reason = DropKeying
					}
					e.metrics.drop(reason)
					e.prefilterObserveDrop(dg.Source, reason)
					res[k] = BatchResult{Err: fmt.Errorf("%w: flow from %q: %w", ErrKeying, dg.Source, err)}
					continue
				}
				memoValid, memoSFL, memoSrc, memoKey = true, h.SFL, dg.Source, kf
			}
			off := len(dst)
			newDst, plain, err := suite.OpenAppend(dst, h, kf, body, nil)
			if err != nil {
				reason := DropReasonOf(err)
				if reason == DropNone {
					reason = DropDecrypt
				}
				e.metrics.drop(reason)
				e.prefilterObserveDrop(dg.Source, reason)
				res[k] = BatchResult{Err: err}
				continue
			}
			dst = newDst
			secret := h.Secret()
			plen := len(plain)
			if e.rc == nil {
				if !secret {
					off = len(dst)
					dst = append(dst, plain...)
				}
				res[k] = BatchResult{Off: off, Len: plen}
				e.metrics.received.Add(1)
				e.metrics.receivedBytes.Add(uint64(plen))
				e.metrics.opensBySuite[h.Cipher].Add(1)
				opened++
				continue
			}
			rsrc[nr] = dg.Source
			rhdr[nr] = h
			ridx[nr] = k
			rlen[nr] = plen
			if secret {
				roff[nr] = off
				rbody[nr] = nil
			} else {
				rbody[nr] = plain
			}
			nr++
		}
		if nr > 0 {
			var verdicts [batchChunk]ReplayVerdict
			e.rc.CheckRun(rsrc[:nr], rhdr[:nr], now, verdicts[:nr])
			for t := 0; t < nr; t++ {
				k := ridx[t]
				switch verdicts[t] {
				case ReplayDuplicate:
					e.metrics.drop(DropReplay)
					res[k] = BatchResult{Err: ErrReplay}
				case ReplayRefused:
					e.metrics.drop(DropReplayBudget)
					e.maybeRelievePressure(now)
					res[k] = BatchResult{Err: fmt.Errorf("%w: from %q", ErrReplayBudget, dgs[k].Source)}
				default:
					off := roff[t]
					if rbody[t] != nil {
						off = len(dst)
						dst = append(dst, rbody[t]...)
					}
					res[k] = BatchResult{Off: off, Len: rlen[t]}
					e.metrics.received.Add(1)
					e.metrics.receivedBytes.Add(uint64(rlen[t]))
					e.metrics.opensBySuite[rhdr[t].Cipher].Add(1)
					opened++
				}
			}
		}
		dgs, res = dgs[chunk:], res[chunk:]
	}
	return dst, opened
}

// SendBatch seals dgs (SealBatch) and hands the sealed wire datagrams
// to the transport in one batched call (transport.SendBatch, which uses
// the transport's native vector path when it has one). It returns how
// many datagrams were transmitted; per-datagram seal refusals are
// counted in Metrics exactly as Send counts them and simply drop out of
// the transmitted set. Traced datagrams get their seal-stage spans as
// usual but no per-send transport span — the batched hand-off is one
// operation, not N.
func (e *Endpoint) SendBatch(dgs []transport.Datagram, secret bool) (int, error) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	if cap(sc.res) < len(dgs) {
		sc.res = make([]BatchResult, len(dgs))
	}
	res := sc.res[:len(dgs)]
	capHint := 0
	for i := range dgs {
		capHint += HeaderSize + len(dgs[i].Payload) + cryptolib.BlockSize
	}
	if cap(sc.buf) < capHint {
		sc.buf = make([]byte, 0, capHint)
	}
	// The wire buffer is pooled: both in-repo transports copy the
	// payload out before returning (the network clones on inject, the
	// UDP paths copy into the kernel), so the hand-off ends when
	// transport.SendBatch returns.
	buf, _ := e.SealBatch(sc.buf[:0], dgs, secret, res)
	sc.buf = buf
	wires := sc.wires[:0]
	orig := sc.orig[:0]
	for i := range res {
		if res[i].Err != nil {
			continue
		}
		payload := buf[res[i].Off : res[i].Off+res[i].Len]
		if e.pf != nil {
			// Echo a pending cookie challenge, as Send does: the envelope
			// wraps the sealed bytes, leaving the wire image intact.
			payload = e.prefilterWrap(payload, dgs[i].Destination)
		}
		wires = append(wires, transport.Datagram{
			Source:      dgs[i].Source,
			Destination: dgs[i].Destination,
			Payload:     payload,
		})
		orig = append(orig, i)
	}
	sc.wires, sc.orig = wires, orig
	n, err := transport.SendBatch(e.cfg.Transport, wires)
	for i := 0; i < n; i++ {
		e.metrics.sent.Add(1)
		e.metrics.sentBytes.Add(uint64(len(dgs[orig[i]].Payload)))
		if secret {
			e.metrics.sentSecret.Add(1)
		}
	}
	clearDatagrams(wires)
	return n, err
}

// ReceiveBatch blocks for the next batch from the transport (up to max
// datagrams in one vector receive where the transport supports it),
// opens the arrivals through OpenBatch, and returns the accepted
// plaintext datagrams plus the total arrival count. Rejected datagrams
// are counted in Metrics per DropReason, as Receive counts them. A
// transport.ErrClosed error means the endpoint is shut down.
func (e *Endpoint) ReceiveBatch(max int) (accepted []transport.Datagram, arrived int, err error) {
	if max <= 0 {
		max = batchChunk
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	if cap(sc.raw) < max {
		sc.raw = make([]transport.Datagram, max)
	}
	raw := sc.raw[:max]
	n, err := transport.ReceiveBatch(e.cfg.Transport, raw)
	if err != nil {
		return nil, 0, err
	}
	raw = raw[:n]
	if cap(sc.res) < n {
		sc.res = make([]BatchResult, n)
	}
	res := sc.res[:n]
	// The cleartext buffer is returned to the caller (the accepted
	// datagrams alias it), so unlike the scratch it is allocated fresh
	// — but pre-sized, since cleartext never exceeds the wire bytes.
	capHint := 0
	for i := range raw {
		capHint += len(raw[i].Payload)
	}
	out, ok := e.OpenBatch(make([]byte, 0, capHint), raw, res)
	accepted = make([]transport.Datagram, 0, ok)
	for i := range res {
		if res[i].Err != nil {
			continue
		}
		accepted = append(accepted, transport.Datagram{
			Source:      raw[i].Source,
			Destination: raw[i].Destination,
			Payload:     out[res[i].Off : res[i].Off+res[i].Len],
		})
	}
	clearDatagrams(raw)
	return accepted, n, nil
}

// batchScratch recycles the per-call slices of the SendBatch and
// ReceiveBatch convenience wrappers, so steady-state batch I/O costs
// one cleartext allocation per received batch and nothing per sent
// one.
type batchScratch struct {
	buf   []byte
	res   []BatchResult
	wires []transport.Datagram
	orig  []int
	raw   []transport.Datagram
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// clearDatagrams drops the payload references a pooled slice would
// otherwise pin past its useful life.
func clearDatagrams(dgs []transport.Datagram) {
	for i := range dgs {
		dgs[i] = transport.Datagram{}
	}
}
