package core

import (
	"testing"

	"fbs/internal/transport"
)

// Native Go fuzz targets. `go test` runs them over the seed corpus;
// `go test -fuzz=FuzzOpen ./internal/core` explores further.

func FuzzHeaderDecode(f *testing.F) {
	var h Header
	h.Version = HeaderVersion
	h.SFL = 42
	f.Add(h.Encode(nil))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize-1))
	f.Add(make([]byte, HeaderSize+17))
	f.Fuzz(func(t *testing.T, b []byte) {
		var hh Header
		n, err := hh.Decode(b)
		if err == nil {
			// A successful decode must consume exactly HeaderSize and
			// re-encode to the same bytes.
			if n != HeaderSize {
				t.Fatalf("decode consumed %d", n)
			}
			re := hh.Encode(nil)
			for i := range re {
				if re[i] != b[i] {
					t.Fatalf("re-encode differs at %d", i)
				}
			}
		}
	})
}

// fuzzWorld is built once per fuzz process.
var fuzzEndpoint *Endpoint

func fuzzReceiver(f *testing.F) *Endpoint {
	f.Helper()
	if fuzzEndpoint != nil {
		return fuzzEndpoint
	}
	w := newWorld(f)
	net := transport.NewNetwork(transport.Impairments{})
	tr, err := net.Attach("fuzz-bob", 16)
	if err != nil {
		f.Fatal(err)
	}
	ep, err := NewEndpoint(Config{
		Identity:  w.principal(f, "fuzz-bob"),
		Transport: tr,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
	})
	if err != nil {
		f.Fatal(err)
	}
	w.principal(f, "fuzz-alice")
	fuzzEndpoint = ep
	return ep
}

func FuzzOpen(f *testing.F) {
	ep := fuzzReceiver(f)
	var h Header
	h.Version = HeaderVersion
	f.Add(h.Encode(nil))
	f.Add([]byte("short"))
	f.Add(append(h.Encode(nil), make([]byte, 64)...))
	f.Fuzz(func(t *testing.T, payload []byte) {
		// Must never panic; must never accept (no key material in the
		// fuzzer's hands).
		if _, err := ep.Open(transport.Datagram{
			Source:      "fuzz-alice",
			Destination: "fuzz-bob",
			Payload:     payload,
		}); err == nil {
			t.Fatal("fuzzer forged an acceptable datagram")
		}
	})
}
