package core

import "errors"

// Receive-side rejection errors. Each corresponds to a check in
// FBSReceive (Figure 4); callers typically count them and continue
// receiving.
var (
	// ErrStale means the timestamp fell outside the freshness window
	// (R3-R4): a delayed datagram, gross clock skew, or a replay of old
	// traffic.
	ErrStale = errors.New("fbs: timestamp outside freshness window")
	// ErrBadMAC means MAC verification failed (R8-R9): corruption,
	// forgery, or a key mismatch.
	ErrBadMAC = errors.New("fbs: message authentication code mismatch")
	// ErrReplay means the optional replay cache saw an exact duplicate
	// within the freshness window.
	ErrReplay = errors.New("fbs: duplicate datagram within freshness window")
	// ErrMalformed means the security flow header could not be parsed.
	ErrMalformed = errors.New("fbs: malformed security flow header")
	// ErrNotForUs means the datagram's destination is not this
	// principal.
	ErrNotForUs = errors.New("fbs: datagram addressed to another principal")
	// ErrAlgorithmRejected means the header's algorithm identification
	// named a MAC, cipher or mode this endpoint is configured not to
	// accept (a downgrade-resistance check).
	ErrAlgorithmRejected = errors.New("fbs: datagram algorithm not acceptable")
	// ErrAlgorithmUnknown means the header's algorithm identification
	// named a cipher with no registered suite, or MAC/mode bytes that
	// are structurally impossible for the named suite. Distinct from
	// ErrAlgorithmRejected: this is "no such algorithm", not "known but
	// refused by policy".
	ErrAlgorithmUnknown = errors.New("fbs: datagram algorithm unknown")
	// ErrAlgorithmRange is a configuration-time error: a cipher or mode
	// ID does not fit its 4-bit nibble in the header's packed algorithm
	// byte, or names no registered suite. Catching this at NewEndpoint
	// keeps algByte's nibble packing from silently truncating IDs on the
	// wire.
	ErrAlgorithmRange = errors.New("fbs: cipher/mode id out of range for algorithm field")
	// ErrDecrypt means the payload cipher could not be instantiated or
	// run (R10-R11).
	ErrDecrypt = errors.New("fbs: decryption failed")
	// ErrKeying means the flow key could not be derived: certificate
	// fetch, verification, or the master key computation failed (S2-S3 /
	// R5-R6).
	ErrKeying = errors.New("fbs: keying failed")

	// ErrKeyingOverload means the keying admission gate's token bucket
	// shed the datagram before any expensive keying work: too many
	// unknown peers asked to be keyed at once.
	ErrKeyingOverload = errors.New("fbs: keying admission shed (overload)")
	// ErrPeerQuota means the datagram's source prefix exhausted its
	// keying admission quota for the current window.
	ErrPeerQuota = errors.New("fbs: per-source-prefix keying quota exceeded")
	// ErrStateBudget means the soft-state memory budget is at its hard
	// limit and the datagram would have required fresh state. Soft
	// state makes this always safe to do: a later datagram retries once
	// pressure sweeps reclaim room.
	ErrStateBudget = errors.New("fbs: soft-state memory budget exhausted")
	// ErrReplayBudget means the datagram verified but the budget hard
	// limit left no room to record its replay signature; it is refused
	// rather than accepted unprotected, because an unrecorded (or
	// evicted) signature could be replayed within the freshness window.
	ErrReplayBudget = errors.New("fbs: replay window full, datagram refused unrecorded")

	// ErrPrefilter means the edge pre-filter's per-prefix counting
	// sketch scored the datagram's source prefix above the shedding
	// threshold: recent traffic from that prefix was dominated by
	// forgeries or sheds, so the datagram was refused before the header
	// was even parsed.
	ErrPrefilter = errors.New("fbs: source prefix shed by pre-filter sketch")
	// ErrBadCookie means the datagram carried a challenge-echo envelope
	// whose cookie failed verification: wrong secret epoch, expired
	// stamp, truncated frame, or a MAC that does not bind the source
	// address. Only a forged or badly damaged echo lands here — a
	// legitimate sender echoes the exact cookie it was handed.
	ErrBadCookie = errors.New("fbs: challenge cookie verification failed")
	// ErrChallenged means the datagram came from an unknown peer while
	// the pre-filter ladder was at the challenge level: instead of being
	// admitted to keying it was refused, and a stateless cookie
	// challenge was emitted so a legitimate sender can retry with an
	// echo that proves return routability.
	ErrChallenged = errors.New("fbs: unknown peer challenged, retry with cookie echo")

	// ErrChallengeAbsorbed signals that a received datagram was a
	// challenge control frame addressed to us: the cookie was absorbed
	// into the sender-side jar and there is no payload to deliver. It
	// maps to DropNone — the frame is accounted by CookiesLearned, not
	// as a refused datagram — and receive loops typically treat it like
	// any other non-fatal receive error and continue.
	ErrChallengeAbsorbed = errors.New("fbs: challenge frame absorbed")
)

// ErrDraining means the endpoint is quiescing ahead of a shutdown or a
// config-epoch swap: new seal/open work is refused so the in-flight
// count can reach zero. It is a lifecycle verdict like a closed
// transport, not a datagram verdict — it carries no DropReason and is
// never charged to the drop ledger, because a draining endpoint's
// caller (the gateway swapper) re-routes the datagram to the successor
// epoch rather than dropping it.
var ErrDraining = errors.New("fbs: endpoint draining")
