package core

import (
	"bytes"
	"errors"
	"testing"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Suite seam tests: the registry, the wire-algorithm mapping, per-flow
// suite pinning, configuration-time nibble validation, and — the
// security property the seam must not weaken — the algorithm-downgrade
// tamper matrix across every registered suite. The core package runs
// under -race in CI, so the matrix doubles as a race probe of the
// per-suite counters.

func TestSuiteRegistry(t *testing.T) {
	want := map[CipherID]struct {
		name string
		aead bool
	}{
		CipherNone:             {"none", false},
		CipherDES:              {"DES", false},
		Cipher3DES:             {"3DES", false},
		CipherAES128GCM:        {"AES-128-GCM", true},
		CipherChaCha20Poly1305: {"ChaCha20-Poly1305", true},
	}
	if got := len(Suites()); got != len(want) {
		t.Fatalf("registry holds %d suites, want %d", got, len(want))
	}
	for id, w := range want {
		s := SuiteByID(id)
		if s == nil {
			t.Fatalf("suite %d not registered", id)
		}
		if s.ID() != id || s.Name() != w.name || s.AEAD() != w.aead {
			t.Errorf("suite %d: got (%v, %q, aead=%v), want (%v, %q, aead=%v)",
				id, s.ID(), s.Name(), s.AEAD(), id, w.name, w.aead)
		}
		if w.aead {
			if s.Overhead() != HeaderSize {
				t.Errorf("%s: AEAD overhead %d, want exact-length bodies (%d)", w.name, s.Overhead(), HeaderSize)
			}
		} else if s.Overhead() != SealOverhead {
			t.Errorf("%s: legacy overhead %d, want %d", w.name, s.Overhead(), SealOverhead)
		}
	}
	// The unassigned nibbles answer nil, and out-of-range IDs never index
	// the registry.
	for _, id := range []CipherID{3, 4, 5, 6, 7, 10, 11, 12, 13, 14, 15, 16, 200} {
		if SuiteByID(id) != nil {
			t.Errorf("cipher %d unexpectedly registered", id)
		}
	}
}

func TestSuiteWireAlg(t *testing.T) {
	// Legacy suites carry the configured MAC/mode through to the wire;
	// AEAD suites force the intrinsic MAC id and a zero mode nibble no
	// matter what the config says.
	for _, s := range Suites() {
		mac, mode := s.WireAlg(cryptolib.MACHMACSHA1, cryptolib.CFB)
		if s.AEAD() {
			if mac != cryptolib.MACAEAD || mode != 0 {
				t.Errorf("%s: WireAlg = (%v, %v), want (MACAEAD, 0)", s.Name(), mac, mode)
			}
		} else if mac != cryptolib.MACHMACSHA1 || mode != cryptolib.CFB {
			t.Errorf("%s: WireAlg = (%v, %v), want pass-through", s.Name(), mac, mode)
		}
	}
}

func TestSuiteNonceDiscipline(t *testing.T) {
	// The AEAD nonce is confounder | timestamp | low 32 bits of sfl, all
	// big-endian; the legacy IV duplicates the confounder. DeriveIV is
	// the diagnostic restatement of what the hot paths inline.
	h := Header{SFL: 0x11223344AABBCCDD, Confounder: 0x01020304, Timestamp: 0x0A0B0C0D}
	for _, s := range Suites() {
		iv := s.DeriveIV(h)
		if s.AEAD() {
			want := []byte{1, 2, 3, 4, 0x0A, 0x0B, 0x0C, 0x0D, 0xAA, 0xBB, 0xCC, 0xDD}
			if !bytes.Equal(iv, want) {
				t.Errorf("%s: nonce %x, want %x", s.Name(), iv, want)
			}
		} else {
			want := []byte{1, 2, 3, 4, 1, 2, 3, 4}
			if !bytes.Equal(iv, want) {
				t.Errorf("%s: IV %x, want duplicated confounder %x", s.Name(), iv, want)
			}
		}
	}
}

func TestConfigAlgorithmRange(t *testing.T) {
	// The 4-bit nibble packing satellite: IDs that cannot ride the packed
	// algorithm byte, or that name no registered suite, fail NewEndpoint
	// with ErrAlgorithmRange instead of silently truncating on the wire.
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})
	tr, err := net.Attach("range", 16)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Identity:  w.principal(t, "range"),
		Transport: tr,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"cipher beyond nibble", func(c *Config) { c.Cipher = 0x10 }},
		{"mode beyond nibble", func(c *Config) { c.Mode = 0x10 }},
		{"unregistered cipher", func(c *Config) { c.Cipher = 7 }},
		{"legacy with unknown MAC", func(c *Config) { c.Cipher = CipherDES; c.MAC = cryptolib.MACID(9) }},
		{"legacy with unimplemented mode", func(c *Config) { c.Cipher = CipherDES; c.Mode = cryptolib.Mode(7) }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := NewEndpoint(cfg); !errors.Is(err, ErrAlgorithmRange) {
			t.Errorf("%s: err = %v, want ErrAlgorithmRange", tc.name, err)
		}
	}
	// AEAD suites ignore the configured MAC/mode entirely (WireAlg
	// overrides them), so nibble-respecting values pass.
	cfg := base
	cfg.Cipher = CipherAES128GCM
	cfg.MAC = cryptolib.MACHMACSHA1
	ep, err := NewEndpoint(cfg)
	if err != nil {
		t.Fatalf("AEAD config rejected: %v", err)
	}
	ep.Close()
}

// TestSuiteRoundTripMatrix sends secret and cleartext datagrams under
// every registered suite and checks the per-suite counters on both ends.
func TestSuiteRoundTripMatrix(t *testing.T) {
	for _, s := range Suites() {
		if s.ID() == CipherNone {
			continue // cannot carry secret traffic
		}
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			w := newWorld(t)
			a, b, _ := endpointPair(t, w, func(c *Config) { c.Cipher = s.ID() })
			for _, secret := range []bool{true, false} {
				payload := []byte("suite matrix payload for " + s.Name())
				if err := a.SendTo("bob", payload, secret); err != nil {
					t.Fatal(err)
				}
				got, err := b.Receive()
				if err != nil {
					t.Fatalf("secret=%v: %v", secret, err)
				}
				if !bytes.Equal(got.Payload, payload) {
					t.Fatalf("secret=%v: payload mismatch", secret)
				}
			}
			seals, _ := a.SuiteCounts()
			_, opens := b.SuiteCounts()
			if seals[s.ID()] != 2 || opens[s.ID()] != 2 {
				t.Errorf("suite counters: seals=%d opens=%d, want 2/2", seals[s.ID()], opens[s.ID()])
			}
		})
	}
}

// TestSuiteSelectorPinning drives two flows through one endpoint with a
// per-flow suite selector and checks each flow sticks with the suite it
// was born with.
func TestSuiteSelectorPinning(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) {
		c.Cipher = CipherDES
		c.SuiteSelector = func(id FlowID) CipherID {
			if id.DstPort == 443 {
				return CipherAES128GCM
			}
			if id.DstPort == 9999 {
				return CipherID(13) // unregistered: must fall back to cfg.Cipher
			}
			return CipherDES
		}
	})
	seal := func(dstPort uint16) Header {
		t.Helper()
		id := FlowID{Src: "alice", Dst: "bob", Proto: 17, SrcPort: 1234, DstPort: dstPort}
		dg, err := a.SealFlow(transport.Datagram{
			Source: "alice", Destination: "bob", Payload: []byte("pinned"),
		}, id, true)
		if err != nil {
			t.Fatal(err)
		}
		var h Header
		if _, err := h.Decode(dg.Payload); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Open(dg); err != nil {
			t.Fatalf("port %d datagram rejected: %v", dstPort, err)
		}
		return h
	}
	if h := seal(443); h.Cipher != CipherAES128GCM || h.MAC != cryptolib.MACAEAD {
		t.Errorf("port 443 flow: cipher %v MAC %v, want AES-128-GCM/MACAEAD", h.Cipher, h.MAC)
	}
	if h := seal(80); h.Cipher != CipherDES {
		t.Errorf("port 80 flow: cipher %v, want DES", h.Cipher)
	}
	if h := seal(9999); h.Cipher != CipherDES {
		t.Errorf("invalid selector result must fall back: cipher %v, want DES", h.Cipher)
	}
	// The pin is recorded in the flow table snapshot.
	bySuite := map[CipherID]int{}
	for _, f := range a.Flows() {
		bySuite[f.Suite]++
	}
	if bySuite[CipherAES128GCM] != 1 || bySuite[CipherDES] != 2 {
		t.Errorf("flow snapshot suites = %v, want 1×AES-128-GCM, 2×DES", bySuite)
	}
}

// TestSuiteDowngradeTamperMatrix is the downgrade-tampering satellite:
// for every registered suite, flip the header's algorithm bytes every
// way an on-path attacker can, and require the typed rejection — never
// an accept. The algorithm prefix is authenticated (legacy MACs cover
// macInput; AEAD binds it as AAD), so cross-suite swaps must die with
// the right DropReason, not merely "some error".
func TestSuiteDowngradeTamperMatrix(t *testing.T) {
	const (
		offMACAlg     = 2
		offCipherMode = 3
	)
	for _, s := range Suites() {
		if s.ID() == CipherNone {
			continue
		}
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			w := newWorld(t)
			a, b, _ := endpointPair(t, w, func(c *Config) { c.Cipher = s.ID() })
			// 18 bytes: the AEAD body is deliberately not a multiple of
			// the legacy block size, so AEAD→legacy swaps are expected to
			// die in the cipher (DropDecrypt) while aligned swaps die in
			// the authenticator (DropBadMAC).
			payload := []byte("downgrade probe 18")
			sealed, err := a.Seal(transport.Datagram{
				Source: "alice", Destination: "bob", Payload: payload,
			}, true)
			if err != nil {
				t.Fatal(err)
			}
			open := func(wire []byte) error {
				_, err := b.Open(transport.Datagram{Source: "alice", Destination: "bob", Payload: wire})
				return err
			}
			mutate := func(f func(wire []byte)) []byte {
				wire := append([]byte(nil), sealed.Payload...)
				f(wire)
				return wire
			}
			// Sanity: the untampered datagram is accepted.
			if err := open(mutate(func([]byte) {})); err != nil {
				t.Fatalf("clean datagram rejected: %v", err)
			}

			// Unregistered cipher nibble → "no such algorithm".
			err = open(mutate(func(w []byte) { w[offCipherMode] = 0x70 | w[offCipherMode]&0x0F }))
			if !errors.Is(err, ErrAlgorithmUnknown) || DropReasonOf(err) != DropAlgorithm {
				t.Errorf("unregistered cipher: err=%v reason=%v, want ErrAlgorithmUnknown/DropAlgorithm", err, DropReasonOf(err))
			}

			// MAC byte structurally impossible for the named suite.
			err = open(mutate(func(w []byte) {
				if s.AEAD() {
					w[offMACAlg] = byte(cryptolib.MACPrefixMD5) // AEAD framing demands MACAEAD
				} else {
					w[offMACAlg] = 0x0B // beyond every implemented construction
				}
			}))
			if !errors.Is(err, ErrAlgorithmUnknown) || DropReasonOf(err) != DropAlgorithm {
				t.Errorf("impossible MAC byte: err=%v reason=%v, want ErrAlgorithmUnknown/DropAlgorithm", err, DropReasonOf(err))
			}

			// Cross-suite swap to every other registered suite, with
			// structurally valid bytes for the target: the authenticated
			// algorithm prefix forecloses the substitution.
			body := len(sealed.Payload) - HeaderSize
			for _, tgt := range Suites() {
				if tgt.ID() == s.ID() || tgt.ID() == CipherNone {
					continue
				}
				err := open(mutate(func(w []byte) {
					if tgt.AEAD() {
						w[offMACAlg] = byte(cryptolib.MACAEAD)
						w[offCipherMode] = byte(tgt.ID()) << 4
					} else {
						w[offMACAlg] = byte(cryptolib.MACPrefixMD5)
						w[offCipherMode] = byte(tgt.ID())<<4 | byte(cryptolib.CBC)
					}
				}))
				want, reason := error(ErrBadMAC), DropBadMAC
				if !tgt.AEAD() && body%cryptolib.BlockSize != 0 {
					want, reason = ErrDecrypt, DropDecrypt
				}
				if !errors.Is(err, want) || DropReasonOf(err) != reason {
					t.Errorf("swap %s→%s: err=%v reason=%v, want %v/%v",
						s.Name(), tgt.Name(), err, DropReasonOf(err), want, reason)
				}
			}

			// Downgrade to cipher "none" on an encrypted datagram: the
			// suite is registered and the header structurally valid, but
			// none cannot decrypt.
			err = open(mutate(func(w []byte) {
				w[offMACAlg] = byte(cryptolib.MACPrefixMD5)
				w[offCipherMode] = w[offCipherMode] & 0x0F
			}))
			if !errors.Is(err, ErrDecrypt) || DropReasonOf(err) != DropDecrypt {
				t.Errorf("none downgrade: err=%v reason=%v, want ErrDecrypt/DropDecrypt", err, DropReasonOf(err))
			}

			// Every tamper above landed in a typed drop bucket.
			drops := b.DropCounts()
			if drops[DropAlgorithm] == 0 || drops[DropBadMAC]+drops[DropDecrypt] == 0 {
				t.Errorf("tamper drops not counted: %v", drops)
			}
		})
	}
}

// TestAEADConfounderCounter: AEAD flows must fill the confounder field
// with the flow's monotonic datagram counter — an AEAD nonce has to be
// unique under the flow key, and 32 random bits birthday-collide around
// 2^16 datagrams. Legacy flows keep drawing from the configured random
// source.
func TestAEADConfounderCounter(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) { c.Cipher = CipherAES128GCM })
	flow := func(dstPort uint16) FlowID {
		return FlowID{Src: "alice", Dst: "bob", Proto: 17, SrcPort: 1234, DstPort: dstPort}
	}
	seal := func(id FlowID) Header {
		t.Helper()
		dg, err := a.SealFlow(transport.Datagram{
			Source: "alice", Destination: "bob", Payload: []byte("counter"),
		}, id, true)
		if err != nil {
			t.Fatal(err)
		}
		var h Header
		if _, err := h.Decode(dg.Payload); err != nil {
			t.Fatal(err)
		}
		// The receiver reassembles the nonce from the header alone — no
		// counter state — so every sealed datagram must still open.
		if _, err := b.Open(dg); err != nil {
			t.Fatalf("counter-confounder datagram rejected: %v", err)
		}
		return h
	}
	for i := 1; i <= 5; i++ {
		if h := seal(flow(80)); h.Confounder != uint32(i) {
			t.Fatalf("flow A datagram %d: confounder %d, want the flow counter %d", i, h.Confounder, i)
		}
	}
	// A second flow is a new key (new sfl), so its counter restarts at 1
	// without any nonce reuse.
	if h := seal(flow(443)); h.Confounder != 1 {
		t.Errorf("flow B first datagram: confounder %d, want 1", h.Confounder)
	}
	// The first flow resumes where it left off.
	if h := seal(flow(80)); h.Confounder != 6 {
		t.Errorf("flow A datagram 6: confounder %d, want 6", h.Confounder)
	}

	// Legacy suites still draw random confounders: three DES datagrams on
	// one flow must not carry the counter sequence 1,2,3.
	w2 := newWorld(t)
	da, db, _ := endpointPair(t, w2, func(c *Config) { c.Cipher = CipherDES })
	var confs [3]uint32
	for i := range confs {
		dg, err := da.SealFlow(transport.Datagram{
			Source: "alice", Destination: "bob", Payload: []byte("legacy-rand"),
		}, flow(80), true)
		if err != nil {
			t.Fatal(err)
		}
		var h Header
		if _, err := h.Decode(dg.Payload); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Open(dg); err != nil {
			t.Fatal(err)
		}
		confs[i] = h.Confounder
	}
	if confs == [3]uint32{1, 2, 3} {
		t.Errorf("legacy DES confounders %v look like the AEAD counter, want random draws", confs)
	}
}

// TestAEADAcceptMACsOptIn: a pinned AcceptMACs set must not silently
// widen to the AEAD tier — AEAD suites are admitted only when policy is
// fully open, when AcceptMACs names MACAEAD, or when AcceptCiphers
// names the suite explicitly.
func TestAEADAcceptMACsOptIn(t *testing.T) {
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})
	mk := func(addr principal.Address, mutate func(*Config)) *Endpoint {
		tr, err := net.Attach(addr, 64)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Identity:  w.principal(t, addr),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		ep, err := NewEndpoint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	sender := mk("optin-sender", func(c *Config) { c.Cipher = CipherAES128GCM })
	cases := []struct {
		addr   principal.Address
		mutate func(*Config)
		accept bool
	}{
		// Pre-AEAD strict config: legacy MACs pinned, no cipher policy.
		// The pre-PR accept set must hold — no silent widening.
		{"pinned-legacy", func(c *Config) {
			c.AcceptMACs = []cryptolib.MACID{cryptolib.MACPrefixMD5, cryptolib.MACHMACSHA1}
		}, false},
		// MACAEAD in AcceptMACs is the explicit opt-in for the tier.
		{"optin-mac", func(c *Config) {
			c.AcceptMACs = []cryptolib.MACID{cryptolib.MACPrefixMD5, cryptolib.MACAEAD}
		}, true},
		// Naming the suite in AcceptCiphers also opts in, even with a
		// legacy-only MAC pin.
		{"optin-cipher", func(c *Config) {
			c.AcceptMACs = []cryptolib.MACID{cryptolib.MACPrefixMD5}
			c.AcceptCiphers = []CipherID{CipherAES128GCM}
		}, true},
		// AcceptCiphers still binds on its own: MACAEAD in AcceptMACs
		// does not override a cipher set that excludes the suite.
		{"cipher-excludes", func(c *Config) {
			c.AcceptMACs = []cryptolib.MACID{cryptolib.MACAEAD}
			c.AcceptCiphers = []CipherID{CipherDES}
		}, false},
		// Fully open policy admits every registered suite.
		{"open", nil, true},
	}
	for _, tc := range cases {
		rx := mk(tc.addr, tc.mutate)
		sealed, err := sender.Seal(transport.Datagram{
			Source: "optin-sender", Destination: tc.addr, Payload: []byte("optin"),
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		_, err = rx.Open(sealed)
		if tc.accept && err != nil {
			t.Errorf("%s: rejected, want accept: %v", tc.addr, err)
		}
		if !tc.accept {
			if !errors.Is(err, ErrAlgorithmRejected) || DropReasonOf(err) != DropAlgorithm {
				t.Errorf("%s: err=%v reason=%v, want ErrAlgorithmRejected/DropAlgorithm", tc.addr, err, DropReasonOf(err))
			}
		}
	}
}

// TestSuitePolicyRejection: a receiver whose accept-set excludes the
// sender's suite refuses by policy — for AEAD suites on both secret and
// cleartext datagrams, since the suite is the whole construction.
func TestSuitePolicyRejection(t *testing.T) {
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})
	mk := func(addr principal.Address, mutate func(*Config)) *Endpoint {
		tr, err := net.Attach(addr, 64)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Identity:  w.principal(t, addr),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		ep, err := NewEndpoint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	gcm := mk("gcm-sender", func(c *Config) { c.Cipher = CipherAES128GCM })
	strict := mk("legacy-only", func(c *Config) {
		c.AcceptCiphers = []CipherID{CipherDES, Cipher3DES}
	})
	for _, secret := range []bool{true, false} {
		sealed, err := gcm.Seal(transport.Datagram{
			Source: "gcm-sender", Destination: "legacy-only", Payload: []byte("x"),
		}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := strict.Open(sealed); !errors.Is(err, ErrAlgorithmRejected) {
			t.Errorf("secret=%v: err = %v, want ErrAlgorithmRejected (AEAD accept-set binds cleartext too)", secret, err)
		}
	}
}
