package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fbs/internal/principal"
)

// pfEpoch starts on an exact epoch boundary (Unix time divisible by the
// default 64 s interval) so the rollover tests can position themselves
// just before and after a secret rotation.
var pfEpoch = time.Unix(1_767_225_600, 0).UTC()

func newTestPrefilter(t testing.TB, cfg PrefilterConfig) *prefilter {
	t.Helper()
	p, err := newPrefilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCookieFrameRoundTrip(t *testing.T) {
	ck := cookie{epoch: 0xDEADBEEF, stamp: 0x12345678}
	for i := range ck.mac {
		ck.mac[i] = byte(0xA0 + i)
	}
	for _, kind := range []byte{CookieKindChallenge, CookieKindEcho} {
		frame := appendCookieFrame(nil, kind, ck)
		if len(frame) != CookieFrameLen {
			t.Fatalf("frame length = %d, want %d", len(frame), CookieFrameLen)
		}
		gotKind, got, ok := parseCookieFrame(frame)
		if !ok || gotKind != kind || got != ck {
			t.Fatalf("round trip: ok=%v kind=%#x cookie=%+v", ok, gotKind, got)
		}
		// An echo envelope is the frame plus a sealed datagram; the parse
		// must ignore the trailing bytes.
		if _, got, ok := parseCookieFrame(append(append([]byte{}, frame...), "sealed"...)); !ok || got != ck {
			t.Fatal("frame with trailing datagram did not parse")
		}
	}
	frame := appendCookieFrame(nil, CookieKindChallenge, ck)
	for n := 0; n < CookieFrameLen; n++ {
		if _, _, ok := parseCookieFrame(frame[:n]); ok {
			t.Fatalf("truncated frame of %d bytes parsed", n)
		}
	}
	for _, tc := range []struct {
		name string
		at   int
		v    byte
	}{
		{"bad magic", 0, 0x00},
		{"bad kind", 1, 0x55},
		{"bad version", 2, CookieVersion + 1},
	} {
		bad := append([]byte{}, frame...)
		bad[tc.at] = tc.v
		if _, _, ok := parseCookieFrame(bad); ok {
			t.Errorf("%s parsed", tc.name)
		}
	}
}

func TestCookieVerify(t *testing.T) {
	p := newTestPrefilter(t, PrefilterConfig{Enable: true, SecretSeed: []byte("verify-seed")})
	const addr principal.Address = "cookie-peer"
	now := pfEpoch.Add(63 * time.Second) // one second before rotation

	ck := p.mint(addr, now)
	if !p.verifyCookie(addr, ck, now) {
		t.Fatal("freshly minted cookie rejected")
	}
	// Epoch rollover: one epoch later the cookie still verifies under
	// the previous secret; two epochs later it does not.
	if !p.verifyCookie(addr, ck, now.Add(2*time.Second)) {
		t.Error("cookie rejected immediately after epoch rotation")
	}
	if p.verifyCookie(addr, ck, now.Add(66*time.Second)) {
		t.Error("cookie survived two epoch rotations")
	}
	// TTL, isolated from the epoch check by hand-building a stale stamp
	// under the current epoch.
	stale := cookie{epoch: p.epochAt(now), stamp: uint32(now.Unix() - 200)}
	stale.mac = p.cookieMAC(addr, stale)
	if p.verifyCookie(addr, stale, now) {
		t.Error("stamp older than the TTL verified")
	}
	future := cookie{epoch: p.epochAt(now), stamp: uint32(now.Unix() + 200)}
	future.mac = p.cookieMAC(addr, future)
	if p.verifyCookie(addr, future, now) {
		t.Error("stamp from the future verified")
	}
	// Tampering and address binding.
	bent := ck
	bent.mac[5] ^= 0x40
	if p.verifyCookie(addr, bent, now) {
		t.Error("tampered MAC verified")
	}
	if p.verifyCookie("someone-else", ck, now) {
		t.Error("cookie verified for an address it does not bind")
	}
}

// TestCookieSecretDeterminism is the crash-restart property at the unit
// level: a prefilter rebuilt from the same seed re-derives the same
// rotating secret and honours cookies minted before the crash; a
// different (or absent) seed does not.
func TestCookieSecretDeterminism(t *testing.T) {
	seed := []byte("restart-seed")
	p1 := newTestPrefilter(t, PrefilterConfig{Enable: true, SecretSeed: seed})
	p2 := newTestPrefilter(t, PrefilterConfig{Enable: true, SecretSeed: seed})
	const addr principal.Address = "survivor"
	now := pfEpoch.Add(10 * time.Second)

	ck := p1.mint(addr, now)
	if p2.mint(addr, now) != ck {
		t.Fatal("same seed minted different cookies")
	}
	if !p2.verifyCookie(addr, ck, now) {
		t.Fatal("restarted prefilter rejected its predecessor's cookie")
	}
	other := newTestPrefilter(t, PrefilterConfig{Enable: true, SecretSeed: []byte("other-seed")})
	if other.verifyCookie(addr, ck, now) {
		t.Fatal("different seed accepted a foreign cookie")
	}
	// Empty seed draws a random root: two instances must not agree.
	r1 := newTestPrefilter(t, PrefilterConfig{Enable: true})
	r2 := newTestPrefilter(t, PrefilterConfig{Enable: true})
	if r2.verifyCookie(addr, r1.mint(addr, now), now) {
		t.Fatal("random-root prefilters agreed on a cookie; the root is not random")
	}
}

func TestCookieJarBoundedStalestOut(t *testing.T) {
	p := newTestPrefilter(t, PrefilterConfig{Enable: true, SecretSeed: []byte("jar"), JarCap: 2})
	now := pfEpoch
	ttl := p.cfg.CookieTTL

	p.jar.learn("peer-a", p.mint("peer-a", now), now)
	p.jar.learn("peer-b", p.mint("peer-b", now), now.Add(time.Second))
	// Re-learning an existing peer must not evict anybody.
	p.jar.learn("peer-a", p.mint("peer-a", now), now.Add(2*time.Second))
	if len(p.jar.entries) != 2 {
		t.Fatalf("jar holds %d entries, want 2", len(p.jar.entries))
	}
	// At capacity the stalest entry (peer-b now) makes room.
	p.jar.learn("peer-c", p.mint("peer-c", now), now.Add(3*time.Second))
	if _, ok := p.jar.lookup("peer-b", now.Add(3*time.Second), ttl); ok {
		t.Error("stalest entry survived eviction")
	}
	if _, ok := p.jar.lookup("peer-a", now.Add(3*time.Second), ttl); !ok {
		t.Error("freshened entry was evicted")
	}
	if _, ok := p.jar.lookup("peer-c", now.Add(3*time.Second), ttl); !ok {
		t.Error("newly learned entry missing")
	}
	// TTL expiry deletes on lookup.
	if _, ok := p.jar.lookup("peer-c", now.Add(3*time.Second).Add(ttl+time.Second), ttl); ok {
		t.Error("expired cookie served from the jar")
	}
	if _, stillThere := p.jar.entries["peer-c"]; stillThere {
		t.Error("expired entry not deleted")
	}
}

func TestSketchScorePenalizeDecay(t *testing.T) {
	p := newTestPrefilter(t, PrefilterConfig{Enable: true, ShedThreshold: 4, DecayEvery: 8})
	for i := 0; i < 4; i++ {
		p.penalize("hot-pref")
	}
	if got := p.score("hot-pref"); got != 4 {
		t.Fatalf("score after 4 charges = %d", got)
	}
	if got := p.score("cold-pref"); got != 0 {
		t.Fatalf("unrelated prefix scored %d", got)
	}
	// The 8th observation triggers the halving sweep.
	for i := 0; i < 4; i++ {
		p.penalize("other-pref")
	}
	if p.sketchDecays.Load() != 1 {
		t.Fatalf("decays = %d, want 1", p.sketchDecays.Load())
	}
	if got := p.score("hot-pref"); got != 2 {
		t.Errorf("hot prefix score after decay = %d, want 2", got)
	}
	if got := p.score("other-pref"); got != 2 {
		t.Errorf("other prefix score after decay = %d, want 2", got)
	}
}

// TestPrefilterLadderHysteresis drives the adaptive ladder's evaluation
// cadence directly: a streak of hot windows (admission sheds) climbs one
// rung per HotEvals, a streak of cold ones descends per ColdEvals, and a
// single sample in either direction moves nothing.
func TestPrefilterLadderHysteresis(t *testing.T) {
	w := newWorld(t)
	_, b, _ := endpointPair(t, w, func(c *Config) {
		c.Prefilter = PrefilterConfig{Enable: true, EvalEvery: 4, HotEvals: 2, ColdEvals: 2}
	})
	p := b.pf
	window := func(hot bool) {
		if hot {
			b.metrics.drop(DropKeyingOverload)
		}
		for i := 0; i < 4; i++ {
			p.tick(b)
		}
	}
	if p.levelNow() != PrefilterOff {
		t.Fatal("ladder did not rest at off")
	}
	window(true)
	if p.levelNow() != PrefilterOff {
		t.Fatal("a single hot window escalated; hysteresis missing")
	}
	window(true)
	if p.levelNow() != PrefilterSketch {
		t.Fatalf("after two hot windows level = %v, want sketch", p.levelNow())
	}
	window(true)
	window(true)
	if p.levelNow() != PrefilterChallenge {
		t.Fatalf("after four hot windows level = %v, want challenge", p.levelNow())
	}
	// Further pressure cannot climb past the top rung.
	window(true)
	window(true)
	if p.levelNow() != PrefilterChallenge || p.escalations.Load() != 2 {
		t.Fatalf("top rung: level %v, escalations %d", p.levelNow(), p.escalations.Load())
	}
	// Quiet: one cold window holds, a streak descends.
	window(false)
	if p.levelNow() != PrefilterChallenge {
		t.Fatal("a single cold window de-escalated; hysteresis missing")
	}
	window(false)
	if p.levelNow() != PrefilterSketch {
		t.Fatalf("after two cold windows level = %v, want sketch", p.levelNow())
	}
	window(false)
	window(false)
	if p.levelNow() != PrefilterOff || p.deescalations.Load() != 2 {
		t.Fatalf("stand-down: level %v, deescalations %d", p.levelNow(), p.deescalations.Load())
	}
}

// TestPrefilterForceLevelStatic pins the ladder and checks the adaptive
// machinery never moves it.
func TestPrefilterForceLevelStatic(t *testing.T) {
	w := newWorld(t)
	_, b, _ := endpointPair(t, w, func(c *Config) {
		c.Prefilter = PrefilterConfig{Enable: true, ForceLevel: PrefilterSketch, EvalEvery: 2, HotEvals: 1}
	})
	for i := 0; i < 16; i++ {
		b.metrics.drop(DropKeyingOverload)
		b.pf.tick(b)
	}
	if b.pf.levelNow() != PrefilterSketch {
		t.Fatalf("forced level moved to %v", b.pf.levelNow())
	}
	if b.pf.escalations.Load() != 0 {
		t.Fatal("forced ladder recorded an escalation")
	}
}

func TestPrefilterConfigValidation(t *testing.T) {
	if _, err := newPrefilter(PrefilterConfig{ForceLevel: PrefilterChallenge + 1}); err == nil {
		t.Fatal("out-of-range ForceLevel accepted")
	}
	if _, err := newPrefilter(PrefilterConfig{ForceLevel: -1}); err == nil {
		t.Fatal("negative ForceLevel accepted")
	}
	if _, err := NewEndpoint(Config{Prefilter: PrefilterConfig{Enable: true, ForceLevel: 99}}); err == nil {
		t.Fatal("NewEndpoint accepted an invalid prefilter config")
	}
}

// TestPrefilterSubSecondEpochIntervalRejected is the regression test for
// the epochAt division-by-zero: an EpochInterval in (0, 1s) passed the
// old `<= 0` validation but truncated to a zero divisor in epochAt,
// panicking on the first challenge or cookie operation. Such configs are
// now refused at construction; the 1s floor itself must work end to end.
func TestPrefilterSubSecondEpochIntervalRejected(t *testing.T) {
	for _, d := range []time.Duration{time.Nanosecond, time.Millisecond, 999 * time.Millisecond} {
		if _, err := newPrefilter(PrefilterConfig{Enable: true, EpochInterval: d}); err == nil {
			t.Fatalf("EpochInterval %v accepted (would divide by zero in epochAt)", d)
		}
	}
	p := newTestPrefilter(t, PrefilterConfig{Enable: true, EpochInterval: time.Second, SecretSeed: []byte("floor")})
	const addr principal.Address = "epoch-floor-peer"
	// Every epochAt caller: minting, verification, and the stats
	// snapshot. Any of these panicked before the fix.
	ck := p.mint(addr, pfEpoch)
	if !p.verifyCookie(addr, ck, pfEpoch) {
		t.Fatal("cookie minted at the 1s epoch floor did not verify")
	}
	if got := p.stats(pfEpoch).Epoch; got != uint32(pfEpoch.Unix()) {
		t.Fatalf("1s epochs: stats epoch = %d, want %d", got, pfEpoch.Unix())
	}
}

// TestPrefilterCookieTTLShorterThanEpochGrace pins the interaction of
// the two cookie age bounds: a cookie is accepted under the current or
// previous epoch's secret (the rotation grace), but CookieTTL is an
// independent, possibly tighter bound on the stamp. A TTL shorter than
// the grace window must govern — prev-epoch cookies older than the TTL
// are refused even though their secret still verifies.
func TestPrefilterCookieTTLShorterThanEpochGrace(t *testing.T) {
	p := newTestPrefilter(t, PrefilterConfig{
		Enable:        true,
		EpochInterval: 64 * time.Second,
		CookieTTL:     10 * time.Second,
		SecretSeed:    []byte("ttl"),
	})
	const addr principal.Address = "ttl-peer"
	minted := pfEpoch.Add(60 * time.Second) // 4s before rotation
	ck := p.mint(addr, minted)
	// Within the TTL, across the epoch boundary: previous-epoch secret
	// plus fresh stamp — accepted.
	if !p.verifyCookie(addr, ck, minted.Add(8*time.Second)) {
		t.Fatal("fresh prev-epoch cookie rejected inside the TTL")
	}
	// Past the TTL but still inside the previous-epoch grace (the
	// rotation was only 4s after minting): the TTL must refuse it.
	if p.verifyCookie(addr, ck, minted.Add(12*time.Second)) {
		t.Fatal("cookie older than CookieTTL accepted under epoch grace")
	}
}

// TestPrefilterPrefixLenExceedsAddress: a PrefixLen longer than the
// source address must fall back to the whole address — no slice panic,
// and the sketch still scores, penalizes and sheds that source.
func TestPrefilterPrefixLenExceedsAddress(t *testing.T) {
	p := newTestPrefilter(t, PrefilterConfig{Enable: true, PrefixLen: 64, ShedThreshold: 4})
	const addr principal.Address = "tiny"
	prefix := p.prefixOf(addr)
	if prefix != string(addr) {
		t.Fatalf("prefix of short address = %q, want whole address", prefix)
	}
	for i := 0; i < 4; i++ {
		p.penalize(prefix)
	}
	if got := p.score(prefix); got < 4 {
		t.Fatalf("score after 4 penalties = %d, want >= 4 (shed threshold)", got)
	}
}

// FuzzCookie hunts for panics and codec asymmetries in the cookie frame
// parser: any input that parses must re-encode to an identical frame
// prefix, and verification of arbitrary decoded cookies must never
// accept one this prefilter did not mint.
func FuzzCookie(f *testing.F) {
	p, err := newPrefilter(PrefilterConfig{Enable: true, SecretSeed: []byte("fuzz-seed")})
	if err != nil {
		f.Fatal(err)
	}
	now := pfEpoch.Add(30 * time.Second)
	const addr principal.Address = "fuzz-peer"
	// Seeds: a genuine challenge, a genuine echo with trailing payload,
	// an epoch-rollover cookie, and structural near-misses.
	f.Add(appendCookieFrame(nil, CookieKindChallenge, p.mint(addr, now)))
	f.Add(append(appendCookieFrame(nil, CookieKindEcho, p.mint(addr, now)), 0x01, 0x02, 0x03))
	f.Add(appendCookieFrame(nil, CookieKindChallenge, p.mint(addr, pfEpoch.Add(-time.Second))))
	f.Add([]byte{CookieMagic, CookieKindEcho, CookieVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, ck, ok := parseCookieFrame(data)
		if !ok {
			// Unparseable input must also be invisible to the endpoint's
			// dispatch: either too short or not a cookie frame at all.
			if len(data) >= CookieFrameLen && data[0] == CookieMagic &&
				data[2] == CookieVersion &&
				(data[1] == CookieKindChallenge || data[1] == CookieKindEcho) {
				t.Fatalf("well-formed frame refused: % x", data[:CookieFrameLen])
			}
			return
		}
		// Round trip: re-encoding the decoded cookie reproduces the frame
		// prefix byte for byte.
		re := appendCookieFrame(nil, kind, ck)
		if !bytes.Equal(re, data[:CookieFrameLen]) {
			t.Fatalf("codec asymmetry:\n in  % x\n out % x", data[:CookieFrameLen], re)
		}
		// Forgery resistance: a fuzzer-built cookie only verifies if it
		// IS the cookie this prefilter mints for that epoch and stamp.
		if p.verifyCookie(addr, ck, now) {
			want := cookie{epoch: ck.epoch, stamp: ck.stamp}
			want.mac = p.cookieMAC(addr, want)
			if want.mac != ck.mac {
				t.Fatalf("verified cookie with a MAC the prefilter would not mint: %+v", ck)
			}
		}
	})
}

// TestAdmissionGateEvictsStalestWindow pins the eviction policy at the
// prefix-tracking cap: an attacker cycling fresh prefixes must age out
// the idle windows, never the one tracking an active offender.
func TestAdmissionGateEvictsStalestWindow(t *testing.T) {
	clock := NewSimClock(famEpoch)
	g := newAdmissionGate(AdmissionConfig{
		UpcallRate:  1e9,
		UpcallBurst: 1 << 30,
		PrefixQuota: 2,
		PrefixLen:   32,
		QuotaWindow: time.Hour,
	}, clock)
	// Fill the tracker to its cap with every prefix at quota; each
	// window starts one tick later than the previous, so "scan-000000"
	// is the stalest and the last prefix the most recently active.
	for i := 0; i < prefixQuotaCap; i++ {
		addr := principal.Address(pfScanAddr(i))
		if err := g.Admit(addr); err != nil {
			t.Fatal(err)
		}
		if err := g.Admit(addr); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Millisecond)
	}
	offender := principal.Address(pfScanAddr(prefixQuotaCap - 1))
	if err := g.Admit(offender); !errors.Is(err, ErrPeerQuota) {
		t.Fatalf("offender's over-quota admit: %v, want ErrPeerQuota", err)
	}
	// A new prefix evicts the stalest window — not the offender's.
	if err := g.Admit("fresh-prefix-after-cap"); err != nil {
		t.Fatal(err)
	}
	if n := g.Stats().ActivePrefixes; n > prefixQuotaCap {
		t.Fatalf("tracking grew past the cap: %d", n)
	}
	// The offender's count survived the eviction: still over quota.
	if err := g.Admit(offender); !errors.Is(err, ErrPeerQuota) {
		t.Fatalf("offender forgot its quota after an eviction: %v", err)
	}
	// The stalest prefix was the one evicted: its count reset, so it is
	// admitted afresh where its old window would have refused it.
	stalest := principal.Address(pfScanAddr(0))
	if err := g.Admit(stalest); err != nil {
		t.Fatalf("evicted prefix did not restart with a clean window: %v", err)
	}
	if err := g.Admit(stalest); err != nil {
		t.Fatal(err)
	}
}

func pfScanAddr(i int) string {
	// Fixed-width so every address is its own 32-byte-capped prefix.
	const digits = "0123456789"
	b := []byte("scan-000000")
	for p := len(b) - 1; i > 0 && p >= 5; p-- {
		b[p] = digits[i%10]
		i /= 10
	}
	return string(b)
}

// TestAdmissionGateBackwardClock steps the clock backwards and checks
// both gate mechanisms stay sane: the token bucket must not interpret
// the negative elapsed time as a drain (or a huge refill), and a quota
// window whose start is now in the future must expire rather than pin
// its count forever.
func TestAdmissionGateBackwardClock(t *testing.T) {
	clock := NewSimClock(famEpoch)
	g := newAdmissionGate(AdmissionConfig{
		UpcallRate:  10,
		UpcallBurst: 4,
		PrefixQuota: 2,
		PrefixLen:   4,
		QuotaWindow: time.Second,
	}, clock)
	// Exhaust the 10.0. quota and drain two tokens.
	if err := g.Admit("10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit("10.0.0.2"); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit("10.0.0.3"); !errors.Is(err, ErrPeerQuota) {
		t.Fatalf("quota did not trip: %v", err)
	}
	// The clock steps back a minute (NTP correction mid-flood).
	clock.Advance(-time.Minute)
	// The window's start is now in the future: it must be treated as
	// stale and reset, not pinned until the clock catches up.
	if err := g.Admit("10.0.0.4"); err != nil {
		t.Fatalf("backward step pinned the quota window: %v", err)
	}
	// The bucket refills from the stepped-back time, never drains on the
	// negative elapsed: two tokens remain of the burst of four (two
	// spent above; the quota shed consumed none).
	if err := g.Admit("20.0.0.1"); err != nil {
		t.Fatalf("backward step drained the bucket: %v", err)
	}
	if err := g.Admit("30.0.0.1"); !errors.Is(err, ErrKeyingOverload) {
		t.Fatalf("bucket should be empty after 4 admits with no forward time: %v", err)
	}
	// Forward progress from the stepped-back time refills normally.
	clock.Advance(200 * time.Millisecond)
	if err := g.Admit("40.0.0.1"); err != nil {
		t.Fatalf("refill after recovery failed: %v", err)
	}
	s := g.Stats()
	if s.ShedQuota != 1 || s.ShedOverload != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
