package core

import "time"

// This file defines the endpoint's instrumentation surface. The core
// package stays free of any observability dependency: it emits
// PacketSamples through the Observer interface and internal/obs (or any
// other consumer) turns them into histograms, flight-recorder events and
// exposition. Everything here is gated behind Observer.Sample() so the
// un-sampled steady state adds two nil/atomic checks per datagram and no
// allocations.

// Stage identifies one timed step of seal/open processing. Stage values
// are shared between the send and receive paths; a stage that does not
// occur on a path (e.g. StageFAM on open) simply reports zero.
type Stage uint8

// The timed pipeline stages.
const (
	// StageFAM is flow classification in the flow state table (S1).
	StageFAM Stage = iota
	// StageKeyHit is flow-key retrieval served from the TFKC/RFKC (or
	// the combined FST entry) without an MKD upcall.
	StageKeyHit
	// StageKeyMiss is flow-key derivation through the MKD-miss path:
	// master key lookup/computation plus the K_f hash.
	StageKeyMiss
	// StageMAC is MAC computation (seal) or verification (open). Under
	// SinglePass seal, the fused MAC+encrypt pass is charged to
	// StageCrypt and StageMAC reports zero.
	StageMAC
	// StageCrypt is payload encryption (seal) or decryption (open),
	// including padding handling.
	StageCrypt
	// StageTotal is the whole Seal/Open call.
	StageTotal

	// NumStages sizes per-stage arrays.
	NumStages = int(iota)
)

// stageNames are the canonical labels used by metric names.
var stageNames = [NumStages]string{
	StageFAM:     "fam_lookup",
	StageKeyHit:  "flowkey_hit",
	StageKeyMiss: "flowkey_miss",
	StageMAC:     "mac",
	StageCrypt:   "crypt",
	StageTotal:   "total",
}

// String returns the canonical label for the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in registration order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// PacketSample describes one sampled datagram's trip through seal or
// open processing: identity, verdict, and per-stage timings. It is
// passed by value so emitting a sample never allocates.
type PacketSample struct {
	// Seal is true for send-side processing, false for receive-side.
	Seal bool
	// SFL is the flow label (zero when processing failed before the
	// label was known, e.g. a malformed header).
	SFL SFL
	// Flow is the flow attribute set: the full selector output on seal,
	// the principal pair on open.
	Flow FlowID
	// Bytes is the application payload length.
	Bytes int
	// Secret reports whether the body was (to be) encrypted.
	Secret bool
	// Drop is the verdict: DropNone for accepted datagrams.
	Drop DropReason
	// Trace is the datagram's trace ID when it is also being traced
	// (see Tracer), 0 otherwise. Histogram exemplars use it to link a
	// hot latency bucket back to the full trace.
	Trace TraceID
	// Stages holds the per-stage wall-clock timings; unvisited stages
	// are zero.
	Stages [NumStages]time.Duration
}

// Observer receives sampled packet telemetry from an endpoint.
// Implementations must be safe for concurrent use and should not
// allocate in Sample(), which runs on every datagram.
type Observer interface {
	// Sample decides, per datagram, whether this packet should be timed
	// and reported. It is the sampling gate: returning false must be
	// cheap (an atomic load or two), because the hot path consults it
	// unconditionally.
	Sample() bool
	// Packet delivers one sampled datagram's telemetry. Called at most
	// once per datagram for which Sample returned true.
	Packet(s PacketSample)
}
