package core

import "errors"

// DropReason classifies why FBS processing refused a datagram. It is the
// single taxonomy shared by the endpoint reject counters, the IP stack's
// hook-drop accounting, the flight recorder, and the /metrics label
// values, so a drop observed at any layer carries the same name
// everywhere.
type DropReason uint8

// The drop taxonomy. DropNone means the datagram was accepted.
const (
	DropNone DropReason = iota
	// DropStale: timestamp outside the freshness window (R3-R4).
	DropStale
	// DropBadMAC: MAC verification failed (R8-R9), including bad
	// padding, which is reported as an authentication failure to avoid
	// a padding oracle.
	DropBadMAC
	// DropReplay: exact duplicate within the freshness window (the
	// optional replay cache extension).
	DropReplay
	// DropMalformed: the security flow header could not be parsed.
	DropMalformed
	// DropNotForUs: destination is not this principal.
	DropNotForUs
	// DropAlgorithm: header named a MAC/cipher this endpoint is
	// configured not to accept, an unregistered cipher suite, or
	// MAC/mode bytes structurally impossible for the named suite.
	DropAlgorithm
	// DropDecrypt: the cipher could not be instantiated or run.
	DropDecrypt
	// DropKeying: the flow key could not be derived (certificate fetch,
	// verification, or master key computation failed).
	DropKeying
	// DropKeyingOverload: the keying admission gate's token bucket shed
	// the datagram before any keying work for an unknown peer began.
	DropKeyingOverload
	// DropPeerQuota: the source prefix exhausted its per-window keying
	// admission quota.
	DropPeerQuota
	// DropStateBudget: the soft-state memory budget is at its hard
	// limit and the datagram would have required fresh state.
	DropStateBudget
	// DropReplayBudget: the datagram verified but the budget hard limit
	// left no room to record its replay signature, so it was refused
	// rather than accepted unprotected (see ReplayRefused).
	DropReplayBudget
	// DropPrefilter: the edge pre-filter's per-prefix counting sketch
	// scored the source prefix above the shedding threshold and refused
	// the datagram before the header parse.
	DropPrefilter
	// DropBadCookie: a challenge-echo envelope failed cookie
	// verification (wrong epoch, expired stamp, truncation, or a MAC
	// not binding the source address).
	DropBadCookie
	// DropChallenged: an unknown peer's datagram was refused at the
	// challenge ladder level; a stateless cookie challenge was emitted
	// in its place so a legitimate sender can retry with an echo.
	DropChallenged

	// NumDropReasons sizes per-reason counter arrays.
	NumDropReasons = int(iota)
)

// dropNames are the canonical snake_case labels, used verbatim as the
// {reason=...} label values in Prometheus exposition.
var dropNames = [NumDropReasons]string{
	DropNone:           "none",
	DropStale:          "stale",
	DropBadMAC:         "bad_mac",
	DropReplay:         "replay",
	DropMalformed:      "malformed",
	DropNotForUs:       "not_for_us",
	DropAlgorithm:      "algorithm",
	DropDecrypt:        "decrypt",
	DropKeying:         "keying",
	DropKeyingOverload: "keying_overload",
	DropPeerQuota:      "peer_quota",
	DropStateBudget:    "state_budget",
	DropReplayBudget:   "replay_budget",
	DropPrefilter:      "prefilter",
	DropBadCookie:      "bad_cookie",
	DropChallenged:     "challenged",
}

// String returns the canonical label for the reason.
func (d DropReason) String() string {
	if int(d) < len(dropNames) {
		return dropNames[d]
	}
	return "unknown"
}

// DropReasons lists every countable reason, excluding DropNone, in a
// stable order (the iteration order for per-reason metric registration).
func DropReasons() []DropReason {
	out := make([]DropReason, 0, NumDropReasons-1)
	for d := DropStale; int(d) < NumDropReasons; d++ {
		out = append(out, d)
	}
	return out
}

// DropReasonOf maps a receive-path error to its DropReason. Unrecognised
// errors (and nil) map to DropNone; callers that know the error came from
// Open can treat that as "other".
func DropReasonOf(err error) DropReason {
	switch {
	case err == nil:
		return DropNone
	case errors.Is(err, ErrStale):
		return DropStale
	case errors.Is(err, ErrBadMAC):
		return DropBadMAC
	case errors.Is(err, ErrReplay):
		return DropReplay
	case errors.Is(err, ErrMalformed):
		return DropMalformed
	case errors.Is(err, ErrNotForUs):
		return DropNotForUs
	case errors.Is(err, ErrAlgorithmRejected):
		return DropAlgorithm
	case errors.Is(err, ErrAlgorithmUnknown):
		return DropAlgorithm
	case errors.Is(err, ErrDecrypt):
		return DropDecrypt
	// The overload sheds are checked before the general keying error:
	// the receive path wraps them in ErrKeying for callers that only
	// distinguish "could not key", and the more specific reason must
	// win for accounting.
	case errors.Is(err, ErrKeyingOverload):
		return DropKeyingOverload
	case errors.Is(err, ErrPeerQuota):
		return DropPeerQuota
	case errors.Is(err, ErrStateBudget):
		return DropStateBudget
	case errors.Is(err, ErrReplayBudget):
		return DropReplayBudget
	// The pre-filter reasons are likewise checked before ErrKeying:
	// DropChallenged is a refusal of keying admission and may reach
	// callers wrapped in the general keying error.
	case errors.Is(err, ErrPrefilter):
		return DropPrefilter
	case errors.Is(err, ErrBadCookie):
		return DropBadCookie
	case errors.Is(err, ErrChallenged):
		return DropChallenged
	case errors.Is(err, ErrKeying):
		return DropKeying
	}
	return DropNone
}
