package core

import (
	"testing"

	"fbs/internal/cryptolib"
)

func u32hash(k uint32) uint32 { return cryptolib.CRC32Fields(uint64(k)) }

func TestDirectMappedBasic(t *testing.T) {
	c := NewDirectMapped[uint32, string](16, u32hash)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit in empty cache")
	}
	c.Put(1, "one")
	v, ok := c.Get(1)
	if !ok || v != "one" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	c.Put(1, "uno")
	if v, _ := c.Get(1); v != "uno" {
		t.Fatal("overwrite failed")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Installs != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDirectMappedNeverReturnsWrongValue(t *testing.T) {
	// Fill a tiny cache with many colliding keys; every hit must carry
	// the exact key's value.
	c := NewDirectMapped[uint32, uint32](4, u32hash)
	for i := uint32(0); i < 1000; i++ {
		c.Put(i, i*7)
		if v, ok := c.Get(i); !ok || v != i*7 {
			t.Fatalf("immediately after Put(%d): %v,%v", i, v, ok)
		}
		// Probe an older key: either a miss, or the right value.
		if i > 10 {
			if v, ok := c.Get(i - 10); ok && v != (i-10)*7 {
				t.Fatalf("stale value for key %d: %d", i-10, v)
			}
		}
	}
}

func TestDirectMappedMissClassification(t *testing.T) {
	c := NewDirectMapped[uint32, int](4, u32hash)
	c.ClassifyMisses()
	c.Get(5) // cold
	c.Put(5, 1)
	// Evict key 5 by finding a key in the same slot.
	var evictor uint32
	for k := uint32(100); ; k++ {
		if u32hash(k)%4 == u32hash(5)%4 {
			evictor = k
			break
		}
	}
	c.Put(evictor, 2)
	c.Get(5) // conflict: seen before, displaced
	s := c.Stats()
	if s.Cold != 1 || s.Conflict != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Cold+s.Conflict != s.Misses {
		t.Fatalf("classified misses %d+%d != total %d", s.Cold, s.Conflict, s.Misses)
	}
}

func TestDirectMappedInvalidateFlush(t *testing.T) {
	c := NewDirectMapped[uint32, int](8, u32hash)
	c.Put(1, 10)
	c.Put(2, 20)
	if !c.Invalidate(1) {
		t.Fatal("Invalidate(1) = false")
	}
	if c.Invalidate(1) {
		t.Fatal("double invalidate = true")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("invalidated key still present")
	}
	c.Flush()
	if _, ok := c.Get(2); ok {
		t.Fatal("flushed key still present")
	}
}

func TestDirectMappedDefaultSize(t *testing.T) {
	c := NewDirectMapped[uint32, int](0, u32hash)
	if c.Size() != 64 {
		t.Fatalf("default size = %d", c.Size())
	}
}

func TestMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Fatal("empty stats miss rate != 0")
	}
	s.Hits, s.Misses = 3, 1
	if got := s.MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %v, want 0.25", got)
	}
}

func TestFlowCacheKeyHashUsesAllFields(t *testing.T) {
	base := flowCacheKey{SFL: 1, Dst: "b", Src: "a"}
	variants := []flowCacheKey{
		{SFL: 2, Dst: "b", Src: "a"},
		{SFL: 1, Dst: "c", Src: "a"},
		{SFL: 1, Dst: "b", Src: "x"},
	}
	h := base.hash()
	for _, v := range variants {
		if v.hash() == h {
			t.Errorf("hash ignores a field: %+v collides with base", v)
		}
	}
}
