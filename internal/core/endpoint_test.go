package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// endpointPair builds two connected endpoints over a fault-free network.
func endpointPair(t testing.TB, w *testWorld, mutate func(*Config)) (*Endpoint, *Endpoint, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork(transport.Impairments{})
	mk := func(addr principal.Address) *Endpoint {
		tr, err := net.Attach(addr, 1024)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Identity:   w.principal(t, addr),
			Transport:  tr,
			Directory:  w.dir,
			Verifier:   w.ver,
			Clock:      w.clock,
			Confounder: cryptolib.NewLCGSeeded(uint64(len(addr)) + 77),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		ep, err := NewEndpoint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	return mk("alice"), mk("bob"), net
}

func TestEndpointRoundTripPlain(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	want := []byte("authenticated but not encrypted")
	if err := a.SendTo("bob", want, false); err != nil {
		t.Fatal(err)
	}
	got, err := b.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, want) || got.Source != "alice" {
		t.Fatalf("got %+v", got)
	}
	// Without the secret flag the payload rides in the clear.
	sealed, err := a.Seal(transport.Datagram{Destination: "bob", Payload: want}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(sealed.Payload, want) {
		t.Fatal("plain-mode payload not visible on the wire")
	}
}

func TestEndpointRoundTripSecret(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	want := []byte("the confidential payload body")
	if err := a.SendTo("bob", want, true); err != nil {
		t.Fatal(err)
	}
	got, err := b.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, want) {
		t.Fatalf("payload = %q", got.Payload)
	}
	// Encrypted payloads must not appear on the wire.
	sealed, _ := a.Seal(transport.Datagram{Destination: "bob", Payload: want}, true)
	if bytes.Contains(sealed.Payload, want) {
		t.Fatal("secret payload visible on the wire")
	}
	if b.Metrics().Received != 1 {
		t.Fatal("receive not counted")
	}
}

// Property: Open(Seal(P)) == P for arbitrary payloads in all four
// cipher-mode combinations and both secrecy settings.
func TestSealOpenProperty(t *testing.T) {
	w := newWorld(t)
	for _, mode := range []cryptolib.Mode{cryptolib.ECB, cryptolib.CBC, cryptolib.CFB, cryptolib.OFB} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			a, b, _ := endpointPair(t, w, func(c *Config) { c.Mode = mode })
			f := func(payload []byte, secret bool) bool {
				sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: payload}, secret)
				if err != nil {
					return false
				}
				got, err := b.Open(sealed)
				if err != nil {
					return false
				}
				return bytes.Equal(got.Payload, payload)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: any single-bit corruption of a sealed datagram is rejected.
func TestCorruptionRejected(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	payload := []byte("a payload long enough to span several DES blocks....")
	sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: payload}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Warm bob's key caches so rejection is purely cryptographic.
	if _, err := b.Open(sealed); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(sealed.Payload)*8; bit++ {
		tampered := sealed.Clone()
		tampered.Payload[bit/8] ^= 1 << (bit % 8)
		got, err := b.Open(tampered)
		if err == nil && bytes.Equal(got.Payload, payload) {
			// Flipping a bit and still decoding the identical payload
			// would be a forgery; anything else that slips through
			// must still have failed authentication.
			t.Fatalf("bit flip at %d accepted and payload unchanged", bit)
		}
		if err == nil {
			t.Fatalf("bit flip at %d accepted (payload %q)", bit, got.Payload)
		}
	}
}

func TestStaleTimestampRejected(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("x")}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the datagram after the freshness window has passed.
	w.clock.Advance(21 * time.Minute) // window is 10 min
	_, err = b.Open(sealed)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	if b.Metrics().RejectedStale != 1 {
		t.Fatal("stale rejection not counted")
	}
	w.clock.Advance(-21 * time.Minute)
}

func TestFutureTimestampRejected(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	// Alice's clock runs 30 minutes ahead: beyond the +-10 min window.
	w.clock.Advance(30 * time.Minute)
	sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("x")}, false)
	if err != nil {
		t.Fatal(err)
	}
	w.clock.Advance(-30 * time.Minute)
	if _, err := b.Open(sealed); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
}

func TestReplayWithinWindow(t *testing.T) {
	w := newWorld(t)
	// Without the replay cache (the paper's stateless design), an
	// in-window replay is accepted — the documented exposure.
	a, b, _ := endpointPair(t, w, nil)
	sealed, _ := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("x")}, false)
	if _, err := b.Open(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed); err != nil {
		t.Fatalf("paper-faithful endpoint rejected in-window replay: %v", err)
	}
	// With the extension enabled, the duplicate is caught.
	a2, b2, _ := endpointPair2(t, w, func(c *Config) { c.EnableReplayCache = true })
	sealed2, _ := a2.Seal(transport.Datagram{Source: "alice2", Destination: "bob2", Payload: []byte("x")}, false)
	if _, err := b2.Open(sealed2); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Open(sealed2); !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v, want ErrReplay", err)
	}
	if b2.Metrics().RejectedReplay != 1 {
		t.Fatal("replay rejection not counted")
	}
}

// TestReplayBudgetSurfacesThroughOpen pins the receive-path contract of
// the refuse-the-newcomer policy: when the state budget leaves no room
// to record a datagram's replay signature, Open drops it under
// ErrReplayBudget/DropReplayBudget — it neither accepts the datagram
// unrecorded (an in-window replay hole) nor displaces a resident
// signature to make room (the same hole, shifted onto the victim).
func TestReplayBudgetSurfacesThroughOpen(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) {
		c.EnableReplayCache = true
		// Room for keying state (certs, master key, flow key) plus only a
		// handful of replay signatures.
		c.StateBudget = NewBudget(0, 2048)
	})
	seal := func() transport.Datagram {
		sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("x")}, false)
		if err != nil {
			t.Fatal(err)
		}
		return sealed
	}
	first := seal()
	if _, err := b.Open(first); err != nil {
		t.Fatalf("first open: %v", err)
	}
	var refused error
	for i := 0; i < 64 && refused == nil; i++ {
		if _, err := b.Open(seal()); err != nil {
			refused = err
		}
	}
	if !errors.Is(refused, ErrReplayBudget) {
		t.Fatalf("saturated budget returned %v, want ErrReplayBudget", refused)
	}
	if b.Metrics().Drops[DropReplayBudget] == 0 {
		t.Error("DropReplayBudget never counted")
	}
	if b.Stats().Replay.Refusals == 0 {
		t.Error("replay cache reports no refusals")
	}
	// The resident entry survived the pressure: replaying the first
	// (accepted) datagram is still detected as a duplicate.
	if _, err := b.Open(first); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay of accepted datagram returned %v, want ErrReplay", err)
	}
}

// endpointPair2 is endpointPair with distinct principal names, for tests
// needing two independent pairs in one world.
func endpointPair2(t testing.TB, w *testWorld, mutate func(*Config)) (*Endpoint, *Endpoint, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork(transport.Impairments{})
	mk := func(addr principal.Address) *Endpoint {
		tr, err := net.Attach(addr, 1024)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Identity:  w.principal(t, addr),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		ep, err := NewEndpoint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	return mk("alice2"), mk("bob2"), net
}

func TestWrongDestinationRejected(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	sealed, _ := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("x")}, false)
	sealed.Destination = "mallory"
	if _, err := b.Open(sealed); !errors.Is(err, ErrNotForUs) {
		t.Fatalf("err = %v, want ErrNotForUs", err)
	}
}

func TestMalformedRejected(t *testing.T) {
	w := newWorld(t)
	_, b, _ := endpointPair(t, w, nil)
	_, err := b.Open(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("short")})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

// A datagram cut from one flow and pasted into another must fail: the MAC
// keys differ per flow. This is the cut-and-paste attack of Section 2.2
// that plain host-pair keying suffers from.
func TestCutAndPasteAcrossFlowsRejected(t *testing.T) {
	w := newWorld(t)
	selector := func(dg transport.Datagram) FlowID {
		// Flow per first payload byte: crude stand-in for per-port flows.
		id := DefaultSelector(dg)
		if len(dg.Payload) > 0 {
			id.Aux = uint64(dg.Payload[0])
		}
		return id
	}
	a, b, _ := endpointPair(t, w, func(c *Config) { c.Selector = selector })
	s1, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("1-flow-one-secret")}, true)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("2-flow-two-secret")}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Graft flow 1's encrypted body onto flow 2's header.
	var h1, h2 Header
	h1.Decode(s1.Payload)
	h2.Decode(s2.Payload)
	if h1.SFL == h2.SFL {
		t.Fatal("selector failed to split flows")
	}
	franken := s2.Clone()
	franken.Payload = append(franken.Payload[:HeaderSize], s1.Payload[HeaderSize:]...)
	if _, err := b.Open(franken); err == nil {
		t.Fatal("cut-and-paste across flows accepted")
	}
}

// Compromise of one flow key must not expose other flows: keys for
// different sfls are unrelated (Section 6.1).
func TestFlowKeyIsolation(t *testing.T) {
	var master [16]byte
	copy(master[:], "master-key-bytes")
	k1 := FlowKey(cryptolib.HashMD5, 100, master, "s", "d")
	k2 := FlowKey(cryptolib.HashMD5, 101, master, "s", "d")
	if k1 == k2 {
		t.Fatal("adjacent sfls produced equal flow keys")
	}
	// Hamming distance should be substantial (avalanche).
	diff := 0
	for i := range k1 {
		x := k1[i] ^ k2[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	if diff < 32 {
		t.Fatalf("only %d differing bits between adjacent flow keys", diff)
	}
}

func TestSinglePassMatchesTwoPass(t *testing.T) {
	w := newWorld(t)
	a1, b1, _ := endpointPair(t, w, func(c *Config) {
		c.SinglePass = false
		c.Confounder = cryptolib.NewLCGSeeded(7)
	})
	_ = b1
	a2, b2, _ := endpointPair2(t, w, func(c *Config) {
		c.SinglePass = true
		c.Confounder = cryptolib.NewLCGSeeded(7)
	})
	payload := []byte("payload spanning multiple blocks with a tail..")
	s1, err := a1.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: payload}, true)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a2.Seal(transport.Datagram{Source: "alice2", Destination: "bob2", Payload: payload}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Headers differ (sfl, principals) but both must open correctly.
	got, err := b2.Open(s2)
	if err != nil {
		t.Fatalf("single-pass output rejected: %v", err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("single-pass payload mismatch")
	}
	_ = s1
	// Cross-check: the single-pass seal is openable by a two-pass peer
	// (wire compatibility).
	got1, err := b1.Open(s1)
	if err != nil || !bytes.Equal(got1.Payload, payload) {
		t.Fatal("two-pass output rejected by its peer")
	}
}

func TestSinglePassNonCBCFallback(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) {
		c.SinglePass = true
		c.Mode = cryptolib.OFB
	})
	payload := []byte("ofb payload")
	sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: payload}, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Open(sealed)
	if err != nil || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("OFB single-pass fallback broken: %v", err)
	}
}

func TestCombinedFSTTFKC(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) { c.CombinedFSTTFKC = true })
	for i := 0; i < 10; i++ {
		if err := a.SendTo("bob", []byte("combined"), true); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Receive(); err != nil {
			t.Fatal(err)
		}
	}
	// In combined mode the separate TFKC is never consulted.
	if s := a.TFKCStats(); s.Hits+s.Misses != 0 {
		t.Fatalf("combined mode touched the separate TFKC: %+v", s)
	}
	ks, _, _, upcalls := a.KeyStats()
	if upcalls != 1 {
		t.Fatalf("upcalls = %d, want 1 (flow key cached in FST)", upcalls)
	}
	_ = ks
}

func TestKeyCachingAcrossDatagrams(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.SendTo("bob", []byte("burst"), true); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Receive(); err != nil {
			t.Fatal(err)
		}
	}
	// One flow: one TFKC miss then hits; one upcall; one exponentiation.
	if s := a.TFKCStats(); s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("TFKC stats = %+v", s)
	}
	if s := b.RFKCStats(); s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("RFKC stats = %+v", s)
	}
	ksStats, _, _, _ := a.KeyStats()
	if ksStats.MasterKeyComputes != 1 {
		t.Fatalf("MasterKeyComputes = %d, want 1", ksStats.MasterKeyComputes)
	}
}

func TestRekeyViaNewFlow(t *testing.T) {
	// Changing the sfl rekeys the flow (Section 5.2's rekeying story):
	// after the threshold expires a flow, the new flow's traffic uses a
	// different key.
	w := newWorld(t)
	a, _, _ := endpointPair(t, w, func(c *Config) {
		c.Policy = ThresholdPolicy{Threshold: time.Minute}
	})
	s1, _ := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("x")}, false)
	w.clock.Advance(2 * time.Minute)
	s2, _ := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("x")}, false)
	w.clock.Advance(-2 * time.Minute)
	var h1, h2 Header
	h1.Decode(s1.Payload)
	h2.Decode(s2.Payload)
	if h1.SFL == h2.SFL {
		t.Fatal("flow not rekeyed after threshold expiry")
	}
}

func TestBypass(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) {
		c.Bypass = func(p principal.Address) bool { return p == "ca-server" }
	})
	// Traffic to the bypass peer is not FBS-processed.
	dg := transport.Datagram{Source: "alice", Destination: "ca-server", Payload: []byte("cert request")}
	sealed, err := a.Seal(dg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sealed.Payload, dg.Payload) {
		t.Fatal("bypass traffic was modified")
	}
	if a.Metrics().BypassedSent != 1 {
		t.Fatal("bypass not counted")
	}
	// Receive side: traffic from the bypass peer passes through raw.
	in := transport.Datagram{Source: "ca-server", Destination: "bob", Payload: []byte("cert reply")}
	got, err := b.Open(in)
	if err != nil || !bytes.Equal(got.Payload, in.Payload) {
		t.Fatalf("bypass receive failed: %v", err)
	}
}

func TestNewEndpointValidation(t *testing.T) {
	w := newWorld(t)
	tr, _, _, _ := transport.Pair("x", "y")
	if _, err := NewEndpoint(Config{Transport: tr, Verifier: w.ver}); err == nil {
		t.Error("missing identity accepted")
	}
	if _, err := NewEndpoint(Config{Identity: w.principal(t, "x"), Verifier: w.ver}); err == nil {
		t.Error("missing transport accepted")
	}
	if _, err := NewEndpoint(Config{Identity: w.principal(t, "x"), Transport: tr}); err == nil {
		t.Error("missing verifier accepted")
	}
}

func TestReceiveValidSkipsGarbage(t *testing.T) {
	w := newWorld(t)
	a, b, net := endpointPair(t, w, nil)
	// Inject garbage, then a valid datagram.
	garbage, _ := net.Attach("mallory", 16)
	garbage.Send(transport.Datagram{Destination: "bob", Payload: []byte("junk")})
	if err := a.SendTo("bob", []byte("real"), true); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReceiveValid()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, []byte("real")) {
		t.Fatalf("got %q", got.Payload)
	}
	if b.Metrics().RejectedMalformed != 1 {
		t.Fatal("garbage not counted")
	}
}

func TestEndpointDuplexUsesTwoFlows(t *testing.T) {
	// Flows are unidirectional (Section 5.2): a duplex exchange uses one
	// flow in each direction with distinct sfls.
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	sAB, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("ping")}, false)
	if err != nil {
		t.Fatal(err)
	}
	sBA, err := b.Seal(transport.Datagram{Source: "bob", Destination: "alice", Payload: []byte("pong")}, false)
	if err != nil {
		t.Fatal(err)
	}
	var hAB, hBA Header
	hAB.Decode(sAB.Payload)
	hBA.Decode(sBA.Payload)
	if hAB.SFL == hBA.SFL {
		t.Fatal("the two directions shared an sfl")
	}
}
