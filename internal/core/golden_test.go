package core

import (
	"bytes"
	"encoding/hex"
	"math/big"
	"testing"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Golden wire-format vectors: with every input pinned (private values,
// sfl, confounder, clock), the sealed datagram bytes are fully
// deterministic. These tests freeze the wire format — any change that
// breaks interoperability with previously generated traffic fails here.

// goldenFlowKey pins the flow key derivation.
func TestGoldenFlowKey(t *testing.T) {
	var master [16]byte
	copy(master[:], []byte{
		0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
	})
	kf := FlowKey(cryptolib.HashMD5, 0x0123456789abcdef, master, "10.0.0.1", "10.0.0.2")
	// K_f = MD5(sfl_be64 | master | len16|"10.0.0.1" | len16|"10.0.0.2")
	want := cryptolib.MD5Sum(append(append(append(append([]byte{},
		0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef),
		master[:]...),
		0x00, 0x08, '1', '0', '.', '0', '.', '0', '.', '1'),
		0x00, 0x08, '1', '0', '.', '0', '.', '0', '.', '2'))
	if kf != want {
		t.Fatalf("flow key derivation changed:\n got %x\nwant %x", kf, want)
	}
}

// TestGoldenHeaderBytes pins the header layout byte for byte.
func TestGoldenHeaderBytes(t *testing.T) {
	h := Header{
		Version:    1,
		Flags:      FlagSecret,
		MAC:        cryptolib.MACPrefixMD5, // 0
		Cipher:     CipherDES,              // 1
		Mode:       cryptolib.CBC,          // 1
		SFL:        0x1122334455667788,
		Confounder: 0xAABBCCDD,
		Timestamp:  0x00112233,
	}
	for i := range h.MACValue {
		h.MACValue[i] = byte(i)
	}
	got := h.Encode(nil)
	want, _ := hex.DecodeString(
		"01" + // version
			"01" + // flags: secret
			"00" + // MAC alg: keyed MD5
			"11" + // cipher DES << 4 | mode CBC
			"1122334455667788" + // sfl
			"aabbccdd" + // confounder
			"00112233" + // timestamp
			"000102030405060708090a0b0c0d0e0f") // MAC
	if !bytes.Equal(got, want) {
		t.Fatalf("header layout changed:\n got %x\nwant %x", got, want)
	}
}

// TestGoldenSealedDatagram pins an entire sealed datagram produced with
// fully deterministic inputs.
func TestGoldenSealedDatagram(t *testing.T) {
	// Deterministic identities on the test group.
	group := cryptolib.TestGroup
	src, err := principal.NewIdentityWithPrivate("S", group, big.NewInt(0x5EED))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := principal.NewIdentityWithPrivate("D", group, big.NewInt(0xD00D))
	if err != nil {
		t.Fatal(err)
	}
	master, err := src.MasterKey(dst.Public)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic protocol inputs.
	const sfl = SFL(1000)
	const conf = uint32(0x01020304)
	clock := NewSimClock(time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))
	ts := TimestampOf(clock.Now())
	payload := []byte("golden payload 123")

	// Build the sealed datagram exactly as Seal does.
	kf := FlowKey(cryptolib.HashMD5, sfl, master, "S", "D")
	h := Header{
		Version:    HeaderVersion,
		Flags:      FlagSecret,
		MAC:        cryptolib.MACPrefixMD5,
		Cipher:     CipherDES,
		Mode:       cryptolib.CBC,
		SFL:        sfl,
		Confounder: conf,
		Timestamp:  ts,
	}
	mi := h.macInput()
	mac := cryptolib.MACPrefixMD5.Compute(kf[:], mi[:], payload)
	copy(h.MACValue[:], mac)
	cipher, err := cryptolib.NewDES(kf[:8])
	if err != nil {
		t.Fatal(err)
	}
	iv := h.iv()
	body := cryptolib.Pad(payload, 8)
	if _, err := cryptolib.EncryptMode(cipher, cryptolib.CBC, iv[:], body, body); err != nil {
		t.Fatal(err)
	}
	wire := append(h.Encode(nil), body...)

	// The self-check that matters: the golden construction is exactly
	// what the endpoint produces and accepts. (The absolute bytes are
	// pinned indirectly through TestGoldenHeaderBytes and
	// TestGoldenFlowKey; the master key itself depends on the
	// deterministically derived TestGroup prime.)
	w := newWorld(t)
	dstTr, err := transportAttach(t, w, "D")
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild a receiving endpoint around the SAME deterministic
	// identity (bypass the world's identity minting).
	ep, err := NewEndpoint(Config{
		Identity:  dst,
		Transport: dstTr,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	// Publish S's certificate so D can key the reverse derivation.
	cS, err := w.ca.Issue(src, clock.Now().Add(-time.Hour), clock.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	w.dir.Publish(cS)
	got, err := ep.Open(transportDatagram("S", "D", wire))
	if err != nil {
		t.Fatalf("hand-built golden datagram rejected: %v", err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("golden payload mismatch: %q", got.Payload)
	}
	// Determinism: building it twice gives identical bytes.
	wire2 := append(h.Encode(nil), body...)
	if !bytes.Equal(wire, wire2) {
		t.Fatal("golden construction not deterministic")
	}
}

func transportAttach(t *testing.T, _ *testWorld, name principal.Address) (transport.Transport, error) {
	t.Helper()
	net := transport.NewNetwork(transport.Impairments{})
	return net.Attach(name, 16)
}

func transportDatagram(src, dst principal.Address, payload []byte) transport.Datagram {
	return transport.Datagram{Source: src, Destination: dst, Payload: payload}
}
