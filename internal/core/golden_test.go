package core

import (
	"bytes"
	"encoding/hex"
	"math/big"
	"testing"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Golden wire-format vectors: with every input pinned (private values,
// sfl, confounder, clock), the sealed datagram bytes are fully
// deterministic. These tests freeze the wire format — any change that
// breaks interoperability with previously generated traffic fails here.

// goldenFlowKey pins the flow key derivation.
func TestGoldenFlowKey(t *testing.T) {
	var master [16]byte
	copy(master[:], []byte{
		0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
	})
	kf := FlowKey(cryptolib.HashMD5, 0x0123456789abcdef, master, "10.0.0.1", "10.0.0.2")
	// K_f = MD5(sfl_be64 | master | len16|"10.0.0.1" | len16|"10.0.0.2")
	want := cryptolib.MD5Sum(append(append(append(append([]byte{},
		0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef),
		master[:]...),
		0x00, 0x08, '1', '0', '.', '0', '.', '0', '.', '1'),
		0x00, 0x08, '1', '0', '.', '0', '.', '0', '.', '2'))
	if kf != want {
		t.Fatalf("flow key derivation changed:\n got %x\nwant %x", kf, want)
	}
}

// TestGoldenHeaderBytes pins the header layout byte for byte.
func TestGoldenHeaderBytes(t *testing.T) {
	h := Header{
		Version:    1,
		Flags:      FlagSecret,
		MAC:        cryptolib.MACPrefixMD5, // 0
		Cipher:     CipherDES,              // 1
		Mode:       cryptolib.CBC,          // 1
		SFL:        0x1122334455667788,
		Confounder: 0xAABBCCDD,
		Timestamp:  0x00112233,
	}
	for i := range h.MACValue {
		h.MACValue[i] = byte(i)
	}
	got := h.Encode(nil)
	want, _ := hex.DecodeString(
		"01" + // version
			"01" + // flags: secret
			"00" + // MAC alg: keyed MD5
			"11" + // cipher DES << 4 | mode CBC
			"1122334455667788" + // sfl
			"aabbccdd" + // confounder
			"00112233" + // timestamp
			"000102030405060708090a0b0c0d0e0f") // MAC
	if !bytes.Equal(got, want) {
		t.Fatalf("header layout changed:\n got %x\nwant %x", got, want)
	}
}

// TestGoldenSealedDatagram pins an entire sealed datagram produced with
// fully deterministic inputs.
func TestGoldenSealedDatagram(t *testing.T) {
	// Deterministic identities on the test group.
	group := cryptolib.TestGroup
	src, err := principal.NewIdentityWithPrivate("S", group, big.NewInt(0x5EED))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := principal.NewIdentityWithPrivate("D", group, big.NewInt(0xD00D))
	if err != nil {
		t.Fatal(err)
	}
	master, err := src.MasterKey(dst.Public)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic protocol inputs.
	const sfl = SFL(1000)
	const conf = uint32(0x01020304)
	clock := NewSimClock(time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))
	ts := TimestampOf(clock.Now())
	payload := []byte("golden payload 123")

	// Build the sealed datagram exactly as Seal does.
	kf := FlowKey(cryptolib.HashMD5, sfl, master, "S", "D")
	h := Header{
		Version:    HeaderVersion,
		Flags:      FlagSecret,
		MAC:        cryptolib.MACPrefixMD5,
		Cipher:     CipherDES,
		Mode:       cryptolib.CBC,
		SFL:        sfl,
		Confounder: conf,
		Timestamp:  ts,
	}
	mi := h.macInput()
	mac := cryptolib.MACPrefixMD5.Compute(kf[:], mi[:], payload)
	copy(h.MACValue[:], mac)
	cipher, err := cryptolib.NewDES(kf[:8])
	if err != nil {
		t.Fatal(err)
	}
	iv := h.iv()
	body := cryptolib.Pad(payload, 8)
	if _, err := cryptolib.EncryptMode(cipher, cryptolib.CBC, iv[:], body, body); err != nil {
		t.Fatal(err)
	}
	wire := append(h.Encode(nil), body...)

	// The self-check that matters: the golden construction is exactly
	// what the endpoint produces and accepts. (The absolute bytes are
	// pinned indirectly through TestGoldenHeaderBytes and
	// TestGoldenFlowKey; the master key itself depends on the
	// deterministically derived TestGroup prime.)
	w := newWorld(t)
	dstTr, err := transportAttach(t, w, "D")
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild a receiving endpoint around the SAME deterministic
	// identity (bypass the world's identity minting).
	ep, err := NewEndpoint(Config{
		Identity:  dst,
		Transport: dstTr,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	// Publish S's certificate so D can key the reverse derivation.
	cS, err := w.ca.Issue(src, clock.Now().Add(-time.Hour), clock.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	w.dir.Publish(cS)
	got, err := ep.Open(transportDatagram("S", "D", wire))
	if err != nil {
		t.Fatalf("hand-built golden datagram rejected: %v", err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("golden payload mismatch: %q", got.Payload)
	}
	// Determinism: building it twice gives identical bytes.
	wire2 := append(h.Encode(nil), body...)
	if !bytes.Equal(wire, wire2) {
		t.Fatal("golden construction not deterministic")
	}
}

// TestGoldenSuiteVectors commits the sealed wire bytes of one pinned
// datagram per registered suite (plus the cleartext-with-tag framing of
// the AEAD suites). Every input is deterministic — private values, sfl,
// confounder, clock — so these hex strings freeze each suite's framing,
// key schedule, IV/nonce discipline and MAC/tag construction; any
// change that breaks interoperability with previously sealed traffic
// fails here. The DES vector doubles as the absolute-bytes pin for the
// construction TestGoldenSealedDatagram builds by hand.
func TestGoldenSuiteVectors(t *testing.T) {
	group := cryptolib.TestGroup
	src, err := principal.NewIdentityWithPrivate("S", group, big.NewInt(0x5EED))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := principal.NewIdentityWithPrivate("D", group, big.NewInt(0xD00D))
	if err != nil {
		t.Fatal(err)
	}
	master, err := src.MasterKey(dst.Public)
	if err != nil {
		t.Fatal(err)
	}
	const sfl = SFL(1000)
	const conf = uint32(0x01020304)
	clock := NewSimClock(time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))
	ts := TimestampOf(clock.Now())
	payload := []byte("golden payload 123")
	kf := FlowKey(cryptolib.HashMD5, sfl, master, "S", "D")

	vectors := []struct {
		cipher CipherID
		secret bool
		wire   string
	}{
		{CipherDES, true, "0101001100000000000003e80102030400f4d490a9ca299c111e20591612791f1d463ca21ff27f4a8ee1ce8e601b1919cc5525a31a9a611f729cd0ee"},
		{Cipher3DES, true, "0101002100000000000003e80102030400f4d490f37974cff2eebae914da699f6f51124c3ff60003c4f7329eedb171fcd2b6ced7c130851f379be55b"},
		{CipherAES128GCM, true, "0101048000000000000003e80102030400f4d4900dcdf5ad280008a00a732f9851f8f2aec1655c3cc06b9804303bfb72f26aba41526f"},
		{CipherAES128GCM, false, "0100048000000000000003e80102030400f4d490caedadf124753f75e149b77ddb98e1ce676f6c64656e207061796c6f616420313233"},
		{CipherChaCha20Poly1305, true, "0101049000000000000003e80102030400f4d4902c313ccd17c3b213df039798b5bec0efa267aedb9730830f26973bc4e5caafe3a010"},
		{CipherChaCha20Poly1305, false, "0100049000000000000003e80102030400f4d490dc07ef1dabbed8a0e8ed18ee5f816e80676f6c64656e207061796c6f616420313233"},
	}

	// One deterministic receiving endpoint accepts every vector: the
	// header is self-describing and the default accept policy admits all
	// registered suites.
	w := newWorld(t)
	dstTr, err := transportAttach(t, w, "D")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := NewEndpoint(Config{
		Identity:  dst,
		Transport: dstTr,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	cS, err := w.ca.Issue(src, clock.Now().Add(-time.Hour), clock.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	w.dir.Publish(cS)

	for _, v := range vectors {
		suite := SuiteByID(v.cipher)
		if suite == nil {
			t.Fatalf("suite %v not registered", v.cipher)
		}
		name := suite.Name()
		mac, mode := suite.WireAlg(cryptolib.MACPrefixMD5, cryptolib.CBC)
		h := Header{
			Version:    HeaderVersion,
			MAC:        mac,
			Cipher:     v.cipher,
			Mode:       mode,
			SFL:        sfl,
			Confounder: conf,
			Timestamp:  ts,
		}
		if v.secret {
			h.Flags = FlagSecret
		}
		wire := h.Encode(nil)
		wire, err := suite.SealAppend(wire, 0, h, kf, payload, false, nil)
		if err != nil {
			t.Fatalf("%s: SealAppend: %v", name, err)
		}
		got := hex.EncodeToString(wire)
		if v.wire == "" {
			t.Errorf("GENERATE %s secret=%v:\n%s", name, v.secret, got)
			continue
		}
		if got != v.wire {
			t.Errorf("%s secret=%v wire bytes changed:\n got %s\nwant %s", name, v.secret, got, v.wire)
			continue
		}
		opened, err := ep.Open(transportDatagram("S", "D", wire))
		if err != nil {
			t.Errorf("%s secret=%v: golden vector rejected: %v", name, v.secret, err)
			continue
		}
		if !bytes.Equal(opened.Payload, payload) {
			t.Errorf("%s secret=%v: payload mismatch: %q", name, v.secret, opened.Payload)
		}
	}
}

func transportAttach(t *testing.T, _ *testWorld, name principal.Address) (transport.Transport, error) {
	t.Helper()
	net := transport.NewNetwork(transport.Impairments{})
	return net.Attach(name, 16)
}

func transportDatagram(src, dst principal.Address, payload []byte) transport.Datagram {
	return transport.Datagram{Source: src, Destination: dst, Payload: payload}
}
