package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"fbs/internal/principal"
)

func TestAdmissionGateTokenBucket(t *testing.T) {
	clock := NewSimClock(famEpoch)
	g := newAdmissionGate(AdmissionConfig{UpcallRate: 10, UpcallBurst: 4}, clock)
	// The burst admits four attempts; the fifth sheds.
	for i := 0; i < 4; i++ {
		if err := g.Admit("peer"); err != nil {
			t.Fatalf("attempt %d shed within burst: %v", i, err)
		}
	}
	if err := g.Admit("peer"); !errors.Is(err, ErrKeyingOverload) {
		t.Fatalf("over-burst attempt: err = %v, want ErrKeyingOverload", err)
	}
	// 10/s refill: 200ms buys two tokens.
	clock.Advance(200 * time.Millisecond)
	if err := g.Admit("peer"); err != nil {
		t.Fatalf("attempt after refill shed: %v", err)
	}
	if err := g.Admit("peer"); err != nil {
		t.Fatalf("second attempt after refill shed: %v", err)
	}
	if err := g.Admit("peer"); !errors.Is(err, ErrKeyingOverload) {
		t.Fatal("third attempt should exceed the refill")
	}
	s := g.Stats()
	if s.Admitted != 6 || s.ShedOverload != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionGatePrefixQuota(t *testing.T) {
	clock := NewSimClock(famEpoch)
	g := newAdmissionGate(AdmissionConfig{
		UpcallRate:  1000,
		UpcallBurst: 1000,
		PrefixQuota: 2,
		PrefixLen:   4,
		QuotaWindow: time.Second,
	}, clock)
	// Two admissions for the 10.0. prefix, then quota.
	if err := g.Admit("10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit("10.0.0.2"); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit("10.0.0.3"); !errors.Is(err, ErrPeerQuota) {
		t.Fatalf("over-quota err = %v, want ErrPeerQuota", err)
	}
	// A different prefix is unaffected — the flooded prefix cannot
	// monopolise admission.
	if err := g.Admit("10.9.0.1"); err != nil {
		t.Fatalf("other prefix shed: %v", err)
	}
	// The window resets the count.
	clock.Advance(time.Second)
	if err := g.Admit("10.0.0.4"); err != nil {
		t.Fatalf("post-window attempt shed: %v", err)
	}
	s := g.Stats()
	if s.ShedQuota != 1 || s.ActivePrefixes != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionGateQuotaDoesNotDrainBucket(t *testing.T) {
	clock := NewSimClock(famEpoch)
	g := newAdmissionGate(AdmissionConfig{
		UpcallRate:  100,
		UpcallBurst: 2,
		PrefixQuota: 1,
		PrefixLen:   4,
		QuotaWindow: time.Minute,
	}, clock)
	if err := g.Admit("10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	// A storm of over-quota attempts must not consume tokens that other
	// prefixes' first contacts need.
	for i := 0; i < 50; i++ {
		if err := g.Admit("10.0.0.1"); !errors.Is(err, ErrPeerQuota) {
			t.Fatalf("storm attempt %d: err = %v", i, err)
		}
	}
	if err := g.Admit("20.0.0.1"); err != nil {
		t.Fatalf("fresh prefix starved by over-quota storm: %v", err)
	}
}

func TestAdmissionGateDisabledAndNil(t *testing.T) {
	if g := newAdmissionGate(AdmissionConfig{}, NewSimClock(famEpoch)); g != nil {
		t.Fatal("zero config did not disable the gate")
	}
	var g *admissionGate
	g.enter()
	g.leave()
	if s := g.Stats(); s != (AdmissionStats{}) {
		t.Fatalf("nil gate stats = %+v", s)
	}
}

func TestAdmissionGatePrefixTrackingBounded(t *testing.T) {
	clock := NewSimClock(famEpoch)
	g := newAdmissionGate(AdmissionConfig{
		UpcallRate:  1e9,
		UpcallBurst: 1 << 30,
		PrefixQuota: 1,
		PrefixLen:   32,
	}, clock)
	// An address scan cannot grow the gate's own bookkeeping without
	// limit.
	for i := 0; i < 3*prefixQuotaCap; i++ {
		g.Admit(principal.Address(fmt.Sprintf("peer-%d", i)))
	}
	if n := g.Stats().ActivePrefixes; n > prefixQuotaCap {
		t.Fatalf("tracked prefixes = %d, exceeds cap %d", n, prefixQuotaCap)
	}
}
