package core

import (
	"errors"
	"fmt"
	"time"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Per-core sharding. A ShardGroup is M independent endpoints, each
// owning a disjoint subset of the flow space via RSS-style steering on
// the flow identifier's CRC-32 (the same randomising hash the FST uses
// for slot indexing, Section 5.3 — correlated addresses and sequential
// ports spread uniformly). Because a flow's datagrams always steer to
// the same shard, every per-flow invariant — AEAD nonce monotonicity,
// wear-out accounting, replay-window exactness — holds per shard with
// no cross-shard coordination: shards share no locks, no caches and no
// counters on the datagram path. The cost is per-shard soft state
// (separate FST/TFKC/RFKC/replay windows) and per-shard keying upcalls;
// the pay-off fbsbench's -shards matrix demonstrates is near-linear
// scaling of seal/open throughput with cores.
//
// Receive steering uses only the (source, destination) host pair — the
// ports and protocol of the original FlowID are sealed inside the
// datagram, invisible before Open. A sender sharding on the full
// 5-tuple would therefore spread one host pair's flows across shards
// whose receive side converges on one shard; that is correct (each sfl
// resolves independently) but lopsided. Symmetric deployments steer
// both directions by host pair via ShardOfIncoming/ShardOfPair.

// ShardGroup runs M endpoints as one logical data plane.
type ShardGroup struct {
	shards []*Endpoint
}

// NewShardGroup builds n endpoints from mk, which returns the Config
// for shard i. Configs typically differ only in Transport (each shard
// owns its own socket, mirroring SO_REUSEPORT deployments) and
// observation plumbing (shard-labelled collectors). On error, shards
// already built are closed.
func NewShardGroup(n int, mk func(shard int) (Config, error)) (*ShardGroup, error) {
	if n <= 0 {
		return nil, errors.New("core: shard count must be positive")
	}
	g := &ShardGroup{shards: make([]*Endpoint, 0, n)}
	for i := 0; i < n; i++ {
		cfg, err := mk(i)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("shard %d config: %w", i, err)
		}
		ep, err := NewEndpoint(cfg)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		g.shards = append(g.shards, ep)
	}
	return g, nil
}

// NumShards returns the shard count M.
func (g *ShardGroup) NumShards() int { return len(g.shards) }

// Shard returns shard i's endpoint.
func (g *ShardGroup) Shard(i int) *Endpoint { return g.shards[i] }

// ShardOf steers a flow to its owning shard: the CRC-32 of the flow
// attributes modulo M.
func (g *ShardGroup) ShardOf(id FlowID) int {
	return int(id.hash() % uint32(len(g.shards)))
}

// ShardOfPair steers by host pair only — the steering a receiver can
// compute before opening the datagram. Senders that want symmetric
// placement (one shard handles both directions of a conversation) use
// this for outgoing traffic too.
func (g *ShardGroup) ShardOfPair(src, dst principal.Address) int {
	return g.ShardOf(FlowID{Src: src, Dst: dst})
}

// ShardOfIncoming steers a received datagram to the shard owning its
// host pair. All flows between one (src, dst) pair land on one shard,
// so that shard's replay window sees every datagram of every such flow
// and duplicate suppression stays exact.
func (g *ShardGroup) ShardOfIncoming(dg transport.Datagram) int {
	return g.ShardOf(FlowID{Src: dg.Source, Dst: dg.Destination})
}

// Metrics aggregates the per-shard counters into one snapshot.
func (g *ShardGroup) Metrics() Metrics {
	var out Metrics
	for _, ep := range g.shards {
		m := ep.Metrics()
		out.Sent += m.Sent
		out.SentSecret += m.SentSecret
		out.SentBytes += m.SentBytes
		out.Received += m.Received
		out.ReceivedBytes += m.ReceivedBytes
		for i := range out.Drops {
			out.Drops[i] += m.Drops[i]
		}
		out.RejectedStale += m.RejectedStale
		out.RejectedMAC += m.RejectedMAC
		out.RejectedReplay += m.RejectedReplay
		out.RejectedMalformed += m.RejectedMalformed
		out.RejectedNotForUs += m.RejectedNotForUs
		out.RejectedAlgorithm += m.RejectedAlgorithm
		out.DecryptErrors += m.DecryptErrors
		out.KeyingErrors += m.KeyingErrors
		out.BypassedSent += m.BypassedSent
		out.BypassedReceived += m.BypassedReceived
	}
	return out
}

// DropCounts aggregates per-DropReason counters across shards.
func (g *ShardGroup) DropCounts() [NumDropReasons]uint64 {
	var out [NumDropReasons]uint64
	for _, ep := range g.shards {
		d := ep.DropCounts()
		for i := range out {
			out[i] += d[i]
		}
	}
	return out
}

// BatchStats aggregates the batch-call histograms across shards.
func (g *ShardGroup) BatchStats() BatchStats {
	var out BatchStats
	for _, ep := range g.shards {
		s := ep.BatchStats()
		for i := 0; i < NumBatchBuckets; i++ {
			out.SealCalls[i] += s.SealCalls[i]
			out.OpenCalls[i] += s.OpenCalls[i]
		}
		out.SealDatagrams += s.SealDatagrams
		out.OpenDatagrams += s.OpenDatagrams
	}
	return out
}

// ActiveFlows sums resident flow state across shards.
func (g *ShardGroup) ActiveFlows() int {
	n := 0
	for _, ep := range g.shards {
		n += ep.ActiveFlows()
	}
	return n
}

// BeginDrain flips every shard into drain mode (see
// Endpoint.BeginDrain).
func (g *ShardGroup) BeginDrain() {
	for _, ep := range g.shards {
		ep.BeginDrain()
	}
}

// Quiesce drains every shard and waits for their in-flight operations
// to finish, sharing one wall-clock deadline across the group. All
// shards are flipped to draining first, so the group's in-flight total
// only falls while the per-shard waits proceed.
func (g *ShardGroup) Quiesce(timeout time.Duration) error {
	g.BeginDrain()
	deadline := time.Now().Add(timeout)
	for _, ep := range g.shards {
		if err := ep.Quiesce(time.Until(deadline)); err != nil {
			return err
		}
	}
	return nil
}

// Inflight sums the in-flight operation counts across shards.
func (g *ShardGroup) Inflight() int64 {
	var n int64
	for _, ep := range g.shards {
		n += ep.Inflight()
	}
	return n
}

// HandoffSoftState warms every shard of dst from the keying caches of
// every shard of this group, returning the summed counts. The union
// fan-out makes the handoff insensitive to a shard-count change:
// receive steering is hash % M, so a new M moves peers between shards,
// and seeding each successor shard with every peer's certificate and
// master key guarantees the swap costs zero exponentiations no matter
// where a peer lands. Master keys carry only between matching
// identities (see Endpoint.HandoffSoftState); installs a successor's
// budget refuses simply rebuild via upcalls.
func (g *ShardGroup) HandoffSoftState(dst *ShardGroup) HandoffStats {
	var hs HandoffStats
	for _, old := range g.shards {
		for _, ep := range dst.shards {
			s := old.HandoffSoftState(ep)
			hs.Certs += s.Certs
			hs.MasterKeys += s.MasterKeys
		}
	}
	return hs
}

// Close closes every shard, returning the first error. Endpoint.Close
// is idempotent, so closing a group twice — or closing a group whose
// construction already failed partway — releases each transport
// exactly once.
func (g *ShardGroup) Close() error {
	var first error
	for _, ep := range g.shards {
		if ep == nil {
			continue
		}
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
