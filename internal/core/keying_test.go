package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fbs/internal/cert"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// testWorld is a small universe: a CA, a directory, and identities.
type testWorld struct {
	ca    *cert.Authority
	dir   *cert.StaticDirectory
	ver   *cert.Verifier
	clock *SimClock
	ids   map[principal.Address]*principal.Identity
}

var (
	worldOnce sync.Once
	worldCA   *cert.Authority
)

func newWorld(t testing.TB) *testWorld {
	t.Helper()
	worldOnce.Do(func() {
		ca, err := cert.NewAuthority("test-root", 512)
		if err != nil {
			t.Fatal(err)
		}
		worldCA = ca
	})
	return &testWorld{
		ca:    worldCA,
		dir:   cert.NewStaticDirectory(),
		ver:   &cert.Verifier{CAKey: worldCA.PublicKey(), CA: "test-root"},
		clock: NewSimClock(time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)),
		ids:   make(map[principal.Address]*principal.Identity),
	}
}

func (w *testWorld) principal(t testing.TB, addr principal.Address) *principal.Identity {
	t.Helper()
	if id, ok := w.ids[addr]; ok {
		return id
	}
	id, err := principal.NewIdentity(addr, cryptolib.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.ca.Issue(id, w.clock.Now().Add(-time.Hour), w.clock.Now().Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	w.dir.Publish(c)
	w.ids[addr] = id
	return id
}

func (w *testWorld) keyService(t testing.TB, addr principal.Address, cfg KeyServiceConfig) *KeyService {
	t.Helper()
	return NewKeyService(w.principal(t, addr), w.dir, w.ver, w.clock, cfg)
}

func TestKeyServiceMasterKeySymmetric(t *testing.T) {
	w := newWorld(t)
	ksA := w.keyService(t, "a", KeyServiceConfig{})
	ksB := w.keyService(t, "b", KeyServiceConfig{})
	ka, err := ksA.MasterKey("b")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := ksB.MasterKey("a")
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("the two sides computed different master keys")
	}
}

func TestKeyServiceCaching(t *testing.T) {
	w := newWorld(t)
	w.principal(t, "peer")
	ks := w.keyService(t, "self", KeyServiceConfig{})
	for i := 0; i < 5; i++ {
		if _, err := ks.MasterKey("peer"); err != nil {
			t.Fatal(err)
		}
	}
	s := ks.Stats()
	if s.MasterKeyComputes != 1 {
		t.Fatalf("MasterKeyComputes = %d, want 1 (MKC should absorb repeats)", s.MasterKeyComputes)
	}
	if s.CertFetches != 1 {
		t.Fatalf("CertFetches = %d, want 1 (PVC should absorb repeats)", s.CertFetches)
	}
	if mkc := ks.MKCStats(); mkc.Hits != 4 {
		t.Fatalf("MKC hits = %d, want 4", mkc.Hits)
	}
}

func TestKeyServiceUnknownPeer(t *testing.T) {
	w := newWorld(t)
	ks := w.keyService(t, "self", KeyServiceConfig{})
	if _, err := ks.MasterKey("ghost"); err == nil {
		t.Fatal("master key for unpublished peer succeeded")
	}
	if ks.Stats().Failures != 1 {
		t.Fatal("failure not counted")
	}
}

func TestKeyServiceExpiredCertRefetch(t *testing.T) {
	w := newWorld(t)
	peer := w.principal(t, "peer")
	ks := w.keyService(t, "self", KeyServiceConfig{})
	if _, err := ks.MasterKey("peer"); err != nil {
		t.Fatal(err)
	}
	// Jump past expiry; the cached cert fails verification. With a
	// fresh cert published, the service must refetch transparently.
	w.clock.Advance(48 * time.Hour)
	fresh, err := w.ca.Issue(peer, w.clock.Now().Add(-time.Hour), w.clock.Now().Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	w.dir.Publish(fresh)
	ks.InvalidatePeer("peer") // drop the MKC entry so the cert path runs
	if _, err := ks.MasterKey("peer"); err != nil {
		t.Fatalf("refetch after expiry failed: %v", err)
	}
	if ks.Stats().CertFetches < 2 {
		t.Fatal("no refetch happened")
	}
}

func TestKeyServicePinnedCertificate(t *testing.T) {
	w := newWorld(t)
	peer := w.principal(t, "peer")
	// Service with an EMPTY directory: only the pinned cert can work.
	emptyDir := cert.NewStaticDirectory()
	ks := NewKeyService(w.principal(t, "self"), emptyDir, w.ver, w.clock, KeyServiceConfig{})
	c, err := w.ca.Issue(peer, w.clock.Now().Add(-time.Hour), w.clock.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ks.Pin(c)
	if _, err := ks.MasterKey("peer"); err != nil {
		t.Fatalf("pinned certificate not used: %v", err)
	}
	if ks.Stats().CertFetches != 0 {
		t.Fatal("pinning still hit the directory")
	}
}

func TestFlowKeyProperties(t *testing.T) {
	var master [16]byte
	copy(master[:], "0123456789abcdef")
	k1 := FlowKey(cryptolib.HashMD5, 1, master, "s", "d")
	// Distinct on every input.
	if k1 == FlowKey(cryptolib.HashMD5, 2, master, "s", "d") {
		t.Error("flow key ignores sfl")
	}
	if k1 == FlowKey(cryptolib.HashMD5, 1, master, "x", "d") {
		t.Error("flow key ignores source")
	}
	if k1 == FlowKey(cryptolib.HashMD5, 1, master, "s", "x") {
		t.Error("flow key ignores destination")
	}
	var otherMaster [16]byte
	copy(otherMaster[:], "fedcba9876543210")
	if k1 == FlowKey(cryptolib.HashMD5, 1, otherMaster, "s", "d") {
		t.Error("flow key ignores master key")
	}
	// Deterministic.
	if k1 != FlowKey(cryptolib.HashMD5, 1, master, "s", "d") {
		t.Error("flow key not deterministic")
	}
	// Directionality: flows are unidirectional (Section 5.2), so the
	// reverse direction keys differently.
	if k1 == FlowKey(cryptolib.HashMD5, 1, master, "d", "s") {
		t.Error("flow key symmetric in direction")
	}
}

// Flow key derivation must be unambiguous: the (sfl, S, D) encoding uses
// length-prefixed addresses, so shifting bytes between S and D changes
// the key.
func TestFlowKeyUnambiguousEncoding(t *testing.T) {
	var master [16]byte
	a := FlowKey(cryptolib.HashMD5, 7, master, "ab", "c")
	b := FlowKey(cryptolib.HashMD5, 7, master, "a", "bc")
	if a == b {
		t.Fatal("address boundary ambiguity in flow key derivation")
	}
}

func TestMKDCoalescesUpcalls(t *testing.T) {
	w := newWorld(t)
	w.principal(t, "peer")
	ks := w.keyService(t, "self", KeyServiceConfig{})
	mkd := NewMKD(ks)
	defer mkd.Stop()
	const n = 16
	var wg sync.WaitGroup
	keys := make([][16]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, err := mkd.Upcall("peer")
			if err != nil {
				t.Error(err)
				return
			}
			keys[i] = k
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if keys[i] != keys[0] {
			t.Fatal("upcalls returned different keys")
		}
	}
	if got := mkd.Upcalls(); got != n {
		t.Fatalf("Upcalls = %d, want %d", got, n)
	}
	// The whole burst should cost at most a couple of exponentiations
	// (single-flight may admit a second batch that raced the first).
	if c := ks.Stats().MasterKeyComputes; c > 2 {
		t.Fatalf("MasterKeyComputes = %d for %d coalesced upcalls", c, n)
	}
}

func TestMKDStop(t *testing.T) {
	w := newWorld(t)
	ks := w.keyService(t, "self", KeyServiceConfig{})
	mkd := NewMKD(ks)
	mkd.Stop()
	mkd.Stop() // idempotent
	if _, err := mkd.Upcall("peer"); err != ErrMKDStopped {
		t.Fatalf("Upcall after Stop = %v, want ErrMKDStopped", err)
	}
}

func TestFlowKeyFlightCoalesces(t *testing.T) {
	var fl flowKeyFlight
	var calls atomic.Int32
	release := make(chan struct{})
	ck := flowCacheKey{SFL: 1, Dst: "b", Src: "a"}
	want := [16]byte{0xAB, 0xCD}

	results := make(chan [16]byte, 9)
	derive := func() ([16]byte, KeyNote, error) {
		calls.Add(1)
		<-release
		return want, KeyNote{}, nil
	}
	// The leader takes the slot and blocks inside the derivation...
	go func() {
		k, _, _, _ := fl.do(ck, derive)
		results <- k
	}()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...then eight followers pile onto the same key; each must register
	// as a dedup rather than starting its own derivation.
	for i := 0; i < 8; i++ {
		go func() {
			k, _, _, _ := fl.do(ck, derive)
			results <- k
		}()
	}
	for fl.Dedups() != 8 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 9; i++ {
		if k := <-results; k != want {
			t.Fatalf("waiter %d got key %x", i, k)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("derivation ran %d times, want 1", n)
	}
}

func TestFlowKeyFlightDistinctKeysIndependent(t *testing.T) {
	var fl flowKeyFlight
	a, _, _, _ := fl.do(flowCacheKey{SFL: 1, Dst: "b", Src: "a"}, func() ([16]byte, KeyNote, error) {
		return [16]byte{1}, KeyNote{}, nil
	})
	b, _, _, _ := fl.do(flowCacheKey{SFL: 2, Dst: "b", Src: "a"}, func() ([16]byte, KeyNote, error) {
		return [16]byte{2}, KeyNote{}, nil
	})
	if a == b {
		t.Fatal("distinct flows shared a derivation")
	}
	if fl.Dedups() != 0 {
		t.Fatalf("sequential distinct derivations counted %d dedups", fl.Dedups())
	}
	// The slot is released after completion: a later derivation for the
	// same key runs again (the RFKC, not the flight, is the cache).
	var calls int
	fl.do(flowCacheKey{SFL: 1, Dst: "b", Src: "a"}, func() ([16]byte, KeyNote, error) {
		calls++
		return [16]byte{1}, KeyNote{}, nil
	})
	if calls != 1 {
		t.Fatal("post-completion derivation did not run")
	}
}

func TestFlowKeyFlightPropagatesError(t *testing.T) {
	var fl flowKeyFlight
	release := make(chan struct{})
	started := make(chan struct{})
	ck := flowCacheKey{SFL: 9, Dst: "b", Src: "a"}
	errc := make(chan error, 2)
	go func() {
		_, _, _, err := fl.do(ck, func() ([16]byte, KeyNote, error) {
			close(started)
			<-release
			return [16]byte{}, KeyNote{}, ErrKeyingOverload
		})
		errc <- err
	}()
	<-started
	go func() {
		_, _, _, err := fl.do(ck, func() ([16]byte, KeyNote, error) { return [16]byte{}, KeyNote{}, nil })
		errc <- err
	}()
	for fl.Dedups() != 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errc; !errors.Is(err, ErrKeyingOverload) {
			t.Fatalf("waiter %d err = %v, want ErrKeyingOverload", i, err)
		}
	}
}
