package core

import (
	crand "crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// This file is the edge pre-filter: the receive path's first line of
// defense, sitting in front of the header parse, the caches, and the
// keying admission gate. The admission gate (admission.go) bounds how
// much *keying work* a spoofed-source flood can buy; this layer bounds
// how much *any* work an offered forgery can buy, by refusing traffic
// before the endpoint even parses it. It has two mechanisms and a
// ladder that decides when they run:
//
//   - A per-prefix counting sketch: a fixed-size array of counters
//     indexed by CRC hashes of the source-address prefix. Every drop
//     that smells like forgery (bad MAC, admission shed, bad cookie,
//     challenged, prefilter) charges the source's prefix; once a
//     prefix's score crosses the threshold, its datagrams are refused
//     (DropPrefilter) before the header parse. Periodic halving decay
//     forgives a prefix that goes quiet. The sketch is zero-allocation
//     and lock-free: two atomic loads to score, two atomic adds to
//     charge.
//
//   - A stateless cookie challenge: at the ladder's top level an
//     unknown peer's datagram is not admitted to keying; the endpoint
//     instead emits a small challenge frame carrying an HMAC cookie
//     over (source address, rotating secret epoch, coarse timestamp)
//     and retains nothing — the cookie IS the state, held by the
//     sender. A legitimate sender's stack absorbs the challenge into
//     its cookie jar and wraps its retries in an echo envelope; the
//     receiver verifies the echo with one keyed-hash check, which
//     proves return routability (a spoofed source never saw the
//     cookie) and bypasses nothing else — budget, admission and suite
//     policy still apply to the unwrapped datagram.
//
// The ladder (off → sketch → sketch+challenge) is driven by the same
// pressure signals the overload plane already produces: the admission
// gate's shed rate, the state budget's pressure band, and the keying
// gate depth. Escalation and de-escalation both require a streak of
// consistent evaluations (hysteresis), so a single hot sample cannot
// flap the level. A mirrored implementation lives in internal/refmodel
// so the differential harness can hold the two byte-identical.

// PrefilterLevel is a rung of the degradation ladder.
type PrefilterLevel int32

const (
	// PrefilterOff disables both mechanisms (the adaptive resting
	// state).
	PrefilterOff PrefilterLevel = iota
	// PrefilterSketch enables per-prefix sketch shedding only.
	PrefilterSketch
	// PrefilterChallenge enables the sketch plus the cookie challenge
	// for unknown peers.
	PrefilterChallenge
)

// String returns the canonical level name.
func (l PrefilterLevel) String() string {
	switch l {
	case PrefilterOff:
		return "off"
	case PrefilterSketch:
		return "sketch"
	case PrefilterChallenge:
		return "challenge"
	default:
		return "unknown"
	}
}

// Cookie control-frame wire format, exported so harnesses (netsim, the
// UDP demo) can recognise and corrupt frames without reaching into the
// codec. A challenge frame is exactly CookieFrameLen bytes; an echo
// envelope is the same 27-byte prefix followed by the sealed datagram
// it answers for. The magic byte is deliberately distinct from
// HeaderVersion, so a control frame can never parse as a datagram
// header and vice versa.
const (
	// CookieMagic is the first byte of every cookie control frame.
	CookieMagic byte = 0xFB
	// CookieKindChallenge marks a receiver-to-sender challenge frame.
	CookieKindChallenge byte = 0xC7
	// CookieKindEcho marks a sender-to-receiver echo envelope.
	CookieKindEcho byte = 0xEC
	// CookieVersion is the control-frame format version.
	CookieVersion byte = 1
	// CookieFrameLen is the length of a challenge frame and the
	// envelope overhead of an echo: magic, kind, version, epoch (u32),
	// stamp (u32), MAC (16 bytes).
	CookieFrameLen = 3 + 4 + 4 + cookieMACLen
)

const cookieMACLen = 16

// cookie is the decoded form of the HMAC cookie a challenge carries
// and an echo returns.
type cookie struct {
	epoch uint32
	stamp uint32
	mac   [cookieMACLen]byte
}

// appendCookieFrame encodes a control frame of the given kind.
func appendCookieFrame(dst []byte, kind byte, ck cookie) []byte {
	dst = append(dst, CookieMagic, kind, CookieVersion)
	var be [8]byte
	binary.BigEndian.PutUint32(be[0:4], ck.epoch)
	binary.BigEndian.PutUint32(be[4:8], ck.stamp)
	dst = append(dst, be[:]...)
	return append(dst, ck.mac[:]...)
}

// parseCookieFrame decodes a control frame prefix. ok is false when the
// bytes are not a well-formed frame of a known kind and version.
func parseCookieFrame(wire []byte) (kind byte, ck cookie, ok bool) {
	if len(wire) < CookieFrameLen || wire[0] != CookieMagic || wire[2] != CookieVersion {
		return 0, cookie{}, false
	}
	kind = wire[1]
	if kind != CookieKindChallenge && kind != CookieKindEcho {
		return 0, cookie{}, false
	}
	ck.epoch = binary.BigEndian.Uint32(wire[3:7])
	ck.stamp = binary.BigEndian.Uint32(wire[7:11])
	copy(ck.mac[:], wire[11:CookieFrameLen])
	return kind, ck, true
}

// PrefilterConfig configures the edge pre-filter. The zero value
// disables it entirely; Enable with everything else zero gets the
// defaults noted per field and fully adaptive ladder behaviour.
type PrefilterConfig struct {
	// Enable turns the pre-filter machinery on. Off, the endpoint has
	// no jar, no sketch, and zero per-datagram overhead.
	Enable bool
	// ForceLevel pins the ladder at a fixed level instead of adapting
	// to pressure. PrefilterOff (the zero value) means adaptive. The
	// differential harness pins both implementations to the same level
	// because the reference model has no pressure signals to adapt to.
	ForceLevel PrefilterLevel
	// SecretSeed, when non-empty, derives the rotating cookie secret
	// deterministically, so a restarted endpoint (same seed, same
	// clock) honours cookies it minted before the crash — the secret
	// is itself stateless. Empty draws a random root: cookies die with
	// the process, which is also safe (senders just get re-challenged).
	SecretSeed []byte
	// EpochInterval is the secret rotation period; default 64s. A
	// cookie is accepted under the current or immediately previous
	// epoch's secret.
	EpochInterval time.Duration
	// CookieTTL bounds the age of an acceptable cookie stamp; default
	// 2×EpochInterval.
	CookieTTL time.Duration
	// PrefixLen is how many leading bytes of the source address form
	// the sketch prefix; default 8.
	PrefixLen int
	// ShedThreshold is the sketch score at which a prefix is shed;
	// default 32.
	ShedThreshold uint32
	// DecayEvery halves every sketch bucket after this many
	// observations (charges), forgiving prefixes that go quiet;
	// default 1024.
	DecayEvery uint64
	// EvalEvery re-evaluates the adaptive ladder every this many
	// received datagrams; default 256. The challenge rate cap window
	// resets on the same cadence.
	EvalEvery uint64
	// HotEvals / ColdEvals are the hysteresis streaks: consecutive hot
	// evaluations required to climb one rung, and consecutive cold
	// ones to descend. Defaults 2 and 4 — quick to engage, slow to
	// stand down.
	HotEvals  int
	ColdEvals int
	// ChallengeBurst caps challenge frames emitted per eval window;
	// beyond it a challenged datagram is still refused but no frame is
	// sent (counted ChallengeSuppressed). Default 64.
	ChallengeBurst int
	// JarCap bounds the sender-side cookie jar; default 256. At
	// capacity the stalest entry is evicted.
	JarCap int
}

// PrefilterStats is a snapshot of pre-filter activity, exported through
// EndpointStats and the fbs_prefilter_* metric families.
type PrefilterStats struct {
	// Level is the ladder's current rung (0 off, 1 sketch, 2
	// sketch+challenge).
	Level int
	// Escalations / Deescalations count ladder transitions.
	Escalations   uint64
	Deescalations uint64
	// SketchSheds counts datagrams refused by the sketch before the
	// header parse (the DropPrefilter bucket).
	SketchSheds uint64
	// Challenged counts challenge frames actually emitted;
	// ChallengeSuppressed counts refusals past the per-window rate cap
	// where no frame was sent.
	Challenged          uint64
	ChallengeSuppressed uint64
	// EchoAccepted / EchoRejected count echo-envelope verifications.
	EchoAccepted uint64
	EchoRejected uint64
	// CookiesLearned counts challenge frames absorbed into the
	// sender-side jar; CookiesAttached counts outgoing datagrams
	// wrapped in an echo envelope.
	CookiesLearned  uint64
	CookiesAttached uint64
	// HeaderParses counts datagrams that reached the header decode —
	// the work counter that proves pre-parse shedding: datagrams shed
	// by the sketch never increment it.
	HeaderParses uint64
	// SketchDecays counts halving sweeps over the sketch.
	SketchDecays uint64
	// Epoch is the current secret epoch.
	Epoch uint32
}

// Sketch geometry: two rows of 1024 counters each, scored as the
// minimum across rows (a count-min sketch). Fixed at compile time so
// the whole structure is one flat 8 KiB array with no pointers.
const (
	sketchRows = 2
	sketchCols = 1024
)

// sketchSalts give each row an independent hash; the refmodel mirror
// restates these values.
var sketchSalts = [sketchRows]uint32{0x9e3779b9, 0x85ebca6b}

var sketchCRCTable = crc32.MakeTable(crc32.IEEE)

// sketchSlot hashes a prefix into row's bucket index. Hand-rolled CRC
// over the string so scoring a datagram never converts the address to
// a byte slice (which would allocate on the pre-parse hot path).
func sketchSlot(row int, prefix string) uint32 {
	crc := sketchSalts[row]
	for i := 0; i < len(prefix); i++ {
		crc = sketchCRCTable[byte(crc)^prefix[i]] ^ (crc >> 8)
	}
	return crc % sketchCols
}

// prefilter is the per-endpoint pre-filter state.
type prefilter struct {
	cfg  PrefilterConfig
	root [cookieMACLen]byte // cookie secret root; epochs derive from it

	// Ladder state. lvl is the adaptive level (ignored when
	// ForceLevel pins it); seen drives the eval cadence; the streak
	// counters live under evalMu, held only by the elected evaluator.
	lvl          atomic.Int32
	seen         atomic.Uint64
	evalMu       sync.Mutex
	hotStreak    int
	coldStreak   int
	lastShedRead uint64 // admission sheds at the previous evaluation

	// Sketch state.
	buckets [sketchRows * sketchCols]atomic.Uint32
	obs     atomic.Uint64

	// Sender-side cookie jar.
	jar cookieJar

	// Challenge rate cap for the current eval window.
	challengeWin atomic.Uint32

	// Counters (see PrefilterStats).
	escalations         atomic.Uint64
	deescalations       atomic.Uint64
	sketchSheds         atomic.Uint64
	challenged          atomic.Uint64
	challengeSuppressed atomic.Uint64
	echoAccepted        atomic.Uint64
	echoRejected        atomic.Uint64
	cookiesLearned      atomic.Uint64
	cookiesAttached     atomic.Uint64
	headerParses        atomic.Uint64
	sketchDecays        atomic.Uint64
}

// newPrefilter validates the config, applies defaults, and derives the
// secret root.
func newPrefilter(cfg PrefilterConfig) (*prefilter, error) {
	if cfg.ForceLevel < PrefilterOff || cfg.ForceLevel > PrefilterChallenge {
		return nil, fmt.Errorf("core: Prefilter.ForceLevel %d out of range", cfg.ForceLevel)
	}
	if cfg.EpochInterval <= 0 {
		cfg.EpochInterval = 64 * time.Second
	}
	// Epoch arithmetic is in whole seconds (epochAt divides Unix time by
	// EpochInterval/time.Second), so any interval in (0, 1s) would make
	// the divisor zero and panic on the first challenge or cookie
	// operation. Refuse it here, at config time, where the operator can
	// see it — a sub-second secret rotation is never a sensible ask.
	if cfg.EpochInterval < time.Second {
		return nil, fmt.Errorf("core: Prefilter.EpochInterval %v below the 1s epoch granularity", cfg.EpochInterval)
	}
	if cfg.CookieTTL <= 0 {
		cfg.CookieTTL = 2 * cfg.EpochInterval
	}
	if cfg.PrefixLen <= 0 {
		cfg.PrefixLen = 8
	}
	if cfg.ShedThreshold == 0 {
		cfg.ShedThreshold = 32
	}
	if cfg.DecayEvery == 0 {
		cfg.DecayEvery = 1024
	}
	if cfg.EvalEvery == 0 {
		cfg.EvalEvery = 256
	}
	if cfg.HotEvals <= 0 {
		cfg.HotEvals = 2
	}
	if cfg.ColdEvals <= 0 {
		cfg.ColdEvals = 4
	}
	if cfg.ChallengeBurst <= 0 {
		cfg.ChallengeBurst = 64
	}
	if cfg.JarCap <= 0 {
		cfg.JarCap = 256
	}
	p := &prefilter{cfg: cfg}
	if len(cfg.SecretSeed) > 0 {
		copy(p.root[:], cryptolib.Digest(cryptolib.HashMD5, []byte("fbs-prefilter-root"), cfg.SecretSeed))
	} else if _, err := crand.Read(p.root[:]); err != nil {
		return nil, fmt.Errorf("core: prefilter secret: %w", err)
	}
	p.jar.cap = cfg.JarCap
	return p, nil
}

// stats snapshots the counters (nil-safe).
func (p *prefilter) stats(now time.Time) PrefilterStats {
	if p == nil {
		return PrefilterStats{}
	}
	return PrefilterStats{
		Level:               int(p.levelNow()),
		Escalations:         p.escalations.Load(),
		Deescalations:       p.deescalations.Load(),
		SketchSheds:         p.sketchSheds.Load(),
		Challenged:          p.challenged.Load(),
		ChallengeSuppressed: p.challengeSuppressed.Load(),
		EchoAccepted:        p.echoAccepted.Load(),
		EchoRejected:        p.echoRejected.Load(),
		CookiesLearned:      p.cookiesLearned.Load(),
		CookiesAttached:     p.cookiesAttached.Load(),
		HeaderParses:        p.headerParses.Load(),
		SketchDecays:        p.sketchDecays.Load(),
		Epoch:               p.epochAt(now),
	}
}

// levelNow returns the effective ladder level.
func (p *prefilter) levelNow() PrefilterLevel {
	if p.cfg.ForceLevel != PrefilterOff {
		return p.cfg.ForceLevel
	}
	return PrefilterLevel(p.lvl.Load())
}

// prefixOf slices the sketch prefix out of an address (no allocation:
// a string slice shares the backing bytes).
func (p *prefilter) prefixOf(addr principal.Address) string {
	s := string(addr)
	if len(s) > p.cfg.PrefixLen {
		return s[:p.cfg.PrefixLen]
	}
	return s
}

// score returns the prefix's count-min score.
func (p *prefilter) score(prefix string) uint32 {
	s := p.buckets[sketchSlot(0, prefix)].Load()
	if v := p.buckets[sketchCols+int(sketchSlot(1, prefix))].Load(); v < s {
		s = v
	}
	return s
}

// penalize charges one forgery-attributable drop against the prefix
// and runs the halving decay when the observation count comes due.
func (p *prefilter) penalize(prefix string) {
	p.buckets[sketchSlot(0, prefix)].Add(1)
	p.buckets[sketchCols+int(sketchSlot(1, prefix))].Add(1)
	if p.obs.Add(1)%p.cfg.DecayEvery == 0 {
		for i := range p.buckets {
			// A racing Add between Load and Store can be forgotten; the
			// sketch is an estimator and the loss only errs toward
			// forgiveness.
			p.buckets[i].Store(p.buckets[i].Load() / 2)
		}
		p.sketchDecays.Add(1)
	}
}

// Secret epochs. The per-epoch secret is an HMAC chain off the root,
// so it is never stored: any epoch's secret can be rederived, which is
// what lets a crashed endpoint (deterministic seed) resume honouring
// its own cookies.

func (p *prefilter) epochAt(now time.Time) uint32 {
	return uint32(now.Unix() / int64(p.cfg.EpochInterval/time.Second))
}

func (p *prefilter) secretFor(epoch uint32) [cookieMACLen]byte {
	var eb [4]byte
	binary.BigEndian.PutUint32(eb[:], epoch)
	var out [cookieMACLen]byte
	copy(out[:], cryptolib.MACHMACMD5.Compute(p.root[:], eb[:]))
	return out
}

// cookieMAC binds a cookie to the challenged source address.
func (p *prefilter) cookieMAC(addr principal.Address, ck cookie) [cookieMACLen]byte {
	key := p.secretFor(ck.epoch)
	var sb [4]byte
	binary.BigEndian.PutUint32(sb[:], ck.stamp)
	var out [cookieMACLen]byte
	copy(out[:], cryptolib.MACHMACMD5.Compute(key[:], addr.Bytes(), sb[:]))
	return out
}

// mint creates a cookie for addr under the current epoch.
func (p *prefilter) mint(addr principal.Address, now time.Time) cookie {
	ck := cookie{epoch: p.epochAt(now), stamp: uint32(now.Unix())}
	ck.mac = p.cookieMAC(addr, ck)
	return ck
}

// verifyCookie checks an echoed cookie: current-or-previous epoch,
// stamp within the TTL, MAC binding the claimed source, compared in
// constant time.
func (p *prefilter) verifyCookie(addr principal.Address, ck cookie, now time.Time) bool {
	cur := p.epochAt(now)
	if ck.epoch != cur && ck.epoch+1 != cur {
		return false
	}
	age := now.Unix() - int64(ck.stamp)
	if age < 0 {
		age = -age
	}
	if age > int64(p.cfg.CookieTTL/time.Second) {
		return false
	}
	want := p.cookieMAC(addr, ck)
	return subtle.ConstantTimeCompare(want[:], ck.mac[:]) == 1
}

// cookieJar is the sender-side store of cookies received in challenge
// frames, keyed by the challenging peer. Bounded; stalest-out.
type cookieJar struct {
	mu      sync.Mutex
	cap     int
	entries map[principal.Address]jarEntry
}

type jarEntry struct {
	ck      cookie
	learned time.Time
}

func (j *cookieJar) learn(peer principal.Address, ck cookie, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.entries == nil {
		j.entries = make(map[principal.Address]jarEntry)
	}
	if _, exists := j.entries[peer]; !exists && len(j.entries) >= j.cap {
		var stalest principal.Address
		var oldest time.Time
		first := true
		for k, v := range j.entries {
			if first || v.learned.Before(oldest) {
				stalest, oldest, first = k, v.learned, false
			}
		}
		delete(j.entries, stalest)
	}
	j.entries[peer] = jarEntry{ck: ck, learned: now}
}

func (j *cookieJar) lookup(peer principal.Address, now time.Time, ttl time.Duration) (cookie, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[peer]
	if !ok {
		return cookie{}, false
	}
	if now.Sub(e.learned) > ttl {
		delete(j.entries, peer)
		return cookie{}, false
	}
	return e.ck, true
}

// tick advances the eval cadence: every EvalEvery received datagrams
// one caller is elected (TryLock) to reset the challenge window and,
// in adaptive mode, re-evaluate the ladder against the endpoint's
// pressure signals with hysteresis.
func (p *prefilter) tick(e *Endpoint) {
	n := p.seen.Add(1)
	if n%p.cfg.EvalEvery != 0 {
		return
	}
	if !p.evalMu.TryLock() {
		return
	}
	defer p.evalMu.Unlock()
	p.challengeWin.Store(0)
	if p.cfg.ForceLevel != PrefilterOff {
		return
	}
	if p.hotSignal(e) {
		p.coldStreak = 0
		p.hotStreak++
		if p.hotStreak >= p.cfg.HotEvals {
			p.hotStreak = 0
			if cur := p.lvl.Load(); cur < int32(PrefilterChallenge) {
				p.lvl.Store(cur + 1)
				p.escalations.Add(1)
			}
		}
		return
	}
	p.hotStreak = 0
	p.coldStreak++
	if p.coldStreak >= p.cfg.ColdEvals {
		p.coldStreak = 0
		if cur := p.lvl.Load(); cur > int32(PrefilterOff) {
			p.lvl.Store(cur - 1)
			p.deescalations.Add(1)
		}
	}
}

// prefilterHotGateDepth is the keying-gate depth (in-flight upcalls)
// that counts as pressure on its own.
const prefilterHotGateDepth = 8

// hotSignal reads the overload plane: the admission shed rate over the
// last eval window (hot above 1/8 of the window's datagrams), the
// state budget's pressure band, and the keying gate depth. Caller
// holds evalMu.
func (p *prefilter) hotSignal(e *Endpoint) bool {
	sheds := e.metrics.drops[DropKeyingOverload].Load() + e.metrics.drops[DropPeerQuota].Load()
	delta := sheds - p.lastShedRead
	p.lastShedRead = sheds
	if delta*8 >= p.cfg.EvalEvery {
		return true
	}
	if e.cfg.StateBudget.Level() != BudgetNormal {
		return true
	}
	if e.gate.Stats().Depth >= prefilterHotGateDepth {
		return true
	}
	return false
}

// emitChallenge sends a challenge frame to src (best-effort, never
// counted as endpoint Sent — it is control traffic), subject to the
// per-window rate cap.
func (p *prefilter) emitChallenge(e *Endpoint, src principal.Address, now time.Time, tc *traceCtx) {
	if int(p.challengeWin.Add(1)) > p.cfg.ChallengeBurst {
		p.challengeSuppressed.Add(1)
		return
	}
	ck := p.mint(src, now)
	frame := appendCookieFrame(make([]byte, 0, CookieFrameLen), CookieKindChallenge, ck)
	_ = e.cfg.Transport.Send(transport.Datagram{Source: e.Addr(), Destination: src, Payload: frame})
	p.challenged.Add(1)
	if tc.active() {
		tc.span(Span{Kind: SpanChallenge, Start: now, Attr: uint64(ck.epoch)})
	}
}

// prefilterInbound is the receive path's pre-parse stage, called after
// the addressing check and before the header decode. It may rewrite
// dg.Payload (stripping a verified echo envelope) or refuse the
// datagram:
//
//   - a challenge frame addressed to us is absorbed into the jar and
//     reported as ErrChallengeAbsorbed (control traffic, DropNone);
//   - an echo envelope is verified — valid strips the envelope and
//     proceeds (return routability proven, so the sketch and challenge
//     are bypassed; everything downstream still applies), invalid is
//     DropBadCookie;
//   - at PrefilterSketch and above, a source prefix scoring past the
//     threshold is shed (DropPrefilter) before any parse work;
//   - at PrefilterChallenge, an unknown peer without an envelope is
//     refused (DropChallenged) and a challenge is emitted in its
//     place.
func (e *Endpoint) prefilterInbound(dg *transport.Datagram, tc *traceCtx) error {
	p := e.pf
	p.tick(e)
	now := e.cfg.Clock.Now()
	wire := dg.Payload
	if len(wire) >= CookieFrameLen && wire[0] == CookieMagic {
		if kind, ck, ok := parseCookieFrame(wire); ok {
			switch kind {
			case CookieKindChallenge:
				if len(wire) == CookieFrameLen {
					p.jar.learn(dg.Source, ck, now)
					p.cookiesLearned.Add(1)
					if tc.active() {
						tc.span(Span{Kind: SpanCookie, Start: now, Attr: uint64(ck.epoch)})
					}
					return fmt.Errorf("%w: from %q", ErrChallengeAbsorbed, dg.Source)
				}
				// A challenge frame with trailing bytes is not ours;
				// fall through and let the header parse refuse it.
			case CookieKindEcho:
				if !p.verifyCookie(dg.Source, ck, now) {
					p.echoRejected.Add(1)
					p.penalize(p.prefixOf(dg.Source))
					e.metrics.drop(DropBadCookie)
					// Re-challenge (rate-capped): a sender whose jarred
					// cookie was corrupted in flight would otherwise echo
					// it forever; a fresh challenge lets it re-learn.
					if p.levelNow() >= PrefilterChallenge {
						p.emitChallenge(e, dg.Source, now, tc)
					}
					if tc.active() {
						tc.span(Span{Kind: SpanPrefilter, Drop: DropBadCookie, Start: now, Attr: uint64(ck.epoch)})
					}
					return fmt.Errorf("%w: from %q", ErrBadCookie, dg.Source)
				}
				p.echoAccepted.Add(1)
				dg.Payload = wire[CookieFrameLen:]
				if tc.active() {
					tc.span(Span{Kind: SpanPrefilter, Start: now, Attr: uint64(ck.epoch)})
				}
				return nil
			}
		}
	}
	lvl := p.levelNow()
	if lvl >= PrefilterSketch {
		prefix := p.prefixOf(dg.Source)
		if score := p.score(prefix); score >= p.cfg.ShedThreshold {
			p.penalize(prefix)
			p.sketchSheds.Add(1)
			e.metrics.drop(DropPrefilter)
			if tc.active() {
				tc.span(Span{Kind: SpanPrefilter, Drop: DropPrefilter, Start: now, Attr: uint64(score)})
			}
			return fmt.Errorf("%w: prefix %q", ErrPrefilter, prefix)
		}
	}
	if lvl >= PrefilterChallenge && !e.ks.KnownPeer(dg.Source) {
		p.emitChallenge(e, dg.Source, now, tc)
		p.penalize(p.prefixOf(dg.Source))
		e.metrics.drop(DropChallenged)
		if tc.active() {
			tc.span(Span{Kind: SpanPrefilter, Drop: DropChallenged, Start: now})
		}
		return fmt.Errorf("%w: %q", ErrChallenged, dg.Source)
	}
	return nil
}

// prefilterObserveDrop feeds the sketch from downstream drops that
// indicate forgery: MAC failures and admission-gate sheds. Stale,
// malformed and budget drops are NOT charged — they arise from clock
// skew, damage and legitimate overload, and charging them would let a
// lossy link heat an honest prefix.
func (e *Endpoint) prefilterObserveDrop(src principal.Address, reason DropReason) {
	if e.pf == nil {
		return
	}
	switch reason {
	case DropBadMAC, DropKeyingOverload, DropPeerQuota:
		e.pf.penalize(e.pf.prefixOf(src))
	}
}

// prefilterWrap wraps an outgoing sealed datagram in an echo envelope
// when the jar holds a fresh cookie from the destination. Applied
// after Seal, so golden vectors and the sealed wire image are
// untouched — the envelope is transport framing, stripped before the
// peer's parse.
func (e *Endpoint) prefilterWrap(payload []byte, dst principal.Address) []byte {
	p := e.pf
	ck, ok := p.jar.lookup(dst, e.cfg.Clock.Now(), p.cfg.CookieTTL)
	if !ok {
		return payload
	}
	out := make([]byte, 0, CookieFrameLen+len(payload))
	out = appendCookieFrame(out, CookieKindEcho, ck)
	out = append(out, payload...)
	p.cookiesAttached.Add(1)
	return out
}
