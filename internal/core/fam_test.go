package core

import (
	"sync"
	"testing"
	"time"
)

var famEpoch = time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)

func testFAM(threshold time.Duration, size int) *FAM {
	return newFAMWithSeed(ThresholdPolicy{Threshold: threshold}, size, 1000)
}

func TestFAMSameTupleSameFlow(t *testing.T) {
	f := testFAM(10*time.Minute, 64)
	id := FlowID{Src: "a", Dst: "b", Proto: 6, SrcPort: 1234, DstPort: 80}
	sfl1, new1 := f.Classify(id, famEpoch, 100)
	sfl2, new2 := f.Classify(id, famEpoch.Add(time.Minute), 200)
	if !new1 || new2 {
		t.Fatalf("newness: got %v,%v want true,false", new1, new2)
	}
	if sfl1 != sfl2 {
		t.Fatal("same 5-tuple within threshold got different sfls")
	}
	s := f.Stats()
	if s.FlowsCreated != 1 || s.Hits != 1 || s.Lookups != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFAMThresholdExpiry(t *testing.T) {
	f := testFAM(10*time.Minute, 64)
	id := FlowID{Src: "a", Dst: "b", Proto: 17, SrcPort: 53, DstPort: 53}
	sfl1, _ := f.Classify(id, famEpoch, 1)
	// Just inside the threshold: same flow.
	sfl2, isNew := f.Classify(id, famEpoch.Add(10*time.Minute), 1)
	if isNew || sfl1 != sfl2 {
		t.Fatal("flow expired too early")
	}
	// The gap is measured from the LAST datagram.
	sfl3, isNew := f.Classify(id, famEpoch.Add(20*time.Minute), 1)
	if isNew || sfl3 != sfl1 {
		t.Fatal("threshold should measure from last arrival, not creation")
	}
	// Beyond the threshold: new flow, fresh sfl.
	sfl4, isNew := f.Classify(id, famEpoch.Add(31*time.Minute), 1)
	if !isNew || sfl4 == sfl1 {
		t.Fatal("idle flow not expired")
	}
}

func TestFAMDistinctTuplesDistinctFlows(t *testing.T) {
	f := testFAM(10*time.Minute, 1024)
	ids := []FlowID{
		{Src: "a", Dst: "b", Proto: 6, SrcPort: 1, DstPort: 80},
		{Src: "a", Dst: "b", Proto: 6, SrcPort: 2, DstPort: 80},
		{Src: "a", Dst: "b", Proto: 17, SrcPort: 1, DstPort: 80},
		{Src: "a", Dst: "c", Proto: 6, SrcPort: 1, DstPort: 80},
		{Src: "d", Dst: "b", Proto: 6, SrcPort: 1, DstPort: 80},
		{Src: "a", Dst: "b", Proto: 6, SrcPort: 1, DstPort: 81},
		{Src: "a", Dst: "b", Proto: 6, SrcPort: 1, DstPort: 80, Aux: 9},
	}
	seen := make(map[SFL]bool)
	for _, id := range ids {
		sfl, _ := f.Classify(id, famEpoch, 1)
		if seen[sfl] {
			t.Fatalf("sfl %d reused across different attribute sets", sfl)
		}
		seen[sfl] = true
	}
}

func TestFAMSFLNeverReused(t *testing.T) {
	f := testFAM(time.Minute, 8)
	seen := make(map[SFL]bool)
	now := famEpoch
	// Churn many flows through a tiny table: collisions and expiries
	// must always mint fresh sfls.
	for i := 0; i < 500; i++ {
		id := FlowID{Src: "a", Dst: "b", SrcPort: uint16(i)}
		sfl, isNew := f.Classify(id, now, 1)
		if isNew {
			if seen[sfl] {
				t.Fatalf("sfl %d assigned to two flows", sfl)
			}
			seen[sfl] = true
		}
		now = now.Add(time.Second)
	}
}

func TestFAMCollisionCounted(t *testing.T) {
	f := testFAM(time.Hour, 1) // single slot: every distinct tuple collides
	f.Classify(FlowID{SrcPort: 1}, famEpoch, 1)
	f.Classify(FlowID{SrcPort: 2}, famEpoch, 1)
	s := f.Stats()
	if s.Collisions != 1 {
		t.Fatalf("Collisions = %d, want 1", s.Collisions)
	}
}

func TestFAMSweeper(t *testing.T) {
	f := testFAM(10*time.Minute, 64)
	f.Classify(FlowID{SrcPort: 1}, famEpoch, 1)
	f.Classify(FlowID{SrcPort: 2}, famEpoch.Add(5*time.Minute), 1)
	if got := f.ActiveFlows(); got != 2 {
		t.Fatalf("ActiveFlows = %d, want 2", got)
	}
	// At +12min the first flow is idle >10min, the second is not.
	if n := f.Sweep(famEpoch.Add(12 * time.Minute)); n != 1 {
		t.Fatalf("Sweep expired %d, want 1", n)
	}
	if got := f.ActiveFlows(); got != 1 {
		t.Fatalf("ActiveFlows after sweep = %d, want 1", got)
	}
	if f.Stats().Expirations != 1 {
		t.Fatal("expirations not counted")
	}
}

func TestFAMAccounting(t *testing.T) {
	f := testFAM(time.Hour, 4)
	id := FlowID{Src: "a", Dst: "b"}
	_, _, _, _, slot, _ := f.classify(id, famEpoch, 100)
	f.classify(id, famEpoch.Add(time.Second), 150)
	e := f.entry(slot)
	if e.Packets != 2 || e.Bytes != 250 {
		t.Fatalf("entry accounting = %d pkts %d bytes", e.Packets, e.Bytes)
	}
	if !e.Created.Equal(famEpoch) || !e.Last.Equal(famEpoch.Add(time.Second)) {
		t.Fatal("entry times wrong")
	}
}

func TestHostPairPolicyAggregates(t *testing.T) {
	f := newFAMWithSeed(HostPairPolicy{}, 64, 5)
	a := FlowID{Src: "a", Dst: "b", Proto: 6, SrcPort: 1, DstPort: 80}
	b := FlowID{Src: "a", Dst: "b", Proto: 17, SrcPort: 999, DstPort: 53}
	c := FlowID{Src: "a", Dst: "c", Proto: 6, SrcPort: 1, DstPort: 80}
	s1, _ := f.Classify(a, famEpoch, 1)
	s2, _ := f.Classify(b, famEpoch.Add(time.Hour*100), 1) // never expires
	s3, _ := f.Classify(c, famEpoch, 1)
	if s1 != s2 {
		t.Fatal("host-pair policy separated same-pair traffic")
	}
	if s1 == s3 {
		t.Fatal("host-pair policy merged different pairs")
	}
}

func TestHostPairPolicyWithThreshold(t *testing.T) {
	f := newFAMWithSeed(HostPairPolicy{Threshold: time.Minute}, 64, 5)
	id := FlowID{Src: "a", Dst: "b"}
	s1, _ := f.Classify(id, famEpoch, 1)
	s2, isNew := f.Classify(id, famEpoch.Add(2*time.Minute), 1)
	if !isNew || s1 == s2 {
		t.Fatal("host-pair flow with threshold did not expire")
	}
	if f.Sweep(famEpoch.Add(10*time.Minute)) != 1 {
		t.Fatal("sweeper did not expire host-pair flow")
	}
}

func TestNewFAMValidation(t *testing.T) {
	if _, err := NewFAM(nil, 0); err == nil {
		t.Fatal("nil policy accepted")
	}
	f, err := NewFAM(ThresholdPolicy{Threshold: time.Minute}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.table) != DefaultFSTSize {
		t.Fatalf("default table size = %d", len(f.table))
	}
}

func TestNewFAMRandomizesSFL(t *testing.T) {
	f1, _ := NewFAM(ThresholdPolicy{Threshold: time.Minute}, 8)
	f2, _ := NewFAM(ThresholdPolicy{Threshold: time.Minute}, 8)
	s1, _ := f1.Classify(FlowID{}, famEpoch, 1)
	s2, _ := f2.Classify(FlowID{}, famEpoch, 1)
	if s1 == s2 {
		t.Fatal("two fresh FAMs minted the same first sfl; counter not randomised")
	}
}

func TestFlowIDHashSpreadsSequentialPorts(t *testing.T) {
	// Sequential ports from one host pair must spread across a small
	// table (the Section 5.3 argument for CRC-32).
	const size = 32
	var hit [size]bool
	p := ThresholdPolicy{}
	for port := uint16(1024); port < 1024+128; port++ {
		hit[p.Index(FlowID{Src: "10.0.0.1", Dst: "10.0.0.2", Proto: 6, SrcPort: port, DstPort: 80}, size)] = true
	}
	used := 0
	for _, h := range hit {
		if h {
			used++
		}
	}
	if used < size/2 {
		t.Fatalf("128 sequential ports used only %d/%d slots", used, size)
	}
}

func TestFAMSnapshot(t *testing.T) {
	f := testFAM(10*time.Minute, 64)
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh FAM has %d flows", len(got))
	}
	f.Classify(FlowID{Src: "a", Dst: "b", SrcPort: 1}, famEpoch, 100)
	f.Classify(FlowID{Src: "a", Dst: "b", SrcPort: 1}, famEpoch.Add(time.Second), 50)
	f.Classify(FlowID{Src: "a", Dst: "b", SrcPort: 2}, famEpoch, 10)
	snap := f.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d flows, want 2", len(snap))
	}
	for _, fi := range snap {
		if fi.ID.SrcPort == 1 {
			if fi.Packets != 2 || fi.Bytes != 150 {
				t.Fatalf("flow accounting: %+v", fi)
			}
		}
	}
}

func TestFAMSweepAtExactThresholdBoundary(t *testing.T) {
	// The sweeper and the mapper must agree at the boundary: a flow idle
	// for EXACTLY the threshold is still alive (Match keeps it, Sweep
	// leaves it), and one nanosecond past it is dead for both.
	const threshold = 10 * time.Minute
	f := testFAM(threshold, 64)
	id := FlowID{Src: "a", Dst: "b", SrcPort: 7}
	f.Classify(id, famEpoch, 1)
	if n := f.Sweep(famEpoch.Add(threshold)); n != 0 {
		t.Fatalf("sweep at exactly the threshold expired %d flows", n)
	}
	if _, isNew := f.Classify(id, famEpoch.Add(threshold), 1); isNew {
		t.Fatal("mapper expired a flow at exactly the threshold")
	}
	// The hit refreshed Last; idle it out again and cross the boundary.
	last := famEpoch.Add(threshold)
	if n := f.Sweep(last.Add(threshold + time.Nanosecond)); n != 1 {
		t.Fatalf("sweep just past the threshold expired %d flows, want 1", n)
	}
	if _, isNew := f.Classify(id, last.Add(threshold+time.Nanosecond), 1); !isNew {
		t.Fatal("mapper kept a flow just past the threshold")
	}
}

func TestFAMPressureSweepTightensThreshold(t *testing.T) {
	f := newFAMWithSeed(ThresholdPolicy{
		Threshold:         10 * time.Minute,
		PressureThreshold: time.Minute,
	}, 64, 1000)
	f.Classify(FlowID{SrcPort: 1}, famEpoch, 1)
	f.Classify(FlowID{SrcPort: 2}, famEpoch.Add(4*time.Minute), 1)
	at := famEpoch.Add(5 * time.Minute)
	// Neither flow is past the normal threshold...
	if n := f.Sweep(at); n != 0 {
		t.Fatalf("normal sweep expired %d flows", n)
	}
	// ...but under pressure the first (idle 5min > 1min) is reclaimed.
	if n := f.SweepPressure(at); n != 1 {
		t.Fatalf("pressure sweep expired %d flows, want 1", n)
	}
	if got := f.ActiveFlows(); got != 1 {
		t.Fatalf("ActiveFlows after pressure sweep = %d, want 1", got)
	}
}

func TestFAMPressureThresholdDefault(t *testing.T) {
	p := ThresholdPolicy{Threshold: 8 * time.Minute}
	e := &FSTEntry{Valid: true, Last: famEpoch}
	// Default pressure threshold is Threshold/8 = 1 minute.
	if p.ExpiredUnderPressure(e, famEpoch.Add(time.Minute)) {
		t.Fatal("expired at exactly the default pressure threshold")
	}
	if !p.ExpiredUnderPressure(e, famEpoch.Add(time.Minute+time.Nanosecond)) {
		t.Fatal("not expired just past the default pressure threshold")
	}
}

func TestFAMSweepRacesConcurrentInserts(t *testing.T) {
	// Sweep locks one stripe at a time while classification proceeds in
	// others; under -race this asserts the striping is actually sound,
	// and the budget invariant (used == live entries x cost) must hold
	// exactly once the dust settles.
	b := NewBudget(0, 1<<20)
	f := testFAM(time.Minute, 256)
	f.SetBudget(b)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := famEpoch
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Classify(FlowID{SrcPort: uint16(i % 512), Aux: uint64(g)}, now, 1)
				now = now.Add(time.Millisecond)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		f.Sweep(famEpoch.Add(time.Duration(i) * 10 * time.Second))
	}
	close(stop)
	wg.Wait()
	f.Sweep(famEpoch.Add(24 * time.Hour))
	if got, want := b.Used(), int64(f.ActiveFlows())*CostFAMEntry; got != want {
		t.Fatalf("budget used = %d, want %d (%d live flows)", got, want, f.ActiveFlows())
	}
}
