package core

import (
	"encoding/binary"
	"fmt"

	"fbs/internal/cryptolib"
)

// SFL is a security flow label: the opaque flow identifier produced by the
// flow association mechanism and carried in every datagram (Section 5.1).
// Labels are 64 bits so that, with a randomised starting point, a label is
// never assigned to two different flows before the pair-based master key
// is changed (Section 5.3).
type SFL uint64

// CipherID names a payload cipher in the header's algorithm
// identification field.
type CipherID uint8

// Supported payload ciphers.
const (
	// CipherNone means the body is not encrypted (MAC only).
	CipherNone CipherID = iota
	// CipherDES is single DES, the paper's choice.
	CipherDES
	// Cipher3DES is EDE triple DES with a two-key schedule.
	Cipher3DES

	// IDs 3-7 are reserved for future legacy-style suites.

	// CipherAES128GCM is AES-128 in Galois/Counter mode: a modern AEAD
	// suite whose tag rides in the header's MAC value field.
	CipherAES128GCM CipherID = 8
	// CipherChaCha20Poly1305 is the RFC 8439 AEAD suite.
	CipherChaCha20Poly1305 CipherID = 9
)

// String returns the conventional cipher name.
func (c CipherID) String() string {
	switch c {
	case CipherNone:
		return "none"
	case CipherDES:
		return "DES"
	case Cipher3DES:
		return "3DES"
	case CipherAES128GCM:
		return "AES-128-GCM"
	case CipherChaCha20Poly1305:
		return "ChaCha20-Poly1305"
	default:
		return fmt.Sprintf("CipherID(%d)", uint8(c))
	}
}

// newCipher builds the block cipher for a 16-byte flow key.
func (c CipherID) newCipher(flowKey []byte) (cryptolib.BlockCipher, error) {
	switch c {
	case CipherDES:
		return cryptolib.NewDES(flowKey[:8])
	case Cipher3DES:
		return cryptolib.NewTripleDES(flowKey[:16])
	default:
		return nil, fmt.Errorf("core: cipher %v cannot encrypt", c)
	}
}

// Header field and layout constants.
const (
	// HeaderVersion is the wire version of this implementation.
	HeaderVersion = 1
	// MACLen is the MAC field width: 128 bits, per Section 7.2.
	MACLen = 16
	// HeaderSize is the encoded security flow header size in bytes:
	// version, flags, MAC alg, cipher/mode alg, sfl(8), confounder(4),
	// timestamp(4), MAC(16). The paper's 28-byte header plus the
	// algorithm identification field it prescribes but elides.
	HeaderSize = 4 + 8 + 4 + 4 + MACLen
	// macValueOffset is where the MAC value field starts within the
	// encoded header. The allocation-free seal path encodes the header
	// with a zero MAC first and patches the real value in at this offset
	// once the body has been traversed.
	macValueOffset = HeaderSize - MACLen
)

// SealOverhead is the worst-case growth sealing adds to a payload: the
// security flow header plus one full cipher block of PKCS#7 padding (an
// exactly block-aligned plaintext still gains a whole padding block).
// MTU and MSS sizing must budget this, not just HeaderSize — a segment
// sized for the header alone can grow past the MTU once encrypted and
// then fail with ErrNeedsFragmentation under DF.
const SealOverhead = HeaderSize + cryptolib.BlockSize

// Header flag bits.
const (
	// FlagSecret marks an encrypted body (the secret flag of FBSSend).
	FlagSecret = 1 << 0
)

// Header is the security flow header prepended to every FBS datagram
// (Figure 2), extended with the algorithm identification field the paper
// calls for "for generality" (Section 5.2).
type Header struct {
	Version    uint8
	Flags      uint8
	MAC        cryptolib.MACID
	Cipher     CipherID
	Mode       cryptolib.Mode
	SFL        SFL
	Confounder uint32
	Timestamp  Timestamp
	MACValue   [MACLen]byte
}

// Secret reports whether the body is encrypted.
func (h *Header) Secret() bool { return h.Flags&FlagSecret != 0 }

// algByte packs cipher (high nibble) and mode (low nibble). Both IDs
// are validated to fit their nibble at configuration time (NewEndpoint
// rejects out-of-range IDs with ErrAlgorithmRange), so the masks here
// never truncate live configuration; on the receive side, checkAlg
// rejects nibble values with no registered suite with a typed
// ErrAlgorithmUnknown instead of letting them alias a real suite.
func (h *Header) algByte() byte { return byte(h.Cipher)<<4 | byte(h.Mode)&0x0f }

// Encode appends the wire encoding of the header to dst and returns the
// extended slice.
func (h *Header) Encode(dst []byte) []byte {
	var b [HeaderSize]byte
	b[0] = h.Version
	b[1] = h.Flags
	b[2] = byte(h.MAC)
	b[3] = h.algByte()
	binary.BigEndian.PutUint64(b[4:], uint64(h.SFL))
	binary.BigEndian.PutUint32(b[12:], h.Confounder)
	binary.BigEndian.PutUint32(b[16:], uint32(h.Timestamp))
	copy(b[20:], h.MACValue[:])
	return append(dst, b[:]...)
}

// Decode parses a header from the front of b, returning the number of
// bytes consumed.
func (h *Header) Decode(b []byte) (int, error) {
	if len(b) < HeaderSize {
		return 0, fmt.Errorf("core: datagram too short for FBS header: %d < %d", len(b), HeaderSize)
	}
	h.Version = b[0]
	if h.Version != HeaderVersion {
		return 0, fmt.Errorf("core: unsupported FBS header version %d", h.Version)
	}
	h.Flags = b[1]
	h.MAC = cryptolib.MACID(b[2])
	h.Cipher = CipherID(b[3] >> 4)
	h.Mode = cryptolib.Mode(b[3] & 0x0f)
	h.SFL = SFL(binary.BigEndian.Uint64(b[4:]))
	h.Confounder = binary.BigEndian.Uint32(b[12:])
	h.Timestamp = Timestamp(binary.BigEndian.Uint32(b[16:]))
	copy(h.MACValue[:], b[20:20+MACLen])
	return HeaderSize, nil
}

// macInput returns the header-derived MAC input fields. The paper's MAC
// is HMAC(K_f | confounder | timestamp | payload); since it is meant to
// ensure "the integrity of the datagram body and the other fields in the
// security flow header", the version/flags/algorithm prefix is included
// too, which also forecloses algorithm-downgrade tampering. (The sfl
// needs no explicit coverage: altering it changes K_f itself.)
func (h *Header) macInput() [12]byte {
	var b [12]byte
	b[0] = h.Version
	b[1] = h.Flags
	b[2] = byte(h.MAC)
	b[3] = h.algByte()
	binary.BigEndian.PutUint32(b[4:], h.Confounder)
	binary.BigEndian.PutUint32(b[8:], uint32(h.Timestamp))
	return b
}

// iv derives the encryption IV from the confounder. Per Section 7.2, the
// 32-bit confounder is duplicated to fill the 64-bit DES block.
func (h *Header) iv() [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:], h.Confounder)
	binary.BigEndian.PutUint32(b[4:], h.Confounder)
	return b
}
