package core

import (
	"sync"
)

// CacheStats classifies cache activity. Misses are divided per Section
// 5.3 into compulsory (cold — key never seen before), and conflict misses
// (key was present earlier but was displaced). Capacity misses are a
// subset of conflict misses here; flowsim separates them offline by
// replaying traces against a fully associative cache of equal size.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Cold      uint64
	Conflict  uint64
	Installs  uint64
	Evictions uint64
}

// MissRate returns misses / lookups, or 0 with no lookups.
func (s CacheStats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// DirectMapped is a direct-mapped software cache, the structure Section
// 5.3 argues for: O(1) lookup, no associativity, correctness independent
// of evictions (contents are soft state), with a randomising hash
// supplied by the caller to spread correlated keys.
//
// DirectMapped is safe for concurrent use.
type DirectMapped[K comparable, V any] struct {
	mu    sync.Mutex
	slots []dmSlot[K, V]
	hash  func(K) uint32
	stats CacheStats

	// seen supports cold-vs-conflict miss classification. It grows with
	// the number of distinct keys ever inserted, so it is disabled by
	// default in protocol use and enabled for experiments.
	seen map[K]struct{}
}

type dmSlot[K comparable, V any] struct {
	valid bool
	key   K
	val   V
}

// NewDirectMapped builds a cache with size slots and the given index
// hash.
func NewDirectMapped[K comparable, V any](size int, hash func(K) uint32) *DirectMapped[K, V] {
	if size <= 0 {
		size = 64
	}
	return &DirectMapped[K, V]{
		slots: make([]dmSlot[K, V], size),
		hash:  hash,
	}
}

// ClassifyMisses enables cold/conflict miss accounting (costs memory
// proportional to distinct keys).
func (c *DirectMapped[K, V]) ClassifyMisses() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = make(map[K]struct{})
	}
}

// Size returns the number of slots.
func (c *DirectMapped[K, V]) Size() int { return len(c.slots) }

// Get looks up key, returning its value and whether it was present.
func (c *DirectMapped[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &c.slots[c.hash(key)%uint32(len(c.slots))]
	if s.valid && s.key == key {
		c.stats.Hits++
		return s.val, true
	}
	c.stats.Misses++
	if c.seen != nil {
		if _, ok := c.seen[key]; ok {
			c.stats.Conflict++
		} else {
			c.stats.Cold++
		}
	}
	var zero V
	return zero, false
}

// Put installs key → val, displacing whatever occupied the slot.
func (c *DirectMapped[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &c.slots[c.hash(key)%uint32(len(c.slots))]
	if s.valid && s.key != key {
		c.stats.Evictions++
	}
	s.valid = true
	s.key = key
	s.val = val
	c.stats.Installs++
	if c.seen != nil {
		c.seen[key] = struct{}{}
	}
}

// Invalidate removes key if present and reports whether it was.
func (c *DirectMapped[K, V]) Invalidate(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &c.slots[c.hash(key)%uint32(len(c.slots))]
	if s.valid && s.key == key {
		s.valid = false
		return true
	}
	return false
}

// Flush invalidates every slot.
func (c *DirectMapped[K, V]) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		c.slots[i].valid = false
	}
}

// Stats returns a snapshot of the counters.
func (c *DirectMapped[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
