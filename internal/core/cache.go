package core

import (
	"runtime"
	"sync"
)

// CacheStats classifies cache activity. Misses are divided per Section
// 5.3 into compulsory (cold — key never seen before), and conflict misses
// (key was present earlier but was displaced). Capacity misses are a
// subset of conflict misses here; flowsim separates them offline by
// replaying traces against a fully associative cache of equal size.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Cold      uint64
	Conflict  uint64
	Installs  uint64
	Evictions uint64
}

// MissRate returns misses / lookups, or 0 with no lookups.
func (s CacheStats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// add accumulates o into s (per-stripe aggregation on Stats()).
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Cold += o.Cold
	s.Conflict += o.Conflict
	s.Installs += o.Installs
	s.Evictions += o.Evictions
}

// defaultStripeCount picks the lock-stripe count for the hot-path tables:
// a power of two sized to the machine (≥ 4× GOMAXPROCS so stripes stay
// mostly uncontended) and clamped so tiny tables don't carry more stripe
// locks than slots.
func defaultStripeCount(slots int) int {
	n := nextPow2(4 * runtime.GOMAXPROCS(0))
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	if s := nextPow2(slots); s < n {
		n = s
	}
	return n
}

// nextPow2 returns the smallest power of two ≥ v (and ≥ 1).
func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// cacheStripe is one lock stripe: a mutex guarding the slots whose index
// has the stripe's low bits, plus that stripe's share of the counters.
// Counters are plain integers mutated under the stripe lock; Stats()
// aggregates across stripes, preserving exact totals. The padding keeps
// adjacent stripes off the same cache line.
type cacheStripe[K comparable] struct {
	mu    sync.Mutex
	stats CacheStats
	// seen supports cold-vs-conflict miss classification for the keys of
	// this stripe. It grows with the number of distinct keys ever
	// inserted, so it is disabled by default in protocol use and enabled
	// for experiments.
	seen map[K]struct{}
	_    [40]byte // pad to a cache line boundary
}

// DirectMapped is a direct-mapped software cache, the structure Section
// 5.3 argues for: O(1) lookup, no associativity, correctness independent
// of evictions (contents are soft state), with a randomising hash
// supplied by the caller to spread correlated keys.
//
// DirectMapped is safe for concurrent use. The slot array is partitioned
// into power-of-two lock stripes (slot index low bits select the stripe),
// so concurrent lookups for different flows proceed in parallel instead
// of serialising on one cache-wide mutex.
type DirectMapped[K comparable, V any] struct {
	slots      []dmSlot[K, V]
	hash       func(K) uint32
	stripes    []cacheStripe[K]
	stripeMask uint32

	// budget, when set, is charged entryCost per valid slot. Installs
	// that would grow occupancy past the hard limit are refused — the
	// key simply stays uncached, which soft state makes always safe.
	budget    *Budget
	entryCost int64
}

type dmSlot[K comparable, V any] struct {
	valid bool
	key   K
	val   V
}

// NewDirectMapped builds a cache with size slots and the given index
// hash.
func NewDirectMapped[K comparable, V any](size int, hash func(K) uint32) *DirectMapped[K, V] {
	if size <= 0 {
		size = 64
	}
	n := defaultStripeCount(size)
	return &DirectMapped[K, V]{
		slots:      make([]dmSlot[K, V], size),
		hash:       hash,
		stripes:    make([]cacheStripe[K], n),
		stripeMask: uint32(n - 1),
	}
}

// SetBudget charges cost bytes per valid slot against b (see Budget).
// Call before the cache serves traffic.
func (c *DirectMapped[K, V]) SetBudget(b *Budget, cost int64) {
	c.budget = b
	c.entryCost = cost
}

// ClassifyMisses enables cold/conflict miss accounting (costs memory
// proportional to distinct keys).
func (c *DirectMapped[K, V]) ClassifyMisses() {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		if s.seen == nil {
			s.seen = make(map[K]struct{})
		}
		s.mu.Unlock()
	}
}

// Size returns the number of slots.
func (c *DirectMapped[K, V]) Size() int { return len(c.slots) }

// Stripes returns the number of lock stripes (for monitoring and tests).
func (c *DirectMapped[K, V]) Stripes() int { return len(c.stripes) }

// slotStripe locates the slot and its stripe for key.
func (c *DirectMapped[K, V]) slotStripe(key K) (*dmSlot[K, V], *cacheStripe[K]) {
	i := c.hash(key) % uint32(len(c.slots))
	return &c.slots[i], &c.stripes[i&c.stripeMask]
}

// Get looks up key, returning its value and whether it was present.
func (c *DirectMapped[K, V]) Get(key K) (V, bool) {
	s, st := c.slotStripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if s.valid && s.key == key {
		st.stats.Hits++
		return s.val, true
	}
	st.stats.Misses++
	if st.seen != nil {
		if _, ok := st.seen[key]; ok {
			st.stats.Conflict++
		} else {
			st.stats.Cold++
		}
	}
	var zero V
	return zero, false
}

// Put installs key → val, displacing whatever occupied the slot. With
// a budget attached, filling a previously empty slot must fit under the
// hard limit; if it does not, the install is skipped (overwrites of
// occupied slots are budget-neutral and always proceed).
func (c *DirectMapped[K, V]) Put(key K, val V) {
	s, st := c.slotStripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if !s.valid && !c.budget.TryCharge(c.entryCost) {
		return
	}
	if s.valid && s.key != key {
		st.stats.Evictions++
	}
	s.valid = true
	s.key = key
	s.val = val
	st.stats.Installs++
	if st.seen != nil {
		st.seen[key] = struct{}{}
	}
}

// Contains reports whether key is cached, without touching the
// hit/miss counters (a peek for admission decisions, so probing does
// not distort the miss-rate experiments).
func (c *DirectMapped[K, V]) Contains(key K) bool {
	s, st := c.slotStripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return s.valid && s.key == key
}

// Invalidate removes key if present and reports whether it was.
func (c *DirectMapped[K, V]) Invalidate(key K) bool {
	s, st := c.slotStripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if s.valid && s.key == key {
		s.valid = false
		c.budget.Release(c.entryCost)
		return true
	}
	return false
}

// Flush invalidates every slot.
func (c *DirectMapped[K, V]) Flush() {
	n := len(c.stripes)
	for si := range c.stripes {
		st := &c.stripes[si]
		st.mu.Lock()
		for i := si; i < len(c.slots); i += n {
			if c.slots[i].valid {
				c.slots[i].valid = false
				c.budget.Release(c.entryCost)
			}
		}
		st.mu.Unlock()
	}
}

// Each calls fn for every valid entry. Each stripe is walked under its
// own lock, so the traversal is exact per stripe and approximate
// across concurrent writers; fn runs with the stripe lock held and
// must not call back into this cache.
func (c *DirectMapped[K, V]) Each(fn func(K, V)) {
	n := len(c.stripes)
	for si := range c.stripes {
		st := &c.stripes[si]
		st.mu.Lock()
		for i := si; i < len(c.slots); i += n {
			if c.slots[i].valid {
				fn(c.slots[i].key, c.slots[i].val)
			}
		}
		st.mu.Unlock()
	}
}

// EvictIf invalidates every entry pred selects, releasing its budget
// charge, and reports how many were evicted. Like Each, pred runs with
// the stripe lock held and must not call back into this cache.
func (c *DirectMapped[K, V]) EvictIf(pred func(K, V) bool) int {
	evicted := 0
	n := len(c.stripes)
	for si := range c.stripes {
		st := &c.stripes[si]
		st.mu.Lock()
		for i := si; i < len(c.slots); i += n {
			if c.slots[i].valid && pred(c.slots[i].key, c.slots[i].val) {
				c.slots[i].valid = false
				c.budget.Release(c.entryCost)
				evicted++
			}
		}
		st.mu.Unlock()
	}
	return evicted
}

// Occupancy counts the valid slots. Like Flush, each stripe is scanned
// under its own lock, so the count is exact per stripe and approximate
// across concurrent writers.
func (c *DirectMapped[K, V]) Occupancy() int {
	n := len(c.stripes)
	used := 0
	for si := range c.stripes {
		st := &c.stripes[si]
		st.mu.Lock()
		for i := si; i < len(c.slots); i += n {
			if c.slots[i].valid {
				used++
			}
		}
		st.mu.Unlock()
	}
	return used
}

// Stats returns a snapshot of the counters, aggregated across stripes.
func (c *DirectMapped[K, V]) Stats() CacheStats {
	var out CacheStats
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		out.add(st.stats)
		st.mu.Unlock()
	}
	return out
}
