package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fbs/internal/cert"
	"fbs/internal/principal"
)

// failingDirectory fails the first FailFirst lookups, then delegates.
type failingDirectory struct {
	Inner     cert.Directory
	FailFirst int

	mu    sync.Mutex
	calls int
}

func (d *failingDirectory) Lookup(addr principal.Address) (*cert.Certificate, error) {
	d.mu.Lock()
	d.calls++
	n := d.calls
	d.mu.Unlock()
	if n <= d.FailFirst {
		return nil, fmt.Errorf("directory down (call %d)", n)
	}
	return d.Inner.Lookup(addr)
}

func (d *failingDirectory) Calls() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

func TestRetryPolicyBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := p.backoff(i+1, 0.5); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	j := RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, JitterFrac: 0.5}
	if got := j.backoff(1, 0); got != 50*time.Millisecond {
		t.Errorf("full-low jitter backoff = %v, want 50ms", got)
	}
	if got := j.backoff(1, 1); got != 150*time.Millisecond {
		t.Errorf("full-high jitter backoff = %v, want 150ms", got)
	}
}

func TestRetryPolicyZeroValueIsSingleAttempt(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 1 {
		t.Fatalf("zero policy MaxAttempts = %d, want 1 (historic behaviour)", p.MaxAttempts)
	}
}

func TestLookupRetriesUntilDirectoryRecovers(t *testing.T) {
	w := newWorld(t)
	w.principal(t, "bob")
	fd := &failingDirectory{Inner: w.dir, FailFirst: 2}
	var slept []time.Duration
	ks := NewKeyService(w.principal(t, "alice"), fd, w.ver, w.clock, KeyServiceConfig{
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond},
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := ks.MasterKey("bob"); err != nil {
		t.Fatalf("MasterKey should have succeeded on the third attempt: %v", err)
	}
	if fd.Calls() != 3 {
		t.Errorf("directory calls = %d, want 3 (two failures + success)", fd.Calls())
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [10ms 20ms]", slept)
	}
	if st := ks.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
}

func TestLookupBoundedByMaxAttempts(t *testing.T) {
	w := newWorld(t)
	w.principal(t, "bob")
	fd := &failingDirectory{Inner: w.dir, FailFirst: 1 << 30}
	ks := NewKeyService(w.principal(t, "alice"), fd, w.ver, w.clock, KeyServiceConfig{
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
		Sleep: func(time.Duration) {},
	})
	if _, err := ks.MasterKey("bob"); err == nil {
		t.Fatal("MasterKey succeeded against a dead directory")
	}
	if fd.Calls() != 3 {
		t.Errorf("directory calls = %d, want exactly MaxAttempts=3", fd.Calls())
	}
}

func TestLookupDeadlineAbandonsRetryLoop(t *testing.T) {
	w := newWorld(t)
	w.principal(t, "bob")
	fd := &failingDirectory{Inner: w.dir, FailFirst: 1 << 30}
	// Each sleep advances the sim clock 30ms; with a 50ms deadline the
	// loop must stop after the second failed attempt, well short of
	// MaxAttempts.
	ks := NewKeyService(w.principal(t, "alice"), fd, w.ver, w.clock, KeyServiceConfig{
		Retry: RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Millisecond, Deadline: 50 * time.Millisecond},
		Sleep: func(time.Duration) { w.clock.Advance(30 * time.Millisecond) },
	})
	if _, err := ks.MasterKey("bob"); err == nil {
		t.Fatal("MasterKey succeeded against a dead directory")
	}
	if calls := fd.Calls(); calls >= 100 || calls < 2 {
		t.Errorf("directory calls = %d, want a handful bounded by the deadline", calls)
	}
	if st := ks.Stats(); st.DeadlineExceeded != 1 {
		t.Errorf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
}

func TestNegativeCacheFailsFastThenExpires(t *testing.T) {
	w := newWorld(t)
	w.principal(t, "bob")
	fd := &failingDirectory{Inner: w.dir, FailFirst: 3}
	ks := NewKeyService(w.principal(t, "alice"), fd, w.ver, w.clock, KeyServiceConfig{
		Retry:       RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
		NegativeTTL: time.Minute,
		Sleep:       func(time.Duration) {},
	})
	if _, err := ks.MasterKey("bob"); err == nil {
		t.Fatal("first MasterKey should fail (directory down)")
	}
	calls := fd.Calls()
	// Within the TTL: refused by the negative cache, no directory calls.
	_, err := ks.MasterKey("bob")
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("err = %v, want ErrPeerUnavailable", err)
	}
	if fd.Calls() != calls {
		t.Errorf("negative-cached lookup still called the directory (%d -> %d)", calls, fd.Calls())
	}
	if st := ks.Stats(); st.NegativeHits != 1 {
		t.Errorf("NegativeHits = %d, want 1", st.NegativeHits)
	}
	// Past the TTL the directory has recovered: lookup succeeds and the
	// negative entry is forgotten.
	w.clock.Advance(2 * time.Minute)
	if _, err := ks.MasterKey("bob"); err != nil {
		t.Fatalf("post-TTL MasterKey failed: %v", err)
	}
	if _, err := ks.MasterKey("bob"); err != nil {
		t.Fatalf("MasterKey after recovery failed: %v", err)
	}
}

func TestStaleWhileRevalidateServesJustExpiredCert(t *testing.T) {
	w := newWorld(t)
	alice := w.principal(t, "alice")
	bob := w.principal(t, "bob")
	// Publish a certificate for bob that expires in one hour.
	c, err := w.ca.Issue(bob, w.clock.Now().Add(-time.Hour), w.clock.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	w.dir.Publish(c)
	ks := NewKeyService(alice, w.dir, w.ver, w.clock, KeyServiceConfig{
		StaleWhileRevalidate: 24 * time.Hour,
	})
	if _, err := ks.certificate("bob"); err != nil {
		t.Fatalf("fresh certificate rejected: %v", err)
	}
	// Two hours later the cert is expired everywhere (the directory
	// still serves the same expired cert — revalidation cannot help),
	// but it is within the stale window and verifies at its own expiry
	// instant, so the flow stays alive.
	w.clock.Advance(2 * time.Hour)
	got, err := ks.certificate("bob")
	if err != nil {
		t.Fatalf("stale-while-revalidate did not serve: %v", err)
	}
	if got != c {
		t.Error("served a different certificate than the stale one")
	}
	if st := ks.Stats(); st.StaleServed == 0 {
		t.Error("StaleServed never incremented")
	}
	// Past the stale window the certificate is dead for good.
	w.clock.Advance(48 * time.Hour)
	if _, err := ks.certificate("bob"); err == nil {
		t.Fatal("certificate served beyond the stale window")
	}
}

func TestStaleWindowNeverServesTamperedCert(t *testing.T) {
	w := newWorld(t)
	alice := w.principal(t, "alice")
	bob := w.principal(t, "bob")
	c, err := w.ca.Issue(bob, w.clock.Now().Add(-time.Hour), w.clock.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the signature: the certificate must not survive under any
	// window, expired or not — stale-while-revalidate only forgives
	// expiry, never a bad signature.
	c.Signature[0] ^= 0xFF
	w.dir.Publish(c)
	ks := NewKeyService(alice, w.dir, w.ver, w.clock, KeyServiceConfig{
		StaleWhileRevalidate: 24 * time.Hour,
	})
	w.clock.Advance(2 * time.Hour)
	if _, err := ks.certificate("bob"); err == nil {
		t.Fatal("tampered certificate served under the stale window")
	}
	if st := ks.Stats(); st.StaleServed != 0 {
		t.Errorf("StaleServed = %d for a tampered certificate", st.StaleServed)
	}
}

// blockingDirectory parks every lookup until released.
type blockingDirectory struct {
	Inner   cert.Directory
	release chan struct{}
}

func (d *blockingDirectory) Lookup(addr principal.Address) (*cert.Certificate, error) {
	<-d.release
	return d.Inner.Lookup(addr)
}

func TestMKDUpcallTimeout(t *testing.T) {
	w := newWorld(t)
	w.principal(t, "bob")
	bd := &blockingDirectory{Inner: w.dir, release: make(chan struct{})}
	ks := NewKeyService(w.principal(t, "alice"), bd, w.ver, w.clock, KeyServiceConfig{})
	m := NewMKD(ks)
	defer m.Stop()
	m.SetTimeout(20 * time.Millisecond)

	if _, err := m.Upcall("bob"); !errors.Is(err, ErrUpcallTimeout) {
		t.Fatalf("err = %v, want ErrUpcallTimeout", err)
	}
	if m.Timeouts() != 1 {
		t.Errorf("Timeouts = %d, want 1", m.Timeouts())
	}
	// The daemon keeps working: once the directory answers, the key is
	// installed and a later upcall succeeds from cache.
	close(bd.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m.Upcall("bob"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upcall never succeeded after the directory recovered")
		}
		time.Sleep(time.Millisecond)
	}
}
