package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

// The hot path is lock-striped (FST, TFKC/RFKC, PVC/MKC), metrics are
// atomics and confounder generation is pooled; none of that may lose a
// count. This test hammers one sender from many goroutines across many
// peers and then demands that every counter reconciles exactly:
//
//	FAM Lookups == Hits + FlowsCreated         (classification accounting)
//	TFKC Hits + Misses == FAM Lookups          (one key lookup per seal)
//	Σ peer Received == seals performed         (no datagram lost or double-counted)
//
// Run it under -race: it is as much a data-race detector as a counter
// check.
func TestConcurrentSealOpenReconciles(t *testing.T) {
	const (
		goroutines = 8
		peers      = 24
		rounds     = 50
	)
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})

	mkCfg := func(name principal.Address, tr transport.Transport) Config {
		return Config{
			Identity:  w.principal(t, name),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
		}
	}
	hubTr, err := net.Attach("hub", 16)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewEndpoint(mkCfg("hub", hubTr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })

	eps := make([]*Endpoint, peers)
	for i := range eps {
		name := principal.Address(fmt.Sprintf("rc-peer-%02d", i))
		tr, err := net.Attach(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(mkCfg(name, tr))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sealBuf := make([]byte, 0, 256)
			openBuf := make([]byte, 0, 256)
			payload := []byte{byte(g), 0}
			for r := 0; r < rounds; r++ {
				for i, ep := range eps {
					payload[1] = byte(i)
					sealed, err := hub.SealAppend(sealBuf[:0], transport.Datagram{
						Source:      "hub",
						Destination: ep.Addr(),
						Payload:     payload,
					}, false)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d seal to %s: %w", g, ep.Addr(), err)
						return
					}
					sealBuf = sealed
					opened, err := ep.OpenAppend(openBuf[:0], transport.Datagram{
						Source:      "hub",
						Destination: ep.Addr(),
						Payload:     sealed,
					})
					if err != nil {
						errs <- fmt.Errorf("goroutine %d open at %s: %w", g, ep.Addr(), err)
						return
					}
					openBuf = opened
					if len(opened) != 2 || opened[0] != byte(g) || opened[1] != byte(i) {
						errs <- fmt.Errorf("goroutine %d: payload corrupted at %s: %x", g, ep.Addr(), opened)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const seals = goroutines * peers * rounds
	fam := hub.FAMStats()
	if fam.Lookups != seals {
		t.Errorf("FAM Lookups = %d, want %d", fam.Lookups, seals)
	}
	if fam.Lookups != fam.Hits+fam.FlowsCreated {
		t.Errorf("FAM accounting broken: Lookups=%d, Hits=%d + FlowsCreated=%d = %d",
			fam.Lookups, fam.Hits, fam.FlowsCreated, fam.Hits+fam.FlowsCreated)
	}
	if fam.FlowsCreated < peers {
		t.Errorf("FlowsCreated = %d, want >= %d (one flow per peer)", fam.FlowsCreated, peers)
	}
	tfkc := hub.TFKCStats()
	if tfkc.Hits+tfkc.Misses != fam.Lookups {
		t.Errorf("TFKC lookups (%d hits + %d misses = %d) != FAM lookups %d",
			tfkc.Hits, tfkc.Misses, tfkc.Hits+tfkc.Misses, fam.Lookups)
	}
	// Seal must not count transmissions; only Send does.
	if m := hub.Metrics(); m.Sent != 0 {
		t.Errorf("hub Sent = %d after Seal-only traffic, want 0", m.Sent)
	}
	var received, receivedBytes uint64
	for i, ep := range eps {
		m := ep.Metrics()
		if m.Received != goroutines*rounds {
			t.Errorf("peer %d Received = %d, want %d", i, m.Received, goroutines*rounds)
		}
		rfkc := ep.RFKCStats()
		if rfkc.Hits+rfkc.Misses != m.Received {
			t.Errorf("peer %d RFKC lookups (%d) != opens (%d)", i, rfkc.Hits+rfkc.Misses, m.Received)
		}
		received += m.Received
		receivedBytes += m.ReceivedBytes
	}
	if received != seals {
		t.Errorf("total Received = %d, want %d", received, seals)
	}
	if receivedBytes != seals*2 {
		t.Errorf("total ReceivedBytes = %d, want %d", receivedBytes, seals*2)
	}
}

// TestConcurrentShardedBatchReconciles is the batch-plane companion of
// the test above: many goroutines drive SealBatch on a sharded sender
// (several goroutines land on the same shard) and OpenBatch on their
// receivers, with one intra-batch duplicate and one corrupted datagram
// injected per round. Every per-DropReason counter must reconcile
// exactly under -race. Batch runs amortize TFKC/RFKC probes per run,
// so unlike the single-datagram test this one does not assert
// probe-count equalities — it pins the datagram-level ledger instead.
func TestConcurrentShardedBatchReconciles(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 30
		batchSize  = 8
		numShards  = 4
	)
	w := newWorld(t)
	hubID := w.principal(t, "shard-hub")
	grp, err := NewShardGroup(numShards, func(shard int) (Config, error) {
		return Config{
			Identity:  hubID,
			Transport: nullTransport{},
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
			Cipher:    CipherAES128GCM,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { grp.Close() })

	peers := make([]*Endpoint, goroutines)
	for g := range peers {
		name := principal.Address(fmt.Sprintf("shard-peer-%02d", g))
		ep, err := NewEndpoint(Config{
			Identity:          w.principal(t, name),
			Transport:         nullTransport{},
			Directory:         w.dir,
			Verifier:          w.ver,
			Clock:             w.clock,
			Cipher:            CipherAES128GCM,
			EnableReplayCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		peers[g] = ep
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := peers[g]
			sh := grp.Shard(grp.ShardOfPair("shard-hub", peer.Addr()))
			dgs := make([]transport.Datagram, batchSize)
			res := make([]BatchResult, batchSize)
			odgs := make([]transport.Datagram, batchSize+2)
			ores := make([]BatchResult, batchSize+2)
			for r := 0; r < rounds; r++ {
				for i := range dgs {
					dgs[i] = transport.Datagram{
						Source:      "shard-hub",
						Destination: peer.Addr(),
						Payload:     []byte{byte(g), byte(r), byte(i)},
					}
				}
				wire, n := sh.SealBatch(nil, dgs, true, res)
				if n != batchSize {
					errs <- fmt.Errorf("goroutine %d round %d: sealed %d of %d", g, r, n, batchSize)
					return
				}
				for i, rr := range res {
					odgs[i] = transport.Datagram{
						Source:      "shard-hub",
						Destination: peer.Addr(),
						Payload:     wire[rr.Off : rr.Off+rr.Len],
					}
				}
				// An intra-batch duplicate of the first datagram and a
				// corrupted copy of the second.
				odgs[batchSize] = odgs[0]
				corrupt := append([]byte(nil), odgs[1].Payload...)
				corrupt[len(corrupt)-1] ^= 0xFF
				odgs[batchSize+1] = transport.Datagram{Source: "shard-hub", Destination: peer.Addr(), Payload: corrupt}

				clear, accepted := peer.OpenBatch(nil, odgs, ores)
				if accepted != batchSize {
					errs <- fmt.Errorf("goroutine %d round %d: accepted %d of %d", g, r, accepted, batchSize)
					return
				}
				for i := 0; i < batchSize; i++ {
					if ores[i].Err != nil {
						errs <- fmt.Errorf("goroutine %d round %d datagram %d: %v", g, r, i, ores[i].Err)
						return
					}
					if !bytes.Equal(clear[ores[i].Off:ores[i].Off+ores[i].Len], dgs[i].Payload) {
						errs <- fmt.Errorf("goroutine %d round %d datagram %d: payload corrupted", g, r, i)
						return
					}
				}
				if !errors.Is(ores[batchSize].Err, ErrReplay) {
					errs <- fmt.Errorf("goroutine %d round %d: duplicate verdict %v, want ErrReplay", g, r, ores[batchSize].Err)
					return
				}
				if ores[batchSize+1].Err == nil {
					errs <- fmt.Errorf("goroutine %d round %d: corrupted datagram accepted", g, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The group aggregate must equal the sum of its shards, and each
	// shard's classification accounting must balance.
	const seals = goroutines * rounds * batchSize
	var famLookups, activeFlows uint64
	for i := 0; i < grp.NumShards(); i++ {
		fam := grp.Shard(i).FAMStats()
		if fam.Lookups != fam.Hits+fam.FlowsCreated {
			t.Errorf("shard %d FAM accounting broken: Lookups=%d Hits=%d FlowsCreated=%d",
				i, fam.Lookups, fam.Hits, fam.FlowsCreated)
		}
		famLookups += fam.Lookups
		activeFlows += uint64(grp.Shard(i).ActiveFlows())
	}
	if famLookups != seals {
		t.Errorf("Σ shard FAM Lookups = %d, want %d", famLookups, seals)
	}
	// RSS steering keeps each flow on exactly one shard: one live flow
	// per peer across the whole group, no straddling.
	if activeFlows != goroutines {
		t.Errorf("Σ shard ActiveFlows = %d, want %d", activeFlows, goroutines)
	}
	if m := grp.Metrics(); m.Sent != 0 {
		t.Errorf("group Sent = %d after Seal-only traffic, want 0", m.Sent)
	}
	bs := grp.BatchStats()
	if bs.SealDatagrams != seals {
		t.Errorf("group SealDatagrams = %d, want %d", bs.SealDatagrams, seals)
	}
	var sealCalls uint64
	for i := 0; i < NumBatchBuckets; i++ {
		sealCalls += bs.SealCalls[i]
	}
	if sealCalls != goroutines*rounds {
		t.Errorf("group SealBatch calls = %d, want %d", sealCalls, goroutines*rounds)
	}
	if got := bs.SealCalls[batchBucket(batchSize)]; got != goroutines*rounds {
		t.Errorf("SealCalls[%d] = %d, want %d (all batches size %d)",
			batchBucket(batchSize), got, goroutines*rounds, batchSize)
	}

	// Per-peer ledger: every datagram accepted exactly once, every
	// injected duplicate and corruption counted under its exact reason.
	for g, peer := range peers {
		m := peer.Metrics()
		if m.Received != rounds*batchSize {
			t.Errorf("peer %d Received = %d, want %d", g, m.Received, rounds*batchSize)
		}
		if m.ReceivedBytes != rounds*batchSize*3 {
			t.Errorf("peer %d ReceivedBytes = %d, want %d", g, m.ReceivedBytes, rounds*batchSize*3)
		}
		if m.Drops[DropReplay] != rounds {
			t.Errorf("peer %d Drops[replay] = %d, want %d", g, m.Drops[DropReplay], rounds)
		}
		if m.Drops[DropBadMAC] != rounds {
			t.Errorf("peer %d Drops[bad_mac] = %d, want %d", g, m.Drops[DropBadMAC], rounds)
		}
		var total uint64
		for _, d := range m.Drops {
			total += d
		}
		if total != 2*rounds {
			t.Errorf("peer %d total drops = %d, want %d", g, total, 2*rounds)
		}
		ob := peer.BatchStats()
		if ob.OpenDatagrams != rounds*(batchSize+2) {
			t.Errorf("peer %d OpenDatagrams = %d, want %d", g, ob.OpenDatagrams, rounds*(batchSize+2))
		}
	}
}
