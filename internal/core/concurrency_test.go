package core

import (
	"fmt"
	"sync"
	"testing"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

// The hot path is lock-striped (FST, TFKC/RFKC, PVC/MKC), metrics are
// atomics and confounder generation is pooled; none of that may lose a
// count. This test hammers one sender from many goroutines across many
// peers and then demands that every counter reconciles exactly:
//
//	FAM Lookups == Hits + FlowsCreated         (classification accounting)
//	TFKC Hits + Misses == FAM Lookups          (one key lookup per seal)
//	Σ peer Received == seals performed         (no datagram lost or double-counted)
//
// Run it under -race: it is as much a data-race detector as a counter
// check.
func TestConcurrentSealOpenReconciles(t *testing.T) {
	const (
		goroutines = 8
		peers      = 24
		rounds     = 50
	)
	w := newWorld(t)
	net := transport.NewNetwork(transport.Impairments{})

	mkCfg := func(name principal.Address, tr transport.Transport) Config {
		return Config{
			Identity:  w.principal(t, name),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
		}
	}
	hubTr, err := net.Attach("hub", 16)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewEndpoint(mkCfg("hub", hubTr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })

	eps := make([]*Endpoint, peers)
	for i := range eps {
		name := principal.Address(fmt.Sprintf("rc-peer-%02d", i))
		tr, err := net.Attach(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewEndpoint(mkCfg(name, tr))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sealBuf := make([]byte, 0, 256)
			openBuf := make([]byte, 0, 256)
			payload := []byte{byte(g), 0}
			for r := 0; r < rounds; r++ {
				for i, ep := range eps {
					payload[1] = byte(i)
					sealed, err := hub.SealAppend(sealBuf[:0], transport.Datagram{
						Source:      "hub",
						Destination: ep.Addr(),
						Payload:     payload,
					}, false)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d seal to %s: %w", g, ep.Addr(), err)
						return
					}
					sealBuf = sealed
					opened, err := ep.OpenAppend(openBuf[:0], transport.Datagram{
						Source:      "hub",
						Destination: ep.Addr(),
						Payload:     sealed,
					})
					if err != nil {
						errs <- fmt.Errorf("goroutine %d open at %s: %w", g, ep.Addr(), err)
						return
					}
					openBuf = opened
					if len(opened) != 2 || opened[0] != byte(g) || opened[1] != byte(i) {
						errs <- fmt.Errorf("goroutine %d: payload corrupted at %s: %x", g, ep.Addr(), opened)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const seals = goroutines * peers * rounds
	fam := hub.FAMStats()
	if fam.Lookups != seals {
		t.Errorf("FAM Lookups = %d, want %d", fam.Lookups, seals)
	}
	if fam.Lookups != fam.Hits+fam.FlowsCreated {
		t.Errorf("FAM accounting broken: Lookups=%d, Hits=%d + FlowsCreated=%d = %d",
			fam.Lookups, fam.Hits, fam.FlowsCreated, fam.Hits+fam.FlowsCreated)
	}
	if fam.FlowsCreated < peers {
		t.Errorf("FlowsCreated = %d, want >= %d (one flow per peer)", fam.FlowsCreated, peers)
	}
	tfkc := hub.TFKCStats()
	if tfkc.Hits+tfkc.Misses != fam.Lookups {
		t.Errorf("TFKC lookups (%d hits + %d misses = %d) != FAM lookups %d",
			tfkc.Hits, tfkc.Misses, tfkc.Hits+tfkc.Misses, fam.Lookups)
	}
	// Seal must not count transmissions; only Send does.
	if m := hub.Metrics(); m.Sent != 0 {
		t.Errorf("hub Sent = %d after Seal-only traffic, want 0", m.Sent)
	}
	var received, receivedBytes uint64
	for i, ep := range eps {
		m := ep.Metrics()
		if m.Received != goroutines*rounds {
			t.Errorf("peer %d Received = %d, want %d", i, m.Received, goroutines*rounds)
		}
		rfkc := ep.RFKCStats()
		if rfkc.Hits+rfkc.Misses != m.Received {
			t.Errorf("peer %d RFKC lookups (%d) != opens (%d)", i, rfkc.Hits+rfkc.Misses, m.Received)
		}
		received += m.Received
		receivedBytes += m.ReceivedBytes
	}
	if received != seals {
		t.Errorf("total Received = %d, want %d", received, seals)
	}
	if receivedBytes != seals*2 {
		t.Errorf("total ReceivedBytes = %d, want %d", receivedBytes, seals*2)
	}
}
