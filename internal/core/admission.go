package core

import (
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/principal"
)

// Keying admission control. The most expensive thing an unauthenticated
// datagram can make a receiver do is key a brand-new peer: a directory
// round trip, a certificate verification, and a modular exponentiation
// (Section 5.3's miss path). A spoofed-source flood therefore buys an
// attacker one exponentiation per forged address — the classic
// verification-flooding DoS against datagram authentication. The gate
// here sits in front of the MKD upcall on the receive path and sheds
// such packets *before* any expensive work:
//
//   - peers whose master key is already cached bypass the gate entirely
//     (their keying cost is one hash, not an exponentiation);
//   - a global token bucket bounds the sustained rate of new-peer
//     keying attempts (DropKeyingOverload beyond it);
//   - a per-source-prefix quota keeps any one prefix from monopolising
//     the bucket (DropPeerQuota), so a flood from one network cannot
//     starve first-contact traffic from everywhere else.
//
// Everything the gate sheds is recoverable soft-state behaviour: the
// legitimate peer's next datagram simply retries admission.

// AdmissionConfig bounds receive-path keying work for unknown peers.
// The zero value disables the gate (historic behaviour).
type AdmissionConfig struct {
	// UpcallRate is the sustained rate (per second) of admitted keying
	// attempts for peers not yet in the master key cache. <= 0 disables
	// the gate.
	UpcallRate float64
	// UpcallBurst is the token bucket depth; default max(8, UpcallRate).
	UpcallBurst int
	// PrefixQuota caps admitted attempts per source prefix per
	// QuotaWindow; 0 means no per-prefix quota.
	PrefixQuota int
	// PrefixLen is how many leading bytes of the source address form
	// its prefix; default 8 (longer addresses aggregate, shorter ones
	// stand alone).
	PrefixLen int
	// QuotaWindow is the per-prefix accounting window; default 1s.
	QuotaWindow time.Duration
}

// enabled reports whether the configuration turns the gate on.
func (c AdmissionConfig) enabled() bool { return c.UpcallRate > 0 }

// AdmissionStats snapshots gate activity for EndpointStats and
// /metrics.
type AdmissionStats struct {
	// Admitted counts keying attempts that passed the gate.
	Admitted uint64
	// ShedOverload counts datagrams refused by the token bucket.
	ShedOverload uint64
	// ShedQuota counts datagrams refused by the per-prefix quota.
	ShedQuota uint64
	// Depth is the number of admitted upcalls currently in flight
	// behind the gate (the keying queue depth gauge).
	Depth int64
	// ActivePrefixes is the number of source prefixes currently
	// tracked by the quota.
	ActivePrefixes int
}

// prefixQuotaCap bounds the per-prefix tracking map so an address-scan
// flood cannot grow the gate's own state without limit.
const prefixQuotaCap = 4096

// prefixWindow is one prefix's admission count within the current
// quota window.
type prefixWindow struct {
	start time.Time
	count int
}

// admissionGate implements AdmissionConfig. Admit is called only on
// the RFKC-miss + unknown-peer path, so the mutex is far off the
// steady-state hot path.
type admissionGate struct {
	clock  Clock
	rate   float64
	burst  float64
	quota  int
	plen   int
	window time.Duration

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	prefixes map[string]*prefixWindow

	admitted     atomic.Uint64
	shedOverload atomic.Uint64
	shedQuota    atomic.Uint64
	depth        atomic.Int64
}

// newAdmissionGate builds the gate, or returns nil when the
// configuration disables it.
func newAdmissionGate(cfg AdmissionConfig, clock Clock) *admissionGate {
	if !cfg.enabled() {
		return nil
	}
	burst := float64(cfg.UpcallBurst)
	if burst <= 0 {
		burst = cfg.UpcallRate
		if burst < 8 {
			burst = 8
		}
	}
	plen := cfg.PrefixLen
	if plen <= 0 {
		plen = 8
	}
	window := cfg.QuotaWindow
	if window <= 0 {
		window = time.Second
	}
	return &admissionGate{
		clock:    clock,
		rate:     cfg.UpcallRate,
		burst:    burst,
		quota:    cfg.PrefixQuota,
		plen:     plen,
		window:   window,
		tokens:   burst,
		prefixes: make(map[string]*prefixWindow),
	}
}

// prefix reduces a source address to its quota key.
func (g *admissionGate) prefix(src principal.Address) string {
	s := string(src)
	if len(s) > g.plen {
		s = s[:g.plen]
	}
	return s
}

// Admit decides whether a keying attempt for src may proceed,
// returning nil or the shed error. The per-prefix quota is checked
// before the bucket so an over-quota prefix cannot drain tokens that
// first-contact traffic from other prefixes needs.
func (g *admissionGate) Admit(src principal.Address) error {
	now := g.clock.Now()
	g.mu.Lock()
	if g.quota > 0 {
		p := g.prefix(src)
		w := g.prefixes[p]
		// A window is stale when its start is at least one window in the
		// past — or in the future, which happens when the clock steps
		// backwards. Without the clamp a future start yields a negative
		// elapsed that never expires, pinning the window (and its count)
		// until the clock catches back up.
		if w == nil || now.Sub(w.start) >= g.window || now.Before(w.start) {
			if w == nil {
				if len(g.prefixes) >= prefixQuotaCap {
					g.evictStalest()
				}
				w = &prefixWindow{}
				g.prefixes[p] = w
			}
			w.start = now
			w.count = 0
		}
		if w.count >= g.quota {
			g.mu.Unlock()
			g.shedQuota.Add(1)
			return ErrPeerQuota
		}
		w.count++
	}
	// Refill the bucket for the elapsed time, then take one token. A
	// negative elapsed (backward clock step) must not drain the bucket:
	// refill only moves forward, and last is rewound to now so refill
	// resumes from the stepped-back time.
	if !g.last.IsZero() {
		if elapsed := now.Sub(g.last).Seconds(); elapsed > 0 {
			g.tokens += elapsed * g.rate
			if g.tokens > g.burst {
				g.tokens = g.burst
			}
		}
	}
	g.last = now
	if g.tokens < 1 {
		g.mu.Unlock()
		g.shedOverload.Add(1)
		return ErrKeyingOverload
	}
	g.tokens--
	g.mu.Unlock()
	g.admitted.Add(1)
	return nil
}

// evictStalest removes the prefix window with the oldest start, so an
// attacker cycling through fresh prefixes ages out idle windows instead
// of flushing the ones tracking active offenders (an arbitrary map
// delete let exactly that happen). Caller holds mu.
func (g *admissionGate) evictStalest() {
	var stalest string
	var oldest time.Time
	first := true
	for k, w := range g.prefixes {
		if first || w.start.Before(oldest) {
			stalest, oldest, first = k, w.start, false
		}
	}
	if !first {
		delete(g.prefixes, stalest)
	}
}

// enter/leave bracket an admitted upcall for the depth gauge.
func (g *admissionGate) enter() {
	if g != nil {
		g.depth.Add(1)
	}
}

func (g *admissionGate) leave() {
	if g != nil {
		g.depth.Add(-1)
	}
}

// Stats snapshots the gate. Safe on nil (all zero).
func (g *admissionGate) Stats() AdmissionStats {
	if g == nil {
		return AdmissionStats{}
	}
	g.mu.Lock()
	active := len(g.prefixes)
	g.mu.Unlock()
	return AdmissionStats{
		Admitted:       g.admitted.Load(),
		ShedOverload:   g.shedOverload.Load(),
		ShedQuota:      g.shedQuota.Load(),
		Depth:          g.depth.Load(),
		ActivePrefixes: active,
	}
}
