package core

import (
	"sync"
	"time"
)

// Clock abstracts time for the protocol so simulations can drive it with
// virtual time. The paper's timestamp scheme needs only loose
// synchronisation between principals (Section 5.3).
type Clock interface {
	Now() time.Time
}

// RealClock reads the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// SimClock is a manually advanced clock for tests and simulations. It is
// safe for concurrent use.
type SimClock struct {
	mu sync.RWMutex
	t  time.Time
}

// NewSimClock creates a simulated clock starting at t.
func NewSimClock(t time.Time) *SimClock { return &SimClock{t: t} }

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t.
func (c *SimClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// TimestampEpoch is the zero point of the FBS timestamp: 00:00 GMT
// January 1, 1996, per Section 7.2. With 32 bits of minutes the field
// wraps only after roughly 8000 years.
var TimestampEpoch = time.Date(1996, time.January, 1, 0, 0, 0, 0, time.UTC)

// Timestamp is the FBS header time value: minutes since TimestampEpoch.
// Minute resolution is deliberate — the timestamp is only a coarse replay
// guard (Section 5.3).
type Timestamp uint32

// TimestampOf converts a wall-clock time to an FBS timestamp.
func TimestampOf(t time.Time) Timestamp {
	m := t.Sub(TimestampEpoch) / time.Minute
	if m < 0 {
		return 0
	}
	return Timestamp(m)
}

// Time converts the timestamp back to the start of its minute.
func (ts Timestamp) Time() time.Time {
	return TimestampEpoch.Add(time.Duration(ts) * time.Minute)
}

// Fresh reports whether the timestamp falls within a sliding window of
// +-window centred on now (Section 5.2, step R3). The window accounts for
// transmission delay and clock skew between principals.
func (ts Timestamp) Fresh(now time.Time, window time.Duration) bool {
	d := now.Sub(ts.Time())
	if d < 0 {
		d = -d
	}
	return d <= window
}
