package core

import (
	"sync"
	"time"
)

// Clock abstracts time for the protocol so simulations can drive it with
// virtual time. The paper's timestamp scheme needs only loose
// synchronisation between principals (Section 5.3).
type Clock interface {
	Now() time.Time
}

// RealClock reads the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// SimClock is a manually advanced clock for tests and simulations. It is
// safe for concurrent use.
type SimClock struct {
	mu sync.RWMutex
	t  time.Time
}

// NewSimClock creates a simulated clock starting at t.
func NewSimClock(t time.Time) *SimClock { return &SimClock{t: t} }

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t.
func (c *SimClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// TimestampEpoch is the zero point of the FBS timestamp: 00:00 GMT
// January 1, 1996, per Section 7.2. With 32 bits of minutes the field
// wraps only after roughly 8000 years.
var TimestampEpoch = time.Date(1996, time.January, 1, 0, 0, 0, 0, time.UTC)

// timestampEpochUnix caches the epoch in Unix seconds. All timestamp
// arithmetic goes through int64 seconds rather than time.Duration: 2^32
// minutes is ~8000 years, far past Duration's ~292-year range, so
// Duration-based conversions would silently overflow near the wrap.
var timestampEpochUnix = TimestampEpoch.Unix()

// Timestamp is the FBS header time value: minutes since TimestampEpoch,
// modulo 2^32. Minute resolution is deliberate — the timestamp is only a
// coarse replay guard (Section 5.3).
type Timestamp uint32

// TimestampOf converts a wall-clock time to an FBS timestamp. Times past
// the 2^32-minute wrap reduce modularly, matching Fresh's comparison;
// times before the epoch clamp to 0 (such a clock is simply broken).
func TimestampOf(t time.Time) Timestamp {
	m := floorDiv(t.Unix()-timestampEpochUnix, 60)
	if m < 0 {
		return 0
	}
	return Timestamp(m)
}

// Time converts the timestamp back to the start of its minute in the
// first 2^32-minute era. The wire field cannot say which era it belongs
// to; Fresh resolves that ambiguity relative to the receiver's clock.
func (ts Timestamp) Time() time.Time {
	return time.Unix(timestampEpochUnix+int64(ts)*60, 0).UTC()
}

// Fresh reports whether the timestamp falls within a sliding window of
// +-window centred on now (Section 5.2, step R3). The window accounts for
// transmission delay and clock skew between principals.
//
// The 32-bit minute counter is compared modularly: the sender's counter
// is placed at the representative nearest the receiver's own counter, so
// a sender just past the wrap boundary is minutes away from a receiver
// just before it — not ~8000 years stale, and never falsely fresh a
// whole era later.
func (ts Timestamp) Fresh(now time.Time, window time.Duration) bool {
	nowMin := floorDiv(now.Unix()-timestampEpochUnix, 60)
	// Signed modular distance in minutes, in [-2^31, 2^31): how far the
	// sender's counter sits from the receiver's, wrap-aware.
	delta := int64(int32(uint32(ts) - uint32(nowMin)))
	sender := time.Unix(timestampEpochUnix+(nowMin+delta)*60, 0)
	d := now.Sub(sender) // saturates at ±292y for far-apart values, still > window
	if d < 0 {
		d = -d
		if d < 0 {
			// -minDuration overflows back to itself; that far apart is
			// certainly stale.
			return false
		}
	}
	return d <= window
}

// floorDiv divides rounding toward negative infinity (Go's / truncates
// toward zero), so pre-epoch instants land in the right minute bucket.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
