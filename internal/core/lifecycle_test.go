package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// closeCountTransport records Close calls for teardown-accounting
// tests.
type closeCountTransport struct{ closes atomic.Int32 }

func (t *closeCountTransport) Send(transport.Datagram) error { return nil }
func (t *closeCountTransport) Receive() (transport.Datagram, error) {
	return transport.Datagram{}, transport.ErrClosed
}
func (t *closeCountTransport) Close() error { t.closes.Add(1); return nil }

// lifecycleEndpoint builds a minimal endpoint on tr keyed as addr.
func lifecycleEndpoint(t *testing.T, w *testWorld, addr principal.Address, tr transport.Transport) *Endpoint {
	t.Helper()
	ep, err := NewEndpoint(Config{
		Identity:  w.principal(t, addr),
		Transport: tr,
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

// TestShardGroupMidConstructionFailure pins the partial-teardown
// contract: when the shard factory fails partway, every shard already
// built is closed — its transport released exactly once — and the
// caller gets the wrapped factory error, not a leak.
func TestShardGroupMidConstructionFailure(t *testing.T) {
	w := newWorld(t)
	var built []*closeCountTransport
	boom := errors.New("boom")
	g, err := NewShardGroup(4, func(shard int) (Config, error) {
		if shard == 2 {
			return Config{}, boom
		}
		tr := &closeCountTransport{}
		built = append(built, tr)
		return Config{
			Identity:  w.principal(t, "shardfail"),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
		}, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("NewShardGroup error = %v, want wrapped factory error", err)
	}
	if g != nil {
		t.Fatal("NewShardGroup returned a group alongside an error")
	}
	if len(built) != 2 {
		t.Fatalf("factory built %d transports before failing, want 2", len(built))
	}
	for i, tr := range built {
		if got := tr.closes.Load(); got != 1 {
			t.Errorf("built shard %d: transport closed %d times, want exactly 1", i, got)
		}
	}
}

// TestShardGroupCloseIdempotent pins that closing a group (and its
// endpoints) twice releases each transport exactly once and that the
// second Close reports nothing new.
func TestShardGroupCloseIdempotent(t *testing.T) {
	w := newWorld(t)
	var built []*closeCountTransport
	g, err := NewShardGroup(3, func(shard int) (Config, error) {
		tr := &closeCountTransport{}
		built = append(built, tr)
		return Config{
			Identity:  w.principal(t, "shardclose"),
			Transport: tr,
			Directory: w.dir,
			Verifier:  w.ver,
			Clock:     w.clock,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for i, tr := range built {
		if got := tr.closes.Load(); got != 1 {
			t.Errorf("shard %d: transport closed %d times, want exactly 1", i, got)
		}
	}
}

// TestEndpointDrainRefusesNewWork pins the drain gate on all four
// datagram funnels: after BeginDrain, single and batched seals and
// opens refuse with ErrDraining, nothing is charged to the drop
// ledger, and Quiesce returns promptly on the now-idle endpoint.
func TestEndpointDrainRefusesNewWork(t *testing.T) {
	w := newWorld(t)
	ep := lifecycleEndpoint(t, w, "drain-a", nullTransport{})
	w.principal(t, "drain-b")

	dg := transport.Datagram{Source: "drain-a", Destination: "drain-b", Payload: []byte("hello")}
	sealed, err := ep.Seal(dg, true)
	if err != nil {
		t.Fatal(err)
	}

	ep.BeginDrain()
	if !ep.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if _, err := ep.Seal(dg, true); !errors.Is(err, ErrDraining) {
		t.Fatalf("Seal while draining: err = %v, want ErrDraining", err)
	}
	if _, err := ep.Open(sealed); !errors.Is(err, ErrDraining) {
		t.Fatalf("Open while draining: err = %v, want ErrDraining", err)
	}
	res := make([]BatchResult, 1)
	if _, n := ep.SealBatch(nil, []transport.Datagram{dg}, true, res); n != 0 || !errors.Is(res[0].Err, ErrDraining) {
		t.Fatalf("SealBatch while draining: n = %d, res[0].Err = %v, want 0/ErrDraining", n, res[0].Err)
	}
	if _, n := ep.OpenBatch(nil, []transport.Datagram{sealed}, res); n != 0 || !errors.Is(res[0].Err, ErrDraining) {
		t.Fatalf("OpenBatch while draining: n = %d, res[0].Err = %v, want 0/ErrDraining", n, res[0].Err)
	}
	var total uint64
	for _, c := range ep.DropCounts() {
		total += c
	}
	if total != 0 {
		t.Fatalf("draining refusals charged the drop ledger: %v", ep.DropCounts())
	}
	if err := ep.Quiesce(time.Second); err != nil {
		t.Fatalf("Quiesce on idle endpoint: %v", err)
	}
}

// TestQuiesceWaitsForInflight pins the wait: Quiesce blocks while an
// operation holds the gate and returns as soon as it releases.
func TestQuiesceWaitsForInflight(t *testing.T) {
	w := newWorld(t)
	ep := lifecycleEndpoint(t, w, "quiesce-a", nullTransport{})

	if err := ep.beginOp(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ep.Quiesce(5 * time.Second) }()
	select {
	case err := <-done:
		t.Fatalf("Quiesce returned (%v) with an operation in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	if got := ep.Inflight(); got != 1 {
		t.Fatalf("Inflight() = %d, want 1", got)
	}
	ep.endOp()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Quiesce after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce did not return after the in-flight operation ended")
	}

	// And the deadline path: a stuck op times out with the count named.
	ep2 := lifecycleEndpoint(t, w, "quiesce-b", nullTransport{})
	ep2.inflight.Add(1)
	if err := ep2.Quiesce(10 * time.Millisecond); err == nil {
		t.Fatal("Quiesce returned nil despite a stuck in-flight operation")
	}
	ep2.inflight.Add(-1)
}

// TestHandoffSoftState pins the swap-warming contract: certificates
// always carry to the successor, master keys only when the successor
// keys for the same identity, and a warmed successor seals to a known
// peer with zero exponentiations.
func TestHandoffSoftState(t *testing.T) {
	w := newWorld(t)
	old := lifecycleEndpoint(t, w, "handoff-self", nullTransport{})
	w.principal(t, "handoff-peer")

	dg := transport.Datagram{Source: "handoff-self", Destination: "handoff-peer", Payload: []byte("warm")}
	if _, err := old.Seal(dg, true); err != nil {
		t.Fatal(err)
	}
	if !old.ks.KnownPeer("handoff-peer") {
		t.Fatal("seal did not warm the old endpoint's MKC")
	}

	// Same identity: certs and master keys both carry; the successor
	// never computes an exponentiation for the known peer.
	succ := lifecycleEndpoint(t, w, "handoff-self", nullTransport{})
	hs := old.HandoffSoftState(succ)
	if hs.Certs == 0 || hs.MasterKeys == 0 {
		t.Fatalf("same-identity handoff = %+v, want certs and master keys", hs)
	}
	if !succ.ks.KnownPeer("handoff-peer") {
		t.Fatal("successor does not know the peer after handoff")
	}
	if _, err := succ.Seal(dg, true); err != nil {
		t.Fatal(err)
	}
	if ks, _, _, _ := succ.KeyStats(); ks.MasterKeyComputes != 0 {
		t.Fatalf("successor computed %d master keys after a warm handoff, want 0", ks.MasterKeyComputes)
	}

	// Rotated identity (same address, fresh private value): certs
	// carry, master keys must not.
	rotated, err := principal.NewIdentity("handoff-self", cryptolib.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	rotEP, err := NewEndpoint(Config{
		Identity:  rotated,
		Transport: nullTransport{},
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rotEP.Close() })
	if old.SameIdentity(rotEP) {
		t.Fatal("SameIdentity true across a private-value rotation")
	}
	hs = old.HandoffSoftState(rotEP)
	if hs.Certs == 0 {
		t.Fatalf("rotated handoff carried no certs: %+v", hs)
	}
	if hs.MasterKeys != 0 {
		t.Fatalf("rotated handoff carried %d master keys, want 0", hs.MasterKeys)
	}
	if rotEP.ks.KnownPeer("handoff-peer") {
		t.Fatal("rotated endpoint inherited a master key its private value cannot have produced")
	}
}

// TestFlushPeerEvictsOnlyThatPeer pins the hot-rotation seam: flushing
// one peer forgets exactly that peer's certificate, master key and
// flow keys, leaving other peers' soft state warm.
func TestFlushPeerEvictsOnlyThatPeer(t *testing.T) {
	w := newWorld(t)
	ep := lifecycleEndpoint(t, w, "flush-self", nullTransport{})
	w.principal(t, "flush-p1")
	w.principal(t, "flush-p2")

	for _, dst := range []principal.Address{"flush-p1", "flush-p2"} {
		if _, err := ep.Seal(transport.Datagram{Source: "flush-self", Destination: dst, Payload: []byte("x")}, true); err != nil {
			t.Fatal(err)
		}
	}
	if !ep.ks.KnownPeer("flush-p1") || !ep.ks.KnownPeer("flush-p2") {
		t.Fatal("seals did not warm both peers")
	}
	tfkcBefore := ep.tfkc.Occupancy()

	ep.FlushPeer("flush-p1")
	if ep.ks.KnownPeer("flush-p1") {
		t.Fatal("flushed peer still has a cached master key")
	}
	if !ep.ks.KnownPeer("flush-p2") {
		t.Fatal("flush evicted an unrelated peer's master key")
	}
	if got := ep.tfkc.Occupancy(); got != tfkcBefore-1 {
		t.Fatalf("TFKC occupancy after flush = %d, want %d", got, tfkcBefore-1)
	}

	// Re-keying the flushed peer works and costs a fresh computation.
	before, _, _, _ := ep.KeyStats()
	if _, err := ep.Seal(transport.Datagram{Source: "flush-self", Destination: "flush-p1", Payload: []byte("y")}, true); err != nil {
		t.Fatal(err)
	}
	after, _, _, _ := ep.KeyStats()
	if after.MasterKeyComputes != before.MasterKeyComputes+1 {
		t.Fatalf("re-key after flush: computes %d → %d, want +1", before.MasterKeyComputes, after.MasterKeyComputes)
	}
}
