package core

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Attack-surface robustness: whatever arrives off the wire, the
// receive path returns an error rather than panicking or accepting.

func TestOpenNeverPanicsOnGarbage(t *testing.T) {
	w := newWorld(t)
	_, b, _ := endpointPair(t, w, nil)
	f := func(payload []byte, srcTag uint8) bool {
		src := "alice"
		if srcTag%3 == 0 {
			src = "nobody"
		}
		_, err := b.Open(transport.Datagram{
			Source:      principal.Address(src),
			Destination: "bob",
			Payload:     payload,
		})
		// Random bytes must never be accepted: a valid header demands a
		// valid 128-bit MAC, which random input cannot supply.
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOpenMutatedValidDatagram fuzzes structured mutations of a valid
// datagram: truncations, extensions, and header-field scrambles.
func TestOpenMutatedValidDatagram(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	sealed, err := a.Seal(transport.Datagram{Source: "alice", Destination: "bob", Payload: []byte("a perfectly valid datagram body")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed); err != nil {
		t.Fatal(err)
	}
	f := func(cut uint8, extend uint8, scramble []byte) bool {
		m := sealed.Clone()
		// Truncate.
		if int(cut) < len(m.Payload) && cut > 0 {
			m.Payload = m.Payload[:len(m.Payload)-int(cut)]
		}
		// Extend with junk.
		if extend > 0 {
			m.Payload = append(m.Payload, make([]byte, extend)...)
		}
		// Scramble bytes.
		for i, v := range scramble {
			if len(m.Payload) > 0 {
				m.Payload[(i*37)%len(m.Payload)] ^= v
			}
		}
		got, err := b.Open(m)
		if err != nil {
			return true
		}
		// The only acceptable acceptance is a byte-identical replay of
		// the unmodified datagram.
		return bytes.Equal(m.Payload, sealed.Payload) &&
			bytes.Equal(got.Payload, []byte("a perfectly valid datagram body"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEndpointConcurrency hammers one endpoint pair from many
// goroutines; run with -race. Every accepted datagram must be intact.
func TestEndpointConcurrency(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, func(c *Config) { c.CombinedFSTTFKC = true })
	const senders = 8
	const perSender = 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				payload := []byte{byte(s), byte(i), 'p', 'a', 'y'}
				if err := a.SendTo("bob", payload, i%2 == 0); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	received := make(map[[2]byte]int)
	var rg sync.WaitGroup
	var rmu sync.Mutex
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				dg, err := b.Receive()
				if err == transport.ErrClosed {
					return
				}
				if err != nil {
					t.Errorf("unexpected rejection on clean network: %v", err)
					return
				}
				if len(dg.Payload) != 5 || dg.Payload[2] != 'p' {
					t.Errorf("mangled payload %x", dg.Payload)
					return
				}
				rmu.Lock()
				received[[2]byte{dg.Payload[0], dg.Payload[1]}]++
				done := len(received) == senders*perSender
				rmu.Unlock()
				if done {
					// Unblock the sibling receivers.
					b.Close()
					return
				}
			}
		}()
	}
	wg.Wait()
	// Receivers exit when everything arrived; closing b unblocks any
	// stragglers (the network is loss-free so all datagrams arrive).
	rg.Wait()
	rmu.Lock()
	defer rmu.Unlock()
	if len(received) != senders*perSender {
		t.Fatalf("received %d distinct datagrams, want %d", len(received), senders*perSender)
	}
	for k, c := range received {
		if c != 1 {
			t.Fatalf("datagram %v received %d times on a clean network", k, c)
		}
	}
}

// TestConcurrentSweeperAndTraffic races the background sweeper against
// live traffic; run with -race.
func TestConcurrentSweeperAndTraffic(t *testing.T) {
	w := newWorld(t)
	a, b, _ := endpointPair(t, w, nil)
	stop := a.StartSweeper(time.Millisecond)
	defer stop()
	for i := 0; i < 200; i++ {
		if err := a.SendTo("bob", []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Receive(); err != nil {
			t.Fatal(err)
		}
	}
}
