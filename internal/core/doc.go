// Package core implements the Flow-Based Security (FBS) protocol of
// Mittra and Woo (SIGCOMM '97): datagram security structured around
// flows.
//
// The protocol consists of two tightly coupled mechanisms:
//
//   - The flow association mechanism (FAM) classifies outgoing datagrams
//     into flows. It is policy-driven: mapper and sweeper policy modules
//     plug into a flow state table (Section 5.1, Figures 1 and 7).
//   - Zero-message keying derives a per-flow key without any end-to-end
//     exchange: from the implicit Diffie-Hellman pair-based master key
//     K_{S,D} = g^sd mod p and the flow's security flow label (sfl), both
//     ends compute K_f = H(sfl | K_{S,D} | S | D) (Section 5.2).
//
// Every datagram carries a security flow header (sfl, confounder,
// timestamp, MAC); all other state — certificates, master keys, flow keys
// — is soft, held in the PVC/MKC/TFKC/RFKC cache hierarchy (Section 5.3)
// and recomputable from the datagram itself. Losing any cache entry
// costs time, never correctness, so datagram semantics are fully
// preserved: no setup messages, no hard state, each datagram processable
// in isolation.
//
// The two protocol halves are implemented by Endpoint.Send (FBSSend,
// Figure 4 left; the cached fast path is Figure 6) and Endpoint.Receive
// (FBSReceive, Figure 4 right).
//
// One deliberate deviation from the paper's pseudo-code: Figure 4
// computes the MAC over the plaintext body before encrypting (S6 before
// S8–S9) but verifies it before decrypting (R7 before R10–R11), which
// cannot both hold. Like the authors' BSD implementation must have, this
// implementation resolves the inconsistency by decrypting first and then
// verifying the MAC over the recovered plaintext.
package core
