package core

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// FlowID is the set of datagram attributes a security flow policy uses to
// tell flows apart. The IP mapping fills the classic 5-tuple (Section
// 7.1); application-layer mappings may instead place a conversation
// identifier in Aux. The zero value of unused fields is fine — equality
// over the whole struct is what defines "same flow".
type FlowID struct {
	Src, Dst principal.Address
	Proto    uint8
	SrcPort  uint16
	DstPort  uint16
	Aux      uint64
}

// hash randomises the flow identifier with CRC-32 for table indexing.
// Section 5.3 requires a randomising hash because the inputs (local
// addresses, sequential ports) are highly correlated; modulo or XOR
// folding would collide systematically.
func (f FlowID) hash() uint32 {
	state := uint32(0xFFFFFFFF)
	state = cryptolib.CRC32UpdateString(state, string(f.Src))
	state = cryptolib.CRC32UpdateString(state, string(f.Dst))
	var b [13]byte
	b[0] = f.Proto
	binary.BigEndian.PutUint16(b[1:], f.SrcPort)
	binary.BigEndian.PutUint16(b[3:], f.DstPort)
	binary.BigEndian.PutUint64(b[5:], f.Aux)
	return cryptolib.CRC32Update(state, b[:]) ^ 0xFFFFFFFF
}

// FSTEntry is one slot of the flow state table (Figure 7). It stores the
// flow's sfl plus the state the mapper and sweeper modules need, along
// with accounting used by the flow-characteristics experiments.
type FSTEntry struct {
	Valid   bool
	ID      FlowID
	SFL     SFL
	Created time.Time
	Last    time.Time
	Packets uint64
	Bytes   uint64

	// Suite is the cipher suite pinned to this flow when it was created
	// (suite negotiation happens at keying time; every datagram of the
	// flow seals under the same suite until rekeying starts a new flow).
	Suite CipherID

	// flowKey caches the flow key alongside the entry when the combined
	// FST/TFKC optimisation of Section 7.2 is enabled.
	flowKey    [16]byte
	flowKeySet bool
}

// Mapper is the policy module that maps a datagram's attributes to a flow
// state table slot and decides whether an existing entry still covers the
// datagram (Section 5.1).
type Mapper interface {
	// Index picks the table slot for the attributes.
	Index(id FlowID, tableSize int) int
	// Match reports whether entry e is valid for a datagram with the
	// given attributes at time now.
	Match(e *FSTEntry, id FlowID, now time.Time) bool
}

// Sweeper is the policy module that expires flows that are no longer
// active (Section 5.1).
type Sweeper interface {
	// Expired reports whether entry e should be invalidated at time now.
	Expired(e *FSTEntry, now time.Time) bool
}

// PressureSweeper is an optional Sweeper extension for memory-budgeted
// endpoints: when the soft-state budget crosses its high-water mark the
// sweep runs in pressure mode, and policies implementing this interface
// expire flows under a tightened THRESHOLD. Expiring a still-live flow
// early is always safe — the next datagram simply starts a fresh flow
// with a fresh sfl — so pressure trades a little rekeying work for
// reclaimed state, exactly the soft-state bargain of Section 4.
type PressureSweeper interface {
	// ExpiredUnderPressure reports whether e should be invalidated at
	// time now given that the endpoint is under memory pressure.
	ExpiredUnderPressure(e *FSTEntry, now time.Time) bool
}

// Policy bundles the two plug-in modules. Most policies, like the
// paper's THRESHOLD policy, implement both with shared state.
type Policy interface {
	Mapper
	Sweeper
}

// ThresholdPolicy is the security flow policy of Section 7.1 in its
// layer-independent form: a flow is a sequence of datagrams with equal
// attributes whose inter-arrival gap never exceeds Threshold. It indexes
// the table with CRC-32 as Figure 7 prescribes.
//
// The optional wear-out limits implement the paper's rekeying story
// (Section 5.2): "with use, an encryption key will 'wear out'...
// rekeying can be easily accomplished via the FAM by changing the sfl.
// Rekeying decisions, though, are made by policy modules." When a flow
// exceeds MaxPackets or MaxBytes the next datagram simply starts a new
// flow — and with it a fresh sfl and a fresh key — with zero protocol
// messages.
type ThresholdPolicy struct {
	// Threshold is the idle gap that ends a flow. The paper evaluates
	// 300-1200 s and finds 300-600 s a good trade-off (Figures 13, 14).
	Threshold time.Duration
	// MaxPackets rekeys a flow after this many datagrams (0 = no limit).
	MaxPackets uint64
	// MaxBytes rekeys a flow after this much payload (0 = no limit).
	MaxBytes uint64
	// PressureThreshold is the tightened idle gap used when sweeping
	// under memory pressure; 0 defaults to Threshold/8. See
	// PressureSweeper.
	PressureThreshold time.Duration
}

// Index implements Mapper.
func (p ThresholdPolicy) Index(id FlowID, tableSize int) int {
	return int(id.hash() % uint32(tableSize))
}

// Match implements Mapper: same attributes, within the threshold, and
// under the key wear-out limits.
func (p ThresholdPolicy) Match(e *FSTEntry, id FlowID, now time.Time) bool {
	if !e.Valid || e.ID != id || now.Sub(e.Last) > p.Threshold {
		return false
	}
	if p.MaxPackets > 0 && e.Packets >= p.MaxPackets {
		return false
	}
	if p.MaxBytes > 0 && e.Bytes >= p.MaxBytes {
		return false
	}
	return true
}

// Expired implements Sweeper.
func (p ThresholdPolicy) Expired(e *FSTEntry, now time.Time) bool {
	return e.Valid && now.Sub(e.Last) > p.Threshold
}

// ExpiredUnderPressure implements PressureSweeper with the tightened
// threshold.
func (p ThresholdPolicy) ExpiredUnderPressure(e *FSTEntry, now time.Time) bool {
	t := p.PressureThreshold
	if t <= 0 {
		t = p.Threshold / 8
	}
	return e.Valid && now.Sub(e.Last) > t
}

// HostPairPolicy classifies all traffic between a pair of principals into
// one flow, regardless of ports or protocol: the degenerate policy that
// reduces FBS to host-pair granularity (Section 2.2's comparison point).
type HostPairPolicy struct {
	// Threshold optionally expires idle host-pair flows; zero means
	// flows never expire.
	Threshold time.Duration
}

func hostPair(id FlowID) FlowID { return FlowID{Src: id.Src, Dst: id.Dst} }

// Index implements Mapper.
func (p HostPairPolicy) Index(id FlowID, tableSize int) int {
	return int(hostPair(id).hash() % uint32(tableSize))
}

// Match implements Mapper.
func (p HostPairPolicy) Match(e *FSTEntry, id FlowID, now time.Time) bool {
	if !e.Valid || e.ID != hostPair(id) {
		return false
	}
	return p.Threshold == 0 || now.Sub(e.Last) <= p.Threshold
}

// Expired implements Sweeper.
func (p HostPairPolicy) Expired(e *FSTEntry, now time.Time) bool {
	return e.Valid && p.Threshold != 0 && now.Sub(e.Last) > p.Threshold
}

// normalize reduces the FlowID according to the policy before storing it,
// so Match's equality works. Policies that aggregate attributes implement
// flowNormalizer; others store the FlowID as-is.
type flowNormalizer interface {
	normalize(FlowID) FlowID
}

func (HostPairPolicy) normalize(id FlowID) FlowID { return hostPair(id) }

// FAMStats counts flow association mechanism activity.
type FAMStats struct {
	Lookups      uint64
	Hits         uint64 // datagram matched an existing flow
	FlowsCreated uint64
	// Collisions counts flows prematurely terminated because a different
	// flow hashed to the same slot (footnote 11: harmless for security,
	// wasteful for performance).
	Collisions uint64
	// Expirations counts flows invalidated by the sweeper.
	Expirations uint64
}

// famStripe is one lock stripe of the flow state table: a mutex guarding
// the slots whose index has the stripe's low bits, plus that stripe's
// share of the counters (mutated under the stripe lock; Stats()
// aggregates, preserving exact totals). Padded so adjacent stripes do not
// share a cache line.
type famStripe struct {
	mu    sync.Mutex
	stats FAMStats
	_     [24]byte
}

// FAM is the flow association mechanism (Figure 1): a flow state table
// with pluggable mapper and sweeper policy modules. The source principal
// runs one FAM per outgoing interface; no state is shared with the
// destination (Section 5.1).
//
// The table is partitioned into power-of-two lock stripes (slot index low
// bits select the stripe) so datagrams of different flows classify in
// parallel; the sfl counter is a single atomic.
type FAM struct {
	policy     Policy
	table      []FSTEntry
	stripes    []famStripe
	stripeMask int
	nextSFL    atomic.Uint64

	// budget, when set, is charged CostFAMEntry per valid entry; flow
	// creation that would fill a fresh slot past the hard limit is
	// refused (classify reports !ok and the caller sheds the datagram
	// with DropStateBudget).
	budget *Budget

	// suiteOf, when set, picks the cipher suite pinned into a freshly
	// created flow entry (see Config.SuiteSelector). Nil pins CipherNone,
	// which standalone FAM users (tests, experiments) ignore.
	suiteOf func(FlowID) CipherID
}

// DefaultFSTSize is the default flow state table size. The paper observes
// almost no collisions with "a reasonable FSTSIZE, e.g., 32 or above"
// (footnote 11); we default comfortably above that.
const DefaultFSTSize = 256

// NewFAM builds a flow association mechanism with the given policy and
// table size (0 means DefaultFSTSize). The sfl counter starts at a random
// 64-bit value so that resetting the protocol subsystem cannot be
// exploited to force sfl reuse (Section 5.3).
func NewFAM(policy Policy, tableSize int) (*FAM, error) {
	if policy == nil {
		return nil, fmt.Errorf("core: FAM requires a policy")
	}
	if tableSize <= 0 {
		tableSize = DefaultFSTSize
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("core: randomising sfl counter: %w", err)
	}
	return newFAMWithSeed(policy, tableSize, binary.BigEndian.Uint64(seed[:])), nil
}

// newFAMWithSeed is the deterministic constructor for tests.
func newFAMWithSeed(policy Policy, tableSize int, seed uint64) *FAM {
	if tableSize <= 0 {
		tableSize = DefaultFSTSize
	}
	n := defaultStripeCount(tableSize)
	f := &FAM{
		policy:     policy,
		table:      make([]FSTEntry, tableSize),
		stripes:    make([]famStripe, n),
		stripeMask: n - 1,
	}
	f.nextSFL.Store(seed)
	return f
}

// SetBudget attaches the shared soft-state budget; call before the FAM
// serves traffic.
func (f *FAM) SetBudget(b *Budget) { f.budget = b }

// SetSuiteSelector installs the per-flow suite choice; call before the
// FAM serves traffic. The selector runs once per flow creation, and its
// result is pinned in the entry for the flow's lifetime.
func (f *FAM) SetSuiteSelector(sel func(FlowID) CipherID) { f.suiteOf = sel }

// Classify assigns the datagram with attributes id and size bytes to a
// flow, creating a new flow when no valid entry matches (the mapper
// module of Figure 7). It returns the flow's sfl and whether a new flow
// was started. With a budget at its hard limit, creation into an empty
// slot is refused and the zero SFL is returned with ok == false.
func (f *FAM) Classify(id FlowID, now time.Time, size int) (SFL, bool) {
	sfl, _, _, isNew, _, _ := f.classify(id, now, size)
	return sfl, isNew
}

// classify additionally returns the flow's pinned cipher suite, the
// datagram's 1-based sequence number within the flow (the entry's packet
// count after this datagram — monotonic under the stripe lock, so AEAD
// suites can use it as nonce material), and the slot index for the
// combined FST/TFKC fast path. ok == false when the state budget refused
// a creation.
func (f *FAM) classify(id FlowID, now time.Time, size int) (sfl SFL, suite CipherID, seq uint64, isNew bool, slot int, ok bool) {
	orig := id
	if n, nok := f.policy.(flowNormalizer); nok {
		id = n.normalize(id)
	}
	i := f.policy.Index(id, len(f.table))
	st := &f.stripes[i&f.stripeMask]
	st.mu.Lock()
	defer st.mu.Unlock()
	st.stats.Lookups++
	e := &f.table[i]
	if f.policy.Match(e, id, now) {
		e.Last = now
		e.Packets++
		e.Bytes += uint64(size)
		st.stats.Hits++
		return e.SFL, e.Suite, e.Packets, false, i, true
	}
	if e.Valid && e.ID != id {
		st.stats.Collisions++
	}
	// Overwriting a valid slot (collision or expired flow) is
	// budget-neutral; only filling an empty slot grows state.
	if !e.Valid && !f.budget.TryCharge(CostFAMEntry) {
		return 0, 0, 0, false, i, false
	}
	suite = CipherNone
	if f.suiteOf != nil {
		// The selector sees the un-normalized attributes: policy
		// aggregation (e.g. host-pair) must not hide the ports a
		// selector keys on. Whatever it picks is pinned with the entry.
		suite = f.suiteOf(orig)
	}
	sfl = SFL(f.nextSFL.Add(1) - 1)
	*e = FSTEntry{
		Valid:   true,
		ID:      id,
		SFL:     sfl,
		Created: now,
		Last:    now,
		Packets: 1,
		Bytes:   uint64(size),
		Suite:   suite,
	}
	st.stats.FlowsCreated++
	return sfl, suite, 1, true, i, true
}

// classifyBatch classifies a run of datagrams that share one FlowID
// under a single stripe acquisition. sizes carries the run's payload
// sizes in order. The entry's accounting advances one datagram at a
// time with the policy's Match re-checked before each, so wear-out
// limits (MaxPackets/MaxBytes) end the run exactly where the
// per-datagram path would; the caller re-classifies the remainder into
// a fresh flow. Sequence numbers are consecutive from firstSeq — the
// batch's nonce-counter reservation. On a budget refusal (ok == false)
// nothing was accepted and the caller sheds only the first datagram:
// re-attempting the rest re-checks the budget per datagram, exactly as
// a loop of classify calls would.
func (f *FAM) classifyBatch(id FlowID, now time.Time, sizes []int) (sfl SFL, suite CipherID, firstSeq uint64, n int, slot int, ok bool) {
	orig := id
	if nz, nok := f.policy.(flowNormalizer); nok {
		id = nz.normalize(id)
	}
	i := f.policy.Index(id, len(f.table))
	st := &f.stripes[i&f.stripeMask]
	st.mu.Lock()
	defer st.mu.Unlock()
	st.stats.Lookups++
	e := &f.table[i]
	if f.policy.Match(e, id, now) {
		e.Last = now
		e.Packets++
		e.Bytes += uint64(sizes[0])
		st.stats.Hits++
		sfl, suite, firstSeq = e.SFL, e.Suite, e.Packets
	} else {
		if e.Valid && e.ID != id {
			st.stats.Collisions++
		}
		if !e.Valid && !f.budget.TryCharge(CostFAMEntry) {
			return 0, 0, 0, 0, i, false
		}
		suite = CipherNone
		if f.suiteOf != nil {
			suite = f.suiteOf(orig)
		}
		sfl = SFL(f.nextSFL.Add(1) - 1)
		*e = FSTEntry{
			Valid:   true,
			ID:      id,
			SFL:     sfl,
			Created: now,
			Last:    now,
			Packets: 1,
			Bytes:   uint64(sizes[0]),
			Suite:   suite,
		}
		st.stats.FlowsCreated++
		firstSeq = 1
	}
	// The rest of the run rides the same entry while the policy still
	// matches it; each accepted datagram is one lookup + one hit, so the
	// FAM's counter invariants reconcile identically to a loop of
	// classify calls.
	for n = 1; n < len(sizes); n++ {
		if !f.policy.Match(e, id, now) {
			break
		}
		e.Packets++
		e.Bytes += uint64(sizes[n])
		st.stats.Lookups++
		st.stats.Hits++
	}
	return sfl, suite, firstSeq, n, i, true
}

// Sweep runs the sweeper module over the whole table (Figure 7),
// invalidating expired flows, and returns how many were expired. It locks
// one stripe at a time, so classification in other stripes proceeds
// concurrently with the sweep.
func (f *FAM) Sweep(now time.Time) int { return f.sweep(now, false) }

// SweepPressure sweeps in pressure mode: policies implementing
// PressureSweeper expire under their tightened threshold; others sweep
// normally.
func (f *FAM) SweepPressure(now time.Time) int { return f.sweep(now, true) }

func (f *FAM) sweep(now time.Time, pressure bool) int {
	expired := f.policy.Expired
	if pressure {
		if ps, ok := f.policy.(PressureSweeper); ok {
			expired = ps.ExpiredUnderPressure
		}
	}
	total := 0
	stripes := len(f.stripes)
	for si := range f.stripes {
		st := &f.stripes[si]
		st.mu.Lock()
		n := 0
		for i := si; i < len(f.table); i += stripes {
			if expired(&f.table[i], now) {
				f.table[i].Valid = false
				n++
			}
		}
		st.stats.Expirations += uint64(n)
		st.mu.Unlock()
		total += n
	}
	if total > 0 {
		f.budget.Release(int64(total) * CostFAMEntry)
	}
	return total
}

// ActiveFlows counts currently valid entries.
func (f *FAM) ActiveFlows() int {
	n := 0
	stripes := len(f.stripes)
	for si := range f.stripes {
		st := &f.stripes[si]
		st.mu.Lock()
		for i := si; i < len(f.table); i += stripes {
			if f.table[i].Valid {
				n++
			}
		}
		st.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the FAM counters, aggregated across the
// lock stripes. Because every counter is incremented under its stripe
// lock, the per-stripe sums reconcile exactly (Lookups == Hits +
// FlowsCreated, always).
func (f *FAM) Stats() FAMStats {
	var out FAMStats
	for i := range f.stripes {
		st := &f.stripes[i]
		st.mu.Lock()
		out.Lookups += st.stats.Lookups
		out.Hits += st.stats.Hits
		out.FlowsCreated += st.stats.FlowsCreated
		out.Collisions += st.stats.Collisions
		out.Expirations += st.stats.Expirations
		st.mu.Unlock()
	}
	return out
}

// FlowInfo is a point-in-time description of one live flow, for
// monitoring (the moral equivalent of netstat over the flow state
// table). Key material is deliberately not included.
type FlowInfo struct {
	ID      FlowID
	SFL     SFL
	Created time.Time
	Last    time.Time
	Packets uint64
	Bytes   uint64
	// Suite is the cipher suite pinned to the flow at creation.
	Suite CipherID
}

// Snapshot lists the currently valid flows.
func (f *FAM) Snapshot() []FlowInfo {
	var out []FlowInfo
	stripes := len(f.stripes)
	for si := range f.stripes {
		st := &f.stripes[si]
		st.mu.Lock()
		for i := si; i < len(f.table); i += stripes {
			e := &f.table[i]
			if !e.Valid {
				continue
			}
			out = append(out, FlowInfo{
				ID: e.ID, SFL: e.SFL,
				Created: e.Created, Last: e.Last,
				Packets: e.Packets, Bytes: e.Bytes,
				Suite: e.Suite,
			})
		}
		st.mu.Unlock()
	}
	return out
}

// stripe returns the lock stripe covering slot i.
func (f *FAM) stripe(i int) *famStripe { return &f.stripes[i&f.stripeMask] }

// entry returns a copy of slot i (for the combined FST/TFKC path and
// tests).
func (f *FAM) entry(i int) FSTEntry {
	st := f.stripe(i)
	st.mu.Lock()
	defer st.mu.Unlock()
	return f.table[i]
}

// setFlowKey caches the flow key in slot i if it still belongs to sfl
// (combined FST/TFKC optimisation, Section 7.2).
func (f *FAM) setFlowKey(i int, sfl SFL, key [16]byte) {
	st := f.stripe(i)
	st.mu.Lock()
	defer st.mu.Unlock()
	if f.table[i].Valid && f.table[i].SFL == sfl {
		f.table[i].flowKey = key
		f.table[i].flowKeySet = true
	}
}

// getFlowKey fetches a cached flow key from slot i for sfl.
func (f *FAM) getFlowKey(i int, sfl SFL) ([16]byte, bool) {
	st := f.stripe(i)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := &f.table[i]
	if e.Valid && e.SFL == sfl && e.flowKeySet {
		return e.flowKey, true
	}
	return [16]byte{}, false
}
