package core

import (
	"time"

	"fbs/internal/transport"
)

// This file defines the endpoint's tracing surface, the per-datagram
// companion to the aggregate Observer seam in obs.go. Where the
// Observer answers "what does the pipeline cost on average", a Tracer
// answers "where did THIS datagram spend its time, and why was it
// dropped": a sampled datagram carries a TraceID through seal,
// transport, the link fault model, and the peer's open path, and every
// stage it crosses emits a Span against that ID. The core package
// stays free of any collector dependency — internal/obs/trace provides
// the standard implementation.
//
// The gate discipline matches the Observer's: a nil Config.Tracer
// costs nothing; an attached tracer whose StartTrace returns 0 costs
// the hot path exactly that call (an atomic load or two) and no
// allocations — the invariant BenchmarkSealOpenAllocs enforces.

// TraceID aliases the transport-level trace identifier so spans and
// datagram metadata share one type. Zero means "not traced".
type TraceID = transport.TraceID

// SpanKind identifies which pipeline step a span timed. Seal-side and
// open-side spans share kinds where the work is symmetric (SpanFlowKey,
// SpanCrypto); Span.Seal tells the sides apart.
type SpanKind uint8

const (
	// SpanSeal is the send-side root: the whole Seal call. Attr is the
	// application payload length.
	SpanSeal SpanKind = iota
	// SpanClassify is flow classification in the flow state table,
	// including suite pinning and the AEAD sequence draw.
	SpanClassify
	// SpanFlowKey is flow-key retrieval or derivation on either side
	// (TFKC/RFKC probe, MKD upcall, admission verdict). Flags carry the
	// keying annotations; Attr is the directory attempt count.
	SpanFlowKey
	// SpanCrypto is the suite's body transform: MAC+encrypt on seal,
	// decrypt+verify (or the AEAD open) on open.
	SpanCrypto
	// SpanTransportSend times the underlying transport's Send call.
	SpanTransportSend
	// SpanLink is emitted by link fault models (netsim) for a traced
	// datagram in transit: loss, corruption, duplication, injection.
	// Dur is the modelled transit delay; Attr is model-specific (the
	// flipped bit index for corruption, the adversary kind for
	// injection).
	SpanLink
	// SpanOpen is the receive-side root: the whole Open call, with the
	// deliver-or-drop verdict in Drop. Attr is the wire payload length.
	SpanOpen
	// SpanParse covers receive-side admission before keying: addressing,
	// header decode, algorithm policy, and the freshness check.
	SpanParse
	// SpanReplay is the replay-cache probe (only on accept paths that
	// reach it).
	SpanReplay
	// SpanPrefilter is the edge pre-filter verdict on a received
	// datagram before the header parse: a sketch shed, a cookie-echo
	// verification (pass or DropBadCookie), or a refusal at the
	// challenge level. Attr is the sketch score when the sketch decided.
	SpanPrefilter
	// SpanChallenge is the emission of a stateless cookie challenge to
	// an unknown peer (receive side, but emitted for the outbound
	// control frame). Attr is the secret epoch the cookie was minted
	// under.
	SpanChallenge
	// SpanCookie is the sender-side absorption of a challenge frame
	// into the cookie jar. Attr is the cookie's secret epoch.
	SpanCookie

	// NumSpanKinds sizes per-kind arrays.
	NumSpanKinds = int(iota)
)

var spanKindNames = [NumSpanKinds]string{
	SpanSeal:          "seal",
	SpanClassify:      "classify",
	SpanFlowKey:       "flowkey",
	SpanCrypto:        "crypto",
	SpanTransportSend: "transport_send",
	SpanLink:          "link",
	SpanOpen:          "open",
	SpanParse:         "parse",
	SpanReplay:        "replay",
	SpanPrefilter:     "prefilter",
	SpanChallenge:     "challenge",
	SpanCookie:        "cookie",
}

// String returns the canonical label for the span kind.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// SpanFlags annotate a span with the boolean verdicts of the step it
// timed: cache tiers on the keying path, degradation modes, admission
// outcomes, and link-model events.
type SpanFlags uint32

const (
	// FlagKeyHit: the flow key came from the TFKC/RFKC (or the combined
	// FST entry) without an upcall.
	FlagKeyHit SpanFlags = 1 << iota
	// FlagKeyMKCHit: the upcall was served by the master key cache.
	FlagKeyMKCHit
	// FlagKeyComputed: a Diffie-Hellman exponentiation was performed.
	FlagKeyComputed
	// FlagKeyRetried: the directory lookup retried at least once under
	// the backoff policy.
	FlagKeyRetried
	// FlagKeyNegCache: the lookup was refused fast by the
	// negative-result cache.
	FlagKeyNegCache
	// FlagKeyStale: a just-expired certificate was served under
	// stale-while-revalidate.
	FlagKeyStale
	// FlagKeyCoalesced: this derivation joined an in-flight one (the
	// flow-key single-flight or the MKD's inflight coalescing).
	FlagKeyCoalesced
	// FlagAdmitted: an unknown peer passed the keying admission gate.
	FlagAdmitted
	// FlagAdmitRefused: the admission gate refused the keying attempt.
	FlagAdmitRefused
	// FlagBudgetRefused: the state budget's hard limit refused the work.
	FlagBudgetRefused
	// FlagSecretBody: the body was (to be) encrypted.
	FlagSecretBody
	// FlagLinkLost: the link model dropped the datagram.
	FlagLinkLost
	// FlagLinkCorrupt: the link model flipped a bit.
	FlagLinkCorrupt
	// FlagLinkDup: the link model delivered an extra copy.
	FlagLinkDup
	// FlagLinkInjected: the datagram was crafted or replayed by the
	// adversary, not sent by the legitimate sender.
	FlagLinkInjected
)

// spanFlagNames maps each flag bit to its canonical label, in bit
// order.
var spanFlagNames = []string{
	"key_hit",
	"mkc_hit",
	"computed",
	"retried",
	"neg_cache",
	"stale_served",
	"coalesced",
	"admitted",
	"admit_refused",
	"budget_refused",
	"secret",
	"lost",
	"corrupt",
	"dup",
	"injected",
}

// Names expands the flag set into its canonical labels.
func (f SpanFlags) Names() []string {
	if f == 0 {
		return nil
	}
	var out []string
	for i, name := range spanFlagNames {
		if f&(1<<uint(i)) != 0 {
			out = append(out, name)
		}
	}
	return out
}

// Span is one timed step of a traced datagram's journey. Spans are
// emitted by value and sized to scalars so recording one never
// allocates; collectors that need wall-clock alignment across
// processes use Start, collectors that only order within one process
// may rely on emission order.
type Span struct {
	// Trace is the datagram's trace ID (never zero in an emitted span).
	Trace TraceID
	// Kind is the pipeline step this span timed.
	Kind SpanKind
	// Seal is true for send-side spans, false for receive-side; link
	// spans report false.
	Seal bool
	// Drop is the step's verdict: DropNone unless this step refused the
	// datagram.
	Drop DropReason
	// Flags carry the step's boolean annotations.
	Flags SpanFlags
	// SFL is the flow label, when known at this step.
	SFL SFL
	// Start is when the step began.
	Start time.Time
	// Dur is how long the step took (for SpanLink: the modelled
	// transit delay).
	Dur time.Duration
	// Attr is a kind-specific scalar — payload length for root spans,
	// directory attempts for SpanFlowKey, model detail for SpanLink.
	Attr uint64
}

// Tracer receives per-datagram spans from an endpoint (and, in
// simulations, from link fault models). Implementations must be safe
// for concurrent use and must not allocate in StartTrace, which runs
// on every sealed datagram.
type Tracer interface {
	// StartTrace is the sampling gate: it returns a fresh nonzero trace
	// ID to trace this datagram, or 0 to skip it. Returning 0 must be
	// cheap (an atomic load or two) because the seal path consults it
	// unconditionally.
	StartTrace() TraceID
	// Span delivers one span of a traced datagram. Calls may arrive
	// from many goroutines and, for one trace, from both endpoints of
	// a connection.
	Span(s Span)
}

// traceCtx threads the active tracer and this datagram's trace ID
// through the pipeline. A nil *traceCtx means "not traced" — every
// helper is nil-safe, so the un-traced path never branches more than
// once per emission site.
type traceCtx struct {
	tr Tracer
	id TraceID
}

// active reports whether spans should be emitted.
func (t *traceCtx) active() bool { return t != nil && t.id != 0 }

// span stamps the trace ID and emits. Callers must have checked
// active().
func (t *traceCtx) span(s Span) {
	s.Trace = t.id
	t.tr.Span(s)
}

// KeyNote accumulates the keying-plane annotations of one flow-key
// retrieval: which cache tier answered, what degraded, and what the
// admission machinery decided. It is threaded by pointer (nil-safely)
// through the KeyService and MKD so the trace span — and only the
// trace span — can report per-datagram keying verdicts without new
// shared counters.
type KeyNote struct {
	// Attempts counts directory lookups performed (0 when no fetch was
	// needed; >1 means the backoff policy retried).
	Attempts uint32
	// MKCHit: the master key came from cache.
	MKCHit bool
	// Computed: a Diffie-Hellman exponentiation was performed.
	Computed bool
	// NegativeHit: the negative-result cache refused the lookup.
	NegativeHit bool
	// StaleServed: a just-expired certificate was served.
	StaleServed bool
	// Coalesced: this request joined an in-flight derivation.
	Coalesced bool
	// Admitted / AdmitRefused / BudgetRefused: the receive-path
	// admission verdicts.
	Admitted      bool
	AdmitRefused  bool
	BudgetRefused bool
}

// merge folds another note into n (nil-safe).
func (n *KeyNote) merge(o KeyNote) {
	if n == nil {
		return
	}
	if o.Attempts > n.Attempts {
		n.Attempts = o.Attempts
	}
	n.MKCHit = n.MKCHit || o.MKCHit
	n.Computed = n.Computed || o.Computed
	n.NegativeHit = n.NegativeHit || o.NegativeHit
	n.StaleServed = n.StaleServed || o.StaleServed
	n.Coalesced = n.Coalesced || o.Coalesced
	n.Admitted = n.Admitted || o.Admitted
	n.AdmitRefused = n.AdmitRefused || o.AdmitRefused
	n.BudgetRefused = n.BudgetRefused || o.BudgetRefused
}

// flags renders the note as span flags.
func (n KeyNote) flags() SpanFlags {
	var f SpanFlags
	if n.MKCHit {
		f |= FlagKeyMKCHit
	}
	if n.Computed {
		f |= FlagKeyComputed
	}
	if n.Attempts > 1 {
		f |= FlagKeyRetried
	}
	if n.NegativeHit {
		f |= FlagKeyNegCache
	}
	if n.StaleServed {
		f |= FlagKeyStale
	}
	if n.Coalesced {
		f |= FlagKeyCoalesced
	}
	if n.Admitted {
		f |= FlagAdmitted
	}
	if n.AdmitRefused {
		f |= FlagAdmitRefused
	}
	if n.BudgetRefused {
		f |= FlagBudgetRefused
	}
	return f
}
