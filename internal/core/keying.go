package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/cert"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// FlowKey derives the per-flow key K_f = H(sfl | K_{S,D} | S | D)
// (Section 5.2). Knowing K_f reveals neither K_{S,D} nor any other flow
// key, because H is one way; including S and D ties the key to the
// directed principal pair.
func FlowKey(hash cryptolib.HashID, sfl SFL, master [16]byte, src, dst principal.Address) [16]byte {
	var sflBytes [8]byte
	binary.BigEndian.PutUint64(sflBytes[:], uint64(sfl))
	sum := cryptolib.Digest(hash, sflBytes[:], master[:], src.Wire(), dst.Wire())
	var out [16]byte
	copy(out[:], sum)
	return out
}

// flowCacheKey indexes the transmission and receive flow key caches. Per
// Section 5.3 the TFKC is indexed by (sfl, D, S) — S is included for
// multi-homed principals (footnote 7).
type flowCacheKey struct {
	SFL SFL
	Dst principal.Address
	Src principal.Address
}

func (k flowCacheKey) hash() uint32 {
	state := uint32(0xFFFFFFFF)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k.SFL))
	state = cryptolib.CRC32Update(state, b[:])
	state = cryptolib.CRC32UpdateString(state, string(k.Dst))
	state = cryptolib.CRC32UpdateString(state, string(k.Src))
	return state ^ 0xFFFFFFFF
}

func addrHash(a principal.Address) uint32 {
	return cryptolib.CRC32UpdateString(0xFFFFFFFF, string(a)) ^ 0xFFFFFFFF
}

// KeyServiceStats counts keying activity below the flow key caches.
type KeyServiceStats struct {
	MasterKeyRequests uint64
	MasterKeyComputes uint64 // modular exponentiations performed
	CertFetches       uint64 // directory round trips (PVC misses)
	CertVerifies      uint64
	Failures          uint64

	// Retries counts directory lookups repeated after a failure (the
	// bounded-backoff path).
	Retries uint64
	// NegativeHits counts lookups refused fast because the peer failed
	// recently (the negative-result cache).
	NegativeHits uint64
	// StaleServed counts just-expired certificates served under the
	// stale-while-revalidate window because revalidation failed.
	StaleServed uint64
	// DeadlineExceeded counts retry loops abandoned for blowing their
	// deadline before exhausting MaxAttempts.
	DeadlineExceeded uint64
}

// keyServiceCounters is the lock-free internal form of KeyServiceStats:
// keying runs concurrently with the per-packet hot path, so its counters
// are atomics rather than a shared mutex.
type keyServiceCounters struct {
	masterKeyRequests atomic.Uint64
	masterKeyComputes atomic.Uint64
	certFetches       atomic.Uint64
	certVerifies      atomic.Uint64
	failures          atomic.Uint64

	retries          atomic.Uint64
	negativeHits     atomic.Uint64
	staleServed      atomic.Uint64
	deadlineExceeded atomic.Uint64
}

// RetryPolicy bounds how hard the keying plane fights a failing
// directory. The zero value means a single attempt with no backoff —
// exactly the pre-chaos behaviour — so existing configurations are
// unchanged. A populated policy retries with exponential backoff plus
// jitter: sleep_n = min(Base·2ⁿ, Max) scaled by a uniform factor in
// [1-JitterFrac, 1+JitterFrac], abandoning the loop once Deadline has
// elapsed. Bounding both attempts and elapsed time is what keeps an MKD
// outage from turning a datagram burst into an upcall storm.
type RetryPolicy struct {
	// MaxAttempts is the total number of directory lookups per fetch
	// (1 attempt = no retry). Values below 1 mean 1.
	MaxAttempts int
	// BaseBackoff is the first retry's sleep; default 10ms when
	// MaxAttempts > 1.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; default 1s.
	MaxBackoff time.Duration
	// JitterFrac spreads each sleep by ±JitterFrac (clamped to [0, 1]).
	JitterFrac float64
	// Deadline bounds the whole retry loop, sleeps included; 0 means
	// attempts alone bound it.
	Deadline time.Duration
}

// withDefaults normalises the policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.MaxAttempts > 1 && p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.JitterFrac > 1 {
		p.JitterFrac = 1
	}
	return p
}

// backoff returns the sleep before attempt n (1-based: the sleep after
// the n-th failure), jittered by u ∈ [0, 1).
func (p RetryPolicy) backoff(n int, u float64) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 {
		scale := 1 - p.JitterFrac + 2*p.JitterFrac*u
		d = time.Duration(float64(d) * scale)
	}
	return d
}

// KeyService implements the zero-message keying mechanism below the flow
// key level: the public value cache (PVC), the master key cache (MKC),
// certificate fetching and verification, and the Diffie-Hellman master
// key computation. It is what the master key daemon (MKD) serves upcalls
// from (Section 5.3, Figure 5).
type KeyService struct {
	self     *principal.Identity
	dir      cert.Directory
	verifier cert.CertVerifier
	clock    Clock

	pvc *DirectMapped[principal.Address, *cert.Certificate]
	mkc *DirectMapped[principal.Address, [16]byte]

	retry  RetryPolicy
	negTTL time.Duration
	swr    time.Duration
	sleep  func(time.Duration)

	// negative-result cache and the jitter RNG, both off the per-packet
	// hot path (only directory fetches touch them).
	negMu sync.Mutex
	neg   map[principal.Address]time.Time
	rng   *cryptolib.LCG

	stats keyServiceCounters
}

// negCacheCap bounds the negative-result cache so an address scan
// cannot grow it without limit.
const negCacheCap = 1024

// KeyServiceConfig sizes the key caches and configures how the service
// degrades when the directory does not answer.
type KeyServiceConfig struct {
	// PVCSize should be at least the expected number of concurrent
	// correspondent principals — PVC misses cost a network round trip.
	PVCSize int
	// MKCSize bounds cached pair-based master keys; an MKC miss costs a
	// modular exponentiation.
	MKCSize int

	// Retry bounds directory lookups; the zero value keeps the historic
	// single-attempt behaviour.
	Retry RetryPolicy
	// NegativeTTL caches a failed peer lookup for this long, failing
	// later requests for the same peer immediately instead of hammering
	// a directory that just said no. 0 disables the cache.
	NegativeTTL time.Duration
	// StaleWhileRevalidate lets a certificate that expired less than
	// this long ago keep deriving flow keys while refetching fails. The
	// stale certificate is still required to verify at its own NotAfter
	// instant, so only genuine, recently valid certificates qualify —
	// never a bad signature. 0 disables the mode.
	StaleWhileRevalidate time.Duration
	// Sleep is the backoff sleeper; nil means time.Sleep. Tests inject
	// a recorder to assert the backoff schedule without waiting it out.
	Sleep func(time.Duration)
	// RetrySeed seeds backoff jitter; 0 picks a fixed default.
	RetrySeed uint64
}

// NewKeyService wires the keying mechanism for one principal.
func NewKeyService(self *principal.Identity, dir cert.Directory, verifier cert.CertVerifier, clock Clock, cfg KeyServiceConfig) *KeyService {
	if clock == nil {
		clock = RealClock{}
	}
	if cfg.PVCSize <= 0 {
		cfg.PVCSize = 64
	}
	if cfg.MKCSize <= 0 {
		cfg.MKCSize = 64
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		seed = 0xFB5BACC0FF
	}
	return &KeyService{
		self:     self,
		dir:      dir,
		verifier: verifier,
		clock:    clock,
		pvc:      NewDirectMapped[principal.Address, *cert.Certificate](cfg.PVCSize, addrHash),
		mkc:      NewDirectMapped[principal.Address, [16]byte](cfg.MKCSize, addrHash),
		retry:    cfg.Retry.withDefaults(),
		negTTL:   cfg.NegativeTTL,
		swr:      cfg.StaleWhileRevalidate,
		sleep:    cfg.Sleep,
		neg:      make(map[principal.Address]time.Time),
		rng:      cryptolib.NewLCGSeeded(seed),
	}
}

// Self returns the principal this service keys for.
func (ks *KeyService) Self() *principal.Identity { return ks.self }

// SetBudget attaches the shared soft-state budget: the PVC charges
// CostCertEntry and the MKC CostMasterKeyEntry per valid slot. Call
// before the service handles traffic.
func (ks *KeyService) SetBudget(b *Budget) {
	ks.pvc.SetBudget(b, CostCertEntry)
	ks.mkc.SetBudget(b, CostMasterKeyEntry)
}

// KnownPeer reports whether peer's master key is already cached,
// without touching cache counters. The admission gate uses this peek:
// keying a known peer costs one hash, not an exponentiation, so known
// peers bypass admission control entirely.
func (ks *KeyService) KnownPeer(peer principal.Address) bool { return ks.mkc.Contains(peer) }

// MasterKey returns the pair-based master key with peer, computing and
// caching it as needed. The path mirrors Figure 6: MKC hit → done;
// otherwise PVC (fetching and verifying a certificate on miss), then one
// modular exponentiation, then install in the MKC.
func (ks *KeyService) MasterKey(peer principal.Address) ([16]byte, error) {
	return ks.masterKeyNoted(peer, nil)
}

// masterKeyNoted is MasterKey, annotating note (nil-safe) with which
// tier answered and how the fetch path degraded — the per-request
// counterpart of the aggregate KeyServiceStats counters, consumed by
// the tracing plane.
func (ks *KeyService) masterKeyNoted(peer principal.Address, note *KeyNote) ([16]byte, error) {
	ks.stats.masterKeyRequests.Add(1)
	if k, ok := ks.mkc.Get(peer); ok {
		if note != nil {
			note.MKCHit = true
		}
		return k, nil
	}
	c, err := ks.certificateNoted(peer, note)
	if err != nil {
		ks.stats.failures.Add(1)
		return [16]byte{}, err
	}
	k, err := ks.self.MasterKey(c.Public)
	if err != nil {
		ks.stats.failures.Add(1)
		return [16]byte{}, fmt.Errorf("core: master key with %q: %w", peer, err)
	}
	ks.stats.masterKeyComputes.Add(1)
	if note != nil {
		note.Computed = true
	}
	ks.mkc.Put(peer, k)
	return k, nil
}

// ErrPeerUnavailable marks a lookup refused by the negative-result
// cache: the directory failed for this peer recently and the TTL has
// not yet expired.
var ErrPeerUnavailable = errors.New("core: peer certificate recently unavailable")

// negCached reports whether peer is inside its negative-TTL window.
func (ks *KeyService) negCached(peer principal.Address, now time.Time) bool {
	if ks.negTTL <= 0 {
		return false
	}
	ks.negMu.Lock()
	defer ks.negMu.Unlock()
	exp, ok := ks.neg[peer]
	if !ok {
		return false
	}
	if now.Before(exp) {
		return true
	}
	delete(ks.neg, peer)
	return false
}

// negRemember installs a negative entry for peer; negForget clears it.
func (ks *KeyService) negRemember(peer principal.Address, now time.Time) {
	if ks.negTTL <= 0 {
		return
	}
	ks.negMu.Lock()
	defer ks.negMu.Unlock()
	if len(ks.neg) >= negCacheCap {
		for k := range ks.neg { // evict one arbitrary entry
			delete(ks.neg, k)
			break
		}
	}
	ks.neg[peer] = now.Add(ks.negTTL)
}

func (ks *KeyService) negForget(peer principal.Address) {
	if ks.negTTL <= 0 {
		return
	}
	ks.negMu.Lock()
	delete(ks.neg, peer)
	ks.negMu.Unlock()
}

// jitterUnit draws a uniform value in [0, 1) for backoff jitter.
func (ks *KeyService) jitterUnit() float64 {
	ks.negMu.Lock()
	u := float64(ks.rng.Uint32()) / float64(1<<32)
	ks.negMu.Unlock()
	return u
}

// lookup fetches a certificate from the directory under the retry
// policy: negative-cache fast path, then up to MaxAttempts tries with
// exponential backoff + jitter, abandoned early once Deadline elapses.
// Failures are remembered in the negative cache so the next burst of
// datagrams to the same unreachable peer fails fast instead of queueing
// behind a full retry loop each.
func (ks *KeyService) lookup(peer principal.Address, note *KeyNote) (*cert.Certificate, error) {
	start := ks.clock.Now()
	if ks.negCached(peer, start) {
		ks.stats.negativeHits.Add(1)
		if note != nil {
			note.NegativeHit = true
		}
		return nil, fmt.Errorf("%w: %q", ErrPeerUnavailable, peer)
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if note != nil && uint32(attempt) > note.Attempts {
			note.Attempts = uint32(attempt)
		}
		c, err := ks.dir.Lookup(peer)
		if err == nil {
			ks.negForget(peer)
			return c, nil
		}
		lastErr = err
		if attempt >= ks.retry.MaxAttempts {
			break
		}
		if ks.retry.Deadline > 0 && ks.clock.Now().Sub(start) >= ks.retry.Deadline {
			ks.stats.deadlineExceeded.Add(1)
			break
		}
		ks.stats.retries.Add(1)
		ks.sleep(ks.retry.backoff(attempt, ks.jitterUnit()))
	}
	ks.negRemember(peer, ks.clock.Now())
	return nil, lastErr
}

// staleUsable decides whether an expired cached certificate may keep
// serving under stale-while-revalidate: it must have failed only by
// expiry (it still verifies at its own NotAfter instant — signature,
// issuer and subject intact) and the expiry must be within the window.
// A forged or revoked-by-reissue certificate never qualifies.
func (ks *KeyService) staleUsable(c *cert.Certificate, peer principal.Address, now time.Time) bool {
	if ks.swr <= 0 || c == nil {
		return false
	}
	if !now.After(c.NotAfter) || now.Sub(c.NotAfter) > ks.swr {
		return false
	}
	return ks.verifier.Verify(c, peer, c.NotAfter) == nil
}

// certificate returns a verified certificate for peer, via the PVC. The
// certificate is verified on every use — the PVC need not be a secure
// store because of this (Section 5.3). When the directory is failing,
// the retry policy bounds the fetch, the negative cache absorbs repeat
// misses, and (if enabled) stale-while-revalidate lets a just-expired
// certificate keep the flow alive while each use retries the refetch.
func (ks *KeyService) certificate(peer principal.Address) (*cert.Certificate, error) {
	return ks.certificateNoted(peer, nil)
}

// certificateNoted is certificate, annotating note (nil-safe) with the
// degradation verdicts (negative-cache refusals, retry attempts, stale
// serves) for the tracing plane.
func (ks *KeyService) certificateNoted(peer principal.Address, note *KeyNote) (*cert.Certificate, error) {
	now := ks.clock.Now()
	c, ok := ks.pvc.Get(peer)
	if !ok {
		var err error
		ks.stats.certFetches.Add(1)
		c, err = ks.lookup(peer, note)
		if err != nil {
			return nil, fmt.Errorf("core: fetching certificate for %q: %w", peer, err)
		}
		ks.pvc.Put(peer, c)
	}
	ks.stats.certVerifies.Add(1)
	if err := ks.verifier.Verify(c, peer, now); err != nil {
		// A cached certificate may simply have expired; drop it and
		// refetch (bounded by the retry policy).
		ks.pvc.Invalidate(peer)
		ks.stats.certFetches.Add(1)
		fresh, ferr := ks.lookup(peer, note)
		if ferr != nil {
			if ks.staleUsable(c, peer, now) {
				ks.stats.staleServed.Add(1)
				if note != nil {
					note.StaleServed = true
				}
				ks.pvc.Put(peer, c) // keep revalidating on later uses
				return c, nil
			}
			return nil, err
		}
		ks.stats.certVerifies.Add(1)
		if verr := ks.verifier.Verify(fresh, peer, now); verr != nil {
			if ks.staleUsable(c, peer, now) {
				ks.stats.staleServed.Add(1)
				if note != nil {
					note.StaleServed = true
				}
				ks.pvc.Put(peer, c)
				return c, nil
			}
			return nil, verr
		}
		ks.pvc.Put(peer, fresh)
		c = fresh
	}
	return c, nil
}

// Pin installs a certificate directly into the PVC ("pin certain
// certificates in the cache upon initialization", Section 5.3). The
// certificate is still verified on each use.
func (ks *KeyService) Pin(c *cert.Certificate) { ks.pvc.Put(c.Subject, c) }

// InvalidatePeer drops cached state for peer (e.g. after learning it
// rekeyed).
func (ks *KeyService) InvalidatePeer(peer principal.Address) {
	ks.pvc.Invalidate(peer)
	ks.mkc.Invalidate(peer)
}

// HandoffCerts offers every verified peer certificate to dst's PVC and
// reports how many were offered. Certificates are public,
// signature-checked material, so they are valid under any local
// configuration; each install is still gated by dst's own budget.
func (ks *KeyService) HandoffCerts(dst *KeyService) int {
	n := 0
	ks.pvc.Each(func(_ principal.Address, c *cert.Certificate) {
		dst.pvc.Put(c.Subject, c)
		n++
	})
	return n
}

// HandoffMasterKeys offers every cached pair master key to dst's MKC
// and reports how many were offered. Sound only when dst keys for the
// same identity (same DH private value ⇒ identical pair keys with
// every peer) — callers must check first; Endpoint.HandoffSoftState
// does.
func (ks *KeyService) HandoffMasterKeys(dst *KeyService) int {
	n := 0
	ks.mkc.Each(func(peer principal.Address, k [16]byte) {
		dst.mkc.Put(peer, k)
		n++
	})
	return n
}

// FlushPeer drops all keying state for peer — verified certificate,
// pair master key, and negative-lookup memory — forcing the next
// contact to re-run the full upcall chain. Endpoint.FlushPeer layers
// the flow-key caches on top.
func (ks *KeyService) FlushPeer(peer principal.Address) {
	ks.InvalidatePeer(peer)
	ks.negForget(peer)
}

// Stats returns a snapshot of keying counters.
func (ks *KeyService) Stats() KeyServiceStats {
	return KeyServiceStats{
		MasterKeyRequests: ks.stats.masterKeyRequests.Load(),
		MasterKeyComputes: ks.stats.masterKeyComputes.Load(),
		CertFetches:       ks.stats.certFetches.Load(),
		CertVerifies:      ks.stats.certVerifies.Load(),
		Failures:          ks.stats.failures.Load(),
		Retries:           ks.stats.retries.Load(),
		NegativeHits:      ks.stats.negativeHits.Load(),
		StaleServed:       ks.stats.staleServed.Load(),
		DeadlineExceeded:  ks.stats.deadlineExceeded.Load(),
	}
}

// PVCStats and MKCStats expose the underlying cache counters.
func (ks *KeyService) PVCStats() CacheStats { return ks.pvc.Stats() }

// MKCStats exposes the master key cache counters.
func (ks *KeyService) MKCStats() CacheStats { return ks.mkc.Stats() }

// now is a helper for tests.
func (ks *KeyService) now() time.Time { return ks.clock.Now() }

// flowKeyResult carries a coalesced derivation's outcome to waiters,
// including the leader's keying annotations so a follower's trace span
// still reports what the shared derivation actually did.
type flowKeyResult struct {
	key  [16]byte
	note KeyNote
	err  error
}

// flowKeyFlight coalesces concurrent derivations of the same flow key,
// the way MKD.inflight already coalesces master-key upcalls one level
// down. A datagram burst on a fresh flow would otherwise send every
// packet through the miss path at once — each charging the admission
// gate and queueing behind the MKD — when a single derivation serves
// them all.
type flowKeyFlight struct {
	mu      sync.Mutex
	waiting map[flowCacheKey][]chan flowKeyResult
	dedups  atomic.Uint64
}

// do runs fn for ck, unless a derivation for ck is already in flight, in
// which case it waits for and shares that one's result. joined reports
// whether this call was such a follower.
func (f *flowKeyFlight) do(ck flowCacheKey, fn func() ([16]byte, KeyNote, error)) (key [16]byte, note KeyNote, joined bool, err error) {
	f.mu.Lock()
	if f.waiting == nil {
		f.waiting = make(map[flowCacheKey][]chan flowKeyResult)
	}
	if chans, leader := f.waiting[ck]; leader {
		ch := make(chan flowKeyResult, 1)
		f.waiting[ck] = append(chans, ch)
		f.mu.Unlock()
		f.dedups.Add(1)
		r := <-ch
		return r.key, r.note, true, r.err
	}
	f.waiting[ck] = []chan flowKeyResult{}
	f.mu.Unlock()

	k, n, err := fn()

	f.mu.Lock()
	chans := f.waiting[ck]
	delete(f.waiting, ck)
	f.mu.Unlock()
	for _, ch := range chans {
		ch <- flowKeyResult{key: k, note: n, err: err}
	}
	return k, n, false, err
}

// Dedups counts derivations satisfied by joining an in-flight one.
func (f *flowKeyFlight) Dedups() uint64 { return f.dedups.Load() }
