package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"fbs/internal/cert"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// FlowKey derives the per-flow key K_f = H(sfl | K_{S,D} | S | D)
// (Section 5.2). Knowing K_f reveals neither K_{S,D} nor any other flow
// key, because H is one way; including S and D ties the key to the
// directed principal pair.
func FlowKey(hash cryptolib.HashID, sfl SFL, master [16]byte, src, dst principal.Address) [16]byte {
	var sflBytes [8]byte
	binary.BigEndian.PutUint64(sflBytes[:], uint64(sfl))
	sum := cryptolib.Digest(hash, sflBytes[:], master[:], src.Wire(), dst.Wire())
	var out [16]byte
	copy(out[:], sum)
	return out
}

// flowCacheKey indexes the transmission and receive flow key caches. Per
// Section 5.3 the TFKC is indexed by (sfl, D, S) — S is included for
// multi-homed principals (footnote 7).
type flowCacheKey struct {
	SFL SFL
	Dst principal.Address
	Src principal.Address
}

func (k flowCacheKey) hash() uint32 {
	state := uint32(0xFFFFFFFF)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k.SFL))
	state = cryptolib.CRC32Update(state, b[:])
	state = cryptolib.CRC32UpdateString(state, string(k.Dst))
	state = cryptolib.CRC32UpdateString(state, string(k.Src))
	return state ^ 0xFFFFFFFF
}

func addrHash(a principal.Address) uint32 {
	return cryptolib.CRC32UpdateString(0xFFFFFFFF, string(a)) ^ 0xFFFFFFFF
}

// KeyServiceStats counts keying activity below the flow key caches.
type KeyServiceStats struct {
	MasterKeyRequests uint64
	MasterKeyComputes uint64 // modular exponentiations performed
	CertFetches       uint64 // directory round trips (PVC misses)
	CertVerifies      uint64
	Failures          uint64
}

// keyServiceCounters is the lock-free internal form of KeyServiceStats:
// keying runs concurrently with the per-packet hot path, so its counters
// are atomics rather than a shared mutex.
type keyServiceCounters struct {
	masterKeyRequests atomic.Uint64
	masterKeyComputes atomic.Uint64
	certFetches       atomic.Uint64
	certVerifies      atomic.Uint64
	failures          atomic.Uint64
}

// KeyService implements the zero-message keying mechanism below the flow
// key level: the public value cache (PVC), the master key cache (MKC),
// certificate fetching and verification, and the Diffie-Hellman master
// key computation. It is what the master key daemon (MKD) serves upcalls
// from (Section 5.3, Figure 5).
type KeyService struct {
	self     *principal.Identity
	dir      cert.Directory
	verifier cert.CertVerifier
	clock    Clock

	pvc *DirectMapped[principal.Address, *cert.Certificate]
	mkc *DirectMapped[principal.Address, [16]byte]

	stats keyServiceCounters
}

// KeyServiceConfig sizes the key caches.
type KeyServiceConfig struct {
	// PVCSize should be at least the expected number of concurrent
	// correspondent principals — PVC misses cost a network round trip.
	PVCSize int
	// MKCSize bounds cached pair-based master keys; an MKC miss costs a
	// modular exponentiation.
	MKCSize int
}

// NewKeyService wires the keying mechanism for one principal.
func NewKeyService(self *principal.Identity, dir cert.Directory, verifier cert.CertVerifier, clock Clock, cfg KeyServiceConfig) *KeyService {
	if clock == nil {
		clock = RealClock{}
	}
	if cfg.PVCSize <= 0 {
		cfg.PVCSize = 64
	}
	if cfg.MKCSize <= 0 {
		cfg.MKCSize = 64
	}
	return &KeyService{
		self:     self,
		dir:      dir,
		verifier: verifier,
		clock:    clock,
		pvc:      NewDirectMapped[principal.Address, *cert.Certificate](cfg.PVCSize, addrHash),
		mkc:      NewDirectMapped[principal.Address, [16]byte](cfg.MKCSize, addrHash),
	}
}

// Self returns the principal this service keys for.
func (ks *KeyService) Self() *principal.Identity { return ks.self }

// MasterKey returns the pair-based master key with peer, computing and
// caching it as needed. The path mirrors Figure 6: MKC hit → done;
// otherwise PVC (fetching and verifying a certificate on miss), then one
// modular exponentiation, then install in the MKC.
func (ks *KeyService) MasterKey(peer principal.Address) ([16]byte, error) {
	ks.stats.masterKeyRequests.Add(1)
	if k, ok := ks.mkc.Get(peer); ok {
		return k, nil
	}
	c, err := ks.certificate(peer)
	if err != nil {
		ks.stats.failures.Add(1)
		return [16]byte{}, err
	}
	k, err := ks.self.MasterKey(c.Public)
	if err != nil {
		ks.stats.failures.Add(1)
		return [16]byte{}, fmt.Errorf("core: master key with %q: %w", peer, err)
	}
	ks.stats.masterKeyComputes.Add(1)
	ks.mkc.Put(peer, k)
	return k, nil
}

// certificate returns a verified certificate for peer, via the PVC. The
// certificate is verified on every use — the PVC need not be a secure
// store because of this (Section 5.3).
func (ks *KeyService) certificate(peer principal.Address) (*cert.Certificate, error) {
	now := ks.clock.Now()
	c, ok := ks.pvc.Get(peer)
	if !ok {
		var err error
		ks.stats.certFetches.Add(1)
		c, err = ks.dir.Lookup(peer)
		if err != nil {
			return nil, fmt.Errorf("core: fetching certificate for %q: %w", peer, err)
		}
		ks.pvc.Put(peer, c)
	}
	ks.stats.certVerifies.Add(1)
	if err := ks.verifier.Verify(c, peer, now); err != nil {
		// A cached certificate may simply have expired; drop it and
		// refetch once.
		ks.pvc.Invalidate(peer)
		fresh, ferr := ks.dir.Lookup(peer)
		if ferr != nil {
			return nil, err
		}
		ks.stats.certFetches.Add(1)
		ks.stats.certVerifies.Add(1)
		if verr := ks.verifier.Verify(fresh, peer, now); verr != nil {
			return nil, verr
		}
		ks.pvc.Put(peer, fresh)
		c = fresh
	}
	return c, nil
}

// Pin installs a certificate directly into the PVC ("pin certain
// certificates in the cache upon initialization", Section 5.3). The
// certificate is still verified on each use.
func (ks *KeyService) Pin(c *cert.Certificate) { ks.pvc.Put(c.Subject, c) }

// InvalidatePeer drops cached state for peer (e.g. after learning it
// rekeyed).
func (ks *KeyService) InvalidatePeer(peer principal.Address) {
	ks.pvc.Invalidate(peer)
	ks.mkc.Invalidate(peer)
}

// Stats returns a snapshot of keying counters.
func (ks *KeyService) Stats() KeyServiceStats {
	return KeyServiceStats{
		MasterKeyRequests: ks.stats.masterKeyRequests.Load(),
		MasterKeyComputes: ks.stats.masterKeyComputes.Load(),
		CertFetches:       ks.stats.certFetches.Load(),
		CertVerifies:      ks.stats.certVerifies.Load(),
		Failures:          ks.stats.failures.Load(),
	}
}

// PVCStats and MKCStats expose the underlying cache counters.
func (ks *KeyService) PVCStats() CacheStats { return ks.pvc.Stats() }

// MKCStats exposes the master key cache counters.
func (ks *KeyService) MKCStats() CacheStats { return ks.mkc.Stats() }

// now is a helper for tests.
func (ks *KeyService) now() time.Time { return ks.clock.Now() }
