package core

import (
	"testing"
	"time"
)

func TestReplayCacheDetectsDuplicates(t *testing.T) {
	rc := NewReplayCache(10 * time.Minute)
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	h := &Header{SFL: 1, Confounder: 42, Timestamp: TimestampOf(now)}
	if rc.Seen("alice", h, now) {
		t.Fatal("first sighting reported as duplicate")
	}
	if !rc.Seen("alice", h, now.Add(time.Second)) {
		t.Fatal("exact duplicate not detected")
	}
	// A different confounder is a different datagram.
	h2 := *h
	h2.Confounder = 43
	if rc.Seen("alice", &h2, now) {
		t.Fatal("distinct datagram flagged as duplicate")
	}
	// Different MAC (e.g. different payload, same confounder by chance).
	h3 := *h
	h3.MACValue[0] = 0xFF
	if rc.Seen("alice", &h3, now) {
		t.Fatal("distinct-MAC datagram flagged as duplicate")
	}
}

func TestReplayCacheExpires(t *testing.T) {
	rc := NewReplayCache(time.Minute)
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	h := &Header{SFL: 9, Confounder: 7}
	rc.Seen("alice", h, now)
	// Outside the window the entry no longer matters (the freshness
	// check would reject the datagram anyway).
	if rc.Seen("alice", h, now.Add(2*time.Minute)) {
		t.Fatal("expired entry still flagged as duplicate")
	}
}

func TestReplayCacheSweeps(t *testing.T) {
	rc := NewReplayCache(time.Minute)
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	for i := uint32(0); i < 100; i++ {
		rc.Seen("alice", &Header{SFL: 1, Confounder: i}, now)
	}
	if rc.Len() != 100 {
		t.Fatalf("Len = %d, want 100", rc.Len())
	}
	// A sighting two minutes later sweeps the expired entries.
	rc.Seen("bob", &Header{SFL: 2, Confounder: 0}, now.Add(2*time.Minute))
	if rc.Len() > 2 {
		t.Fatalf("Len after sweep = %d, want <= 2", rc.Len())
	}
}
