package core

import (
	"testing"
	"time"

	"fbs/internal/cryptolib"
)

func TestReplayCacheDetectsDuplicates(t *testing.T) {
	rc := NewReplayCache(10 * time.Minute)
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	h := &Header{SFL: 1, Confounder: 42, Timestamp: TimestampOf(now)}
	if rc.Check("alice", h, now) != ReplayFresh {
		t.Fatal("first sighting reported as duplicate")
	}
	if rc.Check("alice", h, now.Add(time.Second)) != ReplayDuplicate {
		t.Fatal("exact duplicate not detected")
	}
	// A different confounder is a different datagram.
	h2 := *h
	h2.Confounder = 43
	if rc.Check("alice", &h2, now) != ReplayFresh {
		t.Fatal("distinct datagram flagged as duplicate")
	}
	// Different MAC (e.g. different payload, same confounder by chance).
	h3 := *h
	h3.MACValue[0] = 0xFF
	if rc.Check("alice", &h3, now) != ReplayFresh {
		t.Fatal("distinct-MAC datagram flagged as duplicate")
	}
}

func TestReplayCacheExpires(t *testing.T) {
	rc := NewReplayCache(time.Minute)
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	h := &Header{SFL: 9, Confounder: 7}
	rc.Check("alice", h, now)
	// Outside the window the entry no longer matters (the freshness
	// check would reject the datagram anyway).
	if rc.Check("alice", h, now.Add(2*time.Minute)) != ReplayFresh {
		t.Fatal("expired entry still flagged as duplicate")
	}
}

func TestReplayCacheSweeps(t *testing.T) {
	rc := NewReplayCache(time.Minute)
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	for i := uint32(0); i < 100; i++ {
		rc.Check("alice", &Header{SFL: 1, Confounder: i}, now)
	}
	if rc.Len() != 100 {
		t.Fatalf("Len = %d, want 100", rc.Len())
	}
	// A sighting two minutes later sweeps the expired entries.
	rc.Check("bob", &Header{SFL: 2, Confounder: 0}, now.Add(2*time.Minute))
	if rc.Len() > 2 {
		t.Fatalf("Len after sweep = %d, want <= 2", rc.Len())
	}
}

// TestReplayCacheHardLimitIsSound is the adversarial regression for the
// refuse-the-newcomer policy: with the budget exhausted, offering new
// signatures must not displace residents, because a displaced signature
// could be replayed and accepted a second time within the window. Under
// the old evict-a-resident policy this test fails — the attacker's
// flood evicts the victim entry and the replayed datagram comes back
// ReplayFresh.
func TestReplayCacheHardLimitIsSound(t *testing.T) {
	b := NewBudget(0, 4*CostReplayEntry)
	rc := NewReplayCache(10 * time.Minute)
	rc.SetBudget(b)
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

	// The victim datagram is accepted and remembered.
	victim := &Header{SFL: 7, Confounder: 0xA11CE, Timestamp: TimestampOf(now)}
	if rc.Check("alice", victim, now) != ReplayFresh {
		t.Fatal("victim sighting not fresh")
	}
	// An attacker floods signatures until the budget refuses newcomers.
	refused := uint64(0)
	for i := uint32(0); i < 64; i++ {
		if rc.Check("mallory", &Header{SFL: 1, Confounder: i, Timestamp: TimestampOf(now)}, now) == ReplayRefused {
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("flood past the hard limit was never refused")
	}
	if got := rc.Stats().Refusals; got != refused {
		t.Fatalf("Refusals = %d, want %d", got, refused)
	}
	// The budget held and no resident was displaced: the victim entry
	// survives, so replaying the victim datagram is still detected.
	if b.Used() > 4*CostReplayEntry {
		t.Fatalf("used = %d, exceeds hard limit", b.Used())
	}
	if rc.Check("mallory", victim, now.Add(time.Minute)) != ReplayDuplicate {
		t.Fatal("victim signature was displaced: replayed datagram accepted")
	}
}

func TestReplayCacheBudgetRefusesAtHardLimit(t *testing.T) {
	b := NewBudget(0, 10*CostReplayEntry)
	rc := NewReplayCache(10 * time.Minute)
	rc.SetBudget(b)
	now := famEpoch
	for i := uint32(0); i < 50; i++ {
		rc.Check("mallory", &Header{SFL: 1, Confounder: i}, now)
	}
	if got := rc.Len(); got != 10 {
		t.Fatalf("entries = %d, want exactly the 10 the budget admits", got)
	}
	if b.Used() > 10*CostReplayEntry {
		t.Fatalf("used = %d, exceeds hard limit", b.Used())
	}
	if s := rc.Stats(); s.Refusals != 40 {
		t.Fatalf("Refusals = %d, want 40", s.Refusals)
	}
	// Sweeping expired entries returns their budget, so a later
	// newcomer is admitted again.
	if rc.Check("alice", &Header{SFL: 2, Confounder: 0, Timestamp: TimestampOf(now)}, now.Add(21*time.Minute)) != ReplayFresh {
		t.Fatal("newcomer refused after the sweep made room")
	}
	if b.Used() != CostReplayEntry {
		t.Fatalf("used after sweep = %d, want %d", b.Used(), CostReplayEntry)
	}
}

func TestReplayCachePerPeerOccupancy(t *testing.T) {
	rc := NewReplayCache(10 * time.Minute)
	now := famEpoch
	for i := uint32(0); i < 5; i++ {
		rc.Check("alice", &Header{SFL: 1, Confounder: i}, now)
	}
	for i := uint32(0); i < 3; i++ {
		rc.Check("bob", &Header{SFL: 2, Confounder: i}, now)
	}
	// Duplicates do not inflate occupancy.
	rc.Check("alice", &Header{SFL: 1, Confounder: 0}, now.Add(time.Second))
	per := rc.PerPeer()
	if per["alice"] != 5 || per["bob"] != 3 {
		t.Fatalf("per-peer occupancy = %v", per)
	}
	s := rc.Stats()
	if s.Entries != 8 || s.Peers != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestReplayStripeUniformity drives random signatures through the
// stripe function and asserts near-uniform occupancy: the
// confounder^sfl fold must not let one stripe silently become the
// contention (and, at the hard limit, refusal) hotspot.
func TestReplayStripeUniformity(t *testing.T) {
	rc := NewReplayCache(10 * time.Minute)
	stripes := len(rc.stripes)
	if stripes < 2 {
		t.Skip("single-stripe cache on this GOMAXPROCS; nothing to balance")
	}
	// Statistically random confounders (generator output) over a handful
	// of flows, mirroring real traffic: few sfls, many confounders.
	rng := cryptolib.NewLCGSeeded(0x5717FE)
	counts := make([]int, stripes)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		sig := replaySig{
			SFL:        SFL(0xABCD_0000 + uint64(i%8)),
			Confounder: rng.Uint32(),
			Timestamp:  Timestamp(i),
		}
		counts[sig.stripe(rc.mask)]++
	}
	mean := float64(n) / float64(stripes)
	for i, c := range counts {
		if f := float64(c); f < 0.7*mean || f > 1.3*mean {
			t.Errorf("stripe %d holds %d signatures, outside ±30%% of mean %.0f", i, c, mean)
		}
	}
	// A chi-squared sanity bound: for uniform occupancy the statistic
	// concentrates around (stripes-1); allow a generous multiple.
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	if limit := 4 * float64(stripes-1); chi2 > limit {
		t.Errorf("chi-squared %.1f exceeds %.1f: stripe distribution is skewed", chi2, limit)
	}
}
