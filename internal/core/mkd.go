package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/principal"
)

// MKD is the master key daemon of Figure 5. In the paper's in-kernel
// implementation, kernel send/receive processing Upcall()s a user-level
// daemon on an MKC miss; the daemon fetches certificates over the secure
// flow bypass, computes the Diffie-Hellman master key, and installs it.
// Here the daemon is a goroutine serving requests over a channel, with
// single-flight coalescing so a burst of datagrams to a new peer costs
// one certificate fetch and one exponentiation — the behaviour the
// paper's caching design is built around.
type MKD struct {
	ks *KeyService

	// timeout bounds how long an Upcall waits for the daemon; 0 waits
	// forever (the historic behaviour). Set via SetTimeout before
	// serving traffic.
	timeout  time.Duration
	timeouts atomic.Uint64

	mu       sync.Mutex
	inflight map[principal.Address][]chan mkdResult
	reqs     chan principal.Address
	done     chan struct{}
	once     sync.Once

	upcalls uint64
}

type mkdResult struct {
	key  [16]byte
	note KeyNote
	err  error
}

// ErrMKDStopped is returned by Upcall after Stop.
var ErrMKDStopped = errors.New("core: master key daemon stopped")

// ErrUpcallTimeout is returned by Upcall when the daemon does not
// answer within the configured deadline. The daemon keeps computing;
// the result lands in the MKC, so a later datagram on the same flow
// succeeds from cache — the caller drops this one datagram (DropKeying)
// instead of blocking the pipeline on a slow directory.
var ErrUpcallTimeout = errors.New("core: master key upcall deadline exceeded")

// NewMKD starts a master key daemon over the key service.
func NewMKD(ks *KeyService) *MKD {
	m := &MKD{
		ks:       ks,
		inflight: make(map[principal.Address][]chan mkdResult),
		reqs:     make(chan principal.Address, 64),
		done:     make(chan struct{}),
	}
	go m.serve()
	return m
}

func (m *MKD) serve() {
	for {
		select {
		case peer := <-m.reqs:
			var note KeyNote
			key, err := m.ks.masterKeyNoted(peer, &note)
			m.mu.Lock()
			waiters := m.inflight[peer]
			delete(m.inflight, peer)
			m.mu.Unlock()
			for _, w := range waiters {
				w <- mkdResult{key: key, note: note, err: err}
			}
		case <-m.done:
			m.mu.Lock()
			for peer, waiters := range m.inflight {
				for _, w := range waiters {
					w <- mkdResult{err: ErrMKDStopped}
				}
				delete(m.inflight, peer)
			}
			m.mu.Unlock()
			return
		}
	}
}

// Upcall blocks until the daemon has the pair-based master key for peer.
// Concurrent upcalls for the same peer are coalesced into one
// computation.
func (m *MKD) Upcall(peer principal.Address) ([16]byte, error) {
	key, _, err := m.UpcallNoted(peer)
	return key, err
}

// UpcallNoted is Upcall, also reporting the keying annotations of the
// computation that produced the key. Coalesced waiters share the
// leader's note with KeyNote.Coalesced set.
func (m *MKD) UpcallNoted(peer principal.Address) ([16]byte, KeyNote, error) {
	ch := make(chan mkdResult, 1)
	m.mu.Lock()
	select {
	case <-m.done:
		m.mu.Unlock()
		return [16]byte{}, KeyNote{}, ErrMKDStopped
	default:
	}
	m.upcalls++
	first := len(m.inflight[peer]) == 0
	m.inflight[peer] = append(m.inflight[peer], ch)
	m.mu.Unlock()
	if first {
		select {
		case m.reqs <- peer:
		case <-m.done:
			return [16]byte{}, KeyNote{}, ErrMKDStopped
		}
	}
	if m.timeout > 0 {
		t := time.NewTimer(m.timeout)
		defer t.Stop()
		select {
		case r := <-ch:
			if !first {
				r.note.Coalesced = true
			}
			return r.key, r.note, r.err
		case <-t.C:
			// The daemon still resolves the request and installs the
			// key; only this waiter gives up (ch is buffered, so the
			// daemon's send never blocks on an abandoned waiter).
			m.timeouts.Add(1)
			return [16]byte{}, KeyNote{Coalesced: !first},
				fmt.Errorf("%w: peer %q after %v", ErrUpcallTimeout, peer, m.timeout)
		}
	}
	r := <-ch
	if !first {
		r.note.Coalesced = true
	}
	return r.key, r.note, r.err
}

// SetTimeout bounds future Upcalls; call before serving traffic.
func (m *MKD) SetTimeout(d time.Duration) { m.timeout = d }

// Upcalls returns how many upcalls were made.
func (m *MKD) Upcalls() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.upcalls
}

// Timeouts returns how many upcalls gave up at the deadline.
func (m *MKD) Timeouts() uint64 { return m.timeouts.Load() }

// Stop terminates the daemon; pending upcalls fail with ErrMKDStopped.
func (m *MKD) Stop() {
	m.once.Do(func() { close(m.done) })
}
