package core

import (
	"errors"
	"sync"

	"fbs/internal/principal"
)

// MKD is the master key daemon of Figure 5. In the paper's in-kernel
// implementation, kernel send/receive processing Upcall()s a user-level
// daemon on an MKC miss; the daemon fetches certificates over the secure
// flow bypass, computes the Diffie-Hellman master key, and installs it.
// Here the daemon is a goroutine serving requests over a channel, with
// single-flight coalescing so a burst of datagrams to a new peer costs
// one certificate fetch and one exponentiation — the behaviour the
// paper's caching design is built around.
type MKD struct {
	ks *KeyService

	mu       sync.Mutex
	inflight map[principal.Address][]chan mkdResult
	reqs     chan principal.Address
	done     chan struct{}
	once     sync.Once

	upcalls uint64
}

type mkdResult struct {
	key [16]byte
	err error
}

// ErrMKDStopped is returned by Upcall after Stop.
var ErrMKDStopped = errors.New("core: master key daemon stopped")

// NewMKD starts a master key daemon over the key service.
func NewMKD(ks *KeyService) *MKD {
	m := &MKD{
		ks:       ks,
		inflight: make(map[principal.Address][]chan mkdResult),
		reqs:     make(chan principal.Address, 64),
		done:     make(chan struct{}),
	}
	go m.serve()
	return m
}

func (m *MKD) serve() {
	for {
		select {
		case peer := <-m.reqs:
			key, err := m.ks.MasterKey(peer)
			m.mu.Lock()
			waiters := m.inflight[peer]
			delete(m.inflight, peer)
			m.mu.Unlock()
			for _, w := range waiters {
				w <- mkdResult{key: key, err: err}
			}
		case <-m.done:
			m.mu.Lock()
			for peer, waiters := range m.inflight {
				for _, w := range waiters {
					w <- mkdResult{err: ErrMKDStopped}
				}
				delete(m.inflight, peer)
			}
			m.mu.Unlock()
			return
		}
	}
}

// Upcall blocks until the daemon has the pair-based master key for peer.
// Concurrent upcalls for the same peer are coalesced into one
// computation.
func (m *MKD) Upcall(peer principal.Address) ([16]byte, error) {
	ch := make(chan mkdResult, 1)
	m.mu.Lock()
	select {
	case <-m.done:
		m.mu.Unlock()
		return [16]byte{}, ErrMKDStopped
	default:
	}
	m.upcalls++
	first := len(m.inflight[peer]) == 0
	m.inflight[peer] = append(m.inflight[peer], ch)
	m.mu.Unlock()
	if first {
		select {
		case m.reqs <- peer:
		case <-m.done:
			return [16]byte{}, ErrMKDStopped
		}
	}
	r := <-ch
	return r.key, r.err
}

// Upcalls returns how many upcalls were made.
func (m *MKD) Upcalls() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.upcalls
}

// Stop terminates the daemon; pending upcalls fail with ErrMKDStopped.
func (m *MKD) Stop() {
	m.once.Do(func() { close(m.done) })
}
