package core

import (
	"testing"
	"testing/quick"
	"time"

	"fbs/internal/cryptolib"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(flags uint8, mac uint8, cipher uint8, mode uint8, sfl uint64, conf uint32, ts uint32, macv [MACLen]byte) bool {
		h := Header{
			Version:    HeaderVersion,
			Flags:      flags,
			MAC:        cryptolib.MACID(mac % 3),
			Cipher:     CipherID(cipher % 3),
			Mode:       cryptolib.Mode(mode % 4),
			SFL:        SFL(sfl),
			Confounder: conf,
			Timestamp:  Timestamp(ts),
			MACValue:   macv,
		}
		wire := h.Encode(nil)
		if len(wire) != HeaderSize {
			return false
		}
		var back Header
		n, err := back.Decode(wire)
		return err == nil && n == HeaderSize && back == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderDecodeErrors(t *testing.T) {
	var h Header
	if _, err := h.Decode(make([]byte, HeaderSize-1)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := make([]byte, HeaderSize)
	bad[0] = 99 // unknown version
	if _, err := h.Decode(bad); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestHeaderSecretFlag(t *testing.T) {
	h := Header{}
	if h.Secret() {
		t.Error("zero header claims secret")
	}
	h.Flags |= FlagSecret
	if !h.Secret() {
		t.Error("FlagSecret not detected")
	}
}

func TestHeaderIVDuplicatesConfounder(t *testing.T) {
	h := Header{Confounder: 0xDEADBEEF}
	iv := h.iv()
	want := [8]byte{0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF}
	if iv != want {
		t.Fatalf("iv = %x, want %x", iv, want)
	}
}

func TestTimestampEncoding(t *testing.T) {
	// The paper encodes minutes since 1996-01-01 00:00 GMT.
	if TimestampOf(TimestampEpoch) != 0 {
		t.Error("epoch timestamp not zero")
	}
	later := TimestampEpoch.Add(90 * time.Minute)
	if TimestampOf(later) != 90 {
		t.Errorf("90 minutes = %d", TimestampOf(later))
	}
	if got := Timestamp(90).Time(); !got.Equal(later) {
		t.Errorf("Time() = %v, want %v", got, later)
	}
	// Pre-epoch times clamp to zero rather than wrapping.
	if TimestampOf(TimestampEpoch.Add(-time.Hour)) != 0 {
		t.Error("pre-epoch timestamp did not clamp")
	}
}

func TestTimestampFresh(t *testing.T) {
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	window := 10 * time.Minute
	cases := []struct {
		delta time.Duration
		want  bool
	}{
		{0, true},
		{-5 * time.Minute, true},
		{5 * time.Minute, true},
		{-11 * time.Minute, false},
		{11 * time.Minute, false},
		{-10 * time.Minute, true},
	}
	for _, c := range cases {
		ts := TimestampOf(now.Add(c.delta))
		if got := ts.Fresh(now, window); got != c.want {
			t.Errorf("delta %v: Fresh = %v, want %v", c.delta, got, c.want)
		}
	}
}

// TestTimestampFreshAtWrap is the regression for the uint32 wraparound
// bug: the 32-bit minute counter wraps after one era (2^32 minutes,
// ~8000 years), and freshness must compare counters modularly. Under
// the old linear comparison a sender minutes past the wrap looked an
// entire era stale to a receiver just before it — and the arithmetic
// itself overflowed, since 2^32 minutes exceeds time.Duration's
// ~292-year range.
func TestTimestampFreshAtWrap(t *testing.T) {
	window := 10 * time.Minute
	// The instant the counter wraps, built from Unix seconds: Add() with
	// a 2^32-minute Duration cannot express it.
	wrap := time.Unix(timestampEpochUnix+(int64(1)<<32)*60, 0).UTC()

	// A sender 5 minutes past the wrap carries counter 5; a receiver
	// still 3 minutes before it sits at counter 2^32-3. Modularly they
	// are 8 minutes apart, not ~8000 years.
	if !Timestamp(5).Fresh(wrap.Add(-3*time.Minute), window) {
		t.Error("sender past the wrap judged stale by a receiver just before it")
	}
	// The mirror image: sender still before the wrap, receiver past it.
	if !Timestamp(0xFFFFFFFD).Fresh(wrap.Add(3*time.Minute), window) {
		t.Error("sender before the wrap judged stale by a receiver just past it")
	}
	// Modular distance still enforces the window across the boundary: 15
	// minutes ahead is 15 minutes ahead.
	if Timestamp(12).Fresh(wrap.Add(-3*time.Minute), window) {
		t.Error("cross-wrap distance outside the window accepted as fresh")
	}
	// Counters half an era apart are maximally distant, never fresh.
	if Timestamp(1<<31).Fresh(wrap, window) {
		t.Error("half-era-distant counter accepted as fresh")
	}
	// TimestampOf itself reduces modularly past the wrap...
	if got := TimestampOf(wrap.Add(5 * time.Minute)); got != 5 {
		t.Errorf("TimestampOf past the wrap = %d, want 5", got)
	}
	// ...and the top of the era round-trips without overflowing.
	if got := Timestamp(0xFFFFFFFF); TimestampOf(got.Time()) != got {
		t.Errorf("max timestamp round-trip = %d", TimestampOf(got.Time()))
	}
}

func TestCipherIDStringsAndErrors(t *testing.T) {
	if CipherDES.String() != "DES" || Cipher3DES.String() != "3DES" || CipherNone.String() != "none" {
		t.Error("bad cipher names")
	}
	var key [16]byte
	if _, err := CipherNone.newCipher(key[:]); err == nil {
		t.Error("CipherNone produced a cipher")
	}
	if c, err := CipherDES.newCipher(key[:]); err != nil || c.BlockSize() != 8 {
		t.Error("DES cipher construction failed")
	}
	if c, err := Cipher3DES.newCipher(key[:]); err != nil || c.BlockSize() != 8 {
		t.Error("3DES cipher construction failed")
	}
}

func TestSimClock(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewSimClock(start)
	if !c.Now().Equal(start) {
		t.Error("SimClock initial time wrong")
	}
	c.Advance(time.Hour)
	if !c.Now().Equal(start.Add(time.Hour)) {
		t.Error("Advance failed")
	}
	c.Set(start)
	if !c.Now().Equal(start) {
		t.Error("Set failed")
	}
}
