package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"fbs/internal/principal"
	"fbs/internal/transport"
)

// batchPair builds a deterministic sender/receiver pair sharing a test
// world: fixed clock, fixed SFL seed, AEAD suite (whose confounder is
// the flow sequence counter, so wire bytes are reproducible across two
// identically configured endpoints).
func batchPair(t *testing.T, w *testWorld, cipher CipherID, replay bool) (*Endpoint, *Endpoint) {
	t.Helper()
	mk := func(name principal.Address) *Endpoint {
		ep, err := NewEndpoint(Config{
			Identity:          w.principal(t, name),
			Transport:         nullTransport{},
			Directory:         w.dir,
			Verifier:          w.ver,
			Clock:             w.clock,
			Cipher:            cipher,
			SFLSeed:           100,
			EnableReplayCache: replay,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	return mk("batch-a"), mk("batch-b")
}

type nullTransport struct{}

func (nullTransport) Send(transport.Datagram) error { return nil }
func (nullTransport) Receive() (transport.Datagram, error) {
	return transport.Datagram{}, transport.ErrClosed
}
func (nullTransport) Close() error { return nil }

// TestSealBatchMatchesSingleLoop pins the central batch invariant: a
// SealBatch over a mixed-flow sequence produces byte-for-byte the wire
// datagrams a loop of single SealFlowAppend calls produces on an
// identically configured endpoint, with identical counter movement.
func TestSealBatchMatchesSingleLoop(t *testing.T) {
	for _, cipher := range []CipherID{CipherAES128GCM, CipherChaCha20Poly1305} {
		t.Run(SuiteByID(cipher).Name(), func(t *testing.T) {
			w := newWorld(t)
			batchEP, _ := batchPair(t, w, cipher, false)
			w2 := &testWorld{ca: w.ca, dir: w.dir, ver: w.ver, clock: w.clock, ids: w.ids}
			loopEP, _ := batchPair(t, w2, cipher, false)

			// Three flows interleaved in runs of varying length,
			// including a run longer than one and singletons.
			var dgs []transport.Datagram
			dests := []principal.Address{"batch-b", "batch-b", "batch-b", "peer-c", "batch-b", "peer-c", "peer-c", "batch-b"}
			for i, d := range dests {
				w.principal(t, d)
				dgs = append(dgs, transport.Datagram{
					Source:      "batch-a",
					Destination: d,
					Payload:     []byte(fmt.Sprintf("payload-%02d", i)),
				})
			}

			res := make([]BatchResult, len(dgs))
			batched, n := batchEP.SealBatch(nil, append([]transport.Datagram(nil), dgs...), true, res)
			if n != len(dgs) {
				t.Fatalf("SealBatch sealed %d of %d", n, len(dgs))
			}

			var single []byte
			var offs []int
			for _, dg := range dgs {
				offs = append(offs, len(single))
				out, err := loopEP.SealAppend(single, dg, true)
				if err != nil {
					t.Fatal(err)
				}
				single = out
			}

			if !bytes.Equal(batched, single) {
				t.Fatalf("batched wire bytes differ from single-loop bytes\nbatch:  %x\nsingle: %x", batched, single)
			}
			for i, r := range res {
				if r.Err != nil {
					t.Fatalf("datagram %d: %v", i, r.Err)
				}
				if r.Off != offs[i] {
					t.Errorf("datagram %d: Off = %d, want %d", i, r.Off, offs[i])
				}
				want := len(single) - offs[i]
				if i+1 < len(offs) {
					want = offs[i+1] - offs[i]
				}
				if r.Len != want {
					t.Errorf("datagram %d: Len = %d, want %d", i, r.Len, want)
				}
			}

			bf, lf := batchEP.FAMStats(), loopEP.FAMStats()
			if bf.Lookups != lf.Lookups || bf.Hits != lf.Hits || bf.FlowsCreated != lf.FlowsCreated {
				t.Errorf("FAM accounting diverged: batch %+v vs loop %+v", bf, lf)
			}
			if bf.Lookups != bf.Hits+bf.FlowsCreated {
				t.Errorf("FAM invariant broken: Lookups=%d Hits=%d FlowsCreated=%d", bf.Lookups, bf.Hits, bf.FlowsCreated)
			}
			bs := batchEP.BatchStats()
			if bs.SealDatagrams != uint64(len(dgs)) {
				t.Errorf("SealDatagrams = %d, want %d", bs.SealDatagrams, len(dgs))
			}
			if bs.SealCalls[batchBucket(len(dgs))] != 1 {
				t.Errorf("SealCalls bucket %d = %d, want 1", batchBucket(len(dgs)), bs.SealCalls[batchBucket(len(dgs))])
			}
			if ls := loopEP.BatchStats(); ls.SealDatagrams != 0 {
				t.Errorf("single-datagram calls moved batch stats: %+v", ls)
			}
		})
	}
}

// TestOpenBatchMatchesSingleLoop seals a sequence, then opens it once
// via OpenBatch and once via a loop of OpenAppend on an identically
// configured receiver: recovered bytes, per-datagram outcomes and
// counters must match, including a mid-batch duplicate (DropReplay) and
// a corrupted datagram (DropBadMAC/DropDecrypt).
func TestOpenBatchMatchesSingleLoop(t *testing.T) {
	w := newWorld(t)
	sender, batchRecv := batchPair(t, w, CipherAES128GCM, true)
	w2 := &testWorld{ca: w.ca, dir: w.dir, ver: w.ver, clock: w.clock, ids: w.ids}
	_, loopRecv := batchPair(t, w2, CipherAES128GCM, true)

	var dgs []transport.Datagram
	seal := func(payload string) transport.Datagram {
		dg, err := sender.Seal(transport.Datagram{
			Source:      "batch-a",
			Destination: "batch-b",
			Payload:     []byte(payload),
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		return dg
	}
	for i := 0; i < 5; i++ {
		dgs = append(dgs, seal(fmt.Sprintf("msg-%d", i)))
	}
	// Exact duplicate of datagram 2: the replay window must reject the
	// second sighting inside the same batch.
	dup := dgs[2].Clone()
	dgs = append(dgs, dup)
	// Corrupted body: flip a ciphertext bit.
	bad := dgs[3].Clone()
	bad.Payload[len(bad.Payload)-1] ^= 0x40
	dgs = append(dgs, bad)
	dgs = append(dgs, seal("tail"))

	res := make([]BatchResult, len(dgs))
	opened, n := batchRecv.OpenBatch(nil, append([]transport.Datagram(nil), dgs...), res)

	var singleOuts [][]byte
	var singleErrs []error
	okCount := 0
	for _, dg := range dgs {
		out, err := loopRecv.OpenAppend(nil, dg)
		singleOuts = append(singleOuts, out)
		singleErrs = append(singleErrs, err)
		if err == nil {
			okCount++
		}
	}
	if n != okCount {
		t.Fatalf("OpenBatch accepted %d, single loop accepted %d", n, okCount)
	}
	for i := range dgs {
		if (res[i].Err == nil) != (singleErrs[i] == nil) {
			t.Fatalf("datagram %d: batch err %v vs single err %v", i, res[i].Err, singleErrs[i])
		}
		if res[i].Err != nil {
			if br, sr := DropReasonOf(res[i].Err), DropReasonOf(singleErrs[i]); br != sr {
				t.Errorf("datagram %d: batch drop %v vs single drop %v", i, br, sr)
			}
			continue
		}
		got := opened[res[i].Off : res[i].Off+res[i].Len]
		if !bytes.Equal(got, singleOuts[i]) {
			t.Errorf("datagram %d: batch plaintext %q vs single %q", i, got, singleOuts[i])
		}
	}
	bm, lm := batchRecv.Metrics(), loopRecv.Metrics()
	if bm.Received != lm.Received || bm.ReceivedBytes != lm.ReceivedBytes {
		t.Errorf("receive counters diverged: batch %d/%d vs loop %d/%d",
			bm.Received, bm.ReceivedBytes, lm.Received, lm.ReceivedBytes)
	}
	if bm.Drops != lm.Drops {
		t.Errorf("drop counters diverged:\nbatch %v\nloop  %v", bm.Drops, lm.Drops)
	}
	if bm.Drops[DropReplay] != 1 {
		t.Errorf("DropReplay = %d, want 1", bm.Drops[DropReplay])
	}
	bs := batchRecv.BatchStats()
	if bs.OpenDatagrams != uint64(len(dgs)) {
		t.Errorf("OpenDatagrams = %d, want %d", bs.OpenDatagrams, len(dgs))
	}
}

// TestBatchDropReasonsExact drives every refusal the batch receive path
// classifies and checks each datagram's sentinel maps to the exact
// DropReason the single path reports.
func TestBatchDropReasonsExact(t *testing.T) {
	w := newWorld(t)
	sender, recv := batchPair(t, w, CipherAES128GCM, true)

	good, err := sender.Seal(transport.Datagram{Source: "batch-a", Destination: "batch-b", Payload: []byte("ok")}, true)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := sender.Seal(transport.Datagram{Source: "batch-a", Destination: "batch-b", Payload: []byte("old")}, true)
	if err != nil {
		t.Fatal(err)
	}

	dgs := []transport.Datagram{
		{Source: "batch-a", Destination: "elsewhere", Payload: good.Payload}, // DropNotForUs
		{Source: "batch-a", Destination: "batch-b", Payload: []byte{0x01}},   // DropMalformed
		good.Clone(), // accepted
	}
	// Advance the clock past the freshness window so the stale datagram
	// is refused, then re-stamp the good one via a fresh seal.
	w.clock.Advance(21 * time.Minute)
	fresh, err := sender.Seal(transport.Datagram{Source: "batch-a", Destination: "batch-b", Payload: []byte("fresh")}, true)
	if err != nil {
		t.Fatal(err)
	}
	dgs[2] = fresh
	dgs = append(dgs, transport.Datagram{Source: "batch-a", Destination: "batch-b", Payload: stale.Payload}) // DropStale

	res := make([]BatchResult, len(dgs))
	_, n := recv.OpenBatch(nil, dgs, res)
	if n != 1 {
		t.Fatalf("accepted %d, want 1", n)
	}
	wantReasons := []DropReason{DropNotForUs, DropMalformed, DropNone, DropStale}
	for i, want := range wantReasons {
		got := DropNone
		if res[i].Err != nil {
			got = DropReasonOf(res[i].Err)
		}
		if got != want {
			t.Errorf("datagram %d: drop reason %v, want %v (err: %v)", i, got, want, res[i].Err)
		}
	}
	m := recv.Metrics()
	for _, want := range []DropReason{DropNotForUs, DropMalformed, DropStale} {
		if m.Drops[want] != 1 {
			t.Errorf("Drops[%v] = %d, want 1", want, m.Drops[want])
		}
	}
}

// TestBatchObservationGates runs SealBatch/OpenBatch under an
// always-sampling observer and always-tracing tracer: every datagram
// must produce its own sample and trace exactly as single calls would,
// and outcomes must be unchanged.
func TestBatchObservationGates(t *testing.T) {
	w := newWorld(t)
	obs := &countingObserver{}
	tr := &countingTracer{}
	sender, err := NewEndpoint(Config{
		Identity:  w.principal(t, "obs-a"),
		Transport: nullTransport{},
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
		Cipher:    CipherAES128GCM,
		Observer:  obs,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	recv, err := NewEndpoint(Config{
		Identity:  w.principal(t, "obs-b"),
		Transport: nullTransport{},
		Directory: w.dir,
		Verifier:  w.ver,
		Clock:     w.clock,
		Cipher:    CipherAES128GCM,
		Observer:  obs,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const N = 6
	dgs := make([]transport.Datagram, N)
	for i := range dgs {
		dgs[i] = transport.Datagram{Source: "obs-a", Destination: "obs-b", Payload: []byte{byte(i)}}
	}
	res := make([]BatchResult, N)
	sealed, n := sender.SealBatch(nil, dgs, true, res)
	if n != N {
		t.Fatalf("sealed %d of %d", n, N)
	}
	if got := obs.packets.Load(); got != N {
		t.Errorf("observer saw %d seal samples, want %d", got, N)
	}
	rdgs := make([]transport.Datagram, N)
	for i, r := range res {
		rdgs[i] = transport.Datagram{Source: "obs-a", Destination: "obs-b", Payload: sealed[r.Off : r.Off+r.Len]}
	}
	rres := make([]BatchResult, N)
	_, rn := recv.OpenBatch(nil, rdgs, rres)
	if rn != N {
		for i, r := range rres {
			if r.Err != nil {
				t.Logf("datagram %d: %v", i, r.Err)
			}
		}
		t.Fatalf("opened %d of %d", rn, N)
	}
	if got := obs.packets.Load(); got != 2*N {
		t.Errorf("observer saw %d total samples, want %d", got, 2*N)
	}
	if got := tr.started.Load(); got != 2*N {
		t.Errorf("tracer started %d traces, want %d", got, 2*N)
	}
}

type countingObserver struct {
	packets atomicCounter
}

func (o *countingObserver) Sample() bool        { return true }
func (o *countingObserver) Packet(PacketSample) { o.packets.Add(1) }

type countingTracer struct {
	started atomicCounter
	nextID  atomicCounter
}

func (tr *countingTracer) StartTrace() TraceID {
	tr.started.Add(1)
	return TraceID(tr.nextID.Add(1))
}
func (tr *countingTracer) Span(Span) {}

type atomicCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *atomicCounter) Add(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.n
}
func (c *atomicCounter) Load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
