// Package trace provides packet traces for the flow-characteristics
// experiments of Section 7.3 (Figures 9-14).
//
// The paper fed tcpdump captures of a Stanford workgroup LAN and of a
// lightly loaded WWW server (~10,000 hits/day) into "a number of flow
// simulation programs". Those captures are not available, so this
// package generates synthetic traces with the qualitative properties the
// paper reports and that the figures depend on:
//
//   - most flows are short, small and numerous (DNS lookups, HTTP hits,
//     short interactive exchanges);
//   - a few long-lived flows (NFS traffic to file servers) carry the bulk
//     of the bytes;
//   - packets within a conversation arrive in trains (bursts), giving
//     key caches their locality;
//   - conversations reuse ports over time, producing the repeated-flow
//     behaviour of Figure 14.
//
// Generation is fully deterministic for a given seed.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"fbs/internal/ip"
)

// Packet is one trace record: the fields a header-only tcpdump capture
// provides, which is all the flow experiments need.
type Packet struct {
	// Time is the offset from the start of the trace.
	Time     time.Duration
	Src, Dst ip.Addr
	Proto    uint8
	SrcPort  uint16
	DstPort  uint16
	// Size is the IP datagram size in bytes.
	Size int
}

// Trace is a time-ordered packet capture.
type Trace struct {
	Packets []Packet
}

// Duration returns the time of the last packet.
func (t *Trace) Duration() time.Duration {
	if len(t.Packets) == 0 {
		return 0
	}
	return t.Packets[len(t.Packets)-1].Time
}

// Bytes returns the total bytes in the trace.
func (t *Trace) Bytes() int64 {
	var n int64
	for _, p := range t.Packets {
		n += int64(p.Size)
	}
	return n
}

// sortByTime orders packets chronologically (stable, so simultaneous
// packets keep generation order).
func (t *Trace) sortByTime() {
	sort.SliceStable(t.Packets, func(i, j int) bool {
		return t.Packets[i].Time < t.Packets[j].Time
	})
}

// Write emits the trace in a tcpdump-like text format, one packet per
// line:
//
//	<seconds> <proto> <src>:<sport> > <dst>:<dport> <size>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range t.Packets {
		proto := "ip"
		switch p.Proto {
		case ip.ProtoTCP:
			proto = "tcp"
		case ip.ProtoUDP:
			proto = "udp"
		case ip.ProtoICMP:
			proto = "icmp"
		}
		_, err := fmt.Fprintf(bw, "%.6f %s %s:%d > %s:%d %d\n",
			p.Time.Seconds(), proto, p.Src, p.SrcPort, p.Dst, p.DstPort, p.Size)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || text[0] == '#' {
			continue
		}
		var secs float64
		var proto, src, dst string
		var sport, dport, size int
		var gt string
		n, err := fmt.Sscanf(text, "%f %s %s %s %s %d", &secs, &proto, &src, &gt, &dst, &size)
		if err != nil || n != 6 || gt != ">" {
			return nil, fmt.Errorf("trace: line %d: malformed record %q", line, text)
		}
		srcAddr, sp, err := splitHostPort(src)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		dstAddr, dp, err := splitHostPort(dst)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		sport, dport = sp, dp
		var pn uint8
		switch proto {
		case "tcp":
			pn = ip.ProtoTCP
		case "udp":
			pn = ip.ProtoUDP
		case "icmp":
			pn = ip.ProtoICMP
		case "ip":
			pn = 0
		default:
			return nil, fmt.Errorf("trace: line %d: unknown protocol %q", line, proto)
		}
		tr.Packets = append(tr.Packets, Packet{
			Time:    time.Duration(secs * float64(time.Second)),
			Src:     srcAddr,
			Dst:     dstAddr,
			Proto:   pn,
			SrcPort: uint16(sport),
			DstPort: uint16(dport),
			Size:    size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.sortByTime()
	return tr, nil
}

func splitHostPort(s string) (ip.Addr, int, error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			a, err := ip.ParseAddr(s[:i])
			if err != nil {
				return ip.Addr{}, 0, err
			}
			var port int
			if _, err := fmt.Sscanf(s[i+1:], "%d", &port); err != nil || port < 0 || port > 65535 {
				return ip.Addr{}, 0, fmt.Errorf("trace: bad port in %q", s)
			}
			return a, port, nil
		}
	}
	return ip.Addr{}, 0, fmt.Errorf("trace: missing port in %q", s)
}

// Merge combines traces into one time-ordered capture (e.g. the campus
// LAN and WWW server captures for a combined Figure 12 analysis).
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		out.Packets = append(out.Packets, t.Packets...)
	}
	out.sortByTime()
	return out
}
