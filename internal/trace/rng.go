package trace

import (
	"math"

	"fbs/internal/cryptolib"
)

// RNG supplies the distributions the trace generators draw from,
// deterministically from a seed. Inter-arrival processes are Poisson
// (exponential gaps); object and transfer sizes are heavy-tailed
// (Pareto), matching the classic traffic-characterisation literature of
// the period.
type RNG struct {
	lcg *cryptolib.LCG
}

// NewRNG creates a deterministic generator.
func NewRNG(seed uint64) *RNG {
	return &RNG{lcg: cryptolib.NewLCGSeeded(seed)}
}

// Float64 returns a uniform value in (0, 1).
func (r *RNG) Float64() float64 {
	for {
		v := float64(r.lcg.Uint64()>>11) / float64(1<<53)
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.lcg.Uint64() % uint64(n))
}

// Exp draws an exponential value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log(r.Float64())
}

// Pareto draws from a Pareto distribution with minimum xm and shape
// alpha. Small alpha (1-1.5) gives the heavy tails that make a few flows
// carry most bytes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(r.Float64(), 1/alpha)
}

// Geometric draws a geometric count with the given mean (>= 1).
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p && n < 1<<20 {
		n++
	}
	return n
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
