package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"fbs/internal/ip"
)

func TestCampusDeterministic(t *testing.T) {
	cfg := CampusConfig{Seed: 1, Duration: 5 * time.Minute, Desktops: 5}
	a := Campus(cfg)
	b := Campus(cfg)
	if len(a.Packets) == 0 {
		t.Fatal("empty trace")
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
	c := Campus(CampusConfig{Seed: 2, Duration: 5 * time.Minute, Desktops: 5})
	if len(c.Packets) == len(a.Packets) {
		same := true
		for i := range c.Packets {
			if c.Packets[i] != a.Packets[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestCampusSortedAndBounded(t *testing.T) {
	tr := Campus(CampusConfig{Seed: 3, Duration: 10 * time.Minute, Desktops: 8})
	var last time.Duration
	for i, p := range tr.Packets {
		if p.Time < last {
			t.Fatalf("packet %d out of order", i)
		}
		last = p.Time
		if p.Time > 10*time.Minute {
			t.Fatalf("packet %d beyond capture window: %v", i, p.Time)
		}
		if p.Size <= 0 || p.Size > 65535 {
			t.Fatalf("packet %d absurd size %d", i, p.Size)
		}
		if p.Proto != ip.ProtoTCP && p.Proto != ip.ProtoUDP {
			t.Fatalf("packet %d unexpected protocol %d", i, p.Proto)
		}
	}
	if tr.Duration() > 10*time.Minute {
		t.Fatal("Duration exceeds configured capture window")
	}
}

func TestCampusTrafficMix(t *testing.T) {
	tr := Campus(CampusConfig{Seed: 4, Duration: 30 * time.Minute, Desktops: 15})
	byDstPort := make(map[uint16]int)
	for _, p := range tr.Packets {
		byDstPort[p.DstPort]++
	}
	for _, port := range []uint16{2049, 53, 23, 80, 25} {
		if byDstPort[port] == 0 {
			t.Errorf("no traffic to well-known port %d", port)
		}
	}
	// NFS (long-lived, bulky) should dominate bytes.
	var nfsBytes, total int64
	for _, p := range tr.Packets {
		total += int64(p.Size)
		if p.SrcPort == 2049 || p.DstPort == 2049 {
			nfsBytes += int64(p.Size)
		}
	}
	if frac := float64(nfsBytes) / float64(total); frac < 0.3 {
		t.Errorf("NFS carries only %.0f%% of bytes; want the bulk", frac*100)
	}
}

func TestWWWTrace(t *testing.T) {
	tr := WWW(WWWConfig{Seed: 5, Duration: 30 * time.Minute})
	if len(tr.Packets) == 0 {
		t.Fatal("empty trace")
	}
	// Arrival rate sanity: ~10k/day = ~208 hits in 30 min; each hit is
	// at least ~8 packets.
	syns := 0
	for _, p := range tr.Packets {
		if p.Dst == wwwServerAddr && p.Size == 44 && p.DstPort == 80 {
			syns++
		}
	}
	if syns < 100 || syns > 400 {
		t.Fatalf("hit count %d outside plausible range for 10k/day over 30min", syns)
	}
	// Everything touches the server.
	for i, p := range tr.Packets {
		if p.Src != wwwServerAddr && p.Dst != wwwServerAddr {
			t.Fatalf("packet %d does not involve the server", i)
		}
	}
}

func TestTraceWriteRead(t *testing.T) {
	tr := Campus(CampusConfig{Seed: 6, Duration: time.Minute, Desktops: 3})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Packets) != len(tr.Packets) {
		t.Fatalf("%d packets in, %d out", len(tr.Packets), len(back.Packets))
	}
	for i := range tr.Packets {
		a, b := tr.Packets[i], back.Packets[i]
		// Time is serialised at microsecond resolution.
		if d := a.Time - b.Time; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("packet %d time drift %v", i, d)
		}
		a.Time, b.Time = 0, 0
		if a != b {
			t.Fatalf("packet %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceReadRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a trace",
		"1.0 tcp 10.0.0.1:80 < 10.0.0.2:90 100",
		"1.0 quic 10.0.0.1:80 > 10.0.0.2:90 100",
		"1.0 tcp 10.0.0.1 > 10.0.0.2:90 100",
	} {
		if _, err := Read(bytes.NewBufferString(bad + "\n")); err == nil {
			t.Errorf("Read(%q) succeeded", bad)
		}
	}
	// Comments and blank lines are fine.
	tr, err := Read(bytes.NewBufferString("# comment\n\n1.5 udp 10.0.0.1:53 > 10.0.0.2:1024 60\n"))
	if err != nil || len(tr.Packets) != 1 {
		t.Fatalf("comment handling broken: %v", err)
	}
}

func TestRNGDistributions(t *testing.T) {
	r := NewRNG(42)
	// Exponential mean.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	if mean := sum / n; mean < 9 || mean > 11 {
		t.Errorf("Exp mean = %.2f, want ~10", mean)
	}
	// Pareto minimum and heavy tail.
	minSeen, maxSeen := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		v := r.Pareto(5, 1.2)
		if v < minSeen {
			minSeen = v
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if minSeen < 5 {
		t.Errorf("Pareto produced %v below xm", minSeen)
	}
	if maxSeen < 100 {
		t.Errorf("Pareto tail too light: max %v", maxSeen)
	}
	// Geometric mean.
	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(8))
	}
	if mean := sum / n; mean < 7 || mean > 9 {
		t.Errorf("Geometric mean = %.2f, want ~8", mean)
	}
	if r.Geometric(0.5) != 1 {
		t.Error("Geometric(<1) should be 1")
	}
	if r.Intn(0) != 0 {
		t.Error("Intn(0) should be 0")
	}
}

func TestMerge(t *testing.T) {
	a := Campus(CampusConfig{Seed: 1, Duration: time.Minute, Desktops: 2})
	b := WWW(WWWConfig{Seed: 2, Duration: time.Minute})
	m := Merge(a, b)
	if len(m.Packets) != len(a.Packets)+len(b.Packets) {
		t.Fatalf("merge lost packets: %d != %d+%d", len(m.Packets), len(a.Packets), len(b.Packets))
	}
	var last time.Duration
	for i, p := range m.Packets {
		if p.Time < last {
			t.Fatalf("merged trace out of order at %d", i)
		}
		last = p.Time
	}
	if Merge().Packets != nil {
		t.Fatal("empty merge not empty")
	}
}
