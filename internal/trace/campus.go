package trace

import (
	"time"

	"fbs/internal/ip"
)

// CampusConfig parameterises the campus workgroup LAN generator. The
// defaults approximate the paper's environment: "a number of file and
// compute servers in addition to individual users' desktops".
type CampusConfig struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed uint64
	// Duration of the capture; default one hour.
	Duration time.Duration
	// Desktops is the number of user machines; default 25.
	Desktops int
	// EphemeralPorts is the width of each desktop's ephemeral port
	// range. Small ranges force port reuse across conversations, the
	// raw material of the repeated-flow experiment (Figure 14).
	// Default 48.
	EphemeralPorts int
}

func (c *CampusConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = time.Hour
	}
	if c.Desktops <= 0 {
		c.Desktops = 25
	}
	if c.EphemeralPorts <= 0 {
		c.EphemeralPorts = 48
	}
}

// Well-known server addresses in the generated LAN.
var (
	campusFileServer    = ip.Addr{10, 1, 0, 1}
	campusFileServer2   = ip.Addr{10, 1, 0, 2}
	campusComputeServer = ip.Addr{10, 1, 0, 3}
	campusWWWServer     = ip.Addr{10, 1, 0, 5}
	campusMailServer    = ip.Addr{10, 1, 0, 6}
	campusDNSServer     = ip.Addr{10, 1, 0, 7}
)

func desktopAddr(i int) ip.Addr {
	return ip.Addr{10, 1, 1, byte(1 + i)}
}

// campusGen carries generator state.
type campusGen struct {
	cfg  CampusConfig
	rng  *RNG
	tr   *Trace
	port []int // next ephemeral port offset per desktop
}

// ephemeral allocates the next ephemeral port for desktop d, cycling
// within the configured range as 4.4BSD's in_pcballoc does.
func (g *campusGen) ephemeral(d int) uint16 {
	p := 1024 + g.port[d]%g.cfg.EphemeralPorts
	g.port[d]++
	return uint16(p)
}

// emit records a packet in each direction helper.
func (g *campusGen) emit(at time.Duration, src, dst ip.Addr, proto uint8, sp, dp uint16, size int) {
	if at < 0 || at > g.cfg.Duration {
		return
	}
	g.tr.Packets = append(g.tr.Packets, Packet{
		Time: at, Src: src, Dst: dst, Proto: proto,
		SrcPort: sp, DstPort: dp, Size: size,
	})
}

// Campus generates a campus-LAN trace. The conversation mix:
//
//   - NFS (UDP/2049): every desktop works against a file server in
//     periodic request bursts for the whole capture — the few long-lived,
//     high-volume flows that carry the bulk of the bytes.
//   - TELNET (TCP/23): long interactive sessions with small packets and
//     occasional quiet periods longer than any reasonable THRESHOLD,
//     which is what splits one connection into several flows.
//   - FTP data (TCP/20): occasional bulk transfers with heavy-tailed
//     sizes.
//   - X11 (TCP/6000): bursty interactive event streams to the compute
//     server.
//   - DNS (UDP/53): very numerous two-packet conversations — the short,
//     small flows that dominate the flow count.
//   - HTTP (TCP/80) and SMTP (TCP/25): short request/response
//     conversations.
func Campus(cfg CampusConfig) *Trace {
	cfg.fill()
	g := &campusGen{
		cfg:  cfg,
		rng:  NewRNG(cfg.Seed ^ 0xCA3905),
		tr:   &Trace{},
		port: make([]int, cfg.Desktops),
	}
	for d := 0; d < cfg.Desktops; d++ {
		g.nfs(d)
		g.dns(d)
		g.telnet(d)
		g.ftp(d)
		g.x11(d)
		g.http(d)
		g.smtp(d)
	}
	g.tr.sortByTime()
	return g.tr
}

// nfs generates the long-lived file-service flow for desktop d.
func (g *campusGen) nfs(d int) {
	src := desktopAddr(d)
	server := campusFileServer
	if d%2 == 1 {
		server = campusFileServer2
	}
	sport := uint16(800 + d) // NFS clients use reserved ports
	t := time.Duration(g.rng.Exp(20) * float64(time.Second))
	for t < g.cfg.Duration {
		// A burst: a train of request/response pairs (read-ahead).
		n := g.rng.Geometric(12)
		for i := 0; i < n && t < g.cfg.Duration; i++ {
			g.emit(t, src, server, ip.ProtoUDP, sport, 2049, 120+g.rng.Intn(40))
			rt := t + time.Duration(2+g.rng.Intn(4))*time.Millisecond
			// Responses to reads are large (8 KB NFS reads arrive as
			// MTU-sized IP packets).
			respPackets := 1 + g.rng.Intn(6)
			for j := 0; j < respPackets; j++ {
				g.emit(rt+time.Duration(j)*1200*time.Microsecond,
					server, src, ip.ProtoUDP, 2049, sport, 1500)
			}
			t += time.Duration(10+g.rng.Intn(30)) * time.Millisecond
		}
		// Gap to the next burst; usually well inside THRESHOLD so the
		// flow stays alive.
		t += time.Duration(g.rng.Exp(25) * float64(time.Second))
	}
}

// dns generates frequent two-packet lookups.
func (g *campusGen) dns(d int) {
	src := desktopAddr(d)
	t := time.Duration(g.rng.Exp(15) * float64(time.Second))
	for t < g.cfg.Duration {
		sport := g.ephemeral(d)
		g.emit(t, src, campusDNSServer, ip.ProtoUDP, sport, 53, 60+g.rng.Intn(30))
		g.emit(t+20*time.Millisecond, campusDNSServer, src, ip.ProtoUDP, 53, sport, 120+g.rng.Intn(200))
		t += time.Duration(g.rng.Exp(45) * float64(time.Second))
	}
}

// telnet generates one or two long interactive sessions per desktop.
func (g *campusGen) telnet(d int) {
	if !g.rng.Bool(0.7) {
		return
	}
	src := desktopAddr(d)
	sessions := 1 + g.rng.Intn(2)
	for s := 0; s < sessions; s++ {
		sport := g.ephemeral(d)
		start := time.Duration(g.rng.Float64() * float64(g.cfg.Duration) * 0.5)
		length := time.Duration(g.rng.Pareto(600, 1.3) * float64(time.Second))
		end := start + length
		t := start
		for t < end && t < g.cfg.Duration {
			// Keystroke and echo.
			g.emit(t, src, campusComputeServer, ip.ProtoTCP, sport, 23, 41+g.rng.Intn(20))
			g.emit(t+15*time.Millisecond, campusComputeServer, src, ip.ProtoTCP, 23, sport, 41+g.rng.Intn(60))
			if g.rng.Bool(0.02) {
				// A long think/coffee pause: often exceeds THRESHOLD,
				// splitting the connection into multiple flows.
				t += time.Duration(g.rng.Exp(900) * float64(time.Second))
			} else {
				t += time.Duration(g.rng.Exp(1.5) * float64(time.Second))
			}
		}
	}
}

// ftp generates occasional heavy-tailed bulk transfers.
func (g *campusGen) ftp(d int) {
	src := desktopAddr(d)
	transfers := g.rng.Intn(3)
	for s := 0; s < transfers; s++ {
		start := time.Duration(g.rng.Float64() * float64(g.cfg.Duration) * 0.9)
		// Control conversation.
		cport := g.ephemeral(d)
		t := start
		for i := 0; i < 6; i++ {
			g.emit(t, src, campusFileServer, ip.ProtoTCP, cport, 21, 60+g.rng.Intn(40))
			g.emit(t+10*time.Millisecond, campusFileServer, src, ip.ProtoTCP, 21, cport, 60+g.rng.Intn(80))
			t += 300 * time.Millisecond
		}
		// Data transfer: heavy-tailed size in MTU packets.
		bytes := g.rng.Pareto(50_000, 1.15)
		if bytes > 50e6 {
			bytes = 50e6
		}
		dport := g.ephemeral(d)
		packets := int(bytes / 1460)
		for i := 0; i < packets && t < g.cfg.Duration; i++ {
			g.emit(t, campusFileServer, src, ip.ProtoTCP, 20, dport, 1500)
			if i%2 == 1 {
				g.emit(t+time.Millisecond, src, campusFileServer, ip.ProtoTCP, dport, 20, 40)
			}
			t += 1300 * time.Microsecond
		}
	}
}

// x11 generates bursty interactive event traffic.
func (g *campusGen) x11(d int) {
	if !g.rng.Bool(0.4) {
		return
	}
	src := desktopAddr(d)
	sport := g.ephemeral(d)
	start := time.Duration(g.rng.Float64() * float64(g.cfg.Duration) * 0.3)
	end := start + time.Duration(g.rng.Pareto(900, 1.4)*float64(time.Second))
	t := start
	for t < end && t < g.cfg.Duration {
		burst := g.rng.Geometric(8)
		for i := 0; i < burst; i++ {
			g.emit(t, campusComputeServer, src, ip.ProtoTCP, 6000, sport, 100+g.rng.Intn(900))
			g.emit(t+5*time.Millisecond, src, campusComputeServer, ip.ProtoTCP, sport, 6000, 40+g.rng.Intn(60))
			t += time.Duration(20+g.rng.Intn(100)) * time.Millisecond
		}
		t += time.Duration(g.rng.Exp(20) * float64(time.Second))
	}
}

// http generates short web conversations against the LAN server.
func (g *campusGen) http(d int) {
	src := desktopAddr(d)
	t := time.Duration(g.rng.Exp(120) * float64(time.Second))
	for t < g.cfg.Duration {
		sport := g.ephemeral(d)
		g.emit(t, src, campusWWWServer, ip.ProtoTCP, sport, 80, 44)
		g.emit(t+5*time.Millisecond, campusWWWServer, src, ip.ProtoTCP, 80, sport, 44)
		g.emit(t+10*time.Millisecond, src, campusWWWServer, ip.ProtoTCP, sport, 80, 250+g.rng.Intn(200))
		pkts := 1 + int(g.rng.Pareto(2, 1.3))
		if pkts > 200 {
			pkts = 200
		}
		rt := t + 30*time.Millisecond
		for i := 0; i < pkts; i++ {
			g.emit(rt, campusWWWServer, src, ip.ProtoTCP, 80, sport, 576)
			rt += 8 * time.Millisecond
		}
		g.emit(rt, src, campusWWWServer, ip.ProtoTCP, sport, 80, 40)
		t += time.Duration(g.rng.Exp(180) * float64(time.Second))
	}
}

// smtp generates the odd mail delivery.
func (g *campusGen) smtp(d int) {
	src := desktopAddr(d)
	t := time.Duration(g.rng.Exp(400) * float64(time.Second))
	for t < g.cfg.Duration {
		sport := g.ephemeral(d)
		for i := 0; i < 4; i++ {
			g.emit(t, src, campusMailServer, ip.ProtoTCP, sport, 25, 80+g.rng.Intn(400))
			g.emit(t+8*time.Millisecond, campusMailServer, src, ip.ProtoTCP, 25, sport, 60)
			t += 100 * time.Millisecond
		}
		t += time.Duration(g.rng.Exp(900) * float64(time.Second))
	}
}
