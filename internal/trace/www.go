package trace

import (
	"time"

	"fbs/internal/ip"
)

// WWWConfig parameterises the web-server trace generator, modelled on
// the paper's "lightly hit (about 10,000 hits per day) WWW server".
type WWWConfig struct {
	Seed uint64
	// Duration of the capture; default one hour.
	Duration time.Duration
	// HitsPerDay sets the mean request arrival rate; default 10,000.
	HitsPerDay float64
	// ClientPool is the number of distinct client addresses; default
	// 600. Clients revisit with some locality.
	ClientPool int
}

func (c *WWWConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = time.Hour
	}
	if c.HitsPerDay <= 0 {
		c.HitsPerDay = 10_000
	}
	if c.ClientPool <= 0 {
		c.ClientPool = 600
	}
}

// wwwServerAddr is the traced server.
var wwwServerAddr = ip.Addr{171, 64, 8, 10}

func wwwClientAddr(i int) ip.Addr {
	return ip.Addr{36, byte(10 + i/250), byte(1 + (i/50)%200), byte(1 + i%250)}
}

// WWW generates the web server trace: Poisson request arrivals, each hit
// a short TCP conversation (handshake, request, heavy-tailed response,
// teardown) from a client pool with revisit locality.
func WWW(cfg WWWConfig) *Trace {
	cfg.fill()
	rng := NewRNG(cfg.Seed ^ 0x3b3b3b)
	tr := &Trace{}
	gap := 86400.0 / cfg.HitsPerDay // mean seconds between hits
	ports := make([]int, cfg.ClientPool)
	var recent []int
	t := time.Duration(rng.Exp(gap) * float64(time.Second))
	for t < cfg.Duration {
		// Pick a client: 35% a recent one (locality), else uniform.
		var ci int
		if len(recent) > 0 && rng.Bool(0.35) {
			ci = recent[rng.Intn(len(recent))]
		} else {
			ci = rng.Intn(cfg.ClientPool)
		}
		recent = append(recent, ci)
		if len(recent) > 32 {
			recent = recent[1:]
		}
		client := wwwClientAddr(ci)
		// Browsers of the era cycled through a modest ephemeral range.
		sport := uint16(1024 + ports[ci]%64)
		ports[ci]++
		emit := func(at time.Duration, c2s bool, size int) {
			if at > cfg.Duration {
				return
			}
			p := Packet{Time: at, Proto: ip.ProtoTCP, Size: size}
			if c2s {
				p.Src, p.SrcPort, p.Dst, p.DstPort = client, sport, wwwServerAddr, 80
			} else {
				p.Src, p.SrcPort, p.Dst, p.DstPort = wwwServerAddr, 80, client, sport
			}
			tr.Packets = append(tr.Packets, p)
		}
		// Handshake.
		rtt := time.Duration(20+rng.Intn(180)) * time.Millisecond
		emit(t, true, 44)
		emit(t+rtt/2, false, 44)
		emit(t+rtt, true, 40)
		// Request.
		emit(t+rtt+5*time.Millisecond, true, 200+rng.Intn(300))
		// Response: heavy-tailed object size in 536-byte segments
		// (1996-era default MSS), ack every other segment.
		object := rng.Pareto(2000, 1.2)
		if object > 5e6 {
			object = 5e6
		}
		segs := 1 + int(object/536)
		st := t + rtt + 15*time.Millisecond
		for i := 0; i < segs; i++ {
			emit(st, false, 576)
			if i%2 == 1 {
				emit(st+rtt/2, true, 40)
			}
			st += time.Duration(5+rng.Intn(20)) * time.Millisecond
		}
		// Teardown.
		emit(st, false, 40)
		emit(st+rtt/2, true, 40)
		t += time.Duration(rng.Exp(gap) * float64(time.Second))
	}
	tr.sortByTime()
	return tr
}
