// Package l4 provides the transport-layer substrate for the IP mapping:
// UDP and (simplified) TCP header codecs, the tcp_output maximum-segment
// calculation whose interaction with the FBS header required the paper's
// one BSD-specific fix (Section 7.2), and a port allocator implementing
// the optional THRESHOLD reallocation wait that closes the port-reuse
// replay hole of Section 7.1.
package l4

import (
	"encoding/binary"
	"fmt"
	"slices"

	"fbs/internal/ip"
)

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// UDPHeader is an RFC 768 header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload; set by Marshal
	Checksum         uint16 // optional in IPv4; 0 means unused
}

// Marshal encodes the header followed by payload. The checksum is
// computed over the IPv4 pseudo-header when src and dst are supplied;
// pass zero Addrs to send without a checksum (legal in IPv4).
func (h *UDPHeader) Marshal(payload []byte, src, dst ip.Addr) ([]byte, error) {
	total := UDPHeaderLen + len(payload)
	if total > 65535 {
		return nil, fmt.Errorf("l4: UDP datagram too large: %d", total)
	}
	b := make([]byte, total)
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(total))
	copy(b[8:], payload)
	if src != (ip.Addr{}) || dst != (ip.Addr{}) {
		cs := transportChecksum(ip.ProtoUDP, src, dst, b)
		if cs == 0 {
			cs = 0xFFFF // RFC 768: transmitted as all ones
		}
		binary.BigEndian.PutUint16(b[6:], cs)
	}
	return b, nil
}

// UnmarshalUDP parses a UDP datagram, verifying length and (when present)
// checksum.
func UnmarshalUDP(b []byte, src, dst ip.Addr) (*UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, nil, fmt.Errorf("l4: UDP datagram shorter than header: %d", len(b))
	}
	h := &UDPHeader{
		SrcPort:  binary.BigEndian.Uint16(b[0:]),
		DstPort:  binary.BigEndian.Uint16(b[2:]),
		Length:   binary.BigEndian.Uint16(b[4:]),
		Checksum: binary.BigEndian.Uint16(b[6:]),
	}
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return nil, nil, fmt.Errorf("l4: bad UDP length %d", h.Length)
	}
	if h.Checksum != 0 {
		if transportChecksum(ip.ProtoUDP, src, dst, b[:h.Length]) != 0 {
			return nil, nil, fmt.Errorf("l4: UDP checksum mismatch")
		}
	}
	return h, b[UDPHeaderLen:h.Length], nil
}

// TCP header flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeaderLen is the option-less TCP header size.
const TCPHeaderLen = 20

// TCPHeader is a (simplified, option-less) TCP segment header. The
// reproduction's reliable byte stream (netsim) uses it for framing; it is
// not a full TCP implementation.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

// Marshal encodes the header followed by payload, computing the checksum
// over the pseudo-header.
func (h *TCPHeader) Marshal(payload []byte, src, dst ip.Addr) ([]byte, error) {
	return h.MarshalAppend(nil, payload, src, dst)
}

// MarshalAppend encodes the header followed by payload, appending the
// segment to dst and returning the extended slice. With sufficient
// capacity in dst it performs no allocation; the stream sender recycles
// one buffer per in-flight segment this way.
func (h *TCPHeader) MarshalAppend(dst, payload []byte, src, dst4 ip.Addr) ([]byte, error) {
	total := TCPHeaderLen + len(payload)
	if total > 65535 {
		return nil, fmt.Errorf("l4: TCP segment too large: %d", total)
	}
	off := len(dst)
	dst = slices.Grow(dst, total)[:off+total]
	b := dst[off:]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = (TCPHeaderLen / 4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	b[16], b[17] = 0, 0 // checksum field is zero while summing
	b[18], b[19] = 0, 0 // urgent pointer, unused
	copy(b[20:], payload)
	binary.BigEndian.PutUint16(b[16:], transportChecksum(ip.ProtoTCP, src, dst4, b))
	return dst, nil
}

// UnmarshalTCP parses a TCP segment, verifying the checksum.
func UnmarshalTCP(b []byte, src, dst ip.Addr) (*TCPHeader, []byte, error) {
	if len(b) < TCPHeaderLen {
		return nil, nil, fmt.Errorf("l4: TCP segment shorter than header: %d", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return nil, nil, fmt.Errorf("l4: bad TCP data offset %d", off)
	}
	if transportChecksum(ip.ProtoTCP, src, dst, b) != 0 {
		return nil, nil, fmt.Errorf("l4: TCP checksum mismatch")
	}
	h := &TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(b[0:]),
		DstPort:  binary.BigEndian.Uint16(b[2:]),
		Seq:      binary.BigEndian.Uint32(b[4:]),
		Ack:      binary.BigEndian.Uint32(b[8:]),
		Flags:    b[13],
		Window:   binary.BigEndian.Uint16(b[14:]),
		Checksum: binary.BigEndian.Uint16(b[16:]),
	}
	return h, b[off:], nil
}

// transportChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header. A buffer with a correct checksum field sums to zero.
func transportChecksum(proto uint8, src, dst ip.Addr, seg []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(seg)))
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
		if len(b) == 1 {
			sum += uint32(b[0]) << 8
		}
	}
	add(pseudo[:])
	add(seg)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// MaxSegmentData reproduces tcp_output's exact-fit calculation: the
// largest payload that fits one unfragmented IP packet on a link with the
// given MTU, accounting for IP options and — the paper's fix — the
// inserted FBS header. Before the fix (fbsHeaderLen = 0 while FBS is
// active), tcp_output fills the packet exactly, sets DF, and the FBS
// header pushes it over the MTU (Section 7.2).
func MaxSegmentData(mtu, ipOptionsLen, fbsHeaderLen int) int {
	opt := (ipOptionsLen + 3) &^ 3
	n := mtu - ip.HeaderMinLen - opt - TCPHeaderLen - fbsHeaderLen
	if n < 0 {
		return 0
	}
	return n
}
