package l4

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"fbs/internal/ip"
)

var (
	srcA = ip.Addr{10, 0, 0, 1}
	dstA = ip.Addr{10, 0, 0, 2}
)

func TestUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := UDPHeader{SrcPort: sp, DstPort: dp}
		b, err := h.Marshal(payload, srcA, dstA)
		if err != nil {
			return false
		}
		back, body, err := UnmarshalUDP(b, srcA, dstA)
		if err != nil {
			return false
		}
		return back.SrcPort == sp && back.DstPort == dp && bytes.Equal(body, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	h := UDPHeader{SrcPort: 1000, DstPort: 53}
	b, _ := h.Marshal([]byte("query"), srcA, dstA)
	for i := range b {
		c := append([]byte(nil), b...)
		c[i] ^= 0x01
		if _, _, err := UnmarshalUDP(c, srcA, dstA); err == nil {
			// A flip in the length field could still parse if it
			// shortens consistently — but the checksum covers length
			// via the pseudo-header, so nothing should pass.
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
	// Wrong pseudo-header (different host) must fail too.
	if _, _, err := UnmarshalUDP(b, srcA, ip.Addr{9, 9, 9, 9}); err == nil {
		t.Fatal("wrong destination address accepted")
	}
}

func TestUDPNoChecksum(t *testing.T) {
	h := UDPHeader{SrcPort: 1, DstPort: 2}
	b, _ := h.Marshal([]byte("x"), ip.Addr{}, ip.Addr{})
	back, body, err := UnmarshalUDP(b, srcA, dstA) // addrs irrelevant without checksum
	if err != nil || back.Checksum != 0 || !bytes.Equal(body, []byte("x")) {
		t.Fatalf("checksumless UDP failed: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags & 0x1f, Window: win}
		b, err := h.Marshal(payload, srcA, dstA)
		if err != nil {
			return false
		}
		back, body, err := UnmarshalTCP(b, srcA, dstA)
		if err != nil {
			return false
		}
		return back.SrcPort == sp && back.DstPort == dp && back.Seq == seq &&
			back.Ack == ack && back.Flags == flags&0x1f && back.Window == win &&
			bytes.Equal(body, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	h := TCPHeader{SrcPort: 80, DstPort: 4242, Seq: 1, Ack: 2, Flags: TCPAck | TCPPsh, Window: 8192}
	b, _ := h.Marshal([]byte("segment data"), srcA, dstA)
	for i := 0; i < len(b); i++ {
		c := append([]byte(nil), b...)
		c[i] ^= 0x80
		if _, _, err := UnmarshalTCP(c, srcA, dstA); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
}

func TestTCPTruncated(t *testing.T) {
	if _, _, err := UnmarshalTCP(make([]byte, 10), srcA, dstA); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

// TestMaxSegmentData reproduces the tcp_output bug and its fix (Section
// 7.2): with the FBS header unaccounted for, a maximal segment plus FBS
// header exceeds the MTU and, with DF set, is unsendable.
func TestMaxSegmentData(t *testing.T) {
	const mtu = 1500
	const fbsHeaderLen = 36
	// Stock calculation (no FBS): exactly fills the MTU.
	stock := MaxSegmentData(mtu, 0, 0)
	if got := ip.HeaderMinLen + TCPHeaderLen + stock; got != mtu {
		t.Fatalf("stock exact-fit = %d, want %d", got, mtu)
	}
	// The bug: inserting the FBS header overflows the MTU → DF packet
	// needs fragmentation.
	over := ip.HeaderMinLen + TCPHeaderLen + fbsHeaderLen + stock
	if over <= mtu {
		t.Fatal("test premise broken")
	}
	p := ip.Packet{
		Header:  ip.Header{Flags: ip.FlagDF, TTL: 64, Protocol: ip.ProtoTCP},
		Payload: make([]byte, TCPHeaderLen+fbsHeaderLen+stock),
	}
	if _, err := ip.Fragment(p, mtu); err != ip.ErrNeedsFragmentation {
		t.Fatalf("unfixed sizing did not trip DF: %v", err)
	}
	// The fix: include the FBS header size in the calculation.
	fixed := MaxSegmentData(mtu, 0, fbsHeaderLen)
	if got := ip.HeaderMinLen + TCPHeaderLen + fbsHeaderLen + fixed; got != mtu {
		t.Fatalf("fixed exact-fit = %d, want %d", got, mtu)
	}
	// With options the option padding is accounted too.
	withOpt := MaxSegmentData(mtu, 3, fbsHeaderLen) // pads to 4
	if got := ip.HeaderMinLen + 4 + TCPHeaderLen + fbsHeaderLen + withOpt; got != mtu {
		t.Fatalf("optioned exact-fit = %d, want %d", got, mtu)
	}
	if MaxSegmentData(50, 40, 36) != 0 {
		t.Fatal("negative segment size not clamped")
	}
}

func TestPortAllocatorBasic(t *testing.T) {
	now := time.Now()
	p, err := NewPortAllocator(5000, 5003, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint16]bool)
	for i := 0; i < 4; i++ {
		port, err := p.Alloc(now)
		if err != nil {
			t.Fatal(err)
		}
		if port < 5000 || port > 5003 || seen[port] {
			t.Fatalf("bad port %d", port)
		}
		seen[port] = true
	}
	if _, err := p.Alloc(now); err == nil {
		t.Fatal("exhausted allocator handed out a port")
	}
	p.Release(5001, now)
	if got, err := p.Alloc(now); err != nil || got != 5001 {
		t.Fatalf("Alloc after release = %d, %v", got, err)
	}
	if p.InUse() != 4 {
		t.Fatalf("InUse = %d", p.InUse())
	}
}

// TestPortAllocatorReuseWait checks the Section 7.1 countermeasure: a
// released port stays quarantined for THRESHOLD so that the flow keyed to
// it dies before the port can change hands.
func TestPortAllocatorReuseWait(t *testing.T) {
	const threshold = 10 * time.Minute
	now := time.Now()
	p, err := NewPortAllocator(6000, 6001, threshold)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Alloc(now)
	b, _ := p.Alloc(now)
	p.Release(a, now)
	p.Release(b, now)
	// Inside the quarantine: no ports available at all.
	if _, err := p.Alloc(now.Add(threshold - time.Second)); err == nil {
		t.Fatal("port reallocated inside THRESHOLD")
	}
	// After the quarantine they flow again.
	if _, err := p.Alloc(now.Add(threshold + time.Second)); err != nil {
		t.Fatalf("port not released after THRESHOLD: %v", err)
	}
}

func TestPortAllocatorValidation(t *testing.T) {
	if _, err := NewPortAllocator(0, 10, 0); err == nil {
		t.Fatal("zero first port accepted")
	}
	if _, err := NewPortAllocator(10, 5, 0); err == nil {
		t.Fatal("inverted range accepted")
	}
	p, _ := NewPortAllocator(7000, 7001, 0)
	p.Release(7000, time.Now()) // releasing an unallocated port is a no-op
	if p.InUse() != 0 {
		t.Fatal("phantom allocation")
	}
}

// Decoder fuzz: arbitrary bytes must never panic the UDP/TCP parsers.
func TestL4DecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		UnmarshalUDP(b, srcA, dstA)
		UnmarshalTCP(b, srcA, dstA)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
