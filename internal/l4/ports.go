package l4

import (
	"fmt"
	"sync"
	"time"
)

// PortAllocator hands out ephemeral ports. With a non-zero ReuseWait it
// implements the countermeasure of Section 7.1: a port may not be
// reallocated until THRESHOLD after it was released, so a new process
// cannot inherit a still-live flow (and with it the ability to have
// recorded datagrams decrypted to itself). The paper notes this fix
// belongs in the networking code outside FBS — in 4.4BSD, in_pcballoc —
// which is why it lives in this substrate package.
type PortAllocator struct {
	// First and Last bound the ephemeral range (inclusive).
	First, Last uint16
	// ReuseWait is the quarantine after release; zero reproduces stock
	// BSD behaviour (and the vulnerability).
	ReuseWait time.Duration

	mu       sync.Mutex
	next     uint16
	inUse    map[uint16]bool
	released map[uint16]time.Time
}

// NewPortAllocator creates an allocator over [first, last].
func NewPortAllocator(first, last uint16, reuseWait time.Duration) (*PortAllocator, error) {
	if first == 0 || last < first {
		return nil, fmt.Errorf("l4: bad port range [%d, %d]", first, last)
	}
	return &PortAllocator{
		First:     first,
		Last:      last,
		ReuseWait: reuseWait,
		next:      first,
		inUse:     make(map[uint16]bool),
		released:  make(map[uint16]time.Time),
	}, nil
}

// Alloc returns a free port at time now, or an error when every port is
// in use or quarantined.
func (p *PortAllocator) Alloc(now time.Time) (uint16, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := int(p.Last-p.First) + 1
	for i := 0; i < n; i++ {
		port := p.next
		p.next++
		if p.next > p.Last || p.next < p.First {
			p.next = p.First
		}
		if p.inUse[port] {
			continue
		}
		if rel, ok := p.released[port]; ok {
			if now.Sub(rel) < p.ReuseWait {
				continue // quarantined
			}
			delete(p.released, port)
		}
		p.inUse[port] = true
		return port, nil
	}
	return 0, fmt.Errorf("l4: no ports available")
}

// Release returns a port to the pool, starting its quarantine at now.
func (p *PortAllocator) Release(port uint16, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.inUse[port] {
		return
	}
	delete(p.inUse, port)
	if p.ReuseWait > 0 {
		p.released[port] = now
	}
}

// InUse reports how many ports are currently allocated.
func (p *PortAllocator) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inUse)
}
