package l4

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/ip"
	"fbs/internal/principal"
)

// The full-stack integration: a ttcp-style bulk transfer where every
// packet traverses real IPv4 (checksums, DF sizing) with real FBS
// processing (flow classification, zero-message keying, keyed-MD5 MAC,
// DES-CBC encryption) at the paper's hook points, over the simplified
// TCP of this package. This is the closest executable analogue of the
// paper's testbed runs.

var (
	fsOnce sync.Once
	fsCA   *cert.Authority
)

func fbsStreamFixture(t *testing.T) (*StreamStack, *StreamStack, ip.Addr) {
	t.Helper()
	fsOnce.Do(func() {
		ca, err := cert.NewAuthority("stream-root", 512)
		if err != nil {
			t.Fatal(err)
		}
		fsCA = ca
	})
	dir := cert.NewStaticDirectory()
	ver := &cert.Verifier{CAKey: fsCA.PublicKey(), CA: "stream-root"}

	w := &streamWire{peers: make(map[ip.Addr]*ip.Stack)}
	a := ip.Addr{10, 2, 0, 1}
	b := ip.Addr{10, 2, 0, 2}
	mk := func(addr ip.Addr) *ip.Stack {
		id, err := principal.NewIdentity(ip.Principal(addr), cryptolib.TestGroup)
		if err != nil {
			t.Fatal(err)
		}
		c, err := fsCA.Issue(id, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		dir.Publish(c)
		hook, err := ip.NewFBSHook(core.Config{
			Identity:   id,
			Directory:  dir,
			Verifier:   ver,
			SinglePass: true,
		}, ip.AlwaysSecret)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ip.NewStack(ip.StackConfig{Addr: addr, Link: w.sender(addr), Hook: hook})
		if err != nil {
			t.Fatal(err)
		}
		w.mu.Lock()
		w.peers[addr] = s
		w.mu.Unlock()
		return s
	}
	sa := mk(a)
	sb := mk(b)
	// The encrypted body grows by up to a DES block of padding beyond
	// the FBS header; SealOverhead is the worst-case sum.
	const secOverhead = core.SealOverhead
	ssa, err := NewStreamStack(sa, StreamConfig{RTO: 30 * time.Millisecond, SecurityHeaderLen: secOverhead})
	if err != nil {
		t.Fatal(err)
	}
	ssb, err := NewStreamStack(sb, StreamConfig{RTO: 30 * time.Millisecond, SecurityHeaderLen: secOverhead})
	if err != nil {
		t.Fatal(err)
	}
	return ssa, ssb, b
}

func TestTTCPThroughFBSStack(t *testing.T) {
	ssa, ssb, b := fbsStreamFixture(t)
	const total = 128 * 1024
	data := make([]byte, total)
	lcg := cryptolib.NewLCGSeeded(1997)
	for i := range data {
		data[i] = byte(lcg.Uint32())
	}

	ln, err := ssb.Listen(5001)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		got, err := io.ReadAll(conn)
		if err != nil {
			return
		}
		done <- got
	}()

	start := time.Now()
	conn, err := ssa.Dial(b, 5001)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := conn.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	var got []byte
	select {
	case got = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("transfer timed out")
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got, data) {
		t.Fatalf("payload corrupted through the FBS stack (%d in, %d out)", len(data), len(got))
	}
	t.Logf("ttcp through full FBS stack: %d KB in %v (%.0f kb/s)",
		total/1024, elapsed, float64(total)*8/elapsed.Seconds()/1000)
}

// The whole transfer must ride a handful of flows (two: data direction
// and ack direction) with exactly one master key computation per side.
func TestTTCPFlowEconomy(t *testing.T) {
	ssa, ssb, b := fbsStreamFixture(t)
	ln, err := ssb.Listen(5002)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, conn)
	}()
	conn, err := ssa.Dial(b, 5002)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	if err := conn.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	hookA := stackHook(t, ssa)
	fam := hookA.Endpoint.FAMStats()
	if fam.FlowsCreated != 1 {
		t.Errorf("sender created %d flows for one connection, want 1", fam.FlowsCreated)
	}
	ks, _, _, _ := hookA.Endpoint.KeyStats()
	if ks.MasterKeyComputes != 1 {
		t.Errorf("sender performed %d DH exponentiations, want 1", ks.MasterKeyComputes)
	}
	if fam.Lookups < 40 {
		t.Errorf("only %d datagrams classified; transfer too small to be meaningful", fam.Lookups)
	}
}

// stackHook digs the FBS hook back out of the stream stack for metric
// assertions.
func stackHook(t *testing.T, ss *StreamStack) *ip.FBSHook {
	t.Helper()
	h, ok := ss.stack.Hook().(*ip.FBSHook)
	if !ok {
		t.Fatal("stack has no FBS hook")
	}
	return h
}
