package l4

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/ip"
)

// streamWire connects two stacks, optionally dropping frames.
type streamWire struct {
	mu    sync.Mutex
	peers map[ip.Addr]*ip.Stack
	drop  func(n int) bool // called with a frame counter; true = drop
	count int
}

func (w *streamWire) sender(self ip.Addr) ip.LinkSender {
	return ip.LinkFunc(func(frame []byte) error {
		w.mu.Lock()
		w.count++
		n := w.count
		dropIt := w.drop != nil && w.drop(n)
		var dst *ip.Stack
		if h, _, err := ip.Unmarshal(frame); err == nil {
			dst = w.peers[h.Dst]
		}
		w.mu.Unlock()
		if dropIt || dst == nil {
			return nil
		}
		go dst.Input(append([]byte(nil), frame...))
		return nil
	})
}

func streamFixture(t *testing.T, drop func(int) bool, secHdr int) (*StreamStack, *StreamStack, ip.Addr, ip.Addr) {
	t.Helper()
	w := &streamWire{peers: make(map[ip.Addr]*ip.Stack), drop: drop}
	a := ip.Addr{10, 0, 0, 1}
	b := ip.Addr{10, 0, 0, 2}
	sa, err := ip.NewStack(ip.StackConfig{Addr: a, Link: w.sender(a)})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ip.NewStack(ip.StackConfig{Addr: b, Link: w.sender(b)})
	if err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	w.peers[a] = sa
	w.peers[b] = sb
	w.mu.Unlock()
	ssa, err := NewStreamStack(sa, StreamConfig{RTO: 20 * time.Millisecond, SecurityHeaderLen: secHdr})
	if err != nil {
		t.Fatal(err)
	}
	ssb, err := NewStreamStack(sb, StreamConfig{RTO: 20 * time.Millisecond, SecurityHeaderLen: secHdr})
	if err != nil {
		t.Fatal(err)
	}
	return ssa, ssb, a, b
}

func transfer(t *testing.T, ssa, ssb *StreamStack, dst ip.Addr, data []byte) []byte {
	t.Helper()
	ln, err := ssb.Listen(9000)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	result := make(chan []byte, 1)
	errc := make(chan error, 2)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		got, err := io.ReadAll(conn)
		if err != nil {
			errc <- err
			return
		}
		result <- got
	}()
	conn, err := ssa.Dial(dst, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := conn.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-result:
		return got
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		t.Fatal("transfer timed out")
	}
	return nil
}

func TestStreamTransfer(t *testing.T) {
	ssa, ssb, _, b := streamFixture(t, nil, 0)
	data := make([]byte, 200_000)
	lcg := cryptolib.NewLCGSeeded(3)
	for i := range data {
		data[i] = byte(lcg.Uint32())
	}
	got := transfer(t, ssa, ssb, b, data)
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer corrupted: %d bytes in, %d out", len(data), len(got))
	}
}

func TestStreamEmptyTransfer(t *testing.T) {
	ssa, ssb, _, b := streamFixture(t, nil, 0)
	got := transfer(t, ssa, ssb, b, nil)
	if len(got) != 0 {
		t.Fatalf("expected empty stream, got %d bytes", len(got))
	}
}

func TestStreamSurvivesLoss(t *testing.T) {
	lcg := cryptolib.NewLCGSeeded(99)
	drop := func(n int) bool {
		if n <= 2 {
			return false // let the handshake through quickly
		}
		return lcg.Uint32()%10 == 0 // 10% loss
	}
	ssa, ssb, _, b := streamFixture(t, drop, 0)
	data := make([]byte, 60_000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	got := transfer(t, ssa, ssb, b, data)
	if !bytes.Equal(got, data) {
		t.Fatal("lossy transfer corrupted")
	}
}

func TestStreamDialNoListener(t *testing.T) {
	ssa, _, _, b := streamFixture(t, nil, 0)
	start := time.Now()
	if _, err := ssa.Dial(b, 4444); err == nil {
		t.Fatal("dial to non-listening port succeeded")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("dial timeout took too long")
	}
}

func TestStreamListenTwice(t *testing.T) {
	_, ssb, _, _ := streamFixture(t, nil, 0)
	if _, err := ssb.Listen(7777); err != nil {
		t.Fatal(err)
	}
	if _, err := ssb.Listen(7777); err == nil {
		t.Fatal("double listen succeeded")
	}
}

// TestStreamSegmentSizingWithSecurityHeader reproduces the tcp_output
// interaction of Section 7.2 end to end: with the security header
// accounted for, maximal segments plus a 36-byte FBS header still fit
// the MTU; without the fix, the DF-flagged packets would exceed it.
func TestStreamSegmentSizingWithSecurityHeader(t *testing.T) {
	const fbsHdr = 36
	// A hook that emulates FBS growth: it prepends 36 bytes on output
	// and strips them on input, failing loudly if a packet would not
	// have fit.
	w := &streamWire{peers: make(map[ip.Addr]*ip.Stack)}
	a := ip.Addr{10, 0, 0, 1}
	b := ip.Addr{10, 0, 0, 2}
	grow := hookFunc{
		out: func(h *ip.Header, p []byte) ([]byte, error) {
			return append(make([]byte, fbsHdr), p...), nil
		},
		in: func(h *ip.Header, p []byte) ([]byte, error) {
			return p[fbsHdr:], nil
		},
	}
	sa, _ := ip.NewStack(ip.StackConfig{Addr: a, Link: w.sender(a), Hook: grow})
	sb, _ := ip.NewStack(ip.StackConfig{Addr: b, Link: w.sender(b), Hook: grow})
	w.mu.Lock()
	w.peers[a] = sa
	w.peers[b] = sb
	w.mu.Unlock()
	ssa, _ := NewStreamStack(sa, StreamConfig{RTO: 20 * time.Millisecond, SecurityHeaderLen: fbsHdr})
	ssb, _ := NewStreamStack(sb, StreamConfig{RTO: 20 * time.Millisecond, SecurityHeaderLen: fbsHdr})
	data := make([]byte, 50_000)
	got := transfer(t, ssa, ssb, b, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer with security header corrupted")
	}
	// The unfixed sizing: segments fill the MTU exactly, the hook's 36
	// bytes push DF packets over, and the transfer cannot make progress.
	unfixedA, _ := NewStreamStack(mustStack(t, ip.Addr{10, 0, 0, 3}, w), StreamConfig{RTO: 10 * time.Millisecond, SecurityHeaderLen: 0})
	_ = unfixedA
	mss := MaxSegmentData(1500, 0, 0)
	over := ip.Packet{
		Header:  ip.Header{Flags: ip.FlagDF, TTL: 64, Protocol: ip.ProtoTCP},
		Payload: make([]byte, TCPHeaderLen+fbsHdr+mss),
	}
	if _, err := ip.Fragment(over, 1500); err != ip.ErrNeedsFragmentation {
		t.Fatalf("unfixed sizing should trip DF, got %v", err)
	}
}

func mustStack(t *testing.T, addr ip.Addr, w *streamWire) *ip.Stack {
	t.Helper()
	s, err := ip.NewStack(ip.StackConfig{Addr: addr, Link: w.sender(addr)})
	if err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	w.peers[addr] = s
	w.mu.Unlock()
	return s
}

type hookFunc struct {
	out func(*ip.Header, []byte) ([]byte, error)
	in  func(*ip.Header, []byte) ([]byte, error)
}

func (h hookFunc) OutputHook(hd *ip.Header, p []byte) ([]byte, error) { return h.out(hd, p) }
func (h hookFunc) InputHook(hd *ip.Header, p []byte) ([]byte, error)  { return h.in(hd, p) }
