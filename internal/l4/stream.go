package l4

import (
	"fmt"
	"io"
	"sync"
	"time"

	"fbs/internal/cryptolib"
	"fbs/internal/ip"
)

// This file provides a reliable byte stream over the IP substrate — a
// deliberately simplified TCP (go-back-N, fixed windows, no congestion
// control) sufficient to run the paper's ttcp/rcp-style workloads
// through a real stack with FBS hooked in. Segment sizing uses
// MaxSegmentData with the security header accounted for, i.e. the
// tcp_output fix of Section 7.2 is applied (and removing it breaks
// exactly the way the paper describes — see the tests).

// StreamConfig configures a StreamStack.
type StreamConfig struct {
	// Window is the go-back-N window in segments; default 8.
	Window int
	// RTO is the retransmission timeout; default 50 ms.
	RTO time.Duration
	// SecurityHeaderLen is the per-datagram security overhead the
	// segment-size calculation must account for: 0 for a stock stack,
	// core.SealOverhead for FBS. Note the header alone (core.HeaderSize)
	// is NOT enough when the body is encrypted — PKCS#7 padding grows
	// the sealed body by up to a cipher block, and an exact-fit segment
	// sized for just the header overflows the MTU on aligned payloads.
	// Getting this wrong with DF set reproduces the 4.4BSD tcp_output
	// bug.
	SecurityHeaderLen int
	// Ports allocates ephemeral ports; default 1024-65535 with no
	// reuse quarantine.
	Ports *PortAllocator
	// Now supplies time; default time.Now.
	Now func() time.Time
}

type connKey struct {
	localPort  uint16
	remoteAddr ip.Addr
	remotePort uint16
}

// StreamStack multiplexes stream connections over one host's IP stack.
type StreamStack struct {
	stack *ip.Stack
	cfg   StreamConfig

	mu        sync.Mutex
	conns     map[connKey]*StreamConn
	listeners map[uint16]*Listener
	isn       *cryptolib.LCG

	// segBufs recycles marshalled-segment buffers across sendFlags
	// calls: the stack's output path copies the segment into frames
	// before returning, so the buffer is free again as soon as Output
	// does.
	segBufs sync.Pool
}

// NewStreamStack attaches the stream protocol to an IP stack (as its
// ProtoTCP handler).
func NewStreamStack(stack *ip.Stack, cfg StreamConfig) (*StreamStack, error) {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Ports == nil {
		p, err := NewPortAllocator(1024, 65535, 0)
		if err != nil {
			return nil, err
		}
		cfg.Ports = p
	}
	ss := &StreamStack{
		stack:     stack,
		cfg:       cfg,
		conns:     make(map[connKey]*StreamConn),
		listeners: make(map[uint16]*Listener),
		isn:       cryptolib.NewLCG(),
	}
	stack.Handle(ip.ProtoTCP, ss.input)
	return ss, nil
}

// mss returns the usable payload per segment.
func (ss *StreamStack) mss() int {
	return MaxSegmentData(ss.stack.MTU(), 0, ss.cfg.SecurityHeaderLen)
}

// Listener accepts inbound connections on a port.
type Listener struct {
	ss      *StreamStack
	port    uint16
	backlog chan *StreamConn
	closed  chan struct{}
	once    sync.Once
}

// Listen starts accepting connections on port.
func (ss *StreamStack) Listen(port uint16) (*Listener, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, busy := ss.listeners[port]; busy {
		return nil, fmt.Errorf("l4: port %d already listening", port)
	}
	l := &Listener{
		ss:      ss,
		port:    port,
		backlog: make(chan *StreamConn, 16),
		closed:  make(chan struct{}),
	}
	ss.listeners[port] = l
	return l, nil
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*StreamConn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("l4: listener closed")
	}
}

// Close stops the listener.
func (l *Listener) Close() {
	l.once.Do(func() {
		close(l.closed)
		l.ss.mu.Lock()
		delete(l.ss.listeners, l.port)
		l.ss.mu.Unlock()
	})
}

// StreamConn is one reliable, unidirectionally-written byte stream
// (writes flow from the dialing side to the accepting side; acks flow
// back). It implements io.Reader on the accepting side and io.Writer on
// the dialing side.
type StreamConn struct {
	ss  *StreamStack
	key connKey
	mss int

	mu   sync.Mutex
	cond *sync.Cond
	// Sender state.
	sndBase  uint32 // lowest unacked seq
	sndNext  uint32 // next seq to assign
	segments []segment
	lastSend time.Time
	// Receiver state.
	rcvNext uint32
	rcvBuf  []byte
	rcvFIN  bool
	// Lifecycle.
	established bool
	closed      bool
	err         error
}

type segment struct {
	seq  uint32
	data []byte
	fin  bool
}

// Dial opens a stream to remote:port, blocking through the handshake.
func (ss *StreamStack) Dial(remote ip.Addr, port uint16) (*StreamConn, error) {
	local, err := ss.cfg.Ports.Alloc(ss.cfg.Now())
	if err != nil {
		return nil, err
	}
	key := connKey{localPort: local, remoteAddr: remote, remotePort: port}
	c := ss.newConn(key)
	c.sndBase = uint32(ss.isn.Uint32())
	c.sndNext = c.sndBase
	ss.mu.Lock()
	ss.conns[key] = c
	ss.mu.Unlock()

	// SYN / SYN-ACK.
	deadline := ss.cfg.Now().Add(64 * ss.cfg.RTO)
	for {
		if err := c.sendFlags(TCPSyn, c.sndBase, 0, nil); err != nil {
			return nil, err
		}
		c.mu.Lock()
		for !c.established && c.err == nil && ss.cfg.Now().Before(deadline) {
			c.waitWithTimeout(ss.cfg.RTO)
		}
		est, cerr := c.established, c.err
		c.mu.Unlock()
		if cerr != nil {
			return nil, cerr
		}
		if est {
			break
		}
		if !ss.cfg.Now().Before(deadline) {
			ss.dropConn(key)
			return nil, fmt.Errorf("l4: connect to %v:%d timed out", remote, port)
		}
	}
	// The SYN consumed one sequence number: data starts at ISN+1.
	c.mu.Lock()
	c.sndBase++
	c.sndNext = c.sndBase
	c.mu.Unlock()
	go c.pump()
	return c, nil
}

func (ss *StreamStack) newConn(key connKey) *StreamConn {
	c := &StreamConn{ss: ss, key: key, mss: ss.mss()}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (ss *StreamStack) dropConn(key connKey) {
	ss.mu.Lock()
	delete(ss.conns, key)
	ss.mu.Unlock()
}

// waitWithTimeout waits on the cond for at most d. Callers hold c.mu.
func (c *StreamConn) waitWithTimeout(d time.Duration) {
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.cond.Wait()
	timer.Stop()
}

// sendFlags emits a control/data segment. The marshalled segment lives
// in a pooled buffer: Output copies it into link frames synchronously,
// so the buffer can be recycled as soon as Output returns.
func (c *StreamConn) sendFlags(flags uint8, seq, ack uint32, data []byte) error {
	h := TCPHeader{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		Window:  uint16(c.ss.cfg.Window),
	}
	bp, _ := c.ss.segBufs.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	seg, err := h.MarshalAppend((*bp)[:0], data, c.ss.stack.Addr(), c.key.remoteAddr)
	if err != nil {
		c.ss.segBufs.Put(bp)
		return err
	}
	*bp = seg
	// DF is set, as tcp_output does: segments are sized to fit exactly.
	err = c.ss.stack.Output(ip.ProtoTCP, c.key.remoteAddr, seg, true)
	c.ss.segBufs.Put(bp)
	return err
}

// Write queues data for transmission; it blocks while the window's
// worth of queue is outstanding and returns once the data is queued
// (not necessarily acked — use CloseWrite to flush).
func (c *StreamConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("l4: write on closed stream")
	}
	n := 0
	for len(p) > 0 {
		if c.err != nil {
			return n, c.err
		}
		// Backpressure: bound the queue at 4 windows.
		for len(c.segments) >= 4*c.ss.cfg.Window && c.err == nil {
			c.waitWithTimeout(c.ss.cfg.RTO)
		}
		chunk := len(p)
		if chunk > c.mss {
			chunk = c.mss
		}
		data := make([]byte, chunk)
		copy(data, p[:chunk])
		c.segments = append(c.segments, segment{seq: c.sndNext, data: data})
		c.sndNext += uint32(chunk)
		p = p[chunk:]
		n += chunk
	}
	c.cond.Broadcast()
	return n, nil
}

// CloseWrite sends FIN and blocks until everything is acknowledged.
func (c *StreamConn) CloseWrite() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.segments = append(c.segments, segment{seq: c.sndNext, fin: true})
	c.sndNext++
	c.cond.Broadcast()
	deadline := c.ss.cfg.Now().Add(256 * c.ss.cfg.RTO)
	for c.sndBase != c.sndNext && c.err == nil {
		if !c.ss.cfg.Now().Before(deadline) {
			c.mu.Unlock()
			return fmt.Errorf("l4: close timed out with %d bytes unacked", c.sndNext-c.sndBase)
		}
		c.waitWithTimeout(c.ss.cfg.RTO)
	}
	err := c.err
	c.mu.Unlock()
	c.ss.dropConn(c.key)
	c.ss.cfg.Ports.Release(c.key.localPort, c.ss.cfg.Now())
	return err
}

// Read returns in-order received bytes; io.EOF after the peer's FIN.
func (c *StreamConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.rcvBuf) == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if c.rcvFIN {
			return 0, io.EOF
		}
		c.cond.Wait()
	}
	n := copy(p, c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	return n, nil
}

// pump is the sender loop: transmit the window, retransmit from the
// base on timeout (go-back-N).
func (c *StreamConn) pump() {
	for {
		c.mu.Lock()
		for len(c.segments) == 0 && c.err == nil {
			if c.closed && c.sndBase == c.sndNext {
				c.mu.Unlock()
				return
			}
			c.cond.Wait()
		}
		if c.err != nil {
			c.mu.Unlock()
			return
		}
		// Send up to a window of queued segments.
		w := c.ss.cfg.Window
		if w > len(c.segments) {
			w = len(c.segments)
		}
		toSend := make([]segment, w)
		copy(toSend, c.segments[:w])
		c.lastSend = c.ss.cfg.Now()
		c.mu.Unlock()
		for _, s := range toSend {
			flags := uint8(TCPAck | TCPPsh)
			if s.fin {
				flags = TCPFin | TCPAck
			}
			if err := c.sendFlags(flags, s.seq, 0, s.data); err != nil {
				c.fail(err)
				return
			}
		}
		// Wait for acks or timeout; on timeout the loop re-sends from
		// the (possibly advanced) base.
		c.mu.Lock()
		before := c.sndBase
		deadline := c.ss.cfg.Now().Add(c.ss.cfg.RTO)
		for c.sndBase == before && len(c.segments) > 0 && c.err == nil && c.ss.cfg.Now().Before(deadline) {
			c.waitWithTimeout(c.ss.cfg.RTO)
		}
		done := len(c.segments) == 0 && c.closed && c.sndBase == c.sndNext
		c.mu.Unlock()
		if done {
			return
		}
	}
}

func (c *StreamConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// input dispatches an inbound TCP segment.
func (ss *StreamStack) input(h *ip.Header, payload []byte) {
	th, data, err := UnmarshalTCP(payload, h.Src, h.Dst)
	if err != nil {
		return
	}
	key := connKey{localPort: th.DstPort, remoteAddr: h.Src, remotePort: th.SrcPort}
	ss.mu.Lock()
	c, ok := ss.conns[key]
	listener := ss.listeners[th.DstPort]
	ss.mu.Unlock()

	switch {
	case th.Flags&TCPSyn != 0 && th.Flags&TCPAck == 0:
		// Inbound connection request.
		if listener == nil {
			return
		}
		if !ok {
			c = ss.newConn(key)
			c.established = true
			c.rcvNext = th.Seq + 1
			ss.mu.Lock()
			ss.conns[key] = c
			ss.mu.Unlock()
			select {
			case listener.backlog <- c:
			default:
				ss.dropConn(key)
				return
			}
		}
		// (Re-)send SYN-ACK; duplicate SYNs get the same answer.
		c.mu.Lock()
		ackTo := c.rcvNext
		c.mu.Unlock()
		c.sendFlags(TCPSyn|TCPAck, 0, ackTo, nil)
	case th.Flags&TCPSyn != 0 && th.Flags&TCPAck != 0:
		// Handshake completion at the dialer.
		if c == nil {
			return
		}
		c.mu.Lock()
		c.established = true
		base := c.sndBase
		c.cond.Broadcast()
		c.mu.Unlock()
		c.sendFlags(TCPAck, base, th.Seq+1, nil)
	case th.Flags&(TCPFin|TCPPsh) != 0 || len(data) > 0:
		// Data or FIN at the receiver.
		if c == nil {
			return
		}
		c.mu.Lock()
		if th.Seq == c.rcvNext {
			if th.Flags&TCPFin != 0 {
				c.rcvFIN = true
				c.rcvNext++
			} else {
				c.rcvBuf = append(c.rcvBuf, data...)
				c.rcvNext += uint32(len(data))
			}
			c.cond.Broadcast()
		}
		ackTo := c.rcvNext
		c.mu.Unlock()
		// Cumulative ack (also re-acks duplicates/out-of-order).
		c.sendFlags(TCPAck, 0, ackTo, nil)
	case th.Flags&TCPAck != 0:
		// Pure ack at the sender.
		if c == nil {
			return
		}
		c.mu.Lock()
		if seqLessOrEqual(c.sndBase, th.Ack) && seqLessOrEqual(th.Ack, c.sndNext) {
			// Drop fully-acked segments.
			c.sndBase = th.Ack
			for len(c.segments) > 0 {
				s := c.segments[0]
				end := s.seq + uint32(len(s.data))
				if s.fin {
					end = s.seq + 1
				}
				if seqLessOrEqual(end, th.Ack) {
					c.segments = c.segments[1:]
				} else {
					break
				}
			}
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// seqLessOrEqual compares 32-bit sequence numbers with wraparound.
func seqLessOrEqual(a, b uint32) bool {
	return int32(b-a) >= 0
}
