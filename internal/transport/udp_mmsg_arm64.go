//go:build linux && arm64

package transport

// linux/arm64 syscall numbers (the generic unified table).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
