//go:build !linux || !(amd64 || arm64)

package transport

// Platforms without the raw sendmmsg/recvmmsg plumbing: batch calls
// always take the portable loop.

const mmsgAvailable = false

func (u *UDPTransport) sendBatchMmsg(dgs []Datagram) (n int, err error, handled bool) {
	return 0, nil, false
}

func (u *UDPTransport) recvBatchMmsg(buf []Datagram) (n int, err error, handled bool) {
	return 0, nil, false
}
