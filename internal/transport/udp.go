package transport

import (
	"fmt"
	"net"
	"sync"

	"fbs/internal/principal"
)

// UDPTransport runs the FBS datagram abstraction over real UDP sockets,
// so two processes (or two machines) can speak FBS to each other. Each
// datagram is framed as the length-prefixed source and destination
// principal addresses followed by the payload. The framing predates
// tracing and is unchanged by it: Datagram.Trace is not serialized, so
// traces over UDP cover the sending process only.
type UDPTransport struct {
	local principal.Address
	conn  *net.UDPConn

	mu    sync.RWMutex
	learn bool
	peers map[principal.Address]*net.UDPAddr

	batchState
}

// NewUDPTransport binds a UDP socket on listenAddr (e.g. "127.0.0.1:7001")
// for the given principal.
func NewUDPTransport(local principal.Address, listenAddr string) (*UDPTransport, error) {
	ua, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", listenAddr, err)
	}
	return &UDPTransport{
		local: local,
		conn:  conn,
		peers: make(map[principal.Address]*net.UDPAddr),
	}, nil
}

// LocalAddr returns the bound UDP address (useful with port 0).
func (u *UDPTransport) LocalAddr() *net.UDPAddr {
	return u.conn.LocalAddr().(*net.UDPAddr)
}

// AddPeer maps a principal address to the UDP address where it listens.
func (u *UDPTransport) AddPeer(peer principal.Address, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolving peer %q: %w", addr, err)
	}
	u.mu.Lock()
	u.peers[peer] = ua
	u.mu.Unlock()
	return nil
}

// SetLearnPeers makes Receive record each frame's source principal →
// UDP origin mapping — the reply-to-observed-source behaviour a server
// needs to answer clients it has no static peer table for (a gateway
// cannot enumerate its clients in advance). Later frames from the same
// principal update the mapping, so a client that re-binds keeps
// working; static AddPeer entries are overwritten the same way.
// Learning applies to the single-datagram Receive path; the recvmmsg
// batch path keeps the static peer table.
func (u *UDPTransport) SetLearnPeers(on bool) {
	u.mu.Lock()
	u.learn = on
	u.mu.Unlock()
}

// Send implements Transport.
func (u *UDPTransport) Send(dg Datagram) error {
	if dg.Source == "" {
		dg.Source = u.local
	}
	u.mu.RLock()
	peer, ok := u.peers[dg.Destination]
	u.mu.RUnlock()
	if !ok {
		return fmt.Errorf("transport: no UDP mapping for principal %q", dg.Destination)
	}
	frame := make([]byte, 0, 4+len(dg.Source)+len(dg.Destination)+len(dg.Payload))
	frame = append(frame, dg.Source.Wire()...)
	frame = append(frame, dg.Destination.Wire()...)
	frame = append(frame, dg.Payload...)
	_, err := u.conn.WriteToUDP(frame, peer)
	return err
}

// Receive implements Transport.
func (u *UDPTransport) Receive() (Datagram, error) {
	buf := make([]byte, 65536)
	n, raddr, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		return Datagram{}, ErrClosed
	}
	b := buf[:n]
	src, used, err := principal.DecodeAddress(b)
	if err != nil {
		return Datagram{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	u.mu.RLock()
	learn := u.learn
	u.mu.RUnlock()
	if learn {
		u.mu.Lock()
		u.peers[src] = raddr
		u.mu.Unlock()
	}
	b = b[used:]
	dst, used, err := principal.DecodeAddress(b)
	if err != nil {
		return Datagram{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	b = b[used:]
	payload := make([]byte, len(b))
	copy(payload, b)
	return Datagram{Source: src, Destination: dst, Payload: payload}, nil
}

// Close implements Transport.
func (u *UDPTransport) Close() error { return u.conn.Close() }
