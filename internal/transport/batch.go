package transport

// Batched transport. The protocol's Send()/Receive() abstraction is one
// datagram per call, which on a real kernel socket means one syscall per
// datagram — the dominant fixed cost at line rate. BatchConn is the
// batched extension of that seam: implementations that can amortise the
// per-call overhead (sendmmsg/recvmmsg on Linux UDP, a single lock
// acquisition on the in-memory network) expose it, and the package
// helpers fall back to a loop of single calls everywhere else, so
// callers write one code path and get the amortisation where the
// platform offers it. The fallback is semantically identical by
// construction: a batch is exactly the sequence of its datagrams, in
// order, with each datagram subject to the same delivery model.
type BatchConn interface {
	Transport
	// SendBatch transmits the datagrams in order. It returns how many
	// were handed to the underlying service before an error stopped the
	// batch; n == len(dgs) and a nil error is the common case. Delivery
	// remains best-effort per datagram, exactly as Send.
	SendBatch(dgs []Datagram) (int, error)
	// ReceiveBatch blocks until at least one datagram is available, then
	// fills buf with as many more as are ready without blocking again.
	// It returns the number received, or an error once the endpoint is
	// closed. A zero-length buf returns (0, nil) immediately.
	ReceiveBatch(buf []Datagram) (int, error)
}

// SendBatch transmits dgs over tr, using the transport's native batch
// path when it has one and a portable loop of Send calls otherwise. It
// returns how many datagrams were handed off before the first error.
func SendBatch(tr Transport, dgs []Datagram) (int, error) {
	if bc, ok := tr.(BatchConn); ok {
		return bc.SendBatch(dgs)
	}
	for i := range dgs {
		if err := tr.Send(dgs[i]); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// ReceiveBatch fills buf from tr: the transport's native batch receive
// when available, otherwise one blocking Receive (a portable Transport
// offers no way to ask "is more ready?" without blocking, so the loop
// fallback returns after the first datagram rather than stall the
// batch).
func ReceiveBatch(tr Transport, buf []Datagram) (int, error) {
	if bc, ok := tr.(BatchConn); ok {
		return bc.ReceiveBatch(buf)
	}
	if len(buf) == 0 {
		return 0, nil
	}
	dg, err := tr.Receive()
	if err != nil {
		return 0, err
	}
	buf[0] = dg
	return 1, nil
}

// SendBatch enqueues the whole batch under one network-lock
// acquisition; the fault model still draws per datagram, in order, so a
// batch is indistinguishable from a loop of Send calls to any observer
// of the delivery sequence.
func (p *netPort) SendBatch(dgs []Datagram) (int, error) {
	select {
	case <-p.closed:
		return 0, ErrClosed
	default:
	}
	for i := range dgs {
		if dgs[i].Source == "" {
			dgs[i].Source = p.addr
		}
	}
	n := p.net
	n.mu.Lock()
	for i := range dgs {
		n.injectLocked(dgs[i])
	}
	n.mu.Unlock()
	return len(dgs), nil
}

// ReceiveBatch blocks for the first datagram, then drains whatever else
// is already queued, up to len(buf).
func (p *netPort) ReceiveBatch(buf []Datagram) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	dg, err := p.Receive()
	if err != nil {
		return 0, err
	}
	buf[0] = dg
	n := 1
	for n < len(buf) {
		select {
		case dg := <-p.ch:
			buf[n] = dg
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}
