//go:build linux && (amd64 || arm64)

package transport

import (
	"fmt"
	"syscall"
	"unsafe"

	"fbs/internal/principal"
)

// sendmmsg/recvmmsg plumbing. Go's frozen syscall package predates
// sendmmsg, so the two vector calls are issued raw: hand-built
// mmsghdr/msghdr/iovec structures (both supported architectures are
// 64-bit little-endian Linux, so one layout serves), syscall numbers
// from the per-arch files, and the net.UDPConn's SyscallConn for
// readiness integration — the raw fd is only ever touched inside
// RawConn.Read/Write callbacks, so Go's runtime poller keeps ownership
// of blocking.

const mmsgAvailable = true

// mmsgMaxBatch bounds one vector call: enough to amortise the syscall
// to noise, small enough that the cached receive buffers stay modest
// (mmsgMaxBatch × mmsgSlotSize = 2 MiB).
const (
	mmsgMaxBatch = 32
	mmsgSlotSize = 65536
)

// UDP generic segmentation offload. A run of consecutive frames with
// one destination and one size can ride a single sendmsg as one
// super-buffer with a UDP_SEGMENT control message: the kernel splits it
// into wire datagrams itself, so the per-datagram cost of traversing
// the socket layer is paid once per run instead of once per datagram —
// on top of what sendmmsg already amortises. The receiver needs nothing
// special: segmentation happens before delivery, so recvmmsg sees
// ordinary datagrams. Kernels without UDP_SEGMENT reject the control
// message with EINVAL; the first rejection latches gsoBroken and the
// socket quietly stays on plain sendmmsg.
const (
	solUDP        = 17  // SOL_UDP, the cmsg level for UDP socket options
	udpSegment    = 103 // UDP_SEGMENT
	maxGSOSegs    = 64  // kernel UDP_MAX_SEGMENTS
	maxGSOPayload = 65000
)

// gsoCmsg is struct cmsghdr plus the uint16 segment size, padded so an
// array of them keeps each header 8-byte aligned. Controllen must be
// CmsgLen(2) = 18, not the padded size.
type gsoCmsg struct {
	len   uint64
	level int32
	typ   int32
	seg   uint16
	_     [6]byte
}

const gsoCmsgLen = 18

// sendGroup is one message of a vector send: count frames packed
// contiguously in the arena starting at off, size bytes total. count >
// 1 means a GSO run of equal segSize-byte frames.
type sendGroup struct {
	off     int
	size    int
	segSize int
	count   int
	first   int // index of the run's first datagram (for its sockaddr)
}

type iovec struct {
	Base *byte
	Len  uint64
}

type msghdr struct {
	Name       *byte
	Namelen    uint32
	_          [4]byte
	Iov        *iovec
	Iovlen     uint64
	Control    *byte
	Controllen uint64
	Flags      int32
	_          [4]byte
}

type mmsghdr struct {
	Hdr msghdr
	Len uint32
	_   [4]byte
}

type rawSockaddrInet4 struct {
	Family uint16
	Port   uint16 // network byte order
	Addr   [4]byte
	Zero   [8]byte
}

// sendBatchMmsg transmits dgs with sendmmsg, coalescing equal-size
// same-destination runs into GSO super-packets. handled == false means
// the socket or peer set cannot take the fast path (an IPv6 peer; a
// missing mapping is still a real error) and the caller must fall back.
func (u *UDPTransport) sendBatchMmsg(dgs []Datagram) (n int, err error, handled bool) {
	if len(dgs) == 0 {
		return 0, nil, true
	}
	// One batch send at a time per socket: the kernel serialises socket
	// writes anyway, and holding the lock across the syscall keeps the
	// iovecs' view of the shared arena stable.
	u.sendMu.Lock()
	defer u.sendMu.Unlock()
	total := len(dgs)
	done := 0
	for done < total {
		batch := total - done
		if batch > mmsgMaxBatch {
			batch = mmsgMaxBatch
		}
		sent, serr, ok := u.sendChunkMmsg(dgs[done : done+batch])
		if !ok {
			return 0, nil, false // IPv6 peer: portable loop handles it
		}
		done += sent
		if serr != nil {
			return done, serr, true
		}
	}
	return done, nil, true
}

// sendChunkMmsg sends up to mmsgMaxBatch datagrams with one vector
// call, retrying without GSO if the kernel rejects UDP_SEGMENT.
func (u *UDPTransport) sendChunkMmsg(dgs []Datagram) (n int, err error, handled bool) {
	batch := len(dgs)
	var addrs [mmsgMaxBatch]rawSockaddrInet4
	var offs [mmsgMaxBatch + 1]int
	// Frames are packed into one reusable arena rather than allocated
	// per datagram; iovecs are built only after the arena stops
	// growing, since append may move it.
	arena := u.sendArena[:0]
	for i := 0; i < batch; i++ {
		dg := &dgs[i]
		if dg.Source == "" {
			dg.Source = u.local
		}
		u.mu.RLock()
		peer, ok := u.peers[dg.Destination]
		u.mu.RUnlock()
		if !ok {
			return 0, fmt.Errorf("transport: no UDP mapping for principal %q", dg.Destination), true
		}
		ip4 := peer.IP.To4()
		if ip4 == nil {
			return 0, nil, false
		}
		addrs[i].Family = syscall.AF_INET
		p := uint16(peer.Port)
		addrs[i].Port = p<<8 | p>>8
		copy(addrs[i].Addr[:], ip4)
		offs[i] = len(arena)
		arena = appendWireAddress(arena, dg.Source)
		arena = appendWireAddress(arena, dg.Destination)
		arena = append(arena, dg.Payload...)
	}
	offs[batch] = len(arena)
	u.sendArena = arena

	gso := u.gsoBroken.Load() == 0
	for {
		sent, callErr := u.sendGroupsMmsg(arena, addrs[:batch], offs[:batch+1], gso)
		if gso && callErr == syscall.EINVAL {
			// The kernel refused a UDP_SEGMENT control message; latch it
			// and resend whatever remains as plain per-datagram messages.
			u.gsoBroken.Store(1)
			gso = false
			n += sent
			dgsLeft := batch - n
			if dgsLeft == 0 {
				return n, nil, true
			}
			copy(offs[:dgsLeft+1], offs[n:batch+1])
			copy(addrs[:dgsLeft], addrs[n:batch])
			batch = dgsLeft
			continue
		}
		n += sent
		if callErr != nil {
			return n, fmt.Errorf("transport: sendmmsg: %w", callErr), true
		}
		return n, nil, true
	}
}

// sendGroupsMmsg issues one sendmmsg over the packed frames, grouping
// GSO runs when gso is set. It returns the number of DATAGRAMS fully
// sent (message sends are whole groups, so the count maps exactly).
func (u *UDPTransport) sendGroupsMmsg(arena []byte, addrs []rawSockaddrInet4, offs []int, gso bool) (int, error) {
	batch := len(addrs)
	var groups [mmsgMaxBatch]sendGroup
	ng := 0
	for i := 0; i < batch; i++ {
		size := offs[i+1] - offs[i]
		if gso && ng > 0 {
			g := &groups[ng-1]
			if size == g.segSize && addrs[i] == addrs[g.first] &&
				g.count < maxGSOSegs && g.size+size <= maxGSOPayload {
				g.size += size
				g.count++
				continue
			}
		}
		groups[ng] = sendGroup{off: offs[i], size: size, segSize: size, count: 1, first: i}
		ng++
	}

	var iovs [mmsgMaxBatch]iovec
	var hdrs [mmsgMaxBatch]mmsghdr
	var cmsgs [mmsgMaxBatch]gsoCmsg
	for g := 0; g < ng; g++ {
		gr := &groups[g]
		iovs[g] = iovec{Base: &arena[gr.off], Len: uint64(gr.size)}
		hdrs[g].Hdr = msghdr{
			Name:    (*byte)(unsafe.Pointer(&addrs[gr.first])),
			Namelen: uint32(unsafe.Sizeof(addrs[gr.first])),
			Iov:     &iovs[g],
			Iovlen:  1,
		}
		if gr.count > 1 {
			cmsgs[g] = gsoCmsg{len: gsoCmsgLen, level: solUDP, typ: udpSegment, seg: uint16(gr.segSize)}
			hdrs[g].Hdr.Control = (*byte)(unsafe.Pointer(&cmsgs[g]))
			hdrs[g].Hdr.Controllen = gsoCmsgLen
		}
	}

	rc, rerr := u.conn.SyscallConn()
	if rerr != nil {
		return 0, rerr
	}
	sent := 0
	var callErr error
	werr := rc.Write(func(fd uintptr) bool {
		for sent < ng {
			r, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(ng-sent),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false // block until writable, then retry
			}
			if e == syscall.EINTR {
				continue
			}
			if e != 0 {
				callErr = e
				return true
			}
			sent += int(r)
		}
		return true
	})
	dgSent := 0
	for g := 0; g < sent; g++ {
		dgSent += groups[g].count
	}
	if werr != nil {
		return dgSent, werr
	}
	return dgSent, callErr
}

// recvBatchMmsg fills buf with recvmmsg: it blocks for the first
// datagram (via the runtime poller) and returns whatever else the
// socket already holds, up to min(len(buf), mmsgMaxBatch). Frames that
// fail address decoding are skipped, exactly as a Receive loop would
// surface them one error at a time — except the batch path drops them
// silently to keep the happy-path contract simple; the single-datagram
// path remains the debugging tool for malformed framing.
func (u *UDPTransport) recvBatchMmsg(buf []Datagram) (n int, err error, handled bool) {
	batch := len(buf)
	if batch > mmsgMaxBatch {
		batch = mmsgMaxBatch
	}
	u.recvMu.Lock()
	defer u.recvMu.Unlock()
	if u.recvBufs == nil {
		u.recvBufs = make([][]byte, mmsgMaxBatch)
		for i := range u.recvBufs {
			u.recvBufs[i] = make([]byte, mmsgSlotSize)
		}
	}
	var iovs [mmsgMaxBatch]iovec
	var hdrs [mmsgMaxBatch]mmsghdr
	for i := 0; i < batch; i++ {
		iovs[i] = iovec{Base: &u.recvBufs[i][0], Len: mmsgSlotSize}
		hdrs[i].Hdr = msghdr{Iov: &iovs[i], Iovlen: 1}
	}
	rc, rerr := u.conn.SyscallConn()
	if rerr != nil {
		return 0, ErrClosed, true
	}
	got := 0
	closed := false
	perr := rc.Read(func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), uintptr(batch),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false // block until readable
			}
			if e == syscall.EINTR {
				continue
			}
			if e != 0 {
				closed = true
				return true
			}
			got = int(r)
			return true
		}
	})
	if perr != nil || closed {
		return 0, ErrClosed, true
	}
	// Payloads are copied out of the reused slots into one backing
	// buffer for the whole batch (the exact-capacity allocation keeps
	// the appends from moving it), and the address strings are interned
	// — a small stable set per socket, so the per-datagram decode makes
	// no allocations on the steady state.
	need := 0
	for i := 0; i < got; i++ {
		need += int(hdrs[i].Len)
	}
	arena := make([]byte, 0, need)
	n = 0
	for i := 0; i < got; i++ {
		dg, derr := u.decodeFrameInto(u.recvBufs[i][:hdrs[i].Len], &arena)
		if derr != nil {
			continue
		}
		buf[n] = dg
		n++
	}
	if n == 0 && got > 0 {
		// Every frame in the batch was malformed; report one receive
		// with no datagrams rather than blocking again, so callers see
		// progress (the loop path would have returned the decode error).
		return 0, fmt.Errorf("transport: bad frame batch"), true
	}
	return n, nil, true
}

// appendWireAddress appends the length-prefixed wire form of a without
// the intermediate allocation Address.Wire makes.
func appendWireAddress(b []byte, a principal.Address) []byte {
	b = append(b, byte(len(a)>>8), byte(len(a)))
	return append(b, a...)
}

// decodeFrame parses one wire frame (length-prefixed source and
// destination addresses, then payload) into an owned Datagram.
func decodeFrame(b []byte) (Datagram, error) {
	src, used, err := principal.DecodeAddress(b)
	if err != nil {
		return Datagram{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	b = b[used:]
	dst, used, err := principal.DecodeAddress(b)
	if err != nil {
		return Datagram{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	b = b[used:]
	payload := make([]byte, len(b))
	copy(payload, b)
	return Datagram{Source: src, Destination: dst, Payload: payload}, nil
}

// decodeFrameInto is decodeFrame for the batch path: the payload copy
// lands in the caller's batch arena and the addresses come from the
// socket's intern table. Caller holds recvMu.
func (u *UDPTransport) decodeFrameInto(b []byte, arena *[]byte) (Datagram, error) {
	src, used, err := u.internAddress(b)
	if err != nil {
		return Datagram{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	b = b[used:]
	dst, used, err := u.internAddress(b)
	if err != nil {
		return Datagram{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	b = b[used:]
	a := *arena
	off := len(a)
	a = append(a, b...)
	*arena = a
	return Datagram{Source: src, Destination: dst, Payload: a[off:len(a):len(a)]}, nil
}

// internAddress decodes one length-prefixed address, returning the
// socket's canonical string for it — a map hit costs no allocation.
// The table is capped so a flood of forged source addresses cannot
// grow it without bound. Caller holds recvMu.
func (u *UDPTransport) internAddress(b []byte) (principal.Address, int, error) {
	if len(b) < 2 {
		return "", 0, fmt.Errorf("truncated address length")
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) < 2+n {
		return "", 0, fmt.Errorf("truncated address body: need %d bytes, have %d", n, len(b)-2)
	}
	raw := b[2 : 2+n]
	// A map probe keyed by string(raw) does not allocate; only a miss
	// materialises the string.
	if a, ok := u.addrIntern[string(raw)]; ok {
		return a, 2 + n, nil
	}
	a := principal.Address(raw)
	if u.addrIntern == nil {
		u.addrIntern = make(map[string]principal.Address)
	}
	if len(u.addrIntern) < 1024 {
		u.addrIntern[string(a)] = a
	}
	return a, 2 + n, nil
}
