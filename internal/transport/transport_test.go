package transport

import (
	"bytes"
	"testing"
	"time"
)

func TestNetworkDelivery(t *testing.T) {
	ta, tb, _, err := Pair("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	want := Datagram{Source: "a", Destination: "b", Payload: []byte("hello")}
	if err := ta.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "a" || got.Destination != "b" || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestNetworkSourceDefaulting(t *testing.T) {
	ta, tb, _, _ := Pair("a", "b")
	ta.Send(Datagram{Destination: "b", Payload: []byte("x")})
	got, _ := tb.Receive()
	if got.Source != "a" {
		t.Fatalf("source = %q, want a", got.Source)
	}
}

func TestNetworkLoss(t *testing.T) {
	n := NewNetwork(Impairments{LossProb: 1.0})
	ta, _ := n.Attach("a", 0)
	n.Attach("b", 0)
	for i := 0; i < 10; i++ {
		ta.Send(Datagram{Destination: "b", Payload: []byte{byte(i)}})
	}
	s := n.Stats()
	if s.Lost != 10 || s.Delivered != 0 {
		t.Fatalf("stats = %+v, want 10 lost, 0 delivered", s)
	}
}

func TestNetworkDuplication(t *testing.T) {
	n := NewNetwork(Impairments{DupProb: 1.0})
	ta, _ := n.Attach("a", 0)
	tb, _ := n.Attach("b", 0)
	ta.Send(Datagram{Destination: "b", Payload: []byte("dup")})
	one, _ := tb.Receive()
	two, _ := tb.Receive()
	if !bytes.Equal(one.Payload, two.Payload) {
		t.Fatal("duplicate differs from original")
	}
	if n.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", n.Stats().Duplicated)
	}
}

func TestNetworkCorruption(t *testing.T) {
	n := NewNetwork(Impairments{CorruptProb: 1.0})
	ta, _ := n.Attach("a", 0)
	tb, _ := n.Attach("b", 0)
	orig := []byte("pristine payload")
	ta.Send(Datagram{Destination: "b", Payload: orig})
	got, _ := tb.Receive()
	if bytes.Equal(got.Payload, orig) {
		t.Fatal("payload not corrupted")
	}
	// Exactly one bit flipped.
	diff := 0
	for i := range orig {
		x := orig[i] ^ got.Payload[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want 1", diff)
	}
}

func TestNetworkReorder(t *testing.T) {
	n := NewNetwork(Impairments{ReorderProb: 0.5, Seed: 7})
	ta, _ := n.Attach("a", 0)
	tb, _ := n.Attach("b", 0)
	const count = 50
	for i := 0; i < count; i++ {
		ta.Send(Datagram{Destination: "b", Payload: []byte{byte(i)}})
	}
	n.Flush()
	seen := make(map[byte]bool)
	outOfOrder := false
	last := -1
	for i := 0; i < count; i++ {
		got, err := tb.Receive()
		if err != nil {
			t.Fatal(err)
		}
		v := got.Payload[0]
		if seen[v] {
			t.Fatalf("datagram %d delivered twice", v)
		}
		seen[v] = true
		if int(v) < last {
			outOfOrder = true
		}
		last = int(v)
	}
	if !outOfOrder {
		t.Fatal("no reordering observed with ReorderProb=0.5")
	}
}

func TestNetworkNoRouteAndOverflow(t *testing.T) {
	n := NewNetwork(Impairments{})
	ta, _ := n.Attach("a", 1)
	ta.Send(Datagram{Destination: "nowhere", Payload: nil})
	if n.Stats().NoRoute != 1 {
		t.Fatal("NoRoute not counted")
	}
	// Queue of length 1 at b: second datagram overflows.
	n.Attach("b", 1)
	ta.Send(Datagram{Destination: "b", Payload: []byte{1}})
	ta.Send(Datagram{Destination: "b", Payload: []byte{2}})
	if n.Stats().Overflow != 1 {
		t.Fatalf("Overflow = %d, want 1", n.Stats().Overflow)
	}
}

func TestCloseUnblocksReceive(t *testing.T) {
	n := NewNetwork(Impairments{})
	ta, _ := n.Attach("a", 0)
	done := make(chan error, 1)
	go func() {
		_, err := ta.Receive()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ta.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Receive returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Receive did not unblock on Close")
	}
	if err := ta.Send(Datagram{Destination: "b"}); err != ErrClosed {
		t.Fatalf("Send after Close returned %v, want ErrClosed", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	n := NewNetwork(Impairments{})
	n.Attach("a", 0)
	if _, err := n.Attach("a", 0); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := Datagram{Source: "a", Destination: "b", Payload: []byte{1, 2, 3}}
	c := d.Clone()
	c.Payload[0] = 99
	if d.Payload[0] != 1 {
		t.Fatal("Clone aliases payload")
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	ua, err := NewUDPTransport("alice", "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer ua.Close()
	ub, err := NewUDPTransport("bob", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ub.Close()
	ua.AddPeer("bob", ub.LocalAddr().String())
	ub.AddPeer("alice", ua.LocalAddr().String())

	want := []byte("over real UDP")
	if err := ua.Send(Datagram{Destination: "bob", Payload: want}); err != nil {
		t.Fatal(err)
	}
	got, err := ub.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "alice" || got.Destination != "bob" || !bytes.Equal(got.Payload, want) {
		t.Fatalf("got %+v", got)
	}
}

func TestUDPTransportLearnPeers(t *testing.T) {
	server, err := NewUDPTransport("server", "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer server.Close()
	client, err := NewUDPTransport("client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.AddPeer("server", server.LocalAddr().String())

	// Without learning, the server has no route back to an
	// unannounced client.
	if err := client.Send(Datagram{Destination: "server", Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Receive(); err != nil {
		t.Fatal(err)
	}
	if err := server.Send(Datagram{Destination: "client", Payload: []byte("yo")}); err == nil {
		t.Fatal("reply to unlearned client should fail without SetLearnPeers")
	}

	// With learning, one received frame teaches the reply route.
	server.SetLearnPeers(true)
	if err := client.Send(Datagram{Destination: "server", Payload: []byte("hi2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Receive(); err != nil {
		t.Fatal(err)
	}
	if err := server.Send(Datagram{Destination: "client", Payload: []byte("yo")}); err != nil {
		t.Fatalf("reply after learning: %v", err)
	}
	got, err := client.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "server" || !bytes.Equal(got.Payload, []byte("yo")) {
		t.Fatalf("learned-route reply = %+v", got)
	}
}

func TestUDPTransportNoPeer(t *testing.T) {
	ua, err := NewUDPTransport("alice", "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer ua.Close()
	if err := ua.Send(Datagram{Destination: "stranger"}); err == nil {
		t.Fatal("send to unmapped peer succeeded")
	}
}
