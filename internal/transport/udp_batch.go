package transport

import (
	"sync"
	"sync/atomic"

	"fbs/internal/principal"
)

// Batched UDP I/O. On Linux (amd64/arm64) SendBatch and ReceiveBatch
// drive the kernel's sendmmsg/recvmmsg, paying one syscall for a whole
// batch of datagrams; elsewhere — or when the fast path reports the
// socket shape it cannot handle — they degrade to a loop of the
// single-datagram calls with identical semantics. The framing is
// byte-for-byte the framing Send and Receive use, so a batched sender
// interoperates with a loop receiver and vice versa (the equivalence
// test in udp_batch_test.go pins this).

// SetPortableBatch forces the portable loop fallback even where mmsg is
// available, so tests can compare the two paths on one platform.
func (u *UDPTransport) SetPortableBatch(v bool) {
	if v {
		u.portable.Store(1)
	} else {
		u.portable.Store(0)
	}
}

// usePortable reports whether batch calls must take the loop fallback.
func (u *UDPTransport) usePortable() bool {
	return !mmsgAvailable || u.portable.Load() != 0 || u.mmsgBroken.Load() != 0
}

// SendBatch implements BatchConn over sendmmsg where available.
func (u *UDPTransport) SendBatch(dgs []Datagram) (int, error) {
	if !u.usePortable() {
		n, err, handled := u.sendBatchMmsg(dgs)
		if handled {
			return n, err
		}
		// The fast path could not represent this socket or peer set
		// (e.g. an IPv6 peer); remember and degrade permanently.
		u.mmsgBroken.Store(1)
	}
	for i := range dgs {
		if err := u.Send(dgs[i]); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// ReceiveBatch implements BatchConn over recvmmsg where available: it
// blocks for the first datagram, then returns whatever else the socket
// already holds, up to len(buf).
func (u *UDPTransport) ReceiveBatch(buf []Datagram) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	if !u.usePortable() {
		n, err, handled := u.recvBatchMmsg(buf)
		if handled {
			return n, err
		}
		u.mmsgBroken.Store(1)
	}
	dg, err := u.Receive()
	if err != nil {
		return 0, err
	}
	buf[0] = dg
	return 1, nil
}

// batchState is embedded in UDPTransport: the fallback switches plus
// the reusable per-socket batch scratch (recvmmsg slot buffers, the
// sendmmsg frame arena, and the receive-side address intern table).
// Batched sends and receives on one socket each serialise on their
// mutex, which matches how a sharded deployment drives one socket per
// shard.
type batchState struct {
	portable   atomic.Int32
	mmsgBroken atomic.Int32
	gsoBroken  atomic.Int32

	recvMu     sync.Mutex
	recvBufs   [][]byte
	addrIntern map[string]principal.Address

	sendMu    sync.Mutex
	sendArena []byte
}
