//go:build linux && amd64

package transport

// linux/amd64 syscall numbers. SYS_RECVMMSG is in the frozen syscall
// table; SYS_SENDMMSG predates the freeze cutoff on this architecture
// and must be spelled out.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
