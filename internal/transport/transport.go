// Package transport provides the underlying insecure datagram service
// that FBS runs on top of.
//
// The protocol description (Section 5.2) abstracts the transport into two
// functions, Send() and Receive(); this package defines that abstraction
// and two implementations: an in-memory network with configurable
// impairments (loss, duplication, reordering, corruption, delay) for
// simulations and tests, and a UDP-backed transport for running FBS
// between real processes.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"fbs/internal/cryptolib"
	"fbs/internal/principal"
)

// TraceID identifies one sampled datagram's end-to-end trace. Zero
// means "not traced" — the universal fast-path value that every layer
// checks with a single compare. IDs are allocated by whatever tracer
// the sealing endpoint has attached (see core.Tracer) and ride the
// Datagram as metadata so the receiving endpoint, the in-memory
// networks, and the chaos link models can attribute their spans to the
// same trace.
type TraceID uint64

// Datagram is a self-contained message between two principals. FBS treats
// the payload as opaque; in the IP mapping the payload is the IP payload
// with the FBS header prepended.
type Datagram struct {
	Source      principal.Address
	Destination principal.Address
	Payload     []byte

	// Trace carries the sampled-trace ID across in-memory transports.
	// It is metadata, not wire bytes: the serialized formats (golden
	// vectors, the UDP transport) are unchanged, so traces span both
	// endpoints only on transports that preserve the Datagram struct.
	Trace TraceID
}

// Clone deep-copies the datagram so impairments and queueing cannot alias
// caller buffers. Metadata (including the trace ID) is preserved.
func (d Datagram) Clone() Datagram {
	p := make([]byte, len(d.Payload))
	copy(p, d.Payload)
	d.Payload = p
	return d
}

// ErrClosed is returned by Receive and Send once the transport endpoint
// has been closed.
var ErrClosed = errors.New("transport: closed")

// Transport is one principal's attachment to a datagram service.
type Transport interface {
	// Send transmits the datagram. Delivery is best-effort: the datagram
	// may be lost, duplicated, reordered or corrupted in transit.
	Send(dg Datagram) error
	// Receive blocks until a datagram arrives or the endpoint is closed.
	Receive() (Datagram, error)
	// Close detaches the endpoint. Pending and future Receives return
	// ErrClosed.
	Close() error
}

// Impairments configures the fault model of the in-memory Network. All
// probabilities are in [0, 1].
type Impairments struct {
	LossProb    float64 // drop the datagram
	DupProb     float64 // deliver the datagram twice
	ReorderProb float64 // hold the datagram back one slot
	CorruptProb float64 // flip one random payload bit
	Seed        uint64  // RNG seed; 0 means a fixed default
}

// Network is an in-memory datagram service connecting any number of
// principals. It is safe for concurrent use.
type Network struct {
	impair Impairments

	mu       sync.Mutex
	rng      *cryptolib.LCG
	ports    map[principal.Address]*netPort
	heldBack *Datagram // reorder holdback slot
	stats    NetworkStats
}

// NetworkStats counts what the fault model did.
type NetworkStats struct {
	Sent       uint64
	Delivered  uint64
	Lost       uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
	NoRoute    uint64
	Overflow   uint64
}

type netPort struct {
	ch     chan Datagram
	closed chan struct{}
	once   sync.Once
	net    *Network
	addr   principal.Address
}

// NewNetwork creates an in-memory datagram network with the given fault
// model.
func NewNetwork(impair Impairments) *Network {
	seed := impair.Seed
	if seed == 0 {
		seed = 0xFB5FB5FB5
	}
	return &Network{
		impair: impair,
		rng:    cryptolib.NewLCGSeeded(seed),
		ports:  make(map[principal.Address]*netPort),
	}
}

// Attach connects a principal to the network and returns its endpoint.
// The queue holds up to queueLen datagrams; further arrivals are dropped
// (counted as Overflow), matching real datagram services.
func (n *Network) Attach(addr principal.Address, queueLen int) (Transport, error) {
	if queueLen <= 0 {
		queueLen = 256
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.ports[addr]; dup {
		return nil, fmt.Errorf("transport: %q already attached", addr)
	}
	p := &netPort{
		ch:     make(chan Datagram, queueLen),
		closed: make(chan struct{}),
		net:    n,
		addr:   addr,
	}
	n.ports[addr] = p
	return p, nil
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() NetworkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// chance draws a Bernoulli trial with the RNG held under n.mu.
func (n *Network) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(n.rng.Uint32())/float64(1<<32) < p
}

// inject applies the fault model and enqueues the datagram at its
// destination. Callers must not hold n.mu.
func (n *Network) inject(dg Datagram) {
	n.mu.Lock()
	n.injectLocked(dg)
	n.mu.Unlock()
}

// injectLocked is inject's body with n.mu already held, so a batched
// send pays one lock acquisition for the whole batch (see
// netPort.SendBatch) while the fault model still draws per datagram in
// order — batch and loop sends produce identical delivery sequences.
func (n *Network) injectLocked(dg Datagram) {
	n.stats.Sent++
	if n.chance(n.impair.LossProb) {
		n.stats.Lost++
		return
	}
	dg = dg.Clone()
	if n.chance(n.impair.CorruptProb) && len(dg.Payload) > 0 {
		bit := n.rng.Uint32()
		dg.Payload[int(bit)%len(dg.Payload)] ^= 1 << (bit >> 29)
		n.stats.Corrupted++
	}
	toDeliver := make([]Datagram, 0, 3)
	if n.chance(n.impair.ReorderProb) {
		// Hold this one back; release any previously held datagram
		// after it next time around.
		if n.heldBack != nil {
			toDeliver = append(toDeliver, *n.heldBack)
		}
		held := dg
		n.heldBack = &held
		n.stats.Reordered++
	} else {
		toDeliver = append(toDeliver, dg)
		if n.heldBack != nil {
			toDeliver = append(toDeliver, *n.heldBack)
			n.heldBack = nil
		}
	}
	if n.chance(n.impair.DupProb) && len(toDeliver) > 0 {
		toDeliver = append(toDeliver, toDeliver[0].Clone())
		n.stats.Duplicated++
	}
	for _, d := range toDeliver {
		port, ok := n.ports[d.Destination]
		if !ok {
			n.stats.NoRoute++
			continue
		}
		select {
		case port.ch <- d:
			n.stats.Delivered++
		default:
			n.stats.Overflow++
		}
	}
}

// Flush delivers any datagram sitting in the reorder holdback slot.
func (n *Network) Flush() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.heldBack == nil {
		return
	}
	d := *n.heldBack
	n.heldBack = nil
	if port, ok := n.ports[d.Destination]; ok {
		select {
		case port.ch <- d:
			n.stats.Delivered++
		default:
			n.stats.Overflow++
		}
	}
}

func (p *netPort) Send(dg Datagram) error {
	select {
	case <-p.closed:
		return ErrClosed
	default:
	}
	if dg.Source == "" {
		dg.Source = p.addr
	}
	p.net.inject(dg)
	return nil
}

func (p *netPort) Receive() (Datagram, error) {
	select {
	case dg := <-p.ch:
		return dg, nil
	case <-p.closed:
		// Drain anything that raced with Close.
		select {
		case dg := <-p.ch:
			return dg, nil
		default:
			return Datagram{}, ErrClosed
		}
	}
}

func (p *netPort) Close() error {
	p.once.Do(func() {
		close(p.closed)
		p.net.mu.Lock()
		delete(p.net.ports, p.addr)
		p.net.mu.Unlock()
	})
	return nil
}

// Pair is a convenience constructor: a loss-free network with two
// attached principals, as used throughout the tests and examples.
func Pair(a, b principal.Address) (Transport, Transport, *Network, error) {
	n := NewNetwork(Impairments{})
	ta, err := n.Attach(a, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	tb, err := n.Attach(b, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	return ta, tb, n, nil
}
