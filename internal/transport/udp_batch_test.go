package transport

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// udpPair binds two loopback UDP transports mapped at each other.
func udpPair(t *testing.T) (*UDPTransport, *UDPTransport) {
	t.Helper()
	a, err := NewUDPTransport("ua", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewUDPTransport("ub", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer("ub", b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("ua", a.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// collect receives exactly want datagrams via ReceiveBatch, with a
// deadline so a lost-datagram bug fails instead of hanging.
func collect(t *testing.T, tr Transport, want int) []Datagram {
	t.Helper()
	out := make([]Datagram, 0, want)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]Datagram, 16)
		for len(out) < want {
			n, err := ReceiveBatch(tr, buf)
			if err != nil {
				t.Errorf("ReceiveBatch: %v", err)
				return
			}
			out = append(out, buf[:n]...)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out with %d/%d datagrams", len(out), want)
	}
	return out
}

// deliverySet canonicalises a batch of datagrams for multiset
// comparison (UDP may reorder even on loopback).
func deliverySet(dgs []Datagram) []string {
	out := make([]string, len(dgs))
	for i, dg := range dgs {
		out[i] = fmt.Sprintf("%s->%s:%x", dg.Source, dg.Destination, dg.Payload)
	}
	sort.Strings(out)
	return out
}

// TestUDPBatchFallbackEquivalence pins the BatchConn contract: the mmsg
// fast path and the portable loop fallback produce identical delivery
// sets for the same send sequence, in every pairing (mmsg→mmsg,
// mmsg→loop, loop→mmsg, loop→loop). On platforms without mmsg all four
// cases exercise the loop, and the test still verifies batch calls
// round-trip.
func TestUDPBatchFallbackEquivalence(t *testing.T) {
	const N = 50
	mkBatch := func() []Datagram {
		dgs := make([]Datagram, N)
		for i := range dgs {
			dgs[i] = Datagram{
				Source:      "ua",
				Destination: "ub",
				Payload:     []byte(fmt.Sprintf("dg-%03d", i)),
			}
		}
		return dgs
	}
	var sets [][]string
	for _, mode := range []struct {
		name               string
		sendPort, recvPort bool
	}{
		{"mmsg-to-mmsg", false, false},
		{"mmsg-to-loop", false, true},
		{"loop-to-mmsg", true, false},
		{"loop-to-loop", true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			a, b := udpPair(t)
			a.SetPortableBatch(mode.sendPort)
			b.SetPortableBatch(mode.recvPort)
			dgs := mkBatch()
			sent, err := SendBatch(a, dgs)
			if err != nil {
				t.Fatal(err)
			}
			if sent != N {
				t.Fatalf("sent %d of %d", sent, N)
			}
			got := collect(t, b, N)
			sets = append(sets, deliverySet(got))
		})
	}
	for i := 1; i < len(sets); i++ {
		if len(sets[i]) != len(sets[0]) {
			t.Fatalf("mode %d delivered %d datagrams, mode 0 delivered %d", i, len(sets[i]), len(sets[0]))
		}
		for j := range sets[i] {
			if sets[i][j] != sets[0][j] {
				t.Fatalf("mode %d delivery set diverges at %d: %q vs %q", i, j, sets[i][j], sets[0][j])
			}
		}
	}
}

// TestNetworkBatchMatchesLoop pins the in-memory network's batched
// sends against a loop of single sends under an impaired fault model:
// the RNG draws per datagram in order either way, so with the same seed
// the two delivery sequences are identical.
func TestNetworkBatchMatchesLoop(t *testing.T) {
	imp := Impairments{LossProb: 0.2, DupProb: 0.1, ReorderProb: 0.15, CorruptProb: 0.1, Seed: 42}
	run := func(batch bool) ([]Datagram, NetworkStats) {
		n := NewNetwork(imp)
		sender, err := n.Attach("s", 512)
		if err != nil {
			t.Fatal(err)
		}
		recv, err := n.Attach("r", 512)
		if err != nil {
			t.Fatal(err)
		}
		const N = 100
		dgs := make([]Datagram, N)
		for i := range dgs {
			dgs[i] = Datagram{Source: "s", Destination: "r", Payload: []byte{byte(i), byte(i >> 8)}}
		}
		if batch {
			if sent, err := SendBatch(sender, dgs); err != nil || sent != N {
				t.Fatalf("SendBatch = %d, %v", sent, err)
			}
		} else {
			for i := range dgs {
				if err := sender.Send(dgs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Flush()
		var out []Datagram
		buf := make([]Datagram, 32)
		for {
			got, err := ReceiveBatch(recv, buf)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, buf[:got]...)
			if len(recv.(*netPort).ch) == 0 {
				break
			}
		}
		return out, n.Stats()
	}
	loopOut, loopStats := run(false)
	batchOut, batchStats := run(true)
	if loopStats != batchStats {
		t.Fatalf("fault-model stats diverged:\nloop  %+v\nbatch %+v", loopStats, batchStats)
	}
	if len(loopOut) != len(batchOut) {
		t.Fatalf("delivered %d via loop, %d via batch", len(loopOut), len(batchOut))
	}
	for i := range loopOut {
		if loopOut[i].Source != batchOut[i].Source || string(loopOut[i].Payload) != string(batchOut[i].Payload) {
			t.Fatalf("delivery %d diverges: %v vs %v", i, loopOut[i], batchOut[i])
		}
	}
}
