package cryptolib

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ChaCha20-Poly1305 AEAD per RFC 8439, implemented from scratch on the
// same zero-dependency terms as the rest of cryptolib. The construction
// collapses the paper's separate encrypt and MAC passes into a single
// sealed box: a ChaCha20 keystream encrypts the payload and a one-time
// Poly1305 key (derived from block counter zero) authenticates the AAD
// and ciphertext together. The data-plane suites use it for the modern
// non-NIST cipher option; the refmodel shares only this primitive and
// reassembles nonce/AAD framing independently.

// ChaCha20Poly1305 sizes.
const (
	ChaChaKeySize   = 32
	ChaChaNonceSize = 12
	Poly1305TagSize = 16
)

// ErrAEADOpen is returned when AEAD authentication fails.
var ErrAEADOpen = errors.New("cryptolib: chacha20poly1305 authentication failed")

// ChaCha20Poly1305 is an AEAD instance bound to one 256-bit key. Its
// Seal/Open follow crypto/cipher.AEAD append semantics, including the
// documented in-place forms Seal(pt[:0], ...) and Open(ct[:0], ...).
type ChaCha20Poly1305 struct {
	key [8]uint32
}

// NewChaCha20Poly1305 builds an AEAD from a 32-byte key.
func NewChaCha20Poly1305(key []byte) (*ChaCha20Poly1305, error) {
	if len(key) != ChaChaKeySize {
		return nil, fmt.Errorf("cryptolib: chacha20poly1305 key must be %d bytes, got %d", ChaChaKeySize, len(key))
	}
	a := &ChaCha20Poly1305{}
	for i := range a.key {
		a.key[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	return a, nil
}

// NonceSize returns the RFC 8439 nonce length.
func (*ChaCha20Poly1305) NonceSize() int { return ChaChaNonceSize }

// Overhead returns the tag length appended by Seal.
func (*ChaCha20Poly1305) Overhead() int { return Poly1305TagSize }

// Seal encrypts and authenticates plaintext with additionalData bound
// into the tag, appending ciphertext||tag to dst. The nonce must be
// unique per key. plaintext and the appended region may overlap exactly
// (dst = plaintext[:0]).
func (a *ChaCha20Poly1305) Seal(dst, nonce, plaintext, additionalData []byte) []byte {
	if len(nonce) != ChaChaNonceSize {
		panic("cryptolib: chacha20poly1305 nonce must be 12 bytes")
	}
	var n [3]uint32
	n[0] = binary.LittleEndian.Uint32(nonce[0:])
	n[1] = binary.LittleEndian.Uint32(nonce[4:])
	n[2] = binary.LittleEndian.Uint32(nonce[8:])

	ret, out := aeadSliceForAppend(dst, len(plaintext)+Poly1305TagSize)
	ct := out[:len(plaintext)]
	chachaXORStream(&a.key, &n, 1, ct, plaintext)

	var otk [32]byte
	polyOneTimeKey(&a.key, &n, &otk)
	tag := polyAEADTag(&otk, additionalData, ct)
	copy(out[len(plaintext):], tag[:])
	return ret
}

// Open authenticates ciphertext (which must end in the 16-byte tag) and
// additionalData, then decrypts, appending the plaintext to dst. The
// ciphertext and the appended region may overlap exactly (dst = ct[:0]).
func (a *ChaCha20Poly1305) Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error) {
	if len(nonce) != ChaChaNonceSize {
		panic("cryptolib: chacha20poly1305 nonce must be 12 bytes")
	}
	if len(ciphertext) < Poly1305TagSize {
		return nil, ErrAEADOpen
	}
	var n [3]uint32
	n[0] = binary.LittleEndian.Uint32(nonce[0:])
	n[1] = binary.LittleEndian.Uint32(nonce[4:])
	n[2] = binary.LittleEndian.Uint32(nonce[8:])

	body := ciphertext[:len(ciphertext)-Poly1305TagSize]
	got := ciphertext[len(ciphertext)-Poly1305TagSize:]

	var otk [32]byte
	polyOneTimeKey(&a.key, &n, &otk)
	want := polyAEADTag(&otk, additionalData, body)
	if subtle.ConstantTimeCompare(want[:], got) != 1 {
		return nil, ErrAEADOpen
	}

	ret, out := aeadSliceForAppend(dst, len(body))
	chachaXORStream(&a.key, &n, 1, out, body)
	return ret, nil
}

// aeadSliceForAppend grows in (reusing capacity where possible) and
// returns the extended slice plus the freshly appended region — the
// standard crypto/cipher helper shape that makes in-place use work.
func aeadSliceForAppend(in []byte, n int) (head, tail []byte) {
	total := len(in) + n
	if cap(in) >= total {
		head = in[:total]
	} else {
		head = make([]byte, total)
		copy(head, in)
	}
	tail = head[len(in):]
	return
}

// --- ChaCha20 block function (RFC 8439 section 2.3) ---

const (
	chachaC0 = 0x61707865 // "expa"
	chachaC1 = 0x3320646e // "nd 3"
	chachaC2 = 0x79622d32 // "2-by"
	chachaC3 = 0x6b206574 // "te k"
)

func rotl32(v uint32, n uint) uint32 { return v<<n | v>>(32-n) }

// chachaBlock computes one 64-byte keystream block into out.
func chachaBlock(key *[8]uint32, nonce *[3]uint32, counter uint32, out *[64]byte) {
	s0, s1, s2, s3 := uint32(chachaC0), uint32(chachaC1), uint32(chachaC2), uint32(chachaC3)
	s4, s5, s6, s7 := key[0], key[1], key[2], key[3]
	s8, s9, s10, s11 := key[4], key[5], key[6], key[7]
	s12, s13, s14, s15 := counter, nonce[0], nonce[1], nonce[2]

	x0, x1, x2, x3 := s0, s1, s2, s3
	x4, x5, x6, x7 := s4, s5, s6, s7
	x8, x9, x10, x11 := s8, s9, s10, s11
	x12, x13, x14, x15 := s12, s13, s14, s15

	for i := 0; i < 10; i++ {
		// column rounds
		x0 += x4
		x12 = rotl32(x12^x0, 16)
		x8 += x12
		x4 = rotl32(x4^x8, 12)
		x0 += x4
		x12 = rotl32(x12^x0, 8)
		x8 += x12
		x4 = rotl32(x4^x8, 7)

		x1 += x5
		x13 = rotl32(x13^x1, 16)
		x9 += x13
		x5 = rotl32(x5^x9, 12)
		x1 += x5
		x13 = rotl32(x13^x1, 8)
		x9 += x13
		x5 = rotl32(x5^x9, 7)

		x2 += x6
		x14 = rotl32(x14^x2, 16)
		x10 += x14
		x6 = rotl32(x6^x10, 12)
		x2 += x6
		x14 = rotl32(x14^x2, 8)
		x10 += x14
		x6 = rotl32(x6^x10, 7)

		x3 += x7
		x15 = rotl32(x15^x3, 16)
		x11 += x15
		x7 = rotl32(x7^x11, 12)
		x3 += x7
		x15 = rotl32(x15^x3, 8)
		x11 += x15
		x7 = rotl32(x7^x11, 7)

		// diagonal rounds
		x0 += x5
		x15 = rotl32(x15^x0, 16)
		x10 += x15
		x5 = rotl32(x5^x10, 12)
		x0 += x5
		x15 = rotl32(x15^x0, 8)
		x10 += x15
		x5 = rotl32(x5^x10, 7)

		x1 += x6
		x12 = rotl32(x12^x1, 16)
		x11 += x12
		x6 = rotl32(x6^x11, 12)
		x1 += x6
		x12 = rotl32(x12^x1, 8)
		x11 += x12
		x6 = rotl32(x6^x11, 7)

		x2 += x7
		x13 = rotl32(x13^x2, 16)
		x8 += x13
		x7 = rotl32(x7^x8, 12)
		x2 += x7
		x13 = rotl32(x13^x2, 8)
		x8 += x13
		x7 = rotl32(x7^x8, 7)

		x3 += x4
		x14 = rotl32(x14^x3, 16)
		x9 += x14
		x4 = rotl32(x4^x9, 12)
		x3 += x4
		x14 = rotl32(x14^x3, 8)
		x9 += x14
		x4 = rotl32(x4^x9, 7)
	}

	binary.LittleEndian.PutUint32(out[0:], x0+s0)
	binary.LittleEndian.PutUint32(out[4:], x1+s1)
	binary.LittleEndian.PutUint32(out[8:], x2+s2)
	binary.LittleEndian.PutUint32(out[12:], x3+s3)
	binary.LittleEndian.PutUint32(out[16:], x4+s4)
	binary.LittleEndian.PutUint32(out[20:], x5+s5)
	binary.LittleEndian.PutUint32(out[24:], x6+s6)
	binary.LittleEndian.PutUint32(out[28:], x7+s7)
	binary.LittleEndian.PutUint32(out[32:], x8+s8)
	binary.LittleEndian.PutUint32(out[36:], x9+s9)
	binary.LittleEndian.PutUint32(out[40:], x10+s10)
	binary.LittleEndian.PutUint32(out[44:], x11+s11)
	binary.LittleEndian.PutUint32(out[48:], x12+s12)
	binary.LittleEndian.PutUint32(out[52:], x13+s13)
	binary.LittleEndian.PutUint32(out[56:], x14+s14)
	binary.LittleEndian.PutUint32(out[60:], x15+s15)
}

// chachaXORStream XORs src with the keystream starting at the given
// block counter, writing into dst (dst and src may be the same slice).
func chachaXORStream(key *[8]uint32, nonce *[3]uint32, counter uint32, dst, src []byte) {
	var block [64]byte
	for len(src) > 0 {
		chachaBlock(key, nonce, counter, &block)
		counter++
		n := len(src)
		if n > 64 {
			n = 64
		}
		i := 0
		for ; i+8 <= n; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				binary.LittleEndian.Uint64(src[i:])^binary.LittleEndian.Uint64(block[i:]))
		}
		for ; i < n; i++ {
			dst[i] = src[i] ^ block[i]
		}
		src = src[n:]
		dst = dst[n:]
	}
}

// polyOneTimeKey derives the Poly1305 one-time key from ChaCha20 block
// counter zero (RFC 8439 section 2.6).
func polyOneTimeKey(key *[8]uint32, nonce *[3]uint32, otk *[32]byte) {
	var block [64]byte
	chachaBlock(key, nonce, 0, &block)
	copy(otk[:], block[:32])
}

// --- Poly1305 (RFC 8439 section 2.5), 64-bit limb implementation ---
//
// The accumulator is three 64-bit limbs (h2 carries only the bits above
// 2^128) and the clamped key is two. Clamping zeroes the top nibble of
// every r-word, so each 130×124-bit product fits in 256 bits and the
// partial reduction below (fold t>>130 back in multiplied by 5) keeps
// h2 within a few bits — small enough that h2·r never overflows a
// single 64-bit multiply. Two wide multiplies per block instead of the
// 25 scalar multiplies of the classic 26-bit limb schedule: this MAC
// runs per datagram on the data plane, so the block loop is hot.

type poly1305 struct {
	r    [2]uint64 // clamped key
	h    [3]uint64 // accumulator
	pad  [2]uint64 // final addition, little-endian s
	buf  [16]byte
	bufn int
}

// init loads and clamps the one-time key. The zero value plus init is
// the whole constructor, so callers keep the state on their stack — the
// tag helpers run once per datagram and must not allocate.
func (p *poly1305) init(key *[32]byte) {
	p.r[0] = binary.LittleEndian.Uint64(key[0:]) & 0x0ffffffc0fffffff
	p.r[1] = binary.LittleEndian.Uint64(key[8:]) & 0x0ffffffc0ffffffc
	p.pad[0] = binary.LittleEndian.Uint64(key[16:])
	p.pad[1] = binary.LittleEndian.Uint64(key[24:])
}

// blocks absorbs full 16-byte blocks; final marks the 1-bit as beyond a
// short trailing block instead of bit 128.
func (p *poly1305) blocks(m []byte, partialHibit bool) {
	h0, h1, h2 := p.h[0], p.h[1], p.h[2]
	r0, r1 := p.r[0], p.r[1]

	for len(m) >= 16 {
		var c uint64
		h0, c = bits.Add64(h0, binary.LittleEndian.Uint64(m[0:]), 0)
		h1, c = bits.Add64(h1, binary.LittleEndian.Uint64(m[8:]), c)
		h2 += c
		if !partialHibit {
			h2++
		}

		// t = h * r, a 130×124-bit product accumulated into four words.
		h0r0hi, h0r0lo := bits.Mul64(h0, r0)
		h1r0hi, h1r0lo := bits.Mul64(h1, r0)
		h0r1hi, h0r1lo := bits.Mul64(h0, r1)
		h1r1hi, h1r1lo := bits.Mul64(h1, r1)
		h2r0 := h2 * r0 // h2 and the clamped r keep these in one word
		h2r1 := h2 * r1

		m1lo, cx := bits.Add64(h1r0lo, h0r1lo, 0)
		m1hi, _ := bits.Add64(h1r0hi, h0r1hi, cx)
		m2lo, cx := bits.Add64(h2r0, h1r1lo, 0)
		m2hi, _ := bits.Add64(0, h1r1hi, cx)

		t0 := h0r0lo
		t1, c := bits.Add64(m1lo, h0r0hi, 0)
		t2, c := bits.Add64(m2lo, m1hi, c)
		t3, _ := bits.Add64(h2r1, m2hi, c)

		// Reduce mod 2^130 - 5: h = (t mod 2^130) + 5·(t >> 130), added
		// as cc + cc>>2 where cc is t with the low 130 bits cleared.
		h0, h1, h2 = t0, t1, t2&3
		cclo, cchi := t2&^uint64(3), t3
		h0, c = bits.Add64(h0, cclo, 0)
		h1, c = bits.Add64(h1, cchi, c)
		h2 += c
		cclo, cchi = cclo>>2|cchi<<62, cchi>>2
		h0, c = bits.Add64(h0, cclo, 0)
		h1, c = bits.Add64(h1, cchi, c)
		h2 += c

		m = m[16:]
	}

	p.h[0], p.h[1], p.h[2] = h0, h1, h2
}

func (p *poly1305) update(m []byte) {
	if p.bufn > 0 {
		n := copy(p.buf[p.bufn:], m)
		p.bufn += n
		m = m[n:]
		if p.bufn < 16 {
			return
		}
		p.blocks(p.buf[:], false)
		p.bufn = 0
	}
	if full := len(m) &^ 15; full > 0 {
		p.blocks(m[:full], false)
		m = m[full:]
	}
	if len(m) > 0 {
		p.bufn = copy(p.buf[:], m)
	}
}

func (p *poly1305) sum(tag *[16]byte) {
	if p.bufn > 0 {
		var last [16]byte
		copy(last[:], p.buf[:p.bufn])
		last[p.bufn] = 1
		p.blocks(last[:], true)
		p.bufn = 0
	}

	h0, h1, h2 := p.h[0], p.h[1], p.h[2]

	// The block reduction keeps h < 2·(2^130 - 5), so one conditional
	// subtraction of p = 2^130 - 5 completes the modulus: compute h - p
	// and keep it unless the subtraction borrowed (constant time).
	t0, b := bits.Sub64(h0, 0xfffffffffffffffb, 0)
	t1, b := bits.Sub64(h1, 0xffffffffffffffff, b)
	_, b = bits.Sub64(h2, 3, b)
	mask := b - 1 // all-ones when no borrow (h >= p)
	h0 = h0&^mask | t0&mask
	h1 = h1&^mask | t1&mask

	// tag = (h + pad) mod 2^128
	var c uint64
	h0, c = bits.Add64(h0, p.pad[0], 0)
	h1, _ = bits.Add64(h1, p.pad[1], c)

	binary.LittleEndian.PutUint64(tag[0:], h0)
	binary.LittleEndian.PutUint64(tag[8:], h1)
}

// Poly1305Tag computes the one-shot Poly1305 MAC of msg under key.
// Exposed for vector tests; the AEAD path uses polyAEADTag.
func Poly1305Tag(key *[32]byte, msg []byte) [16]byte {
	var p poly1305
	p.init(key)
	p.update(msg)
	var tag [16]byte
	p.sum(&tag)
	return tag
}

var polyZeroPad [16]byte

// polyAEADTag evaluates the RFC 8439 AEAD MAC layout:
// aad || pad16 || ct || pad16 || le64(len aad) || le64(len ct).
func polyAEADTag(otk *[32]byte, aad, ct []byte) [16]byte {
	var p poly1305
	p.init(otk)
	p.update(aad)
	if rem := len(aad) % 16; rem != 0 {
		p.update(polyZeroPad[:16-rem])
	}
	p.update(ct)
	if rem := len(ct) % 16; rem != 0 {
		p.update(polyZeroPad[:16-rem])
	}
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lens[8:], uint64(len(ct)))
	p.update(lens[:])
	var tag [16]byte
	p.sum(&tag)
	return tag
}
