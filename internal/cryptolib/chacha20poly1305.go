package cryptolib

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// ChaCha20-Poly1305 AEAD per RFC 8439, implemented from scratch on the
// same zero-dependency terms as the rest of cryptolib. The construction
// collapses the paper's separate encrypt and MAC passes into a single
// sealed box: a ChaCha20 keystream encrypts the payload and a one-time
// Poly1305 key (derived from block counter zero) authenticates the AAD
// and ciphertext together. The data-plane suites use it for the modern
// non-NIST cipher option; the refmodel shares only this primitive and
// reassembles nonce/AAD framing independently.

// ChaCha20Poly1305 sizes.
const (
	ChaChaKeySize   = 32
	ChaChaNonceSize = 12
	Poly1305TagSize = 16
)

// ErrAEADOpen is returned when AEAD authentication fails.
var ErrAEADOpen = errors.New("cryptolib: chacha20poly1305 authentication failed")

// ChaCha20Poly1305 is an AEAD instance bound to one 256-bit key. Its
// Seal/Open follow crypto/cipher.AEAD append semantics, including the
// documented in-place forms Seal(pt[:0], ...) and Open(ct[:0], ...).
type ChaCha20Poly1305 struct {
	key [8]uint32
}

// NewChaCha20Poly1305 builds an AEAD from a 32-byte key.
func NewChaCha20Poly1305(key []byte) (*ChaCha20Poly1305, error) {
	if len(key) != ChaChaKeySize {
		return nil, fmt.Errorf("cryptolib: chacha20poly1305 key must be %d bytes, got %d", ChaChaKeySize, len(key))
	}
	a := &ChaCha20Poly1305{}
	for i := range a.key {
		a.key[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	return a, nil
}

// NonceSize returns the RFC 8439 nonce length.
func (*ChaCha20Poly1305) NonceSize() int { return ChaChaNonceSize }

// Overhead returns the tag length appended by Seal.
func (*ChaCha20Poly1305) Overhead() int { return Poly1305TagSize }

// Seal encrypts and authenticates plaintext with additionalData bound
// into the tag, appending ciphertext||tag to dst. The nonce must be
// unique per key. plaintext and the appended region may overlap exactly
// (dst = plaintext[:0]).
func (a *ChaCha20Poly1305) Seal(dst, nonce, plaintext, additionalData []byte) []byte {
	if len(nonce) != ChaChaNonceSize {
		panic("cryptolib: chacha20poly1305 nonce must be 12 bytes")
	}
	var n [3]uint32
	n[0] = binary.LittleEndian.Uint32(nonce[0:])
	n[1] = binary.LittleEndian.Uint32(nonce[4:])
	n[2] = binary.LittleEndian.Uint32(nonce[8:])

	ret, out := aeadSliceForAppend(dst, len(plaintext)+Poly1305TagSize)
	ct := out[:len(plaintext)]
	chachaXORStream(&a.key, &n, 1, ct, plaintext)

	var otk [32]byte
	polyOneTimeKey(&a.key, &n, &otk)
	tag := polyAEADTag(&otk, additionalData, ct)
	copy(out[len(plaintext):], tag[:])
	return ret
}

// Open authenticates ciphertext (which must end in the 16-byte tag) and
// additionalData, then decrypts, appending the plaintext to dst. The
// ciphertext and the appended region may overlap exactly (dst = ct[:0]).
func (a *ChaCha20Poly1305) Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error) {
	if len(nonce) != ChaChaNonceSize {
		panic("cryptolib: chacha20poly1305 nonce must be 12 bytes")
	}
	if len(ciphertext) < Poly1305TagSize {
		return nil, ErrAEADOpen
	}
	var n [3]uint32
	n[0] = binary.LittleEndian.Uint32(nonce[0:])
	n[1] = binary.LittleEndian.Uint32(nonce[4:])
	n[2] = binary.LittleEndian.Uint32(nonce[8:])

	body := ciphertext[:len(ciphertext)-Poly1305TagSize]
	got := ciphertext[len(ciphertext)-Poly1305TagSize:]

	var otk [32]byte
	polyOneTimeKey(&a.key, &n, &otk)
	want := polyAEADTag(&otk, additionalData, body)
	if subtle.ConstantTimeCompare(want[:], got) != 1 {
		return nil, ErrAEADOpen
	}

	ret, out := aeadSliceForAppend(dst, len(body))
	chachaXORStream(&a.key, &n, 1, out, body)
	return ret, nil
}

// aeadSliceForAppend grows in (reusing capacity where possible) and
// returns the extended slice plus the freshly appended region — the
// standard crypto/cipher helper shape that makes in-place use work.
func aeadSliceForAppend(in []byte, n int) (head, tail []byte) {
	total := len(in) + n
	if cap(in) >= total {
		head = in[:total]
	} else {
		head = make([]byte, total)
		copy(head, in)
	}
	tail = head[len(in):]
	return
}

// --- ChaCha20 block function (RFC 8439 section 2.3) ---

const (
	chachaC0 = 0x61707865 // "expa"
	chachaC1 = 0x3320646e // "nd 3"
	chachaC2 = 0x79622d32 // "2-by"
	chachaC3 = 0x6b206574 // "te k"
)

func rotl32(v uint32, n uint) uint32 { return v<<n | v>>(32-n) }

// chachaBlock computes one 64-byte keystream block into out.
func chachaBlock(key *[8]uint32, nonce *[3]uint32, counter uint32, out *[64]byte) {
	s0, s1, s2, s3 := uint32(chachaC0), uint32(chachaC1), uint32(chachaC2), uint32(chachaC3)
	s4, s5, s6, s7 := key[0], key[1], key[2], key[3]
	s8, s9, s10, s11 := key[4], key[5], key[6], key[7]
	s12, s13, s14, s15 := counter, nonce[0], nonce[1], nonce[2]

	x0, x1, x2, x3 := s0, s1, s2, s3
	x4, x5, x6, x7 := s4, s5, s6, s7
	x8, x9, x10, x11 := s8, s9, s10, s11
	x12, x13, x14, x15 := s12, s13, s14, s15

	for i := 0; i < 10; i++ {
		// column rounds
		x0 += x4
		x12 = rotl32(x12^x0, 16)
		x8 += x12
		x4 = rotl32(x4^x8, 12)
		x0 += x4
		x12 = rotl32(x12^x0, 8)
		x8 += x12
		x4 = rotl32(x4^x8, 7)

		x1 += x5
		x13 = rotl32(x13^x1, 16)
		x9 += x13
		x5 = rotl32(x5^x9, 12)
		x1 += x5
		x13 = rotl32(x13^x1, 8)
		x9 += x13
		x5 = rotl32(x5^x9, 7)

		x2 += x6
		x14 = rotl32(x14^x2, 16)
		x10 += x14
		x6 = rotl32(x6^x10, 12)
		x2 += x6
		x14 = rotl32(x14^x2, 8)
		x10 += x14
		x6 = rotl32(x6^x10, 7)

		x3 += x7
		x15 = rotl32(x15^x3, 16)
		x11 += x15
		x7 = rotl32(x7^x11, 12)
		x3 += x7
		x15 = rotl32(x15^x3, 8)
		x11 += x15
		x7 = rotl32(x7^x11, 7)

		// diagonal rounds
		x0 += x5
		x15 = rotl32(x15^x0, 16)
		x10 += x15
		x5 = rotl32(x5^x10, 12)
		x0 += x5
		x15 = rotl32(x15^x0, 8)
		x10 += x15
		x5 = rotl32(x5^x10, 7)

		x1 += x6
		x12 = rotl32(x12^x1, 16)
		x11 += x12
		x6 = rotl32(x6^x11, 12)
		x1 += x6
		x12 = rotl32(x12^x1, 8)
		x11 += x12
		x6 = rotl32(x6^x11, 7)

		x2 += x7
		x13 = rotl32(x13^x2, 16)
		x8 += x13
		x7 = rotl32(x7^x8, 12)
		x2 += x7
		x13 = rotl32(x13^x2, 8)
		x8 += x13
		x7 = rotl32(x7^x8, 7)

		x3 += x4
		x14 = rotl32(x14^x3, 16)
		x9 += x14
		x4 = rotl32(x4^x9, 12)
		x3 += x4
		x14 = rotl32(x14^x3, 8)
		x9 += x14
		x4 = rotl32(x4^x9, 7)
	}

	binary.LittleEndian.PutUint32(out[0:], x0+s0)
	binary.LittleEndian.PutUint32(out[4:], x1+s1)
	binary.LittleEndian.PutUint32(out[8:], x2+s2)
	binary.LittleEndian.PutUint32(out[12:], x3+s3)
	binary.LittleEndian.PutUint32(out[16:], x4+s4)
	binary.LittleEndian.PutUint32(out[20:], x5+s5)
	binary.LittleEndian.PutUint32(out[24:], x6+s6)
	binary.LittleEndian.PutUint32(out[28:], x7+s7)
	binary.LittleEndian.PutUint32(out[32:], x8+s8)
	binary.LittleEndian.PutUint32(out[36:], x9+s9)
	binary.LittleEndian.PutUint32(out[40:], x10+s10)
	binary.LittleEndian.PutUint32(out[44:], x11+s11)
	binary.LittleEndian.PutUint32(out[48:], x12+s12)
	binary.LittleEndian.PutUint32(out[52:], x13+s13)
	binary.LittleEndian.PutUint32(out[56:], x14+s14)
	binary.LittleEndian.PutUint32(out[60:], x15+s15)
}

// chachaXORStream XORs src with the keystream starting at the given
// block counter, writing into dst (dst and src may be the same slice).
func chachaXORStream(key *[8]uint32, nonce *[3]uint32, counter uint32, dst, src []byte) {
	var block [64]byte
	for len(src) > 0 {
		chachaBlock(key, nonce, counter, &block)
		counter++
		n := len(src)
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ block[i]
		}
		src = src[n:]
		dst = dst[n:]
	}
}

// polyOneTimeKey derives the Poly1305 one-time key from ChaCha20 block
// counter zero (RFC 8439 section 2.6).
func polyOneTimeKey(key *[8]uint32, nonce *[3]uint32, otk *[32]byte) {
	var block [64]byte
	chachaBlock(key, nonce, 0, &block)
	copy(otk[:], block[:32])
}

// --- Poly1305 (RFC 8439 section 2.5), 26-bit limb implementation ---

type poly1305 struct {
	r    [5]uint32 // clamped key limbs
	h    [5]uint32 // accumulator
	pad  [4]uint32 // final addition, little-endian s
	buf  [16]byte
	bufn int
}

func newPoly1305(key *[32]byte) *poly1305 {
	p := &poly1305{}
	p.r[0] = binary.LittleEndian.Uint32(key[0:]) & 0x3ffffff
	p.r[1] = (binary.LittleEndian.Uint32(key[3:]) >> 2) & 0x3ffff03
	p.r[2] = (binary.LittleEndian.Uint32(key[6:]) >> 4) & 0x3ffc0ff
	p.r[3] = (binary.LittleEndian.Uint32(key[9:]) >> 6) & 0x3f03fff
	p.r[4] = (binary.LittleEndian.Uint32(key[12:]) >> 8) & 0x00fffff
	p.pad[0] = binary.LittleEndian.Uint32(key[16:])
	p.pad[1] = binary.LittleEndian.Uint32(key[20:])
	p.pad[2] = binary.LittleEndian.Uint32(key[24:])
	p.pad[3] = binary.LittleEndian.Uint32(key[28:])
	return p
}

// blocks absorbs full 16-byte blocks; final marks the 1-bit as beyond a
// short trailing block instead of bit 128.
func (p *poly1305) blocks(m []byte, partialHibit bool) {
	r0, r1, r2, r3, r4 := uint64(p.r[0]), uint64(p.r[1]), uint64(p.r[2]), uint64(p.r[3]), uint64(p.r[4])
	s1, s2, s3, s4 := r1*5, r2*5, r3*5, r4*5
	h0, h1, h2, h3, h4 := p.h[0], p.h[1], p.h[2], p.h[3], p.h[4]

	for len(m) >= 16 {
		h0 += binary.LittleEndian.Uint32(m[0:]) & 0x3ffffff
		h1 += (binary.LittleEndian.Uint32(m[3:]) >> 2) & 0x3ffffff
		h2 += (binary.LittleEndian.Uint32(m[6:]) >> 4) & 0x3ffffff
		h3 += (binary.LittleEndian.Uint32(m[9:]) >> 6) & 0x3ffffff
		hi := binary.LittleEndian.Uint32(m[12:]) >> 8
		if !partialHibit {
			hi |= 1 << 24
		}
		h4 += hi

		d0 := uint64(h0)*r0 + uint64(h1)*s4 + uint64(h2)*s3 + uint64(h3)*s2 + uint64(h4)*s1
		d1 := uint64(h0)*r1 + uint64(h1)*r0 + uint64(h2)*s4 + uint64(h3)*s3 + uint64(h4)*s2
		d2 := uint64(h0)*r2 + uint64(h1)*r1 + uint64(h2)*r0 + uint64(h3)*s4 + uint64(h4)*s3
		d3 := uint64(h0)*r3 + uint64(h1)*r2 + uint64(h2)*r1 + uint64(h3)*r0 + uint64(h4)*s4
		d4 := uint64(h0)*r4 + uint64(h1)*r3 + uint64(h2)*r2 + uint64(h3)*r1 + uint64(h4)*r0

		d1 += d0 >> 26
		d2 += d1 >> 26
		d3 += d2 >> 26
		d4 += d3 >> 26
		h0 = uint32(d0) & 0x3ffffff
		h1 = uint32(d1) & 0x3ffffff
		h2 = uint32(d2) & 0x3ffffff
		h3 = uint32(d3) & 0x3ffffff
		h4 = uint32(d4) & 0x3ffffff
		h0 += uint32(d4>>26) * 5
		h1 += h0 >> 26
		h0 &= 0x3ffffff

		m = m[16:]
	}

	p.h[0], p.h[1], p.h[2], p.h[3], p.h[4] = h0, h1, h2, h3, h4
}

func (p *poly1305) update(m []byte) {
	if p.bufn > 0 {
		n := copy(p.buf[p.bufn:], m)
		p.bufn += n
		m = m[n:]
		if p.bufn < 16 {
			return
		}
		p.blocks(p.buf[:], false)
		p.bufn = 0
	}
	if full := len(m) &^ 15; full > 0 {
		p.blocks(m[:full], false)
		m = m[full:]
	}
	if len(m) > 0 {
		p.bufn = copy(p.buf[:], m)
	}
}

func (p *poly1305) sum(tag *[16]byte) {
	if p.bufn > 0 {
		var last [16]byte
		copy(last[:], p.buf[:p.bufn])
		last[p.bufn] = 1
		p.blocks(last[:], true)
		p.bufn = 0
	}

	h0, h1, h2, h3, h4 := p.h[0], p.h[1], p.h[2], p.h[3], p.h[4]

	// full carry propagation
	h1 += h0 >> 26
	h0 &= 0x3ffffff
	h2 += h1 >> 26
	h1 &= 0x3ffffff
	h3 += h2 >> 26
	h2 &= 0x3ffffff
	h4 += h3 >> 26
	h3 &= 0x3ffffff
	h0 += (h4 >> 26) * 5
	h4 &= 0x3ffffff
	h1 += h0 >> 26
	h0 &= 0x3ffffff

	// compute h + -p = h - (2^130 - 5)
	g0 := h0 + 5
	g1 := h1 + g0>>26
	g0 &= 0x3ffffff
	g2 := h2 + g1>>26
	g1 &= 0x3ffffff
	g3 := h3 + g2>>26
	g2 &= 0x3ffffff
	g4 := h4 + g3>>26 - (1 << 26)
	g3 &= 0x3ffffff

	// select h if h < p, g otherwise (constant time)
	mask := (g4 >> 31) - 1 // all-ones if g4 >= 0 (h >= p)
	h0 = h0&^mask | g0&mask
	h1 = h1&^mask | g1&mask
	h2 = h2&^mask | g2&mask
	h3 = h3&^mask | g3&mask
	h4 = h4&^mask | g4&mask

	// h %= 2^128, then h += pad with carry
	t0 := uint64(h0 | h1<<26)
	t1 := uint64(h1>>6 | h2<<20)
	t2 := uint64(h2>>12 | h3<<14)
	t3 := uint64(h3>>18 | h4<<8)

	t0 = (t0 & 0xffffffff) + uint64(p.pad[0])
	t1 = (t1 & 0xffffffff) + uint64(p.pad[1]) + t0>>32
	t2 = (t2 & 0xffffffff) + uint64(p.pad[2]) + t1>>32
	t3 = (t3 & 0xffffffff) + uint64(p.pad[3]) + t2>>32

	binary.LittleEndian.PutUint32(tag[0:], uint32(t0))
	binary.LittleEndian.PutUint32(tag[4:], uint32(t1))
	binary.LittleEndian.PutUint32(tag[8:], uint32(t2))
	binary.LittleEndian.PutUint32(tag[12:], uint32(t3))
}

// Poly1305Tag computes the one-shot Poly1305 MAC of msg under key.
// Exposed for vector tests; the AEAD path uses polyAEADTag.
func Poly1305Tag(key *[32]byte, msg []byte) [16]byte {
	p := newPoly1305(key)
	p.update(msg)
	var tag [16]byte
	p.sum(&tag)
	return tag
}

var polyZeroPad [16]byte

// polyAEADTag evaluates the RFC 8439 AEAD MAC layout:
// aad || pad16 || ct || pad16 || le64(len aad) || le64(len ct).
func polyAEADTag(otk *[32]byte, aad, ct []byte) [16]byte {
	p := newPoly1305(otk)
	p.update(aad)
	if rem := len(aad) % 16; rem != 0 {
		p.update(polyZeroPad[:16-rem])
	}
	p.update(ct)
	if rem := len(ct) % 16; rem != 0 {
		p.update(polyZeroPad[:16-rem])
	}
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lens[8:], uint64(len(ct)))
	p.update(lens[:])
	var tag [16]byte
	p.sum(&tag)
	return tag
}
