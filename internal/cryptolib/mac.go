package cryptolib

import (
	"crypto/subtle"
	"hash"
)

// The paper defines the FBS MAC as HMAC(K_f | confounder | timestamp |
// payload) where "HMAC" is "some one-way cryptographic hash function" —
// i.e. a keyed hash in the 1997 "keyed MD5" style, a prefix MAC. This file
// provides both that construction and RFC 2104 HMAC; the protocol code
// selects between them via MACID.

// MACID names a MAC construction.
type MACID uint8

// Supported MAC constructions.
const (
	// MACPrefixMD5 is keyed MD5 in prefix form: MD5(key | message). This
	// is what the paper's implementation used.
	MACPrefixMD5 MACID = iota
	// MACHMACMD5 is RFC 2104 HMAC-MD5.
	MACHMACMD5
	// MACHMACSHA1 is RFC 2104 HMAC-SHA1.
	MACHMACSHA1
	// MACNull computes nothing and verifies everything. It exists ONLY
	// to reproduce the paper's "FBS NOP" measurement configuration —
	// "FBS with 'nullified' encryption and MAC computation (i.e., both
	// encryption and MAC returns immediately)" — which isolates the
	// protocol's non-cryptographic overhead. It provides no security
	// whatsoever.
	MACNull
	// MACAEAD marks a datagram whose integrity is intrinsic to an AEAD
	// cipher suite: the MAC value field carries the AEAD tag, and no
	// separate MAC construction runs. Compute/Verify/NewStream refuse it
	// — the suite's sealed-box path owns authentication.
	MACAEAD
)

// String returns the conventional construction name.
func (m MACID) String() string {
	switch m {
	case MACPrefixMD5:
		return "keyed-MD5"
	case MACHMACMD5:
		return "HMAC-MD5"
	case MACHMACSHA1:
		return "HMAC-SHA1"
	case MACNull:
		return "null (NOP)"
	case MACAEAD:
		return "AEAD (intrinsic)"
	default:
		return "MAC(?)"
	}
}

// Size returns the MAC output size in bytes.
func (m MACID) Size() int {
	if m == MACHMACSHA1 {
		return SHA1Size
	}
	return MD5Size
}

// Compute evaluates the MAC over the concatenation of parts under key.
// Unknown constructions (and MACAEAD, whose authentication lives in the
// suite's AEAD) return nil rather than silently falling back to a
// construction the caller did not ask for.
func (m MACID) Compute(key []byte, parts ...[]byte) []byte {
	switch m {
	case MACPrefixMD5:
		all := make([][]byte, 0, len(parts)+1)
		all = append(all, key)
		all = append(all, parts...)
		return Digest(HashMD5, all...)
	case MACHMACMD5:
		return hmacCompute(HashMD5, key, parts)
	case MACHMACSHA1:
		return hmacCompute(HashSHA1, key, parts)
	case MACNull:
		return make([]byte, MD5Size)
	default:
		return nil
	}
}

// Verify recomputes the MAC and compares it against got in constant time.
// got may be a truncated MAC (the paper permits truncation to save header
// space); any prefix of at least 4 bytes is accepted for comparison.
// Unknown constructions never verify.
func (m MACID) Verify(key, got []byte, parts ...[]byte) bool {
	if m == MACNull {
		return true // NOP configuration: no authentication at all
	}
	if len(got) < 4 || len(got) > m.Size() {
		return false
	}
	want := m.Compute(key, parts...)
	if want == nil {
		return false
	}
	return subtle.ConstantTimeCompare(want[:len(got)], got) == 1
}

// StreamMAC is an incremental MAC computation: it lets callers absorb
// the message in pieces, which is what enables the paper's single-pass
// "combine all data touching operations into one loop" optimisation
// (Section 5.3) — each block is fed to the MAC and the cipher in the
// same traversal.
type StreamMAC struct {
	inner hash.Hash
	outer hash.Hash // nil for prefix MACs
}

// NewStream begins an incremental MAC under key. Unknown constructions
// (and MACAEAD) get the null stream, whose Sum never matches a real MAC.
func (m MACID) NewStream(key []byte) *StreamMAC {
	switch m {
	case MACNull:
		return &StreamMAC{}
	case MACHMACMD5, MACHMACSHA1:
		id := HashMD5
		if m == MACHMACSHA1 {
			id = HashSHA1
		}
		blockSize := 64
		k := make([]byte, blockSize)
		if len(key) > blockSize {
			copy(k, Digest(id, key))
		} else {
			copy(k, key)
		}
		ipad := make([]byte, blockSize)
		opad := make([]byte, blockSize)
		for i := range k {
			ipad[i] = k[i] ^ 0x36
			opad[i] = k[i] ^ 0x5c
		}
		inner := id.New()
		inner.Write(ipad)
		outer := id.New()
		outer.Write(opad)
		return &StreamMAC{inner: inner, outer: outer}
	default:
		inner := HashMD5.New()
		inner.Write(key)
		return &StreamMAC{inner: inner}
	}
}

// Write absorbs more message bytes; it never fails.
func (s *StreamMAC) Write(p []byte) (int, error) {
	if s.inner == nil { // MACNull
		return len(p), nil
	}
	return s.inner.Write(p)
}

// Sum finalises and returns the MAC. The stream remains usable for
// further writes (Sum reports the MAC of everything written so far).
func (s *StreamMAC) Sum() []byte {
	if s.inner == nil { // MACNull
		return make([]byte, MD5Size)
	}
	if s.outer == nil {
		return s.inner.Sum(nil)
	}
	// Our hash implementations' Sum does not disturb running state, so
	// finish on a copy of the outer hash.
	switch o := s.outer.(type) {
	case *MD5:
		c := *o
		c.Write(s.inner.Sum(nil))
		return c.Sum(nil)
	case *SHA1:
		c := *o
		c.Write(s.inner.Sum(nil))
		return c.Sum(nil)
	default:
		panic("cryptolib: unreachable outer hash type")
	}
}

// hmacCompute is RFC 2104: H(K XOR opad | H(K XOR ipad | message)).
func hmacCompute(id HashID, key []byte, parts [][]byte) []byte {
	blockSize := 64
	k := make([]byte, blockSize)
	if len(key) > blockSize {
		copy(k, Digest(id, key))
	} else {
		copy(k, key)
	}
	ipad := make([]byte, blockSize)
	opad := make([]byte, blockSize)
	for i := range k {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5c
	}
	inner := id.New()
	inner.Write(ipad)
	for _, p := range parts {
		inner.Write(p)
	}
	outer := id.New()
	outer.Write(opad)
	outer.Write(inner.Sum(nil))
	return outer.Sum(nil)
}
