package cryptolib

import (
	"encoding/binary"
	"math/bits"
)

// SHA1Size is the size of a SHA-1 digest in bytes.
const SHA1Size = 20

const sha1BlockSize = 64

// SHA1 is an incremental SHA-1 hash (FIPS 180-1, the "SHS" the paper lists
// as an alternative to MD5). Use NewSHA1.
type SHA1 struct {
	state [5]uint32
	buf   [sha1BlockSize]byte
	n     int
	len   uint64
}

// NewSHA1 returns a freshly initialised SHA-1 hash.
func NewSHA1() *SHA1 {
	s := new(SHA1)
	s.Reset()
	return s
}

// Reset returns the hash to its initial state.
func (s *SHA1) Reset() {
	s.state = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}
	s.n = 0
	s.len = 0
}

// Size returns SHA1Size.
func (s *SHA1) Size() int { return SHA1Size }

// BlockSize returns 64.
func (s *SHA1) BlockSize() int { return sha1BlockSize }

// Write absorbs p into the hash; it never fails.
func (s *SHA1) Write(p []byte) (int, error) {
	n := len(p)
	s.len += uint64(n)
	if s.n > 0 {
		c := copy(s.buf[s.n:], p)
		s.n += c
		p = p[c:]
		if s.n == sha1BlockSize {
			s.block(s.buf[:])
			s.n = 0
		}
	}
	for len(p) >= sha1BlockSize {
		s.block(p[:sha1BlockSize])
		p = p[sha1BlockSize:]
	}
	if len(p) > 0 {
		s.n = copy(s.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest to b without disturbing the running state.
func (s *SHA1) Sum(b []byte) []byte {
	clone := *s
	var pad [sha1BlockSize + 8]byte
	pad[0] = 0x80
	msgLen := clone.len
	padLen := 56 - int(msgLen%64)
	if padLen <= 0 {
		padLen += 64
	}
	clone.Write(pad[:padLen])
	var lenBytes [8]byte
	binary.BigEndian.PutUint64(lenBytes[:], msgLen*8)
	clone.Write(lenBytes[:])
	var out [SHA1Size]byte
	for i, v := range clone.state {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return append(b, out[:]...)
}

func (s *SHA1) block(p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	for i := 16; i < 80; i++ {
		w[i] = bits.RotateLeft32(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
	}
	a, b, c, d, e := s.state[0], s.state[1], s.state[2], s.state[3], s.state[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & d)
			k = 0x5a827999
		case i < 40:
			f = b ^ c ^ d
			k = 0x6ed9eba1
		case i < 60:
			f = (b & c) | (b & d) | (c & d)
			k = 0x8f1bbcdc
		default:
			f = b ^ c ^ d
			k = 0xca62c1d6
		}
		t := bits.RotateLeft32(a, 5) + f + e + k + w[i]
		e, d, c, b, a = d, c, bits.RotateLeft32(b, 30), a, t
	}
	s.state[0] += a
	s.state[1] += b
	s.state[2] += c
	s.state[3] += d
	s.state[4] += e
}

// SHA1Sum is a one-shot convenience wrapper.
func SHA1Sum(data []byte) [SHA1Size]byte {
	h := NewSHA1()
	h.Write(data)
	var out [SHA1Size]byte
	copy(out[:], h.Sum(nil))
	return out
}
