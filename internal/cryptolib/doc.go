// Package cryptolib is a from-scratch implementation of the cryptographic
// primitives used by the FBS protocol and its baselines.
//
// The SIGCOMM '97 paper implements FBS on top of CryptoLib (Lacy, Mitchell
// and Schell, 1993), which provided DES, MD5, Diffie-Hellman and friends.
// This package plays the same role for this reproduction: it provides
//
//   - the DES block cipher with ECB, CBC, CFB and OFB modes (FIPS 46/81),
//     plus two- and three-key triple DES,
//   - the MD5 (RFC 1321) and SHA-1 (FIPS 180) message digests,
//   - HMAC (RFC 2104) and the paper's prefix MAC H(key | data),
//   - classic Diffie-Hellman key agreement over the Oakley MODP groups,
//   - the Blum-Blum-Shub quadratic residue generator (the cryptographically
//     strong — and deliberately slow — generator the paper cites as the
//     bottleneck of per-datagram keying),
//   - a linear congruential generator (the statistically random,
//     deliberately cheap confounder source the paper recommends), and
//   - CRC-32, the randomising cache-index hash from Section 5.3.
//
// Everything is implemented from first principles on top of math/big and
// encoding/binary only; the test suite cross-checks each primitive against
// the Go standard library and published test vectors.
package cryptolib
