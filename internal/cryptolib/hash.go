package cryptolib

import (
	"fmt"
	"hash"
)

// HashID names a one-way hash function available in this library. The FBS
// header carries an algorithm identification field; HashID is its hash
// component.
type HashID uint8

// Supported hash algorithms.
const (
	// HashMD5 selects MD5 (the paper's default).
	HashMD5 HashID = iota
	// HashSHA1 selects SHA-1 ("SHS" in the paper).
	HashSHA1
)

// String returns the conventional algorithm name.
func (h HashID) String() string {
	switch h {
	case HashMD5:
		return "MD5"
	case HashSHA1:
		return "SHA-1"
	default:
		return fmt.Sprintf("HashID(%d)", uint8(h))
	}
}

// Size returns the digest size in bytes.
func (h HashID) Size() int {
	switch h {
	case HashSHA1:
		return SHA1Size
	default:
		return MD5Size
	}
}

// New returns a fresh incremental hash of the selected algorithm.
func (h HashID) New() hash.Hash {
	switch h {
	case HashSHA1:
		return NewSHA1()
	default:
		return NewMD5()
	}
}

// Digest hashes each argument in sequence and returns the digest. It is
// the concatenation-hash H(a | b | ...) used throughout the FBS protocol
// (flow key derivation and prefix-MAC computation).
func Digest(id HashID, parts ...[]byte) []byte {
	h := id.New()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}
