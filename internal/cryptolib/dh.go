package cryptolib

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// DHGroup is a Diffie-Hellman group: a prime modulus and a generator.
// The FBS zero-message keying mechanism assumes all principals share a
// common, well-known group (Section 5.2).
type DHGroup struct {
	P *big.Int // prime modulus
	G *big.Int // generator
}

// Oakley group moduli (RFC 2409). Group 1 is 768 bits, group 2 is 1024.
const (
	oakley1Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
		"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
		"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
		"E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF"
	oakley2Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
		"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
		"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
		"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381" +
		"FFFFFFFFFFFFFFFF"
)

func mustGroup(hex string) DHGroup {
	p, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		panic("cryptolib: bad built-in group modulus")
	}
	return DHGroup{P: p, G: big.NewInt(2)}
}

var (
	// Oakley1 is the 768-bit MODP group (First Oakley Group).
	Oakley1 = mustGroup(oakley1Hex)
	// Oakley2 is the 1024-bit MODP group (Second Oakley Group). This is
	// the default group for FBS principals in this reproduction.
	Oakley2 = mustGroup(oakley2Hex)
	// TestGroup is a small (512-bit) group for fast tests. It must never
	// be used outside tests and examples.
	TestGroup = DHGroup{
		P: must512(),
		G: big.NewInt(2),
	}
)

func must512() *big.Int {
	// Deterministically pick the largest 512-bit prime: scan down from
	// 2^512 - 1. This runs once at package init and avoids baking in an
	// unverified constant.
	p := new(big.Int).Lsh(big.NewInt(1), 512)
	p.Sub(p, big.NewInt(1))
	two := big.NewInt(2)
	for !p.ProbablyPrime(32) {
		p.Sub(p, two)
	}
	return p
}

// Bits returns the modulus size in bits.
func (g DHGroup) Bits() int { return g.P.BitLen() }

// GeneratePrivate draws a random private value x with 1 < x < P-1.
func (g DHGroup) GeneratePrivate() (*big.Int, error) {
	max := new(big.Int).Sub(g.P, big.NewInt(3))
	x, err := rand.Int(rand.Reader, max)
	if err != nil {
		return nil, fmt.Errorf("cryptolib: generating DH private value: %w", err)
	}
	return x.Add(x, big.NewInt(2)), nil
}

// Public computes the public value g^x mod p for private value x.
func (g DHGroup) Public(private *big.Int) *big.Int {
	return new(big.Int).Exp(g.G, private, g.P)
}

// Shared computes the pair-based master secret g^(xy) mod p from one
// side's private value and the other side's public value. The FBS master
// key K_{S,D} is derived from this value.
func (g DHGroup) Shared(private, peerPublic *big.Int) (*big.Int, error) {
	if peerPublic.Sign() <= 0 || peerPublic.Cmp(g.P) >= 0 {
		return nil, fmt.Errorf("cryptolib: peer public value out of range")
	}
	// Reject the degenerate subgroup elements 1 and p-1.
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(g.P, one)
	if peerPublic.Cmp(one) == 0 || peerPublic.Cmp(pm1) == 0 {
		return nil, fmt.Errorf("cryptolib: degenerate peer public value")
	}
	return new(big.Int).Exp(peerPublic, private, g.P), nil
}

// MasterKey reduces a Diffie-Hellman shared secret to a fixed-size master
// key by hashing its canonical big-endian encoding. The paper leaves the
// reduction unspecified; hashing is the standard choice.
func MasterKey(shared *big.Int) [MD5Size]byte {
	return MD5Sum(shared.Bytes())
}
