package cryptolib

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFixDESParity(t *testing.T) {
	// Every output byte must have odd parity and differ from the input
	// only in bit 0.
	f := func(key [8]byte) bool {
		out := FixDESParity(key)
		for i := range out {
			if out[i]&0xFE != key[i]&0xFE {
				return false
			}
			ones := 0
			for x := out[i]; x != 0; x >>= 1 {
				ones += int(x & 1)
			}
			if ones%2 != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The defining property of a weak key: encryption is an involution.
func TestWeakKeysAreInvolutions(t *testing.T) {
	for _, w := range desWeakKeys[:4] {
		d, err := NewDES(w[:])
		if err != nil {
			t.Fatal(err)
		}
		block := []byte("8 bytes!")
		once := make([]byte, 8)
		twice := make([]byte, 8)
		d.EncryptBlock(once, block)
		d.EncryptBlock(twice, once)
		if !bytes.Equal(twice, block) {
			t.Fatalf("weak key %x: E(E(x)) != x", w)
		}
	}
}

// The defining property of a semi-weak pair: E_k1 inverts E_k2.
func TestSemiWeakPairs(t *testing.T) {
	for i := 4; i < len(desWeakKeys); i += 2 {
		k1, k2 := desWeakKeys[i], desWeakKeys[i+1]
		d1, _ := NewDES(k1[:])
		d2, _ := NewDES(k2[:])
		block := []byte("datagram")
		enc := make([]byte, 8)
		dec := make([]byte, 8)
		d1.EncryptBlock(enc, block)
		d2.EncryptBlock(dec, enc)
		if !bytes.Equal(dec, block) {
			t.Fatalf("pair %x/%x: E_k2(E_k1(x)) != x", k1, k2)
		}
	}
}

func TestIsWeakDESKey(t *testing.T) {
	for _, w := range desWeakKeys {
		if !IsWeakDESKey(w) {
			t.Errorf("weak key %x not detected", w)
		}
		// Parity bits must not matter.
		var stripped [8]byte
		for i := range w {
			stripped[i] = w[i] & 0xFE
		}
		if !IsWeakDESKey(stripped) {
			t.Errorf("weak key %x with parity stripped not detected", stripped)
		}
	}
	if IsWeakDESKey([8]byte{'n', 'o', 'r', 'm', 'a', 'l', 'k', '!'}) {
		t.Error("normal key flagged as weak")
	}
}

func TestNewSafeDES(t *testing.T) {
	if _, err := NewSafeDES(desWeakKeys[0][:]); err == nil {
		t.Fatal("weak key accepted")
	}
	if _, err := NewSafeDES([]byte("goodkey!")); err != nil {
		t.Fatalf("normal key rejected: %v", err)
	}
	if _, err := NewSafeDES(make([]byte, 3)); err == nil {
		t.Fatal("short key accepted")
	}
}
