package cryptolib

import "testing"

func testRSAKey(t *testing.T) *RSAPrivateKey {
	t.Helper()
	k, err := GenerateRSA(512)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRSASignVerify(t *testing.T) {
	k := testRSAKey(t)
	msg := []byte("public value certificate for principal 10.0.0.1")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !k.RSAPublicKey.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if k.RSAPublicKey.Verify(append(msg, 'x'), sig) {
		t.Fatal("signature verified for different message")
	}
	sig[5] ^= 0x40
	if k.RSAPublicKey.Verify(msg, sig) {
		t.Fatal("corrupted signature accepted")
	}
}

func TestRSAVerifyWrongKey(t *testing.T) {
	k1 := testRSAKey(t)
	k2 := testRSAKey(t)
	msg := []byte("message")
	sig, err := k1.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if k2.RSAPublicKey.Verify(msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestRSAVerifyMalformedSig(t *testing.T) {
	k := testRSAKey(t)
	msg := []byte("message")
	if k.RSAPublicKey.Verify(msg, nil) {
		t.Fatal("nil signature accepted")
	}
	if k.RSAPublicKey.Verify(msg, make([]byte, 3)) {
		t.Fatal("short signature accepted")
	}
	big := make([]byte, (k.N.BitLen()+7)/8)
	for i := range big {
		big[i] = 0xFF
	}
	if k.RSAPublicKey.Verify(msg, big) {
		t.Fatal("oversized signature value accepted")
	}
}

func TestGenerateRSARejectsTiny(t *testing.T) {
	if _, err := GenerateRSA(128); err == nil {
		t.Fatal("GenerateRSA accepted 128-bit modulus")
	}
}
