package cryptolib

import (
	"bytes"
	"crypto/hmac"
	stdmd5 "crypto/md5"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	stdcrc "hash/crc32"
	"testing"
	"testing/quick"
)

// RFC 1321 appendix A.5 test suite.
func TestMD5RFC1321Vectors(t *testing.T) {
	vectors := []struct{ in, want string }{
		{"", "d41d8cd98f00b204e9800998ecf8427e"},
		{"a", "0cc175b9c0f1b6a831c399e269772661"},
		{"abc", "900150983cd24fb0d6963f7d28e17f72"},
		{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
		{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", "d174ab98d277d9f5a5611c2c9f419d9f"},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", "57edf4a22be3c955ac49da2e2107b67a"},
	}
	for _, v := range vectors {
		got := MD5Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("MD5(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

// FIPS 180 test vectors.
func TestSHA1Vectors(t *testing.T) {
	vectors := []struct{ in, want string }{
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq", "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
	}
	for _, v := range vectors {
		got := SHA1Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("SHA1(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

// Property: our digests match the standard library for random inputs and
// arbitrary write chunking.
func TestDigestsAgainstStdlib(t *testing.T) {
	f := func(data []byte, splits []uint8) bool {
		ours := NewMD5()
		std := stdmd5.New()
		rest := data
		for _, s := range splits {
			if len(rest) == 0 {
				break
			}
			n := int(s) % (len(rest) + 1)
			ours.Write(rest[:n])
			std.Write(rest[:n])
			rest = rest[n:]
		}
		ours.Write(rest)
		std.Write(rest)
		if !bytes.Equal(ours.Sum(nil), std.Sum(nil)) {
			return false
		}
		s1 := SHA1Sum(data)
		s2 := stdsha1.Sum(data)
		return bytes.Equal(s1[:], s2[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSumDoesNotDisturbState ensures Sum may be called mid-stream.
func TestSumDoesNotDisturbState(t *testing.T) {
	m := NewMD5()
	m.Write([]byte("hello "))
	_ = m.Sum(nil)
	m.Write([]byte("world"))
	got := m.Sum(nil)
	want := MD5Sum([]byte("hello world"))
	if !bytes.Equal(got, want[:]) {
		t.Fatalf("mid-stream Sum disturbed state: got %x want %x", got, want)
	}
}

func TestHMACAgainstStdlib(t *testing.T) {
	f := func(key, msg []byte) bool {
		got := MACHMACMD5.Compute(key, msg)
		std := hmac.New(stdmd5.New, key)
		std.Write(msg)
		if !bytes.Equal(got, std.Sum(nil)) {
			return false
		}
		got = MACHMACSHA1.Compute(key, msg)
		std2 := hmac.New(stdsha1.New, key)
		std2.Write(msg)
		return bytes.Equal(got, std2.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMACVerify(t *testing.T) {
	key := []byte("flow key")
	msg := []byte("confounder|timestamp|payload")
	for _, id := range []MACID{MACPrefixMD5, MACHMACMD5, MACHMACSHA1} {
		mac := id.Compute(key, msg)
		if !id.Verify(key, mac, msg) {
			t.Errorf("%v: correct MAC rejected", id)
		}
		if !id.Verify(key, mac[:8], msg) {
			t.Errorf("%v: truncated MAC rejected", id)
		}
		mac[0] ^= 1
		if id.Verify(key, mac, msg) {
			t.Errorf("%v: corrupted MAC accepted", id)
		}
		if id.Verify(key, mac[:2], msg) {
			t.Errorf("%v: too-short MAC accepted", id)
		}
		if id.Verify([]byte("other key"), id.Compute(key, msg), msg) {
			t.Errorf("%v: MAC verified under wrong key", id)
		}
	}
}

// The prefix MAC must be split-insensitive: MAC(k, a|b) == MAC(k, ab).
func TestMACPartsConcatenate(t *testing.T) {
	key := []byte("k")
	for _, id := range []MACID{MACPrefixMD5, MACHMACMD5, MACHMACSHA1} {
		one := id.Compute(key, []byte("abcdef"))
		two := id.Compute(key, []byte("abc"), []byte("def"))
		if !bytes.Equal(one, two) {
			t.Errorf("%v: parts are not concatenated", id)
		}
	}
}

func TestCRC32AgainstStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return CRC32(data) == stdcrc.ChecksumIEEE(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32FieldsDistributes(t *testing.T) {
	// Sequential labels (the paper's worry) must not map to sequential
	// hash values: check that low-order bits look uniform across a run of
	// sequential inputs.
	const n = 4096
	buckets := make([]int, 64)
	for i := uint64(0); i < n; i++ {
		buckets[CRC32Fields(i, 0x0a000001, 0x0a000002)%64]++
	}
	for b, c := range buckets {
		if c == 0 {
			t.Fatalf("bucket %d empty after %d sequential inputs", b, n)
		}
		if c > 4*n/64 {
			t.Fatalf("bucket %d grossly overloaded: %d", b, c)
		}
	}
}

func TestHashIDProperties(t *testing.T) {
	if HashMD5.Size() != 16 || HashSHA1.Size() != 20 {
		t.Fatal("wrong digest sizes")
	}
	if HashMD5.String() != "MD5" || HashSHA1.String() != "SHA-1" {
		t.Fatal("wrong names")
	}
	got := Digest(HashSHA1, []byte("ab"), []byte("c"))
	want := SHA1Sum([]byte("abc"))
	if !bytes.Equal(got, want[:]) {
		t.Fatal("Digest does not concatenate parts")
	}
}

func TestStreamMACMatchesCompute(t *testing.T) {
	f := func(key, a, b, c []byte) bool {
		for _, id := range []MACID{MACPrefixMD5, MACHMACMD5, MACHMACSHA1} {
			s := id.NewStream(key)
			s.Write(a)
			s.Write(b)
			s.Write(c)
			if !bytes.Equal(s.Sum(), id.Compute(key, a, b, c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMACSumMidStream(t *testing.T) {
	for _, id := range []MACID{MACPrefixMD5, MACHMACMD5, MACHMACSHA1} {
		s := id.NewStream([]byte("k"))
		s.Write([]byte("ab"))
		mid := s.Sum()
		if !bytes.Equal(mid, id.Compute([]byte("k"), []byte("ab"))) {
			t.Fatalf("%v: mid-stream Sum wrong", id)
		}
		s.Write([]byte("cd"))
		if !bytes.Equal(s.Sum(), id.Compute([]byte("k"), []byte("abcd"))) {
			t.Fatalf("%v: Sum disturbed the stream", id)
		}
	}
}

func TestMACNull(t *testing.T) {
	if MACNull.String() != "null (NOP)" || MACNull.Size() != 16 {
		t.Fatal("MACNull metadata wrong")
	}
	out := MACNull.Compute([]byte("key"), []byte("data"))
	for _, b := range out {
		if b != 0 {
			t.Fatal("MACNull computed something")
		}
	}
	if !MACNull.Verify([]byte("k"), make([]byte, 16), []byte("anything")) {
		t.Fatal("MACNull rejected")
	}
	s := MACNull.NewStream([]byte("k"))
	s.Write([]byte("data"))
	if !bytes.Equal(s.Sum(), out) {
		t.Fatal("MACNull stream disagrees")
	}
}
