package cryptolib

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the DES block size in bytes.
const BlockSize = 8

// KeySize is the DES key size in bytes (including parity bits).
const KeySize = 8

// BlockCipher is a 64-bit block cipher. Both DES and TripleDES satisfy it,
// as does any external cipher a caller wants to plug into the mode
// implementations in this package.
type BlockCipher interface {
	// BlockSize returns the cipher's block size in bytes.
	BlockSize() int
	// EncryptBlock encrypts exactly one block from src into dst.
	// dst and src may overlap entirely.
	EncryptBlock(dst, src []byte)
	// DecryptBlock decrypts exactly one block from src into dst.
	DecryptBlock(dst, src []byte)
}

// DES implements the Data Encryption Standard (FIPS 46) as a 64-bit block
// cipher with a 56-bit effective key.
type DES struct {
	subkeys [16]uint64 // 48-bit round keys
}

// NewDES expands an 8-byte key (parity bits ignored) into a DES key
// schedule.
func NewDES(key []byte) (*DES, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("cryptolib: DES key must be %d bytes, got %d", KeySize, len(key))
	}
	d := new(DES)
	d.expandKey(binary.BigEndian.Uint64(key))
	return d, nil
}

// BlockSize returns 8.
func (d *DES) BlockSize() int { return BlockSize }

// EncryptBlock encrypts one 8-byte block.
func (d *DES) EncryptBlock(dst, src []byte) {
	b := binary.BigEndian.Uint64(src[:BlockSize])
	binary.BigEndian.PutUint64(dst[:BlockSize], d.crypt(b, false))
}

// DecryptBlock decrypts one 8-byte block.
func (d *DES) DecryptBlock(dst, src []byte) {
	b := binary.BigEndian.Uint64(src[:BlockSize])
	binary.BigEndian.PutUint64(dst[:BlockSize], d.crypt(b, true))
}

// The permutation tables below are exactly those of FIPS 46. Bit numbering
// follows the standard: bit 1 is the most significant bit of the 64-bit
// input.

var initialPermutation = [64]byte{
	58, 50, 42, 34, 26, 18, 10, 2,
	60, 52, 44, 36, 28, 20, 12, 4,
	62, 54, 46, 38, 30, 22, 14, 6,
	64, 56, 48, 40, 32, 24, 16, 8,
	57, 49, 41, 33, 25, 17, 9, 1,
	59, 51, 43, 35, 27, 19, 11, 3,
	61, 53, 45, 37, 29, 21, 13, 5,
	63, 55, 47, 39, 31, 23, 15, 7,
}

var finalPermutation = [64]byte{
	40, 8, 48, 16, 56, 24, 64, 32,
	39, 7, 47, 15, 55, 23, 63, 31,
	38, 6, 46, 14, 54, 22, 62, 30,
	37, 5, 45, 13, 53, 21, 61, 29,
	36, 4, 44, 12, 52, 20, 60, 28,
	35, 3, 43, 11, 51, 19, 59, 27,
	34, 2, 42, 10, 50, 18, 58, 26,
	33, 1, 41, 9, 49, 17, 57, 25,
}

var expansion = [48]byte{
	32, 1, 2, 3, 4, 5,
	4, 5, 6, 7, 8, 9,
	8, 9, 10, 11, 12, 13,
	12, 13, 14, 15, 16, 17,
	16, 17, 18, 19, 20, 21,
	20, 21, 22, 23, 24, 25,
	24, 25, 26, 27, 28, 29,
	28, 29, 30, 31, 32, 1,
}

var roundPermutation = [32]byte{
	16, 7, 20, 21, 29, 12, 28, 17,
	1, 15, 23, 26, 5, 18, 31, 10,
	2, 8, 24, 14, 32, 27, 3, 9,
	19, 13, 30, 6, 22, 11, 4, 25,
}

var permutedChoice1 = [56]byte{
	57, 49, 41, 33, 25, 17, 9,
	1, 58, 50, 42, 34, 26, 18,
	10, 2, 59, 51, 43, 35, 27,
	19, 11, 3, 60, 52, 44, 36,
	63, 55, 47, 39, 31, 23, 15,
	7, 62, 54, 46, 38, 30, 22,
	14, 6, 61, 53, 45, 37, 29,
	21, 13, 5, 28, 20, 12, 4,
}

var permutedChoice2 = [48]byte{
	14, 17, 11, 24, 1, 5,
	3, 28, 15, 6, 21, 10,
	23, 19, 12, 4, 26, 8,
	16, 7, 27, 20, 13, 2,
	41, 52, 31, 37, 47, 55,
	30, 40, 51, 45, 33, 48,
	44, 49, 39, 56, 34, 53,
	46, 42, 50, 36, 29, 32,
}

var keyRotations = [16]byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

// sboxes[i][row][col] for S-box i+1.
var sboxes = [8][4][16]byte{
	{
		{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
		{0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
		{4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
		{15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
	},
	{
		{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
		{3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
		{0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
		{13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
	},
	{
		{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
		{13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
		{13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
		{1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
	},
	{
		{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
		{13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
		{10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
		{3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
	},
	{
		{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
		{14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
		{4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
		{11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
	},
	{
		{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
		{10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
		{9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
		{4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
	},
	{
		{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
		{13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
		{1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
		{6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
	},
	{
		{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
		{1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
		{7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
		{2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11},
	},
}

// permute applies a FIPS-46 style permutation table to src. Bit 1 in the
// table addresses the most significant of inBits input bits; the first
// table entry produces the most significant output bit.
func permute(src uint64, table []byte, inBits uint) uint64 {
	var out uint64
	for _, b := range table {
		out <<= 1
		out |= (src >> (inBits - uint(b))) & 1
	}
	return out
}

func (d *DES) expandKey(key uint64) {
	// PC-1 drops the parity bits and yields a 56-bit quantity split into
	// two 28-bit halves C and D.
	cd := permute(key, permutedChoice1[:], 64)
	c := uint32(cd >> 28)
	dd := uint32(cd & 0x0fffffff)
	for round := 0; round < 16; round++ {
		s := uint(keyRotations[round])
		c = ((c << s) | (c >> (28 - s))) & 0x0fffffff
		dd = ((dd << s) | (dd >> (28 - s))) & 0x0fffffff
		d.subkeys[round] = permute(uint64(c)<<28|uint64(dd), permutedChoice2[:], 56)
	}
}

// feistel is the DES round function f(R, K).
func feistel(r uint32, subkey uint64) uint32 {
	// Expand R from 32 to 48 bits and mix in the round key.
	x := permute(uint64(r), expansion[:], 32) ^ subkey
	// Eight 6-bit S-box lookups produce 32 bits.
	var out uint32
	for i := 0; i < 8; i++ {
		six := byte(x>>uint(42-6*i)) & 0x3f
		row := (six>>4)&2 | six&1
		col := (six >> 1) & 0xf
		out = out<<4 | uint32(sboxes[i][row][col])
	}
	return uint32(permute(uint64(out), roundPermutation[:], 32))
}

func (d *DES) crypt(block uint64, decrypt bool) uint64 {
	b := ipTable.apply(block)
	l, r := uint32(b>>32), uint32(b)
	for round := 0; round < 16; round++ {
		k := d.subkeys[round]
		if decrypt {
			k = d.subkeys[15-round]
		}
		l, r = r, l^feistelFast(r, k)
	}
	// The final swap is undone: pre-output is R16 L16.
	return fpTable.apply(uint64(r)<<32 | uint64(l))
}

// cryptReference is the table-free implementation kept for cross-checks.
func (d *DES) cryptReference(block uint64, decrypt bool) uint64 {
	b := permute(block, initialPermutation[:], 64)
	l, r := uint32(b>>32), uint32(b)
	for round := 0; round < 16; round++ {
		k := d.subkeys[round]
		if decrypt {
			k = d.subkeys[15-round]
		}
		l, r = r, l^feistel(r, k)
	}
	return permute(uint64(r)<<32|uint64(l), finalPermutation[:], 64)
}

// TripleDES implements EDE triple DES with either a 16-byte (two-key) or
// 24-byte (three-key) key.
type TripleDES struct {
	k1, k2, k3 *DES
}

// NewTripleDES builds an EDE triple-DES cipher from a 16- or 24-byte key.
func NewTripleDES(key []byte) (*TripleDES, error) {
	var kb [3][]byte
	switch len(key) {
	case 16:
		kb[0], kb[1], kb[2] = key[0:8], key[8:16], key[0:8]
	case 24:
		kb[0], kb[1], kb[2] = key[0:8], key[8:16], key[16:24]
	default:
		return nil, fmt.Errorf("cryptolib: triple DES key must be 16 or 24 bytes, got %d", len(key))
	}
	t := new(TripleDES)
	var err error
	if t.k1, err = NewDES(kb[0]); err != nil {
		return nil, err
	}
	if t.k2, err = NewDES(kb[1]); err != nil {
		return nil, err
	}
	if t.k3, err = NewDES(kb[2]); err != nil {
		return nil, err
	}
	return t, nil
}

// BlockSize returns 8.
func (t *TripleDES) BlockSize() int { return BlockSize }

// EncryptBlock computes E_k3(D_k2(E_k1(src))).
func (t *TripleDES) EncryptBlock(dst, src []byte) {
	b := binary.BigEndian.Uint64(src[:BlockSize])
	b = t.k1.crypt(b, false)
	b = t.k2.crypt(b, true)
	b = t.k3.crypt(b, false)
	binary.BigEndian.PutUint64(dst[:BlockSize], b)
}

// DecryptBlock inverts EncryptBlock.
func (t *TripleDES) DecryptBlock(dst, src []byte) {
	b := binary.BigEndian.Uint64(src[:BlockSize])
	b = t.k3.crypt(b, true)
	b = t.k2.crypt(b, false)
	b = t.k1.crypt(b, true)
	binary.BigEndian.PutUint64(dst[:BlockSize], b)
}
