package cryptolib

import "testing"

func TestLCGDeterministicAndDistinct(t *testing.T) {
	a := NewLCGSeeded(42)
	b := NewLCGSeeded(42)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewLCGSeeded(43)
	same := 0
	a = NewLCGSeeded(42)
	for i := 0; i < 100; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree on %d/100 outputs", same)
	}
}

func TestLCGStatisticallyPlausible(t *testing.T) {
	// Coarse uniformity check on the top byte.
	l := NewLCGSeeded(0xfb5)
	var buckets [16]int
	const n = 16000
	for i := 0; i < n; i++ {
		buckets[l.Uint32()>>28]++
	}
	for b, c := range buckets {
		if c < n/32 || c > n/8 {
			t.Fatalf("bucket %d has %d/%d samples", b, c, n)
		}
	}
}

func TestLCGFromEntropy(t *testing.T) {
	a := NewLCG()
	b := NewLCG()
	// Two freshly seeded generators colliding would mean the OS entropy
	// source returned identical 64-bit seeds.
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("entropy-seeded LCGs emitted identical streams")
	}
}

func TestBBSProducesOutput(t *testing.T) {
	b, err := NewBBS(256)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	allZero := true
	for _, x := range buf {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("BBS produced 64 zero bytes")
	}
	_ = b.Uint32()
}

func TestBBSRejectsTinyModulus(t *testing.T) {
	if _, err := NewBBS(64); err == nil {
		t.Fatal("NewBBS accepted 64-bit modulus")
	}
}

func TestSystemRandom(t *testing.T) {
	var s SystemRandom
	a, b := s.Uint32(), s.Uint32()
	c, d := s.Uint32(), s.Uint32()
	if a == b && b == c && c == d {
		t.Fatal("system randomness returned four identical words")
	}
}
