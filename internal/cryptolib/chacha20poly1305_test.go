package cryptolib

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex constant: %v", err)
	}
	return b
}

// RFC 8439 section 2.3.2: ChaCha20 block function test vector (the
// keystream for counter 1 used by the encryption example in 2.4.2).
func TestChaCha20BlockVector(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := unhex(t, "000000090000004a00000000")
	var k [8]uint32
	for i := range k {
		k[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	var n [3]uint32
	for i := range n {
		n[i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	var block [64]byte
	chachaBlock(&k, &n, 1, &block)
	want := unhex(t, "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"+
		"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(block[:], want) {
		t.Fatalf("chacha20 block mismatch:\n got %x\nwant %x", block[:], want)
	}
}

// RFC 8439 section 2.5.2: Poly1305 MAC test vector.
func TestPoly1305Vector(t *testing.T) {
	keyBytes := unhex(t, "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
	var key [32]byte
	copy(key[:], keyBytes)
	msg := []byte("Cryptographic Forum Research Group")
	tag := Poly1305Tag(&key, msg)
	want := unhex(t, "a8061dc1305136c6c22b8baf0c0127a9")
	if !bytes.Equal(tag[:], want) {
		t.Fatalf("poly1305 tag mismatch:\n got %x\nwant %x", tag[:], want)
	}
}

// RFC 8439 section 2.8.2: full AEAD construction test vector.
func TestChaCha20Poly1305AEADVector(t *testing.T) {
	key := unhex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	nonce := unhex(t, "070000004041424344454647")
	aad := unhex(t, "50515253c0c1c2c3c4c5c6c7")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	wantCT := unhex(t, "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"+
		"3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"+
		"92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"+
		"3ff4def08e4b7a9de576d26586cec64b6116")
	wantTag := unhex(t, "1ae10b594f09e26a7e902ecbd0600691")

	a, err := NewChaCha20Poly1305(key)
	if err != nil {
		t.Fatalf("NewChaCha20Poly1305: %v", err)
	}
	sealed := a.Seal(nil, nonce, plaintext, aad)
	if got := sealed[:len(plaintext)]; !bytes.Equal(got, wantCT) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", got, wantCT)
	}
	if got := sealed[len(plaintext):]; !bytes.Equal(got, wantTag) {
		t.Fatalf("tag mismatch:\n got %x\nwant %x", got, wantTag)
	}

	plain, err := a.Open(nil, nonce, sealed, aad)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(plain, plaintext) {
		t.Fatalf("roundtrip plaintext mismatch")
	}

	// Tamper detection: any flipped bit in ciphertext, tag, or AAD fails.
	for _, i := range []int{0, len(plaintext) / 2, len(sealed) - 1} {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x40
		if _, err := a.Open(nil, nonce, bad, aad); err == nil {
			t.Fatalf("Open accepted tampered byte %d", i)
		}
	}
	badAAD := append([]byte(nil), aad...)
	badAAD[3] ^= 0x01
	if _, err := a.Open(nil, nonce, sealed, badAAD); err == nil {
		t.Fatal("Open accepted tampered AAD")
	}
}

// In-place Seal/Open (the dst = buf[:0] aliasing form the data plane uses)
// must produce identical bytes to the allocating form.
func TestChaCha20Poly1305InPlace(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	nonce := make([]byte, 12)
	for i := range nonce {
		nonce[i] = byte(0xA0 + i)
	}
	aad := []byte("header bytes")
	a, err := NewChaCha20Poly1305(key)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 15, 16, 17, 63, 64, 65, 256, 1460} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i)
		}
		ref := a.Seal(nil, nonce, pt, aad)

		buf := make([]byte, n, n+Poly1305TagSize)
		copy(buf, pt)
		inPlace := a.Seal(buf[:0], nonce, buf, aad)
		if !bytes.Equal(inPlace, ref) {
			t.Fatalf("n=%d: in-place Seal mismatch", n)
		}

		opened, err := a.Open(inPlace[:0], nonce, inPlace, aad)
		if err != nil {
			t.Fatalf("n=%d: in-place Open: %v", n, err)
		}
		if !bytes.Equal(opened, pt) {
			t.Fatalf("n=%d: in-place Open plaintext mismatch", n)
		}
	}
}

// Incremental poly1305 update must match one-shot regardless of how the
// message is split (exercises the internal 16-byte buffering).
func TestPoly1305Incremental(t *testing.T) {
	var key [32]byte
	for i := range key {
		key[i] = byte(i + 1)
	}
	msg := make([]byte, 203)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	want := Poly1305Tag(&key, msg)
	for _, chunk := range []int{1, 3, 7, 15, 16, 17, 64} {
		var p poly1305
		p.init(&key)
		for off := 0; off < len(msg); off += chunk {
			end := off + chunk
			if end > len(msg) {
				end = len(msg)
			}
			p.update(msg[off:end])
		}
		var tag [16]byte
		p.sum(&tag)
		if tag != want {
			t.Fatalf("chunk=%d: incremental tag mismatch", chunk)
		}
	}
}
