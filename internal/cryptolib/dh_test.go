package cryptolib

import (
	"math/big"
	"testing"
)

func TestDHCommutes(t *testing.T) {
	g := TestGroup
	s, err := g.GeneratePrivate()
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.GeneratePrivate()
	if err != nil {
		t.Fatal(err)
	}
	sPub := g.Public(s)
	dPub := g.Public(d)
	k1, err := g.Shared(s, dPub)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := g.Shared(d, sPub)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Cmp(k2) != 0 {
		t.Fatal("g^sd != g^ds")
	}
	if MasterKey(k1) != MasterKey(k2) {
		t.Fatal("master keys differ")
	}
}

func TestDHRejectsDegenerate(t *testing.T) {
	g := TestGroup
	s, _ := g.GeneratePrivate()
	bad := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(g.P, big.NewInt(1)),
		new(big.Int).Neg(big.NewInt(5)),
		new(big.Int).Add(g.P, big.NewInt(2)),
	}
	for _, b := range bad {
		if _, err := g.Shared(s, b); err == nil {
			t.Errorf("Shared accepted degenerate public value %v", b)
		}
	}
}

func TestOakleyGroups(t *testing.T) {
	if Oakley1.Bits() != 768 {
		t.Errorf("Oakley1 is %d bits, want 768", Oakley1.Bits())
	}
	if Oakley2.Bits() != 1024 {
		t.Errorf("Oakley2 is %d bits, want 1024", Oakley2.Bits())
	}
	for _, g := range []DHGroup{Oakley1, Oakley2, TestGroup} {
		if !g.P.ProbablyPrime(16) {
			t.Error("group modulus is composite")
		}
	}
}

func TestDHDistinctPairsDistinctKeys(t *testing.T) {
	g := TestGroup
	a, _ := g.GeneratePrivate()
	b, _ := g.GeneratePrivate()
	c, _ := g.GeneratePrivate()
	kab, _ := g.Shared(a, g.Public(b))
	kac, _ := g.Shared(a, g.Public(c))
	if kab.Cmp(kac) == 0 {
		t.Fatal("different peers produced the same master secret")
	}
}

func TestGeneratePrivateInRange(t *testing.T) {
	g := TestGroup
	for i := 0; i < 16; i++ {
		x, err := g.GeneratePrivate()
		if err != nil {
			t.Fatal(err)
		}
		if x.Cmp(big.NewInt(2)) < 0 || x.Cmp(g.P) >= 0 {
			t.Fatalf("private value %v out of range", x)
		}
	}
}
