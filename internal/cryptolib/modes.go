package cryptolib

import "fmt"

// Mode identifies a FIPS 81 mode of operation for a 64-bit block cipher.
type Mode int

// Supported modes of operation.
const (
	// ECB is electronic codebook mode. Per the paper (Section 5.2), the
	// confounder is XOR'ed into every plaintext block before encryption
	// so that identical plaintext blocks do not produce identical
	// ciphertext blocks.
	ECB Mode = iota
	// CBC is cipher block chaining; the confounder is the IV.
	CBC
	// CFB is 64-bit cipher feedback; the confounder is the IV.
	CFB
	// OFB is 64-bit output feedback; the confounder is the IV.
	OFB
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case ECB:
		return "ECB"
	case CBC:
		return "CBC"
	case CFB:
		return "CFB"
	case OFB:
		return "OFB"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Pad appends PKCS#7-style padding so len(result) is a multiple of the
// block size. A full block of padding is added when the input is already
// aligned, so padding is always removable.
func Pad(data []byte, blockSize int) []byte {
	return AppendPadded(nil, data, blockSize)
}

// AppendPadded appends data plus its PKCS#7-style padding to dst and
// returns the extended slice. With sufficient capacity in dst it performs
// no allocation — the steady-state seal path depends on this.
func AppendPadded(dst, data []byte, blockSize int) []byte {
	n := blockSize - len(data)%blockSize
	dst = append(dst, data...)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(n))
	}
	return dst
}

// Unpad removes padding added by Pad. It returns an error when the padding
// is malformed, which for FBS means the datagram was corrupted or
// decrypted under the wrong flow key.
func Unpad(data []byte, blockSize int) ([]byte, error) {
	if len(data) == 0 || len(data)%blockSize != 0 {
		return nil, fmt.Errorf("cryptolib: padded data length %d not a positive multiple of %d", len(data), blockSize)
	}
	n := int(data[len(data)-1])
	if n == 0 || n > blockSize || n > len(data) {
		return nil, fmt.Errorf("cryptolib: invalid padding length %d", n)
	}
	for _, b := range data[len(data)-n:] {
		if int(b) != n {
			return nil, fmt.Errorf("cryptolib: inconsistent padding")
		}
	}
	return data[:len(data)-n], nil
}

// EncryptMode encrypts src (whose length must be a multiple of the block
// size; use Pad first) under the given mode with the 8-byte IV iv. It
// writes into dst, which may alias src, and returns dst.
func EncryptMode(c BlockCipher, mode Mode, iv, dst, src []byte) ([]byte, error) {
	bs := c.BlockSize()
	if len(src)%bs != 0 {
		return nil, fmt.Errorf("cryptolib: plaintext length %d not a multiple of block size %d", len(src), bs)
	}
	if len(iv) != bs {
		return nil, fmt.Errorf("cryptolib: IV length %d != block size %d", len(iv), bs)
	}
	if len(dst) < len(src) {
		return nil, fmt.Errorf("cryptolib: dst too short: %d < %d", len(dst), len(src))
	}
	var prev, tmp [BlockSize]byte
	copy(prev[:], iv)
	switch mode {
	case ECB:
		for i := 0; i < len(src); i += bs {
			for j := 0; j < bs; j++ {
				tmp[j] = src[i+j] ^ iv[j]
			}
			c.EncryptBlock(dst[i:i+bs], tmp[:bs])
		}
	case CBC:
		for i := 0; i < len(src); i += bs {
			for j := 0; j < bs; j++ {
				tmp[j] = src[i+j] ^ prev[j]
			}
			c.EncryptBlock(dst[i:i+bs], tmp[:bs])
			copy(prev[:], dst[i:i+bs])
		}
	case CFB:
		for i := 0; i < len(src); i += bs {
			c.EncryptBlock(tmp[:bs], prev[:bs])
			for j := 0; j < bs; j++ {
				dst[i+j] = src[i+j] ^ tmp[j]
			}
			copy(prev[:], dst[i:i+bs])
		}
	case OFB:
		for i := 0; i < len(src); i += bs {
			c.EncryptBlock(tmp[:bs], prev[:bs])
			copy(prev[:], tmp[:bs])
			for j := 0; j < bs; j++ {
				dst[i+j] = src[i+j] ^ tmp[j]
			}
		}
	default:
		return nil, fmt.Errorf("cryptolib: unknown mode %v", mode)
	}
	return dst[:len(src)], nil
}

// DecryptMode inverts EncryptMode. dst may alias src.
func DecryptMode(c BlockCipher, mode Mode, iv, dst, src []byte) ([]byte, error) {
	bs := c.BlockSize()
	if len(src)%bs != 0 {
		return nil, fmt.Errorf("cryptolib: ciphertext length %d not a multiple of block size %d", len(src), bs)
	}
	if len(iv) != bs {
		return nil, fmt.Errorf("cryptolib: IV length %d != block size %d", len(iv), bs)
	}
	if len(dst) < len(src) {
		return nil, fmt.Errorf("cryptolib: dst too short: %d < %d", len(dst), len(src))
	}
	var prev, cur, tmp [BlockSize]byte
	copy(prev[:], iv)
	switch mode {
	case ECB:
		for i := 0; i < len(src); i += bs {
			c.DecryptBlock(tmp[:bs], src[i:i+bs])
			for j := 0; j < bs; j++ {
				dst[i+j] = tmp[j] ^ iv[j]
			}
		}
	case CBC:
		for i := 0; i < len(src); i += bs {
			copy(cur[:], src[i:i+bs])
			c.DecryptBlock(tmp[:bs], src[i:i+bs])
			for j := 0; j < bs; j++ {
				dst[i+j] = tmp[j] ^ prev[j]
			}
			copy(prev[:], cur[:bs])
		}
	case CFB:
		for i := 0; i < len(src); i += bs {
			copy(cur[:], src[i:i+bs])
			c.EncryptBlock(tmp[:bs], prev[:bs])
			for j := 0; j < bs; j++ {
				dst[i+j] = src[i+j] ^ tmp[j]
			}
			copy(prev[:], cur[:bs])
		}
	case OFB:
		// OFB is symmetric.
		return EncryptMode(c, OFB, iv, dst, src)
	default:
		return nil, fmt.Errorf("cryptolib: unknown mode %v", mode)
	}
	return dst[:len(src)], nil
}
