package cryptolib

// Table-accelerated bit permutations for DES. A FIPS-46 permutation is
// linear over bitwise OR, so the output can be assembled from
// per-input-byte contribution tables built once at init: eight 256-entry
// lookups replace up to 64 single-bit moves. The naive permute() remains
// as the reference; tests assert equality on random inputs.

// permTable holds per-byte contributions for one permutation.
type permTable struct {
	inBytes int
	tab     [8][256]uint64
}

// buildPermTable precomputes contributions for a permutation over inBits
// input bits (inBits must be a multiple of 8).
func buildPermTable(table []byte, inBits uint) *permTable {
	p := &permTable{inBytes: int(inBits / 8)}
	for bytePos := 0; bytePos < p.inBytes; bytePos++ {
		shift := inBits - 8 - uint(bytePos)*8
		for v := 0; v < 256; v++ {
			p.tab[bytePos][v] = permute(uint64(v)<<shift, table, inBits)
		}
	}
	return p
}

// apply runs the permutation via table lookups.
func (p *permTable) apply(x uint64) uint64 {
	var out uint64
	for bytePos := 0; bytePos < p.inBytes; bytePos++ {
		shift := uint((p.inBytes - 1 - bytePos) * 8)
		out |= p.tab[bytePos][byte(x>>shift)]
	}
	return out
}

var (
	ipTable = buildPermTable(initialPermutation[:], 64)
	fpTable = buildPermTable(finalPermutation[:], 64)
	eTable  = buildPermTable(expansion[:], 32)
	pTable  = buildPermTable(roundPermutation[:], 32)
)

// feistelFast is feistel() with table-driven expansion and P.
func feistelFast(r uint32, subkey uint64) uint32 {
	x := eTable.apply(uint64(r)) ^ subkey
	var out uint32
	for i := 0; i < 8; i++ {
		six := byte(x>>uint(42-6*i)) & 0x3f
		row := (six>>4)&2 | six&1
		col := (six >> 1) & 0xf
		out = out<<4 | uint32(sboxes[i][row][col])
	}
	return uint32(pTable.apply(uint64(out)))
}
