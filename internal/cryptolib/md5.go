package cryptolib

import (
	"encoding/binary"
	"math/bits"
)

// MD5Size is the size of an MD5 digest in bytes.
const MD5Size = 16

// md5BlockSize is the MD5 compression block size in bytes.
const md5BlockSize = 64

// md5T is the sine-derived constant table of RFC 1321:
// T[i] = floor(4294967296 * abs(sin(i+1))).
var md5T = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
	0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
	0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
	0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
	0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
	0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
	0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
	0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
	0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
	0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
	0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

var md5Shift = [4][4]uint{
	{7, 12, 17, 22},
	{5, 9, 14, 20},
	{4, 11, 16, 23},
	{6, 10, 15, 21},
}

// MD5 is an incremental MD5 hash (RFC 1321). The zero value is not usable;
// call NewMD5.
type MD5 struct {
	state [4]uint32
	buf   [md5BlockSize]byte
	n     int    // bytes buffered in buf
	len   uint64 // total message length in bytes
}

// NewMD5 returns a freshly initialised MD5 hash.
func NewMD5() *MD5 {
	m := new(MD5)
	m.Reset()
	return m
}

// Reset returns the hash to its initial state.
func (m *MD5) Reset() {
	m.state = [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	m.n = 0
	m.len = 0
}

// Size returns MD5Size.
func (m *MD5) Size() int { return MD5Size }

// BlockSize returns the compression block size, 64.
func (m *MD5) BlockSize() int { return md5BlockSize }

// Write absorbs p into the hash; it never fails.
func (m *MD5) Write(p []byte) (int, error) {
	n := len(p)
	m.len += uint64(n)
	if m.n > 0 {
		c := copy(m.buf[m.n:], p)
		m.n += c
		p = p[c:]
		if m.n == md5BlockSize {
			m.block(m.buf[:])
			m.n = 0
		}
	}
	for len(p) >= md5BlockSize {
		m.block(p[:md5BlockSize])
		p = p[md5BlockSize:]
	}
	if len(p) > 0 {
		m.n = copy(m.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to b and returns the
// result. The hash state is not modified, so writing may continue.
func (m *MD5) Sum(b []byte) []byte {
	// Clone so Sum does not disturb the running state.
	clone := *m
	var pad [md5BlockSize + 8]byte
	pad[0] = 0x80
	msgLen := clone.len
	padLen := 56 - int(msgLen%64)
	if padLen <= 0 {
		padLen += 64
	}
	clone.Write(pad[:padLen])
	var lenBytes [8]byte
	binary.LittleEndian.PutUint64(lenBytes[:], msgLen*8)
	clone.Write(lenBytes[:])
	var out [MD5Size]byte
	for i, s := range clone.state {
		binary.LittleEndian.PutUint32(out[i*4:], s)
	}
	return append(b, out[:]...)
}

func (m *MD5) block(p []byte) {
	var x [16]uint32
	for i := range x {
		x[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	a, b, c, d := m.state[0], m.state[1], m.state[2], m.state[3]
	for i := 0; i < 64; i++ {
		var f uint32
		var g int
		switch {
		case i < 16:
			f = (b & c) | (^b & d)
			g = i
		case i < 32:
			f = (d & b) | (^d & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = b ^ c ^ d
			g = (3*i + 5) % 16
		default:
			f = c ^ (b | ^d)
			g = (7 * i) % 16
		}
		a = b + bits.RotateLeft32(a+f+md5T[i]+x[g], int(md5Shift[i/16][i%4]))
		a, b, c, d = d, a, b, c
	}
	m.state[0] += a
	m.state[1] += b
	m.state[2] += c
	m.state[3] += d
}

// MD5Sum is a one-shot convenience wrapper.
func MD5Sum(data []byte) [MD5Size]byte {
	m := NewMD5()
	m.Write(data)
	var out [MD5Size]byte
	copy(out[:], m.Sum(nil))
	return out
}
