package cryptolib

import (
	"bytes"
	stddes "crypto/des"
	"crypto/rand"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// TestDESKnownAnswer checks the canonical FIPS-46 style vector.
func TestDESKnownAnswer(t *testing.T) {
	key, _ := hex.DecodeString("133457799BBCDFF1")
	pt, _ := hex.DecodeString("0123456789ABCDEF")
	want, _ := hex.DecodeString("85E813540F0AB405")
	d, err := NewDES(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	d.EncryptBlock(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("DES(%x, %x) = %x, want %x", key, pt, got, want)
	}
	back := make([]byte, 8)
	d.DecryptBlock(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt: got %x, want %x", back, pt)
	}
}

// TestDESAgainstStdlib cross-checks our DES against crypto/des on random
// keys and blocks.
func TestDESAgainstStdlib(t *testing.T) {
	f := func(key [8]byte, block [8]byte) bool {
		ours, err := NewDES(key[:])
		if err != nil {
			return false
		}
		std, err := stddes.NewCipher(key[:])
		if err != nil {
			return false
		}
		a := make([]byte, 8)
		b := make([]byte, 8)
		ours.EncryptBlock(a, block[:])
		std.Encrypt(b, block[:])
		if !bytes.Equal(a, b) {
			return false
		}
		ours.DecryptBlock(a, a)
		return bytes.Equal(a, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTripleDESAgainstStdlib(t *testing.T) {
	for _, klen := range []int{16, 24} {
		key := make([]byte, klen)
		if _, err := rand.Read(key); err != nil {
			t.Fatal(err)
		}
		stdKey := key
		if klen == 16 {
			stdKey = append(append([]byte{}, key...), key[:8]...)
		}
		ours, err := NewTripleDES(key)
		if err != nil {
			t.Fatal(err)
		}
		std, err := stddes.NewTripleDESCipher(stdKey)
		if err != nil {
			t.Fatal(err)
		}
		block := make([]byte, 8)
		rand.Read(block)
		a := make([]byte, 8)
		b := make([]byte, 8)
		ours.EncryptBlock(a, block)
		std.Encrypt(b, block)
		if !bytes.Equal(a, b) {
			t.Fatalf("3DES keylen %d: got %x, want %x", klen, a, b)
		}
		ours.DecryptBlock(a, a)
		if !bytes.Equal(a, block) {
			t.Fatalf("3DES keylen %d: roundtrip failed", klen)
		}
	}
}

func TestDESKeyLengthErrors(t *testing.T) {
	if _, err := NewDES(make([]byte, 7)); err == nil {
		t.Error("NewDES accepted a 7-byte key")
	}
	if _, err := NewDES(make([]byte, 9)); err == nil {
		t.Error("NewDES accepted a 9-byte key")
	}
	if _, err := NewTripleDES(make([]byte, 8)); err == nil {
		t.Error("NewTripleDES accepted an 8-byte key")
	}
}

// TestDESInPlace verifies dst may alias src.
func TestDESInPlace(t *testing.T) {
	key := []byte("8bytekey")
	d, err := NewDES(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("datagram")
	orig := append([]byte{}, buf...)
	d.EncryptBlock(buf, buf)
	if bytes.Equal(buf, orig) {
		t.Fatal("encryption was a no-op")
	}
	d.DecryptBlock(buf, buf)
	if !bytes.Equal(buf, orig) {
		t.Fatalf("in-place roundtrip: got %q, want %q", buf, orig)
	}
}

// TestDESComplementProperty checks the classic DES complementation
// property: E(~k, ~p) = ~E(k, p). This exercises every table.
func TestDESComplementProperty(t *testing.T) {
	f := func(key [8]byte, block [8]byte) bool {
		var nkey, nblock [8]byte
		for i := range key {
			nkey[i] = ^key[i]
			nblock[i] = ^block[i]
		}
		d1, _ := NewDES(key[:])
		d2, _ := NewDES(nkey[:])
		a := make([]byte, 8)
		b := make([]byte, 8)
		d1.EncryptBlock(a, block[:])
		d2.EncryptBlock(b, nblock[:])
		for i := range a {
			if a[i] != ^b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The table-accelerated path must agree exactly with the reference
// implementation (and, transitively, with crypto/des).
func TestDESFastMatchesReference(t *testing.T) {
	f := func(key [8]byte, block uint64, decrypt bool) bool {
		d, err := NewDES(key[:])
		if err != nil {
			return false
		}
		return d.crypt(block, decrypt) == d.cryptReference(block, decrypt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPermTableMatchesPermute(t *testing.T) {
	tables := []struct {
		pt     *permTable
		raw    []byte
		inBits uint
	}{
		{ipTable, initialPermutation[:], 64},
		{fpTable, finalPermutation[:], 64},
		{eTable, expansion[:], 32},
		{pTable, roundPermutation[:], 32},
	}
	f := func(x uint64) bool {
		for _, tb := range tables {
			in := x
			if tb.inBits == 32 {
				in &= 0xFFFFFFFF
			}
			if tb.pt.apply(in) != permute(in, tb.raw, tb.inBits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
