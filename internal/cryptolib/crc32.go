package cryptolib

import "encoding/binary"

// CRC-32 (IEEE 802.3 polynomial, reflected form 0xEDB88320). Section 5.3
// of the paper prescribes CRC-32 as the cache-index hash: unlike modulo or
// XOR folding it randomises highly correlated inputs (local network
// addresses, sequential security flow labels) so a direct-mapped key cache
// sees few collision misses.

var crcTable = makeCRCTable()

func makeCRCTable() [256]uint32 {
	var t [256]uint32
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}

// CRC32 computes the CRC-32 checksum of data.
func CRC32(data []byte) uint32 {
	return CRC32Update(0xFFFFFFFF, data) ^ 0xFFFFFFFF
}

// CRC32Update folds data into a running (pre-inversion) CRC state. Start
// with 0xFFFFFFFF and XOR the result with 0xFFFFFFFF to finish.
func CRC32Update(state uint32, data []byte) uint32 {
	for _, b := range data {
		state = crcTable[byte(state)^b] ^ (state >> 8)
	}
	return state
}

// CRC32UpdateString folds a string into a running (pre-inversion) CRC
// state without converting it to a byte slice. The hot-path cache hashes
// use it so that a lookup performs no allocation.
func CRC32UpdateString(state uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		state = crcTable[byte(state)^s[i]] ^ (state >> 8)
	}
	return state
}

// CRC32Fields hashes a sequence of integer fields (ports, addresses,
// labels) without allocating: each field is folded in big-endian order.
// It is the cache-index hash used by the FBS key caches and the combined
// FST/TFKC lookup of Section 7.2.
func CRC32Fields(fields ...uint64) uint32 {
	state := uint32(0xFFFFFFFF)
	var buf [8]byte
	for _, f := range fields {
		binary.BigEndian.PutUint64(buf[:], f)
		state = CRC32Update(state, buf[:])
	}
	return state ^ 0xFFFFFFFF
}
