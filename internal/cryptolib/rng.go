package cryptolib

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"
)

// ConfounderSource produces per-datagram confounder values. The paper
// (Section 5.3) observes that confounders need only be *statistically*
// random, so a cheap linear congruential generator suffices; per-datagram
// *keys* by contrast must be cryptographically random, which is why the
// per-datagram-keying baseline (Section 2.2) needs the far slower
// Blum-Blum-Shub generator.
type ConfounderSource interface {
	// Uint32 returns the next 32-bit value.
	Uint32() uint32
}

// LCG is Knuth's 64-bit linear congruential generator (MMIX constants).
// It is the recommended confounder source: fast and statistically random.
// LCG is not safe for concurrent use; wrap it or use one per send path.
type LCG struct {
	state uint64
}

// NewLCG creates an LCG seeded from the operating system entropy source,
// per the paper's requirement that the seed be randomised at each
// initialisation of FBS.
func NewLCG() *LCG {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// Entropy exhaustion is unrecoverable for a security protocol.
		panic(fmt.Sprintf("cryptolib: reading LCG seed: %v", err))
	}
	return &LCG{state: binary.BigEndian.Uint64(seed[:])}
}

// NewLCGSeeded creates a deterministically seeded LCG for tests and
// reproducible simulations.
func NewLCGSeeded(seed uint64) *LCG { return &LCG{state: seed} }

// Uint64 advances the generator and returns 64 bits.
func (l *LCG) Uint64() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

// Uint32 returns the high 32 bits of the next state (the low bits of an
// LCG are weak).
func (l *LCG) Uint32() uint32 { return uint32(l.Uint64() >> 32) }

// BBS is the Blum-Blum-Shub quadratic residue generator x_{i+1} = x_i^2
// mod n, with n a product of two primes congruent to 3 mod 4. Each step
// yields only the low-order bits of the state; it is cryptographically
// strong but slow — exactly the performance bottleneck the paper ascribes
// to per-datagram keying schemes.
type BBS struct {
	n     *big.Int
	state *big.Int
}

// NewBBS constructs a generator with a fresh random modulus of the given
// bit size (at least 128) and a random seed.
func NewBBS(bits int) (*BBS, error) {
	if bits < 128 {
		return nil, fmt.Errorf("cryptolib: BBS modulus must be at least 128 bits, got %d", bits)
	}
	p, err := blumPrime(bits / 2)
	if err != nil {
		return nil, err
	}
	q, err := blumPrime(bits - bits/2)
	if err != nil {
		return nil, err
	}
	n := new(big.Int).Mul(p, q)
	seed, err := rand.Int(rand.Reader, n)
	if err != nil {
		return nil, fmt.Errorf("cryptolib: seeding BBS: %w", err)
	}
	b := &BBS{n: n, state: seed}
	// Square once so the state is a quadratic residue.
	b.step()
	return b, nil
}

// blumPrime finds a random prime congruent to 3 mod 4.
func blumPrime(bits int) (*big.Int, error) {
	for {
		p, err := rand.Prime(rand.Reader, bits)
		if err != nil {
			return nil, fmt.Errorf("cryptolib: generating Blum prime: %w", err)
		}
		if p.Bit(0) == 1 && p.Bit(1) == 1 { // p ≡ 3 (mod 4)
			return p, nil
		}
	}
}

func (b *BBS) step() {
	b.state.Mul(b.state, b.state)
	b.state.Mod(b.state, b.n)
}

// Byte extracts the next 8 bits, one squaring per bit per the conservative
// (provably secure) parameterisation.
func (b *BBS) Byte() byte {
	var out byte
	for i := 0; i < 8; i++ {
		b.step()
		out = out<<1 | byte(b.state.Bit(0))
	}
	return out
}

// Read fills p with generator output. It never fails; the error is always
// nil and exists to satisfy io.Reader.
func (b *BBS) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = b.Byte()
	}
	return len(p), nil
}

// Uint32 returns 32 bits of generator output.
func (b *BBS) Uint32() uint32 {
	var buf [4]byte
	b.Read(buf[:])
	return binary.BigEndian.Uint32(buf[:])
}

// SystemRandom is a ConfounderSource backed by the operating system CSPRNG
// (crypto/rand); it is the "expensive" ablation point for confounder
// generation.
type SystemRandom struct{}

// Uint32 reads 32 bits from the OS entropy source.
func (SystemRandom) Uint32() uint32 {
	var buf [4]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("cryptolib: reading system randomness: %v", err))
	}
	return binary.BigEndian.Uint32(buf[:])
}
