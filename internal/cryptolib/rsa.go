package cryptolib

import (
	"crypto/rand"
	"crypto/subtle"
	"fmt"
	"math/big"
)

// Textbook RSA with deterministic full-domain-style padding, used by the
// certificate substrate (internal/cert) to sign public-value certificates.
// CryptoLib — the paper's crypto substrate — shipped RSA for exactly this
// purpose. This is a reproduction-quality implementation: correct and
// tested, but (like 1997 practice) not hardened against side channels.

// RSAPublicKey holds an RSA modulus and public exponent.
type RSAPublicKey struct {
	N *big.Int
	E *big.Int
}

// RSAPrivateKey holds the private exponent alongside the public half.
type RSAPrivateKey struct {
	RSAPublicKey
	D *big.Int
}

// GenerateRSA creates an RSA key pair with a modulus of the given bit
// size (at least 512).
func GenerateRSA(bits int) (*RSAPrivateKey, error) {
	if bits < 512 {
		return nil, fmt.Errorf("cryptolib: RSA modulus must be at least 512 bits, got %d", bits)
	}
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("cryptolib: generating RSA prime: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("cryptolib: generating RSA prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // gcd(e, phi) != 1; retry with new primes
		}
		return &RSAPrivateKey{RSAPublicKey: RSAPublicKey{N: n, E: e}, D: d}, nil
	}
}

// padDigest expands an MD5 digest to the modulus size with a fixed,
// deterministic pattern (type-1 style padding: 0x00 0x01 0xFF... 0x00 ||
// digest).
func padDigest(digest []byte, modBytes int) ([]byte, error) {
	if modBytes < len(digest)+11 {
		return nil, fmt.Errorf("cryptolib: RSA modulus too small for digest")
	}
	out := make([]byte, modBytes)
	out[0] = 0x00
	out[1] = 0x01
	for i := 2; i < modBytes-len(digest)-1; i++ {
		out[i] = 0xFF
	}
	out[modBytes-len(digest)-1] = 0x00
	copy(out[modBytes-len(digest):], digest)
	return out, nil
}

// Sign produces a signature over message: RSA-decrypt of the padded MD5
// digest.
func (k *RSAPrivateKey) Sign(message []byte) ([]byte, error) {
	digest := MD5Sum(message)
	modBytes := (k.N.BitLen() + 7) / 8
	padded, err := padDigest(digest[:], modBytes)
	if err != nil {
		return nil, err
	}
	m := new(big.Int).SetBytes(padded)
	sig := new(big.Int).Exp(m, k.D, k.N)
	return sig.FillBytes(make([]byte, modBytes)), nil
}

// Verify checks a signature produced by Sign.
func (k *RSAPublicKey) Verify(message, sig []byte) bool {
	modBytes := (k.N.BitLen() + 7) / 8
	if len(sig) != modBytes {
		return false
	}
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(k.N) >= 0 {
		return false
	}
	m := new(big.Int).Exp(s, k.E, k.N)
	digest := MD5Sum(message)
	want, err := padDigest(digest[:], modBytes)
	if err != nil {
		return false
	}
	got := m.FillBytes(make([]byte, modBytes))
	return subtle.ConstantTimeCompare(got, want) == 1
}
