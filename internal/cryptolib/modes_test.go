package cryptolib

import (
	"bytes"
	"crypto/cipher"
	stddes "crypto/des"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func testCipher(t *testing.T) *DES {
	t.Helper()
	d, err := NewDES([]byte("01234567"))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestModesRoundTrip(t *testing.T) {
	d := testCipher(t)
	for _, mode := range []Mode{ECB, CBC, CFB, OFB} {
		t.Run(mode.String(), func(t *testing.T) {
			f := func(data []byte, iv [8]byte) bool {
				pt := Pad(data, BlockSize)
				ct := make([]byte, len(pt))
				if _, err := EncryptMode(d, mode, iv[:], ct, pt); err != nil {
					return false
				}
				back := make([]byte, len(ct))
				if _, err := DecryptMode(d, mode, iv[:], back, ct); err != nil {
					return false
				}
				out, err := Unpad(back, BlockSize)
				if err != nil {
					return false
				}
				return bytes.Equal(out, data)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCBCAgainstStdlib cross-checks CBC mode against crypto/cipher.
func TestCBCAgainstStdlib(t *testing.T) {
	key := []byte("cbc-key!")
	iv := []byte("initvect")
	d, err := NewDES(key)
	if err != nil {
		t.Fatal(err)
	}
	std, err := stddes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 64)
	rand.Read(pt)

	ours := make([]byte, len(pt))
	if _, err := EncryptMode(d, CBC, iv, ours, pt); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(pt))
	cipher.NewCBCEncrypter(std, iv).CryptBlocks(want, pt)
	if !bytes.Equal(ours, want) {
		t.Fatalf("CBC mismatch:\n got %x\nwant %x", ours, want)
	}
}

// TestOFBAgainstStdlib cross-checks OFB keystream against crypto/cipher.
func TestOFBAgainstStdlib(t *testing.T) {
	key := []byte("ofb-key!")
	iv := []byte("initvect")
	d, _ := NewDES(key)
	std, _ := stddes.NewCipher(key)
	pt := make([]byte, 64)
	rand.Read(pt)

	ours := make([]byte, len(pt))
	if _, err := EncryptMode(d, OFB, iv, ours, pt); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(pt))
	cipher.NewOFB(std, iv).XORKeyStream(want, pt)
	if !bytes.Equal(ours, want) {
		t.Fatalf("OFB mismatch:\n got %x\nwant %x", ours, want)
	}
}

func TestECBConfounderHidesIdenticalBlocks(t *testing.T) {
	d := testCipher(t)
	pt := bytes.Repeat([]byte("samedata"), 4) // four identical blocks
	iv1 := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	iv2 := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	ct1 := make([]byte, len(pt))
	ct2 := make([]byte, len(pt))
	EncryptMode(d, ECB, iv1, ct1, pt)
	EncryptMode(d, ECB, iv2, ct2, pt)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("different confounders produced identical ECB ciphertexts")
	}
	// Within one datagram, identical plaintext blocks still encrypt
	// identically under ECB+confounder — that is the documented residual
	// weakness of ECB relative to CBC, not a bug.
	if !bytes.Equal(ct1[0:8], ct1[8:16]) {
		t.Fatal("ECB mode is not deterministic per block")
	}
}

func TestModeErrors(t *testing.T) {
	d := testCipher(t)
	iv := make([]byte, 8)
	if _, err := EncryptMode(d, CBC, iv, make([]byte, 8), make([]byte, 7)); err == nil {
		t.Error("EncryptMode accepted unaligned plaintext")
	}
	if _, err := EncryptMode(d, CBC, iv[:4], make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("EncryptMode accepted short IV")
	}
	if _, err := EncryptMode(d, CBC, iv, make([]byte, 4), make([]byte, 8)); err == nil {
		t.Error("EncryptMode accepted short dst")
	}
	if _, err := DecryptMode(d, Mode(99), iv, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("DecryptMode accepted unknown mode")
	}
	if _, err := EncryptMode(d, Mode(99), iv, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("EncryptMode accepted unknown mode")
	}
}

func TestPadUnpad(t *testing.T) {
	f := func(data []byte) bool {
		p := Pad(data, BlockSize)
		if len(p)%BlockSize != 0 || len(p) <= len(data) {
			return false
		}
		out, err := Unpad(p, BlockSize)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},                // unaligned
		{0, 0, 0, 0, 0, 0, 0, 0}, // pad byte 0
		{1, 1, 1, 1, 1, 1, 1, 9}, // pad byte > block size
		{1, 1, 1, 1, 1, 2, 3, 3}, // inconsistent padding
	}
	for _, c := range cases {
		if _, err := Unpad(c, BlockSize); err == nil {
			t.Errorf("Unpad(%v) succeeded, want error", c)
		}
	}
}

// TestCFBAgainstStdlib cross-checks CFB mode against crypto/cipher.
func TestCFBAgainstStdlib(t *testing.T) {
	key := []byte("cfb-key!")
	iv := []byte("initvect")
	d, _ := NewDES(key)
	std, _ := stddes.NewCipher(key)
	pt := make([]byte, 64)
	rand.Read(pt)

	ours := make([]byte, len(pt))
	if _, err := EncryptMode(d, CFB, iv, ours, pt); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(pt))
	cipher.NewCFBEncrypter(std, iv).XORKeyStream(want, pt)
	if !bytes.Equal(ours, want) {
		t.Fatalf("CFB mismatch:\n got %x\nwant %x", ours, want)
	}
	back := make([]byte, len(pt))
	if _, err := DecryptMode(d, CFB, iv, back, ours); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("CFB decrypt mismatch")
	}
}
