package gateway

import (
	"strconv"

	"fbs/internal/obs"
	"fbs/internal/principal"
)

// RegisterMetrics mounts the gateway on an obs.Registry as one dynamic
// collector. A static per-endpoint registration (obs.RegisterEndpoint)
// would go stale at the first config swap — the registry has no
// unregister — so the gateway instead snapshots whatever epoch is live
// at scrape time and emits every shard's families itself, labelled
// with tenant, shard and config_epoch. The config_epoch label means a
// swap starts a new labelled series instead of making cumulative
// counters appear to reset mid-scrape.
func (g *Gateway) RegisterMetrics(r *obs.Registry) {
	r.RegisterFunc(func() []obs.Family {
		st := g.Stats()
		fams := []obs.Family{
			obs.GaugeFamily("fbs_gateway_config_epoch", "Sequence number of the live config epoch.", float64(st.Epoch)),
			obs.CounterFamily("fbs_gateway_swaps_total", "Completed zero-downtime config swaps.", st.Swaps),
			obs.CounterFamily("fbs_gateway_received_total", "Datagrams pulled off gateway listeners.", st.Received),
			obs.CounterFamily("fbs_gateway_delivered_total", "Accepted datagrams handed to the tenant mode.", st.Delivered),
			obs.CounterFamily("fbs_gateway_echoed_total", "Echo replies sealed and sent.", st.Echoed),
			obs.CounterFamily("fbs_gateway_echo_failures_total", "Echo replies that failed to seal or send.", st.EchoFailures),
			obs.CounterFamily("fbs_gateway_no_tenant_total", "Datagrams whose destination matched no tenant.", st.NoTenant),
			obs.CounterFamily("fbs_gateway_absorbed_total", "Prefilter control frames absorbed at the gateway.", st.Absorbed),
			obs.GaugeFamily("fbs_gateway_tenants", "Tenants in the live config epoch.", float64(len(st.Tenants))),
		}
		flows := obs.Family{
			Name: "fbs_gateway_active_flows",
			Help: "Active flows per tenant in the live epoch.",
			Type: "gauge",
		}
		for _, ts := range st.Tenants {
			flows.Samples = append(flows.Samples, obs.Sample{
				Labels: []obs.Label{{Key: "tenant", Value: ts.Name}},
				Value:  float64(ts.ActiveFlows),
			})
		}
		fams = append(fams, flows)

		// Per-shard endpoint families for the live epoch, through the
		// same exposition path a standalone endpoint uses.
		ep := g.current.Load()
		if ep == nil {
			return fams
		}
		epochLbl := obs.Label{Key: "config_epoch", Value: strconv.FormatUint(ep.seq, 10)}
		for _, ts := range st.Tenants {
			plane := ep.tenants[principal.Address(ts.Address)]
			if plane == nil {
				continue
			}
			for i := 0; i < plane.grp.NumShards(); i++ {
				fams = append(fams, obs.EndpointFamilies(plane.grp.Shard(i),
					obs.Label{Key: "tenant", Value: ts.Name},
					obs.Label{Key: "shard", Value: strconv.Itoa(i)},
					epochLbl,
				)...)
			}
		}
		return fams
	})
}
