// Package gateway is the deployable face of the repo: a long-running
// datagram-security gateway assembled from the library subsystems
// (core endpoints and shards, budgets, admission, prefilter, keying,
// obs) behind a declarative configuration with zero-downtime
// reconfiguration.
//
// The operational model leans on the paper's central property: every
// byte of per-flow state an endpoint holds is soft — rebuildable from
// the key-management plane. That is what makes reconfiguration cheap
// enough to do live. A configuration change builds a complete new data
// plane (a config epoch), warms it from the old one's keying caches
// (HandoffSoftState: certificates always, master keys when the
// identity is unchanged), atomically redirects new datagrams to it,
// and quiesces the old epoch — in-flight datagrams finish against the
// configuration they arrived under, and no flow is ever dropped:
// anything not handed off re-derives through the normal upcall path.
// Listener sockets live outside the epochs, so the swap never rebinds
// a port and never loses a datagram to a closed socket.
package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"fbs/internal/core"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("64s", "10m") in the config file, while still accepting plain
// nanosecond numbers.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "64s"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	case string:
		dur, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("gateway: bad duration %q: %w", x, err)
		}
		*d = Duration(dur)
		return nil
	default:
		return fmt.Errorf("gateway: duration must be a string or number, got %T", v)
	}
}

// Config is the gateway's declarative configuration: what to serve and
// how. It is the unit of atomic reconfiguration — SIGHUP reload, the
// admin API's POST /config, and programmatic Swap all take a complete
// Config and realise it as a new config epoch.
type Config struct {
	// AdminAddr is the admin/observability listen address (loopback
	// recommended — the plane is unauthenticated). Empty disables the
	// admin server. Fixed for the life of the process: changing it in
	// a reload is rejected rather than silently ignored.
	AdminAddr string `json:"admin_addr,omitempty"`
	// DrainTimeout bounds how long a retiring epoch (or the final
	// shutdown) waits for in-flight datagrams. Default 5s.
	DrainTimeout Duration `json:"drain_timeout,omitempty"`
	// Tenants are the isolated data planes. Each keys for its own
	// principal address with its own shards, policy, budget, admission
	// and prefilter settings; datagrams route to a tenant by their
	// destination address.
	Tenants []TenantConfig `json:"tenants"`
}

// TenantConfig is one tenant's slice of the gateway: an independent
// sharded endpoint with its own identity, policy and resource
// envelope. Tenancy is partitioning by construction — tenants share no
// caches, budgets, quotas or counters.
type TenantConfig struct {
	// Name labels the tenant in metrics, stats and the admin API.
	Name string `json:"name"`
	// Address is the principal address this tenant keys for; incoming
	// datagrams with this destination route here. Must be unique.
	Address string `json:"address"`
	// Listen is the transport bind spec handed to Options.Listen —
	// for the UDP daemon a host:port, for the in-memory harness
	// unused. Empty means the Listen hook picks (e.g. Address).
	Listen string `json:"listen,omitempty"`
	// Shards is the number of data-plane shards; default 1.
	Shards int `json:"shards,omitempty"`
	// Suite names the default cipher suite ("DES", "AES-128-GCM",
	// "ChaCha20-Poly1305", ...); default AES-128-GCM.
	Suite string `json:"suite,omitempty"`
	// AcceptSuites is the accept-set for incoming datagrams, by suite
	// name. Empty leaves the endpoint's default acceptance policy.
	AcceptSuites []string `json:"accept_suites,omitempty"`
	// Mode selects what the gateway does with accepted payloads:
	// "echo" (default) seals each payload back to its sender — the
	// round trip the reconfiguration tests account end to end — and
	// "sink" just counts them.
	Mode string `json:"mode,omitempty"`
	// SecretEcho encrypts echoed bodies (echo mode only).
	SecretEcho bool `json:"secret_echo,omitempty"`
	// FreshnessWindow is the receive-side timestamp window; 0 keeps
	// the core default (10m).
	FreshnessWindow Duration `json:"freshness_window,omitempty"`
	// FlowIdleTimeout ends a flow after this idle gap; 0 keeps the
	// core default policy.
	FlowIdleTimeout Duration `json:"flow_idle_timeout,omitempty"`
	// FlowMaxPackets rekeys a flow after this many datagrams (0 = no
	// limit).
	FlowMaxPackets uint64 `json:"flow_max_packets,omitempty"`
	// ReplayCache enables exact duplicate suppression.
	ReplayCache bool `json:"replay_cache,omitempty"`
	// StateBudgetBytes is this tenant's soft-state hard limit (0 =
	// unbudgeted). Because every tenant owns a private budget, one
	// tenant's state can never evict another's.
	StateBudgetBytes int64 `json:"state_budget_bytes,omitempty"`
	// StateBudgetHighWater is the pressure threshold; 0 defaults to
	// 80% of StateBudgetBytes.
	StateBudgetHighWater int64 `json:"state_budget_high_water,omitempty"`
	// Admission bounds this tenant's new-peer keying work.
	Admission *AdmissionConfig `json:"admission,omitempty"`
	// Prefilter configures this tenant's stateless edge pre-filter.
	Prefilter *PrefilterConfig `json:"prefilter,omitempty"`
}

// AdmissionConfig mirrors core.AdmissionConfig in config-file form.
type AdmissionConfig struct {
	UpcallRate  float64  `json:"upcall_rate,omitempty"`
	UpcallBurst int      `json:"upcall_burst,omitempty"`
	PrefixQuota int      `json:"prefix_quota,omitempty"`
	PrefixLen   int      `json:"prefix_len,omitempty"`
	QuotaWindow Duration `json:"quota_window,omitempty"`
}

// PrefilterConfig mirrors the operator-relevant subset of
// core.PrefilterConfig in config-file form.
type PrefilterConfig struct {
	Enable        bool     `json:"enable"`
	EpochInterval Duration `json:"epoch_interval,omitempty"`
	CookieTTL     Duration `json:"cookie_ttl,omitempty"`
	PrefixLen     int      `json:"prefix_len,omitempty"`
	ShedThreshold uint32   `json:"shed_threshold,omitempty"`
	DecayEvery    uint64   `json:"decay_every,omitempty"`
}

// suiteByName resolves a registered suite by its canonical name.
func suiteByName(name string) core.Suite {
	for _, s := range core.Suites() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// drainTimeout returns the configured drain bound or the 5s default.
func (c *Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return time.Duration(c.DrainTimeout)
	}
	return 5 * time.Second
}

// Validate checks the configuration without touching any sockets or
// building any state — the daemon's -check flag and every swap run it
// first, so a bad config is refused while the old epoch keeps serving.
func (c *Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("gateway: config needs at least one tenant")
	}
	names := make(map[string]bool, len(c.Tenants))
	addrs := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("gateway: tenant %d has no name", i)
		}
		if names[t.Name] {
			return fmt.Errorf("gateway: duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
		if t.Address == "" {
			return fmt.Errorf("gateway: tenant %q has no address", t.Name)
		}
		if addrs[t.Address] {
			return fmt.Errorf("gateway: duplicate tenant address %q", t.Address)
		}
		addrs[t.Address] = true
		if t.Shards < 0 {
			return fmt.Errorf("gateway: tenant %q: negative shard count", t.Name)
		}
		if t.Suite != "" && suiteByName(t.Suite) == nil {
			return fmt.Errorf("gateway: tenant %q: unknown suite %q", t.Name, t.Suite)
		}
		for _, s := range t.AcceptSuites {
			if suiteByName(s) == nil {
				return fmt.Errorf("gateway: tenant %q: unknown accept suite %q", t.Name, s)
			}
		}
		switch t.Mode {
		case "", "echo", "sink":
		default:
			return fmt.Errorf("gateway: tenant %q: unknown mode %q (want echo or sink)", t.Name, t.Mode)
		}
		if pf := t.Prefilter; pf != nil && pf.Enable &&
			pf.EpochInterval > 0 && pf.EpochInterval < Duration(time.Second) {
			// Same floor core enforces at endpoint construction;
			// catching it here gives -check the error too.
			return fmt.Errorf("gateway: tenant %q: prefilter epoch_interval %v below the 1s epoch granularity",
				t.Name, time.Duration(pf.EpochInterval))
		}
	}
	return nil
}

// Clone deep-copies the config via its JSON form (the admin API's
// PATCH path mutates a clone, never the live epoch's config).
func (c *Config) Clone() (*Config, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	out := new(Config)
	if err := json.Unmarshal(b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Parse decodes and validates a JSON config. Unknown fields are
// errors: a typoed knob should fail loudly at load, not silently run
// with defaults.
func Parse(b []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	cfg := new(Config)
	if err := dec.Decode(cfg); err != nil {
		return nil, fmt.Errorf("gateway: parse config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// shardsOrDefault applies the single-shard default.
func (t *TenantConfig) shardsOrDefault() int {
	if t.Shards > 0 {
		return t.Shards
	}
	return 1
}

// coreConfigFor translates a tenant section into the per-shard
// core.Config (minus Identity, Transport, Directory, Verifier and
// Clock, which the gateway injects).
func (t *TenantConfig) coreConfigFor() (core.Config, error) {
	cfg := core.Config{}
	suiteName := t.Suite
	if suiteName == "" {
		suiteName = "AES-128-GCM"
	}
	s := suiteByName(suiteName)
	if s == nil {
		return cfg, fmt.Errorf("gateway: tenant %q: unknown suite %q", t.Name, suiteName)
	}
	cfg.Cipher = s.ID()
	for _, name := range t.AcceptSuites {
		as := suiteByName(name)
		if as == nil {
			return cfg, fmt.Errorf("gateway: tenant %q: unknown accept suite %q", t.Name, name)
		}
		cfg.AcceptCiphers = append(cfg.AcceptCiphers, as.ID())
	}
	if t.FreshnessWindow > 0 {
		cfg.FreshnessWindow = time.Duration(t.FreshnessWindow)
	}
	if t.FlowIdleTimeout > 0 || t.FlowMaxPackets > 0 {
		p := core.ThresholdPolicy{Threshold: time.Duration(t.FlowIdleTimeout), MaxPackets: t.FlowMaxPackets}
		if p.Threshold <= 0 {
			p.Threshold = 10 * time.Minute
		}
		cfg.Policy = p
	}
	cfg.EnableReplayCache = t.ReplayCache
	if t.StateBudgetBytes > 0 {
		high := t.StateBudgetHighWater
		if high <= 0 {
			high = t.StateBudgetBytes * 8 / 10
		}
		cfg.StateBudget = core.NewBudget(high, t.StateBudgetBytes)
	}
	if a := t.Admission; a != nil {
		cfg.Admission = core.AdmissionConfig{
			UpcallRate:  a.UpcallRate,
			UpcallBurst: a.UpcallBurst,
			PrefixQuota: a.PrefixQuota,
			PrefixLen:   a.PrefixLen,
			QuotaWindow: time.Duration(a.QuotaWindow),
		}
	}
	if pf := t.Prefilter; pf != nil && pf.Enable {
		cfg.Prefilter = core.PrefilterConfig{
			Enable:        true,
			EpochInterval: time.Duration(pf.EpochInterval),
			CookieTTL:     time.Duration(pf.CookieTTL),
			PrefixLen:     pf.PrefixLen,
			ShedThreshold: pf.ShedThreshold,
			DecayEvery:    pf.DecayEvery,
		}
	}
	return cfg, nil
}
