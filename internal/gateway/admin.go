package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"

	"fbs/internal/principal"
)

// ConfigHandler returns the admin-plane HTTP handler for /config,
// in the style of Caddy's admin API:
//
//	GET   /config  → {"epoch": N, "config": {...}}   current config
//	POST  /config  → {"epoch": N+1, ...}             full atomic swap
//	PATCH /config  → {"epoch": ..., ...}             targeted mutation
//
// PATCH bodies name one tenant and one mutation; all but flush_peer are
// sugar over a full swap (clone current config, edit, Swap), so they
// inherit the same all-or-nothing validation and warm handoff:
//
//	{"tenant": "edge", "accept_suites": ["AES-128-GCM", "ChaCha20-Poly1305"]}
//	{"tenant": "edge", "state_budget_bytes": 1048576}
//	{"tenant": "edge", "admission": {...}}
//	{"tenant": "edge", "flush_peer": "client-7"}   // in-place, no new epoch
//
// The handler is mounted on an obs.Admin via Handle("/config", ...), so
// it shares the observability plane's listener and graceful shutdown.
func (g *Gateway) ConfigHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			cfg := g.CurrentConfig()
			if cfg == nil {
				http.Error(w, "gateway not running", http.StatusServiceUnavailable)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"epoch": g.Epoch(), "config": cfg})
		case http.MethodPost:
			// Malformed JSON (or a typoed field) is 400; a well-formed
			// config that fails validation or realisation is 422 — the
			// Swap call runs Validate before touching anything live.
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
			dec.DisallowUnknownFields()
			cfg := new(Config)
			if err := dec.Decode(cfg); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			rep, err := g.Swap(cfg)
			if err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			writeJSON(w, http.StatusOK, rep)
		case http.MethodPatch:
			g.handlePatch(w, r)
		default:
			w.Header().Set("Allow", "GET, POST, PATCH")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// patchRequest is one targeted mutation of the running config.
type patchRequest struct {
	Tenant           string           `json:"tenant"`
	AcceptSuites     []string         `json:"accept_suites,omitempty"`
	StateBudgetBytes *int64           `json:"state_budget_bytes,omitempty"`
	Admission        *AdmissionConfig `json:"admission,omitempty"`
	FlushPeer        string           `json:"flush_peer,omitempty"`
}

func (g *Gateway) handlePatch(w http.ResponseWriter, r *http.Request) {
	var req patchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Tenant == "" {
		http.Error(w, "patch: tenant is required", http.StatusBadRequest)
		return
	}

	// flush_peer is the one in-place mutation: it evicts soft state
	// inside the live epoch rather than minting a new one.
	if req.FlushPeer != "" {
		if err := g.FlushPeer(req.Tenant, principal.Address(req.FlushPeer)); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": g.Epoch(), "flushed_peer": req.FlushPeer})
		return
	}

	cur := g.CurrentConfig()
	if cur == nil {
		http.Error(w, "gateway not running", http.StatusServiceUnavailable)
		return
	}
	next, err := cur.Clone()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var tc *TenantConfig
	for i := range next.Tenants {
		if next.Tenants[i].Name == req.Tenant {
			tc = &next.Tenants[i]
			break
		}
	}
	if tc == nil {
		http.Error(w, fmt.Sprintf("patch: no tenant %q", req.Tenant), http.StatusNotFound)
		return
	}
	mutated := false
	if req.AcceptSuites != nil {
		tc.AcceptSuites = req.AcceptSuites
		mutated = true
	}
	if req.StateBudgetBytes != nil {
		tc.StateBudgetBytes = *req.StateBudgetBytes
		mutated = true
	}
	if req.Admission != nil {
		tc.Admission = req.Admission
		mutated = true
	}
	if !mutated {
		http.Error(w, "patch: no mutation given", http.StatusBadRequest)
		return
	}
	rep, err := g.Swap(next)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}
