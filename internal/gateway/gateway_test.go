package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fbs"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/obs"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// gwWorld is the in-memory harness: a domain (CA + directory), a
// lossless network, and a memoised identity store so a tenant keeps
// the same keys across config swaps — exactly what a daemon's
// provisioning state provides.
type gwWorld struct {
	t     *testing.T
	dom   *fbs.Domain
	net   *transport.Network
	clock *core.SimClock

	mu  sync.Mutex
	ids map[principal.Address]*principal.Identity
}

func newGWWorld(t *testing.T) *gwWorld {
	t.Helper()
	clock := core.NewSimClock(time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))
	dom, err := fbs.NewDomain("gw-test", fbs.WithGroup(cryptolib.TestGroup), fbs.WithClock(clock))
	if err != nil {
		t.Fatalf("NewDomain: %v", err)
	}
	return &gwWorld{
		t:     t,
		dom:   dom,
		net:   transport.NewNetwork(transport.Impairments{}),
		clock: clock,
		ids:   make(map[principal.Address]*principal.Identity),
	}
}

func (w *gwWorld) identity(tc TenantConfig) (*principal.Identity, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	addr := principal.Address(tc.Address)
	if id, ok := w.ids[addr]; ok {
		return id, nil
	}
	id, err := w.dom.NewPrincipal(addr)
	if err != nil {
		return nil, err
	}
	w.ids[addr] = id
	return id, nil
}

func (w *gwWorld) options() Options {
	return Options{
		Identity: w.identity,
		Listen: func(tc TenantConfig) (transport.Transport, error) {
			return w.net.Attach(principal.Address(tc.Address), 4096)
		},
		Directory: w.dom.Directory(),
		Verifier:  w.dom.Verifier(),
		Clock:     w.clock,
	}
}

func (w *gwWorld) gateway(cfg *Config) *Gateway {
	w.t.Helper()
	g, err := New(w.options())
	if err != nil {
		w.t.Fatalf("New: %v", err)
	}
	if err := g.Start(cfg); err != nil {
		w.t.Fatalf("Start: %v", err)
	}
	w.t.Cleanup(func() { g.Shutdown(2 * time.Second) }) //nolint:errcheck // idempotent safety net
	return g
}

func (w *gwWorld) client(addr string) *core.Endpoint {
	w.t.Helper()
	ep, err := w.dom.NewEndpoint(principal.Address(addr), w.net)
	if err != nil {
		w.t.Fatalf("client %s: %v", addr, err)
	}
	w.t.Cleanup(func() { ep.Close() })
	return ep
}

func oneTenant() *Config {
	return &Config{Tenants: []TenantConfig{{
		Name:        "edge",
		Address:     "gw-edge",
		Shards:      2,
		ReplayCache: true,
	}}}
}

// checkReconciliation asserts the gateway-level drop-ledger identity:
// every datagram pulled off a listener is accounted exactly once.
func checkReconciliation(t *testing.T, st Stats) {
	t.Helper()
	if st.EchoFailures != 0 {
		t.Fatalf("echo failures: %d (seal-side drops would blur the ledger)", st.EchoFailures)
	}
	var drops uint64
	for _, v := range st.Drops {
		drops += v
	}
	accounted := st.Accepted + drops + st.NoTenant + st.Absorbed + st.RetryStarved
	if st.Received != accounted {
		t.Fatalf("ledger does not reconcile: received %d, accounted %d (accepted %d + drops %d + noTenant %d + absorbed %d + retryStarved %d)",
			st.Received, accounted, st.Accepted, drops, st.NoTenant, st.Absorbed, st.RetryStarved)
	}
}

func TestGatewayBootEchoDrain(t *testing.T) {
	w := newGWWorld(t)
	g := w.gateway(oneTenant())
	if g.Epoch() != 1 {
		t.Fatalf("epoch after Start = %d, want 1", g.Epoch())
	}

	client := w.client("client-1")
	const n = 40
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("ping-%03d", i)
		if err := client.SendTo("gw-edge", []byte(msg), true); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		dg, err := client.Receive()
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if string(dg.Payload) != msg {
			t.Fatalf("echo %d = %q, want %q", i, dg.Payload, msg)
		}
	}

	st, err := g.Shutdown(2 * time.Second)
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st.Received != n || st.Accepted != n || st.Echoed != n {
		t.Fatalf("stats after drain: received %d accepted %d echoed %d, want %d each",
			st.Received, st.Accepted, st.Echoed, n)
	}
	checkReconciliation(t, st)

	if _, err := g.Swap(oneTenant()); err == nil {
		t.Fatal("Swap after Shutdown should be refused")
	}
	if g.CurrentConfig() != nil {
		t.Fatal("CurrentConfig should be nil after Shutdown")
	}
}

// TestGatewaySwapUnderTrafficLossless is the tentpole scenario: clients
// stream round trips while the config is swapped repeatedly (including
// a shard-count change). Every datagram must reconcile, every swap must
// carry soft state, and the successor epochs must never redo a master
// key exponentiation for an established peer.
func TestGatewaySwapUnderTrafficLossless(t *testing.T) {
	w := newGWWorld(t)
	cfg := oneTenant()
	g := w.gateway(cfg)

	const clients = 3
	const rounds = 60
	var done atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		ep := w.client(fmt.Sprintf("client-%d", c))
		wg.Add(1)
		go func(c int, ep *core.Endpoint) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				msg := fmt.Sprintf("c%d-%04d", c, i)
				if err := ep.SendTo("gw-edge", []byte(msg), true); err != nil {
					errs <- fmt.Errorf("client %d send %d: %w", c, i, err)
					return
				}
				dg, err := ep.Receive()
				if err != nil {
					errs <- fmt.Errorf("client %d echo %d: %w", c, i, err)
					return
				}
				if string(dg.Payload) != msg {
					errs <- fmt.Errorf("client %d echo %d = %q, want %q", c, i, dg.Payload, msg)
					return
				}
				done.Add(1)
			}
		}(c, ep)
	}

	const total = clients * rounds
	var reports []*SwapReport
	for s := 0; s < 3; s++ {
		for done.Load() < int64((s+1)*total/4) {
			time.Sleep(time.Millisecond)
		}
		next, err := cfg.Clone()
		if err != nil {
			t.Fatalf("clone: %v", err)
		}
		next.Tenants[0].FlowMaxPackets = uint64(1000 + s)
		if s == 1 {
			next.Tenants[0].Shards = 4 // resharding mid-flight: union fan-out handoff
		}
		rep, err := g.Swap(next)
		if err != nil {
			t.Fatalf("swap %d under load: %v", s, err)
		}
		reports = append(reports, rep)
		cfg = next
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, rep := range reports {
		if rep.DrainErr != "" {
			t.Fatalf("swap %d drain: %s", i, rep.DrainErr)
		}
		if rep.Certs == 0 || rep.MasterKeys == 0 {
			t.Fatalf("swap %d was cold (certs %d, master keys %d) — soft state not handed off",
				i, rep.Certs, rep.MasterKeys)
		}
	}

	// The live epoch must have been warmed, not re-keyed: zero
	// exponentiations across all its shards even though three peers
	// kept flowing straight through three swaps.
	ep := g.current.Load()
	for _, plane := range ep.tenants {
		for i := 0; i < plane.grp.NumShards(); i++ {
			if ks, _, _, _ := plane.grp.Shard(i).KeyStats(); ks.MasterKeyComputes != 0 {
				t.Fatalf("epoch %d shard %d computed %d master keys after warm handoff, want 0",
					ep.seq, i, ks.MasterKeyComputes)
			}
		}
	}

	st, err := g.Shutdown(2 * time.Second)
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st.Swaps != 4 { // Start + 3 reloads
		t.Fatalf("swaps = %d, want 4", st.Swaps)
	}
	if st.Received != total || st.Echoed != total {
		t.Fatalf("received %d echoed %d, want %d each (an in-flight datagram was lost across a swap)",
			st.Received, st.Echoed, total)
	}
	if st.RetryStarved != 0 {
		t.Fatalf("retry starved = %d, want 0", st.RetryStarved)
	}
	checkReconciliation(t, st)
}

func TestGatewayTenantAddRemoveAndSink(t *testing.T) {
	w := newGWWorld(t)
	cfg := &Config{Tenants: []TenantConfig{
		{Name: "alpha", Address: "gw-alpha"},
		{Name: "beta", Address: "gw-beta"},
	}}
	g := w.gateway(cfg)

	ca := w.client("client-a")
	if err := ca.SendTo("gw-alpha", []byte("hello-a"), true); err != nil {
		t.Fatalf("send alpha: %v", err)
	}
	if _, err := ca.Receive(); err != nil {
		t.Fatalf("echo alpha: %v", err)
	}

	// Reload: drop beta, add gamma as a sink.
	next := &Config{Tenants: []TenantConfig{
		{Name: "alpha", Address: "gw-alpha"},
		{Name: "gamma", Address: "gw-gamma", Mode: "sink"},
	}}
	if _, err := g.Swap(next); err != nil {
		t.Fatalf("swap: %v", err)
	}

	// Beta's listener must be released: its address is free to bind.
	tr, err := w.net.Attach("gw-beta", 1)
	if err != nil {
		t.Fatalf("removed tenant's listener still bound: %v", err)
	}
	tr.Close()

	// Gamma accepts but does not echo.
	if err := ca.SendTo("gw-gamma", []byte("to-sink"), true); err != nil {
		t.Fatalf("send gamma: %v", err)
	}
	// Alpha still echoes on its original, never-rebound listener.
	if err := ca.SendTo("gw-alpha", []byte("hello-again"), true); err != nil {
		t.Fatalf("send alpha post-swap: %v", err)
	}
	dg, err := ca.Receive()
	if err != nil {
		t.Fatalf("echo alpha post-swap: %v", err)
	}
	if string(dg.Payload) != "hello-again" {
		t.Fatalf("echo = %q, want hello-again (sink must not echo)", dg.Payload)
	}

	st, err := g.Shutdown(2 * time.Second)
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st.Received != 3 || st.Accepted != 3 || st.Delivered != 3 || st.Echoed != 2 {
		t.Fatalf("stats: received %d accepted %d delivered %d echoed %d, want 3/3/3/2",
			st.Received, st.Accepted, st.Delivered, st.Echoed)
	}
	checkReconciliation(t, st)
}

func TestGatewayAdminAddrChangeRejected(t *testing.T) {
	w := newGWWorld(t)
	cfg := oneTenant()
	cfg.AdminAddr = "127.0.0.1:9180"
	g := w.gateway(cfg)

	next, err := cfg.Clone()
	if err != nil {
		t.Fatal(err)
	}
	next.AdminAddr = "127.0.0.1:9181"
	if _, err := g.Swap(next); err == nil || !strings.Contains(err.Error(), "admin_addr") {
		t.Fatalf("admin_addr change accepted across reload: %v", err)
	}
	if g.Epoch() != 1 {
		t.Fatalf("rejected swap advanced the epoch to %d", g.Epoch())
	}
}

func TestGatewaySwapRollbackReleasesNewListeners(t *testing.T) {
	w := newGWWorld(t)
	opts := w.options()
	inner := opts.Identity
	var failBroken atomic.Bool
	opts.Identity = func(tc TenantConfig) (*principal.Identity, error) {
		if failBroken.Load() && tc.Name == "broken" {
			return nil, fmt.Errorf("provisioning says no")
		}
		return inner(tc)
	}
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(oneTenant()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Shutdown(time.Second) }) //nolint:errcheck

	failBroken.Store(true)
	bad, err := oneTenant().Clone()
	if err != nil {
		t.Fatal(err)
	}
	bad.Tenants = append(bad.Tenants, TenantConfig{Name: "broken", Address: "gw-broken"})
	if _, err := g.Swap(bad); err == nil {
		t.Fatal("swap with failing tenant should be rejected")
	}
	if g.Epoch() != 1 {
		t.Fatalf("failed swap advanced the epoch to %d", g.Epoch())
	}

	// The listener bound for the failed tenant must have been rolled
	// back — a corrected retry can bind it again.
	failBroken.Store(false)
	if _, err := g.Swap(bad); err != nil {
		t.Fatalf("retry after rollback: %v (listener leaked by failed swap?)", err)
	}

	// The original tenant kept serving throughout.
	client := w.client("client-r")
	if err := client.SendTo("gw-edge", []byte("still-here"), true); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := client.Receive(); err != nil {
		t.Fatalf("echo: %v", err)
	}
}

func TestGatewayAdminAPI(t *testing.T) {
	w := newGWWorld(t)
	cfg := oneTenant()
	g := w.gateway(cfg)
	srv := httptest.NewServer(g.ConfigHandler())
	defer srv.Close()

	do := func(method, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		return resp.StatusCode, buf.String()
	}

	// GET returns the live config.
	code, body := do(http.MethodGet, "")
	if code != http.StatusOK {
		t.Fatalf("GET: %d %s", code, body)
	}
	var got struct {
		Epoch  uint64 `json:"epoch"`
		Config Config `json:"config"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("GET body: %v", err)
	}
	if got.Epoch != 1 || len(got.Config.Tenants) != 1 || got.Config.Tenants[0].Name != "edge" {
		t.Fatalf("GET = %+v", got)
	}

	// POST swaps the full config.
	next, err := cfg.Clone()
	if err != nil {
		t.Fatal(err)
	}
	next.Tenants[0].AcceptSuites = []string{"AES-128-GCM", "ChaCha20-Poly1305"}
	b, _ := json.Marshal(next)
	code, body = do(http.MethodPost, string(b))
	if code != http.StatusOK {
		t.Fatalf("POST: %d %s", code, body)
	}
	var rep SwapReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil || rep.Epoch != 2 {
		t.Fatalf("POST report = %s (err %v)", body, err)
	}
	if g.Epoch() != 2 {
		t.Fatalf("epoch after POST = %d, want 2", g.Epoch())
	}

	// Invalid configs are refused without touching the epoch.
	if code, _ = do(http.MethodPost, `{"tenants":[]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("empty-tenant POST: %d, want 422", code)
	}
	if code, _ = do(http.MethodPost, `{"bogus":true}`); code != http.StatusBadRequest {
		t.Fatalf("unknown-field POST: %d, want 400", code)
	}
	if g.Epoch() != 2 {
		t.Fatalf("bad POSTs moved the epoch to %d", g.Epoch())
	}

	// PATCH mutates one knob via clone-and-swap.
	code, body = do(http.MethodPatch, `{"tenant":"edge","accept_suites":["AES-128-GCM"]}`)
	if code != http.StatusOK {
		t.Fatalf("PATCH: %d %s", code, body)
	}
	if g.Epoch() != 3 {
		t.Fatalf("epoch after PATCH = %d, want 3", g.Epoch())
	}
	cur := g.CurrentConfig()
	if len(cur.Tenants[0].AcceptSuites) != 1 || cur.Tenants[0].AcceptSuites[0] != "AES-128-GCM" {
		t.Fatalf("PATCH did not apply: %+v", cur.Tenants[0].AcceptSuites)
	}

	// flush_peer mutates in place — no new epoch.
	code, body = do(http.MethodPatch, `{"tenant":"edge","flush_peer":"client-x"}`)
	if code != http.StatusOK {
		t.Fatalf("PATCH flush_peer: %d %s", code, body)
	}
	if g.Epoch() != 3 {
		t.Fatalf("flush_peer minted a new epoch: %d", g.Epoch())
	}

	if code, _ = do(http.MethodPatch, `{"tenant":"nobody","accept_suites":["DES"]}`); code != http.StatusNotFound {
		t.Fatalf("PATCH unknown tenant: %d, want 404", code)
	}
	if code, _ = do(http.MethodPatch, `{"tenant":"edge"}`); code != http.StatusBadRequest {
		t.Fatalf("PATCH without mutation: %d, want 400", code)
	}
	if code, _ = do(http.MethodDelete, ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: %d, want 405", code)
	}
}

func TestGatewayFlushPeerForcesRekey(t *testing.T) {
	w := newGWWorld(t)
	// Single shard so the receive and echo paths share one KeyService
	// and the post-flush re-key costs exactly one exponentiation.
	g := w.gateway(&Config{Tenants: []TenantConfig{{Name: "edge", Address: "gw-edge"}}})
	client := w.client("client-f")

	roundTrip := func() {
		t.Helper()
		if err := client.SendTo("gw-edge", []byte("x"), true); err != nil {
			t.Fatalf("send: %v", err)
		}
		if _, err := client.Receive(); err != nil {
			t.Fatalf("echo: %v", err)
		}
	}
	roundTrip()

	computes := func() uint64 {
		var total uint64
		ep := g.current.Load()
		for _, plane := range ep.tenants {
			for i := 0; i < plane.grp.NumShards(); i++ {
				ks, _, _, _ := plane.grp.Shard(i).KeyStats()
				total += ks.MasterKeyComputes
			}
		}
		return total
	}
	before := computes()
	roundTrip() // warm: no new exponentiation
	if c := computes(); c != before {
		t.Fatalf("warm round trip cost %d exponentiations", c-before)
	}

	if err := g.FlushPeer("edge", "client-f"); err != nil {
		t.Fatalf("FlushPeer: %v", err)
	}
	roundTrip() // cold again: exactly one re-key
	if c := computes(); c != before+1 {
		t.Fatalf("round trip after flush cost %d exponentiations, want 1", c-before)
	}
	if err := g.FlushPeer("nobody", "client-f"); err == nil {
		t.Fatal("FlushPeer for unknown tenant should fail")
	}
}

func TestGatewayMetricsExposition(t *testing.T) {
	w := newGWWorld(t)
	g := w.gateway(oneTenant())
	client := w.client("client-m")
	if err := client.SendTo("gw-edge", []byte("probe"), true); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := client.Receive(); err != nil {
		t.Fatalf("echo: %v", err)
	}

	reg := obs.NewRegistry()
	g.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"fbs_gateway_config_epoch 1",
		"fbs_gateway_received_total 1",
		"fbs_gateway_echoed_total 1",
		`fbs_gateway_active_flows{tenant="edge"}`,
		`fbs_endpoint_received_total{tenant="edge",shard="0",config_epoch="1"}`,
		`fbs_endpoint_received_total{tenant="edge",shard="1",config_epoch="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
