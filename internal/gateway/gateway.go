package gateway

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// Options wires the gateway into an environment: where identities and
// certificates come from and how listener transports are bound. The
// daemon fills these from its provisioning state and real UDP sockets;
// tests and netsim fill them from an in-memory domain and network.
type Options struct {
	// Identity returns the keying identity for a tenant (required).
	// Returning a different identity for the same address across a
	// swap is the key-rotation path: the new epoch's pair master keys
	// rebuild through upcalls while unaffected tenants keep theirs.
	Identity func(t TenantConfig) (*principal.Identity, error)
	// Listen binds the listener transport for a tenant (required).
	// Called once per tenant address; the transport then persists
	// across config epochs — swaps never rebind, which is what makes
	// them zero-downtime.
	Listen func(t TenantConfig) (transport.Transport, error)
	// Directory resolves peer certificates (required).
	Directory cert.Directory
	// Verifier checks certificate signatures (required).
	Verifier cert.CertVerifier
	// Clock is the time source; nil means the real clock.
	Clock core.Clock
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) validate() error {
	if o.Identity == nil || o.Listen == nil {
		return errors.New("gateway: Options.Identity and Options.Listen are required")
	}
	if o.Directory == nil || o.Verifier == nil {
		return errors.New("gateway: Options.Directory and Options.Verifier are required")
	}
	return nil
}

// tenantPlane is one tenant's realised data plane within an epoch.
type tenantPlane struct {
	cfg TenantConfig
	id  *principal.Identity
	grp *core.ShardGroup
}

// epoch is one realised configuration: the immutable unit the atomic
// swap exchanges. Datagram dispatch loads the current epoch once per
// datagram, so a datagram is processed entirely against the
// configuration it arrived under.
type epoch struct {
	seq     uint64
	file    *Config
	tenants map[principal.Address]*tenantPlane
}

// listener is a persistent receive socket. Listeners belong to the
// gateway, not to any epoch: endpoints send through them via a
// nop-close wrapper, and only the gateway's shutdown (or a tenant
// address disappearing from the config) actually closes one.
type listener struct {
	addr principal.Address
	tr   transport.Transport
}

// sharedTransport lets every shard of every epoch send on one listener
// socket while keeping Endpoint.Close harmless: core endpoints close
// their transport when closed, and the listener must outlive them.
type sharedTransport struct{ transport.Transport }

func (sharedTransport) Close() error { return nil }

// ledger accumulates the datagram accounting of retired epochs so the
// gateway's totals stay exact across any number of swaps: every
// datagram ever pulled off a listener is accounted either in a live
// shard's counters or here.
type ledger struct {
	sent     uint64
	accepted uint64
	drops    [core.NumDropReasons]uint64
}

func (l *ledger) absorb(g *core.ShardGroup) {
	m := g.Metrics()
	l.sent += m.Sent
	l.accepted += m.Received
	d := g.DropCounts()
	for i := range l.drops {
		l.drops[i] += d[i]
	}
}

// Gateway is the long-running daemon core: persistent listeners, an
// atomically swappable config epoch, and cumulative accounting.
type Gateway struct {
	opts    Options
	current atomic.Pointer[epoch]

	// swapMu serialises configuration changes (swap, shutdown); the
	// datagram path never takes it.
	swapMu   sync.Mutex
	seq      atomic.Uint64
	swaps    atomic.Uint64
	draining atomic.Bool

	listenMu  sync.Mutex
	listeners map[principal.Address]*listener

	retiredMu sync.Mutex
	retired   ledger

	recvWG sync.WaitGroup

	// Gateway-plane counters (everything endpoint counters can't see).
	received     atomic.Uint64 // datagrams pulled off listeners
	noTenant     atomic.Uint64 // no tenant keyed for the destination
	absorbed     atomic.Uint64 // prefilter control frames absorbed
	echoed       atomic.Uint64 // echo replies sealed and sent
	echoFailures atomic.Uint64 // echo seal/send failures
	delivered    atomic.Uint64 // accepted payloads handed to the mode
	retryStarved atomic.Uint64 // ErrDraining retries exhausted (pathological)
}

// New validates the environment and returns an idle gateway; Start
// realises the first config epoch.
func New(opts Options) (*Gateway, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Clock == nil {
		opts.Clock = core.RealClock{}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Gateway{opts: opts, listeners: make(map[principal.Address]*listener)}, nil
}

// Start realises cfg as the first config epoch and begins serving.
func (g *Gateway) Start(cfg *Config) error {
	_, err := g.Swap(cfg)
	return err
}

// Epoch returns the current config epoch sequence number.
func (g *Gateway) Epoch() uint64 { return g.seq.Load() }

// CurrentConfig returns the configuration of the live epoch (nil
// before Start or after Shutdown).
func (g *Gateway) CurrentConfig() *Config {
	if ep := g.current.Load(); ep != nil {
		return ep.file
	}
	return nil
}

// SwapReport describes what a completed swap carried across.
type SwapReport struct {
	Epoch      uint64 `json:"epoch"`
	Certs      int    `json:"certs_handed_off"`
	MasterKeys int    `json:"master_keys_handed_off"`
	// DrainErr reports a retiring tenant that missed the drain
	// deadline (its residual operations finish against freed-from-duty
	// state; nothing is lost, but the operator should know).
	DrainErr string `json:"drain_error,omitempty"`
}

// Swap atomically replaces the running configuration. The sequence is
// all-or-nothing on the build side — the new epoch's listeners,
// identities and shard groups are fully constructed (and warmed from
// the old epoch's keying caches) before the pointer moves, so a
// failing config is rejected while the old epoch keeps serving. After
// the pointer moves, the old epoch drains: in-flight datagrams finish
// against it, its counters are absorbed into the cumulative ledger,
// and its shards close (their transports are nop-close wrappers, so
// the shared listeners live on).
func (g *Gateway) Swap(cfg *Config) (*SwapReport, error) {
	g.swapMu.Lock()
	defer g.swapMu.Unlock()
	if g.draining.Load() {
		return nil, errors.New("gateway: shutting down")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	old := g.current.Load()
	if old != nil && cfg.AdminAddr != old.file.AdminAddr {
		return nil, errors.New("gateway: admin_addr cannot change across a reload (restart to move the admin plane)")
	}

	// Build phase: nothing live is touched until every tenant plane
	// stands. Listeners created for brand-new tenant addresses are
	// rolled back on failure; reused listeners are left untouched.
	next := &epoch{
		seq:     g.seq.Load() + 1,
		file:    cfg,
		tenants: make(map[principal.Address]*tenantPlane, len(cfg.Tenants)),
	}
	var newListeners []*listener
	fail := func(err error) (*SwapReport, error) {
		for _, p := range next.tenants {
			p.grp.Close()
		}
		g.listenMu.Lock()
		for _, ln := range newListeners {
			ln.tr.Close()
			delete(g.listeners, ln.addr)
		}
		g.listenMu.Unlock()
		return nil, err
	}
	for _, tc := range cfg.Tenants {
		addr := principal.Address(tc.Address)
		ln, created, err := g.ensureListener(tc)
		if err != nil {
			return fail(fmt.Errorf("gateway: tenant %q: listen: %w", tc.Name, err))
		}
		if created {
			newListeners = append(newListeners, ln)
		}
		id, err := g.opts.Identity(tc)
		if err != nil {
			return fail(fmt.Errorf("gateway: tenant %q: identity: %w", tc.Name, err))
		}
		if id.Addr != addr {
			return fail(fmt.Errorf("gateway: tenant %q: identity keyed for %q, config says %q", tc.Name, id.Addr, addr))
		}
		base, err := tc.coreConfigFor()
		if err != nil {
			return fail(err)
		}
		tr := sharedTransport{ln.tr}
		grp, err := core.NewShardGroup(tc.shardsOrDefault(), func(int) (core.Config, error) {
			shardCfg := base // per-tenant Budget pointer is shared across shards: one tenant, one envelope
			shardCfg.Identity = id
			shardCfg.Transport = tr
			shardCfg.Directory = g.opts.Directory
			shardCfg.Verifier = g.opts.Verifier
			shardCfg.Clock = g.opts.Clock
			return shardCfg, nil
		})
		if err != nil {
			return fail(fmt.Errorf("gateway: tenant %q: %w", tc.Name, err))
		}
		next.tenants[addr] = &tenantPlane{cfg: tc, id: id, grp: grp}
	}

	// Warm phase: hand the old epoch's keying caches to the new one so
	// established peers keep flowing without a single upcall. Master
	// keys only cross when the tenant's identity is unchanged — a
	// rotation hands nothing over by design.
	report := &SwapReport{Epoch: next.seq}
	if old != nil {
		for addr, np := range next.tenants {
			if op := old.tenants[addr]; op != nil {
				hs := op.grp.HandoffSoftState(np.grp)
				report.Certs += hs.Certs
				report.MasterKeys += hs.MasterKeys
			}
		}
	}

	// Commit phase: one atomic store redirects every datagram that
	// loads the epoch after this line.
	g.current.Store(next)
	g.seq.Store(next.seq)
	g.swaps.Add(1)
	for _, ln := range newListeners {
		g.recvWG.Add(1)
		go g.recvLoop(ln)
	}

	// Retire phase: the old epoch finishes what it already admitted,
	// its totals move to the cumulative ledger, and tenant addresses
	// dropped from the config lose their listeners.
	if old != nil {
		timeout := cfg.drainTimeout()
		for _, op := range old.tenants {
			if err := op.grp.Quiesce(timeout); err != nil && report.DrainErr == "" {
				report.DrainErr = fmt.Sprintf("tenant %q: %v", op.cfg.Name, err)
			}
			g.retiredMu.Lock()
			g.retired.absorb(op.grp)
			g.retiredMu.Unlock()
			op.grp.Close()
		}
		g.listenMu.Lock()
		for addr, ln := range g.listeners {
			if _, keep := next.tenants[addr]; !keep {
				ln.tr.Close()
				delete(g.listeners, addr)
			}
		}
		g.listenMu.Unlock()
	}
	g.opts.Logf("gateway: epoch %d live (%d tenants, %d certs / %d master keys handed off)",
		next.seq, len(next.tenants), report.Certs, report.MasterKeys)
	return report, nil
}

// ensureListener reuses the persistent listener for a tenant address
// or binds a new one. Caller holds swapMu.
func (g *Gateway) ensureListener(tc TenantConfig) (*listener, bool, error) {
	addr := principal.Address(tc.Address)
	g.listenMu.Lock()
	ln, ok := g.listeners[addr]
	g.listenMu.Unlock()
	if ok {
		return ln, false, nil
	}
	tr, err := g.opts.Listen(tc)
	if err != nil {
		return nil, false, err
	}
	ln = &listener{addr: addr, tr: tr}
	g.listenMu.Lock()
	g.listeners[addr] = ln
	g.listenMu.Unlock()
	return ln, true, nil
}

// recvLoop pulls datagrams off one listener for the gateway's
// lifetime. Dispatch is synchronous: by the time the loop returns to
// Receive, the datagram is fully processed (opened, and echoed if the
// tenant echoes), which is what lets shutdown reason "loops joined ⇒
// nothing in flight".
func (g *Gateway) recvLoop(ln *listener) {
	defer g.recvWG.Done()
	for {
		dg, err := ln.tr.Receive()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return
			}
			if g.draining.Load() {
				return
			}
			g.opts.Logf("gateway: listener %s: receive: %v", ln.addr, err)
			continue
		}
		g.handle(dg)
	}
}

// handle processes one datagram against the current epoch. The
// ErrDraining retry is the seam that makes the swap lossless: a
// datagram that loaded the old epoch just as it was retired is simply
// re-dispatched against the successor — never dropped.
func (g *Gateway) handle(dg transport.Datagram) {
	g.received.Add(1)
	for attempt := 0; attempt < 4; attempt++ {
		ep := g.current.Load()
		if ep == nil {
			return
		}
		plane := ep.tenants[dg.Destination]
		if plane == nil {
			g.noTenant.Add(1)
			return
		}
		shard := plane.grp.Shard(plane.grp.ShardOfIncoming(dg))
		opened, err := shard.Open(dg)
		switch {
		case err == nil:
			g.delivered.Add(1)
			g.reply(plane, dg.Source, opened.Payload)
			return
		case errors.Is(err, core.ErrDraining):
			continue
		case errors.Is(err, core.ErrChallengeAbsorbed):
			g.absorbed.Add(1)
			return
		default:
			// Refused: the shard's drop ledger has the reason.
			g.opts.Logf("gateway: tenant %s: refused datagram from %s: %v", dg.Destination, dg.Source, err)
			return
		}
	}
	// Four consecutive swaps raced this one datagram — possible only
	// under adversarial reconfiguration rates, but counted so the
	// reconciliation invariant stays exact rather than approximately
	// true.
	g.retryStarved.Add(1)
}

// reply seals an accepted payload back to its sender when the tenant
// is in echo mode. Like handle, it retries across an epoch swap.
func (g *Gateway) reply(plane *tenantPlane, dst principal.Address, payload []byte) {
	if plane.cfg.Mode == "sink" {
		return
	}
	out := transport.Datagram{Source: plane.id.Addr, Destination: dst, Payload: payload}
	for attempt := 0; attempt < 4; attempt++ {
		shard := plane.grp.Shard(plane.grp.ShardOfPair(plane.id.Addr, dst))
		sealed, err := shard.Seal(out, plane.cfg.SecretEcho)
		switch {
		case err == nil:
			if err := g.send(plane, sealed); err != nil {
				g.echoFailures.Add(1)
				g.opts.Logf("gateway: tenant %s: echo to %s: %v", plane.id.Addr, dst, err)
				return
			}
			g.echoed.Add(1)
			return
		case errors.Is(err, core.ErrDraining):
			cur := g.current.Load()
			if cur == nil {
				g.echoFailures.Add(1)
				return
			}
			np := cur.tenants[plane.id.Addr]
			if np == nil {
				g.echoFailures.Add(1)
				return
			}
			plane = np
			continue
		default:
			g.echoFailures.Add(1)
			g.opts.Logf("gateway: tenant %s: echo seal for %s: %v", plane.id.Addr, dst, err)
			return
		}
	}
	g.echoFailures.Add(1)
}

// send pushes a sealed datagram out the tenant's listener.
func (g *Gateway) send(plane *tenantPlane, dg transport.Datagram) error {
	g.listenMu.Lock()
	ln := g.listeners[plane.id.Addr]
	g.listenMu.Unlock()
	if ln == nil {
		return errors.New("gateway: listener gone")
	}
	return ln.tr.Send(dg)
}

// FlushPeer evicts one peer's keying state from every shard of the
// named tenant — the hot-rotation path when a peer's certificate is
// reissued: only flows with that peer re-key; everything else keeps
// its soft state.
func (g *Gateway) FlushPeer(tenant string, peer principal.Address) error {
	ep := g.current.Load()
	if ep == nil {
		return errors.New("gateway: not running")
	}
	for _, plane := range ep.tenants {
		if plane.cfg.Name == tenant {
			for i := 0; i < plane.grp.NumShards(); i++ {
				plane.grp.Shard(i).FlushPeer(peer)
			}
			return nil
		}
	}
	return fmt.Errorf("gateway: no tenant %q", tenant)
}

// TenantKeyStats aggregates the keying-plane statistics across every
// shard of the named tenant in the live epoch, plus the shards' MKD
// upcall count. It is the external witness for warm handoff: an epoch
// created by a swap that carried master keys across reports zero
// MasterKeyComputes for peers that were already flowing.
func (g *Gateway) TenantKeyStats(tenant string) (core.KeyServiceStats, uint64, error) {
	ep := g.current.Load()
	if ep == nil {
		return core.KeyServiceStats{}, 0, errors.New("gateway: not running")
	}
	for _, plane := range ep.tenants {
		if plane.cfg.Name != tenant {
			continue
		}
		var sum core.KeyServiceStats
		var upcalls uint64
		for i := 0; i < plane.grp.NumShards(); i++ {
			ks, _, _, up := plane.grp.Shard(i).KeyStats()
			sum.MasterKeyRequests += ks.MasterKeyRequests
			sum.MasterKeyComputes += ks.MasterKeyComputes
			sum.CertFetches += ks.CertFetches
			sum.CertVerifies += ks.CertVerifies
			sum.Failures += ks.Failures
			sum.Retries += ks.Retries
			sum.NegativeHits += ks.NegativeHits
			sum.StaleServed += ks.StaleServed
			sum.DeadlineExceeded += ks.DeadlineExceeded
			upcalls += up
		}
		return sum, upcalls, nil
	}
	return core.KeyServiceStats{}, 0, fmt.Errorf("gateway: no tenant %q", tenant)
}

// TenantStats is one tenant's slice of a stats snapshot.
type TenantStats struct {
	Name        string            `json:"name"`
	Address     string            `json:"address"`
	Shards      int               `json:"shards"`
	Accepted    uint64            `json:"accepted"`
	Sent        uint64            `json:"sent"`
	ActiveFlows int               `json:"active_flows"`
	Inflight    int64             `json:"inflight"`
	Drops       map[string]uint64 `json:"drops,omitempty"`
}

// Stats is a point-in-time accounting snapshot. The cumulative fields
// (Received, Accepted, Drops, ...) include every retired epoch, so
//
//	Received == Accepted + ΣDrops + NoTenant + Absorbed + RetryStarved
//
// holds across any number of swaps whenever EchoFailures is zero — the
// gateway-level restatement of the repo's exact drop-ledger
// reconciliation. (A failed echo seal charges the shared per-reason
// ledger from the seal side; each such refusal is also counted in
// EchoFailures, which is how to tell the two apart.)
type Stats struct {
	Epoch        uint64            `json:"epoch"`
	Swaps        uint64            `json:"swaps"`
	Received     uint64            `json:"received"`
	Accepted     uint64            `json:"accepted"`
	Delivered    uint64            `json:"delivered"`
	Echoed       uint64            `json:"echoed"`
	EchoFailures uint64            `json:"echo_failures"`
	NoTenant     uint64            `json:"no_tenant"`
	Absorbed     uint64            `json:"absorbed"`
	RetryStarved uint64            `json:"retry_starved"`
	ActiveFlows  int               `json:"active_flows"`
	Drops        map[string]uint64 `json:"drops,omitempty"`
	Tenants      []TenantStats     `json:"tenants,omitempty"`
}

// Stats snapshots the cumulative ledger plus the live epoch.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Epoch:        g.seq.Load(),
		Swaps:        g.swaps.Load(),
		Received:     g.received.Load(),
		Delivered:    g.delivered.Load(),
		Echoed:       g.echoed.Load(),
		EchoFailures: g.echoFailures.Load(),
		NoTenant:     g.noTenant.Load(),
		Absorbed:     g.absorbed.Load(),
		RetryStarved: g.retryStarved.Load(),
		Drops:        make(map[string]uint64),
	}
	var drops [core.NumDropReasons]uint64
	g.retiredMu.Lock()
	st.Accepted = g.retired.accepted
	drops = g.retired.drops
	g.retiredMu.Unlock()
	if ep := g.current.Load(); ep != nil {
		names := make([]string, 0, len(ep.tenants))
		byName := make(map[string]*tenantPlane, len(ep.tenants))
		for _, p := range ep.tenants {
			names = append(names, p.cfg.Name)
			byName[p.cfg.Name] = p
		}
		sort.Strings(names)
		for _, name := range names {
			p := byName[name]
			m := p.grp.Metrics()
			dc := p.grp.DropCounts()
			ts := TenantStats{
				Name:        name,
				Address:     p.cfg.Address,
				Shards:      p.grp.NumShards(),
				Accepted:    m.Received,
				Sent:        m.Sent,
				ActiveFlows: p.grp.ActiveFlows(),
				Inflight:    p.grp.Inflight(),
				Drops:       make(map[string]uint64),
			}
			st.Accepted += m.Received
			st.ActiveFlows += ts.ActiveFlows
			for _, d := range core.DropReasons() {
				drops[d] += dc[d]
				if dc[d] > 0 {
					ts.Drops[d.String()] = dc[d]
				}
			}
			st.Tenants = append(st.Tenants, ts)
		}
	}
	for _, d := range core.DropReasons() {
		if drops[d] > 0 {
			st.Drops[d.String()] = drops[d]
		}
	}
	return st
}

// Shutdown is the graceful exit: stop intake (close every listener),
// join the receive loops (synchronous dispatch means joined loops ⇒
// nothing mid-datagram), quiesce and absorb the final epoch, and
// return the final cumulative stats. The returned error reports a
// missed drain deadline; the stats are valid either way.
func (g *Gateway) Shutdown(timeout time.Duration) (Stats, error) {
	g.swapMu.Lock()
	defer g.swapMu.Unlock()
	g.draining.Store(true)

	g.listenMu.Lock()
	for addr, ln := range g.listeners {
		ln.tr.Close()
		delete(g.listeners, addr)
	}
	g.listenMu.Unlock()
	g.recvWG.Wait()

	var firstErr error
	if ep := g.current.Load(); ep != nil {
		for _, plane := range ep.tenants {
			if err := plane.grp.Quiesce(timeout); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("gateway: drain tenant %q: %w", plane.cfg.Name, err)
			}
			g.retiredMu.Lock()
			g.retired.absorb(plane.grp)
			g.retiredMu.Unlock()
			plane.grp.Close()
		}
		g.current.Store(nil)
	}
	st := g.Stats()
	g.opts.Logf("gateway: drained at epoch %d: %d received, %d accepted, %d echoed",
		st.Epoch, st.Received, st.Accepted, st.Echoed)
	return st, firstErr
}
