// Differential cross-validation: internal/core versus the deliberately
// naive internal/refmodel, driven by a seeded op stream.
//
// Both implementations are built over the same identities, the same
// simulated clock and identically seeded confounder/sfl sources, so
// every observable — sealed wire bytes, accept/drop verdicts, drop
// classification, flow key material, final counters — must agree
// exactly. The optimised endpoint runs with all its machinery (striped
// caches, MKD, single-flight keying) but without budgets or admission
// gates, which the reference deliberately lacks; within that envelope
// any divergence is a bug in one of the two implementations.
package netsim

import (
	"bytes"
	"fmt"
	"math/big"
	"strings"
	"sync"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/refmodel"
	"fbs/internal/transport"
)

// DiffScenario parameterises one differential run.
type DiffScenario struct {
	// Seed drives the op-stream generator; equal seeds replay equal
	// runs bit for bit (identities are derived from fixed private
	// values, so even the wire bytes reproduce across processes).
	Seed uint64
	// Ops is how many generator steps to execute.
	Ops int
	// ReplayCache enables exact-duplicate suppression on both sides
	// (the default for Ops > 0 scenarios built by callers here).
	ReplayCache bool
	// Suite selects the cipher suite on both sides (core.CipherNone
	// selects the default, DES), so the differential harness
	// cross-validates every registered suite's framing, key schedule
	// and drop classification against the reference model.
	Suite core.CipherID
	// Prefilter pins the edge pre-filter ladder at a level on both
	// sides (core.PrefilterOff leaves it disabled). Both sides derive
	// the cookie secret from the same fixed seed, so sketch sheds,
	// challenge refusals and cookie verdicts must agree exactly; the
	// op stream additionally injects forged cookie frames.
	Prefilter core.PrefilterLevel
}

// DiffReport is the outcome of a differential run.
type DiffReport struct {
	Ops      int
	Sends    int
	Delivers int
	Accepted uint64
	Dropped  uint64
	// Divergence is empty on success; otherwise it describes the first
	// observable on which the two implementations disagreed.
	Divergence string
	// OpStream is the full generated op sequence, and OptLog/RefLog the
	// per-op outcomes of the optimised and reference endpoints — the
	// three artifacts needed to reproduce and localise a divergence.
	OpStream []string
	OptLog   []string
	RefLog   []string
}

// Summary renders a one-line human-readable result.
func (r *DiffReport) Summary() string {
	if r.Divergence != "" {
		return fmt.Sprintf("DIVERGED after %d ops: %s", r.Ops, r.Divergence)
	}
	return fmt.Sprintf("ok: %d ops (%d sends, %d delivers, %d accepted, %d dropped), implementations agree",
		r.Ops, r.Sends, r.Delivers, r.Accepted, r.Dropped)
}

// Artifact renders the op stream and both transcripts as a single
// text blob for divergence debugging (written to a file by the CI smoke
// on failure).
func (r *DiffReport) Artifact() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n== op stream ==\n%s\n", r.Summary(), strings.Join(r.OpStream, "\n"))
	fmt.Fprintf(&b, "\n== optimised transcript ==\n%s\n", strings.Join(r.OptLog, "\n"))
	fmt.Fprintf(&b, "\n== reference transcript ==\n%s\n", strings.Join(r.RefLog, "\n"))
	return b.String()
}

// diffWorld is the deterministic PKI shared by every differential run:
// a CA and three principals with fixed private exponents. Building the
// CA costs a keypair, so it is done once per process.
type diffWorld struct {
	dir *cert.StaticDirectory
	ver *cert.Verifier
	ids []*principal.Identity
	err error
}

var (
	diffOnce sync.Once
	diffW    diffWorld
)

var diffPeers = []principal.Address{"diff-p0", "diff-p1", "diff-p2"}

// diffPrefilterSeed is the shared deterministic cookie-secret seed for
// prefilter-enabled differential runs.
var diffPrefilterSeed = []byte("diff-prefilter-secret")

// diffEpoch is the fixed start of simulated time for differential runs.
var diffEpoch = time.Date(2026, 7, 4, 9, 0, 0, 0, time.UTC)

func buildDiffWorld() {
	ca, err := cert.NewAuthority("diff-root", 512)
	if err != nil {
		diffW.err = err
		return
	}
	diffW.dir = cert.NewStaticDirectory()
	diffW.ver = &cert.Verifier{CAKey: ca.PublicKey(), CA: "diff-root"}
	for i, addr := range diffPeers {
		// Fixed private exponents make the master keys — and therefore
		// the sealed wire bytes — identical across processes, so a fuzz
		// corpus entry reproduces anywhere.
		priv := new(big.Int).SetInt64(int64(0xD1F0 + 7919*i))
		id, err := principal.NewIdentityWithPrivate(addr, cryptolib.TestGroup, priv)
		if err != nil {
			diffW.err = err
			return
		}
		c, err := ca.Issue(id, diffEpoch.Add(-time.Hour), diffEpoch.Add(10*365*24*time.Hour))
		if err != nil {
			diffW.err = err
			return
		}
		diffW.dir.Publish(c)
		diffW.ids = append(diffW.ids, id)
	}
}

// diffTransport satisfies transport.Transport for endpoints exercised
// only through Seal/Open.
type diffTransport struct{}

func (diffTransport) Send(transport.Datagram) error { return nil }
func (diffTransport) Receive() (transport.Datagram, error) {
	return transport.Datagram{}, transport.ErrClosed
}
func (diffTransport) Close() error { return nil }

// diffPair is one principal instantiated twice: optimised and reference.
type diffPair struct {
	addr principal.Address
	opt  *core.Endpoint
	ref  *refmodel.Endpoint
}

// inFlight is a sealed datagram travelling the simulated network.
type inFlight struct {
	src, dst int
	wire     []byte
}

// RunDiff executes one differential run. The returned error reports
// harness setup failures only; protocol disagreements land in
// DiffReport.Divergence.
func RunDiff(sc DiffScenario) (*DiffReport, error) {
	diffOnce.Do(buildDiffWorld)
	if diffW.err != nil {
		return nil, diffW.err
	}
	if sc.Ops <= 0 {
		sc.Ops = 1000
	}
	clk := core.NewSimClock(diffEpoch)
	var optPF core.PrefilterConfig
	var refPF refmodel.PrefilterConfig
	if sc.Prefilter != core.PrefilterOff {
		// Pin the ladder (the reference has no pressure signals to
		// adapt to) and share the secret seed so cookie MACs agree.
		optPF = core.PrefilterConfig{Enable: true, ForceLevel: sc.Prefilter, SecretSeed: diffPrefilterSeed}
		refPF = refmodel.PrefilterConfig{Enable: true, Level: sc.Prefilter, SecretSeed: diffPrefilterSeed}
	}
	pairs := make([]diffPair, len(diffPeers))
	for i, addr := range diffPeers {
		confSeed := sc.Seed ^ uint64(i+1)*0x9E3779B97F4A7C15
		sflSeed := uint64(i+1) * 1_000_000
		opt, err := core.NewEndpoint(core.Config{
			Identity:          diffW.ids[i],
			Transport:         diffTransport{},
			Directory:         diffW.dir,
			Verifier:          diffW.ver,
			Clock:             clk,
			Confounder:        cryptolib.NewLCGSeeded(confSeed),
			SFLSeed:           sflSeed,
			Cipher:            sc.Suite,
			EnableReplayCache: sc.ReplayCache,
			Prefilter:         optPF,
		})
		if err != nil {
			return nil, err
		}
		ref, err := refmodel.New(refmodel.Config{
			Identity:          diffW.ids[i],
			Directory:         diffW.dir,
			Verifier:          diffW.ver,
			Clock:             clk,
			Confounder:        cryptolib.NewLCGSeeded(confSeed),
			SFLSeed:           sflSeed,
			Cipher:            sc.Suite,
			EnableReplayCache: sc.ReplayCache,
			Prefilter:         refPF,
		})
		if err != nil {
			opt.Close()
			return nil, err
		}
		pairs[i] = diffPair{addr: addr, opt: opt, ref: ref}
	}
	defer func() {
		for _, p := range pairs {
			p.opt.Close()
		}
	}()

	rep := &DiffReport{}
	rng := cryptolib.NewLCGSeeded(sc.Seed ^ 0x5DEECE66D)
	var queue []inFlight   // undelivered sealed datagrams, FIFO
	var history []inFlight // delivered datagrams, replay material
	const maxHistory = 256

	logOp := func(format string, args ...any) {
		rep.OpStream = append(rep.OpStream, fmt.Sprintf(format, args...))
	}
	diverge := func(format string, args ...any) {
		if rep.Divergence == "" {
			rep.Divergence = fmt.Sprintf("op %d: %s", rep.Ops, fmt.Sprintf(format, args...))
		}
	}

	// send seals one datagram on both implementations and cross-checks
	// the result. flowAux varies the flow identity (flow churn).
	send := func(si, di int, flowAux uint64, size int, secret bool, enqueue bool) {
		s, d := &pairs[si], &pairs[di]
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(rng.Uint32())
		}
		id := core.FlowID{
			Src: s.addr, Dst: d.addr, Proto: 17,
			SrcPort: 4000 + uint16(flowAux%4), DstPort: 5000, Aux: flowAux / 4,
		}
		rep.Sends++
		optOut, optErr := s.opt.SealFlow(transport.Datagram{
			Source: s.addr, Destination: d.addr, Payload: payload,
		}, id, secret)
		refOut, refErr := s.ref.Seal(d.addr, id, payload, secret)
		logOp("send %s->%s aux=%d len=%d secret=%v", s.addr, d.addr, flowAux, size, secret)
		rep.OptLog = append(rep.OptLog, sealOutcome(optOut.Payload, optErr))
		rep.RefLog = append(rep.RefLog, sealOutcome(refOut, refErr))
		if (optErr == nil) != (refErr == nil) {
			diverge("seal verdicts differ: opt=%v ref=%v", optErr, refErr)
			return
		}
		if optErr != nil {
			if or, rr := core.DropReasonOf(optErr), core.DropReasonOf(refErr); or != rr {
				diverge("seal drop reasons differ: opt=%v ref=%v", or, rr)
			}
			return
		}
		if !bytes.Equal(optOut.Payload, refOut) {
			diverge("sealed wire bytes differ:\n opt %x\n ref %x", optOut.Payload, refOut)
			return
		}
		// Every few sends, cross-check the derived flow key material
		// itself, not just its effect on the MAC.
		if rep.Sends%8 == 0 {
			sfl := core.SFL(beUint64(optOut.Payload[4:12]))
			ok, oerr := s.opt.PeerFlowKey(sfl, d.addr)
			rk, rerr := s.ref.FlowKeyTo(uint64(sfl), d.addr)
			if (oerr == nil) != (rerr == nil) || (oerr == nil && ok != rk) {
				diverge("flow key material differs for sfl %d: opt %x (%v) ref %x (%v)", sfl, ok, oerr, rk, rerr)
				return
			}
		}
		if enqueue {
			queue = append(queue, inFlight{src: si, dst: di, wire: optOut.Payload})
		}
	}

	// sendBatch seals a run of same-flow datagrams through the optimised
	// endpoint's batch engine and holds it to the reference semantics —
	// a loop of Seal calls. Batch flows are named by host pair (the
	// DefaultSelector identity SealBatch groups runs by), so they churn
	// independently of the port-qualified flows the single sends use.
	sendBatch := func(si, di int, count int, secret bool) {
		s, d := &pairs[si], &pairs[di]
		id := core.FlowID{Src: s.addr, Dst: d.addr}
		dgs := make([]transport.Datagram, count)
		payloads := make([][]byte, count)
		for i := 0; i < count; i++ {
			payload := make([]byte, int(rng.Uint32()%128))
			for j := range payload {
				payload[j] = byte(rng.Uint32())
			}
			payloads[i] = payload
			dgs[i] = transport.Datagram{Source: s.addr, Destination: d.addr, Payload: payload}
		}
		rep.Sends += count
		res := make([]core.BatchResult, count)
		out, _ := s.opt.SealBatch(nil, dgs, secret, res)
		refOuts, refErrs := s.ref.SealBatch(d.addr, id, payloads, secret)
		logOp("sendbatch %s->%s n=%d secret=%v", s.addr, d.addr, count, secret)
		for i := 0; i < count; i++ {
			var optWire []byte
			if res[i].Err == nil {
				optWire = out[res[i].Off : res[i].Off+res[i].Len]
			}
			rep.OptLog = append(rep.OptLog, sealOutcome(optWire, res[i].Err))
			rep.RefLog = append(rep.RefLog, sealOutcome(refOuts[i], refErrs[i]))
			if (res[i].Err == nil) != (refErrs[i] == nil) {
				diverge("batch seal verdicts differ at %d: opt=%v ref=%v", i, res[i].Err, refErrs[i])
				return
			}
			if res[i].Err != nil {
				if or, rr := core.DropReasonOf(res[i].Err), core.DropReasonOf(refErrs[i]); or != rr {
					diverge("batch seal drop reasons differ at %d: opt=%v ref=%v", i, or, rr)
					return
				}
				continue
			}
			if !bytes.Equal(optWire, refOuts[i]) {
				diverge("batch sealed wire bytes differ at %d:\n opt %x\n ref %x", i, optWire, refOuts[i])
				return
			}
			wire := append([]byte{}, optWire...)
			queue = append(queue, inFlight{src: si, dst: di, wire: wire})
		}
	}

	// deliver opens one datagram on both implementations (optionally
	// mutated in flight) and cross-checks verdicts and plaintext.
	deliver := func(f inFlight, mutation string) {
		s, d := &pairs[f.src], &pairs[f.dst]
		wire := append([]byte{}, f.wire...)
		switch mutation {
		case "bitflip":
			if len(wire) > 0 {
				wire[int(rng.Uint32())%len(wire)] ^= 1 << (rng.Uint32() % 8)
			}
		case "truncate":
			wire = wire[:int(rng.Uint32())%(len(wire)+1)]
		case "cookie-forge":
			// Forged echo envelope: well-formed framing, random epoch,
			// stamp and MAC. Both sides must refuse it as a bad cookie
			// and charge the source's sketch prefix identically.
			env := make([]byte, core.CookieFrameLen)
			env[0], env[1], env[2] = core.CookieMagic, core.CookieKindEcho, core.CookieVersion
			for i := 3; i < len(env); i++ {
				env[i] = byte(rng.Uint32())
			}
			wire = append(env, wire...)
		case "cookie-frame":
			// A bare forged challenge frame: both sides absorb it into
			// the sender-side jar (cookies are opaque to the learner)
			// and classify it DropNone.
			env := make([]byte, core.CookieFrameLen)
			env[0], env[1], env[2] = core.CookieMagic, core.CookieKindChallenge, core.CookieVersion
			for i := 3; i < len(env); i++ {
				env[i] = byte(rng.Uint32())
			}
			wire = env
		}
		rep.Delivers++
		optOut, optErr := d.opt.Open(transport.Datagram{
			Source: s.addr, Destination: d.addr, Payload: wire,
		})
		refOut, refErr := d.ref.Open(s.addr, d.addr, wire)
		logOp("deliver %s->%s len=%d mut=%s", s.addr, d.addr, len(wire), mutation)
		rep.OptLog = append(rep.OptLog, openOutcome(optOut.Payload, optErr))
		rep.RefLog = append(rep.RefLog, openOutcome(refOut, refErr))
		if (optErr == nil) != (refErr == nil) {
			diverge("open verdicts differ: opt=%v ref=%v", optErr, refErr)
			return
		}
		if optErr != nil {
			rep.Dropped++
			if or, rr := core.DropReasonOf(optErr), core.DropReasonOf(refErr); or != rr {
				diverge("open drop reasons differ: opt=%v ref=%v", or, rr)
			}
			return
		}
		rep.Accepted++
		if !bytes.Equal(optOut.Payload, refOut) {
			diverge("opened plaintext differs:\n opt %x\n ref %x", optOut.Payload, refOut)
		}
	}

	// deliverBatch opens a same-destination run from the queue through
	// OpenBatch and holds it to the reference loop, including intra-batch
	// replays when the picker re-queued history.
	deliverBatch := func(count int) {
		if len(queue) == 0 {
			return
		}
		di := queue[0].dst
		var run []inFlight
		rest := queue[:0]
		for _, f := range queue {
			if f.dst == di && len(run) < count {
				run = append(run, f)
			} else {
				rest = append(rest, f)
			}
		}
		queue = rest
		d := &pairs[di]
		dgs := make([]transport.Datagram, len(run))
		for i, f := range run {
			dgs[i] = transport.Datagram{
				Source:      pairs[f.src].addr,
				Destination: d.addr,
				Payload:     append([]byte{}, f.wire...),
			}
		}
		rep.Delivers += len(run)
		res := make([]core.BatchResult, len(run))
		out, _ := d.opt.OpenBatch(nil, dgs, res)
		logOp("deliverbatch ->%s n=%d", d.addr, len(run))
		for i, f := range run {
			refOut, refErr := d.ref.Open(pairs[f.src].addr, d.addr, f.wire)
			var optBody []byte
			if res[i].Err == nil {
				optBody = out[res[i].Off : res[i].Off+res[i].Len]
			}
			rep.OptLog = append(rep.OptLog, openOutcome(optBody, res[i].Err))
			rep.RefLog = append(rep.RefLog, openOutcome(refOut, refErr))
			if (res[i].Err == nil) != (refErr == nil) {
				diverge("batch open verdicts differ at %d: opt=%v ref=%v", i, res[i].Err, refErr)
				return
			}
			if res[i].Err != nil {
				rep.Dropped++
				if or, rr := core.DropReasonOf(res[i].Err), core.DropReasonOf(refErr); or != rr {
					diverge("batch open drop reasons differ at %d: opt=%v ref=%v", i, or, rr)
					return
				}
				continue
			}
			rep.Accepted++
			if !bytes.Equal(optBody, refOut) {
				diverge("batch opened plaintext differs at %d:\n opt %x\n ref %x", i, optBody, refOut)
				return
			}
			history = append(history, f)
			if len(history) > maxHistory {
				history = history[1:]
			}
		}
	}

	for op := 0; op < sc.Ops && rep.Divergence == ""; op++ {
		rep.Ops = op + 1
		si := int(rng.Uint32()) % len(pairs)
		di := int(rng.Uint32()) % len(pairs)
		if di == si {
			di = (di + 1) % len(pairs)
		}
		switch pick := rng.Uint32() % 100; {
		case pick < 24: // plain send on a small set of long-lived flows
			send(si, di, uint64(rng.Uint32()%3), int(rng.Uint32()%256), rng.Uint32()%4 != 0, true)
		case pick < 30: // batched send: a run of same-flow datagrams
			sendBatch(si, di, 2+int(rng.Uint32()%6), rng.Uint32()%4 != 0)
		case pick < 65: // drain a batch of in-flight datagrams, mostly clean
			if len(queue) == 0 {
				send(si, di, 0, int(rng.Uint32()%128), true, true)
				continue
			}
			batch := int(rng.Uint32()%3) + 1
			for ; batch > 0 && len(queue) > 0 && rep.Divergence == ""; batch-- {
				f := queue[0]
				queue = queue[1:]
				mutation := "clean"
				switch rng.Uint32() % 10 {
				case 0:
					mutation = "bitflip"
				case 1:
					mutation = "truncate"
				}
				if sc.Prefilter != core.PrefilterOff && rng.Uint32()%8 == 0 {
					// Prefilter runs also fuzz the cookie control plane.
					if rng.Uint32()%2 == 0 {
						mutation = "cookie-forge"
					} else {
						mutation = "cookie-frame"
					}
				}
				deliver(f, mutation)
				if mutation == "clean" {
					history = append(history, f)
					if len(history) > maxHistory {
						history = history[1:]
					}
				}
			}
		case pick < 70: // replay something already delivered
			if len(history) == 0 {
				continue
			}
			f := history[int(rng.Uint32())%len(history)]
			logOp("replay-pick")
			deliver(f, "clean")
		case pick < 75: // batched deliver, possibly seeded with a replay
			if len(history) > 0 && rng.Uint32()%3 == 0 {
				f := history[int(rng.Uint32())%len(history)]
				logOp("replay-requeue")
				queue = append([]inFlight{f}, queue...)
			}
			deliverBatch(2 + int(rng.Uint32()%6))
		case pick < 85: // clock step, whole seconds
			step := time.Duration(rng.Uint32()%30) * time.Second
			clk.Advance(step)
			logOp("clock+%v", step)
		case pick < 87: // large clock step: expire flows, stale the queue
			clk.Advance(11 * time.Minute)
			logOp("clock+11m")
		case pick < 93: // flow churn: fresh flow identity every time
			send(si, di, uint64(0x1000)+uint64(op), int(rng.Uint32()%64), true, true)
		case pick < 97: // keying failure: seal for a principal nobody published
			s := &pairs[si]
			id := core.FlowID{Src: s.addr, Dst: "diff-stranger", Proto: 17, SrcPort: 9, DstPort: 9}
			_, optErr := s.opt.SealFlow(transport.Datagram{
				Source: s.addr, Destination: "diff-stranger", Payload: []byte("hello?"),
			}, id, true)
			_, refErr := s.ref.Seal("diff-stranger", id, []byte("hello?"), true)
			logOp("send %s->stranger", s.addr)
			rep.OptLog = append(rep.OptLog, sealOutcome(nil, optErr))
			rep.RefLog = append(rep.RefLog, sealOutcome(nil, refErr))
			if core.DropReasonOf(optErr) != core.DropReasonOf(refErr) {
				diverge("stranger seal reasons differ: opt=%v ref=%v", optErr, refErr)
			}
		default: // detach: flush every cached key on one principal
			p := &pairs[si]
			p.opt.FlushKeys()
			p.ref.FlushKeys()
			logOp("detach %s", p.addr)
		}
	}

	// Final ledger: the per-reason drop counters and accept totals must
	// have marched in lockstep.
	if rep.Divergence == "" {
		for _, p := range pairs {
			od, rd := p.opt.DropCounts(), p.ref.Drops()
			for r := 0; r < core.NumDropReasons; r++ {
				if od[r] != rd[r] {
					diverge("final drop ledger differs at %s for %v: opt=%d ref=%d",
						p.addr, core.DropReason(r), od[r], rd[r])
				}
			}
			if got := p.opt.Metrics().Received; got != p.ref.Accepted() {
				diverge("final accept totals differ at %s: opt=%d ref=%d", p.addr, got, p.ref.Accepted())
			}
		}
	}
	return rep, nil
}

func sealOutcome(wire []byte, err error) string {
	if err != nil {
		return "seal DROP " + core.DropReasonOf(err).String()
	}
	return fmt.Sprintf("seal %d bytes %x…", len(wire), wire[:min(12, len(wire))])
}

func openOutcome(body []byte, err error) string {
	if err != nil {
		return "open DROP " + core.DropReasonOf(err).String()
	}
	return fmt.Sprintf("open ACCEPT %d bytes", len(body))
}

func beUint64(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
