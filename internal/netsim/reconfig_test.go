package netsim

import "testing"

// TestReconfigUnderLoad swaps the gateway's configuration three times
// while concurrent senders stream lockstep round trips through it: no
// round trip may fail or even slow into a drop, every established
// peer's master key must cross each swap (successor epochs perform
// zero exponentiations), and the final books must reconcile exactly —
// the zero-downtime reconfiguration claim, demonstrated end to end.
func TestReconfigUnderLoad(t *testing.T) {
	rep, err := RunReconfig(ReconfigScenario{
		Name:         "reconfig-under-load",
		Seed:         7,
		Senders:      3,
		Datagrams:    40,
		PayloadBytes: 64,
		Secret:       true,
		Shards:       2,
		Swaps:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Log(rep.Summary())
	}
	if rep.MasterKeysHandedOff < 9 { // 3 peers × 3 swaps
		t.Errorf("master keys handed off = %d, want >= 9", rep.MasterKeysHandedOff)
	}
	if rep.SuccessorComputes != 0 {
		t.Errorf("successor master-key computes = %d, want 0", rep.SuccessorComputes)
	}
}
