package netsim

import (
	"sync"
	"time"

	"fbs/internal/cryptolib"
)

// This file is the composable link fault model: a LinkModel is a seeded
// pipeline of impairment Stages (Bernoulli and Gilbert-Elliott burst
// loss, reordering, duplication, bit corruption, delay/jitter, and a
// bandwidth cap) instantiated per direction. The model decides the fate
// of each datagram — lost, delivered once or several times, at what
// offset, corrupted or clean — deterministically from the seed and the
// submission sequence, so a chaos run can be replayed exactly and every
// induced fault reconciled against a drop counter.

// Fate is one delivery of a datagram copy decided by the link.
type Fate struct {
	// At is the delivery time as an offset on the link's clock (the
	// submission time plus queueing, serialization, delay and jitter).
	At time.Duration
}

// Decision is the link's verdict for one submitted datagram. An empty
// Fates slice means the datagram was lost. Corruption applies to every
// copy (the same CorruptBit in each), so a corrupted datagram never
// yields a clean duplicate and per-datagram accounting stays exact.
type Decision struct {
	// Now is the submission time the decision was computed at.
	Now time.Duration
	// Size is the datagram size in bytes (drives the bandwidth cap).
	Size int
	// Corrupt marks the datagram for a single-bit flip on delivery.
	Corrupt bool
	// CorruptBit selects the flipped bit: byte CorruptBit/8 mod size,
	// bit CorruptBit%8.
	CorruptBit uint32
	// Fates are the scheduled deliveries; empty means lost.
	Fates []Fate
}

// Lost reports whether the link dropped every copy.
func (d *Decision) Lost() bool { return len(d.Fates) == 0 }

// LinkStats counts what a link's fault pipeline did. Lost counts
// datagrams (all copies dropped); Duplicated, Corrupted, Reordered and
// BurstLost count stage activations.
type LinkStats struct {
	// Offered datagrams submitted to the link.
	Offered uint64
	// Lost datagrams (no delivery at all).
	Lost uint64
	// BurstLost is the subset of Lost dropped while a Gilbert-Elliott
	// stage was in its bad regime.
	BurstLost uint64
	// Duplicated datagrams (one extra copy scheduled).
	Duplicated uint64
	// Corrupted datagrams (every copy gets the same flipped bit).
	Corrupted uint64
	// Reordered datagrams (held back behind later traffic).
	Reordered uint64
}

// stageFn mutates a decision using the link's RNG; it runs under the
// link mutex so stage state needs no further synchronisation.
type stageFn func(rng *cryptolib.LCG, d *Decision, st *LinkStats)

// Stage is one impairment in a link pipeline. Stages carry per-link
// state (a Gilbert-Elliott regime, a bandwidth-cap horizon), so a Stage
// value is a spec: each Link instantiated from a model builds fresh
// state. Construct stages with the exported constructors below and
// compose them in the order faults should apply.
type Stage struct {
	name  string
	build func() stageFn
}

// Name labels the stage in reports.
func (s Stage) Name() string { return s.name }

// chance draws a Bernoulli trial from the link RNG.
func chance(rng *cryptolib.LCG, p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(rng.Uint32())/float64(1<<32) < p
}

// BernoulliLoss drops each datagram independently with probability p.
func BernoulliLoss(p float64) Stage {
	return Stage{name: "loss", build: func() stageFn {
		return func(rng *cryptolib.LCG, d *Decision, st *LinkStats) {
			if chance(rng, p) {
				d.Fates = nil
			}
		}
	}}
}

// GilbertElliott is two-state burst loss: the link moves between a good
// and a bad regime with the given per-packet transition probabilities
// and drops with lossGood/lossBad in each. It models the correlated
// loss trains of congested or fading links that independent Bernoulli
// trials cannot produce.
func GilbertElliott(pEnterBad, pExitBad, lossGood, lossBad float64) Stage {
	return Stage{name: "gilbert-elliott", build: func() stageFn {
		bad := false
		return func(rng *cryptolib.LCG, d *Decision, st *LinkStats) {
			if bad {
				if chance(rng, pExitBad) {
					bad = false
				}
			} else if chance(rng, pEnterBad) {
				bad = true
			}
			loss := lossGood
			if bad {
				loss = lossBad
			}
			if !d.Lost() && chance(rng, loss) {
				d.Fates = nil
				if bad {
					st.BurstLost++
				}
			}
		}
	}}
}

// Duplicate delivers an extra copy of the datagram with probability p.
func Duplicate(p float64) Stage {
	return Stage{name: "duplicate", build: func() stageFn {
		return func(rng *cryptolib.LCG, d *Decision, st *LinkStats) {
			if !d.Lost() && chance(rng, p) {
				d.Fates = append(d.Fates, d.Fates[0])
				st.Duplicated++
			}
		}
	}}
}

// CorruptBits flips one seeded bit of the datagram with probability p.
// The same bit is flipped in every copy, so duplication never turns a
// corrupted datagram back into a clean one.
func CorruptBits(p float64) Stage {
	return Stage{name: "corrupt", build: func() stageFn {
		return func(rng *cryptolib.LCG, d *Decision, st *LinkStats) {
			if !d.Lost() && !d.Corrupt && chance(rng, p) {
				d.Corrupt = true
				d.CorruptBit = rng.Uint32()
				st.Corrupted++
			}
		}
	}}
}

// DelayJitter adds a fixed base delay plus uniform jitter in [0, jitter)
// to every copy. Jitter alone reorders closely spaced datagrams.
func DelayJitter(base, jitter time.Duration) Stage {
	return Stage{name: "delay", build: func() stageFn {
		return func(rng *cryptolib.LCG, d *Decision, st *LinkStats) {
			for i := range d.Fates {
				d.Fates[i].At += base
				if jitter > 0 {
					d.Fates[i].At += time.Duration(rng.Uint64() % uint64(jitter))
				}
			}
		}
	}}
}

// Reorder holds a datagram back by holdback with probability p, letting
// traffic submitted after it arrive first.
func Reorder(p float64, holdback time.Duration) Stage {
	return Stage{name: "reorder", build: func() stageFn {
		return func(rng *cryptolib.LCG, d *Decision, st *LinkStats) {
			if !d.Lost() && chance(rng, p) {
				for i := range d.Fates {
					d.Fates[i].At += holdback
				}
				st.Reordered++
			}
		}
	}}
}

// RateCap serialises datagrams through a bps bottleneck: each copy
// occupies the link for size*8/bps and queues behind earlier traffic.
// The queue is unbounded; combine with loss stages to model tail drop.
func RateCap(bps float64) Stage {
	return Stage{name: "ratecap", build: func() stageFn {
		var horizon time.Duration // when the bottleneck frees up
		return func(rng *cryptolib.LCG, d *Decision, st *LinkStats) {
			if bps <= 0 || d.Lost() {
				return
			}
			occupancy := time.Duration(float64(d.Size*8) / bps * float64(time.Second))
			for i := range d.Fates {
				start := d.Fates[i].At
				if horizon > start {
					start = horizon
				}
				horizon = start + occupancy
				d.Fates[i].At = horizon
			}
		}
	}}
}

// LinkModel is a seeded pipeline of impairment stages. Instantiate
// builds an independent Link per direction; two links built from the
// same model share the spec but not the RNG or stage state, so each
// direction of a path degrades independently and deterministically.
type LinkModel struct {
	// Seed makes every fault decision reproducible; 0 selects a fixed
	// default so the zero model is still deterministic.
	Seed uint64
	// Stages apply in order to each submitted datagram.
	Stages []Stage
}

// Link is one instantiated direction of a LinkModel. Transmit is safe
// for concurrent use; decisions are serialised under a mutex, so a
// single-sender call sequence is bit-reproducible given the seed.
type Link struct {
	mu     sync.Mutex
	rng    *cryptolib.LCG
	stages []stageFn
	stats  LinkStats
	healed bool
}

// Instantiate builds a link for one direction. salt distinguishes
// directions instantiated from the same model (hash the endpoint pair).
func (m LinkModel) Instantiate(salt uint64) *Link {
	seed := m.Seed
	if seed == 0 {
		seed = 0xC4A05FB5
	}
	l := &Link{rng: cryptolib.NewLCGSeeded(seed*0x9E3779B97F4A7C15 + salt)}
	for _, s := range m.Stages {
		l.stages = append(l.stages, s.build())
	}
	return l
}

// Transmit decides the fate of one datagram of size bytes submitted at
// now on the link clock. A healed link delivers everything immediately.
func (l *Link) Transmit(now time.Duration, size int) Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Offered++
	d := Decision{Now: now, Size: size, Fates: []Fate{{At: now}}}
	if !l.healed {
		for _, s := range l.stages {
			s(l.rng, &d, &l.stats)
		}
	}
	if d.Lost() {
		l.stats.Lost++
	}
	return d
}

// Heal turns off every impairment: subsequent datagrams are delivered
// immediately and intact. It models the network recovering, which the
// chaos matrix uses to assert a stalled transfer completes on soft
// state alone.
func (l *Link) Heal() {
	l.mu.Lock()
	l.healed = true
	l.mu.Unlock()
}

// Stats snapshots the link counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
