package netsim

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/gateway"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// This file is the reconfiguration-under-load harness. The gateway's
// zero-downtime claim is that a config-epoch swap is invisible to
// in-flight traffic: datagrams that raced the swap re-dispatch against
// the successor epoch instead of dropping, established peers keep
// flowing without recomputing a single master key (warm handoff), and
// the books still reconcile exactly — every datagram pulled off a
// listener is accounted once, under whichever epoch finished it.

// ReconfigScenario parameterises one reconfiguration-under-load run.
type ReconfigScenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed feeds the (clean) link model.
	Seed uint64
	// Senders is how many concurrent clients stream lockstep round
	// trips; Datagrams is the round-trip count per sender.
	// PayloadBytes sizes each datagram (minimum 8).
	Senders      int
	Datagrams    int
	PayloadBytes int
	// Secret encrypts the payloads.
	Secret bool
	// Shards is the initial shard count; swaps alternate it with
	// Shards+2 so the handoff fan-out across different shard counts is
	// exercised too.
	Shards int
	// Swaps is how many config swaps land mid-stream, spread evenly
	// across the transfer (default 3).
	Swaps int
	// DrainTimeout bounds each retiring epoch's drain (default 2s).
	DrainTimeout time.Duration
}

// ReconfigReport is the outcome of a reconfiguration run plus its
// reconciliation.
type ReconfigReport struct {
	Scenario string
	Senders  int
	// RoundTrips is how many send→echo→verify cycles completed; a
	// complete run has Senders×Datagrams of them.
	RoundTrips uint64
	Swaps      uint64
	FinalEpoch uint64
	// CertsHandedOff and MasterKeysHandedOff sum what the swaps carried
	// across; SuccessorComputes counts master-key exponentiations
	// performed by post-swap epochs — warm handoff means zero.
	CertsHandedOff      int
	MasterKeysHandedOff int
	SuccessorComputes   uint64
	// Port classifies every datagram copy the network enqueued at the
	// gateway's listener.
	Port PortStats
	// Final is the gateway's cumulative accounting after drain.
	Final gateway.Stats
	// DrainErrs lists retiring epochs that missed the drain deadline.
	DrainErrs []string
	Complete  bool
	// Violations lists every reconciliation equation that failed; empty
	// means the swaps cost nothing observable.
	Violations []string
}

// RunReconfig executes one reconfiguration-under-load scenario and
// reconciles the books.
func RunReconfig(sc ReconfigScenario) (*ReconfigReport, error) {
	if sc.Senders <= 0 {
		sc.Senders = 3
	}
	if sc.Datagrams <= 0 {
		sc.Datagrams = 40
	}
	if sc.PayloadBytes < 8 {
		sc.PayloadBytes = 64
	}
	if sc.Shards <= 0 {
		sc.Shards = 2
	}
	if sc.Swaps <= 0 {
		sc.Swaps = 3
	}
	if sc.DrainTimeout <= 0 {
		sc.DrainTimeout = 2 * time.Second
	}
	const tenant = "edge"
	gwAddr := principal.Address("reconfig-gw")

	ca, err := cert.NewAuthority("reconfig-root", 512)
	if err != nil {
		return nil, err
	}
	dir := cert.NewStaticDirectory()
	ver := &cert.Verifier{CAKey: ca.PublicKey(), CA: "reconfig-root"}
	now := time.Now()
	ids := make(map[principal.Address]*principal.Identity)
	addrs := []principal.Address{gwAddr}
	for i := 0; i < sc.Senders; i++ {
		addrs = append(addrs, principal.Address(fmt.Sprintf("reconfig-c%d", i)))
	}
	for _, addr := range addrs {
		id, err := principal.NewIdentity(addr, cryptolib.TestGroup)
		if err != nil {
			return nil, err
		}
		c, err := ca.Issue(id, now.Add(-time.Hour), now.Add(24*time.Hour))
		if err != nil {
			return nil, err
		}
		dir.Publish(c)
		ids[addr] = id
	}

	net := NewChaosNetwork(LinkModel{Seed: sc.Seed}) // clean link: the swap is the event

	gw, err := gateway.New(gateway.Options{
		Identity: func(tc gateway.TenantConfig) (*principal.Identity, error) {
			id := ids[principal.Address(tc.Address)]
			if id == nil {
				return nil, fmt.Errorf("netsim: no identity for %q", tc.Address)
			}
			return id, nil
		},
		Listen: func(tc gateway.TenantConfig) (transport.Transport, error) {
			return net.Attach(principal.Address(tc.Address), 0)
		},
		Directory: dir,
		Verifier:  ver,
	})
	if err != nil {
		return nil, err
	}
	cfg := func(shards int, flowMax uint64) *gateway.Config {
		return &gateway.Config{
			DrainTimeout: gateway.Duration(sc.DrainTimeout),
			Tenants: []gateway.TenantConfig{{
				Name:           tenant,
				Address:        string(gwAddr),
				Shards:         shards,
				ReplayCache:    true,
				FlowMaxPackets: flowMax,
			}},
		}
	}
	if err := gw.Start(cfg(sc.Shards, 0)); err != nil {
		return nil, err
	}
	defer gw.Shutdown(sc.DrainTimeout) //nolint:errcheck // idempotent safety net

	clients := make([]*core.Endpoint, sc.Senders)
	for i := range clients {
		addr := principal.Address(fmt.Sprintf("reconfig-c%d", i))
		tr, err := net.Attach(addr, 0)
		if err != nil {
			return nil, err
		}
		ep, err := core.NewEndpoint(core.Config{
			Identity:  ids[addr],
			Transport: tr,
			Directory: dir,
			Verifier:  ver,
			Cipher:    core.CipherAES128GCM,
		})
		if err != nil {
			return nil, err
		}
		clients[i] = ep
		defer ep.Close()
	}

	report := &ReconfigReport{Scenario: sc.Name, Senders: sc.Senders}
	fail := func(format string, args ...any) {
		report.Violations = append(report.Violations, fmt.Sprintf(format, args...))
	}

	payload := func(sender, seq int) []byte {
		p := make([]byte, sc.PayloadBytes)
		binary.BigEndian.PutUint32(p, uint32(sender))
		binary.BigEndian.PutUint32(p[4:], uint32(seq))
		for i := 8; i < len(p); i++ {
			p[i] = byte(sender + seq + i)
		}
		return p
	}
	var completed atomic.Uint64
	violCh := make(chan string, sc.Senders*4)
	roundTrip := func(sender, seq int) bool {
		want := payload(sender, seq)
		if err := clients[sender].SendTo(gwAddr, want, sc.Secret); err != nil {
			violCh <- fmt.Sprintf("sender %d send %d: %v", sender, seq, err)
			return false
		}
		dg, err := clients[sender].Receive()
		if err != nil {
			violCh <- fmt.Sprintf("sender %d echo %d: %v", sender, seq, err)
			return false
		}
		if string(dg.Payload) != string(want) {
			violCh <- fmt.Sprintf("sender %d echo %d: payload mismatch", sender, seq)
			return false
		}
		completed.Add(1)
		return true
	}

	// Warm-up: one synchronous round trip per sender before the stream
	// (and any swap) starts, so every peer's pair master key exists in
	// epoch 1. From then on, warm handoff must make every successor
	// epoch's master-key-compute count exactly zero.
	for i := 0; i < sc.Senders; i++ {
		if !roundTrip(i, 0) {
			return nil, fmt.Errorf("netsim: warm-up round trip failed: %s", <-violCh)
		}
	}

	// Watchdog: a reconfiguration that drops an in-flight flow shows up
	// as a sender blocked in Receive forever; close the clients so the
	// run fails with a violation instead of hanging.
	timedOut := make(chan struct{})
	watchdog := time.AfterFunc(60*time.Second, func() {
		close(timedOut)
		for _, c := range clients {
			c.Close()
		}
	})
	defer watchdog.Stop()

	var wg sync.WaitGroup
	for i := 0; i < sc.Senders; i++ {
		wg.Add(1)
		go func(sender int) {
			defer wg.Done()
			for seq := 1; seq < sc.Datagrams; seq++ {
				if !roundTrip(sender, seq) {
					return
				}
			}
		}(i)
	}

	// The swaps land at even marks across the stream. Each alternates
	// the shard count (exercising handoff fan-out across different
	// shard topologies) and varies a flow policy knob, which is the
	// kind of change operators hot-apply.
	total := uint64(sc.Senders * sc.Datagrams)
	successorComputes := func() {
		if gw.Epoch() < 2 {
			return
		}
		ks, _, err := gw.TenantKeyStats(tenant)
		if err == nil {
			report.SuccessorComputes += ks.MasterKeyComputes
		}
	}
	for k := 1; k <= sc.Swaps; k++ {
		mark := uint64(k) * total / uint64(sc.Swaps+1)
		for completed.Load() < mark {
			select {
			case <-timedOut:
				fail("timed out waiting for round-trip mark %d", mark)
				goto drain
			default:
			}
			time.Sleep(time.Millisecond)
		}
		// Before retiring the live epoch, read its keying books: if it
		// is itself a successor, it must not have computed any keys.
		successorComputes()
		shards := sc.Shards
		if k%2 == 1 {
			shards += 2
		}
		rep, err := gw.Swap(cfg(shards, uint64(100000+k)))
		if err != nil {
			fail("swap %d: %v", k, err)
			break
		}
		if rep.MasterKeys < sc.Senders {
			fail("swap %d handed off %d master keys; every one of the %d established peers must cross",
				k, rep.MasterKeys, sc.Senders)
		}
		if rep.Certs == 0 {
			fail("swap %d handed off no certificates", k)
		}
		report.CertsHandedOff += rep.Certs
		report.MasterKeysHandedOff += rep.MasterKeys
		if rep.DrainErr != "" {
			report.DrainErrs = append(report.DrainErrs, rep.DrainErr)
		}
	}

drain:
	wg.Wait()
	watchdog.Stop()
	close(violCh)
	for v := range violCh {
		fail("%s", v)
	}
	net.Quiesce(time.Second)
	successorComputes() // the final epoch's books, before drain retires them
	report.RoundTrips = completed.Load()
	report.Complete = report.RoundTrips == total
	report.Port = net.PortStats(gwAddr)
	final, err := gw.Shutdown(sc.DrainTimeout)
	if err != nil {
		report.DrainErrs = append(report.DrainErrs, err.Error())
	}
	report.Final = final
	report.Swaps = final.Swaps
	report.FinalEpoch = final.Epoch
	report.reconcile(sc)
	return report, nil
}

// reconcile checks the zero-downtime equations.
func (r *ReconfigReport) reconcile(sc ReconfigScenario) {
	fail := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
	total := uint64(sc.Senders * sc.Datagrams)
	if !r.Complete {
		fail("transfer incomplete: %d of %d round trips", r.RoundTrips, total)
	}
	if want := uint64(sc.Swaps + 1); r.Swaps != want || r.FinalEpoch != want {
		fail("epoch bookkeeping: swaps=%d epoch=%d, want %d each", r.Swaps, r.FinalEpoch, want)
	}

	// The network delivered every client datagram to the listener
	// exactly once — the link is clean, so anything else is a harness
	// fault, not a gateway one.
	if r.Port.DeliveredClean != total || r.Port.DeliveredDup != 0 ||
		r.Port.DeliveredCorrupt != 0 || r.Port.Injected != 0 || r.Port.Overflow != 0 {
		fail("listener port: clean=%d dup=%d corrupt=%d injected=%d overflow=%d, want %d/0/0/0/0",
			r.Port.DeliveredClean, r.Port.DeliveredDup, r.Port.DeliveredCorrupt,
			r.Port.Injected, r.Port.Overflow, total)
	}

	// Zero dropped in-flight flows: every datagram pulled off the
	// listener was accepted and echoed, across every epoch it may have
	// finished under.
	f := r.Final
	if f.Received != total || f.Accepted != total || f.Echoed != total {
		fail("gateway books: received=%d accepted=%d echoed=%d, want %d each",
			f.Received, f.Accepted, f.Echoed, total)
	}
	var drops uint64
	for reason, n := range f.Drops {
		drops += n
		fail("dropped %d datagrams (%s); a swap must not cost a single one", n, reason)
	}
	if f.EchoFailures != 0 || f.RetryStarved != 0 || f.NoTenant != 0 {
		fail("echoFailures=%d retryStarved=%d noTenant=%d, want 0 each",
			f.EchoFailures, f.RetryStarved, f.NoTenant)
	}
	if f.Received != f.Accepted+drops+f.NoTenant+f.Absorbed+f.RetryStarved {
		fail("ledger does not reconcile: received %d != accepted %d + drops %d + noTenant %d + absorbed %d + retryStarved %d",
			f.Received, f.Accepted, drops, f.NoTenant, f.Absorbed, f.RetryStarved)
	}

	// Warm handoff: the successors served the whole tail of the stream
	// without recomputing a single master key.
	if r.SuccessorComputes != 0 {
		fail("successor epochs performed %d master-key computes; warm handoff means zero", r.SuccessorComputes)
	}
	if len(r.DrainErrs) != 0 {
		fail("%d retiring epochs missed the drain deadline: %v", len(r.DrainErrs), r.DrainErrs)
	}
}

// Summary renders the report as a compact multi-line string for the
// fbschaos command.
func (r *ReconfigReport) Summary() string {
	s := fmt.Sprintf("reconfig %s: senders=%d roundtrips=%d swaps=%d epoch=%d complete=%v\n",
		r.Scenario, r.Senders, r.RoundTrips, r.Swaps, r.FinalEpoch, r.Complete)
	s += fmt.Sprintf("  handoff: certs=%d masterkeys=%d successor-computes=%d\n",
		r.CertsHandedOff, r.MasterKeysHandedOff, r.SuccessorComputes)
	s += fmt.Sprintf("  books: received=%d accepted=%d echoed=%d\n",
		r.Final.Received, r.Final.Accepted, r.Final.Echoed)
	if len(r.Violations) == 0 {
		s += "  reconciliation: exact\n"
	}
	for _, v := range r.Violations {
		s += "  VIOLATION: " + v + "\n"
	}
	return s
}
