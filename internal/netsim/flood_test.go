package netsim

import (
	"testing"
	"time"

	"fbs/internal/core"
)

// TestFloodSpoofedKeyingAt10x is the headline overload run: a spoofed
// -source keying flood at 10x the legitimate rate plus an authenticated
// flow-churn flood, against a receiver with keying admission control.
// The receiver deliberately runs unbudgeted — this scenario isolates
// the admission gate (the budget's own saturation behaviour, including
// the sound replay-window refusal policy, is churn-budget's job), so
// the goodput floor asserts that the gate alone keeps known peers
// flowing while the storm is shed. The reconciliation inside RunFlood
// asserts conservation, the exponentiation to admission bound, and the
// goodput floor; the test additionally pins each of the overload drop
// reasons to the component that must produce it.
func TestFloodSpoofedKeyingAt10x(t *testing.T) {
	rep, err := RunFlood(FloodScenario{
		Name:         "spoof-10x",
		Seed:         7,
		Datagrams:    60,
		PayloadBytes: 64,
		Secret:       true,
		// 10 spoofs and 2 fresh-flow churn datagrams ride along with
		// every legitimate datagram.
		ChurnDatagrams: 120,
		SpoofDatagrams: 600,
		SpoofSources:   24,
		// The flooder's own endpoint gets a budget sized for 16 flows,
		// so the sender-side shed path is exercised too.
		SenderHardBudget: 16 * core.CostFAMEntry,
		Admission: core.AdmissionConfig{
			UpcallRate:  20,
			UpcallBurst: 5,
			// 14 characters group "flood-spoof-NNN" sources by their
			// first two digits: a handful of prefix quotas, none able
			// to monopolise the token bucket, with enough quota-passing
			// attempts between them to empty it.
			PrefixQuota: 2,
			PrefixLen:   14,
			QuotaWindow: 30 * time.Second,
		},
		GoodputFloor: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Log(rep.Summary())
	}
	// Each overload shed mechanism fired and was attributed:
	// the token bucket...
	if rep.ReceiverDrops[core.DropKeyingOverload] == 0 {
		t.Error("spoof flood never produced DropKeyingOverload at the receiver")
	}
	// ...the per-source-prefix quota...
	if rep.ReceiverDrops[core.DropPeerQuota] == 0 {
		t.Error("spoof flood never produced DropPeerQuota at the receiver")
	}
	// ...and the flooder's own state budget refusing fresh flows.
	if rep.SenderDrops[core.DropStateBudget] == 0 {
		t.Error("churn flooder's budget never produced DropStateBudget")
	}
	// Admitted spoofs were unmasked by the MAC, not accepted.
	if rep.ReceiverDrops[core.DropBadMAC] == 0 {
		t.Error("no admitted spoof reached (and failed) MAC verification")
	}
	if rep.Admission.Admitted == 0 {
		t.Error("gate admitted nobody; the scenario never keyed at all")
	}
}

// TestFloodPrefilterSketchPreParse pins the pre-filter at the sketch
// level under a spoofed-source storm sharing one address prefix: the
// admission gate's sheds heat the sketch, after which the storm must be
// refused before the header parse. RunFlood's reconciliation asserts
// the work-counter ledger (header parses + pre-parse sheds == enqueued)
// and the >=90% pre-parse shed floor from the scenario.
func TestFloodPrefilterSketchPreParse(t *testing.T) {
	rep, err := RunFlood(FloodScenario{
		Name:         "prefilter-sketch",
		Seed:         13,
		Datagrams:    50,
		PayloadBytes: 64,
		Secret:       true,
		// 40 spoofs ride along with every legitimate datagram, all from
		// the shared "flood-sp" sketch prefix.
		SpoofDatagrams: 2000,
		SpoofSources:   24,
		Admission: core.AdmissionConfig{
			UpcallRate:  20,
			UpcallBurst: 5,
			PrefixQuota: 2,
			PrefixLen:   14,
			QuotaWindow: 30 * time.Second,
		},
		Prefilter:         core.PrefilterConfig{Enable: true, ForceLevel: core.PrefilterSketch},
		PreParseShedFloor: 0.9,
		GoodputFloor:      0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Log(rep.Summary())
	}
	if rep.ReceiverDrops[core.DropPrefilter] == 0 {
		t.Error("sketch never shed a spoofed datagram pre-parse")
	}
	if rep.Prefilter.SketchSheds != rep.ReceiverDrops[core.DropPrefilter] {
		t.Errorf("sketch shed counter %d disagrees with DropPrefilter %d",
			rep.Prefilter.SketchSheds, rep.ReceiverDrops[core.DropPrefilter])
	}
	// The sketch does not protect what it has not seen: the first
	// spoofs reached the keying path and were shed (or unmasked) there,
	// which is exactly what heated the prefix.
	if rep.Admission.ShedOverload+rep.Admission.ShedQuota == 0 {
		t.Error("no admission shed ever fed the sketch")
	}
}

// TestFloodPrefilterChallengeZeroKeying pins the ladder at the top
// rung: every spoofed datagram must be refused statelessly — zero
// Diffie-Hellman computes and zero admissions attributable to the
// storm (ExpectNoSpoofKeying) — while the legitimate sender and the
// churn flooder answer their challenges with cookie echoes and carry
// on. Cookies here derive from a fixed seed, the crash-restart
// resumability knob.
func TestFloodPrefilterChallengeZeroKeying(t *testing.T) {
	rep, err := RunFlood(FloodScenario{
		Name:           "prefilter-challenge",
		Seed:           17,
		Datagrams:      60,
		PayloadBytes:   64,
		Secret:         true,
		ChurnDatagrams: 120,
		SpoofDatagrams: 600,
		SpoofSources:   24,
		Admission: core.AdmissionConfig{
			UpcallRate:  20,
			UpcallBurst: 5,
		},
		Prefilter: core.PrefilterConfig{
			Enable:     true,
			ForceLevel: core.PrefilterChallenge,
			SecretSeed: []byte("flood-prefilter-seed"),
		},
		PreParseShedFloor:   0.9,
		ExpectNoSpoofKeying: true,
		GoodputFloor:        0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Log(rep.Summary())
	}
	if rep.ReceiverDrops[core.DropChallenged] == 0 {
		t.Error("challenge level never refused an unknown peer")
	}
	if rep.Prefilter.EchoAccepted == 0 {
		t.Error("no legitimate echo was ever verified; the transfer should have stalled")
	}
	if rep.Prefilter.EchoRejected != 0 {
		t.Errorf("clean link rejected %d echoes", rep.Prefilter.EchoRejected)
	}
}

// TestFloodPrefilterAdaptiveEscalates runs the ladder in adaptive mode:
// resting at off (zero added cost in peacetime), it must climb when the
// admission gate starts shedding under the spoofed storm. Escalation —
// not a particular resting rung — is the assertion; hysteresis means
// the ladder may step back down whenever the sketch itself quiets the
// pressure signal.
func TestFloodPrefilterAdaptiveEscalates(t *testing.T) {
	rep, err := RunFlood(FloodScenario{
		Name:           "prefilter-adaptive",
		Seed:           19,
		Datagrams:      50,
		PayloadBytes:   64,
		SpoofDatagrams: 2000,
		SpoofSources:   24,
		Admission: core.AdmissionConfig{
			UpcallRate:  20,
			UpcallBurst: 5,
		},
		Prefilter:        core.PrefilterConfig{Enable: true},
		ExpectEscalation: true,
		GoodputFloor:     0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Log(rep.Summary())
	}
	if rep.Prefilter.Escalations == 0 {
		t.Error("adaptive ladder never escalated")
	}
}

// TestFloodChurnBudgetExact runs the flow-churn flood alone, with no
// admission gate: the memory budget by itself must cap receiver state
// (flow-key cache installs skipped, replay newcomers refused) while
// every offered datagram still reconciles to a bucket. Because the
// replay window refuses newcomers rather than evicting residents (a
// resident displaced mid-window could be replayed and accepted twice),
// a saturated budget sheds legitimate datagrams too — the goodput
// floor here is deliberately low, and completeness instead comes from
// the recovery rounds, which step the simulated clock past the
// freshness window so the sweep returns replay bytes to the budget.
func TestFloodChurnBudgetExact(t *testing.T) {
	rep, err := RunFlood(FloodScenario{
		Name:           "churn-budget",
		Seed:           11,
		Datagrams:      40,
		PayloadBytes:   64,
		ChurnDatagrams: 200,
		HardBudget:     4096,
		GoodputFloor:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Log(rep.Summary())
	}
	if rep.Budget.Denials == 0 {
		t.Error("churn never drove the budget to a denial")
	}
	if rep.Replay.Refusals == 0 {
		t.Error("replay cache never refused a newcomer under the hard budget")
	}
	if rep.ReceiverDrops[core.DropReplayBudget] == 0 {
		t.Error("saturated replay window never surfaced as DropReplayBudget")
	}
	if rep.Budget.Peak > 4096 {
		t.Errorf("budget peak %d exceeded the hard limit", rep.Budget.Peak)
	}
	// With nobody spoofing and both senders authenticated, the recovery
	// rounds (each advancing the clock past the freshness window) must
	// eventually land every legitimate byte.
	if !rep.Complete {
		t.Error("transfer incomplete under churn-only flood")
	}
}
