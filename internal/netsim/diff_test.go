package netsim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbs/internal/core"
)

// failDiff reports a divergence, writing the full artifact (op stream
// plus both transcripts) to FBS_DIFF_ARTIFACT_DIR when set so CI can
// upload it.
func failDiff(t *testing.T, name string, rep *DiffReport) {
	t.Helper()
	if dir := os.Getenv("FBS_DIFF_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			path := filepath.Join(dir, name+".txt")
			if err := os.WriteFile(path, []byte(rep.Artifact()), 0o644); err == nil {
				t.Logf("divergence artifact written to %s", path)
			}
		}
	}
	tail := rep.OpStream
	if len(tail) > 12 {
		tail = tail[len(tail)-12:]
	}
	t.Fatalf("%s\nlast ops:\n%s", rep.Summary(), strings.Join(tail, "\n"))
}

// TestDifferentialTenThousandOps is the acceptance soak: ten thousand
// seeded operations through both implementations with zero divergences.
func TestDifferentialTenThousandOps(t *testing.T) {
	rep, err := RunDiff(DiffScenario{Seed: 1997, Ops: 10_000, ReplayCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergence != "" {
		failDiff(t, "soak-1997", rep)
	}
	if rep.Accepted < rep.Dropped/4 || rep.Dropped < rep.Accepted/10 {
		t.Fatalf("degenerate run (accepted %d, dropped %d): the op mix no longer exercises both outcomes", rep.Accepted, rep.Dropped)
	}
	t.Log(rep.Summary())
}

// TestDifferentialSeeds runs several shorter op streams for breadth, one
// of them without the replay cache so the replay-free check order is
// also cross-validated.
func TestDifferentialSeeds(t *testing.T) {
	for i, sc := range []DiffScenario{
		{Seed: 1, Ops: 1500, ReplayCache: true},
		{Seed: 0xFB55EED, Ops: 1500, ReplayCache: true},
		{Seed: 42, Ops: 1500, ReplayCache: false},
	} {
		rep, err := RunDiff(sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Divergence != "" {
			failDiff(t, fmt.Sprintf("seed-%d", sc.Seed), rep)
		}
		t.Logf("scenario %d: %s", i, rep.Summary())
	}
}

// TestDifferentialSuites cross-validates every registered suite against
// the reference model: wire bytes, verdicts, drop classification and
// the final ledgers must agree per suite, including the AEAD framings
// whose reference implementation shares no code with core's.
func TestDifferentialSuites(t *testing.T) {
	for _, s := range core.Suites() {
		if s.ID() == core.CipherNone {
			continue // cleartext-only; the DES run covers non-secret framing
		}
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			rep, err := RunDiff(DiffScenario{
				Seed:        0x5817E000 + uint64(s.ID()),
				Ops:         2000,
				ReplayCache: true,
				Suite:       s.ID(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Divergence != "" {
				failDiff(t, "suite-"+s.Name(), rep)
			}
			t.Log(rep.Summary())
		})
	}
}

// TestDifferentialPrefilter pins the edge pre-filter at each active
// ladder rung on both implementations and demands exact agreement on
// sketch sheds, challenge refusals, cookie-frame absorption and forged
// echo rejection — the op stream injects forged cookie frames on top
// of the usual bitflip/truncate damage.
func TestDifferentialPrefilter(t *testing.T) {
	for _, sc := range []struct {
		name  string
		level core.PrefilterLevel
	}{
		{"sketch", core.PrefilterSketch},
		{"challenge", core.PrefilterChallenge},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunDiff(DiffScenario{
				Seed:        0xC00C1E + uint64(sc.level),
				Ops:         4000,
				ReplayCache: true,
				Prefilter:   sc.level,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Divergence != "" {
				failDiff(t, "prefilter-"+sc.name, rep)
			}
			if rep.Dropped == 0 {
				t.Fatalf("prefilter run dropped nothing: the op mix no longer exercises refusals")
			}
			t.Log(rep.Summary())
		})
	}
}

// TestDifferentialMatrixRace runs independent differential pairs
// concurrently. Each run is self-contained; under -race this doubles as
// a data-race probe of the optimised endpoint's striped machinery while
// its outputs are still being cross-checked for exactness.
func TestDifferentialMatrixRace(t *testing.T) {
	for _, seed := range []uint64{7, 11, 13, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := RunDiff(DiffScenario{Seed: seed, Ops: 2000, ReplayCache: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Divergence != "" {
				failDiff(t, fmt.Sprintf("race-seed-%d", seed), rep)
			}
		})
	}
}

// FuzzDifferential lets the fuzzer hunt for op-stream shapes on which
// the optimised endpoint and the reference model disagree.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1997), uint16(512))
	f.Add(uint64(1), uint16(64))
	f.Add(uint64(0xDEADBEEF), uint16(1024))
	f.Add(uint64(314159), uint16(200))
	f.Fuzz(func(t *testing.T, seed uint64, ops uint16) {
		// The seed also picks the suite, so the fuzzer roams the whole
		// registry (AEAD framings included) hunting for disagreements.
		suites := core.Suites()
		rep, err := RunDiff(DiffScenario{
			Seed:        seed,
			Ops:         int(ops)%1024 + 32,
			ReplayCache: seed%5 != 0, // occasionally cross-validate the replay-free path
			Suite:       suites[int(seed/7)%len(suites)].ID(),
			// The seed also roams the pre-filter ladder, so the fuzzer
			// hunts cookie-codec and sketch disagreements too.
			Prefilter: core.PrefilterLevel((seed / 11) % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Divergence != "" {
			failDiff(t, fmt.Sprintf("fuzz-%d-%d", seed, ops), rep)
		}
	})
}
