package netsim

import "time"

// CostModel is the per-packet CPU cost of one protocol configuration on
// the simulated host.
//
// Calibration (documented in DESIGN.md): the paper reports ttcp over
// regular 4.4BSD IP at about 7,700 kb/s on a dedicated 10 Mb/s Ethernet
// between Pentium 133s, and about 3,400 kb/s with FBS DES+MD5. Working
// backwards from 1460-byte segments:
//
//   - GENERIC: 1460·8 bits / 7.7 Mb/s ≈ 1.52 ms of host path per packet.
//   - FBS NOP adds only header insertion and cache lookups (the paper:
//     "FBS incurs very little overhead outside of the cryptographic
//     operations"): +0.04 ms.
//   - FBS DES+MD5 adds a per-byte cost. The paper's userspace CryptoLib
//     rates (DES-CBC 549 kB/s, MD5 7060 kB/s) put the combined rate at
//     509 kB/s; the in-kernel implementation fuses the two passes, and
//     the published 3,400 kb/s implies an effective ≈770 kB/s crypto
//     path. PerByte is set to the published-throughput-derived value;
//     CryptoLibPerByte preserves the raw userspace figure for the
//     single-pass ablation.
type CostModel struct {
	Name string
	// PerPacket is the fixed host cost per packet (driver, IP path,
	// socket crossing).
	PerPacket time.Duration
	// PerByte is the data-touching cost (MAC + encryption) per payload
	// byte.
	PerByte time.Duration
}

// Cost returns the CPU time to process one packet with n payload bytes.
func (m CostModel) Cost(n int) time.Duration {
	return m.PerPacket + time.Duration(n)*m.PerByte
}

// Pentium-133 calibrated models (see CostModel).
var (
	// P133Generic is stock 4.4BSD IP.
	P133Generic = CostModel{Name: "GENERIC", PerPacket: 1520 * time.Microsecond}
	// P133FBSNOP is FBS with encryption and MAC nullified.
	P133FBSNOP = CostModel{Name: "FBS NOP", PerPacket: 1560 * time.Microsecond}
	// P133FBSDESMD5 is FBS with DES encryption and keyed-MD5 MAC, fused
	// into a single in-kernel data pass.
	P133FBSDESMD5 = CostModel{
		Name:      "FBS DES+MD5",
		PerPacket: 1560 * time.Microsecond,
		PerByte:   time.Second / 770_000,
	}
	// P133FBSDESMD5TwoPass uses the raw userspace CryptoLib rates
	// (549 kB/s DES + 7060 kB/s MD5 as two separate passes): the
	// single-pass ablation's baseline.
	P133FBSDESMD5TwoPass = CostModel{
		Name:      "FBS DES+MD5 (two-pass)",
		PerPacket: 1560 * time.Microsecond,
		PerByte:   time.Second/549_000 + time.Second/7_060_000,
	}
)

// LinkConfig models the wire.
type LinkConfig struct {
	// RateBps is the link rate in bits per second.
	RateBps float64
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// FrameOverhead is bytes added per packet on the wire (Ethernet
	// header+CRC+preamble+IFG equivalents).
	FrameOverhead int
}

// Ethernet10 is the paper's dedicated 10 Mb/s segment.
var Ethernet10 = LinkConfig{
	RateBps:       10_000_000,
	PropDelay:     50 * time.Microsecond,
	FrameOverhead: 38, // 14 hdr + 4 FCS + 8 preamble + 12 IFG
}

// serialize returns the wire occupancy time of a frame.
func (l LinkConfig) serialize(bytes int) time.Duration {
	return time.Duration(float64(bytes+l.FrameOverhead) * 8 / l.RateBps * float64(time.Second))
}
