package netsim

import (
	"testing"

	"fbs/internal/transport"
)

// nopSealer satisfies baseline.Sealer for pairing-rule tests.
type nopSealer struct{}

func (nopSealer) Name() string { return "nop" }
func (nopSealer) Seal(dg transport.Datagram, secret bool) (transport.Datagram, error) {
	return dg, nil
}
func (nopSealer) Open(dg transport.Datagram) (transport.Datagram, error) { return dg, nil }

func TestTransferConfigValidateDefaults(t *testing.T) {
	cfg := TransferConfig{TotalBytes: 1 << 20, SegmentBytes: 1460}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Window != DefaultWindow {
		t.Errorf("Window = %d, want DefaultWindow (%d)", cfg.Window, DefaultWindow)
	}
	if cfg.Link != Ethernet10 {
		t.Errorf("zero Link should default to Ethernet10, got %+v", cfg.Link)
	}
}

func TestTransferConfigValidateRejects(t *testing.T) {
	bad := []TransferConfig{
		{},                                   // no sizes
		{TotalBytes: 1 << 20},                // no segment size
		{TotalBytes: -1, SegmentBytes: 1460}, // negative total
		{TotalBytes: 1 << 20, SegmentBytes: 1460, HeaderBytes: -1},
		{TotalBytes: 1 << 20, SegmentBytes: 1460, AppPerSegment: -1},
		{TotalBytes: 1 << 20, SegmentBytes: 1460, Link: LinkConfig{RateBps: -5}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	// The Sealer/Opener pairing rule still holds.
	cfg := TransferConfig{TotalBytes: 1 << 20, SegmentBytes: 1460, Sealer: nopSealer{}}
	if err := cfg.Validate(); err == nil {
		t.Error("Sealer without Opener accepted")
	}
}
