package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"fbs/internal/cert"
	"fbs/internal/core"
	"fbs/internal/cryptolib"
	"fbs/internal/principal"
	"fbs/internal/transport"
)

// This file is the overload soak harness: a receiver with a hard
// soft-state memory budget and keying admission control, attacked by the
// two state-creation floods the FBS design is most exposed to, with
// RunChaos-style exact reconciliation.
//
//   - The flow-churn flooder is an AUTHENTICATED peer that puts every
//     datagram on a fresh flow (a new 5-tuple/sfl each time), growing
//     the receiver's replay window and flow-key cache — and its own
//     flow state table — at line rate. The budget must cap total state
//     while every offered datagram still lands in exactly one bucket.
//     Replay signatures are never evicted to make room (that would let
//     an attacker replay the evicted datagram), so a saturated budget
//     sheds verified datagrams with DropReplayBudget until the
//     freshness window turns over; the recovery phase advances a
//     simulated clock one window per retransmission round to model
//     riding that out.
//   - The spoofed-source keying flooder forges datagrams from REGISTERED
//     principals the receiver has never talked to. Each admitted source
//     costs the receiver a certificate fetch plus a Diffie-Hellman
//     exponentiation before the MAC unmasks it — the classic
//     verification-flooding DoS. The admission gate must shed the storm
//     before the expensive work, so exponentiations grow with admitted
//     peers, never with offered packets.
//
// Throughout, a legitimate transfer must retain at least the configured
// fraction of its unattacked goodput.

// FloodScenario parameterises one overload run.
type FloodScenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed drives spoof forging and churn payloads.
	Seed uint64
	// Datagrams is the legitimate transfer size; PayloadBytes sizes each
	// datagram (minimum 8).
	Datagrams    int
	PayloadBytes int
	// Secret encrypts the legitimate payloads.
	Secret bool
	// ChurnDatagrams is how many fresh-flow datagrams the authenticated
	// flooder offers; SpoofDatagrams how many forged-source keying
	// datagrams arrive, cycling over SpoofSources registered principals.
	ChurnDatagrams int
	SpoofDatagrams int
	SpoofSources   int
	// HardBudget and HighWater configure the receiver's soft-state
	// budget (bytes); HardBudget <= 0 disables it. SenderHardBudget, if
	// positive, budgets the churn flooder's own endpoint so the
	// sender-side flow-table shed path is exercised too.
	HardBudget       int64
	HighWater        int64
	SenderHardBudget int64
	// Admission configures the receiver's keying gate.
	Admission core.AdmissionConfig
	// GoodputFloor is the minimum fraction of the legitimate datagrams
	// offered during the attack that must be accepted during the attack
	// (before any retransmission); default 0.7.
	GoodputFloor float64
	// MaxRounds bounds post-attack retransmission rounds (default 10).
	MaxRounds int

	// Prefilter configures the receiver's edge pre-filter. When
	// enabled, the legitimate sender and the churn flooder also run
	// with the pre-filter machinery on (at the resting level) so their
	// cookie jars can absorb challenges and wrap retries in echoes.
	Prefilter core.PrefilterConfig
	// PreParseShedFloor, when > 0, requires at least this fraction of
	// the spoofed datagrams to have been refused before the header
	// parse (the sketch/challenge work bound from the paper's
	// cheapest-check-first discipline).
	PreParseShedFloor float64
	// ExpectEscalation requires the adaptive ladder to have climbed at
	// least one rung during the run.
	ExpectEscalation bool
	// ExpectNoSpoofKeying requires the spoofed flood to have bought
	// zero keying work: Diffie-Hellman computes stay exactly at the
	// legitimate-peer count and no spoofed source passes admission.
	ExpectNoSpoofKeying bool
}

// FloodReport is the outcome of an overload run plus its reconciliation.
type FloodReport struct {
	Scenario string
	// LegitOffered/LegitAccepted count the legitimate transfer during
	// the attack phase (acceptance measured before retransmission);
	// Goodput is their ratio.
	LegitOffered  uint64
	LegitAccepted uint64
	Goodput       float64
	// ChurnAttempts is what the flooder tried to seal; ChurnOffered what
	// its endpoint let onto the wire (the difference was shed
	// sender-side under its own budget).
	ChurnAttempts uint64
	ChurnOffered  uint64
	// SpoofOffered counts forged datagrams injected at the receiver.
	SpoofOffered uint64
	// Accepted is everything the receiver accepted (legit + churn,
	// including retransmissions).
	Accepted      uint64
	SenderDrops   [core.NumDropReasons]uint64
	ReceiverDrops [core.NumDropReasons]uint64
	Port          PortStats
	// Overload-plane snapshots from the receiver, plus the churn
	// flooder's own budget.
	Budget       core.BudgetStats
	SenderBudget core.BudgetStats
	Admission    core.AdmissionStats
	Replay       core.ReplayStats
	Keys         core.KeyServiceStats
	// LegitPeers is how many genuine correspondents the receiver keyed
	// (the allowance on top of Admitted in the exponentiation bound).
	LegitPeers uint64
	Rounds     int
	Complete   bool
	// Prefilter snapshots the receiver's edge pre-filter;
	// PreParseShedRatio is the fraction of spoofed datagrams refused
	// before the header parse (exact when no legitimate datagram was
	// challenged; otherwise a slight overestimate, clamped to 1).
	// PreParseShedFloor echoes the scenario's expectation so offline
	// validators (fbsstat bench-validate) can re-assert it from the
	// serialised report alone.
	Prefilter         core.PrefilterStats
	PreParseShedRatio float64
	PreParseShedFloor float64
	// Violations lists every reconciliation equation that failed; empty
	// means the run reconciled exactly.
	Violations []string
}

// countBelow reports how many sequence numbers under want are marked.
func (r *receiverState) countBelow(want int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for seq := range r.got {
		if int(seq) < want {
			n++
		}
	}
	return n
}

// spoofHeader forges a wire datagram from src: a plausible fresh header
// (random sfl and confounder, current timestamp, garbage MAC) that will
// survive every cheap check and force the receiver to the keying path.
func spoofHeader(rng *cryptolib.LCG, src, dst principal.Address, now time.Time) transport.Datagram {
	h := core.Header{
		Version:    core.HeaderVersion,
		MAC:        cryptolib.MACPrefixMD5,
		SFL:        core.SFL(rng.Uint32()) | core.SFL(rng.Uint32())<<32,
		Confounder: rng.Uint32(),
		Timestamp:  core.TimestampOf(now),
	}
	for i := 0; i < len(h.MACValue); i += 4 {
		binary.BigEndian.PutUint32(h.MACValue[i:], rng.Uint32())
	}
	payload := h.Encode(make([]byte, 0, core.HeaderSize+32))
	payload = append(payload, make([]byte, 32)...)
	return transport.Datagram{Source: src, Destination: dst, Payload: payload}
}

// RunFlood executes one overload scenario to completion and reconciles
// the books. An empty Violations slice is the verdict: the state budget
// held, the sheds were attributed exactly, the exponentiations stayed
// bounded by admissions, and the legitimate transfer survived.
func RunFlood(sc FloodScenario) (*FloodReport, error) {
	if sc.Datagrams <= 0 {
		sc.Datagrams = 64
	}
	if sc.PayloadBytes < 8 {
		sc.PayloadBytes = 64
	}
	if sc.SpoofSources <= 0 {
		sc.SpoofSources = 16
	}
	if sc.GoodputFloor <= 0 {
		sc.GoodputFloor = 0.7
	}
	if sc.MaxRounds <= 0 {
		sc.MaxRounds = 10
	}
	seed := sc.Seed
	if seed == 0 {
		seed = 0xF100D
	}
	const (
		sender   principal.Address = "flood-alice"
		receiver principal.Address = "flood-bob"
		flooder  principal.Address = "flood-mallory"
	)

	// World: CA, directory, identities. The spoof sources are REGISTERED
	// principals — their certificates resolve and verify, so an admitted
	// spoof costs the receiver real keying work, which is exactly what
	// the gate must ration.
	ca, err := cert.NewAuthority("flood-root", 512)
	if err != nil {
		return nil, err
	}
	dir := cert.NewStaticDirectory()
	ver := &cert.Verifier{CAKey: ca.PublicKey(), CA: "flood-root"}
	now := time.Now()
	ids := make(map[principal.Address]*principal.Identity)
	register := func(addr principal.Address) error {
		id, err := principal.NewIdentity(addr, cryptolib.TestGroup)
		if err != nil {
			return err
		}
		c, err := ca.Issue(id, now.Add(-time.Hour), now.Add(24*time.Hour))
		if err != nil {
			return err
		}
		dir.Publish(c)
		ids[addr] = id
		return nil
	}
	spoofs := make([]principal.Address, sc.SpoofSources)
	for i := range spoofs {
		spoofs[i] = principal.Address(fmt.Sprintf("flood-spoof-%03d", i))
	}
	for _, addr := range append([]principal.Address{sender, receiver, flooder}, spoofs...) {
		if err := register(addr); err != nil {
			return nil, err
		}
	}

	net := NewChaosNetwork(LinkModel{Seed: seed}) // clean link: the flood is the fault
	rng := cryptolib.NewLCGSeeded(seed)
	// A shared simulated clock lets the recovery phase advance time past
	// the freshness window, expiring replay signatures that the sound
	// refuse-the-newcomer policy holds until expiry (nothing else frees
	// them once the budget saturates).
	clk := core.NewSimClock(now)
	const freshness = 10 * time.Minute

	attach := func(addr principal.Address, cfg core.Config) (*core.Endpoint, error) {
		tr, err := net.Attach(addr, 1<<16)
		if err != nil {
			return nil, err
		}
		cfg.Identity = ids[addr]
		cfg.Transport = tr
		cfg.Directory = dir
		cfg.Verifier = ver
		cfg.Clock = clk
		cfg.FreshnessWindow = freshness
		cfg.MAC = cryptolib.MACPrefixMD5
		cfg.AcceptMACs = []cryptolib.MACID{cryptolib.MACPrefixMD5}
		return core.NewEndpoint(cfg)
	}
	// Senders run the pre-filter machinery at the resting level when the
	// receiver's is enabled: their inbound path absorbs challenge frames
	// into the jar and their send path wraps retries in echo envelopes.
	var senderPF core.PrefilterConfig
	if sc.Prefilter.Enable {
		senderPF = core.PrefilterConfig{Enable: true}
	}
	alice, err := attach(sender, core.Config{Prefilter: senderPF})
	if err != nil {
		return nil, err
	}
	defer alice.Close()
	bob, err := attach(receiver, core.Config{
		EnableReplayCache: true,
		StateBudget:       core.NewBudget(sc.HighWater, sc.HardBudget),
		Admission:         sc.Admission,
		Prefilter:         sc.Prefilter,
	})
	if err != nil {
		return nil, err
	}
	defer bob.Close()
	mallory, err := attach(flooder, core.Config{
		Prefilter:   senderPF,
		StateBudget: core.NewBudget(0, sc.SenderHardBudget),
		// Every churn datagram must land on a fresh flow: classify on
		// the sequence number the churn loop varies.
		Selector: func(dg transport.Datagram) core.FlowID {
			return core.FlowID{
				Src: dg.Source,
				Dst: dg.Destination,
				Aux: uint64(binary.BigEndian.Uint32(dg.Payload)),
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer mallory.Close()

	rs := &receiverState{got: make(map[uint32]bool), want: sc.Datagrams}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			dg, err := bob.Receive()
			if errors.Is(err, transport.ErrClosed) {
				return
			}
			if err != nil || len(dg.Payload) < 4 {
				continue
			}
			rs.mark(binary.BigEndian.Uint32(dg.Payload))
		}
	}()
	// With the pre-filter on, the senders must drain their inbound
	// queues: processing a challenge frame is what stocks their jars.
	if sc.Prefilter.Enable {
		for _, ep := range []*core.Endpoint{alice, mallory} {
			ep := ep
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := ep.Receive(); errors.Is(err, transport.ErrClosed) {
						return
					}
				}
			}()
		}
	}

	report := &FloodReport{Scenario: sc.Name}
	payload := func(seq uint32) []byte {
		p := make([]byte, sc.PayloadBytes)
		binary.BigEndian.PutUint32(p, seq)
		for i := 4; i < len(p); i++ {
			p[i] = byte(seq + uint32(i))
		}
		return p
	}
	sendLegit := func(seq uint32) {
		if alice.SendTo(receiver, payload(seq), sc.Secret) == nil {
			report.LegitOffered++
		}
	}
	// Churn datagrams carry sequence numbers in the top half of the
	// space so the receiver loop never confuses them with the transfer.
	churnSeq := uint32(1 << 31)
	sendChurn := func() {
		report.ChurnAttempts++
		dg := transport.Datagram{
			Source:      flooder,
			Destination: receiver,
			Payload:     payload(churnSeq),
		}
		churnSeq++
		// Seal failures (the flooder's own budget refusing a fresh flow)
		// are counted by its endpoint; offered means "made it to the
		// wire".
		if mallory.Send(dg, false) == nil {
			report.ChurnOffered++
		}
	}
	sendSpoof := func(i int) {
		net.Inject(spoofHeader(rng, spoofs[i%len(spoofs)], receiver, clk.Now()))
		report.SpoofOffered++
	}
	drain := func() bool {
		deadline := time.Now().Add(15 * time.Second)
		for {
			net.Quiesce(time.Second)
			ps := net.PortStats(receiver)
			m := bob.Metrics()
			var drops uint64
			for _, d := range m.Drops {
				drops += d
			}
			enq := ps.DeliveredClean + ps.DeliveredDup + ps.DeliveredCorrupt + ps.Injected
			if m.Received+drops >= enq && net.Pending() == 0 {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Warm-up: both genuine correspondents key themselves before the
	// storm, so the gate's token bucket protects the attack phase's
	// first contacts rather than deciding them.
	sendLegit(0)
	sendChurn()
	drained := drain()
	// At the challenge level the warm-up datagrams were refused and
	// answered with challenges; wait for both senders' jars to absorb
	// their cookies so the attack phase measures echo-wrapped traffic,
	// not the asynchronous jar fill.
	if sc.Prefilter.Enable && bob.Stats().Prefilter.Challenged > 0 {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if alice.Stats().Prefilter.CookiesLearned > 0 && mallory.Stats().Prefilter.CookiesLearned > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Attack phase: legitimate transfer interleaved with both floods.
	churnPer := sc.ChurnDatagrams / sc.Datagrams
	spoofPer := sc.SpoofDatagrams / sc.Datagrams
	for seq := 1; seq < sc.Datagrams; seq++ {
		sendLegit(uint32(seq))
		for i := 0; i < churnPer; i++ {
			sendChurn()
		}
		for i := 0; i < spoofPer; i++ {
			sendSpoof(seq*spoofPer + i)
		}
	}
	for int(report.ChurnAttempts) < sc.ChurnDatagrams+1 {
		sendChurn()
	}
	for int(report.SpoofOffered) < sc.SpoofDatagrams {
		sendSpoof(int(report.SpoofOffered))
	}
	drained = drain() && drained

	// Goodput is measured here — what survived DURING the attack.
	report.LegitAccepted = uint64(rs.countBelow(sc.Datagrams))
	if report.LegitOffered > 0 {
		report.Goodput = float64(report.LegitAccepted) / float64(report.LegitOffered)
	}

	// Recovery: the attack stops; retransmission rounds must complete
	// the transfer on soft state alone. Each round first advances the
	// clock one freshness window: replay signatures pinned by the sound
	// hard-limit policy expire, the sweep returns their budget, and the
	// round's retransmissions have room to record themselves. (A
	// saturated budget smaller than the transfer's replay working set
	// therefore completes across several windows, a window per round.)
	for report.Rounds < sc.MaxRounds {
		missing := rs.missing()
		if len(missing) == 0 {
			break
		}
		report.Rounds++
		clk.Advance(freshness + time.Minute)
		for _, seq := range missing {
			sendLegit(seq)
		}
		drained = drain() && drained
	}
	report.Complete = len(rs.missing()) == 0

	mm, bm := mallory.Metrics(), bob.Metrics()
	report.Accepted = bm.Received
	report.SenderDrops = mm.Drops
	report.ReceiverDrops = bm.Drops
	report.Port = net.PortStats(receiver)
	bs := bob.Stats()
	report.Budget = bs.Budget
	report.Admission = bs.Admission
	report.Replay = bs.Replay
	report.SenderBudget = mallory.Stats().Budget
	report.Keys = bobKeyStats(bob)
	report.LegitPeers = 2 // alice and mallory
	report.Prefilter = bs.Prefilter
	report.PreParseShedFloor = sc.PreParseShedFloor
	if report.SpoofOffered > 0 {
		shed := float64(report.ReceiverDrops[core.DropPrefilter] + report.ReceiverDrops[core.DropChallenged])
		report.PreParseShedRatio = shed / float64(report.SpoofOffered)
		if report.PreParseShedRatio > 1 {
			report.PreParseShedRatio = 1
		}
	}

	alice.Close()
	mallory.Close()
	bob.Close()
	wg.Wait()

	if !drained {
		report.Violations = append(report.Violations, "network failed to drain before the books were read")
	}
	report.reconcile(&sc)
	return report, nil
}

// reconcile checks the overload accounting equations and appends a line
// per violation.
func (r *FloodReport) reconcile(sc *FloodScenario) {
	fail := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
	if !r.Complete {
		fail("legitimate transfer incomplete after %d retransmission rounds", r.Rounds)
	}
	if r.Port.Overflow != 0 {
		fail("receiver queue overflowed %d times; accounting not exact", r.Port.Overflow)
	}

	// Conservation: every copy enqueued at the receiver was either
	// accepted or dropped with exactly one reason.
	var rdrops uint64
	for _, d := range r.ReceiverDrops {
		rdrops += d
	}
	enq := r.Port.DeliveredClean + r.Port.DeliveredDup + r.Port.DeliveredCorrupt + r.Port.Injected
	if got := r.Accepted + rdrops; got != enq {
		fail("conservation: accepted(%d)+drops(%d)=%d != enqueued(%d)", r.Accepted, rdrops, got, enq)
	}
	if r.Port.Injected != r.SpoofOffered {
		fail("injection accounting: port saw %d, flooder placed %d", r.Port.Injected, r.SpoofOffered)
	}
	// The link is clean: every enqueued copy is first-delivery, intact.
	if r.Port.DeliveredDup != 0 || r.Port.DeliveredCorrupt != 0 {
		fail("clean link delivered dup=%d corrupt=%d", r.Port.DeliveredDup, r.Port.DeliveredCorrupt)
	}
	// Every spoofed datagram lands in exactly one of the keying-path
	// buckets: shed by the gate or the budget before any expensive work,
	// or unmasked by the MAC after it. The only other traffic that can
	// reach those buckets — or the replay-budget bucket, which only
	// verified (hence authenticated) datagrams ever hit — is an
	// authenticated datagram shed under overload: a re-admission after
	// an admitted spoof evicted its sender from the master-key cache, or
	// a verified datagram refused because the budget left no room for
	// its replay signature. On a clean link that count is exactly the
	// clean deliveries that were not accepted, so the books still
	// balance to the datagram.
	// The pre-filter reasons join the bucket set: a spoof may now be
	// refused before the parse (sketch, challenge) instead of reaching
	// the keying path, and a challenged legitimate first contact is a
	// clean shed like any other overload refusal.
	spoofDrops := r.ReceiverDrops[core.DropKeyingOverload] +
		r.ReceiverDrops[core.DropPeerQuota] +
		r.ReceiverDrops[core.DropStateBudget] +
		r.ReceiverDrops[core.DropReplayBudget] +
		r.ReceiverDrops[core.DropBadMAC] +
		r.ReceiverDrops[core.DropKeying] +
		r.ReceiverDrops[core.DropPrefilter] +
		r.ReceiverDrops[core.DropBadCookie] +
		r.ReceiverDrops[core.DropChallenged]
	cleanShed := r.Port.DeliveredClean - r.Accepted
	if spoofDrops != r.SpoofOffered+cleanShed {
		fail("spoof accounting: keying-path drops %d != spoofs(%d)+overload sheds(%d)",
			spoofDrops, r.SpoofOffered, cleanShed)
	}
	// The pre-parse work ledger: with the pre-filter on, every copy
	// enqueued at the receiver either reached the header parse or was
	// refused before it, with nothing double-counted.
	if sc.Prefilter.Enable {
		preParse := r.ReceiverDrops[core.DropPrefilter] +
			r.ReceiverDrops[core.DropBadCookie] +
			r.ReceiverDrops[core.DropChallenged]
		if got := r.Prefilter.HeaderParses + preParse; got != enq {
			fail("work counter: header parses(%d)+pre-parse sheds(%d)=%d != enqueued(%d)",
				r.Prefilter.HeaderParses, preParse, got, enq)
		}
	}
	// The churn flooder's books: every attempt was sealed onto the wire
	// or shed by its own endpoint with a counted reason.
	var sdrops uint64
	for _, d := range r.SenderDrops {
		sdrops += d
	}
	if got, want := r.ChurnOffered+sdrops, r.ChurnAttempts; got != want {
		fail("churn accounting: offered(%d)+sender drops(%d) != attempts(%d)", r.ChurnOffered, sdrops, want)
	}

	// The hard budget is a ceiling, not a suggestion: peak occupancy
	// never exceeds it, on either side.
	if r.Budget.HardLimit > 0 {
		if r.Budget.Peak > r.Budget.HardLimit {
			fail("receiver budget peak %d exceeds hard limit %d", r.Budget.Peak, r.Budget.HardLimit)
		}
		if sc.ChurnDatagrams > 0 && r.Budget.Denials == 0 {
			fail("churn flood never drove the receiver budget to a denial")
		}
	}
	if r.SenderBudget.HardLimit > 0 && r.SenderBudget.Peak > r.SenderBudget.HardLimit {
		fail("flooder budget peak %d exceeds hard limit %d", r.SenderBudget.Peak, r.SenderBudget.HardLimit)
	}

	// The exponentiation bound: Diffie-Hellman work grows with the peers
	// the gate admitted (plus the genuine correspondents), never with
	// the packets the flood offered.
	if bound := r.LegitPeers + r.Admission.Admitted; r.Keys.MasterKeyComputes > bound {
		fail("exponentiations %d exceed admitted peers bound %d", r.Keys.MasterKeyComputes, bound)
	}
	if sc.Admission.UpcallRate > 0 && sc.SpoofDatagrams > 0 {
		// The storm must have been shed by SOMETHING cheap: the gate, or
		// — when the pre-filter sits in front of it — the sketch and the
		// cookie challenge, which legitimately starve the gate of spoofs.
		if r.Admission.ShedOverload+r.Admission.ShedQuota == 0 &&
			r.ReceiverDrops[core.DropPrefilter]+r.ReceiverDrops[core.DropChallenged] == 0 {
			fail("spoof flood at 10x never tripped the admission gate or the pre-filter")
		}
	}

	// The legitimate transfer survived the storm.
	if r.Goodput < sc.GoodputFloor {
		fail("legit goodput %.2f below floor %.2f", r.Goodput, sc.GoodputFloor)
	}

	// Pre-filter expectations.
	if sc.PreParseShedFloor > 0 && r.PreParseShedRatio < sc.PreParseShedFloor {
		fail("pre-parse shed ratio %.3f below floor %.3f", r.PreParseShedRatio, sc.PreParseShedFloor)
	}
	if sc.ExpectEscalation && r.Prefilter.Escalations == 0 {
		fail("adaptive ladder never escalated under flood pressure")
	}
	if sc.ExpectNoSpoofKeying {
		if r.Keys.MasterKeyComputes != r.LegitPeers {
			fail("spoofed flood bought keying work: %d DH computes != %d legitimate peers",
				r.Keys.MasterKeyComputes, r.LegitPeers)
		}
		if r.Admission.Admitted > r.LegitPeers {
			fail("spoofed source passed admission: %d admitted > %d legitimate peers",
				r.Admission.Admitted, r.LegitPeers)
		}
	}
}

// Summary renders the report as a compact multi-line string for the
// fbschaos command.
func (r *FloodReport) Summary() string {
	s := fmt.Sprintf("flood %s: legit=%d/%d (goodput %.2f) churn=%d/%d spoof=%d rounds=%d complete=%v\n",
		r.Scenario, r.LegitAccepted, r.LegitOffered, r.Goodput,
		r.ChurnOffered, r.ChurnAttempts, r.SpoofOffered, r.Rounds, r.Complete)
	s += fmt.Sprintf("  budget: used=%d peak=%d/%d pressure=%d denials=%d (flooder peak=%d/%d)\n",
		r.Budget.Used, r.Budget.Peak, r.Budget.HardLimit, r.Budget.PressureEvents, r.Budget.Denials,
		r.SenderBudget.Peak, r.SenderBudget.HardLimit)
	s += fmt.Sprintf("  admission: admitted=%d shed_overload=%d shed_quota=%d prefixes=%d\n",
		r.Admission.Admitted, r.Admission.ShedOverload, r.Admission.ShedQuota, r.Admission.ActivePrefixes)
	s += fmt.Sprintf("  replay: entries=%d peers=%d refusals=%d; dh computes=%d (admitted+legit bound %d)\n",
		r.Replay.Entries, r.Replay.Peers, r.Replay.Refusals, r.Keys.MasterKeyComputes, r.LegitPeers+r.Admission.Admitted)
	if pf := r.Prefilter; pf.HeaderParses > 0 || pf.SketchSheds > 0 || pf.Challenged > 0 {
		s += fmt.Sprintf("  prefilter: level=%d sheds=%d challenged=%d(+%d suppressed) echo ok=%d bad=%d parses=%d preparse_ratio=%.3f\n",
			pf.Level, pf.SketchSheds, pf.Challenged, pf.ChallengeSuppressed,
			pf.EchoAccepted, pf.EchoRejected, pf.HeaderParses, r.PreParseShedRatio)
	}
	for reason := core.DropReason(1); int(reason) < core.NumDropReasons; reason++ {
		if n := r.ReceiverDrops[reason]; n > 0 {
			s += fmt.Sprintf("  drop %s: %d\n", reason, n)
		}
	}
	if len(r.Violations) == 0 {
		s += "  reconciliation: exact\n"
	}
	for _, v := range r.Violations {
		s += "  VIOLATION: " + v + "\n"
	}
	return s
}
